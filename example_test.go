package aces_test

import (
	"fmt"

	"aces"
)

// ExampleSimulate builds the smallest useful deployment — two pipeline
// stages on two nodes — solves tier 1, and simulates it under ACES.
func ExampleSimulate() {
	topo := aces.NewTopology(2, 50)
	svc := aces.ServiceParams{T0: 0.002, T1: 0.002, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
	parse := topo.AddPE(aces.PE{Name: "parse", Service: svc, Node: 0})
	score := topo.AddPE(aces.PE{Name: "score", Service: svc, Node: 1, Weight: 1})
	if err := topo.Connect(parse, score); err != nil {
		fmt.Println(err)
		return
	}
	if err := topo.AddSource(aces.Source{
		Stream: 1, Target: parse, Rate: 100,
		Burst: aces.BurstSpec{Kind: aces.BurstDeterministic},
	}); err != nil {
		fmt.Println(err)
		return
	}
	alloc, err := aces.Optimize(topo, aces.OptimizeConfig{MaxIters: 300})
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := aces.Simulate(aces.SimConfig{
		Topo: topo, Policy: aces.PolicyACES, CPU: alloc.CPU, Duration: 20, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// The pipeline is underloaded: the full 100 SDO/s arrive losslessly.
	fmt.Printf("carried full load: %v\n", rep.WeightedThroughput > 95 && rep.InFlightDrops == 0)
	// Output:
	// carried full load: true
}

// ExampleDesignFlowGains synthesizes the paper's Eq. 7 controller for a
// buffer target of 25 SDOs and shows its structure.
func ExampleDesignFlowGains() {
	gains, err := aces.DesignFlowGains(aces.DefaultFlowDesign(25))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("lambda taps: %d, mu taps: %d, b0: %.0f\n",
		len(gains.Lambda), len(gains.Mu), gains.B0)
	fc, err := aces.NewFlowController(gains, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	// At the target occupancy with matched rates, advertise exactly ρ.
	fmt.Printf("r_max at equilibrium: %.1f\n", fc.Update(4, 25))
	// Output:
	// lambda taps: 2, mu taps: 1, b0: 25
	// r_max at equilibrium: 4.0
}

// ExampleGenerate reproduces the paper's random-topology tool at the
// calibration scale (§VI-C: 60 PEs on 10 nodes).
func ExampleGenerate() {
	topo, err := aces.Generate(aces.DefaultGenConfig(60, 10, 1))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("PEs: %d, nodes: %d, fan-in ≤ 3: %v, fan-out ≤ 4: %v\n",
		topo.NumPEs(), topo.NumNodes, topo.MaxFanIn() <= 3, topo.MaxFanOut() <= 4)
	// Output:
	// PEs: 60, nodes: 10, fan-in ≤ 3: true, fan-out ≤ 4: true
}
