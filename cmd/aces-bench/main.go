// Command aces-bench regenerates the paper's evaluation: every figure
// (Figs. 2–5) and every quantitative claim (small-buffer advantage,
// robustness to allocation errors, closed-loop stability, simulator↔SPC
// calibration) as plain-text tables. EXPERIMENTS.md records its output.
//
// Usage:
//
//	aces-bench                  # full paper-scale suite (minutes)
//	aces-bench -quick           # reduced scale (seconds)
//	aces-bench -exp fig4,fig5   # selected experiments only
//	aces-bench -json out.json   # machine-readable results (stable key order)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aces/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "aces-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aces-bench", flag.ContinueOnError)
	var (
		quick  = fs.Bool("quick", false, "reduced scale for a fast pass")
		exps   = fs.String("exp", "all", "comma-separated: fig2|fig3|fig4|fig5|smallbuf|robust|stability|calibrate|ablations|transport|chaos|retarget|elastic|hier|failover|all")
		csvDir = fs.String("csv", "", "also write plotting-ready CSVs into this directory")
		jsonTo = fs.String("json", "", "also write per-experiment results as machine-readable JSON to this file")
		pes    = fs.Int("pes", 0, "override topology PE count")
		nodes  = fs.Int("nodes", 0, "override node count")
		dur    = fs.Float64("duration", 0, "override per-run simulated seconds")

		batchMax    = fs.Int("batch-max", 32, "transport experiment: uplink batch size in SDOs")
		batchLarge  = fs.Int("batch-max-large", 256, "transport experiment: gathered-write mode batch size in SDOs")
		batchLinger = fs.Duration("batch-linger", 0, "transport experiment: writer linger before a non-full batch")
		baseline    = fs.String("baseline", "", "transport experiment: committed -json output to regress against (>20% ns/SDO or allocs/SDO fails)")

		chaosSeed = fs.Int64("chaos-seed", 1, "chaos experiment: fault-schedule seed")

		retargetSeed = fs.Int64("retarget-seed", 7, "retarget experiment: deployment seed")

		elasticSeed = fs.Int64("elastic-seed", 7, "elastic experiment: deployment seed")

		failoverSeed = fs.Int64("failover-seed", 7, "failover experiment: deployment seed")

		hierSeed     = fs.Int64("hier-seed", 13, "hier experiment: topology seed")
		hierDeadline = fs.Duration("hier-deadline", 0, "hier experiment: per-epoch solve deadline (0 = default)")
		solverBase   = fs.String("solver-baseline", "", "hier experiment: committed -json output to regress against (>20% normalized hier solve time or <95% quality fails)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := experiments.Default()
	if *quick {
		o = experiments.Quick()
	}
	if *pes > 0 {
		o.PEs = *pes
	}
	if *nodes > 0 {
		o.Nodes = *nodes
	}
	if *dur > 0 {
		o.Duration = *dur
	}

	writeCSV := func(name string, fn func(w *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(*csvDir + "/" + name)
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}

	// JSON accumulation: the struct field order fixes the key order, so
	// the output is byte-stable across runs of the same configuration.
	type jsonExperiment struct {
		Name string `json:"name"`
		Rows any    `json:"rows"`
	}
	var jsonExps []jsonExperiment
	addJSON := func(name string, rows any) {
		if *jsonTo != "" {
			jsonExps = append(jsonExps, jsonExperiment{Name: name, Rows: rows})
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	w := os.Stdout
	fmt.Fprintf(w, "ACES evaluation reproduction — %d PEs / %d nodes, %.0fs per run, seeds %v\n\n",
		o.PEs, o.Nodes, o.Duration, o.Seeds)

	type step struct {
		name string
		run  func() error
	}
	steps := []step{
		{"fig2", func() error {
			rows, err := experiments.Fanout(o)
			if err != nil {
				return err
			}
			addJSON("fig2", rows)
			experiments.FormatFanout(w, rows)
			return writeCSV("fanout.csv", func(f *os.File) error {
				return experiments.FanoutCSV(f, rows)
			})
		}},
		{"fig3+fig4", func() error {
			if !sel("fig3") && !sel("fig4") {
				return nil
			}
			rows, err := experiments.BufferSweep(o, nil)
			if err != nil {
				return err
			}
			addJSON("fig3+fig4", rows)
			if sel("fig3") {
				experiments.FormatFig3(w, rows)
			}
			if sel("fig4") {
				experiments.FormatFig4(w, rows)
			}
			return writeCSV("buffer_sweep.csv", func(f *os.File) error {
				return experiments.BufferSweepCSV(f, rows)
			})
		}},
		{"fig5", func() error {
			rows, err := experiments.BurstinessSweep(o, nil)
			if err != nil {
				return err
			}
			addJSON("fig5", rows)
			experiments.FormatFig5(w, rows)
			return writeCSV("burstiness.csv", func(f *os.File) error {
				return experiments.BurstinessCSV(f, rows)
			})
		}},
		{"smallbuf", func() error {
			rows, err := experiments.SmallBufferAdvantage(o, nil)
			if err != nil {
				return err
			}
			addJSON("smallbuf", rows)
			experiments.FormatSmallBuffer(w, rows)
			return nil
		}},
		{"robust", func() error {
			rows, err := experiments.Robustness(o, nil)
			if err != nil {
				return err
			}
			addJSON("robust", rows)
			experiments.FormatRobustness(w, rows)
			return nil
		}},
		{"stability", func() error {
			res, err := experiments.Stability(o)
			if err != nil {
				return err
			}
			addJSON("stability", res)
			experiments.FormatStability(w, res)
			return nil
		}},
		{"calibrate", func() error {
			rows, err := experiments.Calibration(o)
			if err != nil {
				return err
			}
			addJSON("calibrate", rows)
			experiments.FormatCalibration(w, rows)
			return nil
		}},
		{"ablations", func() error {
			rows, err := experiments.Ablations(o)
			if err != nil {
				return err
			}
			addJSON("ablations", rows)
			experiments.FormatAblations(w, rows)
			return nil
		}},
		{"transport", func() error {
			to := experiments.TransportOptions{BatchMax: *batchMax, LargeBatchMax: *batchLarge, Linger: *batchLinger}
			if *quick {
				to.SDOs = 30000
			}
			rows, err := experiments.TransportThroughput(to)
			if err != nil {
				return err
			}
			addJSON("transport", rows)
			experiments.FormatTransport(w, rows)
			if *baseline != "" {
				base, err := loadTransportBaseline(*baseline)
				if err != nil {
					return err
				}
				if err := experiments.CompareTransport(base, rows); err != nil {
					return fmt.Errorf("vs %s: %w", *baseline, err)
				}
				fmt.Fprintf(w, "  baseline check vs %s: OK\n\n", *baseline)
			}
			return nil
		}},
		{"chaos", func() error {
			co := experiments.ChaosOptions{Seed: *chaosSeed}
			if *quick {
				co.TimeScale = 20
			}
			row, err := experiments.RunChaos(co)
			if err != nil {
				return err
			}
			addJSON("chaos", []experiments.ChaosRow{row})
			experiments.FormatChaos(w, row)
			if !row.Recovered {
				return fmt.Errorf("deployment did not recover (pre %.1f, post %.1f sdo/s, members alive %v)",
					row.PreRate, row.PostRate, row.MembersAlive)
			}
			return nil
		}},
		{"retarget", func() error {
			// No -quick override: the run is already only a few wall
			// seconds, and accelerating the clock further trades margin
			// (OS-timer slip biases calibration windows) for nothing.
			ro := experiments.RetargetOptions{Seed: *retargetSeed}
			row, err := experiments.RunRetarget(ro)
			if err != nil {
				return err
			}
			addJSON("retarget", []experiments.RetargetRow{row})
			experiments.FormatRetarget(w, row)
			if !row.Recovered {
				return fmt.Errorf("adaptive loop did not recover (adaptive %.0f%%, frozen %.0f%% of oracle, peer epoch %d)",
					100*row.AdaptiveFrac, 100*row.FrozenFrac, row.PeerEpoch)
			}
			return nil
		}},
		{"elastic", func() error {
			eo := experiments.ElasticOptions{Seed: *elasticSeed}
			row, err := experiments.RunElastic(eo)
			if err != nil {
				return err
			}
			addJSON("elastic", []experiments.ElasticRow{row})
			experiments.FormatElastic(w, row)
			if !row.Recovered {
				return fmt.Errorf("elastic loop did not absorb the hotspot (elastic %.0f%%, frozen %.0f%% of oracle, %d replicas, peer epoch %d)",
					100*row.ElasticFrac, 100*row.FrozenFrac, row.ActiveReplicas, row.PeerEpoch)
			}
			return nil
		}},
		{"failover", func() error {
			// Like retarget, no -quick override: the run is already short
			// and the acceptance margins depend on wall-clock calibration
			// windows that further time-scaling would squeeze.
			fo := experiments.FailoverOptions{Seed: *failoverSeed}
			row, err := experiments.RunFailover(fo)
			if err != nil {
				return err
			}
			addJSON("failover", []experiments.FailoverRow{row})
			experiments.FormatFailover(w, row)
			if !row.Recovered {
				return fmt.Errorf("standby did not recover control (took over %v, claim %.2f, missed %.1f epochs, leaf term %d, fenced %d, failover %.0f%% of baseline)",
					row.TookOver, row.ClaimAt, row.MissedEpochs, row.LeafTerm, row.Fenced, 100*row.FailoverFrac)
			}
			return nil
		}},
		{"hier", func() error {
			ho := experiments.HierOptions{Seed: *hierSeed, Deadline: *hierDeadline, Quick: *quick}
			res, err := experiments.RunHier(ho)
			if err != nil {
				return err
			}
			addJSON("hier", res)
			experiments.FormatHier(w, res)
			if *solverBase != "" {
				base, err := loadHierBaseline(*solverBase)
				if err != nil {
					return err
				}
				if err := experiments.CompareHier(base, res); err != nil {
					return fmt.Errorf("vs %s: %w", *solverBase, err)
				}
				fmt.Fprintf(w, "  baseline check vs %s: OK\n\n", *solverBase)
			}
			if !res.OK {
				return fmt.Errorf("hierarchical control plane missed the acceptance bar (see table above)")
			}
			return nil
		}},
	}

	start := time.Now()
	for _, s := range steps {
		// The buffer-sweep step self-selects on fig3/fig4.
		if s.name != "fig3+fig4" && !sel(s.name) {
			continue
		}
		t0 := time.Now()
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		if s.name == "fig3+fig4" && !sel("fig3") && !sel("fig4") {
			continue
		}
		fmt.Fprintf(w, "  [%s done in %.1fs]\n\n", s.name, time.Since(t0).Seconds())
	}
	fmt.Fprintf(w, "total %.1fs\n", time.Since(start).Seconds())
	if *jsonTo != "" {
		doc := struct {
			PEs         int              `json:"pes"`
			Nodes       int              `json:"nodes"`
			Duration    float64          `json:"duration_s"`
			Seeds       []int64          `json:"seeds"`
			Experiments []jsonExperiment `json:"experiments"`
		}{o.PEs, o.Nodes, o.Duration, o.Seeds, jsonExps}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return fmt.Errorf("json: %w", err)
		}
		if err := os.WriteFile(*jsonTo, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Fprintf(w, "wrote %s\n", *jsonTo)
	}
	return nil
}

// loadTransportBaseline extracts the transport experiment rows from a
// committed `aces-bench -json` output file.
func loadTransportBaseline(path string) ([]experiments.TransportRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var doc struct {
		Experiments []struct {
			Name string          `json:"name"`
			Rows json.RawMessage `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for _, e := range doc.Experiments {
		if e.Name == "transport" {
			var rows []experiments.TransportRow
			if err := json.Unmarshal(e.Rows, &rows); err != nil {
				return nil, fmt.Errorf("baseline %s: %w", path, err)
			}
			return rows, nil
		}
	}
	return nil, fmt.Errorf("baseline %s has no transport experiment", path)
}

// loadHierBaseline extracts the hier experiment result from a committed
// `aces-bench -json` output file (BENCH_solver_scale.json).
func loadHierBaseline(path string) (experiments.HierResult, error) {
	var zero experiments.HierResult
	data, err := os.ReadFile(path)
	if err != nil {
		return zero, fmt.Errorf("baseline: %w", err)
	}
	var doc struct {
		Experiments []struct {
			Name string          `json:"name"`
			Rows json.RawMessage `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return zero, fmt.Errorf("baseline %s: %w", path, err)
	}
	for _, e := range doc.Experiments {
		if e.Name == "hier" {
			var res experiments.HierResult
			if err := json.Unmarshal(e.Rows, &res); err != nil {
				return zero, fmt.Errorf("baseline %s: %w", path, err)
			}
			return res, nil
		}
	}
	return zero, fmt.Errorf("baseline %s has no hier experiment", path)
}
