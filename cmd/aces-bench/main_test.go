package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQuickSelectedExperiments(t *testing.T) {
	csvDir := filepath.Join(t.TempDir(), "csv")
	// fig2 + stability are the cheap ones; they exercise the step loop,
	// selection logic and CSV writing end to end.
	if err := run([]string{"-quick", "-duration", "6", "-exp", "fig2,stability", "-csv", csvDir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(csvDir, "fanout.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "policy,consumer,rate") {
		t.Errorf("fanout CSV malformed: %s", data)
	}
}

func TestUnknownExperimentIsIgnored(t *testing.T) {
	// Selecting only an unknown name runs nothing and succeeds (prints the
	// header and total only).
	if err := run([]string{"-quick", "-exp", "nosuch"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Errorf("bad flag accepted")
	}
}
