// Command aces-sim runs one simulation: a topology (generated or loaded
// from aces-topo JSON) under one of the flow/CPU policies, printing the
// §III-A/§IV metrics.
//
// Usage:
//
//	aces-sim -pes 200 -nodes 80 -policy aces -duration 40
//	aces-sim -topo topo.json -policy lockstep -buffer 25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"aces"
)

type document struct {
	Topology *aces.Topology `json:"topology"`
	CPU      []float64      `json:"cpu,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "aces-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aces-sim", flag.ContinueOnError)
	var (
		topoFile = fs.String("topo", "", "topology JSON from aces-topo (default: generate)")
		pes      = fs.Int("pes", 60, "PEs when generating")
		nodes    = fs.Int("nodes", 10, "nodes when generating")
		seed     = fs.Int64("seed", 1, "generation/workload seed")
		polName  = fs.String("policy", "aces", "policy: aces | udp | lockstep | loadshed | aces-minflow | aces-strictcpu")
		duration = fs.Float64("duration", 30, "simulated seconds")
		buffer   = fs.Int("buffer", 0, "override per-PE buffer size B (0 = keep)")
		lambdaS  = fs.Float64("lambda-s", 0, "override burstiness λ_S (0 = keep)")
		iters    = fs.Int("iters", 800, "tier-1 iterations when targets are not provided")
		linkCap  = fs.Float64("link-capacity", 0, "per-node egress bandwidth in SDOs/sec (0 = unlimited)")
		netDelay = fs.Float64("net-delay", 0, "inter-node transit delay in seconds")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	pol, err := aces.ParsePolicy(*polName)
	if err != nil {
		return err
	}

	var topo *aces.Topology
	var cpu []float64
	if *topoFile != "" {
		data, err := os.ReadFile(*topoFile)
		if err != nil {
			return err
		}
		var doc document
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", *topoFile, err)
		}
		if doc.Topology == nil {
			return fmt.Errorf("no topology in %s", *topoFile)
		}
		if err := doc.Topology.Rebuild(); err != nil {
			return err
		}
		topo = doc.Topology
		cpu = doc.CPU
	} else {
		topo, err = aces.Generate(aces.DefaultGenConfig(*pes, *nodes, *seed))
		if err != nil {
			return err
		}
	}
	if *buffer > 0 {
		topo.DefaultBufferSize = *buffer
	}
	if *lambdaS > 0 {
		for i := range topo.PEs {
			topo.PEs[i].Service.LambdaS = *lambdaS
		}
	}
	if cpu == nil {
		alloc, err := aces.Optimize(topo, aces.OptimizeConfig{
			MaxIters: *iters, Utility: aces.LinearUtility{}, MinShare: 0.02,
		})
		if err != nil {
			return err
		}
		cpu = alloc.CPU
		fmt.Fprintf(os.Stderr, "tier-1: fluid weighted throughput %.2f\n", alloc.WeightedThroughput)
	}

	rep, err := aces.Simulate(aces.SimConfig{
		Topo: topo, Policy: pol, CPU: cpu, Duration: *duration, Seed: *seed,
		LinkCapacity: *linkCap, NetDelay: *netDelay,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("policy              %s\n", pol)
	fmt.Printf("weighted throughput %.2f /s\n", rep.WeightedThroughput)
	fmt.Printf("deliveries          %d\n", rep.Deliveries)
	fmt.Printf("latency mean ± σ    %.1f ± %.1f ms (p50 %.1f, p95 %.1f, p99 %.1f)\n",
		rep.MeanLatency*1e3, rep.StdLatency*1e3, rep.P50*1e3, rep.P95*1e3, rep.P99*1e3)
	fmt.Printf("input drops         %d\n", rep.InputDrops)
	fmt.Printf("in-flight drops     %d (wasted hops %d)\n", rep.InFlightDrops, rep.WastedHops)
	fmt.Printf("buffer occupancy    %.1f ± %.1f SDOs\n", rep.MeanBufferOccupancy, rep.StdBufferOccupancy)
	fmt.Printf("throughput CV       %.3f\n", rep.ThroughputCV)
	return nil
}
