package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"aces"
)

// writeTopo produces a tiny solved topology document for the -topo path.
func writeTopo(t *testing.T) string {
	t.Helper()
	topo, err := aces.Generate(aces.DefaultGenConfig(12, 3, 5))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := aces.Optimize(topo, aces.OptimizeConfig{MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	doc := document{Topology: topo, CPU: alloc.CPU}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithTopoFile(t *testing.T) {
	path := writeTopo(t)
	for _, pol := range []string{"aces", "udp", "lockstep", "loadshed"} {
		if err := run([]string{"-topo", path, "-policy", pol, "-duration", "4"}); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
}

func TestRunGeneratedWithOverrides(t *testing.T) {
	if err := run([]string{
		"-pes", "12", "-nodes", "3", "-policy", "aces",
		"-duration", "4", "-buffer", "20", "-lambda-s", "5",
		"-iters", "80", "-json",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-policy", "bogus"}); err == nil {
		t.Errorf("unknown policy accepted")
	}
	if err := run([]string{"-topo", "/does/not/exist.json"}); err == nil {
		t.Errorf("missing topo file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topo", bad}); err == nil {
		t.Errorf("empty topo document accepted")
	}
}
