package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateValidateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	topoPath := filepath.Join(dir, "topo.json")
	dotPath := filepath.Join(dir, "topo.dot")
	if err := run([]string{
		"-pes", "20", "-nodes", "4", "-seed", "7",
		"-solve", "-iters", "120",
		"-o", topoPath, "-dot", dotPath,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Topology == nil || len(doc.CPU) != 20 {
		t.Fatalf("document incomplete: topo=%v cpu=%d", doc.Topology != nil, len(doc.CPU))
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph aces") {
		t.Errorf("DOT output malformed")
	}
	// Validation path on the file we just wrote.
	if err := run([]string{"-validate", topoPath}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", bad}); err == nil {
		t.Errorf("garbage JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", empty}); err == nil {
		t.Errorf("empty document accepted")
	}
	if err := run([]string{"-validate", filepath.Join(dir, "missing.json")}); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-pes", "1", "-nodes", "1"}); err == nil {
		t.Errorf("1-PE topology accepted")
	}
}
