// Command aces-topo is the topology generation tool of the paper's
// evaluation (§VI-A): it emits a randomly generated PE graph — placement,
// per-PE parameters, calibrated bursty sources — as JSON, optionally with
// tier-1 CPU targets attached. The output feeds aces-sim and aces-spc.
//
// Usage:
//
//	aces-topo -pes 200 -nodes 80 -seed 1 -solve -o topo.json
//	aces-topo -validate topo.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"aces"
)

// document bundles a topology with optional tier-1 targets for transport
// between the CLI tools.
type document struct {
	Topology *aces.Topology `json:"topology"`
	CPU      []float64      `json:"cpu,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "aces-topo: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aces-topo", flag.ContinueOnError)
	var (
		pes      = fs.Int("pes", 60, "total number of PEs")
		nodes    = fs.Int("nodes", 10, "number of processing nodes")
		ingress  = fs.Int("ingress", 0, "ingress PEs (0 = ~15%)")
		egress   = fs.Int("egress", 0, "egress PEs (0 = ~15%)")
		seed     = fs.Int64("seed", 1, "generation seed")
		load     = fs.Float64("load", 1.3, "source load factor × fluid capacity")
		buffer   = fs.Int("buffer", 50, "per-PE input buffer B in SDOs")
		lambdaS  = fs.Float64("lambda-s", 10, "burstiness dwell scale λ_S")
		solve    = fs.Bool("solve", false, "attach tier-1 CPU targets")
		iters    = fs.Int("iters", 1500, "tier-1 solver iterations (with -solve)")
		regions  = fs.Int("regions", 0, "decompose into this many control regions; -dot then renders the decomposition with cut edges highlighted")
		out      = fs.String("o", "", "output file (default stdout)")
		dotOut   = fs.String("dot", "", "also write a Graphviz rendering to this file")
		validate = fs.String("validate", "", "validate an existing topology JSON instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			return err
		}
		var doc document
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("parse: %w", err)
		}
		if doc.Topology == nil {
			return fmt.Errorf("no topology in %s", *validate)
		}
		if err := doc.Topology.Rebuild(); err != nil {
			return err
		}
		if err := doc.Topology.Validate(); err != nil {
			return err
		}
		capRate, err := doc.Topology.BottleneckIngressRate()
		if err != nil {
			return err
		}
		fmt.Printf("ok: %d PEs on %d nodes, %d edges, %d sources, fluid capacity %.1f SDO/s per source\n",
			doc.Topology.NumPEs(), doc.Topology.NumNodes, len(doc.Topology.Edges), len(doc.Topology.Sources), capRate)
		return nil
	}

	cfg := aces.DefaultGenConfig(*pes, *nodes, *seed)
	cfg.NumIngress = *ingress
	cfg.NumEgress = *egress
	cfg.LoadFactor = *load
	cfg.BufferSize = *buffer
	cfg.Service.LambdaS = *lambdaS
	topo, err := aces.Generate(cfg)
	if err != nil {
		return err
	}

	var dec *aces.HierDecomposition
	if *regions > 0 {
		dec, err = aces.HierPartition(topo, aces.HierPartitionConfig{Regions: *regions})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "regions: %d over %d nodes, %d cut edges carrying %.1f%% of stream volume\n",
			len(dec.Regions), topo.NumNodes, len(dec.Cut), 100*dec.CutFraction())
		for _, r := range dec.Regions {
			fmt.Fprintf(os.Stderr, "  region %d: %d PEs on %d nodes\n", r.ID, len(r.PEs), len(r.Nodes))
		}
	}

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("%d PEs / %d nodes (seed %d)", topo.NumPEs(), topo.NumNodes, *seed)
		werr := error(nil)
		if dec != nil {
			title += fmt.Sprintf(", %d regions", len(dec.Regions))
			werr = aces.WriteHierDOT(f, topo, dec, title)
		} else {
			werr = topo.WriteDOT(f, title)
		}
		if werr != nil {
			f.Close()
			return werr
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	doc := document{Topology: topo}
	if *solve {
		alloc, err := aces.Optimize(topo, aces.OptimizeConfig{
			MaxIters: *iters, Utility: aces.LinearUtility{}, MinShare: 0.02,
		})
		if err != nil {
			return err
		}
		doc.CPU = alloc.CPU
		fmt.Fprintf(os.Stderr, "tier-1: fluid weighted throughput %.2f in %d iterations\n",
			alloc.WeightedThroughput, alloc.Iterations)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
