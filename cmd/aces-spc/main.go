// Command aces-spc runs the live runtime — the reproduction's stand-in
// for IBM's Stream Processing Core. In local mode it deploys a topology
// in-process (goroutine PEs, Δt node schedulers) and prints the run
// report. The send/recv modes demonstrate the TCP transport: a receiver
// accepts framed SDOs and reports throughput; a sender streams synthetic
// SDOs at a target rate.
//
// Usage:
//
//	aces-spc -mode local -pes 60 -nodes 10 -policy aces -duration 20
//	aces-spc -mode recv -listen :7070
//	aces-spc -mode send -connect localhost:7070 -rate 5000 -count 20000
//
// Node mode runs ONE PARTITION of a shared topology as its own process —
// a genuinely distributed ACES deployment. One side listens, the other
// dials; both need the same topology JSON (from aces-topo -solve):
//
//	aces-spc -mode node -topo t.json -local-nodes 0,1 -listen :7071 -duration 20
//	aces-spc -mode node -topo t.json -local-nodes 2,3 -connect host:7071 -duration 20
//
// Both local and node modes can close the adaptive loop: -retarget-every
// re-solves the tier-1 targets from online-calibrated rate models and
// applies them hitlessly (node mode also disseminates each epoch to the
// peer):
//
//	aces-spc -mode local -pes 60 -nodes 10 -retarget-every 2 -duration 30
//
// With -elastic the loop also picks per-PE replica counts from the
// calibrated model (PEs need replica slots: max_replicas in the topology,
// or grant them everywhere with -replicas-max):
//
//	aces-spc -mode local -retarget-every 2 -elastic -replicas-max 3
//
// The control plane itself can be made fault tolerant: -standby-rank
// arms a partition as a ranked standby controller that claims the next
// term and resumes the adaptive loop when the incumbent's target frames
// go silent, and -safety-after enables the stale-target safety mode (a
// partition cut off from every controller blends its targets toward the
// declared-model allocation instead of trusting stale calibration
// forever):
//
//	aces-spc -mode node -topo t.json -local-nodes 2,3 -connect host:7071 \
//	  -retarget-every 2 -standby-rank 0 -safety-after 10
//
// Local and node modes optionally expose live inspection endpoints
// (/debug/report, /debug/telemetry, /debug/traces, /debug/graph,
// /debug/health) and sampled per-SDO tracing:
//
//	aces-spc -mode local -debug-addr 127.0.0.1:7099 -trace-every 8 -trace-out spans.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"aces"
	"aces/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "aces-spc: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aces-spc", flag.ContinueOnError)
	var (
		mode       = fs.String("mode", "local", "local | recv | send")
		pes        = fs.Int("pes", 60, "PEs when generating (local)")
		nodes      = fs.Int("nodes", 10, "nodes when generating (local)")
		seed       = fs.Int64("seed", 1, "seed")
		polName    = fs.String("policy", "aces", "policy (local)")
		duration   = fs.Float64("duration", 20, "virtual seconds (local)")
		scale      = fs.Float64("scale", 10, "time acceleration (local; 1 = real time)")
		topoFile   = fs.String("topo", "", "topology JSON from aces-topo (local)")
		listen     = fs.String("listen", "", "listen address (recv/node)")
		connect    = fs.String("connect", "", "peer address (send)")
		connect2   = fs.String("peer", "", "peer address (node mode dial side)")
		localNodes = fs.String("local-nodes", "", "comma-separated node ids hosted by this process (node mode)")
		rate       = fs.Float64("rate", 1000, "SDOs per second (send)")
		count      = fs.Int("count", 10000, "SDOs to send (send)")
		upQueue    = fs.Int("uplink-queue", 1024, "uplink outbox capacity in frames (node mode)")
		upTimeout  = fs.Duration("uplink-timeout", time.Second, "uplink per-frame write deadline (node mode)")
		batchMax   = fs.Int("batch-max", 32, "uplink batch size in SDOs; 1 disables batched framing (node mode)")
		batchLing  = fs.Duration("batch-linger", 0, "wait up to this long to fill a non-full batch; 0 = flush-on-idle only (node mode)")
		debugAddr  = fs.String("debug-addr", "", "serve /debug/* inspection endpoints on this address (local/node; \":0\" picks a port)")
		traceEvery = fs.Int("trace-every", 0, "trace 1-in-N ingress SDOs (0 = off unless -debug-addr/-trace-out, then 64)")
		traceBuf   = fs.Int("trace-buf", 0, "span ring capacity (0 = default 4096)")
		traceOut   = fs.String("trace-out", "", "write retained spans as JSONL to this file at exit")
		hbEvery    = fs.Float64("heartbeat-every", 0.5, "membership beacon period in virtual seconds (node mode; 0 disables heartbeats)")
		rtEvery    = fs.Float64("retarget-every", 0, "re-solve tier-1 targets from calibrated rate models every this many virtual seconds (local/node; 0 = off)")
		rtElastic  = fs.Bool("elastic", false, "let the adaptive loop also choose per-PE replica counts (local/node; needs -retarget-every and replica slots from the topology or -replicas-max)")
		repMax     = fs.Int("replicas-max", 0, "give every non-join PE this many replica slots, overriding the topology's max_replicas (local/node; unpinned slots place round-robin across nodes; 0 = as declared)")
		sbRank     = fs.Int("standby-rank", -1, "arm this process as a ranked standby controller: after rank-staggered target silence it claims the next term and resumes the adaptive loop (local/node; needs -retarget-every; -1 = off)")
		sbSilence  = fs.Float64("standby-silence", 0, "virtual seconds of controller silence before this standby's base claim deadline (0 = 4×retarget-every)")
		safAfter   = fs.Float64("safety-after", 0, "stale-target safety mode: with no fresh target epoch for this many virtual seconds, blend targets a bounded step per tick toward the declared-model allocation (local/node; 0 = off)")
		safStep    = fs.Float64("safety-step", 0, "safety-mode blend increment per scheduler tick in (0, 1] (0 = default 0.05)")
		shards     = fs.Int("sched-shards", 0, "Δt scheduler shards per node (local/node; 0 = auto: one per core, at least 16 PE slots per shard)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ob := obsOpts{debugAddr: *debugAddr, traceEvery: *traceEvery, traceBuf: *traceBuf, traceOut: *traceOut}
	el := elasticOpts{elastic: *rtElastic, replicasMax: *repMax}
	co := ctrlOpts{standbyRank: *sbRank, standbySilence: *sbSilence, safetyAfter: *safAfter, safetyStep: *safStep}
	if el.elastic && *rtEvery <= 0 {
		return fmt.Errorf("-elastic needs the adaptive loop: set -retarget-every")
	}
	if co.standbyRank >= 0 && *rtEvery <= 0 {
		return fmt.Errorf("-standby-rank needs the adaptive loop: set -retarget-every")
	}
	switch *mode {
	case "local":
		return runLocal(*topoFile, *pes, *nodes, *seed, *polName, *duration, *scale, *rtEvery, *shards, el, co, ob)
	case "node":
		up := uplinkOpts{queue: *upQueue, timeout: *upTimeout, batchMax: *batchMax, batchLinger: *batchLing}
		return runNode(*topoFile, *localNodes, *listen, *connect2, *seed, *polName, *duration, *scale, *hbEvery, *rtEvery, *shards, up, el, co, ob)
	case "recv":
		addr := *listen
		if addr == "" {
			addr = ":7070"
		}
		return runRecv(addr)
	case "send":
		addr := *connect
		if addr == "" {
			addr = "localhost:7070"
		}
		return runSend(addr, *rate, *count)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// elasticOpts bundles the replication flags shared by local and node
// modes.
type elasticOpts struct {
	elastic     bool
	replicasMax int
}

// apply rewrites the topology's replica grants when -replicas-max is set:
// every non-join PE gets exactly that many slots (1 = replication off),
// placed by the topology's usual pinned/round-robin rule. Join PEs keep a
// single slot — per-upstream pairing is not partitionable by key-hash.
func (e elasticOpts) apply(topo *aces.Topology) {
	if e.replicasMax <= 0 {
		return
	}
	for j := range topo.PEs {
		if topo.PEs[j].Join {
			continue
		}
		topo.PEs[j].MaxReplicas = e.replicasMax
	}
}

// startRetarget turns the adaptive loop on (plain or elastic) and
// announces it.
func (e elasticOpts) startRetarget(cl *aces.Cluster, rtEvery float64) error {
	if rtEvery <= 0 {
		return nil
	}
	if err := cl.StartRetarget(aces.RetargetConfig{Every: rtEvery, Elastic: e.elastic}); err != nil {
		return err
	}
	if e.elastic {
		fmt.Printf("adaptive loop on: elastic re-solve (targets + replica counts) every %gs virtual\n", rtEvery)
	} else {
		fmt.Printf("adaptive loop on: re-solving calibrated targets every %gs virtual\n", rtEvery)
	}
	return nil
}

// ctrlOpts bundles the control-plane resilience flags shared by local
// and node modes.
type ctrlOpts struct {
	standbyRank    int
	standbySilence float64
	safetyAfter    float64
	safetyStep     float64
}

// safety returns the ClusterConfig.Safety block the flags ask for (nil
// when the mode is off).
func (co ctrlOpts) safety() *aces.SafetyConfig {
	if co.safetyAfter <= 0 {
		return nil
	}
	return &aces.SafetyConfig{After: co.safetyAfter, Step: co.safetyStep}
}

// start arms the adaptive loop: the active controller by default, or a
// ranked standby (silence-watching, term-claiming) when -standby-rank is
// set — the standby only starts retargeting after a successful claim.
func (co ctrlOpts) start(cl *aces.Cluster, rtEvery float64, el elasticOpts) error {
	if co.standbyRank < 0 {
		return el.startRetarget(cl, rtEvery)
	}
	if rtEvery <= 0 {
		return nil
	}
	silence := co.standbySilence
	if silence <= 0 {
		silence = 4 * rtEvery
	}
	err := cl.StartFailover(aces.FailoverConfig{
		Rank: co.standbyRank, SilenceAfter: silence,
		Retarget: aces.RetargetConfig{Every: rtEvery, Elastic: el.elastic},
		OnClaim: func(term uint64) {
			fmt.Printf("standby claimed controller term %d — resuming the adaptive loop\n", term)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("standby controller armed: rank %d, claiming after %.1fs of target silence\n",
		co.standbyRank, silence)
	return nil
}

// report prints the control-plane outcome once the run is over.
func (co ctrlOpts) report(rep aces.Report) {
	if rep.TargetTerm > 0 {
		fmt.Printf("controller term     %d\n", rep.TargetTerm)
	}
	if rep.FencedFrames > 0 {
		fmt.Printf("fenced frames       %d (deposed-term targets rejected)\n", rep.FencedFrames)
	}
}

// report prints the replication outcome once the run is over.
func (e elasticOpts) report(peak int) {
	if !e.elastic && e.replicasMax <= 0 {
		return
	}
	grant := "as declared"
	if e.replicasMax > 0 {
		grant = fmt.Sprintf("cap %d", e.replicasMax)
	}
	fmt.Printf("replicas            peak %d active slots on one PE (%s)\n", peak, grant)
}

// obsOpts bundles the observability flags shared by local and node modes.
type obsOpts struct {
	debugAddr  string
	traceEvery int
	traceBuf   int
	traceOut   string
}

// build constructs the tracer and telemetry registry the flags ask for
// (nil when observability is off — the data path then pays only nil
// checks). The salt keeps trace IDs distinct across partition processes.
func (o obsOpts) build(salt int64) (*aces.Tracer, *aces.TelemetryRegistry, *aces.MemoryTelemetrySink) {
	var tr *aces.Tracer
	if o.traceEvery > 0 || o.debugAddr != "" || o.traceOut != "" {
		every := o.traceEvery
		if every <= 0 {
			every = 64
		}
		tr = aces.NewTracer(every, o.traceBuf, salt)
	}
	var reg *aces.TelemetryRegistry
	var sink *aces.MemoryTelemetrySink
	if o.debugAddr != "" {
		sink = aces.NewMemoryTelemetrySink(0)
		reg = aces.NewTelemetryRegistry(sink)
	}
	return tr, reg, sink
}

// serve starts the /debug/* endpoint when requested; the returned cleanup
// also writes the -trace-out JSONL export. Call it after the cluster is
// built and defer the cleanup.
func (o obsOpts) serve(cl *aces.Cluster, topo *aces.Topology, title string,
	tr *aces.Tracer, reg *aces.TelemetryRegistry, sink *aces.MemoryTelemetrySink) (func(), error) {
	var srv *aces.DebugServer
	if o.debugAddr != "" {
		var err error
		srv, err = aces.ServeDebug(o.debugAddr, aces.DebugOptions{
			Report:   func() any { return cl.Report(cl.Now()) },
			Registry: reg,
			Sink:     sink,
			Tracer:   tr,
			GraphDOT: func(w io.Writer) error { return topo.WriteDOT(w, title) },
			Health:   func() any { return cl.Health() },
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("debug endpoint on http://%s/debug/\n", srv.Addr())
	}
	return func() {
		if srv != nil {
			srv.Close()
		}
		if o.traceOut != "" && tr != nil {
			f, err := os.Create(o.traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aces-spc: trace export: %v\n", err)
				return
			}
			defer f.Close()
			if err := tr.ExportJSONL(f); err != nil {
				fmt.Fprintf(os.Stderr, "aces-spc: trace export: %v\n", err)
				return
			}
			fmt.Printf("exported trace spans to %s\n", o.traceOut)
		}
	}, nil
}

func runLocal(topoFile string, pes, nodes int, seed int64, polName string, duration, scale, rtEvery float64, schedShards int, el elasticOpts, co ctrlOpts, ob obsOpts) error {
	pol, err := aces.ParsePolicy(polName)
	if err != nil {
		return err
	}
	var topo *aces.Topology
	var cpu []float64
	if topoFile != "" {
		data, err := os.ReadFile(topoFile)
		if err != nil {
			return err
		}
		var doc struct {
			Topology *aces.Topology `json:"topology"`
			CPU      []float64      `json:"cpu,omitempty"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return err
		}
		if doc.Topology == nil {
			return fmt.Errorf("no topology in %s", topoFile)
		}
		if err := doc.Topology.Rebuild(); err != nil {
			return err
		}
		topo, cpu = doc.Topology, doc.CPU
	} else {
		topo, err = aces.Generate(aces.DefaultGenConfig(pes, nodes, seed))
		if err != nil {
			return err
		}
	}
	el.apply(topo)
	if cpu == nil {
		alloc, err := aces.Optimize(topo, aces.OptimizeConfig{
			MaxIters: 800, Utility: aces.LinearUtility{}, MinShare: 0.02,
		})
		if err != nil {
			return err
		}
		cpu = alloc.CPU
	}
	tr, reg, sink := ob.build(seed)
	cl, err := aces.NewCluster(aces.ClusterConfig{
		Topo: topo, Policy: pol, CPU: cpu, TimeScale: scale, Warmup: duration / 5, Seed: seed,
		Tracer: tr, Telemetry: reg, Safety: co.safety(), SchedShards: schedShards,
	})
	if err != nil {
		return err
	}
	cleanup, err := ob.serve(cl, topo, fmt.Sprintf("aces local deployment (%s)", pol), tr, reg, sink)
	if err != nil {
		return err
	}
	defer cleanup()
	if err := co.start(cl, rtEvery, el); err != nil {
		return err
	}
	fmt.Printf("running %d PEs on %d nodes under %s for %.0fs virtual (%.0f× wall speed)...\n",
		topo.NumPEs(), topo.NumNodes, pol, duration, scale)
	rep, err := cl.Run(duration)
	if err != nil {
		return err
	}
	fmt.Printf("weighted throughput %.2f /s\n", rep.WeightedThroughput)
	fmt.Printf("latency mean ± σ    %.1f ± %.1f ms (p95 %.1f)\n", rep.MeanLatency*1e3, rep.StdLatency*1e3, rep.P95*1e3)
	fmt.Printf("drops               input %d, in-flight %d\n", rep.InputDrops, rep.InFlightDrops)
	fmt.Printf("buffer occupancy    %.1f ± %.1f\n", rep.MeanBufferOccupancy, rep.StdBufferOccupancy)
	if rep.Retargets > 0 {
		fmt.Printf("retargets           %d (final epoch %d)\n", rep.Retargets, rep.TargetEpoch)
	}
	co.report(rep)
	el.report(rep.ActiveReplicas)
	return nil
}

func runRecv(addr string) error {
	l, err := transport.Listen(addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("listening on %s\n", l.Addr())
	conn, err := l.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	var n int
	var bytes int
	start := time.Now()
	for {
		msg, err := conn.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if msg.Kind == transport.KindData {
			n++
			bytes += msg.SDO.Bytes
		}
	}
	el := time.Since(start).Seconds()
	fmt.Printf("received %d SDOs (%d bytes) in %.2fs — %.0f SDO/s\n", n, bytes, el, float64(n)/el)
	return nil
}

func runSend(addr string, rate float64, count int) error {
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	next := start
	for i := 0; i < count; i++ {
		s := aces.SDO{Stream: 1, Seq: uint64(i), Origin: time.Now(), Bytes: 64, Payload: make([]byte, 64)}
		if err := conn.SendSDO(s); err != nil {
			return err
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	el := time.Since(start).Seconds()
	fmt.Printf("sent %d SDOs in %.2fs — %.0f SDO/s\n", count, el, float64(count)/el)
	return nil
}

// uplinkOpts bundles the node-mode uplink flags.
type uplinkOpts struct {
	queue       int
	timeout     time.Duration
	batchMax    int
	batchLinger time.Duration
}

// runNode hosts one partition of a shared topology, bridging to exactly
// one peer process (listen XOR dial) through a resilient uplink: sends
// never block the PE emit path or the Δt scheduler, and a stalled or
// severed peer triggers automatic reconnection while the local partition
// keeps running.
func runNode(topoFile, localNodes, listenAddr, peerAddr string, seed int64, polName string, duration, scale, hbEvery, rtEvery float64, schedShards int, up uplinkOpts, el elasticOpts, co ctrlOpts, ob obsOpts) error {
	if topoFile == "" {
		return fmt.Errorf("node mode requires -topo (shared across all partitions)")
	}
	if localNodes == "" {
		return fmt.Errorf("node mode requires -local-nodes")
	}
	if (listenAddr == "") == (peerAddr == "") {
		return fmt.Errorf("node mode needs exactly one of -listen or -peer")
	}
	pol, err := aces.ParsePolicy(polName)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(topoFile)
	if err != nil {
		return err
	}
	var doc struct {
		Topology *aces.Topology `json:"topology"`
		CPU      []float64      `json:"cpu,omitempty"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Topology == nil || doc.CPU == nil {
		return fmt.Errorf("node mode requires a topology with tier-1 targets (aces-topo -solve)")
	}
	if err := doc.Topology.Rebuild(); err != nil {
		return err
	}
	// Every partition must apply the same override or their replica-slot
	// layouts disagree (same rule as sharing the topology JSON itself).
	el.apply(doc.Topology)
	var nodes []aces.NodeID
	for _, part := range strings.Split(localNodes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -local-nodes entry %q: %w", part, err)
		}
		nodes = append(nodes, aces.NodeID(n))
	}

	// The DialFunc abstracts connection establishment for both roles: the
	// listening side re-accepts after a sever, the dialing side redials
	// (with backoff, so a peer that is not up yet is simply waited for).
	var dial aces.DialFunc
	var lis *aces.Listener
	if listenAddr != "" {
		lis, err = aces.Listen(listenAddr)
		if err != nil {
			return err
		}
		defer lis.Close()
		fmt.Printf("waiting for peer on %s...\n", lis.Addr())
		dial = func() (*aces.Conn, error) { return lis.Accept() }
	} else {
		dial = func() (*aces.Conn, error) { return aces.Dial(peerAddr, 2*time.Second) }
	}
	link := aces.NewResilientLink(dial, aces.ResilientOptions{
		QueueSize: up.queue, WriteTimeout: up.timeout,
		BatchMax: up.batchMax, BatchLinger: up.batchLinger,
	})
	defer link.Close()

	// Salt the tracer with the partition's first node so the two sides of
	// a bridge never mint colliding trace IDs (stitching is by ID).
	tr, reg, sink := ob.build(seed*1000003 + int64(nodes[0]) + 1)
	var hc *aces.HealthConfig
	if hbEvery > 0 {
		hc = &aces.HealthConfig{Every: hbEvery}
	}
	cl, err := aces.NewCluster(aces.ClusterConfig{
		Topo: doc.Topology, Policy: pol, CPU: doc.CPU,
		TimeScale: scale, Warmup: duration / 5, Seed: seed,
		LocalNodes: nodes, Uplink: link, Health: hc,
		Tracer: tr, Telemetry: reg, Safety: co.safety(), SchedShards: schedShards,
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("aces partition hosting nodes %v (%s)", nodes, pol)
	cleanup, err := ob.serve(cl, doc.Topology, title, tr, reg, sink)
	if err != nil {
		return err
	}
	defer cleanup()
	serveDone := make(chan error, 1)
	go func() { serveDone <- link.Serve(cl) }()

	// The adaptive loop calibrates local PEs only, so every partition may
	// run it; epoch ordering keeps concurrent re-solves consistent. New
	// epochs ride the same uplink as heartbeats (v1 peers are skipped).
	// With -standby-rank this partition instead watches the incumbent and
	// claims the next controller term on silence.
	if err := co.start(cl, rtEvery, el); err != nil {
		return err
	}
	fmt.Printf("hosting nodes %v of %d-PE topology under %s for %.0fs virtual...\n",
		nodes, doc.Topology.NumPEs(), pol, duration)
	rep, err := cl.Run(duration)
	if err != nil {
		return err
	}
	// Unblock a pending Accept before closing the link (its manager
	// goroutine may be waiting inside the DialFunc).
	if lis != nil {
		lis.Close()
	}
	link.Close()
	<-serveDone
	fmt.Printf("local weighted throughput %.2f /s (egress PEs hosted here only)\n", rep.WeightedThroughput)
	fmt.Printf("latency %.1f ms (p95 %.1f), drops input %d in-flight %d\n",
		rep.MeanLatency*1e3, rep.P95*1e3, rep.InputDrops, rep.InFlightDrops)
	for _, ls := range rep.Links {
		fmt.Printf("uplink              sent %d, dropped %d, reconnects %d, queue %d/%d\n",
			ls.FramesSent, ls.FramesDropped, ls.Reconnects, ls.QueueLen, ls.QueueCap)
	}
	if rep.Retargets > 0 {
		fmt.Printf("retargets           %d (final epoch %d)\n", rep.Retargets, rep.TargetEpoch)
	}
	co.report(rep)
	el.report(rep.ActiveReplicas)
	return nil
}
