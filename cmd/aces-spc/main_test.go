package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aces"
)

func TestLocalMode(t *testing.T) {
	if err := run([]string{
		"-mode", "local", "-pes", "10", "-nodes", "2",
		"-policy", "aces", "-duration", "4", "-scale", "40",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOverLoopback(t *testing.T) {
	// Receiver on a random port; we discover it by racing a fixed port is
	// flaky, so use a fixed high port and retry-free local loopback.
	const addr = "127.0.0.1:39271"
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		errCh <- run([]string{"-mode", "recv", "-listen", addr})
	}()
	// Dial retries are built into the sender? No — poll until the listener
	// is up by attempting sends.
	var sendErr error
	for attempt := 0; attempt < 50; attempt++ {
		sendErr = run([]string{"-mode", "send", "-connect", addr, "-rate", "20000", "-count", "500"})
		if sendErr == nil {
			break
		}
	}
	if sendErr != nil {
		t.Fatalf("send never succeeded: %v", sendErr)
	}
	wg.Wait()
	if err := <-errCh; err != nil {
		t.Fatalf("recv: %v", err)
	}
}

func TestUnknownMode(t *testing.T) {
	if err := run([]string{"-mode", "wat"}); err == nil {
		t.Errorf("unknown mode accepted")
	}
	if err := run([]string{"-mode", "local", "-policy", "bogus"}); err == nil {
		t.Errorf("unknown policy accepted")
	}
}

func TestNodeModePairOverLoopback(t *testing.T) {
	// Shared topology: a 4-stage chain split across nodes 0 and 1, with
	// tier-1 targets attached (node mode requires them).
	topo := aces.NewTopology(2, 50)
	svc := aces.ServiceParams{T0: 0.002, T1: 0.002, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
	prev := aces.PEID(-1)
	for i := 0; i < 4; i++ {
		w := 0.0
		if i == 3 {
			w = 1
		}
		id := topo.AddPE(aces.PE{Service: svc, Node: aces.NodeID(i / 2), Weight: w})
		if prev >= 0 {
			if err := topo.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := topo.AddSource(aces.Source{Stream: 1, Target: 0, Rate: 80, Burst: aces.BurstSpec{Kind: aces.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	doc := struct {
		Topology *aces.Topology `json:"topology"`
		CPU      []float64      `json:"cpu"`
	}{topo, []float64{0.4, 0.4, 0.4, 0.4}}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	const addr = "127.0.0.1:39272"
	var wg sync.WaitGroup
	wg.Add(2)
	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() {
		defer wg.Done()
		errA <- run([]string{"-mode", "node", "-topo", path, "-local-nodes", "0",
			"-listen", addr, "-duration", "6", "-scale", "30"})
	}()
	go func() {
		defer wg.Done()
		errB <- run([]string{"-mode", "node", "-topo", path, "-local-nodes", "1",
			"-peer", addr, "-duration", "6", "-scale", "30"})
	}()
	wg.Wait()
	if err := <-errA; err != nil {
		t.Fatalf("listener partition: %v", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("dialer partition: %v", err)
	}
}

func TestNodeModeValidation(t *testing.T) {
	if err := run([]string{"-mode", "node"}); err == nil {
		t.Errorf("node mode without topo accepted")
	}
	if err := run([]string{"-mode", "node", "-topo", "x.json"}); err == nil {
		t.Errorf("node mode without local-nodes accepted")
	}
	if err := run([]string{"-mode", "node", "-topo", "x.json", "-local-nodes", "0"}); err == nil {
		t.Errorf("node mode without listen/peer accepted")
	}
	if err := run([]string{"-mode", "node", "-topo", "x.json", "-local-nodes", "0", "-listen", ":1", "-peer", "y"}); err == nil {
		t.Errorf("node mode with both listen and peer accepted")
	}
}
