package aces_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI), one per artifact, plus ablations and microbenchmarks of the hot
// control paths. Figure benches run the Quick()-scale experiment so
// `go test -bench=.` completes in minutes; `cmd/aces-bench` (no -quick)
// runs the full paper scale and EXPERIMENTS.md records its output.

import (
	"testing"

	"aces"
	"aces/internal/control"
	"aces/internal/controller"
	"aces/internal/experiments"
	"aces/internal/graph"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/streamsim"
)

// BenchmarkFig3LatencyDistribution regenerates Fig. 3: end-to-end latency
// mean ± σ for ACES vs Lock-Step across buffer sizes.
func BenchmarkFig3LatencyDistribution(b *testing.B) {
	o := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BufferSweep(o, []int{10, 50})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig4LatencyVsThroughput regenerates Fig. 4: the latency versus
// weighted-throughput frontier, parametric in buffer size.
func BenchmarkFig4LatencyVsThroughput(b *testing.B) {
	o := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BufferSweep(o, []int{10, 25, 50, 100})
		if err != nil {
			b.Fatal(err)
		}
		// The frontier is the (wt, lat) pairs per policy per B.
		_ = rows
	}
}

// BenchmarkFig5BurstinessSweep regenerates Fig. 5: weighted throughput of
// the three systems as burstiness λ_S varies.
func BenchmarkFig5BurstinessSweep(b *testing.B) {
	o := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BurstinessSweep(o, []float64{1, 10, 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Calibration regenerates the SPC↔simulator calibration
// points shown in Fig. 5 (and §VI-C's E8).
func BenchmarkFig5Calibration(b *testing.B) {
	o := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Calibration(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallBufferAdvantage regenerates the §I claim table: ACES vs
// traditional approaches in the limit of small buffers.
func BenchmarkSmallBufferAdvantage(b *testing.B) {
	o := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SmallBufferAdvantage(o, []int{5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocationErrorRobustness regenerates the §VII robustness
// claim: weighted throughput under perturbed tier-1 targets.
func BenchmarkAllocationErrorRobustness(b *testing.B) {
	o := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(o, []float64{0, 0.3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerConvergence regenerates the §V-C stability result:
// settling time and steady-state error of the regulated buffer.
func BenchmarkControllerConvergence(b *testing.B) {
	o := experiments.Quick()
	o.Duration = 20
	for i := 0; i < b.N; i++ {
		res, err := experiments.Stability(o)
		if err != nil {
			b.Fatal(err)
		}
		if res.SettleTime < 0 {
			b.Fatal("controller failed to settle")
		}
	}
}

// BenchmarkMaxFlowFanout regenerates Fig. 2: the 10/20/20/30 fan-out under
// max-flow versus min-flow.
func BenchmarkMaxFlowFanout(b *testing.B) {
	o := experiments.Quick()
	o.Duration = 20
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fanout(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibration is E8 on its own (also exercised by Fig5).
func BenchmarkCalibration(b *testing.B) {
	o := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Calibration(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMaxFlowVsMinFlow and BenchmarkAblationTokenBucketVsStrict
// quantify the two design choices DESIGN.md calls out.
func BenchmarkAblationMaxFlowVsMinFlow(b *testing.B) {
	o := experiments.Quick()
	topo, err := graph.Generate(graph.DefaultGenConfig(o.PEs, o.Nodes, 1))
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := optimize.Solve(topo, optimize.Config{MaxIters: 300, Utility: optimize.LinearUtility{}, MinShare: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range []policy.Policy{policy.ACES, policy.ACESMinFlow} {
			eng, err := streamsim.New(streamsim.Config{Topo: topo, Policy: pol, CPU: alloc.CPU, Duration: o.Duration, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			eng.Run()
		}
	}
}

func BenchmarkAblationTokenBucketVsStrict(b *testing.B) {
	o := experiments.Quick()
	topo, err := graph.Generate(graph.DefaultGenConfig(o.PEs, o.Nodes, 1))
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := optimize.Solve(topo, optimize.Config{MaxIters: 300, Utility: optimize.LinearUtility{}, MinShare: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range []policy.Policy{policy.ACES, policy.ACESStrictCPU} {
			eng, err := streamsim.New(streamsim.Config{Topo: topo, Policy: pol, CPU: alloc.CPU, Duration: o.Duration, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			eng.Run()
		}
	}
}

// --- Microbenchmarks of the hot paths ---

// BenchmarkFlowControllerUpdate measures one Eq. 7 evaluation — executed
// once per PE per Δt in both substrates.
func BenchmarkFlowControllerUpdate(b *testing.B) {
	g, err := control.Design(control.DefaultDesign(25))
	if err != nil {
		b.Fatal(err)
	}
	fc, err := control.NewFlowController(g, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc.Update(5, float64(i%50))
	}
}

// BenchmarkPlanACES measures the per-node CPU plan for a typical node
// population (6 PEs).
func BenchmarkPlanACES(b *testing.B) {
	pes := make([]controller.PETick, 6)
	for i := range pes {
		pes[i] = controller.PETick{Target: 0.15, Tokens: 0.3, Occupancy: float64(10 + i), Work: 0.4, Cap: 0.5}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		controller.PlanACES(pes, 1)
	}
}

// BenchmarkLQRDesign measures the full DARE synthesis (done once per PE at
// deployment).
func BenchmarkLQRDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := control.Design(control.DefaultDesign(25)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTier1Optimize measures the global optimization at calibration
// scale (60 PEs / 10 nodes).
func BenchmarkTier1Optimize(b *testing.B) {
	topo, err := graph.Generate(graph.DefaultGenConfig(60, 10, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimize.Solve(topo, optimize.Config{MaxIters: 300, Utility: optimize.LinearUtility{}, MinShare: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorTick measures simulator throughput in PE-ticks/sec at
// calibration scale: one iteration simulates 10 seconds of a 60-PE system
// (60 000 PE-ticks at Δt = 10 ms).
func BenchmarkSimulatorTick(b *testing.B) {
	topo, err := graph.Generate(graph.DefaultGenConfig(60, 10, 1))
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := optimize.Solve(topo, optimize.Config{MaxIters: 300, Utility: optimize.LinearUtility{}, MinShare: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := streamsim.New(streamsim.Config{Topo: topo, Policy: policy.ACES, CPU: alloc.CPU, Duration: 10, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

// BenchmarkTopologyGenerate measures the §VI-A topology tool at paper
// scale.
func BenchmarkTopologyGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := aces.Generate(aces.DefaultGenConfig(200, 80, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadShedComparator measures the §II related-work comparator
// (Aurora-style threshold shedding) against the three headline systems.
func BenchmarkLoadShedComparator(b *testing.B) {
	o := experiments.Quick()
	topo, err := graph.Generate(graph.DefaultGenConfig(o.PEs, o.Nodes, 2))
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := optimize.Solve(topo, optimize.Config{MaxIters: 300, Utility: optimize.LinearUtility{}, MinShare: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range []policy.Policy{policy.ACES, policy.UDP, policy.LockStep, policy.LoadShed} {
			eng, err := streamsim.New(streamsim.Config{Topo: topo, Policy: pol, CPU: alloc.CPU, Duration: o.Duration, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			eng.Run()
		}
	}
}
