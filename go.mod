module aces

go 1.22
