package aces

import (
	"io"
	"time"

	"aces/internal/chaos"
	"aces/internal/control"
	"aces/internal/experiments"
	"aces/internal/graph"
	"aces/internal/hier"
	"aces/internal/metrics"
	"aces/internal/obs"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/spc"
	"aces/internal/streamsim"
	"aces/internal/transport"
	"aces/internal/workload"
)

// Identifier types.
type (
	// StreamID identifies a stream; external inputs are s_0..s_{S-1}.
	StreamID = sdo.StreamID
	// PEID identifies a processing element p_0..p_{P-1}.
	PEID = sdo.PEID
	// NodeID identifies a processing node n_0..n_{N-1}.
	NodeID = sdo.NodeID
	// SDO is the stream data object, the unit of dataflow.
	SDO = sdo.SDO
)

// Topology construction and generation.
type (
	// Topology is a deployment: PEs, DAG edges, placement and sources.
	Topology = graph.Topology
	// PE describes one processing element.
	PE = graph.PE
	// Source is an external input stream attached to an ingress PE.
	Source = graph.Source
	// BurstSpec selects a source arrival process.
	BurstSpec = graph.BurstSpec
	// GenConfig parameterizes the random topology generator (§VI-A).
	GenConfig = graph.GenConfig
	// Edge is a directed PE-graph edge.
	Edge = graph.Edge
)

// Source arrival kinds.
const (
	BurstDeterministic = graph.BurstDeterministic
	BurstPoisson       = graph.BurstPoisson
	BurstOnOff         = graph.BurstOnOff
	BurstTrace         = graph.BurstTrace
	BurstHeavyTail     = graph.BurstHeavyTail
)

// NewTopology returns an empty topology with the given node count and
// default per-PE input buffer capacity (the paper's B, default 50).
func NewTopology(numNodes, defaultBufferSize int) *Topology {
	return graph.New(numNodes, defaultBufferSize)
}

// Generate builds a random layered-DAG topology with the paper's shape
// parameters (fan-in ≤ 3, fan-out ≤ 4, 20% multi-IO) and load-aware
// placement, calibrated into overload.
func Generate(cfg GenConfig) (*Topology, error) { return graph.Generate(cfg) }

// DefaultGenConfig returns the §VI-C generation parameters at the given
// scale.
func DefaultGenConfig(numPEs, numNodes int, seed int64) GenConfig {
	return graph.DefaultGenConfig(numPEs, numNodes, seed)
}

// Workload models.
type (
	// ServiceParams is the two-state Markov-modulated PE cost model
	// (§VI-B): per-SDO costs T0/T1, stationary slow fraction ρ, dwell
	// scale λ_S and output multiplicity λ_m.
	ServiceParams = workload.ServiceParams
	// ArrivalProcess generates source inter-arrival times.
	ArrivalProcess = workload.ArrivalProcess
)

// DefaultServiceParams returns the paper's §VI-C settings: T0 = 2 ms,
// T1 = 20 ms, ρ = 0.5, λ_S = 10, λ_m = 1.
func DefaultServiceParams() ServiceParams { return workload.DefaultServiceParams() }

// Tier 1: the global optimizer.
type (
	// OptimizeConfig tunes the tier-1 solver.
	OptimizeConfig = optimize.Config
	// Allocation is the tier-1 result: CPU targets and fluid rates.
	Allocation = optimize.Allocation
	// Utility is the concave utility shaping the objective.
	Utility = optimize.Utility
	// LinearUtility is U(x) = x (the paper's weighted throughput itself).
	LinearUtility = optimize.LinearUtility
	// LogUtility is U(x) = log(1 + x/Scale).
	LogUtility = optimize.LogUtility
	// ExpUtility is U(x) = 1 − e^{−x/Scale}.
	ExpUtility = optimize.ExpUtility
	// Calibrator maintains per-PE RLS estimates of the rate model
	// h_j(c̄) = a_j·c̄ − b_j from live telemetry and produces a calibrated
	// topology for re-solving.
	Calibrator = optimize.Calibrator
	// RateModel is one PE's calibrated (a, b) estimate.
	RateModel = optimize.RateModel
	// RLS is the recursive-least-squares estimator behind Calibrator.
	RLS = optimize.RLS
	// ElasticAllocation is the elastic tier-1 result: per-replica-slot CPU
	// targets plus the chosen replica count per PE.
	ElasticAllocation = optimize.ElasticAllocation
	// GradientMode selects the solver's gradient engine
	// (OptimizeConfig.Gradient).
	GradientMode = optimize.GradientMode
)

// Gradient engines for OptimizeConfig.Gradient.
const (
	// GradientAnalytic (the default) computes the exact subgradient by one
	// reverse-mode sweep over the fluid DAG per iteration — O(edges)
	// instead of one propagation per PE.
	GradientAnalytic = optimize.GradientAnalytic
	// GradientFiniteDiff is the central-difference reference engine the
	// analytic adjoint is validated against; it costs p propagations per
	// iteration and exists for cross-checks, not production solves.
	GradientFiniteDiff = optimize.GradientFiniteDiff
)

// Optimize computes time-averaged CPU targets maximizing the weighted
// throughput of the topology (paper §V-B).
func Optimize(t *Topology, cfg OptimizeConfig) (*Allocation, error) {
	return optimize.Solve(t, cfg)
}

// OptimizeElastic is the elastic tier-1 solve: it additionally chooses how
// many replica slots of each elastic PE (MaxReplicas > 1) to activate, and
// how much CPU each active slot gets on its node. Apply the result with
// Cluster.SetReplicaTargets.
func OptimizeElastic(t *Topology, cfg OptimizeConfig) (*ElasticAllocation, error) {
	return optimize.SolveElastic(t, cfg)
}

// NewCalibrator builds a rate-model calibrator over a deployed topology;
// lambda is the RLS forgetting factor (0 → default), minSamples gates how
// many observation windows a PE needs before its estimate replaces the
// declared model.
func NewCalibrator(t *Topology, lambda float64, minSamples int) *Calibrator {
	return optimize.NewCalibrator(t, lambda, minSamples)
}

// Tier 2: control design.
type (
	// FlowGains are the Eq. 7 coefficients (λ_k, μ_l, b₀).
	FlowGains = control.FlowGains
	// FlowDesignConfig parameterizes the LQR synthesis.
	FlowDesignConfig = control.DesignConfig
	// FlowController executes Eq. 7 for one PE.
	FlowController = control.FlowController
)

// DesignFlowGains synthesizes Eq. 7 gains by solving the discrete
// algebraic Riccati equation for the delay-embedded buffer integrator.
func DesignFlowGains(cfg FlowDesignConfig) (FlowGains, error) { return control.Design(cfg) }

// DefaultFlowDesign returns the reproduction's default LQR design for a
// buffer target b₀.
func DefaultFlowDesign(b0 float64) FlowDesignConfig { return control.DefaultDesign(b0) }

// NewFlowController builds an Eq. 7 controller from designed gains.
func NewFlowController(g FlowGains, maxRate float64) (*FlowController, error) {
	return control.NewFlowController(g, maxRate)
}

// Policies (the three systems of §VI plus ablations).
type Policy = policy.Policy

// Policy values.
const (
	// PolicyACES is System 1: LQR flow control, token-bucket CPU control,
	// max-flow forwarding.
	PolicyACES = policy.ACES
	// PolicyUDP is System 2: fire-and-forget forwarding, strict CPU
	// enforcement.
	PolicyUDP = policy.UDP
	// PolicyLockStep is System 3: min-flow blocking delivery.
	PolicyLockStep = policy.LockStep
	// PolicyACESMinFlow is the min-flow ablation of ACES.
	PolicyACESMinFlow = policy.ACESMinFlow
	// PolicyACESStrictCPU is the strict-CPU ablation of ACES.
	PolicyACESStrictCPU = policy.ACESStrictCPU
	// PolicyLoadShed is the §II related-work comparator: UDP forwarding
	// with threshold shedding at 80% of the buffer.
	PolicyLoadShed = policy.LoadShed
)

// ParsePolicy converts a policy name ("aces", "udp", "lockstep", …).
func ParsePolicy(s string) (Policy, error) { return policy.Parse(s) }

// Metrics.
type (
	// Report is the frozen result of a run: weighted throughput, latency
	// distribution, loss accounting and stability indicators (§III-A, §IV).
	Report = metrics.Report
)

// The simulator substrate.
type (
	// SimConfig parameterizes one simulation run.
	SimConfig = streamsim.Config
	// Simulation is a configured simulator instance.
	Simulation = streamsim.Engine
)

// NewSimulation builds a simulator engine for fine-grained control (probes,
// custom instrumentation via Sim()).
func NewSimulation(cfg SimConfig) (*Simulation, error) { return streamsim.New(cfg) }

// Simulate builds and runs one simulation, returning its report.
func Simulate(cfg SimConfig) (Report, error) {
	eng, err := streamsim.New(cfg)
	if err != nil {
		return Report{}, err
	}
	return eng.Run(), nil
}

// The live runtime substrate.
type (
	// ClusterConfig parameterizes a live deployment.
	ClusterConfig = spc.Config
	// Cluster is a running deployment of goroutine PEs under Δt node
	// schedulers.
	Cluster = spc.Cluster
	// Processor is the user computation of one PE.
	Processor = spc.Processor
	// FuncProcessor adapts a function to Processor.
	FuncProcessor = spc.FuncProcessor
	// Synthetic is the §VI-B evaluation workload processor.
	Synthetic = spc.Synthetic
	// Passthrough forwards SDOs unchanged.
	Passthrough = spc.Passthrough
	// RemoteLink carries SDOs and feedback between partitioned cluster
	// processes.
	RemoteLink = spc.RemoteLink
	// Link is a TCP-backed RemoteLink.
	Link = spc.Link
	// Router fans a partitioned deployment out to several Links.
	Router = spc.Router
	// ResilientLink is a non-blocking, self-healing RemoteLink: bounded
	// async outbox, automatic reconnection, loss accounting.
	ResilientLink = spc.ResilientLink
	// ResilientOptions tunes a ResilientLink's outbox, deadlines and
	// reconnect backoff.
	ResilientOptions = transport.ResilientOptions
	// DialFunc produces fresh connections for a ResilientLink (Dial on
	// the connecting side, Listener.Accept on the accepting side).
	DialFunc = transport.DialFunc
	// Conn is a framed transport connection.
	Conn = transport.Conn
	// Listener accepts framed transport connections.
	Listener = transport.Listener
	// HealthConfig enables heartbeat membership on a partitioned cluster
	// (ClusterConfig.Health).
	HealthConfig = spc.HealthConfig
	// SupervisorOptions tunes per-PE crash recovery: restart budget and
	// backoff window (ClusterConfig.Supervisor).
	SupervisorOptions = spc.SupervisorOptions
	// HealthStatus is a node's failure-domain snapshot: peer membership,
	// per-PE restart counts and breaker states (Cluster.Health, served at
	// /debug/health).
	HealthStatus = spc.HealthStatus
	// PEHealth is one PE's supervision state within a HealthStatus.
	PEHealth = spc.PEHealth
	// PanicInjector arms deterministic processor crashes for fault drills.
	PanicInjector = spc.PanicInjector
	// RetargetConfig configures Cluster.StartRetarget, the online
	// calibrate→re-solve→retarget loop that closes the paper's adaptive
	// cycle on a live deployment.
	RetargetConfig = spc.RetargetConfig
	// TargetSender is the uplink extension that disseminates epoch-stamped
	// CPU target sets to peer processes (implemented by Link, Router and
	// ResilientLink).
	TargetSender = spc.TargetSender
	// StepCost is a deterministic processor whose per-SDO cost steps at a
	// scheduled virtual time — the canonical workload drift for exercising
	// the adaptive loop.
	StepCost = spc.StepCost
	// FailoverConfig configures Cluster.StartFailover, the standby watch
	// that claims the next controller term after incumbent silence and
	// resumes the retarget loop warm from the last applied target set.
	FailoverConfig = spc.FailoverConfig
	// SafetyConfig configures ClusterConfig.Safety, the stale-target
	// safety mode: with no fresh target epoch within After, each tick
	// blends the applied allocation a bounded Step further toward the
	// declared-model allocation, hitlessly.
	SafetyConfig = spc.SafetyConfig
	// HierRepair configures Cluster.EnableHierRepair, the self-healing
	// dissemination tree: ordered backup parents adopted on parent
	// silence, plus ack-lag-driven retransmission to descendants.
	HierRepair = spc.HierRepair
	// TermTargetSender is the uplink extension carrying term-stamped CPU
	// target sets (implemented by Link, Router and ResilientLink).
	TermTargetSender = spc.TermTargetSender
	// TermReplicaTargetSender is the term-stamped replica-target variant.
	TermReplicaTargetSender = spc.TermReplicaTargetSender
	// TermAckSender is the term-stamped dissemination-ack variant.
	TermAckSender = spc.TermAckSender
)

// ErrStaleEpoch reports a SetTargets whose epoch is not strictly newer
// than the applied one.
var ErrStaleEpoch = spc.ErrStaleEpoch

// ErrDeposedTerm reports a target set carrying an older controller term
// than the applied one; it wraps ErrStaleEpoch so existing stale-frame
// handling drops it silently.
var ErrDeposedTerm = spc.ErrDeposedTerm

// NewCluster builds a live cluster; Run(duration) executes it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return spc.NewCluster(cfg) }

// Listen binds a TCP listener for cross-process deployments (":0" picks a
// free port).
func Listen(addr string) (*Listener, error) { return transport.Listen(addr) }

// Dial connects to a peer process's listener.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	return transport.Dial(addr, timeout)
}

// NewLink wraps a framed connection as a RemoteLink for partitioned
// clusters.
func NewLink(conn *Conn) *Link { return spc.NewLink(conn) }

// NewRouter returns an empty multi-peer router.
func NewRouter() *Router { return spc.NewRouter() }

// NewResilientLink builds a self-healing RemoteLink that (re)connects via
// dial; see spc.ResilientLink for the failure semantics.
func NewResilientLink(dial DialFunc, opts ResilientOptions) *ResilientLink {
	return spc.NewResilientLink(dial, opts)
}

// NewPassthrough returns a Processor forwarding every SDO on stream out.
func NewPassthrough(out StreamID) *Passthrough { return spc.NewPassthrough(out) }

// NewSynthetic returns the two-state synthetic workload Processor.
func NewSynthetic(params ServiceParams, out StreamID, seed int64) *Synthetic {
	return spc.NewSynthetic(params, out, sim.NewRand(seed))
}

// NewPanicInjector wraps a Processor so that armed crashes panic on the
// next processed SDO — the scriptable fault for chaos drills.
func NewPanicInjector(inner Processor) *PanicInjector { return spc.NewPanicInjector(inner) }

// NewStepCost returns a Processor emitting on stream out whose per-SDO
// cost is base before virtual time at and stepped from then on.
func NewStepCost(out StreamID, base, stepped, at float64) *StepCost {
	return spc.NewStepCost(out, base, stepped, at)
}

// The hierarchical control plane (internal/hier): region-decomposed
// tier-1 solves coordinated by a thin root through priced cut edges,
// with targets disseminated down a spanning tree of processes.
type (
	// HierPartitionConfig parameterizes the region partition of a PE
	// graph.
	HierPartitionConfig = hier.PartitionConfig
	// HierRegion is one region of a decomposition.
	HierRegion = hier.Region
	// HierDecomposition is a complete region partition of a topology.
	HierDecomposition = hier.Decomposition
	// HierConfig tunes the hierarchical tier-1 solve.
	HierConfig = hier.Config
	// HierAllocation is the assembled, full-topology-shaped output of a
	// hierarchical solve.
	HierAllocation = hier.Allocation
	// HierRegionStat reports one region's share of a hierarchical solve.
	HierRegionStat = hier.RegionStat
	// HierRetargetConfig switches Cluster.StartRetarget to the
	// hierarchical solver (RetargetConfig.Hier).
	HierRetargetConfig = spc.HierRetarget
	// EpochAckSender is the uplink extension carrying dissemination acks
	// up the target tree (implemented by Link, Router and ResilientLink).
	EpochAckSender = spc.EpochAckSender
)

// HierPartition decomposes a topology into regions, minimizing the
// stream volume crossing region boundaries under a per-region PE budget.
func HierPartition(t *Topology, cfg HierPartitionConfig) (*HierDecomposition, error) {
	return hier.Partition(t, cfg)
}

// HierSolve runs the hierarchical tier-1 solve over a decomposition; the
// result is shaped like the monolithic Optimize output.
func HierSolve(t *Topology, d *HierDecomposition, cfg HierConfig) (*HierAllocation, error) {
	return hier.Solve(t, d, cfg)
}

// WriteHierDOT renders a region decomposition as a Graphviz digraph with
// cut edges highlighted (aces-topo -regions uses it).
func WriteHierDOT(w io.Writer, t *Topology, d *HierDecomposition, title string) error {
	return hier.WriteDOT(w, t, d, title)
}

// The deterministic chaos harness (internal/chaos): seeded fault
// schedules replayed against a deployment's virtual clock.
type (
	// ChaosSchedule is a reproducible fault script.
	ChaosSchedule = chaos.Schedule
	// ChaosEvent is one scheduled fault.
	ChaosEvent = chaos.Event
	// ChaosInjector applies faults to a concrete deployment.
	ChaosInjector = chaos.Injector
	// ChaosFuncInjector adapts closures to ChaosInjector.
	ChaosFuncInjector = chaos.FuncInjector
	// ChaosRunner replays a schedule against virtual time.
	ChaosRunner = chaos.Runner
	// ChaosGenConfig parameterizes GenerateChaos.
	ChaosGenConfig = chaos.GenConfig
)

// GenerateChaos draws a seeded, reproducible fault schedule.
func GenerateChaos(cfg ChaosGenConfig) (ChaosSchedule, error) { return chaos.Generate(cfg) }

// NewChaosRunner builds a runner that fires a schedule's events as the
// deployment's virtual clock passes them.
func NewChaosRunner(s ChaosSchedule) *ChaosRunner { return chaos.NewRunner(s) }

// Observability: per-SDO tracing, live telemetry and the node debug
// endpoint (internal/obs).
type (
	// Tracer samples SDOs at ingress and collects one span per hop in a
	// fixed-size ring. Pass it to ClusterConfig.Tracer or SimConfig.Tracer.
	Tracer = obs.Tracer
	// Span is one hop of a sampled SDO's journey.
	Span = obs.Span
	// Trace is a reassembled per-SDO trace.
	Trace = obs.Trace
	// TelemetryRegistry holds named live counters, gauges and histograms.
	TelemetryRegistry = obs.Registry
	// TelemetrySink receives periodic registry snapshots.
	TelemetrySink = obs.Sink
	// MemoryTelemetrySink retains snapshot frames in a bounded ring.
	MemoryTelemetrySink = obs.MemorySink
	// DebugOptions wires a node's inspection endpoint providers.
	DebugOptions = obs.DebugOptions
	// DebugServer is a running /debug/* HTTP endpoint.
	DebugServer = obs.DebugServer
)

// NewTracer builds a tracer sampling one in `every` ingress SDOs into a
// ring of `capacity` spans; salt decorrelates IDs between partitions.
func NewTracer(every, capacity int, salt int64) *Tracer {
	return obs.NewTracer(every, capacity, salt)
}

// NewTelemetryRegistry builds a live metric registry flushing snapshots to
// sink (nil = no periodic snapshots, Snapshot() still works).
func NewTelemetryRegistry(sink TelemetrySink) *TelemetryRegistry {
	return obs.NewRegistry(sink)
}

// NewMemoryTelemetrySink retains up to max snapshot frames (≤ 0 = default).
func NewMemoryTelemetrySink(max int) *MemoryTelemetrySink {
	return obs.NewMemorySink(max)
}

// ServeDebug binds addr and serves the /debug/* inspection endpoints.
func ServeDebug(addr string, opts DebugOptions) (*DebugServer, error) {
	return obs.ServeDebug(addr, opts)
}

// MergeTraces stitches per-process trace groups (e.g. the partitions of a
// distributed run) into one list keyed by trace ID.
func MergeTraces(parts ...[]Trace) []Trace { return obs.MergeTraces(parts...) }

// Experiments: the harness regenerating the paper's evaluation.
type (
	// ExperimentOptions scales the experiment suite.
	ExperimentOptions = experiments.Options
)

// DefaultExperiments returns the paper-scale configuration (200 PEs / 80
// nodes, multiple seeds).
func DefaultExperiments() ExperimentOptions { return experiments.Default() }

// QuickExperiments returns a fast configuration for tests and benchmarks.
func QuickExperiments() ExperimentOptions { return experiments.Quick() }
