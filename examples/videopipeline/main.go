// Videopipeline: the paper's §III-C motivating workload — video analytics
// whose processing is inherently bursty ("video processing PEs may require
// an entire frame, or an entire Group Of Pictures, to do a processing
// step"). A decoder feeds a detector whose cost swings 10× between
// I-frame-like and P-frame-like states; detections fan out to a
// high-priority tracker and a low-priority archiver.
//
// The example runs the same deployment under all three systems of §VI and
// prints the comparison, demonstrating the headline result: ACES sustains
// the tracker at full rate with regulated buffers, Lock-Step drags the
// tracker down to the archiver's pace, and UDP wastes detector work on
// SDOs the archiver then drops.
package main

import (
	"fmt"
	"os"

	"aces"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "videopipeline: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	topo := aces.NewTopology(3, 50)

	// Decoder: cheap and steady (2 ms per frame).
	decode := topo.AddPE(aces.PE{
		Name: "decode", Node: 0,
		Service: aces.ServiceParams{T0: 0.002, T1: 0.002, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1},
	})
	// Detector: GOP-bursty — 3 ms on easy frames, 30 ms on I-frames,
	// dwelling ~200 ms in each regime.
	detect := topo.AddPE(aces.PE{
		Name: "detect", Node: 1,
		Service: aces.ServiceParams{T0: 0.003, T1: 0.030, Rho: 0.5, LambdaS: 20, DwellUnit: 0.01, MeanMult: 1},
	})
	// Tracker: real-time consumer, high weight, fast (4 ms).
	track := topo.AddPE(aces.PE{
		Name: "track", Node: 2, Weight: 3.0,
		Service: aces.ServiceParams{T0: 0.004, T1: 0.004, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1},
	})
	// Archiver: best-effort consumer, low weight, slow (20 ms).
	archive := topo.AddPE(aces.PE{
		Name: "archive", Node: 2, Weight: 0.5,
		Service: aces.ServiceParams{T0: 0.020, T1: 0.020, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1},
	})
	for _, e := range []aces.Edge{{From: decode, To: detect}, {From: detect, To: track}, {From: detect, To: archive}} {
		if err := topo.Connect(e.From, e.To); err != nil {
			return err
		}
	}
	// A 100 fps camera feed with on/off bursts (scene activity).
	if err := topo.AddSource(aces.Source{
		Stream: 1, Target: decode, Rate: 100,
		Burst: aces.BurstSpec{Kind: aces.BurstOnOff, PeakFactor: 2, MeanOn: 0.2},
	}); err != nil {
		return err
	}

	alloc, err := aces.Optimize(topo, aces.OptimizeConfig{Utility: aces.LinearUtility{}, MinShare: 0.02})
	if err != nil {
		return err
	}
	fmt.Println("tier-1 targets:")
	for j, pe := range topo.PEs {
		fmt.Printf("  %-8s node %d  c̄ = %.3f\n", pe.Name, pe.Node, alloc.CPU[j])
	}
	fmt.Println()

	fmt.Printf("%-10s %12s %14s %12s %12s\n", "system", "weighted/s", "latency(ms)", "input-drop", "inflight-drop")
	for _, pol := range []aces.Policy{aces.PolicyACES, aces.PolicyUDP, aces.PolicyLockStep} {
		rep, err := aces.Simulate(aces.SimConfig{
			Topo: topo, Policy: pol, CPU: alloc.CPU, Duration: 40, Seed: 7,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %12.1f %8.0f ± %-4.0f %12d %12d\n",
			pol, rep.WeightedThroughput, rep.MeanLatency*1e3, rep.StdLatency*1e3,
			rep.InputDrops, rep.InFlightDrops)
	}
	return nil
}
