// Quickstart: build a three-stage pipeline, let tier 1 assign CPU targets,
// and run it in the simulator under ACES. This is the smallest end-to-end
// use of the public API.
package main

import (
	"fmt"
	"os"

	"aces"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Two nodes, buffers of 50 SDOs (the paper's default B).
	topo := aces.NewTopology(2, 50)

	// A three-stage pipeline: parse → enrich → score. Each stage uses the
	// paper's two-state bursty cost model; the final stage is the system
	// output and carries the weight.
	svc := aces.DefaultServiceParams()
	parse := topo.AddPE(aces.PE{Name: "parse", Service: svc, Node: 0})
	enrich := topo.AddPE(aces.PE{Name: "enrich", Service: svc, Node: 0})
	score := topo.AddPE(aces.PE{Name: "score", Service: svc, Node: 1, Weight: 1.0})
	if err := topo.Connect(parse, enrich); err != nil {
		return err
	}
	if err := topo.Connect(enrich, score); err != nil {
		return err
	}

	// A bursty source: 80 SDOs/s mean, on/off with 2× peaks.
	if err := topo.AddSource(aces.Source{
		Stream: 1, Target: parse, Rate: 80,
		Burst: aces.BurstSpec{Kind: aces.BurstOnOff, PeakFactor: 2, MeanOn: 0.1},
	}); err != nil {
		return err
	}

	// Tier 1: time-averaged CPU targets maximizing weighted throughput.
	alloc, err := aces.Optimize(topo, aces.OptimizeConfig{})
	if err != nil {
		return err
	}
	fmt.Println("tier-1 CPU targets:")
	for j, pe := range topo.PEs {
		fmt.Printf("  %-7s node %d  c̄ = %.3f  (fluid rate %.1f SDO/s)\n",
			pe.Name, pe.Node, alloc.CPU[j], alloc.RIn[j])
	}

	// Tier 2 runs inside the simulator: LQR flow control + token-bucket
	// CPU control, advertising r_max upstream every Δt = 10 ms.
	rep, err := aces.Simulate(aces.SimConfig{
		Topo: topo, Policy: aces.PolicyACES, CPU: alloc.CPU,
		Duration: 30, Seed: 42,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nACES run (30 simulated seconds):\n")
	fmt.Printf("  weighted throughput  %.1f /s\n", rep.WeightedThroughput)
	fmt.Printf("  end-to-end latency   %.1f ± %.1f ms (p95 %.1f)\n",
		rep.MeanLatency*1e3, rep.StdLatency*1e3, rep.P95*1e3)
	fmt.Printf("  losses               %d at input, %d in flight\n",
		rep.InputDrops, rep.InFlightDrops)
	fmt.Printf("  buffer occupancy     %.1f ± %.1f SDOs (b₀ = 25)\n",
		rep.MeanBufferOccupancy, rep.StdBufferOccupancy)
	return nil
}
