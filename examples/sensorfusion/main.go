// Sensorfusion: a continuous-query-over-sensors deployment (the TelegraphCQ
// / STREAM use case from §I) that exercises fan-in and the Fig. 2 fan-out
// argument at once. Three sensor fields feed regional aggregators; a
// fusion PE joins the regions; fused events fan out to consumers of very
// different capability — an alerting PE (fast, critical) and a dashboard
// PE (slow, nice-to-have).
//
// Run it to watch the max-flow policy keep alerts flowing at full rate
// while the dashboard sheds, versus min-flow pacing everything at
// dashboard speed.
package main

import (
	"fmt"
	"os"

	"aces"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "sensorfusion: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	topo := aces.NewTopology(4, 50)
	det := func(cost float64) aces.ServiceParams {
		return aces.ServiceParams{T0: cost, T1: cost, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
	}
	bursty := func(t0, t1 float64) aces.ServiceParams {
		return aces.ServiceParams{T0: t0, T1: t1, Rho: 0.5, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
	}

	// Three regional aggregators on two edge nodes.
	regions := make([]aces.PEID, 3)
	for i := range regions {
		regions[i] = topo.AddPE(aces.PE{
			Name: fmt.Sprintf("region%d", i), Node: aces.NodeID(i % 2),
			Service: bursty(0.001, 0.008),
		})
	}
	// Fusion is a true JOIN: it consumes one aggregate from EACH region per
	// fired correlation (fan-in 3 — the paper's maximum), so it runs at the
	// slowest region's pace and its latency reflects the last-arriving
	// component.
	fusion := topo.AddPE(aces.PE{Name: "fusion", Node: 2, Service: det(0.002), Join: true})
	for _, r := range regions {
		if err := topo.Connect(r, fusion); err != nil {
			return err
		}
	}
	// Consumers: alerting is fast and heavily weighted; the dashboard is
	// 6× slower and lightly weighted.
	alert := topo.AddPE(aces.PE{Name: "alert", Node: 3, Weight: 2.0, Service: det(0.003)})
	dash := topo.AddPE(aces.PE{Name: "dashboard", Node: 3, Weight: 0.3, Service: det(0.018)})
	if err := topo.Connect(fusion, alert); err != nil {
		return err
	}
	if err := topo.Connect(fusion, dash); err != nil {
		return err
	}

	// Sensor fields: Poisson event streams, 60/s each.
	for i, r := range regions {
		if err := topo.AddSource(aces.Source{
			Stream: aces.StreamID(i + 1), Target: r, Rate: 60,
			Burst: aces.BurstSpec{Kind: aces.BurstPoisson},
		}); err != nil {
			return err
		}
	}

	alloc, err := aces.Optimize(topo, aces.OptimizeConfig{Utility: aces.LinearUtility{}, MinShare: 0.02})
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %12s %14s %13s\n", "system", "weighted/s", "latency(ms)", "inflight-drop")
	for _, pol := range []aces.Policy{aces.PolicyACES, aces.PolicyUDP, aces.PolicyLockStep} {
		// Per-branch rates need engine-level access.
		eng, err := aces.NewSimulation(aces.SimConfig{
			Topo: topo, Policy: pol, CPU: alloc.CPU, Duration: 30, Seed: 11,
		})
		if err != nil {
			return err
		}
		rep := eng.Run()
		counts := eng.DeliveredByPE()
		horizon := 30.0 - 6.0 // duration minus warmup
		fmt.Printf("%-10s %12.1f %8.0f ± %-4.0f %13d   alert %.0f/s dashboard %.0f/s\n",
			pol, rep.WeightedThroughput, rep.MeanLatency*1e3, rep.StdLatency*1e3, rep.InFlightDrops,
			float64(counts[alert])/horizon, float64(counts[dash])/horizon)
	}
	return nil
}
