// Distributed: the live runtime partitioned across two "processes"
// connected by real TCP — the deployment shape of Fig. 1, where PEs on
// different processing nodes exchange SDOs and r_max feedback over the
// network. This example runs both halves in one binary over loopback so it
// is self-contained; the identical wiring works across machines (see
// aces.Link / aces.Router).
//
// Topology: ingest and filter on node 0 (process A); enrich and sink on
// node 1 (process B). ACES feedback crosses the wire: the sink's
// advertised r_max throttles the filter's CPU cap in process A.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"aces"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	topo := aces.NewTopology(2, 50)
	svc := aces.ServiceParams{T0: 0.002, T1: 0.008, Rho: 0.5, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
	ingest := topo.AddPE(aces.PE{Name: "ingest", Node: 0, Service: svc})
	filter := topo.AddPE(aces.PE{Name: "filter", Node: 0, Service: svc})
	enrich := topo.AddPE(aces.PE{Name: "enrich", Node: 1, Service: svc})
	sink := topo.AddPE(aces.PE{Name: "sink", Node: 1, Service: svc, Weight: 1})
	for _, e := range []aces.Edge{{From: ingest, To: filter}, {From: filter, To: enrich}, {From: enrich, To: sink}} {
		if err := topo.Connect(e.From, e.To); err != nil {
			return err
		}
	}
	if err := topo.AddSource(aces.Source{
		Stream: 1, Target: ingest, Rate: 120,
		Burst: aces.BurstSpec{Kind: aces.BurstOnOff, PeakFactor: 2, MeanOn: 0.1},
	}); err != nil {
		return err
	}
	cpu := []float64{0.5, 0.5, 0.5, 0.5}

	// TCP plumbing: process B listens, process A dials.
	lis, err := aces.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer lis.Close()
	connBCh := make(chan *aces.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			connBCh <- nil
			return
		}
		connBCh <- c
	}()
	connA, err := aces.Dial(lis.Addr(), 2*time.Second)
	if err != nil {
		return err
	}
	defer connA.Close()
	connB := <-connBCh
	if connB == nil {
		return fmt.Errorf("accept failed")
	}
	defer connB.Close()
	linkA, linkB := aces.NewLink(connA), aces.NewLink(connB)

	procA, err := aces.NewCluster(aces.ClusterConfig{
		Topo: topo, Policy: aces.PolicyACES, CPU: cpu,
		TimeScale: 10, Warmup: 3, Seed: 1,
		LocalNodes: []aces.NodeID{0}, Uplink: linkA,
	})
	if err != nil {
		return err
	}
	procB, err := aces.NewCluster(aces.ClusterConfig{
		Topo: topo, Policy: aces.PolicyACES, CPU: cpu,
		TimeScale: 10, Warmup: 3, Seed: 1,
		LocalNodes: []aces.NodeID{1}, Uplink: linkB,
	})
	if err != nil {
		return err
	}

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() { defer pumps.Done(); _ = linkA.Serve(procA) }() // feedback ← B
	go func() { defer pumps.Done(); _ = linkB.Serve(procB) }() // SDOs → B

	fmt.Printf("process A hosts node 0 (%s, %s); process B hosts node 1 (%s, %s)\n",
		topo.PEs[ingest].Name, topo.PEs[filter].Name, topo.PEs[enrich].Name, topo.PEs[sink].Name)
	fmt.Printf("bridged over TCP %s; running 20 virtual seconds...\n", lis.Addr())

	if err := procA.Start(); err != nil {
		return err
	}
	if err := procB.Start(); err != nil {
		return err
	}
	time.Sleep(2 * time.Second) // 20 virtual seconds at 10×
	endB := procB.Now()
	procA.Stop()
	procB.Stop()
	connA.Close()
	connB.Close()
	pumps.Wait()

	rep := procB.Report(endB)
	fmt.Printf("egress (process B): %.1f SDO/s weighted, latency %.1f ms (p95 %.1f), in-flight drops %d\n",
		rep.WeightedThroughput, rep.MeanLatency*1e3, rep.P95*1e3, rep.InFlightDrops)
	return nil
}
