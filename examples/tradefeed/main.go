// Tradefeed: high-performance transaction processing (the Aurora/Medusa
// use case from §I) on the LIVE runtime with user-defined processors —
// real Go code doing real work per SDO, not the synthetic cost model. A
// parser decodes trade payloads, a VWAP aggregator maintains running
// volume-weighted prices per symbol, and an anomaly stage flags outliers;
// the cluster runs goroutine PEs under Δt node schedulers with ACES flow
// and CPU control.
//
// Each PE's state is owned by its own goroutine; cross-stage information
// (the running VWAP) travels in the SDO payload, never through shared
// memory — the same discipline a distributed deployment forces.
package main

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"aces"
)

// wire is the 22-byte payload: symbol, price, size, running VWAP.
type wire struct {
	symbol uint16
	price  float64
	size   uint32
	vwap   float64
}

func decode(b []byte) (wire, bool) {
	if len(b) < 22 {
		return wire{}, false
	}
	return wire{
		symbol: binary.BigEndian.Uint16(b[0:2]),
		price:  math.Float64frombits(binary.BigEndian.Uint64(b[2:10])),
		size:   binary.BigEndian.Uint32(b[10:14]),
		vwap:   math.Float64frombits(binary.BigEndian.Uint64(b[14:22])),
	}, true
}

func encode(w wire) []byte {
	b := make([]byte, 22)
	binary.BigEndian.PutUint16(b[0:2], w.symbol)
	binary.BigEndian.PutUint64(b[2:10], math.Float64bits(w.price))
	binary.BigEndian.PutUint32(b[10:14], w.size)
	binary.BigEndian.PutUint64(b[14:22], math.Float64bits(w.vwap))
	return b
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tradefeed: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	topo := aces.NewTopology(2, 100)
	fast := aces.ServiceParams{T0: 0.0002, T1: 0.0002, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
	parse := topo.AddPE(aces.PE{Name: "parse", Node: 0, Service: fast})
	vwap := topo.AddPE(aces.PE{Name: "vwap", Node: 0, Service: fast})
	anomaly := topo.AddPE(aces.PE{Name: "anomaly", Node: 1, Service: fast, Weight: 1})
	if err := topo.Connect(parse, vwap); err != nil {
		return err
	}
	if err := topo.Connect(vwap, anomaly); err != nil {
		return err
	}
	if err := topo.AddSource(aces.Source{
		Stream: 1, Target: parse, Rate: 2000,
		Burst: aces.BurstSpec{Kind: aces.BurstOnOff, PeakFactor: 3, MeanOn: 0.05},
	}); err != nil {
		return err
	}

	// Counters read by main after Run returns; atomics because each
	// processor runs on its own PE goroutine.
	var parsed, flagged atomic.Int64

	// Per-PE state: owned exclusively by that PE's goroutine.
	type acc struct{ pv, vol float64 }
	vwapState := make(map[uint16]acc)

	processors := map[aces.PEID]aces.Processor{
		parse: aces.FuncProcessor(func(in aces.SDO, emit func(aces.SDO)) error {
			// Sources emit empty payloads; synthesize a trade
			// deterministically from the sequence number, standing in for a
			// real feed decoder.
			w := wire{
				symbol: uint16(in.Seq % 100),
				price:  100 + float64(in.Seq%17) + 12*float64(boolToInt(in.Seq%997 == 0)),
				size:   uint32(1 + in.Seq%5),
			}
			parsed.Add(1)
			out := in.Derive(2, in.Seq, 22)
			out.Payload = encode(w)
			emit(out)
			return nil
		}),
		vwap: aces.FuncProcessor(func(in aces.SDO, emit func(aces.SDO)) error {
			b, _ := in.Payload.([]byte)
			w, ok := decode(b)
			if !ok {
				return nil // malformed: drop silently
			}
			s := vwapState[w.symbol]
			s.pv += w.price * float64(w.size)
			s.vol += float64(w.size)
			vwapState[w.symbol] = s
			w.vwap = s.pv / s.vol
			out := in.Derive(3, in.Seq, 22)
			out.Payload = encode(w)
			emit(out)
			return nil
		}),
		anomaly: aces.FuncProcessor(func(in aces.SDO, emit func(aces.SDO)) error {
			b, _ := in.Payload.([]byte)
			w, ok := decode(b)
			if !ok {
				return nil
			}
			if math.Abs(w.price-w.vwap) > 8 {
				flagged.Add(1)
			}
			// Egress PE: emitted SDOs are the system output.
			emit(in.Derive(4, in.Seq, 22))
			return nil
		}),
	}

	cl, err := aces.NewCluster(aces.ClusterConfig{
		Topo: topo, Policy: aces.PolicyACES,
		CPU:        []float64{0.4, 0.4, 0.8},
		TimeScale:  5, // 5× faster than wall time
		Warmup:     2,
		Seed:       3,
		Processors: processors,
	})
	if err != nil {
		return err
	}
	fmt.Println("running live trade pipeline for 15 virtual seconds...")
	rep, err := cl.Run(15)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %d trades, flagged %d anomalies\n", parsed.Load(), flagged.Load())
	fmt.Printf("weighted throughput %.0f /s, latency %.1f ms (p95 %.1f), input drops %d\n",
		rep.WeightedThroughput, rep.MeanLatency*1e3, rep.P95*1e3, rep.InputDrops)
	return nil
}

func boolToInt(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
