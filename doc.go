// Package aces is a Go implementation of ACES — Adaptive Control of
// Extreme-scale Stream processing systems (Amini, Jain, Sehgal, Silber,
// Verscheure; ICDCS 2006) — together with everything the paper's
// evaluation depends on: a distributed stream-processing runtime in the
// spirit of IBM's Stream Processing Core, a calibrated discrete-event
// simulator, a random topology generator, and the full experiment harness
// that regenerates every figure of the paper.
//
// # The system in one paragraph
//
// Applications are DAGs of processing elements (PEs) placed on processing
// nodes; data flows as streams of SDOs through bounded per-PE input
// buffers. ACES controls the system on two timescales. Tier 1 (the global
// optimizer, minutes) assigns each PE a time-averaged CPU share c̄_j that
// maximizes the weighted throughput of the system's output streams under
// per-node capacity and flow-conservation constraints. Tier 2 (the
// distributed resource controller, every Δt ≈ 10 ms) stabilizes the system
// against bursty workloads: an LQR-designed flow controller computes each
// PE's maximum sustainable input rate from its buffer occupancy and
// advertises it upstream (paper Eq. 7), while a token-bucket CPU scheduler
// holds long-term shares at the tier-1 targets and shares each node's
// cycles in proportion to input-buffer occupancy, bounded by the
// downstream feedback (Eq. 8 — the max-flow policy: a producer runs fast
// enough for its fastest consumer; slower consumers shed).
//
// # Package layout
//
// This root package is a facade re-exporting the stable public API:
//
//   - Topologies: Topology, PE, Source, Generate (the paper's random
//     topology tool), and placement/validation helpers.
//   - Tier 1: Optimize (projected-subgradient solver), utilities
//     (LinearUtility, LogUtility, ExpUtility), Allocation.
//   - Tier 2: DesignFlowGains (DARE/LQR synthesis), FlowController,
//     token buckets and node CPU planners.
//   - Substrates: Simulate (discrete-time simulator) and NewCluster (the
//     live goroutine runtime with in-process and TCP transports).
//   - Experiments: the E1–E8 harness regenerating every paper artifact
//     (see DESIGN.md and EXPERIMENTS.md).
//
// # Quickstart
//
// Build a pipeline, solve tier 1, and simulate it under ACES:
//
//	topo := aces.NewTopology(2, 50)
//	a := topo.AddPE(aces.PE{Name: "parse", Service: aces.DefaultServiceParams(), Node: 0})
//	b := topo.AddPE(aces.PE{Name: "score", Service: aces.DefaultServiceParams(), Node: 1, Weight: 1})
//	_ = topo.Connect(a, b)
//	_ = topo.AddSource(aces.Source{Stream: 1, Target: a, Rate: 100,
//	    Burst: aces.BurstSpec{Kind: aces.BurstOnOff, PeakFactor: 2, MeanOn: 0.1}})
//	alloc, _ := aces.Optimize(topo, aces.OptimizeConfig{})
//	report, _ := aces.Simulate(aces.SimConfig{Topo: topo, Policy: aces.PolicyACES,
//	    CPU: alloc.CPU, Duration: 30})
//	fmt.Println(report)
//
// See examples/ for runnable programs and cmd/ for the CLI tools.
package aces
