package control

import "fmt"

// FlowController executes the paper's Eq. 7 for one PE: every control tick
// it turns the PE's current processing rate and buffer occupancy into the
// maximum sustainable input rate r_max to advertise upstream.
//
// All rates are expressed in SDOs per tick (the paper's r·Δt quantities);
// callers convert to SDOs/sec at the boundary if needed. The zero value is
// not usable; construct with NewFlowController.
type FlowController struct {
	gains FlowGains
	// errHist[0] is the most recent buffer error b(n) − b0.
	errHist []float64
	// devHist[0] is the most recent control deviation r_max(n) − ρ(n).
	devHist []float64
	// maxRate optionally clamps the advertised rate from above (e.g. to
	// the buffer vacancy plus one tick's drain); ≤ 0 disables the clamp.
	maxRate float64
	primed  int
	// lastOut is the most recent advertised rate, replayed by Hold while
	// the downstream picture is a failure artifact.
	lastOut float64
}

// NewFlowController builds a controller from designed gains. maxRate > 0
// bounds the advertised rate from above (a physical safety clamp — the
// upstream cannot usefully send more than free buffer space plus one
// tick's worth of drain anyway); pass 0 to disable.
func NewFlowController(g FlowGains, maxRate float64) (*FlowController, error) {
	if len(g.Lambda) == 0 {
		return nil, fmt.Errorf("control: gains need at least λ₀")
	}
	if g.B0 < 0 {
		return nil, fmt.Errorf("control: negative buffer target %g", g.B0)
	}
	return &FlowController{
		gains:   g,
		errHist: make([]float64, len(g.Lambda)),
		devHist: make([]float64, len(g.Mu)),
		maxRate: maxRate,
	}, nil
}

// Gains returns the controller's gain set.
func (f *FlowController) Gains() FlowGains { return f.gains }

// Update advances one control tick: rho is the PE's processing rate this
// tick (SDOs/tick) and buf the current input-buffer occupancy (SDOs). It
// returns the maximum input rate to advertise upstream for the next tick,
// clamped to [0, maxRate].
func (f *FlowController) Update(rho, buf float64) float64 {
	// Shift histories: newest at index 0.
	copy(f.errHist[1:], f.errHist)
	f.errHist[0] = buf - f.gains.B0
	if f.primed < len(f.errHist) {
		// Until the history is primed, back-fill the unseen taps with the
		// OLDEST known sample so a cold start from a deep or empty buffer
		// does not see phantom zero-error history. After the shift the
		// real samples occupy [0..primed] (newest first), so errHist[primed]
		// is the first sample ever observed; replicating the newest sample
		// instead would make the deep taps track the present and erase the
		// genuine history already collected.
		oldest := f.errHist[f.primed]
		for i := f.primed + 1; i < len(f.errHist); i++ {
			f.errHist[i] = oldest
		}
		f.primed++
	}

	r := rho
	for k, lam := range f.gains.Lambda {
		r -= lam * f.errHist[k]
	}
	for l, mu := range f.gains.Mu {
		r -= mu * f.devHist[l]
	}
	if r < 0 {
		r = 0
	}
	if f.maxRate > 0 && r > f.maxRate {
		r = f.maxRate
	}

	// Record the control deviation for the μ taps.
	if len(f.devHist) > 0 {
		copy(f.devHist[1:], f.devHist)
		f.devHist[0] = r - rho
	}
	f.lastOut = r
	return r
}

// Hold returns the last advertised rate without advancing the controller:
// no history shift, no deviation record, no windup. Callers use it when
// every downstream signal is a failure artifact (suspect/dead peers) —
// feeding those ticks to Update would integrate a phantom error and the
// controller would wake from the fault far from its operating point. A
// controller that never updated holds 0.
func (f *FlowController) Hold() float64 { return f.lastOut }

// SetMaxRate adjusts the safety clamp (e.g. when the buffer size changes).
func (f *FlowController) SetMaxRate(m float64) { f.maxRate = m }

// Reset clears the controller history (used when a PE is migrated or its
// upstream edge is rewired).
func (f *FlowController) Reset() {
	for i := range f.errHist {
		f.errHist[i] = 0
	}
	for i := range f.devHist {
		f.devHist[i] = 0
	}
	f.primed = 0
	f.lastOut = 0
}
