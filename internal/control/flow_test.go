package control

import (
	"math"
	"testing"
)

// While priming, the unseen deep taps must hold the OLDEST observed
// sample — a cold-started controller fed b₀,b₁,b₂ must behave exactly
// like one whose history was explicitly pre-filled with b₀ before seeing
// b₁,b₂. The old code back-filled with the NEWEST sample, erasing the
// real history already collected.
func TestPrimingMatchesExplicitlyPrefilledHistory(t *testing.T) {
	gains := FlowGains{B0: 0, Lambda: []float64{0.2, 0.15, 0.1, 0.05}, Delay: 1}
	const rho = 50.0
	samples := []float64{10, 20, 30}

	cold, err := NewFlowController(gains, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewFlowController(gains, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: saturate the history with the first sample, then feed the
	// rest of the sequence.
	var want float64
	for i := 0; i < len(gains.Lambda); i++ {
		want = ref.Update(rho, samples[0])
	}
	for _, s := range samples[1:] {
		want = ref.Update(rho, s)
	}

	// Cold start: just the observed sequence.
	var got float64
	for _, s := range samples {
		got = cold.Update(rho, s)
	}

	if math.Abs(got-want) > 1e-12 {
		t.Errorf("primed controller r = %g, explicitly pre-filled r = %g; priming must replicate the oldest sample", got, want)
	}
}

// Inspect the taps directly: after three updates of a four-tap
// controller, the unseen deepest tap holds the first sample, not the
// newest one.
func TestPrimingBackfillsOldestSample(t *testing.T) {
	gains := FlowGains{B0: 0, Lambda: []float64{0.1, 0.1, 0.1, 0.1}, Delay: 1}
	fc, err := NewFlowController(gains, 0)
	if err != nil {
		t.Fatal(err)
	}
	fc.Update(1, 10)
	fc.Update(1, 20)
	fc.Update(1, 30)
	want := []float64{30, 20, 10, 10}
	for i, w := range want {
		if fc.errHist[i] != w {
			t.Fatalf("errHist = %v, want %v (tap %d should be %g)", fc.errHist, want, i, w)
		}
	}
}

// Once fully primed the back-fill must stop: a long-running controller
// shifts history normally.
func TestPrimedControllerShiftsNormally(t *testing.T) {
	gains := FlowGains{B0: 0, Lambda: []float64{0.1, 0.1, 0.1}, Delay: 1}
	fc, err := NewFlowController(gains, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := []float64{1, 2, 3, 4, 5}
	for _, s := range seq {
		fc.Update(1, s)
	}
	want := []float64{5, 4, 3}
	for i, w := range want {
		if fc.errHist[i] != w {
			t.Fatalf("errHist = %v, want %v", fc.errHist, want)
		}
	}
}

func TestHoldFreezesController(t *testing.T) {
	g := mkGains(t)
	fc, err := NewFlowController(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drive to a steady operating point.
	var last float64
	for i := 0; i < 20; i++ {
		last = fc.Update(5, g.B0)
	}
	// Hold must replay the last advertisement without mutating state…
	for i := 0; i < 50; i++ {
		if got := fc.Hold(); got != last {
			t.Fatalf("Hold #%d = %v, want %v", i, got, last)
		}
	}
	// …so the first Update after the freeze resumes from the pre-fault
	// trajectory: identical to a twin controller that never froze.
	twin, err := NewFlowController(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		twin.Update(5, g.B0)
	}
	got := fc.Update(5, g.B0+3)
	want := twin.Update(5, g.B0+3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("post-Hold Update = %v, frozen-free twin = %v; Hold mutated state", got, want)
	}
}

func TestHoldBeforeFirstUpdateIsZero(t *testing.T) {
	fc, err := NewFlowController(mkGains(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := fc.Hold(); got != 0 {
		t.Errorf("Hold on a fresh controller = %v, want 0", got)
	}
	fc.Update(4, 0)
	fc.Reset()
	if got := fc.Hold(); got != 0 {
		t.Errorf("Hold after Reset = %v, want 0", got)
	}
}

// mkGains designs a small realistic gain set for the Hold tests.
func mkGains(t *testing.T) FlowGains {
	t.Helper()
	g, err := Design(DesignConfig{Delay: 2, QWeight: 1, RWeight: 8, Smoothing: 1, B0: 25})
	if err != nil {
		t.Fatal(err)
	}
	return g
}
