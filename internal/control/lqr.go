// Package control implements the control-theoretic core of ACES tier 2:
// the Linear Quadratic Regulator (LQR) synthesis the paper's Appendix A
// alludes to, and the resulting flow-control law (paper Eq. 7)
//
//	r_max,j(n) = [ρ_j(n) − Σ_{k=0..K} λ_k (b_j(n−k) − b0)
//	                     − Σ_{l=1..L} μ_l (r_max,j(n−l) − ρ_j(n−l))]⁺
//
// The plant is the buffer integrator: with buffer error e(n) = b(n) − b0
// and control deviation v(n) = r_max(n) − ρ(n), arrivals follow the rate
// advertised Delay ticks earlier, so
//
//	e(n+1) = e(n) + v(n − Delay + 1) + disturbance.
//
// Embedding the actuation delay into the state yields a (Delay)-dimensional
// linear system; solving the discrete algebraic Riccati equation (DARE) for
// it produces the gain vector, whose first entry is λ₀ (buffer feedback)
// and remaining entries are μ₁..μ_{Delay−1} (past-control feedback) —
// exactly the structure of Eq. 7. An optional measurement-smoothing window
// spreads λ₀ across the last K+1 buffer samples, giving the λ_k taps.
package control

import (
	"fmt"

	"aces/internal/mat"
)

// DARE solves the discrete algebraic Riccati equation
//
//	P = Q + Aᵀ P A − Aᵀ P B (R + Bᵀ P B)⁻¹ Bᵀ P A
//
// by fixed-point iteration from P = Q, and returns P together with the
// optimal state-feedback gain K = (R + Bᵀ P B)⁻¹ Bᵀ P A (so u = −K x).
// It returns an error when the iteration fails to converge, which for this
// plant family indicates an unstabilizable configuration.
func DARE(a, b, q, r *mat.Matrix) (p, k *mat.Matrix, err error) {
	const (
		maxIter = 10000
		tol     = 1e-12
	)
	if a.Rows() != a.Cols() {
		return nil, nil, fmt.Errorf("control: A must be square, got %dx%d", a.Rows(), a.Cols())
	}
	if b.Rows() != a.Rows() {
		return nil, nil, fmt.Errorf("control: B row count %d must match A dimension %d", b.Rows(), a.Rows())
	}
	p = q.Clone()
	at := a.T()
	bt := b.T()
	for i := 0; i < maxIter; i++ {
		btp := mat.Mul(bt, p)                   // Bᵀ P
		s := mat.Add(r, mat.Mul(btp, b))        // R + Bᵀ P B
		g, err := mat.Solve(s, mat.Mul(btp, a)) // (R + BᵀPB)⁻¹ BᵀPA
		if err != nil {
			return nil, nil, fmt.Errorf("control: DARE inner solve: %w", err)
		}
		pa := mat.Mul(p, a)
		next := mat.Add(q, mat.Sub(mat.Mul(at, pa), mat.Mul(mat.Mul(at, mat.Mul(p, b)), g)))
		if mat.MaxAbsDiff(next, p) < tol {
			return next, g, nil
		}
		p = next
	}
	return nil, nil, fmt.Errorf("control: DARE did not converge in %d iterations", maxIter)
}

// FlowGains holds the coefficients of the paper's Eq. 7 control law.
type FlowGains struct {
	// B0 is the target buffer occupancy (the paper's b₀, default B/2).
	B0 float64
	// Lambda are the buffer-error taps λ₀..λ_K.
	Lambda []float64
	// Mu are the past-control taps μ₁..μ_L (Mu[0] is μ₁).
	Mu []float64
	// Delay is the actuation delay (in control ticks) the gains were
	// designed for; used by the stability check.
	Delay int
}

// DesignConfig parameterizes the LQR synthesis.
type DesignConfig struct {
	// Delay is the actuation delay in control ticks: the number of ticks
	// between advertising r_max upstream and the corresponding SDOs
	// arriving. Must be ≥ 1. The distributed setting of the paper (feedback
	// propagated every Δt to the upstream node) corresponds to Delay = 2.
	Delay int
	// QWeight penalizes squared buffer error; RWeight penalizes squared
	// control deviation. Their ratio sets the aggressiveness: large Q/R
	// drives the buffer to b₀ fast at the cost of rate swings ("if
	// constants λ_k are large relative to μ_l, the PE tries to make b(n)
	// equal b₀; if μ_l are large, the PE attempts to equalize the input and
	// processing rates" — §V-C). Both must be positive.
	QWeight, RWeight float64
	// Smoothing spreads the buffer gain over the last Smoothing+1 buffer
	// samples (the λ_k taps, k = 0..Smoothing), filtering measurement
	// noise. 0 uses only the current sample.
	Smoothing int
	// B0 is the buffer occupancy target.
	B0 float64
}

// Validate checks the configuration.
func (c DesignConfig) Validate() error {
	if c.Delay < 1 {
		return fmt.Errorf("control: Delay must be ≥ 1, got %d", c.Delay)
	}
	if c.QWeight <= 0 || c.RWeight <= 0 {
		return fmt.Errorf("control: QWeight and RWeight must be positive, got %g, %g", c.QWeight, c.RWeight)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("control: Smoothing must be ≥ 0, got %d", c.Smoothing)
	}
	if c.B0 < 0 {
		return fmt.Errorf("control: B0 must be ≥ 0, got %g", c.B0)
	}
	return nil
}

// DefaultDesign returns the design used throughout the reproduction:
// distributed one-hop feedback (Delay = 2), Q/R = 1/8 for a gentle,
// well-damped response, one smoothing tap, and the paper's b₀ target
// passed in by the caller.
func DefaultDesign(b0 float64) DesignConfig {
	return DesignConfig{Delay: 2, QWeight: 1, RWeight: 8, Smoothing: 1, B0: b0}
}

// Design synthesizes FlowGains by solving the DARE for the delay-embedded
// buffer integrator.
func Design(cfg DesignConfig) (FlowGains, error) {
	if err := cfg.Validate(); err != nil {
		return FlowGains{}, err
	}
	d := cfg.Delay
	// State x(n) = [e(n), v(n−1), …, v(n−d+1)] (dimension d);
	// e(n+1) = e(n) + v(n−d+1); the control input is v(n).
	a := mat.New(d, d)
	a.Set(0, 0, 1)
	if d > 1 {
		a.Set(0, d-1, 1) // e picks up the oldest buffered control
		for i := 2; i < d; i++ {
			a.Set(i, i-1, 1) // shift the control history
		}
	}
	b := mat.New(d, 1)
	if d == 1 {
		b.Set(0, 0, 1) // immediate actuation
	} else {
		b.Set(1, 0, 1) // v(n) enters the history register
	}
	q := mat.New(d, d)
	q.Set(0, 0, cfg.QWeight)
	r := mat.New(1, 1)
	r.Set(0, 0, cfg.RWeight)

	_, k, err := DARE(a, b, q, r)
	if err != nil {
		return FlowGains{}, fmt.Errorf("control: LQR design failed: %w", err)
	}

	// K is 1×d: v(n) = −K x(n) = −k₀ e(n) − Σ_{l=1}^{d−1} k_l v(n−l).
	lambda0 := k.At(0, 0)
	mu := make([]float64, 0, d-1)
	for l := 1; l < d; l++ {
		mu = append(mu, k.At(0, l))
	}
	// Spread λ₀ across the smoothing window.
	taps := cfg.Smoothing + 1
	lambda := make([]float64, taps)
	for i := range lambda {
		lambda[i] = lambda0 / float64(taps)
	}
	g := FlowGains{B0: cfg.B0, Lambda: lambda, Mu: mu, Delay: d}
	if rho := ClosedLoopRadius(g); rho >= 1 {
		return FlowGains{}, fmt.Errorf("control: designed gains are unstable (ρ = %.4f); reduce Smoothing or QWeight", rho)
	}
	return g, nil
}

// ClosedLoopRadius returns the spectral radius of the closed loop formed by
// the gains acting on the delayed buffer integrator. A radius < 1 means the
// loop is asymptotically stable: from any initial buffer level the error
// decays geometrically (the paper's §V-C asymptotic-stability guarantee).
func ClosedLoopRadius(g FlowGains) float64 {
	k := len(g.Lambda) - 1 // buffer history taps beyond current
	l := len(g.Mu)
	d := g.Delay
	if d < 1 {
		d = 1
	}
	// Control lag order: v(n−1) … v(n−m).
	m := l
	if d-1 > m {
		m = d - 1
	}
	// State: [e(n), e(n−1)…e(n−k), v(n−1)…v(n−m)]  (dimension k+1+m).
	dim := k + 1 + m
	cl := mat.New(dim, dim)
	// v(n) = −Σ λ_i e(n−i) − Σ μ_j v(n−j): coefficients used below.
	vCoefE := func(i int) float64 { return -g.Lambda[i] }
	vCoefV := func(j int) float64 { // j = 1..l
		return -g.Mu[j-1]
	}
	// Row 0: e(n+1) = e(n) + v(n−d+1).
	cl.Set(0, 0, 1)
	if d == 1 {
		// Substitute v(n) directly.
		for i := 0; i <= k; i++ {
			cl.Set(0, i, cl.At(0, i)+vCoefE(i))
		}
		for j := 1; j <= l; j++ {
			cl.Set(0, k+j, cl.At(0, k+j)+vCoefV(j))
		}
	} else {
		// v(n−d+1) is state element k + (d−1).
		cl.Set(0, k+d-1, cl.At(0, k+d-1)+1)
	}
	// Rows 1..k: shift buffer-error history, e(n+1−i) = e(n−(i−1)).
	for i := 1; i <= k; i++ {
		cl.Set(i, i-1, 1)
	}
	// Row k+1: v(n) from the control law (next step's v(n−1)).
	if m >= 1 {
		for i := 0; i <= k; i++ {
			cl.Set(k+1, i, vCoefE(i))
		}
		for j := 1; j <= l; j++ {
			cl.Set(k+1, k+j, vCoefV(j))
		}
		// Rows k+2..k+m: shift control history.
		for j := 2; j <= m; j++ {
			cl.Set(k+j, k+j-1, 1)
		}
	}
	return mat.SpectralRadius(cl)
}
