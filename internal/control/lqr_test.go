package control

import (
	"math"
	"testing"
	"testing/quick"

	"aces/internal/mat"
)

func TestDAREScalarClosedForm(t *testing.T) {
	// For the scalar integrator e(n+1) = e(n) + v(n) with cost q e² + r v²,
	// the DARE reduces to P² = q(P + r): P = (q + √(q² + 4qr))/2 and the
	// gain K = P/(P + r).
	for _, tc := range []struct{ q, r float64 }{{1, 1}, {1, 8}, {4, 1}, {0.25, 16}} {
		a := mat.FromRows([][]float64{{1}})
		b := mat.FromRows([][]float64{{1}})
		q := mat.FromRows([][]float64{{tc.q}})
		r := mat.FromRows([][]float64{{tc.r}})
		p, k, err := DARE(a, b, q, r)
		if err != nil {
			t.Fatalf("q=%g r=%g: %v", tc.q, tc.r, err)
		}
		wantP := (tc.q + math.Sqrt(tc.q*tc.q+4*tc.q*tc.r)) / 2
		wantK := wantP / (wantP + tc.r)
		if math.Abs(p.At(0, 0)-wantP) > 1e-8 {
			t.Errorf("q=%g r=%g: P = %g, want %g", tc.q, tc.r, p.At(0, 0), wantP)
		}
		if math.Abs(k.At(0, 0)-wantK) > 1e-8 {
			t.Errorf("q=%g r=%g: K = %g, want %g", tc.q, tc.r, k.At(0, 0), wantK)
		}
	}
}

func TestDAREShapeErrors(t *testing.T) {
	if _, _, err := DARE(mat.New(2, 3), mat.New(2, 1), mat.New(2, 2), mat.New(1, 1)); err == nil {
		t.Errorf("non-square A should error")
	}
	if _, _, err := DARE(mat.Identity(2), mat.New(3, 1), mat.New(2, 2), mat.New(1, 1)); err == nil {
		t.Errorf("mismatched B should error")
	}
}

func TestDesignValidation(t *testing.T) {
	bad := []DesignConfig{
		{Delay: 0, QWeight: 1, RWeight: 1},
		{Delay: 1, QWeight: 0, RWeight: 1},
		{Delay: 1, QWeight: 1, RWeight: -2},
		{Delay: 1, QWeight: 1, RWeight: 1, Smoothing: -1},
		{Delay: 1, QWeight: 1, RWeight: 1, B0: -5},
	}
	for i, cfg := range bad {
		if _, err := Design(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestDesignProducesEq7Structure(t *testing.T) {
	g, err := Design(DesignConfig{Delay: 3, QWeight: 1, RWeight: 4, Smoothing: 2, B0: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Lambda) != 3 {
		t.Errorf("λ taps = %d, want Smoothing+1 = 3", len(g.Lambda))
	}
	if len(g.Mu) != 2 {
		t.Errorf("μ taps = %d, want Delay−1 = 2", len(g.Mu))
	}
	if g.B0 != 25 {
		t.Errorf("B0 = %g", g.B0)
	}
	// Buffer feedback must be negative feedback: positive λ.
	var sumL float64
	for _, l := range g.Lambda {
		if l <= 0 {
			t.Errorf("λ tap %g should be positive", l)
		}
		sumL += l
	}
	if sumL > 1 {
		t.Errorf("total buffer gain %g > 1 would overreact to a one-SDO error", sumL)
	}
}

func TestDesignedGainsAreStable(t *testing.T) {
	for _, delay := range []int{1, 2, 3, 4, 5} {
		for _, smoothing := range []int{0, 1, 2} {
			g, err := Design(DesignConfig{Delay: delay, QWeight: 1, RWeight: 8, Smoothing: smoothing, B0: 25})
			if err != nil {
				t.Fatalf("delay=%d smoothing=%d: %v", delay, smoothing, err)
			}
			if rho := ClosedLoopRadius(g); rho >= 1 {
				t.Errorf("delay=%d smoothing=%d: closed-loop ρ = %g ≥ 1", delay, smoothing, rho)
			}
		}
	}
}

func TestClosedLoopRadiusDetectsInstability(t *testing.T) {
	// Over-aggressive hand-tuned gains with actuation delay destabilize:
	// λ₀ = 1.8 with delay 2 overshoots (classic delayed feedback).
	g := FlowGains{B0: 25, Lambda: []float64{1.8}, Mu: []float64{0}, Delay: 2}
	if rho := ClosedLoopRadius(g); rho < 1 {
		t.Errorf("expected instability, got ρ = %g", rho)
	}
	// Gentle gains are stable.
	g2 := FlowGains{B0: 25, Lambda: []float64{0.2}, Mu: []float64{0.1}, Delay: 2}
	if rho := ClosedLoopRadius(g2); rho >= 1 {
		t.Errorf("expected stability, got ρ = %g", rho)
	}
}

// Property: for any reasonable (QWeight, RWeight, Delay) the design is
// stable — the §V-C guarantee ("stability is guaranteed through the LQR
// equations").
func TestDesignStabilityProperty(t *testing.T) {
	f := func(qRaw, rRaw uint8, dRaw uint8) bool {
		q := 0.05 + float64(qRaw)/32 // (0.05, 8]
		r := 0.05 + float64(rRaw)/32
		d := 1 + int(dRaw)%5
		g, err := Design(DesignConfig{Delay: d, QWeight: q, RWeight: r, B0: 10})
		if err != nil {
			// Design may legitimately reject extreme smoothing configs, but
			// with Smoothing = 0 it must succeed.
			return false
		}
		return ClosedLoopRadius(g) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Simulate the true delayed closed loop and verify the buffer converges to
// b0 from arbitrary starting points — the steady-state property of §V
// ("each PE reaches steady-state behavior from an arbitrary starting
// point" and "the steady-state input rate of a PE is equal to its
// processing rate").
func TestClosedLoopConvergenceFromArbitraryStart(t *testing.T) {
	for _, start := range []float64{0, 3, 25, 50, 200} {
		g, err := Design(DefaultDesign(25))
		if err != nil {
			t.Fatal(err)
		}
		fc, err := NewFlowController(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		const rho = 5.0 // processing rate, SDOs/tick
		buf := start
		// Actuation delay 2: the rate computed at tick n arrives at n+2.
		pipe := []float64{rho, rho}
		var lastR float64
		for n := 0; n < 400; n++ {
			arrivals := pipe[0]
			pipe = pipe[1:]
			buf += arrivals - rho
			if buf < 0 {
				buf = 0
			}
			lastR = fc.Update(rho, buf)
			pipe = append(pipe, lastR)
		}
		if math.Abs(buf-25) > 1.0 {
			t.Errorf("start=%g: buffer settled at %g, want 25 ± 1", start, buf)
		}
		if math.Abs(lastR-rho) > 0.1 {
			t.Errorf("start=%g: steady input rate %g, want ρ = %g", start, lastR, rho)
		}
	}
}

// The closed loop must also track a changing processing rate (the
// disturbance-rejection property the burstiness experiments rely on).
func TestClosedLoopTracksRateChange(t *testing.T) {
	g, err := Design(DefaultDesign(25))
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFlowController(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := 25.0
	pipe := []float64{5, 5}
	rho := 5.0
	var lastR float64
	for n := 0; n < 600; n++ {
		if n == 200 {
			rho = 1.0 // PE entered its slow state: 5× cost
		}
		arrivals := pipe[0]
		pipe = pipe[1:]
		buf += arrivals - rho
		if buf < 0 {
			buf = 0
		}
		lastR = fc.Update(rho, buf)
		pipe = append(pipe, lastR)
	}
	if math.Abs(buf-25) > 1.5 {
		t.Errorf("buffer after rate change settled at %g, want 25", buf)
	}
	if math.Abs(lastR-1.0) > 0.1 {
		t.Errorf("advertised rate %g, want new ρ = 1", lastR)
	}
}

func TestFlowControllerClampsAtZero(t *testing.T) {
	g, _ := Design(DefaultDesign(5))
	fc, _ := NewFlowController(g, 0)
	// Hugely overfull buffer with tiny processing rate must clamp to 0,
	// never negative.
	r := fc.Update(0.1, 10000)
	if r != 0 {
		t.Errorf("r_max = %g, want 0 (the []⁺ clamp of Eq. 7)", r)
	}
}

func TestFlowControllerMaxRateClamp(t *testing.T) {
	g, _ := Design(DefaultDesign(25))
	fc, _ := NewFlowController(g, 3)
	// Empty buffer → controller wants to refill fast; clamp holds it at 3.
	r := fc.Update(5, 0)
	if r > 3 {
		t.Errorf("r_max = %g exceeds clamp 3", r)
	}
	fc.SetMaxRate(100)
	r = fc.Update(5, 0)
	if r <= 3 {
		t.Errorf("after raising clamp, r_max = %g should exceed 3", r)
	}
}

func TestFlowControllerReset(t *testing.T) {
	g, _ := Design(DesignConfig{Delay: 2, QWeight: 1, RWeight: 8, Smoothing: 1, B0: 10})
	fc, _ := NewFlowController(g, 0)
	for i := 0; i < 10; i++ {
		fc.Update(2, 40)
	}
	fc.Reset()
	// After reset with a buffer exactly at b0 and matched rates the output
	// must equal ρ exactly (no phantom history).
	if r := fc.Update(2, 10); math.Abs(r-2) > 1e-12 {
		t.Errorf("post-reset r_max = %g, want 2", r)
	}
}

func TestNewFlowControllerValidation(t *testing.T) {
	if _, err := NewFlowController(FlowGains{}, 0); err == nil {
		t.Errorf("empty gains should error")
	}
	if _, err := NewFlowController(FlowGains{B0: -1, Lambda: []float64{0.1}}, 0); err == nil {
		t.Errorf("negative b0 should error")
	}
}

func TestColdStartPrimingAvoidsPhantomHistory(t *testing.T) {
	// With smoothing taps, a cold start at a full buffer must not mix in
	// zero-error phantom history: the first Update must see the full error
	// in every tap.
	g := FlowGains{B0: 10, Lambda: []float64{0.1, 0.1}, Mu: nil, Delay: 1}
	fc, _ := NewFlowController(g, 0)
	r := fc.Update(5, 50) // error 40 in both taps → 5 − 0.2·40 = −3 → 0
	if r != 0 {
		t.Errorf("cold start r = %g, want 0 (full error in all taps)", r)
	}
}

// Property: across the whole sane design space, the closed loop settles
// from a large initial error within a bounded horizon and does not
// overshoot below zero occupancy by more than the controller can help
// (the []⁺ clamp in the plant prevents negative buffers; here we check the
// *linear* loop's overshoot stays bounded).
func TestDesignSettlingProperty(t *testing.T) {
	f := func(qRaw, rRaw, dRaw uint8) bool {
		q := 0.1 + float64(qRaw%40)/20 // 0.1 – 2.05
		r := 1 + float64(rRaw%32)/4    // 1 – 8.75
		d := 1 + int(dRaw)%4
		g, err := Design(DesignConfig{Delay: d, QWeight: q, RWeight: r, Smoothing: 1, B0: 25})
		if err != nil {
			return false
		}
		fc, err := NewFlowController(g, 0)
		if err != nil {
			return false
		}
		const rho = 5.0
		buf := 100.0 // 4× the target
		pipe := make([]float64, d)
		for i := range pipe {
			pipe[i] = rho
		}
		settled := -1
		minBuf := buf
		for n := 0; n < 1500; n++ {
			arrivals := pipe[0]
			copy(pipe, pipe[1:])
			buf += arrivals - rho
			if buf < 0 {
				buf = 0
			}
			if buf < minBuf {
				minBuf = buf
			}
			pipe[len(pipe)-1] = fc.Update(rho, buf)
			if settled < 0 && buf > 20 && buf < 30 {
				settled = n
			} else if buf <= 20 || buf >= 30 {
				settled = -1
			}
		}
		// Settled in-band by the end, within a generous horizon.
		if settled < 0 || settled > 1200 {
			t.Logf("q=%.2f r=%.2f d=%d: settled=%d", q, r, d, settled)
			return false
		}
		// Undershoot must not empty the buffer entirely from above target
		// (that would starve the PE — the §IV underflow concern).
		if minBuf < 1 {
			t.Logf("q=%.2f r=%.2f d=%d: minBuf=%.1f", q, r, d, minBuf)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
