package sim

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the variate generators the simulator needs and
// deterministic substream derivation, so every simulation component draws
// from its own independent, reproducible stream.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic random stream for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Substream derives an independent deterministic stream from seed and a
// component identifier, using a splitmix64-style mix so nearby ids do not
// produce correlated streams.
func Substream(seed int64, id uint64) *Rand {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return NewRand(int64(z))
}

// Float64 returns a uniform variate in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Uniform returns a uniform variate in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.r.Float64()
}

// Exp returns an exponential variate with the given mean. A non-positive
// mean returns 0, which degenerates to a deterministic instant event.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.r.ExpFloat64() * mean
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, std float64) float64 {
	return mean + std*r.r.NormFloat64()
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// method for small means and a normal approximation above 30 (adequate for
// per-tick arrival counts).
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns a geometric variate counting trials until first success
// (support {1, 2, ...}) with success probability p in (0, 1]. Used for SDO
// output multiplicities with a given mean 1/p.
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("sim: Geometric requires p in (0, 1]")
	}
	// Inversion: ceil(ln(1−u) / ln(1−p)).
	u := r.r.Float64()
	return int(math.Ceil(math.Log1p(-u) / math.Log1p(-p)))
}

// BoundedPareto returns a Pareto variate with shape alpha truncated to
// [lo, hi]; used to model heavy-tailed burst sizes in extension workloads.
func (r *Rand) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("sim: BoundedPareto requires 0 < lo < hi and alpha > 0")
	}
	u := r.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Shuffle permutes the integers [0, n) and calls swap like rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.r.Shuffle(n, swap) }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }
