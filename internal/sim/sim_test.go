package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %g, want 3", s.Now())
	}
	if s.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", s.Steps())
	}
}

func TestFIFOTieBreakAtEqualTimes(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestAfterAndPastClamping(t *testing.T) {
	s := New()
	s.At(10, func() {
		// Scheduling in the past clamps to now.
		s.At(5, func() {
			if s.Now() != 10 {
				t.Errorf("past event ran at %g, want 10", s.Now())
			}
		})
		s.After(-3, func() {
			if s.Now() != 10 {
				t.Errorf("negative After ran at %g, want 10", s.Now())
			}
		})
	})
	s.Run(0)
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	h := s.At(1, func() { ran = true })
	if !h.Valid() {
		t.Fatalf("fresh handle should be valid")
	}
	if !s.Cancel(h) {
		t.Fatalf("Cancel returned false")
	}
	if s.Cancel(h) {
		t.Errorf("double Cancel should return false")
	}
	s.Run(0)
	if ran {
		t.Errorf("cancelled event executed")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

func TestCancelMiddleOfHeapPreservesOrder(t *testing.T) {
	s := New()
	var order []float64
	var handles []Handle
	for _, at := range []float64{5, 1, 4, 2, 3} {
		at := at
		handles = append(handles, s.At(at, func() { order = append(order, at) }))
	}
	s.Cancel(handles[2]) // the event at t=4
	s.Run(0)
	want := []float64{1, 2, 3, 5}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var ran []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		s.At(at, func() { ran = append(ran, at) })
	}
	s.RunUntil(2)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want events at 1,2", ran)
	}
	if s.Now() != 2 {
		t.Errorf("Now = %g, want 2", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	// RunUntil with no events advances the clock.
	s.RunUntil(10)
	if s.Now() != 10 || len(ran) != 4 {
		t.Errorf("Now = %g ran = %v", s.Now(), ran)
	}
}

func TestRunMaxSteps(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 5; i++ {
		s.At(float64(i), func() { n++ })
	}
	if got := s.Run(3); got != 3 || n != 3 {
		t.Errorf("Run(3) executed %d/%d", got, n)
	}
}

func TestNextAt(t *testing.T) {
	s := New()
	if _, ok := s.NextAt(); ok {
		t.Errorf("NextAt on empty queue should be false")
	}
	s.At(7, func() {})
	if at, ok := s.NextAt(); !ok || at != 7 {
		t.Errorf("NextAt = %g,%v", at, ok)
	}
}

func TestEveryPeriodicAndStop(t *testing.T) {
	s := New()
	var times []float64
	stop := s.Every(1, func(at float64) {
		times = append(times, at)
		if len(times) == 3 {
			// stop from within the callback
		}
	})
	s.RunUntil(3.5)
	stop()
	s.RunUntil(10)
	if len(times) != 3 {
		t.Fatalf("times = %v, want 3 occurrences", times)
	}
	for i, at := range times {
		if math.Abs(at-float64(i+1)) > 1e-12 {
			t.Errorf("occurrence %d at %g", i, at)
		}
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	New().Every(0, func(float64) {})
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	New().At(1, nil)
}

// Property: for any set of scheduled times, events execute in sorted order.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var got []float64
		for _, v := range raw {
			at := float64(v) / 100
			s.At(at, func() { got = append(got, at) })
		}
		s.Run(0)
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// M/M/1 validation: with λ = 0.7, μ = 1.0, the mean number in system is
// ρ/(1−ρ) = 2.333 and mean sojourn time 1/(μ−λ) = 3.333. This validates the
// kernel end-to-end as a queueing simulator (the role C-SIM plays in the
// paper).
func TestMM1AgainstClosedForm(t *testing.T) {
	const lambda, mu = 0.7, 1.0
	s := New()
	rng := NewRand(12345)

	type customer struct{ arrived float64 }
	var queue []customer
	busy := false
	var totalSojourn float64
	var served int
	// Time-average number in system via integration.
	var area, lastT float64
	inSystem := 0
	account := func() {
		area += float64(inSystem) * (s.Now() - lastT)
		lastT = s.Now()
	}

	var depart func()
	depart = func() {
		account()
		c := queue[0]
		queue = queue[1:]
		inSystem--
		totalSojourn += s.Now() - c.arrived
		served++
		if len(queue) > 0 {
			s.After(rng.Exp(1/mu), depart)
		} else {
			busy = false
		}
	}
	var arrive func()
	arrive = func() {
		account()
		queue = append(queue, customer{arrived: s.Now()})
		inSystem++
		if !busy {
			busy = true
			s.After(rng.Exp(1/mu), depart)
		}
		s.After(rng.Exp(1/lambda), arrive)
	}
	s.After(rng.Exp(1/lambda), arrive)
	s.RunUntil(200000)

	meanInSystem := area / s.Now()
	meanSojourn := totalSojourn / float64(served)
	wantL := lambda / mu / (1 - lambda/mu) // 2.3333
	wantW := 1 / (mu - lambda)             // 3.3333
	if math.Abs(meanInSystem-wantL)/wantL > 0.05 {
		t.Errorf("E[N] = %.3f, want %.3f ± 5%%", meanInSystem, wantL)
	}
	if math.Abs(meanSojourn-wantW)/wantW > 0.05 {
		t.Errorf("E[W] = %.3f, want %.3f ± 5%%", meanSojourn, wantW)
	}
}

// M/D/1 validation: deterministic service halves queueing delay relative to
// M/M/1 (Pollaczek–Khinchine): Wq = ρ/(2μ(1−ρ)).
func TestMD1AgainstPollaczekKhinchine(t *testing.T) {
	const lambda, mu = 0.6, 1.0
	s := New()
	rng := NewRand(99)
	var queue []float64
	busy := false
	var totalWait float64
	var served int
	var depart func()
	depart = func() {
		arrivedAt := queue[0]
		queue = queue[1:]
		totalWait += s.Now() - arrivedAt - 1/mu
		served++
		if len(queue) > 0 {
			s.After(1/mu, depart)
		} else {
			busy = false
		}
	}
	var arrive func()
	arrive = func() {
		queue = append(queue, s.Now())
		if !busy {
			busy = true
			s.After(1/mu, depart)
		}
		s.After(rng.Exp(1/lambda), arrive)
	}
	s.After(rng.Exp(1/lambda), arrive)
	s.RunUntil(200000)

	rho := lambda / mu
	wantWq := rho / (2 * mu * (1 - rho)) // 0.75
	gotWq := totalWait / float64(served)
	if math.Abs(gotWq-wantWq)/wantWq > 0.07 {
		t.Errorf("E[Wq] = %.3f, want %.3f ± 7%%", gotWq, wantWq)
	}
}
