// Package sim is a deterministic discrete-event simulation kernel: the Go
// substitute for the C-SIM library the paper's authors used (§VI-A). It
// provides a time-ordered event queue with stable FIFO tie-breaking,
// cancellable handles, periodic tasks, and seeded random variate streams.
//
// The stream-system simulator (internal/streamsim) advances control in
// fixed Δt ticks (the paper's discrete-time model) but uses this kernel for
// continuous-time machinery: source arrival processes and Markov state
// switches. The kernel is also usable standalone and is validated against
// M/M/1 and M/D/1 queueing closed forms in its tests.
package sim

import (
	"container/heap"
	"math"
)

// Simulator owns simulated time and the pending-event queue. It is not safe
// for concurrent use: all events execute on the caller's goroutine, which is
// what makes runs deterministic.
type Simulator struct {
	now    float64
	events eventHeap
	seq    uint64
	nsteps uint64
}

// New returns a simulator at time 0 with an empty queue.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.nsteps }

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid.
type Handle struct {
	ev *event
}

// Valid reports whether the handle refers to a scheduled (not yet executed
// or cancelled) event.
func (h Handle) Valid() bool { return h.ev != nil && !h.ev.done }

type event struct {
	at   float64
	seq  uint64 // insertion order: stable FIFO among equal times
	fn   func()
	done bool
	idx  int // heap index, -1 when popped
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is clamped to Now, so the event runs next. fn must not be nil.
func (s *Simulator) At(t float64, fn func()) Handle {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d seconds from now. Negative d is clamped to 0.
func (s *Simulator) After(d float64, fn func()) Handle {
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-executed or
// already-cancelled event is a no-op. It returns whether the event was
// actually cancelled.
func (s *Simulator) Cancel(h Handle) bool {
	if !h.Valid() {
		return false
	}
	h.ev.done = true
	if h.ev.idx >= 0 {
		heap.Remove(&s.events, h.ev.idx)
	}
	return true
}

// Step executes the next pending event. It returns false when the queue is
// empty.
func (s *Simulator) Step() bool {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.done {
			continue
		}
		ev.done = true
		s.now = ev.at
		s.nsteps++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events up to and including time t, then sets Now to t.
// Events scheduled exactly at t run; events after t remain queued.
func (s *Simulator) RunUntil(t float64) {
	for s.events.Len() > 0 {
		next := s.events[0]
		if next.done {
			heap.Pop(&s.events)
			continue
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Run executes events until the queue is empty or maxSteps events have run
// (0 means no limit). It returns the number of events executed.
func (s *Simulator) Run(maxSteps uint64) uint64 {
	var n uint64
	for maxSteps == 0 || n < maxSteps {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// Pending returns the number of scheduled (uncancelled) events.
func (s *Simulator) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.done {
			n++
		}
	}
	return n
}

// NextAt returns the time of the next pending event and true, or (+Inf,
// false) when the queue is empty. Cancel removes events from the heap
// eagerly, so the heap root is always live.
func (s *Simulator) NextAt() (float64, bool) {
	if s.events.Len() == 0 {
		return math.Inf(1), false
	}
	return s.events[0].at, true
}

// Every schedules fn to run every period seconds, starting at Now + period.
// The returned stop function cancels future occurrences. fn receives the
// occurrence time. period must be positive.
func (s *Simulator) Every(period float64, fn func(t float64)) (stop func()) {
	if period <= 0 {
		panic("sim: Every requires positive period")
	}
	stopped := false
	var h Handle
	var schedule func()
	schedule = func() {
		h = s.After(period, func() {
			if stopped {
				return
			}
			fn(s.now)
			schedule()
		})
	}
	schedule()
	return func() {
		stopped = true
		s.Cancel(h)
	}
}

// eventHeap implements container/heap ordered by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}
