package sim

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSubstreamIndependence(t *testing.T) {
	a := Substream(7, 1)
	b := Substream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("substreams look correlated: %d identical draws", same)
	}
	// Same (seed, id) reproduces.
	c, d := Substream(7, 3), Substream(7, 3)
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			t.Fatalf("substream not reproducible")
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(1)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("Exp mean = %g, want 2.5", mean)
	}
	if r.Exp(0) != 0 || r.Exp(-1) != 0 {
		t.Errorf("non-positive mean should return 0")
	}
}

func TestPoissonMeanAndVariance(t *testing.T) {
	r := NewRand(2)
	for _, mean := range []float64{0.5, 4, 50} { // small + Knuth + normal approx
		var sum, sq float64
		n := 100000
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sq += v * v
		}
		m := sum / float64(n)
		variance := sq/float64(n) - m*m
		if math.Abs(m-mean)/mean > 0.05 {
			t.Errorf("Poisson(%g) mean = %g", mean, m)
		}
		if math.Abs(variance-mean)/mean > 0.1 {
			t.Errorf("Poisson(%g) var = %g", mean, variance)
		}
	}
	if r.Poisson(0) != 0 {
		t.Errorf("Poisson(0) should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(3)
	p := 0.25
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		v := r.Geometric(p)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(n)
	if math.Abs(mean-4)/4 > 0.03 {
		t.Errorf("Geometric(0.25) mean = %g, want 4", mean)
	}
	if r.Geometric(1) != 1 {
		t.Errorf("Geometric(1) must be 1")
	}
}

func TestGeometricPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewRand(1).Geometric(0)
}

func TestUniformRange(t *testing.T) {
	r := NewRand(4)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(5)
	var sum, sq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sq += v * v
	}
	m := sum / float64(n)
	sd := math.Sqrt(sq/float64(n) - m*m)
	if math.Abs(m-10) > 0.05 || math.Abs(sd-3) > 0.05 {
		t.Errorf("Normal(10,3) moments = %g, %g", m, sd)
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	r := NewRand(6)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1.5, 1, 100)
		if v < 1 || v > 100 {
			t.Fatalf("BoundedPareto out of [1,100]: %g", v)
		}
	}
}

func TestBoundedParetoValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewRand(1).BoundedPareto(1, 5, 2)
}

func TestPermAndShuffle(t *testing.T) {
	r := NewRand(7)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	xs := []int{0, 1, 2, 3, 4}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 10 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}
