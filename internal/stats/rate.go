package stats

// RateTracker estimates a rate (events or bytes per second) with an
// exponentially weighted moving average over fixed sampling intervals. The
// tier-2 controller uses it to track per-PE processing and input rates
// (paper §V: "simple token bucket and rate tracking mechanisms").
type RateTracker struct {
	alpha    float64 // EWMA smoothing factor in (0, 1]
	interval float64 // sampling interval Δt in seconds
	acc      float64 // accumulated quantity in current interval
	rate     float64 // smoothed rate (per second)
	primed   bool
}

// NewRateTracker creates a tracker sampling every interval seconds with
// smoothing factor alpha. alpha = 1 disables smoothing (last interval only).
func NewRateTracker(interval, alpha float64) *RateTracker {
	if interval <= 0 {
		panic("stats: RateTracker interval must be positive")
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &RateTracker{alpha: alpha, interval: interval}
}

// Observe adds quantity q to the current interval.
func (t *RateTracker) Observe(q float64) { t.acc += q }

// Tick closes the current interval and folds it into the smoothed rate,
// assuming the interval ran for its nominal Δt. Call exactly once per Δt.
// A live scheduler whose timer fired late or coalesced must use TickFor
// with the measured elapsed time instead — dividing by the nominal
// interval would bias the rate high by exactly the slip factor.
func (t *RateTracker) Tick() { t.TickFor(t.interval) }

// TickFor closes the current interval using the measured elapsed time in
// seconds, mirroring TokenBucket.RefillFor: the accumulated quantity is
// divided by the time that actually passed, so late or coalesced ticks
// yield unbiased samples. Non-positive elapsed drops the interval (the
// quantity is retained for the next one — no time passed to rate it over).
func (t *RateTracker) TickFor(elapsed float64) {
	if elapsed <= 0 {
		return
	}
	sample := t.acc / elapsed
	t.acc = 0
	if !t.primed {
		t.rate = sample
		t.primed = true
		return
	}
	t.rate = t.alpha*sample + (1-t.alpha)*t.rate
}

// Rate returns the smoothed rate in quantity per second.
func (t *RateTracker) Rate() float64 { return t.rate }

// Reset clears all state.
func (t *RateTracker) Reset() { t.acc, t.rate, t.primed = 0, 0, false }

// TimeSeries records (time, value) pairs for plotting/regression in the
// experiment harness. Points are appended in time order.
type TimeSeries struct {
	T []float64
	V []float64
}

// Append adds a point. Times must be non-decreasing; out-of-order points
// are dropped to keep downstream consumers simple.
func (s *TimeSeries) Append(t, v float64) {
	if n := len(s.T); n > 0 && t < s.T[n-1] {
		return
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *TimeSeries) Len() int { return len(s.T) }

// MeanAfter returns the mean of values with time ≥ t0 — used to discard
// simulation warm-up transients. Returns 0 if no points qualify.
func (s *TimeSeries) MeanAfter(t0 float64) float64 {
	var w Welford
	for i, t := range s.T {
		if t >= t0 {
			w.Add(s.V[i])
		}
	}
	return w.Mean()
}

// StdAfter returns the standard deviation of values with time ≥ t0.
func (s *TimeSeries) StdAfter(t0 float64) float64 {
	var w Welford
	for i, t := range s.T {
		if t >= t0 {
			w.Add(s.V[i])
		}
	}
	return w.Std()
}

// Last returns the final value, or 0 when empty.
func (s *TimeSeries) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// AutoCorr returns the lag-k autocorrelation of the series values: +1 for
// smooth trends, near 0 for noise, negative for tick-to-tick oscillation —
// the §IV instability signature ("an oscillating input rate leads to an
// oscillating output rate... and destabilize the system"). Returns 0 when
// fewer than lag+2 points exist or the series is constant.
func (s *TimeSeries) AutoCorr(lag int) float64 {
	n := len(s.V)
	if lag <= 0 || n < lag+2 {
		return 0
	}
	var mean float64
	for _, v := range s.V {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := s.V[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (s.V[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
