package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Std() != 0 {
		t.Fatalf("zero value not empty: %v", w.String())
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", w.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance is
	// 32/7.
	if !almostEq(w.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %g, want %g", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", w.Min(), w.Max())
	}
	if !almostEq(w.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %g, want 40", w.Sum())
	}
}

func TestWelfordSingleValueVariance(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Var() != 0 || w.Std() != 0 || w.CI95() != 0 {
		t.Errorf("single observation should have zero spread: %v", w.String())
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(2.5, 5)
	for i := 0; i < 5; i++ {
		b.Add(2.5)
	}
	if a.N() != b.N() || !almostEq(a.Mean(), b.Mean(), 1e-12) || !almostEq(a.Var(), b.Var(), 1e-12) {
		t.Errorf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
	}
	var all Welford
	for _, x := range xs {
		all.Add(x)
	}
	var left, right Welford
	for _, x := range xs[:357] {
		left.Add(x)
	}
	for _, x := range xs[357:] {
		right.Add(x)
	}
	left.Merge(right)
	if left.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), all.N())
	}
	if !almostEq(left.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean = %g, want %g", left.Mean(), all.Mean())
	}
	if !almostEq(left.Var(), all.Var(), 1e-9) {
		t.Errorf("merged var = %g, want %g", left.Var(), all.Var())
	}
	if left.Min() != all.Min() || left.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.Add(4)
	b.Add(6)
	a.Merge(b) // empty ← nonempty
	if a.N() != 2 || !almostEq(a.Mean(), 5, 1e-12) {
		t.Errorf("merge into empty failed: %v", a.String())
	}
	var empty Welford
	a.Merge(empty) // nonempty ← empty
	if a.N() != 2 || !almostEq(a.Mean(), 5, 1e-12) {
		t.Errorf("merge of empty changed state: %v", a.String())
	}
}

// Property: Welford mean/variance agree with the two-pass formulas for any
// input vector.
func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 128.0
		}
		var w Welford
		var sum float64
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		return almostEq(w.Mean(), mean, 1e-8*(1+math.Abs(mean))) &&
			almostEq(w.Var(), variance, 1e-6*(1+variance))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReservoirExactWhenUnderCapacity(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 99; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0.5); !almostEq(got, 50, 1e-9) {
		t.Errorf("median = %g, want 50", got)
	}
	if got := r.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want 1", got)
	}
	if got := r.Quantile(1); got != 99 {
		t.Errorf("q1 = %g, want 99", got)
	}
}

func TestReservoirSamplingApproximatesQuantiles(t *testing.T) {
	r := NewReservoir(2000, 42)
	n := 200000
	for i := 0; i < n; i++ {
		r.Add(float64(i) / float64(n)) // uniform on [0,1)
	}
	if r.N() != int64(n) {
		t.Fatalf("N = %d, want %d", r.N(), n)
	}
	qs := r.Quantiles(0.1, 0.5, 0.9)
	for i, want := range []float64{0.1, 0.5, 0.9} {
		if !almostEq(qs[i], want, 0.05) {
			t.Errorf("quantile %g = %g, want ≈%g", want, qs[i], want)
		}
	}
}

func TestReservoirDefaults(t *testing.T) {
	r := NewReservoir(0, 0)
	if r.cap != 4096 {
		t.Errorf("default capacity = %d, want 4096", r.cap)
	}
	r.Add(1)
	if r.Quantile(0.5) != 1 {
		t.Errorf("single-element quantile wrong")
	}
	empty := NewReservoir(4, 9)
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty reservoir quantile should be 0")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	for i := 0; i < 10; i++ {
		c, lo, hi := h.Bucket(i)
		if c != 10 {
			t.Errorf("bucket %d count = %d, want 10", i, c)
		}
		if !almostEq(lo, float64(i), 1e-12) || !almostEq(hi, float64(i+1), 1e-12) {
			t.Errorf("bucket %d bounds = [%g,%g)", i, lo, hi)
		}
	}
	med := h.Quantile(0.5)
	if !almostEq(med, 5, 0.6) {
		t.Errorf("median = %g, want ≈5", med)
	}
}

func TestHistogramOutliers(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(2)
	h.Add(0.5)
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Errorf("outliers = %d/%d, want 1/1", under, over)
	}
	if h.Quantile(0) != 0 {
		t.Errorf("q0 with underflow should clamp to lo")
	}
	if h.NumBuckets() != 4 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for inverted bounds")
		}
	}()
	NewHistogram(5, 1, 3)
}

func TestRateTrackerConvergesToConstantRate(t *testing.T) {
	tr := NewRateTracker(0.1, 0.3)
	for i := 0; i < 200; i++ {
		tr.Observe(5) // 5 units per 0.1s = 50/s
		tr.Tick()
	}
	if !almostEq(tr.Rate(), 50, 1e-6) {
		t.Errorf("rate = %g, want 50", tr.Rate())
	}
	tr.Reset()
	if tr.Rate() != 0 {
		t.Errorf("rate after reset = %g", tr.Rate())
	}
}

func TestRateTrackerFirstSamplePrimes(t *testing.T) {
	tr := NewRateTracker(1, 0.1)
	tr.Observe(30)
	tr.Tick()
	if !almostEq(tr.Rate(), 30, 1e-12) {
		t.Errorf("first sample should prime EWMA directly, got %g", tr.Rate())
	}
}

func TestRateTrackerSmoothsSteps(t *testing.T) {
	tr := NewRateTracker(1, 0.5)
	tr.Observe(100)
	tr.Tick() // rate = 100
	tr.Tick() // sample 0 → rate = 50
	if !almostEq(tr.Rate(), 50, 1e-12) {
		t.Errorf("rate = %g, want 50", tr.Rate())
	}
}

func TestRateTrackerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for non-positive interval")
		}
	}()
	NewRateTracker(0, 0.5)
}

func TestTimeSeries(t *testing.T) {
	var s TimeSeries
	s.Append(0, 1)
	s.Append(1, 3)
	s.Append(0.5, 99) // out of order: dropped
	s.Append(2, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.MeanAfter(1); !almostEq(got, 4, 1e-12) {
		t.Errorf("MeanAfter(1) = %g, want 4", got)
	}
	if got := s.StdAfter(1); !almostEq(got, math.Sqrt2, 1e-9) {
		t.Errorf("StdAfter(1) = %g, want √2", got)
	}
	if s.Last() != 5 {
		t.Errorf("Last = %g, want 5", s.Last())
	}
	var empty TimeSeries
	if empty.Last() != 0 || empty.MeanAfter(0) != 0 {
		t.Errorf("empty series should report zeros")
	}
}

func TestQuantileSortedEdges(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if quantileSorted(s, -1) != 1 || quantileSorted(s, 2) != 4 {
		t.Errorf("clamping failed")
	}
	if got := quantileSorted(s, 0.5); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("median = %g, want 2.5", got)
	}
}

func TestAutoCorr(t *testing.T) {
	var osc TimeSeries
	for i := 0; i < 200; i++ {
		v := 1.0
		if i%2 == 0 {
			v = -1
		}
		osc.Append(float64(i), v)
	}
	if ac := osc.AutoCorr(1); ac > -0.9 {
		t.Errorf("alternating series lag-1 AC = %g, want ≈ −1", ac)
	}
	var smooth TimeSeries
	for i := 0; i < 200; i++ {
		smooth.Append(float64(i), math.Sin(float64(i)/30))
	}
	if ac := smooth.AutoCorr(1); ac < 0.9 {
		t.Errorf("smooth series lag-1 AC = %g, want ≈ 1", ac)
	}
	var flat TimeSeries
	flat.Append(0, 5)
	flat.Append(1, 5)
	flat.Append(2, 5)
	if flat.AutoCorr(1) != 0 {
		t.Errorf("constant series AC should be 0")
	}
	if flat.AutoCorr(0) != 0 || flat.AutoCorr(99) != 0 {
		t.Errorf("degenerate lags should be 0")
	}
}

func TestRateTrackerTickForUnbiasedOnLateTicks(t *testing.T) {
	// A nominal 1s scheduler that slips to 2s intervals must not report
	// double the true rate: 10 events over a measured 2s is 5/s.
	tr := NewRateTracker(1.0, 1.0)
	tr.Observe(10)
	tr.TickFor(2.0)
	if tr.Rate() != 5 {
		t.Errorf("Rate after late tick = %g, want 5", tr.Rate())
	}
	// Nominal Tick() is TickFor(interval).
	tr.Reset()
	tr.Observe(10)
	tr.Tick()
	if tr.Rate() != 10 {
		t.Errorf("Rate after nominal tick = %g, want 10", tr.Rate())
	}
}

func TestRateTrackerTickForZeroElapsedRetainsQuantity(t *testing.T) {
	tr := NewRateTracker(1.0, 1.0)
	tr.Observe(4)
	tr.TickFor(0) // coalesced tick: no time passed, nothing to rate over
	if tr.Rate() != 0 {
		t.Fatalf("Rate after zero-elapsed tick = %g, want 0 (unprimed)", tr.Rate())
	}
	tr.Observe(4)
	tr.TickFor(2)
	if tr.Rate() != 4 {
		t.Errorf("Rate = %g, want (4+4)/2 = 4 (quantity lost on zero-elapsed tick)", tr.Rate())
	}
}
