// Package stats provides the small statistical toolkit used throughout the
// ACES reproduction: numerically stable streaming moments (Welford),
// fixed-bucket and P²-free exact percentile trackers, time-windowed rate
// estimators, and confidence intervals. Everything is allocation-light and
// safe to embed per-PE in 200+-element simulations.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a mean and variance in a single pass using Welford's
// online algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddN incorporates x with weight n (n identical observations).
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge combines another accumulator into w (Chan et al. parallel variant).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 if n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the unbiased sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the minimum observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the maximum observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Sum returns mean·n.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (0 if n < 2).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Std() / math.Sqrt(float64(w.n))
}

// String summarizes the accumulator.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", w.n, w.Mean(), w.Std(), w.min, w.max)
}

// Reservoir keeps a bounded uniform sample of a value stream so exact
// quantiles can be computed over arbitrarily long runs with bounded memory.
// Sampling uses the caller-provided deterministic source via Skip/Add so the
// package stays free of global randomness; the common path is AddAll with a
// cap large enough to hold everything.
type Reservoir struct {
	cap  int
	n    int64
	vals []float64
	// rnd is a simple xorshift state for reservoir replacement decisions;
	// seeded deterministically so runs are reproducible.
	rnd uint64
}

// NewReservoir returns a reservoir holding at most capacity samples. A
// capacity of 0 defaults to 4096.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		capacity = 4096
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Reservoir{cap: capacity, vals: make([]float64, 0, capacity), rnd: seed}
}

func (r *Reservoir) next() uint64 {
	x := r.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rnd = x
	return x
}

// Add offers x to the reservoir (Vitter's algorithm R).
func (r *Reservoir) Add(x float64) {
	r.n++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, x)
		return
	}
	// Replace a random slot with probability cap/n.
	j := r.next() % uint64(r.n)
	if j < uint64(r.cap) {
		r.vals[j] = x
	}
}

// N returns the number of values offered.
func (r *Reservoir) N() int64 { return r.n }

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) over the retained
// sample using linear interpolation. Returns 0 on an empty reservoir.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.vals) == 0 {
		return 0
	}
	s := make([]float64, len(r.vals))
	copy(s, r.vals)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// Quantiles returns several quantiles with a single sort.
func (r *Reservoir) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(r.vals) == 0 {
		return out
	}
	s := make([]float64, len(r.vals))
	copy(s, r.vals)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram is a fixed-width bucket histogram over [lo, hi) with overflow
// and underflow buckets. It is used for latency distributions in reports.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int64
	under   int64
	over    int64
	n       int64
}

// NewHistogram creates a histogram with nb equal-width buckets spanning
// [lo, hi). It panics if nb <= 0 or hi <= lo (programmer error).
func NewHistogram(lo, hi float64, nb int) *Histogram {
	if nb <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(nb), buckets: make([]int64, nb)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // float edge case at hi boundary
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// N returns the total count.
func (h *Histogram) N() int64 { return h.n }

// Bucket returns the count and [lo, hi) range of bucket i.
func (h *Histogram) Bucket(i int) (count int64, lo, hi float64) {
	return h.buckets[i], h.lo + float64(i)*h.width, h.lo + float64(i+1)*h.width
}

// NumBuckets returns the number of interior buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over int64) { return h.under, h.over }

// Quantile estimates the q-th quantile by linear interpolation within the
// containing bucket. Underflow mass is attributed to lo and overflow to hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.buckets {
		if cum+float64(c) >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum += float64(c)
	}
	return h.hi
}
