package spc

import (
	"context"
	"sync"

	"aces/internal/sdo"
)

// Buffer is a bounded FIFO of SDOs guarding one PE's input. TryPush never
// blocks (UDP / max-flow semantics: a full buffer drops); Push blocks until
// space or context cancellation (lock-step semantics). Pop blocks until an
// SDO is available or the context is done.
type Buffer struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    []sdo.SDO
	head     int
	capacity int
	closed   bool
}

// NewBuffer creates a buffer with the given capacity in SDOs.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("spc: buffer capacity must be positive")
	}
	b := &Buffer{capacity: capacity}
	b.notFull = sync.NewCond(&b.mu)
	b.notEmpty = sync.NewCond(&b.mu)
	return b
}

// Len returns the current occupancy.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items) - b.head
}

// Cap returns the capacity.
func (b *Buffer) Cap() int { return b.capacity }

// TryPush appends s if space is available and reports success.
func (b *Buffer) TryPush(s sdo.SDO) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || len(b.items)-b.head >= b.capacity {
		return false
	}
	b.push(s)
	return true
}

// Push blocks until space is available or ctx is done; it returns false
// when the buffer closed or the context was cancelled.
func (b *Buffer) Push(ctx context.Context, s sdo.SDO) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.closed && len(b.items)-b.head >= b.capacity {
		if ctx.Err() != nil {
			return false
		}
		// Cond has no context support: wake-ups come from Pop and from
		// Close; the runtime closes buffers on shutdown, so this cannot
		// hang. A courtesy waker goroutine is not needed because every
		// cancel path closes the buffer.
		b.notFull.Wait()
	}
	if b.closed {
		return false
	}
	b.push(s)
	return true
}

// Pop blocks until an SDO is available; ok is false when the buffer is
// closed and drained, or the context is done.
func (b *Buffer) Pop(ctx context.Context) (s sdo.SDO, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.items)-b.head == 0 {
		if b.closed || ctx.Err() != nil {
			return sdo.SDO{}, false
		}
		b.notEmpty.Wait()
	}
	s = b.advanceHead()
	b.notFull.Signal()
	return s, true
}

// TryPop removes the head SDO without blocking.
func (b *Buffer) TryPop() (s sdo.SDO, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items)-b.head == 0 {
		return sdo.SDO{}, false
	}
	s = b.advanceHead()
	b.notFull.Signal()
	return s, true
}

// advanceHead removes and returns the head SDO and compacts the backing
// array once the dead prefix dominates it, keeping memory bounded no
// matter which pop path the consumer uses. Callers hold b.mu.
func (b *Buffer) advanceHead() sdo.SDO {
	s := b.items[b.head]
	b.items[b.head] = sdo.SDO{} // release payload reference
	b.head++
	if b.head > 256 && b.head*2 >= len(b.items) {
		n := copy(b.items, b.items[b.head:])
		b.items = b.items[:n]
		b.head = 0
	}
	return s
}

// Close wakes all waiters; subsequent pushes fail and pops drain the
// remaining items, then fail.
func (b *Buffer) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.notFull.Broadcast()
	b.notEmpty.Broadcast()
}

func (b *Buffer) push(s sdo.SDO) {
	b.items = append(b.items, s)
	b.notEmpty.Signal()
}
