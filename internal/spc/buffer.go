package spc

import (
	"context"
	"sync"

	"aces/internal/sdo"
)

// Buffer is a bounded FIFO of SDOs guarding one PE's input. TryPush never
// blocks (UDP / max-flow semantics: a full buffer drops); Push blocks until
// space or context cancellation (lock-step semantics). Pop blocks until an
// SDO is available or the context is done.
type Buffer struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    []sdo.SDO
	head     int
	capacity int
	closed   bool
}

// NewBuffer creates a buffer with the given capacity in SDOs.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("spc: buffer capacity must be positive")
	}
	b := &Buffer{capacity: capacity}
	b.notFull = sync.NewCond(&b.mu)
	b.notEmpty = sync.NewCond(&b.mu)
	return b
}

// Len returns the current occupancy.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items) - b.head
}

// Cap returns the capacity.
func (b *Buffer) Cap() int { return b.capacity }

// TryPush appends s if space is available and reports success.
func (b *Buffer) TryPush(s sdo.SDO) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || len(b.items)-b.head >= b.capacity {
		return false
	}
	b.push(s)
	return true
}

// Push blocks until space is available or ctx is done; it returns false
// when the buffer closed or the context was cancelled.
func (b *Buffer) Push(ctx context.Context, s sdo.SDO) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	var stop func() bool
	for !b.closed && ctx.Err() == nil && len(b.items)-b.head >= b.capacity {
		if stop == nil && ctx.Done() != nil {
			// Cond has no context support: wake-ups come from Pop and
			// from Close. The cluster's Stop does close every buffer,
			// but Push must not hang if a caller cancels without
			// closing, so the slow path arms a waker that broadcasts
			// on cancellation. Armed only once per blocked Push, and
			// only after the fast path has already failed.
			waker := func() {
				b.mu.Lock()
				b.notFull.Broadcast()
				b.mu.Unlock()
			}
			stop = context.AfterFunc(ctx, waker)
		}
		b.notFull.Wait()
	}
	if stop != nil {
		// Does not wait for an in-flight waker: the callback only
		// broadcasts, which is harmless after we return.
		stop()
	}
	if b.closed || ctx.Err() != nil {
		return false
	}
	b.push(s)
	return true
}

// Pop blocks until an SDO is available; ok is false when the buffer is
// closed and drained, or the context is done.
func (b *Buffer) Pop(ctx context.Context) (s sdo.SDO, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.items)-b.head == 0 {
		if b.closed || ctx.Err() != nil {
			return sdo.SDO{}, false
		}
		b.notEmpty.Wait()
	}
	s = b.advanceHead()
	b.notFull.Signal()
	return s, true
}

// TryPop removes the head SDO without blocking.
func (b *Buffer) TryPop() (s sdo.SDO, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items)-b.head == 0 {
		return sdo.SDO{}, false
	}
	s = b.advanceHead()
	b.notFull.Signal()
	return s, true
}

// advanceHead removes and returns the head SDO and compacts the backing
// array once the dead prefix dominates it, keeping memory bounded no
// matter which pop path the consumer uses. Callers hold b.mu.
func (b *Buffer) advanceHead() sdo.SDO {
	s := b.items[b.head]
	b.items[b.head] = sdo.SDO{} // release payload reference
	b.head++
	if b.head > 256 && b.head*2 >= len(b.items) {
		n := copy(b.items, b.items[b.head:])
		b.items = b.items[:n]
		b.head = 0
	}
	return s
}

// Close marks the buffer closed and wakes all waiters. It is idempotent:
// closing an already-closed buffer is a no-op (the supervisor and the
// cluster's Stop may both reach a buffer).
//
// Post-Close semantics, relied on by the PE supervisor's crash-recovery
// path and locked in by tests:
//
//   - Push and TryPush fail immediately (return false); no SDO is ever
//     admitted after Close, even if space is free.
//   - Pop and TryPop keep draining the items buffered before Close —
//     shutdown does not forfeit accepted data — and only report failure
//     once the buffer is empty.
func (b *Buffer) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.notFull.Broadcast()
	b.notEmpty.Broadcast()
}

func (b *Buffer) push(s sdo.SDO) {
	b.items = append(b.items, s)
	b.notEmpty.Signal()
}
