package spc

import (
	"context"

	"aces/internal/ring"
	"aces/internal/sdo"
)

// Buffer is a bounded FIFO of SDOs guarding one PE's input. TryPush never
// blocks (UDP / max-flow semantics: a full buffer drops); Push blocks until
// space or context cancellation (lock-step semantics). Pop blocks until an
// SDO is available or the context is done.
//
// Since ISSUE 10 the implementation is a lock-free ring (internal/ring)
// instead of a mutex+cond deque: the steady-state push/pop cost is a
// couple of uncontended atomics, and blocked producers/consumers park on
// a cond var only after spinning out. Capacity semantics are unchanged
// and exact — shed thresholds and drop rates see the same occupancy the
// old implementation reported.
//
// The push side is always multi-producer: upstream PE emitters, sources,
// bridge injection and the replica drain can all target one buffer, and
// the exported Inject* APIs mean single-producer ownership is never
// provable from the topology alone. The pop side runs the ring's
// single-consumer fast path for primary slots (rep 0), whose only
// consumer is the PE goroutine; replica slots (rep > 0) are also popped
// by the scheduler's scale-in drain, so they stay multi-consumer.
type Buffer struct {
	r *ring.Ring[sdo.SDO]
}

// NewBuffer creates a buffer with the given capacity in SDOs. It is safe
// for any number of concurrent producers and consumers.
func NewBuffer(capacity int) *Buffer { return newBufferMode(capacity, ring.MPMC) }

// newBufferMode creates a buffer with an explicit ring mode; the cluster
// uses it to claim the single-consumer fast path for primary slots.
func newBufferMode(capacity int, mode ring.Mode) *Buffer {
	if capacity <= 0 {
		panic("spc: buffer capacity must be positive")
	}
	return &Buffer{r: ring.New[sdo.SDO](capacity, mode)}
}

// Len returns the current occupancy.
func (b *Buffer) Len() int { return b.r.Len() }

// Cap returns the capacity.
func (b *Buffer) Cap() int { return b.r.Cap() }

// TryPush appends s if space is available and reports success.
func (b *Buffer) TryPush(s sdo.SDO) bool { return b.r.TryPush(s) }

// Push blocks until space is available or ctx is done; it returns false
// when the buffer closed or the context was cancelled. A blocked Push
// arms a cancellation waker, so a caller that cancels without closing
// the buffer cannot hang.
func (b *Buffer) Push(ctx context.Context, s sdo.SDO) bool { return b.r.Push(ctx, s) }

// Pop blocks until an SDO is available; ok is false when the buffer is
// closed and drained, or the context is done. Like Push, a blocked Pop
// arms a cancellation waker — cancelling the context alone unblocks it
// (the PR 3 implementation armed the waker only on the push side, so a
// cancelled consumer on an idle buffer hung forever).
func (b *Buffer) Pop(ctx context.Context) (s sdo.SDO, ok bool) { return b.r.Pop(ctx) }

// TryPop removes the head SDO without blocking.
func (b *Buffer) TryPop() (s sdo.SDO, ok bool) { return b.r.TryPop() }

// Close marks the buffer closed and wakes all waiters. It is idempotent:
// closing an already-closed buffer is a no-op (the supervisor and the
// cluster's Stop may both reach a buffer).
//
// Post-Close semantics, relied on by the PE supervisor's crash-recovery
// path and locked in by tests:
//
//   - Push and TryPush fail immediately (return false); no SDO is ever
//     admitted after Close, even if space is free.
//   - Pop and TryPop keep draining the items buffered before Close —
//     shutdown does not forfeit accepted data — and only report failure
//     once the buffer is empty.
func (b *Buffer) Close() { b.r.Close() }
