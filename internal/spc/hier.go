// Hierarchical dissemination: epoch-stamped targets flow DOWN a spanning
// tree of processes (root → relays → leaves) and acks flow back UP, so
// the root of a large deployment pushes each epoch to a handful of
// children instead of fanning out to every node, and still learns how
// far every descendant has applied. The tree is pure wiring on top of
// the existing target vocabulary: a relay that applies an epoch
// re-broadcasts the SAME frames to its own children, stale-epoch
// rejection dedups the inevitable re-deliveries, and v1/v2 peers that
// never advertised FeatureHier simply hang off the tree as leaves that
// get targets and send no acks.
package spc

import (
	"fmt"
	"math"
	"sync"
	"time"

	"aces/internal/hier"
	"aces/internal/optimize"
)

// hierDecomposition lets retarget.go hold the prebuilt partition without
// importing internal/hier itself.
type hierDecomposition = hier.Decomposition

// EpochAckSender is the uplink extension for upward dissemination acks,
// the tree-parent analogue of TargetSender. Senders must be best-effort
// and non-blocking: a lost ack is repaired by the ack that follows the
// next target frame.
type EpochAckSender interface {
	SendTargetAck(origin int32, epoch uint64) error
}

// hierRelay is a cluster's position in the dissemination tree.
type hierRelay struct {
	mu sync.Mutex
	// parent receives this process's acks (nil at the root).
	parent EpochAckSender
	// children receive relayed target frames (empty at a leaf).
	children []TargetSender
	// origin is the node ID this process acks as.
	origin int32
	// acked[o] is the newest epoch acked by descendant origin o.
	acked   map[int32]uint64
	enabled bool
}

// EnableHierRelay places this process in the dissemination tree: acks go
// to parent under the given origin node ID (parent nil at the root), and
// every applied epoch is re-broadcast to the children. Call before
// Start. Once enabled, SetTargets/SetReplicaTargets disseminate through
// the children instead of the flat uplink; received epochs are relayed
// down and acked up automatically.
func (c *Cluster) EnableHierRelay(origin int32, parent EpochAckSender, children ...TargetSender) {
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	c.hier.origin = origin
	c.hier.parent = parent
	c.hier.children = append([]TargetSender(nil), children...)
	c.hier.acked = make(map[int32]uint64)
	c.hier.enabled = true
}

func (c *Cluster) hierEnabled() bool {
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	return c.hier.enabled && len(c.hier.children) > 0
}

// relayTargetsDown pushes the applied target set to every tree child:
// replica form to children with the elastic extension, the collapsed
// logical vector otherwise — the same per-peer degradation as the flat
// path. Each frame increments retarget_frames_sent.
func (c *Cluster) relayTargetsDown() {
	c.hier.mu.Lock()
	children := c.hier.children
	c.hier.mu.Unlock()
	if len(children) == 0 {
		return
	}
	ts := c.targets.Load()
	for _, child := range children {
		var err error
		if ts.rep != nil {
			if rts, ok := child.(ReplicaTargetSender); ok {
				err = rts.SendReplicaTargets(ts.epoch, ts.rep)
			} else {
				err = child.SendTargets(ts.epoch, ts.cpu)
			}
		} else {
			err = child.SendTargets(ts.epoch, ts.cpu)
		}
		if err != nil {
			continue // best effort; the next epoch or re-broadcast repairs it
		}
		c.framesSent.Add(1)
		if c.reg != nil {
			c.reg.Counter("retarget_frames_sent", nil).Inc()
		}
	}
}

// ackTargetsUp reports the applied epoch to the tree parent (no-op at
// the root). Sent on EVERY received target frame, stale or fresh, so a
// parent that re-broadcasts after a reconnect always re-learns where the
// subtree stands.
func (c *Cluster) ackTargetsUp() {
	c.hier.mu.Lock()
	parent := c.hier.parent
	origin := c.hier.origin
	c.hier.mu.Unlock()
	if parent == nil {
		return
	}
	_ = parent.SendTargetAck(origin, c.targets.Load().epoch)
}

// InjectTargetAck records a descendant's applied epoch and forwards the
// ack toward the root unchanged, so every ancestor sees it. Called by
// the link layer for KindTargetAck frames.
func (c *Cluster) InjectTargetAck(origin int32, epoch uint64) {
	c.hier.mu.Lock()
	if c.hier.acked == nil {
		c.hier.acked = make(map[int32]uint64)
	}
	if epoch > c.hier.acked[origin] {
		c.hier.acked[origin] = epoch
	}
	parent := c.hier.parent
	c.hier.mu.Unlock()
	c.updateEpochLag()
	if parent != nil {
		_ = parent.SendTargetAck(origin, epoch)
	}
}

// EpochLag returns the applied-vs-acked epoch gap of the slowest tracked
// descendant (0 when no acks have been seen or everything is current).
func (c *Cluster) EpochLag() uint64 {
	applied := c.targets.Load().epoch
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	var lag uint64
	for _, e := range c.hier.acked {
		if e < applied && applied-e > lag {
			lag = applied - e
		}
	}
	return lag
}

// TargetFramesSent returns how many target frames this process has
// pushed to its tree children.
func (c *Cluster) TargetFramesSent() int64 { return c.framesSent.Load() }

// AckedEpochs returns a copy of the per-origin applied epochs this
// process has learned from downstream acks (empty for leaves and flat
// deployments).
func (c *Cluster) AckedEpochs() map[int32]uint64 {
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	out := make(map[int32]uint64, len(c.hier.acked))
	for o, e := range c.hier.acked {
		out[o] = e
	}
	return out
}

func (c *Cluster) updateEpochLag() {
	if c.gEpochLag != nil {
		c.gEpochLag.Set(float64(c.EpochLag()))
	}
}

// noteSolve publishes one tier-1 re-solve's cost to telemetry and the
// run report.
func (c *Cluster) noteSolve(ms float64, iters int) {
	c.lastSolveMs.Store(math.Float64bits(ms))
	c.lastSolveIters.Store(int64(iters))
	if c.gSolveMs != nil {
		c.gSolveMs.Set(ms)
	}
	if c.gSolveIters != nil {
		c.gSolveIters.Set(float64(iters))
	}
}

// LastSolveMillis returns the wall time of the most recent tier-1
// re-solve on this process (0 before the first).
func (c *Cluster) LastSolveMillis() float64 {
	return math.Float64frombits(c.lastSolveMs.Load())
}

// noteColdSolve records that a re-solve cold-started: the solver reported
// that its warm start was missing or mis-shaped (Allocation.ColdStart), so
// the loop paid a full ascent. Surfaced as the retarget_cold_solves_total
// counter and Report.ColdSolves — a run that keeps cold-starting after a
// topology change is burning its epoch deadline on avoidable work.
func (c *Cluster) noteColdSolve() {
	c.coldSolves.Add(1)
	if c.reg != nil {
		c.reg.Counter("retarget_cold_solves_total", nil).Inc()
	}
}

// ColdSolves returns how many adaptive-loop re-solves cold-started on
// this process.
func (c *Cluster) ColdSolves() int64 { return c.coldSolves.Load() }

// HierRetarget switches the adaptive loop's re-solve to the hierarchical
// control plane (internal/hier): the calibrated topology is decomposed
// into regions once at StartRetarget, and every epoch re-solves the
// regions independently under the root's price coordination instead of
// running one monolithic ascent.
type HierRetarget struct {
	// Regions / MaxRegionPEs parameterize the partition (at least one
	// required; see hier.PartitionConfig).
	Regions      int
	MaxRegionPEs int
	// Sweeps, Epsilon, PriceStep tune the root's dual-ascent coordination
	// (defaults as in hier.Config).
	Sweeps    int
	Epsilon   float64
	PriceStep float64
	// Deadline is the per-epoch solve budget; a blown deadline truncates
	// the sweep instead of stalling the loop.
	Deadline time.Duration
}

// hierRetargetOnce is the hierarchical body of the adaptive loop: same
// observe/apply/disseminate contract as retargetOnce, with the solve
// delegated to hier.Solve over the prebuilt decomposition.
func (c *Cluster) hierRetargetOnce(cal *optimize.Calibrator, rc RetargetConfig, dec *hier.Decomposition) {
	for _, pr := range c.prs {
		if pr.breaker.Load() {
			continue
		}
		cpuFrac, rate := pr.calRates()
		cal.Observe(int(pr.id), cpuFrac, rate)
	}
	cur := c.targets.Load()
	oc := rc.Optimize
	oc.WarmStart = cur.cpu
	oc.WarmStartReplica = cur.rep
	hc := hier.Config{
		Optimize:  oc,
		Sweeps:    rc.Hier.Sweeps,
		Epsilon:   rc.Hier.Epsilon,
		PriceStep: rc.Hier.PriceStep,
		Deadline:  rc.Hier.Deadline,
		Elastic:   rc.Elastic,
	}
	ha, err := hier.Solve(cal.Calibrated(), dec, hc)
	if err != nil {
		// Keep the incumbent; re-disseminate so peers converge regardless.
		c.broadcastTargets()
		return
	}
	iters := 0
	for _, rs := range ha.Regions {
		iters += rs.Iterations
	}
	c.noteSolve(ha.SolveMillis, iters)
	if c.reg != nil {
		c.reg.Gauge("hier_regions", nil).Set(float64(len(ha.Regions)))
		c.reg.Gauge("hier_sweeps", nil).Set(float64(ha.Sweeps))
	}
	if rc.Elastic {
		if err := c.SetReplicaTargets(cur.epoch+1, ha.Replica); err != nil {
			c.broadcastTargets()
			return
		}
	} else {
		if err := c.SetTargets(cur.epoch+1, ha.CPU); err != nil {
			c.broadcastTargets()
			return
		}
	}
	if rc.OnRetarget != nil {
		rc.OnRetarget(cur.epoch+1, ha.CPU)
	}
}

// buildHierDecomposition partitions the deployment topology for the
// hierarchical retarget loop. The decomposition depends only on graph
// shape and placement, both fixed for a deployment's lifetime, so it is
// computed once and reused every epoch.
func buildHierDecomposition(c *Cluster, h *HierRetarget) (*hier.Decomposition, error) {
	dec, err := hier.Partition(c.cfg.Topo, hier.PartitionConfig{
		Regions:      h.Regions,
		MaxRegionPEs: h.MaxRegionPEs,
	})
	if err != nil {
		return nil, fmt.Errorf("spc: hier retarget: %w", err)
	}
	return dec, nil
}
