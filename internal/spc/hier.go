// Hierarchical dissemination: epoch-stamped targets flow DOWN a spanning
// tree of processes (root → relays → leaves) and acks flow back UP, so
// the root of a large deployment pushes each epoch to a handful of
// children instead of fanning out to every node, and still learns how
// far every descendant has applied. The tree is pure wiring on top of
// the existing target vocabulary: a relay that applies an epoch
// re-broadcasts the SAME frames to its own children, stale-epoch
// rejection dedups the inevitable re-deliveries, and v1/v2 peers that
// never advertised FeatureHier simply hang off the tree as leaves that
// get targets and send no acks.
package spc

import (
	"fmt"
	"math"
	"sync"
	"time"

	"aces/internal/hier"
	"aces/internal/optimize"
	"aces/internal/transport"
)

// hierDecomposition lets retarget.go hold the prebuilt partition without
// importing internal/hier itself.
type hierDecomposition = hier.Decomposition

// EpochAckSender is the uplink extension for upward dissemination acks,
// the tree-parent analogue of TargetSender. Senders must be best-effort
// and non-blocking: a lost ack is repaired by the ack that follows the
// next target frame.
type EpochAckSender interface {
	SendTargetAck(origin int32, epoch uint64) error
}

// hierRelay is a cluster's position in the dissemination tree.
type hierRelay struct {
	mu sync.Mutex
	// parent receives this process's acks (nil at the root).
	parent EpochAckSender
	// children receive relayed target frames (empty at a leaf).
	children []TargetSender
	// origin is the node ID this process acks as.
	origin int32
	// acked[o] is the newest epoch acked by descendant origin o.
	acked   map[int32]uint64
	enabled bool

	// Self-healing state (EnableHierRepair; all zero when disabled).
	repair bool
	// backups is the ordered standby-parent list; a parent-silence verdict
	// promotes the head and re-acks the whole subtree through it.
	backups []EpochAckSender
	// silenceAfter is the parent-death timeout in virtual seconds.
	silenceAfter float64
	// retransLag / retransEvery bound the lag-based retransmission: a
	// descendant acked more than retransLag epochs behind the applied set
	// gets the current frames again, at most once per retransEvery.
	retransLag   uint64
	retransEvery float64
	// lastReparent is when the parent slot last changed (or a silence
	// probe last re-acked); the silence clock restarts here so one dead
	// window cannot burn through the whole backup list at once.
	lastReparent float64
	// nextRetrans rate-limits the lag-based retransmission.
	nextRetrans float64
	// reparents counts promoted backup parents (tests and telemetry).
	reparents int64
}

// EnableHierRelay places this process in the dissemination tree: acks go
// to parent under the given origin node ID (parent nil at the root), and
// every applied epoch is re-broadcast to the children. Call before
// Start. Once enabled, SetTargets/SetReplicaTargets disseminate through
// the children instead of the flat uplink; received epochs are relayed
// down and acked up automatically.
func (c *Cluster) EnableHierRelay(origin int32, parent EpochAckSender, children ...TargetSender) {
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	c.hier.origin = origin
	c.hier.parent = parent
	c.hier.children = append([]TargetSender(nil), children...)
	c.hier.acked = make(map[int32]uint64)
	c.hier.enabled = true
}

func (c *Cluster) hierEnabled() bool {
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	return c.hier.enabled && len(c.hier.children) > 0
}

// HierRepair configures the dissemination tree's self-healing: backup
// parents to promote when the configured parent goes silent, and
// lag-based retransmission of the current epoch to descendants whose
// acks fall behind.
type HierRepair struct {
	// Backups is the ordered standby-parent list (may be empty: a node
	// with no alternatives still gets lag-based retransmission and the
	// periodic re-ack probe).
	Backups []EpochAckSender
	// ParentSilenceAfter is how long (virtual seconds) without a
	// controller frame before the parent is declared dead and the head
	// backup promoted. Must exceed the retarget period — fresh frames
	// arrive every Every, so anything shorter false-positives on a
	// healthy tree. Required > 0 when Backups is non-empty.
	ParentSilenceAfter float64
	// RetransmitLag is the acked-epoch gap beyond which a descendant gets
	// the current epoch retransmitted (default 1 — the "lagging more than
	// one epoch" rule).
	RetransmitLag uint64
	// RetransmitEvery rate-limits retransmission bursts, virtual seconds
	// (default 0.25).
	RetransmitEvery float64
}

// EnableHierRepair arms the tree's self-healing on this process. Call
// after EnableHierRelay (it extends the same tree position). Safe before
// Start only, like EnableHierRelay.
func (c *Cluster) EnableHierRepair(hr HierRepair) error {
	if len(hr.Backups) > 0 && hr.ParentSilenceAfter <= 0 {
		return fmt.Errorf("spc: HierRepair.ParentSilenceAfter must be positive with backups, got %g", hr.ParentSilenceAfter)
	}
	if hr.RetransmitLag == 0 {
		hr.RetransmitLag = 1
	}
	if hr.RetransmitEvery <= 0 {
		hr.RetransmitEvery = 0.25
	}
	now := c.clock.Now()
	c.lastCtrlFrame.CompareAndSwap(0, math.Float64bits(now))
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	c.hier.repair = true
	c.hier.backups = append([]EpochAckSender(nil), hr.Backups...)
	c.hier.silenceAfter = hr.ParentSilenceAfter
	c.hier.retransLag = hr.RetransmitLag
	c.hier.retransEvery = hr.RetransmitEvery
	c.hier.lastReparent = now
	return nil
}

// Reparents returns how many backup parents this process has promoted.
func (c *Cluster) Reparents() int64 {
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	return c.hier.reparents
}

// hierMaintain is the tree's periodic self-healing sweep, run from the
// snapshot node's scheduler. Two mechanisms, covering the two ways a
// subtree starves: (1) lag-based retransmission — a descendant whose ack
// trails the applied epoch by more than RetransmitLag gets the current
// frames relayed again (repairs lost frames below an ALIVE relay); and
// (2) parent-silence re-parenting — no controller frame for
// ParentSilenceAfter promotes the head backup parent and replays the
// subtree's whole ack map through it, so the new parent both learns
// where this subtree stands and (via its own lagging-ack push) re-feeds
// it the current epoch (repairs a DEAD parent, no adoption protocol
// needed). With no backups left, the replay repeats each silence window
// as a keepalive probe toward whoever still listens.
func (c *Cluster) hierMaintain(now float64) {
	h := &c.hier
	h.mu.Lock()
	if !h.repair {
		h.mu.Unlock()
		return
	}
	ts := c.targets.Load()
	needRelay := false
	if len(h.children) > 0 && now >= h.nextRetrans {
		for _, e := range h.acked {
			if ts.epoch > e && ts.epoch-e > h.retransLag {
				needRelay = true
				h.nextRetrans = now + h.retransEvery
				break
			}
		}
	}
	var reparentTo EpochAckSender
	var origin int32
	var replay map[int32]uint64
	if h.parent != nil && h.silenceAfter > 0 {
		last := math.Float64frombits(c.lastCtrlFrame.Load())
		if h.lastReparent > last {
			last = h.lastReparent
		}
		if now-last > h.silenceAfter {
			if len(h.backups) > 0 {
				h.parent = h.backups[0]
				h.backups = h.backups[1:]
				h.reparents++
				if c.reg != nil {
					c.reg.Counter("hier_reparents_total", nil).Inc()
				}
			}
			h.lastReparent = now
			reparentTo = h.parent
			origin = h.origin
			replay = make(map[int32]uint64, len(h.acked))
			for o, e := range h.acked {
				replay[o] = e
			}
		}
	}
	h.mu.Unlock()
	if needRelay {
		c.relayTargetsDown()
	}
	if reparentTo != nil {
		// Re-ack own position first, then the descendants: the new parent
		// sees this subtree's applied epoch before any (older) descendant
		// epochs, so its lagging-ack push fires at most once.
		sendAckTo(reparentTo, origin, ts.term, ts.epoch)
		for o, e := range replay {
			if o == origin {
				continue
			}
			sendAckTo(reparentTo, o, ts.term, e)
		}
	}
}

// sendTargetsTo pushes one target set to one peer at the richest
// vocabulary the peer speaks: replica form when it has the elastic
// extension, distinct (term, epoch) when it is term-aware, the collapsed
// term<<32|epoch scalar otherwise — the same per-peer degradation as the
// flat path.
func sendTargetsTo(peer TargetSender, ts *targetSet) error {
	if ts.rep != nil {
		if trs, ok := peer.(TermReplicaTargetSender); ok {
			return trs.SendTermReplicaTargets(ts.term, ts.epoch, ts.rep)
		}
		if rts, ok := peer.(ReplicaTargetSender); ok {
			return rts.SendReplicaTargets(transport.CollapseTermEpoch(ts.term, ts.epoch), ts.rep)
		}
	}
	if tts, ok := peer.(TermTargetSender); ok {
		return tts.SendTermTargets(ts.term, ts.epoch, ts.cpu)
	}
	return peer.SendTargets(transport.CollapseTermEpoch(ts.term, ts.epoch), ts.cpu)
}

// sendAckTo reports one descendant's applied (term, epoch) to a tree
// parent, collapsing for parents that predate the term feature.
func sendAckTo(parent EpochAckSender, origin int32, term, epoch uint64) {
	if ta, ok := parent.(TermAckSender); ok {
		_ = ta.SendTermTargetAck(origin, term, epoch)
		return
	}
	_ = parent.SendTargetAck(origin, transport.CollapseTermEpoch(term, epoch))
}

// relayTargetsDown pushes the applied target set to every tree child.
// Each frame increments retarget_frames_sent.
func (c *Cluster) relayTargetsDown() {
	c.hier.mu.Lock()
	children := c.hier.children
	c.hier.mu.Unlock()
	if len(children) == 0 {
		return
	}
	ts := c.targets.Load()
	for _, child := range children {
		if err := sendTargetsTo(child, ts); err != nil {
			continue // best effort; the next epoch or re-broadcast repairs it
		}
		c.framesSent.Add(1)
		if c.reg != nil {
			c.reg.Counter("retarget_frames_sent", nil).Inc()
		}
	}
}

// ackTargetsUp reports the applied (term, epoch) to the tree parent
// (no-op at the root). Sent on EVERY received target frame, stale or
// fresh, so a parent that re-broadcasts after a reconnect always
// re-learns where the subtree stands.
func (c *Cluster) ackTargetsUp() {
	c.hier.mu.Lock()
	parent := c.hier.parent
	origin := c.hier.origin
	c.hier.mu.Unlock()
	if parent == nil {
		return
	}
	ts := c.targets.Load()
	sendAckTo(parent, origin, ts.term, ts.epoch)
}

// InjectTargetAck records a descendant's applied epoch under collapsed
// term<<32|epoch semantics (legacy links and flat peers).
func (c *Cluster) InjectTargetAck(origin int32, epoch uint64) {
	term, e := transport.SplitTermEpoch(epoch)
	c.InjectTargetAckFrom(origin, term, e, nil)
}

// InjectTargetAckFrom records a descendant's applied (term, epoch) and
// forwards FRESH acks toward the root, so every ancestor sees them.
// Already-seen (origin, epoch) pairs are deduped before forwarding — a
// flapping subtree re-acking the same epoch on every re-delivered frame
// must not amplify into an ack storm up the tree. `from`, when non-nil,
// is the link the ack arrived on: with repair enabled, an origin acking
// more than RetransmitLag epochs behind the applied set gets the current
// targets pushed straight back down that link — which is what re-delivers
// epochs to an orphan that re-parented onto us, without anyone having to
// adopt it as a configured child. Called by the link layer for
// KindTargetAck frames.
func (c *Cluster) InjectTargetAckFrom(origin int32, term, epoch uint64, from TargetSender) {
	h := &c.hier
	h.mu.Lock()
	if h.acked == nil {
		h.acked = make(map[int32]uint64)
	}
	prev, seen := h.acked[origin]
	fresh := !seen || epoch > prev
	if epoch > prev {
		h.acked[origin] = epoch
	}
	parent := h.parent
	repair := h.repair
	lagBound := h.retransLag
	h.mu.Unlock()
	c.updateEpochLag()
	if repair && from != nil {
		if ts := c.targets.Load(); ts.epoch > epoch && ts.epoch-epoch > lagBound {
			if err := sendTargetsTo(from, ts); err == nil {
				c.framesSent.Add(1)
				if c.reg != nil {
					c.reg.Counter("retarget_frames_sent", nil).Inc()
				}
			}
		}
	}
	if fresh && parent != nil {
		sendAckTo(parent, origin, term, epoch)
	}
}

// EpochLag returns the applied-vs-acked epoch gap of the slowest tracked
// descendant (0 when no acks have been seen or everything is current).
func (c *Cluster) EpochLag() uint64 {
	applied := c.targets.Load().epoch
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	var lag uint64
	for _, e := range c.hier.acked {
		if e < applied && applied-e > lag {
			lag = applied - e
		}
	}
	return lag
}

// TargetFramesSent returns how many target frames this process has
// pushed to its tree children.
func (c *Cluster) TargetFramesSent() int64 { return c.framesSent.Load() }

// AckedEpochs returns a copy of the per-origin applied epochs this
// process has learned from downstream acks (empty for leaves and flat
// deployments).
func (c *Cluster) AckedEpochs() map[int32]uint64 {
	c.hier.mu.Lock()
	defer c.hier.mu.Unlock()
	out := make(map[int32]uint64, len(c.hier.acked))
	for o, e := range c.hier.acked {
		out[o] = e
	}
	return out
}

func (c *Cluster) updateEpochLag() {
	if c.gEpochLag != nil {
		c.gEpochLag.Set(float64(c.EpochLag()))
	}
}

// noteSolve publishes one tier-1 re-solve's cost to telemetry and the
// run report.
func (c *Cluster) noteSolve(ms float64, iters int) {
	c.lastSolveMs.Store(math.Float64bits(ms))
	c.lastSolveIters.Store(int64(iters))
	if c.gSolveMs != nil {
		c.gSolveMs.Set(ms)
	}
	if c.gSolveIters != nil {
		c.gSolveIters.Set(float64(iters))
	}
}

// LastSolveMillis returns the wall time of the most recent tier-1
// re-solve on this process (0 before the first).
func (c *Cluster) LastSolveMillis() float64 {
	return math.Float64frombits(c.lastSolveMs.Load())
}

// noteColdSolve records that a re-solve cold-started: the solver reported
// that its warm start was missing or mis-shaped (Allocation.ColdStart), so
// the loop paid a full ascent. Surfaced as the retarget_cold_solves_total
// counter and Report.ColdSolves — a run that keeps cold-starting after a
// topology change is burning its epoch deadline on avoidable work.
func (c *Cluster) noteColdSolve() {
	c.coldSolves.Add(1)
	if c.reg != nil {
		c.reg.Counter("retarget_cold_solves_total", nil).Inc()
	}
}

// ColdSolves returns how many adaptive-loop re-solves cold-started on
// this process.
func (c *Cluster) ColdSolves() int64 { return c.coldSolves.Load() }

// HierRetarget switches the adaptive loop's re-solve to the hierarchical
// control plane (internal/hier): the calibrated topology is decomposed
// into regions once at StartRetarget, and every epoch re-solves the
// regions independently under the root's price coordination instead of
// running one monolithic ascent.
type HierRetarget struct {
	// Regions / MaxRegionPEs parameterize the partition (at least one
	// required; see hier.PartitionConfig).
	Regions      int
	MaxRegionPEs int
	// Sweeps, Epsilon, PriceStep tune the root's dual-ascent coordination
	// (defaults as in hier.Config).
	Sweeps    int
	Epsilon   float64
	PriceStep float64
	// Deadline is the per-epoch solve budget; a blown deadline truncates
	// the sweep instead of stalling the loop.
	Deadline time.Duration
}

// hierRetargetOnce is the hierarchical body of the adaptive loop: same
// observe/apply/disseminate contract as retargetOnce, with the solve
// delegated to hier.Solve over the prebuilt decomposition.
func (c *Cluster) hierRetargetOnce(cal *optimize.Calibrator, rc RetargetConfig, dec *hier.Decomposition) {
	if c.abdicated() {
		return
	}
	for _, pr := range c.prs {
		if pr.breaker.Load() {
			continue
		}
		cpuFrac, rate := pr.calRates()
		cal.Observe(int(pr.id), cpuFrac, rate)
	}
	cur := c.targets.Load()
	oc := rc.Optimize
	oc.WarmStart = cur.cpu
	oc.WarmStartReplica = cur.rep
	hc := hier.Config{
		Optimize:  oc,
		Sweeps:    rc.Hier.Sweeps,
		Epsilon:   rc.Hier.Epsilon,
		PriceStep: rc.Hier.PriceStep,
		Deadline:  rc.Hier.Deadline,
		Elastic:   rc.Elastic,
	}
	ha, err := hier.Solve(cal.Calibrated(), dec, hc)
	if err != nil {
		// Keep the incumbent; re-disseminate so peers converge regardless.
		c.broadcastTargets()
		return
	}
	iters := 0
	for _, rs := range ha.Regions {
		iters += rs.Iterations
	}
	c.noteSolve(ha.SolveMillis, iters)
	if c.reg != nil {
		c.reg.Gauge("hier_regions", nil).Set(float64(len(ha.Regions)))
		c.reg.Gauge("hier_sweeps", nil).Set(float64(ha.Sweeps))
	}
	if rc.Elastic {
		if err := c.SetReplicaTargets(cur.epoch+1, ha.Replica); err != nil {
			c.broadcastTargets()
			return
		}
	} else {
		if err := c.SetTargets(cur.epoch+1, ha.CPU); err != nil {
			c.broadcastTargets()
			return
		}
	}
	if rc.OnRetarget != nil {
		rc.OnRetarget(cur.epoch+1, ha.CPU)
	}
}

// buildHierDecomposition partitions the deployment topology for the
// hierarchical retarget loop. The decomposition depends only on graph
// shape and placement, both fixed for a deployment's lifetime, so it is
// computed once and reused every epoch.
func buildHierDecomposition(c *Cluster, h *HierRetarget) (*hier.Decomposition, error) {
	dec, err := hier.Partition(c.cfg.Topo, hier.PartitionConfig{
		Regions:      h.Regions,
		MaxRegionPEs: h.MaxRegionPEs,
	})
	if err != nil {
		return nil, fmt.Errorf("spc: hier retarget: %w", err)
	}
	return dec, nil
}
