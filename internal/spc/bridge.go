package spc

import (
	"errors"
	"io"
	"sync"

	"aces/internal/sdo"
	"aces/internal/transport"
)

// Link is a transport.Conn-backed RemoteLink: SDOs go out as routed
// frames, advertisements as feedback frames. One Link serves one peer; a
// deployment partitioned across k processes uses a Link per neighbour and
// a Router to pick the right one per destination PE.
type Link struct {
	conn *transport.Conn
}

// NewLink wraps a framed connection as a RemoteLink.
func NewLink(conn *transport.Conn) *Link { return &Link{conn: conn} }

// SendSDO implements RemoteLink. Payloads must be nil or []byte (the wire
// constraint of the transport).
func (l *Link) SendSDO(to sdo.PEID, s sdo.SDO) error {
	if _, ok := s.Payload.([]byte); !ok && s.Payload != nil {
		// Cross-process SDOs cannot carry arbitrary in-memory payloads;
		// drop the payload rather than the SDO (control experiments use
		// empty payloads throughout).
		s.Payload = nil
	}
	return l.conn.SendRouted(to, s)
}

// SendFeedback implements RemoteLink.
func (l *Link) SendFeedback(pe int32, rmax float64) error {
	return l.conn.SendFeedback(transport.Feedback{PE: pe, RMax: rmax})
}

// Serve pumps incoming frames from the peer into the cluster until the
// connection closes or errors. Run it on its own goroutine; it returns nil
// on orderly EOF.
func (l *Link) Serve(c *Cluster) error {
	for {
		msg, err := l.conn.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch msg.Kind {
		case transport.KindRouted:
			c.InjectSDO(msg.To, msg.SDO)
		case transport.KindData:
			// Unrouted data has no destination in a partitioned
			// deployment; ignore rather than guess.
		case transport.KindFeedback:
			c.InjectFeedback(msg.Feedback.PE, msg.Feedback.RMax)
		}
	}
}

// Router fans a partitioned deployment out to several Links, choosing by
// destination PE. It implements RemoteLink itself.
type Router struct {
	mu     sync.RWMutex
	routes map[sdo.PEID]RemoteLink
	peers  []RemoteLink
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{routes: make(map[sdo.PEID]RemoteLink)}
}

// AddPeer registers a link and the set of PEs it reaches.
func (r *Router) AddPeer(link RemoteLink, pes ...sdo.PEID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peers = append(r.peers, link)
	for _, pe := range pes {
		r.routes[pe] = link
	}
}

// SendSDO implements RemoteLink.
func (r *Router) SendSDO(to sdo.PEID, s sdo.SDO) error {
	r.mu.RLock()
	link, ok := r.routes[to]
	r.mu.RUnlock()
	if !ok {
		return errors.New("spc: no route to PE")
	}
	return link.SendSDO(to, s)
}

// SendFeedback implements RemoteLink: advertisements are broadcast to all
// peers (any of them may host an upstream of the advertising PE).
func (r *Router) SendFeedback(pe int32, rmax float64) error {
	r.mu.RLock()
	peers := r.peers
	r.mu.RUnlock()
	var firstErr error
	for _, p := range peers {
		if err := p.SendFeedback(pe, rmax); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Interface compliance checks.
var (
	_ RemoteLink = (*Link)(nil)
	_ RemoteLink = (*Router)(nil)
)
