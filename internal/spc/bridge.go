package spc

import (
	"errors"
	"io"
	"sync"

	"aces/internal/metrics"
	"aces/internal/sdo"
	"aces/internal/transport"
)

// Link is a transport.Conn-backed RemoteLink: SDOs go out as routed
// frames, advertisements as feedback frames. One Link serves one peer; a
// deployment partitioned across k processes uses a Link per neighbour and
// a Router to pick the right one per destination PE.
type Link struct {
	conn *transport.Conn
}

// NewLink wraps a framed connection as a RemoteLink.
func NewLink(conn *transport.Conn) *Link { return &Link{conn: conn} }

// SendSDO implements RemoteLink. Payloads must be nil or []byte (the wire
// constraint of the transport).
func (l *Link) SendSDO(to sdo.PEID, s sdo.SDO) error {
	if _, ok := s.Payload.([]byte); !ok && s.Payload != nil {
		// Cross-process SDOs cannot carry arbitrary in-memory payloads;
		// drop the payload rather than the SDO (control experiments use
		// empty payloads throughout).
		s.Payload = nil
	}
	return l.conn.SendRouted(to, s)
}

// SendReplicaSDO implements ElasticLink: addresses one replica slot of a
// logical PE. Peers that never negotiated FeatureElastic have no replica
// vocabulary; the frame degrades to a routed frame for the logical PE and
// the receiver re-routes through its own target set.
func (l *Link) SendReplicaSDO(to sdo.PEID, rep int32, s sdo.SDO) error {
	if _, ok := s.Payload.([]byte); !ok && s.Payload != nil {
		s.Payload = nil // same wire constraint as SendSDO
	}
	if !l.conn.PeerSupportsElastic() {
		return l.conn.SendRouted(to, s)
	}
	return l.conn.SendReplica(to, rep, s)
}

// SendReplicaTargets implements ReplicaTargetSender under collapsed
// term<<32|epoch semantics (a plain epoch is term 0).
func (l *Link) SendReplicaTargets(epoch uint64, cpu [][]float64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return l.SendTermReplicaTargets(term, e, cpu)
}

// SendTermReplicaTargets implements TermReplicaTargetSender: disseminates
// a per-replica target matrix. Peers without FeatureElastic get the
// logical (collapsed) vector over the targets frame when they support it,
// and nothing otherwise — exactly one control frame per epoch either way.
// The conn collapses (term, epoch) for peers without FeatureTerm.
func (l *Link) SendTermReplicaTargets(term, epoch uint64, cpu [][]float64) error {
	if l.conn.PeerSupportsElastic() {
		return l.conn.SendReplicaTargets(transport.ReplicaTargets{Term: term, Epoch: epoch, CPU: cpu})
	}
	if l.conn.PeerSupportsRetarget() {
		return l.conn.SendTargets(transport.Targets{Term: term, Epoch: epoch, CPU: collapseTargets(cpu)})
	}
	return nil
}

// SendFeedback implements RemoteLink.
func (l *Link) SendFeedback(pe int32, rmax float64) error {
	return l.conn.SendFeedback(transport.Feedback{PE: pe, RMax: rmax})
}

// SendHeartbeat implements HeartbeatSender: a liveness beacon for node
// `node` with a per-process sequence number. Silently skipped when the
// peer has not negotiated heartbeat support.
func (l *Link) SendHeartbeat(node int32, seq uint64) error {
	if !l.conn.PeerSupportsHeartbeat() {
		return nil
	}
	return l.conn.SendHeartbeat(transport.Heartbeat{Node: node, Seq: seq})
}

// SendTargets implements TargetSender under collapsed term<<32|epoch
// semantics (a plain epoch is term 0).
func (l *Link) SendTargets(epoch uint64, cpu []float64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return l.SendTermTargets(term, e, cpu)
}

// SendTermTargets implements TermTargetSender: disseminates a
// (term, epoch)-stamped CPU target vector. Silently skipped when the peer
// has not negotiated FeatureRetarget (a v1 binary has no vocabulary for
// the frame); the periodic re-broadcast repairs the gap if the peer
// upgrades. The conn collapses the pair for peers without FeatureTerm.
func (l *Link) SendTermTargets(term, epoch uint64, cpu []float64) error {
	if !l.conn.PeerSupportsRetarget() {
		return nil
	}
	return l.conn.SendTargets(transport.Targets{Term: term, Epoch: epoch, CPU: cpu})
}

// SendTargetAck implements EpochAckSender under collapsed term<<32|epoch
// semantics.
func (l *Link) SendTargetAck(origin int32, epoch uint64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return l.SendTermTargetAck(origin, term, e)
}

// SendTermTargetAck implements TermAckSender: reports a descendant's
// applied (term, epoch) up the dissemination tree. Silently skipped when
// the peer has not negotiated FeatureHier (a flat peer has no tree
// position to account acks to).
func (l *Link) SendTermTargetAck(origin int32, term, epoch uint64) error {
	if !l.conn.PeerSupportsHier() {
		return nil
	}
	return l.conn.SendTargetAck(transport.TargetAck{Origin: origin, Term: term, Epoch: epoch})
}

// Serve pumps incoming frames from the peer into the cluster until the
// connection closes or errors. Run it on its own goroutine; it returns nil
// on orderly EOF.
func (l *Link) Serve(c *Cluster) error {
	for {
		msg, err := l.conn.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch msg.Kind {
		case transport.KindRouted:
			c.InjectSDO(msg.To, msg.SDO)
		case transport.KindData:
			// Unrouted data has no destination in a partitioned
			// deployment; ignore rather than guess.
		case transport.KindFeedback:
			c.InjectFeedback(msg.Feedback.PE, msg.Feedback.RMax)
		case transport.KindHeartbeat:
			c.InjectHeartbeat(msg.Heartbeat.Node)
		case transport.KindTargets:
			c.InjectTermTargets(msg.Targets.Term, msg.Targets.Epoch, msg.Targets.CPU)
		case transport.KindReplica:
			c.InjectReplicaSDO(msg.To, msg.Rep, msg.SDO)
		case transport.KindReplicaTargets:
			c.InjectTermReplicaTargets(msg.ReplicaTargets.Term, msg.ReplicaTargets.Epoch, msg.ReplicaTargets.CPU)
		case transport.KindTargetAck:
			// The link itself is the delivering sender: a lagging origin's
			// repair frames go straight back down this connection.
			c.InjectTargetAckFrom(msg.TargetAck.Origin, msg.TargetAck.Term, msg.TargetAck.Epoch, l)
		}
	}
}

// ResilientLink is the fault-tolerant counterpart of Link: sends enqueue
// into a transport.ResilientConn's bounded outbox and return immediately,
// so neither the PE emit path nor the Δt scheduler ever blocks on
// transport I/O. The conn reconnects on its own (jittered exponential
// backoff); frames lost to outbox overflow or write failure are counted,
// and data-frame losses are accounted as in-flight loss in the bound
// cluster's report — a dead peer degrades the partitioned deployment, it
// does not collapse it.
type ResilientLink struct {
	rc *transport.ResilientConn

	mu      sync.Mutex
	cluster *Cluster
}

// NewResilientLink builds a self-healing RemoteLink that (re)connects via
// dial. Any OnDrop already present in opts still runs, after the link's
// own loss accounting.
func NewResilientLink(dial transport.DialFunc, opts transport.ResilientOptions) *ResilientLink {
	l := &ResilientLink{}
	userDrop := opts.OnDrop
	opts.OnDrop = func(kind transport.Kind, hops int, trace uint64) {
		// Only data frames are billed as in-flight loss: feedback and
		// heartbeats are best-effort by contract (the next tick or beacon
		// repairs them), so billing their drops would overstate loss.
		if kind == transport.KindData || kind == transport.KindRouted || kind == transport.KindReplica {
			l.noteLoss(hops, trace)
		}
		if userDrop != nil {
			userDrop(kind, hops, trace)
		}
	}
	l.rc = transport.NewResilientConn(dial, opts)
	return l
}

func (l *ResilientLink) noteLoss(hops int, trace uint64) {
	l.mu.Lock()
	c := l.cluster
	l.mu.Unlock()
	if c != nil {
		c.NoteUplinkLoss(hops, trace)
	}
}

// Bind attaches the link to the cluster whose report should carry its
// loss accounting and transport counters. Serve calls it implicitly.
func (l *ResilientLink) Bind(c *Cluster) {
	l.mu.Lock()
	already := l.cluster == c
	l.cluster = c
	l.mu.Unlock()
	if !already && c != nil {
		c.AttachLink(l)
	}
}

// SendSDO implements RemoteLink. It never blocks: a full outbox drops the
// SDO and returns transport.ErrOutboxFull, which the emitter counts as
// in-flight loss.
func (l *ResilientLink) SendSDO(to sdo.PEID, s sdo.SDO) error {
	if _, ok := s.Payload.([]byte); !ok && s.Payload != nil {
		s.Payload = nil // same wire constraint as Link.SendSDO
	}
	return l.rc.SendRouted(to, s)
}

// SendFeedback implements RemoteLink. It never blocks.
func (l *ResilientLink) SendFeedback(pe int32, rmax float64) error {
	return l.rc.SendFeedback(transport.Feedback{PE: pe, RMax: rmax})
}

// SendHeartbeat implements HeartbeatSender. It never blocks; beacons are
// silently discarded while the link is down or the peer predates the
// heartbeat feature — the next beacon repairs the roster.
func (l *ResilientLink) SendHeartbeat(node int32, seq uint64) error {
	return l.rc.SendHeartbeat(transport.Heartbeat{Node: node, Seq: seq})
}

// SendTargets implements TargetSender under collapsed term<<32|epoch
// semantics (a plain epoch is term 0).
func (l *ResilientLink) SendTargets(epoch uint64, cpu []float64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return l.SendTermTargets(term, e, cpu)
}

// SendTermTargets implements TermTargetSender. It never blocks; frames
// are silently withheld while the link is down or the peer predates the
// retarget feature — the periodic re-broadcast converges the peer once it
// (re)connects with a capable hello. The conn collapses (term, epoch)
// for peers without FeatureTerm.
func (l *ResilientLink) SendTermTargets(term, epoch uint64, cpu []float64) error {
	return l.rc.SendTargets(transport.Targets{Term: term, Epoch: epoch, CPU: cpu})
}

// SendReplicaSDO implements ElasticLink. It never blocks; the underlying
// conn degrades the frame to a routed one for non-elastic peers.
func (l *ResilientLink) SendReplicaSDO(to sdo.PEID, rep int32, s sdo.SDO) error {
	if _, ok := s.Payload.([]byte); !ok && s.Payload != nil {
		s.Payload = nil // same wire constraint as Link.SendSDO
	}
	return l.rc.SendReplica(to, rep, s)
}

// SendReplicaTargets implements ReplicaTargetSender under collapsed
// term<<32|epoch semantics.
func (l *ResilientLink) SendReplicaTargets(epoch uint64, cpu [][]float64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return l.SendTermReplicaTargets(term, e, cpu)
}

// SendTermReplicaTargets implements TermReplicaTargetSender. It never
// blocks; non-elastic-but-retarget-capable peers get the collapsed
// logical vector so the two frame kinds never double-deliver one epoch.
func (l *ResilientLink) SendTermReplicaTargets(term, epoch uint64, cpu [][]float64) error {
	if l.rc.PeerSupportsElastic() {
		return l.rc.SendReplicaTargets(transport.ReplicaTargets{Term: term, Epoch: epoch, CPU: cpu})
	}
	return l.rc.SendTargets(transport.Targets{Term: term, Epoch: epoch, CPU: collapseTargets(cpu)})
}

// SendTargetAck implements EpochAckSender under collapsed term<<32|epoch
// semantics.
func (l *ResilientLink) SendTargetAck(origin int32, epoch uint64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return l.SendTermTargetAck(origin, term, e)
}

// SendTermTargetAck implements TermAckSender. It never blocks; acks are
// silently discarded while the link is down or the peer predates
// FeatureHier — the ack after the next target frame repairs the view.
func (l *ResilientLink) SendTermTargetAck(origin int32, term, epoch uint64) error {
	return l.rc.SendTargetAck(transport.TargetAck{Origin: origin, Term: term, Epoch: epoch})
}

// Serve pumps incoming frames into the cluster, riding across peer
// reconnects; it returns nil once the link is closed.
func (l *ResilientLink) Serve(c *Cluster) error {
	l.Bind(c)
	for {
		msg, err := l.rc.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch msg.Kind {
		case transport.KindRouted:
			c.InjectSDO(msg.To, msg.SDO)
		case transport.KindFeedback:
			c.InjectFeedback(msg.Feedback.PE, msg.Feedback.RMax)
		case transport.KindHeartbeat:
			c.InjectHeartbeat(msg.Heartbeat.Node)
		case transport.KindTargets:
			c.InjectTermTargets(msg.Targets.Term, msg.Targets.Epoch, msg.Targets.CPU)
		case transport.KindReplica:
			c.InjectReplicaSDO(msg.To, msg.Rep, msg.SDO)
		case transport.KindReplicaTargets:
			c.InjectTermReplicaTargets(msg.ReplicaTargets.Term, msg.ReplicaTargets.Epoch, msg.ReplicaTargets.CPU)
		case transport.KindTargetAck:
			c.InjectTargetAckFrom(msg.TargetAck.Origin, msg.TargetAck.Term, msg.TargetAck.Epoch, l)
		}
	}
}

// LinkStats implements LinkStatsSource for report integration.
func (l *ResilientLink) LinkStats() metrics.LinkStats {
	s := l.rc.Stats()
	return metrics.LinkStats{
		FramesSent:        s.FramesSent,
		FramesDropped:     s.FramesDropped,
		ControlDropped:    s.ControlDropped,
		CtlFeatureDropped: s.CtlFeatureDropped,
		Reconnects:        s.Reconnects,
		QueueLen:          s.QueueLen,
		QueueCap:          s.QueueCap,
		BatchesSent:       s.BatchesSent,
		BatchedFrames:     s.BatchedFrames,
	}
}

// Stats snapshots the underlying transport counters.
func (l *ResilientLink) Stats() transport.LinkStats { return l.rc.Stats() }

// Close tears the link down; queued frames are counted as dropped.
func (l *ResilientLink) Close() error { return l.rc.Close() }

// Router fans a partitioned deployment out to several Links, choosing by
// destination PE. It implements RemoteLink itself.
type Router struct {
	mu        sync.RWMutex
	routes    map[sdo.PEID]RemoteLink
	repRoutes map[int64]RemoteLink // (pe, rep) slots pinned to a link
	peers     []RemoteLink
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{
		routes:    make(map[sdo.PEID]RemoteLink),
		repRoutes: make(map[int64]RemoteLink),
	}
}

// AddPeer registers a link and the set of PEs it reaches.
func (r *Router) AddPeer(link RemoteLink, pes ...sdo.PEID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peers = append(r.peers, link)
	for _, pe := range pes {
		r.routes[pe] = link
	}
}

func repRouteKey(pe sdo.PEID, rep int32) int64 {
	return int64(pe)<<32 | int64(uint32(rep))
}

// AddReplica pins one replica slot of a logical PE to a link, for
// deployments whose replica placements span different peers than the
// primary. Slots without an explicit pin fall back to the PE's route.
func (r *Router) AddReplica(link RemoteLink, pe sdo.PEID, rep int32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.repRoutes[repRouteKey(pe, rep)] = link
}

// SendSDO implements RemoteLink.
func (r *Router) SendSDO(to sdo.PEID, s sdo.SDO) error {
	r.mu.RLock()
	link, ok := r.routes[to]
	r.mu.RUnlock()
	if !ok {
		return errors.New("spc: no route to PE")
	}
	return link.SendSDO(to, s)
}

// SendReplicaSDO implements ElasticLink: replica-pinned routes win, then
// the logical PE's route. Links that are not elastic-capable get the SDO
// as a plain routed frame for the logical PE.
func (r *Router) SendReplicaSDO(to sdo.PEID, rep int32, s sdo.SDO) error {
	r.mu.RLock()
	link, ok := r.repRoutes[repRouteKey(to, rep)]
	if !ok {
		link, ok = r.routes[to]
	}
	r.mu.RUnlock()
	if !ok {
		return errors.New("spc: no route to PE replica")
	}
	if el, isElastic := link.(ElasticLink); isElastic {
		return el.SendReplicaSDO(to, rep, s)
	}
	return link.SendSDO(to, s)
}

// SendReplicaTargets implements ReplicaTargetSender under collapsed
// term<<32|epoch semantics (a plain epoch is term 0).
func (r *Router) SendReplicaTargets(epoch uint64, cpu [][]float64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return r.SendTermReplicaTargets(term, e, cpu)
}

// SendTermReplicaTargets implements TermReplicaTargetSender: the matrix
// is broadcast to every peer; links without replica vocabulary get the
// collapsed logical vector when they can carry targets at all, and links
// without term vocabulary get the collapsed (term, epoch) scalar.
func (r *Router) SendTermReplicaTargets(term, epoch uint64, cpu [][]float64) error {
	r.mu.RLock()
	peers := r.peers
	r.mu.RUnlock()
	var firstErr error
	for _, p := range peers {
		var err error
		switch l := p.(type) {
		case TermReplicaTargetSender:
			err = l.SendTermReplicaTargets(term, epoch, cpu)
		case ReplicaTargetSender:
			err = l.SendReplicaTargets(transport.CollapseTermEpoch(term, epoch), cpu)
		case TermTargetSender:
			err = l.SendTermTargets(term, epoch, collapseTargets(cpu))
		case TargetSender:
			err = l.SendTargets(transport.CollapseTermEpoch(term, epoch), collapseTargets(cpu))
		default:
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SendFeedback implements RemoteLink: advertisements are broadcast to all
// peers (any of them may host an upstream of the advertising PE).
func (r *Router) SendFeedback(pe int32, rmax float64) error {
	r.mu.RLock()
	peers := r.peers
	r.mu.RUnlock()
	var firstErr error
	for _, p := range peers {
		if err := p.SendFeedback(pe, rmax); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SendHeartbeat implements HeartbeatSender: beacons are broadcast to every
// peer link that supports them (membership is judged by each receiver).
func (r *Router) SendHeartbeat(node int32, seq uint64) error {
	r.mu.RLock()
	peers := r.peers
	r.mu.RUnlock()
	var firstErr error
	for _, p := range peers {
		hs, ok := p.(HeartbeatSender)
		if !ok {
			continue
		}
		if err := hs.SendHeartbeat(node, seq); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SendTargets implements TargetSender under collapsed term<<32|epoch
// semantics (a plain epoch is term 0).
func (r *Router) SendTargets(epoch uint64, cpu []float64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return r.SendTermTargets(term, e, cpu)
}

// SendTermTargets implements TermTargetSender: target sets are broadcast
// to every peer link that supports them (receivers enforce (term, epoch)
// ordering, so a peer seeing the same set twice is harmless). Links
// without term vocabulary get the collapsed scalar.
func (r *Router) SendTermTargets(term, epoch uint64, cpu []float64) error {
	r.mu.RLock()
	peers := r.peers
	r.mu.RUnlock()
	var firstErr error
	for _, p := range peers {
		var err error
		switch l := p.(type) {
		case TermTargetSender:
			err = l.SendTermTargets(term, epoch, cpu)
		case TargetSender:
			err = l.SendTargets(transport.CollapseTermEpoch(term, epoch), cpu)
		default:
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SendTargetAck implements EpochAckSender under collapsed term<<32|epoch
// semantics.
func (r *Router) SendTargetAck(origin int32, epoch uint64) error {
	term, e := transport.SplitTermEpoch(epoch)
	return r.SendTermTargetAck(origin, term, e)
}

// SendTermTargetAck implements TermAckSender: acks are broadcast to every
// peer that can carry them. In a well-formed tree the router's peers are
// this process's parent (and children, which ignore acks addressed
// upward only in the sense that they simply record them — recording a
// descendant epoch twice is harmless).
func (r *Router) SendTermTargetAck(origin int32, term, epoch uint64) error {
	r.mu.RLock()
	peers := r.peers
	r.mu.RUnlock()
	var firstErr error
	for _, p := range peers {
		var err error
		switch l := p.(type) {
		case TermAckSender:
			err = l.SendTermTargetAck(origin, term, epoch)
		case EpochAckSender:
			err = l.SendTargetAck(origin, transport.CollapseTermEpoch(term, epoch))
		default:
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Interface compliance checks.
var (
	_ RemoteLink      = (*Link)(nil)
	_ RemoteLink      = (*Router)(nil)
	_ RemoteLink      = (*ResilientLink)(nil)
	_ LinkStatsSource = (*ResilientLink)(nil)
	_ HeartbeatSender = (*Link)(nil)
	_ HeartbeatSender = (*Router)(nil)
	_ HeartbeatSender = (*ResilientLink)(nil)
	_ TargetSender    = (*Link)(nil)
	_ TargetSender    = (*Router)(nil)
	_ TargetSender    = (*ResilientLink)(nil)

	_ ElasticLink         = (*Link)(nil)
	_ ElasticLink         = (*Router)(nil)
	_ ElasticLink         = (*ResilientLink)(nil)
	_ ReplicaTargetSender = (*Link)(nil)
	_ ReplicaTargetSender = (*Router)(nil)
	_ ReplicaTargetSender = (*ResilientLink)(nil)

	_ EpochAckSender = (*Link)(nil)
	_ EpochAckSender = (*Router)(nil)
	_ EpochAckSender = (*ResilientLink)(nil)

	_ TermTargetSender        = (*Link)(nil)
	_ TermTargetSender        = (*Router)(nil)
	_ TermTargetSender        = (*ResilientLink)(nil)
	_ TermReplicaTargetSender = (*Link)(nil)
	_ TermReplicaTargetSender = (*Router)(nil)
	_ TermReplicaTargetSender = (*ResilientLink)(nil)
	_ TermAckSender           = (*Link)(nil)
	_ TermAckSender           = (*Router)(nil)
	_ TermAckSender           = (*ResilientLink)(nil)
)
