package spc

import (
	"sync"
	"testing"
	"time"

	"aces/internal/obs"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/transport"
)

// TestCrossNodeTraceOverTCP is the tentpole acceptance test: a two-process
// partitioned deployment over a real TCP bridge must yield at least one
// complete trace whose spans come from BOTH partitions, stitched by the
// trace ID carried inside the routed wire frames.
func TestCrossNodeTraceOverTCP(t *testing.T) {
	topo := splitChain(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4}

	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	connBCh := make(chan *transport.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			connBCh <- nil
			return
		}
		connBCh <- c
	}()
	connA, err := transport.Dial(lis.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	connB := <-connBCh
	if connB == nil {
		t.Fatal("no server conn")
	}
	defer connB.Close()

	// Trace everything; distinct salts so a collision can never fake a
	// cross-node stitch. B gets a telemetry registry too, so the test also
	// proves the scheduler publishes gauges and flushes snapshot frames.
	trA := obs.NewTracer(1, 1<<14, 101)
	trB := obs.NewTracer(1, 1<<14, 202)
	sinkB := obs.NewMemorySink(0)
	regB := obs.NewRegistry(sinkB)

	linkA, linkB := NewLink(connA), NewLink(connB)
	a, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 2, Seed: 4,
		LocalNodes: []sdo.NodeID{0}, Uplink: linkA, Tracer: trA,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 2, Seed: 4,
		LocalNodes: []sdo.NodeID{1}, Uplink: linkB, Tracer: trB, Telemetry: regB,
	})
	if err != nil {
		t.Fatal(err)
	}
	var serveWG sync.WaitGroup
	serveWG.Add(2)
	go func() {
		defer serveWG.Done()
		_ = linkA.Serve(a)
	}()
	go func() {
		defer serveWG.Done()
		_ = linkB.Serve(b)
	}()

	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(450 * time.Millisecond)
	a.Stop()
	b.Stop()
	connA.Close()
	connB.Close()
	serveWG.Wait()

	merged := obs.MergeTraces(trA.Traces(0), trB.Traces(0))
	stitched := 0
	for _, tr := range merged {
		if !tr.Complete {
			continue
		}
		sawNode := map[int32]bool{}
		for _, s := range tr.Spans {
			sawNode[s.Node] = true
		}
		if sawNode[0] && sawNode[1] {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatalf("no complete cross-node trace stitched across the TCP bridge (merged %d traces, A recorded %d spans, B %d)",
			len(merged), trA.SpanCount(), trB.SpanCount())
	}

	// Telemetry: cluster B's scheduler must have published its PEs' gauges
	// and flushed at least one snapshot frame to the sink.
	frames := sinkB.Frames()
	if len(frames) == 0 {
		t.Fatalf("no telemetry snapshot frames flushed")
	}
	keys := map[string]bool{}
	for _, p := range frames[len(frames)-1].Points {
		keys[p.Key] = true
	}
	for _, want := range []string{
		"buffer_occupancy{node=1,pe=2}",
		"rmax{node=1,pe=3}",
		"tokens{node=1,pe=2}",
		"cpu_grant{node=1,pe=3}",
	} {
		if !keys[want] {
			t.Errorf("telemetry snapshot missing %q (have %d keys)", want, len(keys))
		}
	}
}

// TestTraceTerminalDropSpans checks that the three loss sites visible to a
// single process — unroutable inject, overflow inject, shed inject — all
// end a sampled trace with the right terminal event.
func TestTraceTerminalDropSpans(t *testing.T) {
	topo := splitChain(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4}
	tr := obs.NewTracer(1, 64, 7)
	a, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 0.001, Seed: 5,
		LocalNodes: []sdo.NodeID{0}, Uplink: &memLink{}, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unroutable: PE 3 is not local.
	a.InjectSDO(3, sdo.SDO{Origin: time.Now(), Hops: 1, Trace: 42})
	// Out of range entirely.
	a.InjectSDO(99, sdo.SDO{Origin: time.Now(), Hops: 2, Trace: 43})
	// Async uplink loss.
	a.NoteUplinkLoss(3, 44)

	traces := tr.Traces(0)
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	events := map[uint64]obs.Event{}
	for _, trc := range traces {
		if !trc.Complete {
			t.Errorf("trace %d not complete after terminal loss", trc.ID)
		}
		events[trc.ID] = trc.Spans[0].Event
	}
	if events[42] != obs.EventDrop || events[43] != obs.EventDrop {
		t.Errorf("unroutable injects = %v/%v, want drop/drop", events[42], events[43])
	}
	if events[44] != obs.EventUplinkDrop {
		t.Errorf("uplink loss event = %v, want uplink_drop", events[44])
	}
	// Unsampled SDOs must not generate spans.
	before := tr.SpanCount()
	a.InjectSDO(99, sdo.SDO{Origin: time.Now()})
	if tr.SpanCount() != before {
		t.Errorf("unsampled SDO recorded a span")
	}
}
