package spc

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/transport"
)

// forkTopo is a 3-PE fork: source → PE0 on node 0, which feeds a local
// egress PE1 (node 0) and a remote egress PE2 (node 1). Partitioning at
// the node boundary gives the local partition its own egress, so the test
// can observe it delivering while the uplink is down.
func forkTopo(t *testing.T) *graph.Topology {
	t.Helper()
	topo := graph.New(2, 50)
	svc := detService(0.001)
	p0 := topo.AddPE(graph.PE{Service: svc, Node: 0})
	p1 := topo.AddPE(graph.PE{Service: svc, Node: 0, Weight: 1})
	p2 := topo.AddPE(graph.PE{Service: svc, Node: 1, Weight: 1})
	if err := topo.Connect(p0, p1); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(p0, p2); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: p0, Rate: 200, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

// TestPartitionSurvivesPeerOutage runs a partitioned 2-cluster deployment
// over real TCP with fault injection on the uplink: a mid-run stall and a
// sever-with-outage/reconnect cycle. The local partition must keep
// delivering post-warmup SDOs throughout, the scheduler must keep ticking
// (virtual time advances — no transport I/O on the control loop), and the
// frames lost at the uplink must surface as in-flight loss and link
// counters in the report.
func TestPartitionSurvivesPeerOutage(t *testing.T) {
	topo := forkTopo(t)
	cpu := []float64{0.4, 0.4, 0.4}

	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	// A's dial path is fault-injected: the test can stall the live pipe,
	// sever it, and hold the "network" down so redials fail.
	var flaky atomic.Pointer[transport.FlakyConn]
	var netDown atomic.Bool
	dialA := func() (*transport.Conn, error) {
		if netDown.Load() {
			return nil, errors.New("injected outage")
		}
		raw, err := net.DialTimeout("tcp", lis.Addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := transport.WrapFlaky(raw)
		flaky.Store(f)
		return transport.NewConn(f), nil
	}
	// Batching on both ends: each side's hello negotiates FeatureBatch, so
	// the outage/stall/sever cycle below also exercises batch frames and
	// their per-member loss accounting.
	linkA := NewResilientLink(dialA, transport.ResilientOptions{
		QueueSize:    64,
		WriteTimeout: 50 * time.Millisecond,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		BatchMax:     32,
	})
	defer linkA.Close()
	linkB := NewResilientLink(func() (*transport.Conn, error) {
		return lis.Accept()
	}, transport.ResilientOptions{
		QueueSize:    64,
		WriteTimeout: 50 * time.Millisecond,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		BatchMax:     32,
	})
	defer linkB.Close()

	a, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 0.5, Seed: 1,
		LocalNodes: []sdo.NodeID{0}, Uplink: linkA,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 0.5, Seed: 1,
		LocalNodes: []sdo.NodeID{1}, Uplink: linkB,
	})
	if err != nil {
		t.Fatal(err)
	}
	var serveWG sync.WaitGroup
	serveWG.Add(2)
	go func() {
		defer serveWG.Done()
		_ = linkA.Serve(a)
	}()
	go func() {
		defer serveWG.Done()
		_ = linkB.Serve(b)
	}()

	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}

	// Phase 1 — healthy warmup: both egresses deliver.
	waitUntil(t, 10*time.Second, func() bool {
		return a.DeliveredByPE()[1] > 20 && b.DeliveredByPE()[2] > 20
	}, "healthy cross-partition delivery")

	// Phase 2 — stall: the peer stops draining the pipe. The write
	// deadline must fail the frame and the link must recover on its own.
	flaky.Load().Stall(300 * time.Millisecond)
	localBefore := a.DeliveredByPE()[1]
	virtBefore := a.Now()
	time.Sleep(200 * time.Millisecond)
	virtAfter := a.Now()
	if a.DeliveredByPE()[1] <= localBefore {
		t.Errorf("local egress froze during uplink stall: %d → %d", localBefore, a.DeliveredByPE()[1])
	}
	// 200 ms wall at 20× is 4 virtual seconds; a transport-blocked
	// scheduler would stop advancing grants and virtual time observations.
	if advance := virtAfter - virtBefore; advance < 1 {
		t.Errorf("virtual time advanced only %.2fs during stall; scheduler appears blocked", advance)
	}

	// Phase 3 — sever with the network held down: redials fail, the
	// outbox overflows, and the losses are billed to the sender.
	netDown.Store(true)
	flaky.Load().Sever()
	localBefore = a.DeliveredByPE()[1]
	time.Sleep(200 * time.Millisecond)
	if a.DeliveredByPE()[1] <= localBefore {
		t.Errorf("local egress froze during severed uplink: %d → %d", localBefore, a.DeliveredByPE()[1])
	}

	// Phase 4 — heal: the link must reconnect and remote delivery resume.
	reconBefore := linkA.Stats().Reconnects
	remoteBefore := b.DeliveredByPE()[2]
	netDown.Store(false)
	waitUntil(t, 10*time.Second, func() bool {
		return linkA.Stats().Reconnects > reconBefore && b.DeliveredByPE()[2] > remoteBefore
	}, "reconnect and post-sever remote delivery")

	endA := a.Now()
	a.Stop()
	b.Stop()
	repA := a.Report(endA)

	// The frames lost during the outage are in-flight loss at the sender
	// (outbox overflow returned ErrOutboxFull to the emitter, writer
	// failures were billed via NoteUplinkLoss).
	if repA.InFlightDrops == 0 {
		t.Errorf("severed uplink produced no in-flight loss accounting")
	}
	if len(repA.Links) != 1 {
		t.Fatalf("report carries %d link entries, want 1", len(repA.Links))
	}
	ls := repA.Links[0]
	if ls.FramesSent == 0 || ls.FramesDropped == 0 || ls.Reconnects == 0 {
		t.Errorf("link stats = %+v, want nonzero sent, dropped and reconnects", ls)
	}

	lis.Close()
	linkA.Close()
	linkB.Close()
	serveWG.Wait()
}

// TestResilientLinkNonBlockingUnderDeadPeer asserts the emit-path
// contract in isolation: with no peer at all, SendSDO and SendFeedback
// return immediately (loss, not back-pressure).
func TestResilientLinkNonBlockingUnderDeadPeer(t *testing.T) {
	link := NewResilientLink(func() (*transport.Conn, error) {
		return nil, errors.New("no peer")
	}, transport.ResilientOptions{QueueSize: 8, BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	defer link.Close()

	start := time.Now()
	for i := 0; i < 1000; i++ {
		link.SendSDO(2, sdo.SDO{Seq: uint64(i), Origin: time.Now(), Hops: 1})
		link.SendFeedback(1, 3.5)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("2000 sends on a dead link took %v; must never block", el)
	}
	if st := link.Stats(); st.FramesDropped == 0 {
		t.Errorf("dead link dropped nothing: %+v", st)
	}
}
