package spc

import (
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/policy"
	"aces/internal/sdo"
)

// soloTopo is n parallel single-PE streams on one node, each an egress
// with weight 1. The sources are near-silent (one SDO per 1000 virtual
// seconds — the validator requires every root to have one); the tests
// drive the PEs by injecting SDOs directly.
func soloTopo(t *testing.T, n int) *graph.Topology {
	t.Helper()
	topo := graph.New(1, 50)
	for i := 0; i < n; i++ {
		id := topo.AddPE(graph.PE{Service: detService(0.0001), Node: 0, Weight: 1})
		if err := topo.AddSource(graph.Source{
			Stream: sdo.StreamID(100 + i), Target: id, Rate: 0.001,
			Burst: graph.BurstSpec{Kind: graph.BurstDeterministic},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

// A panic mid-SDO kills exactly that SDO: the supervisor restarts the PE
// against the same buffer, so every other queued SDO is still delivered.
func TestSupervisorPanicDoesNotLoseBufferedSDOs(t *testing.T) {
	topo := soloTopo(t, 1)
	inj := NewPanicInjector(&Passthrough{})
	cl, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.9},
		TimeScale: 100, Warmup: 0.001, Seed: 42,
		Processors: map[sdo.PEID]Processor{0: inj},
		Supervisor: SupervisorOptions{MaxRestarts: 5, BackoffMin: time.Millisecond, BackoffMax: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	const n = 20
	inj.Arm() // the first Process call panics, killing SDO 0 mid-service
	for i := 0; i < n; i++ {
		cl.InjectSDO(0, sdo.SDO{Stream: 1, Seq: uint64(i), Origin: time.Now(), Hops: 1})
	}
	waitUntil(t, 5*time.Second, func() bool {
		return cl.DeliveredByPE()[0] >= n-1
	}, "surviving SDOs delivered after panic recovery")

	rep := cl.Report(cl.Now())
	if rep.PERestarts != 1 {
		t.Errorf("PERestarts = %d, want 1", rep.PERestarts)
	}
	if rep.InFlightDrops < 1 {
		t.Errorf("InFlightDrops = %d, want ≥ 1 (the SDO that died mid-service)", rep.InFlightDrops)
	}
	if rep.BreakersOpen != 0 {
		t.Errorf("BreakersOpen = %d, want 0", rep.BreakersOpen)
	}
	st := cl.Health()
	if len(st.PEs) != 1 || st.PEs[0].Restarts != 1 || st.PEs[0].BreakerOpen {
		t.Errorf("Health() PEs = %+v, want one entry with 1 restart, breaker closed", st.PEs)
	}
	if !st.AllAlive {
		t.Errorf("Health() AllAlive = false for an unpartitioned cluster")
	}
}

// Exhausting the restart budget trips the breaker: the PE parks, its
// r_max = 0 is advertised, and co-located PEs keep delivering — the node
// degrades, it does not collapse.
func TestSupervisorBreakerTripsAndCoLocatedPEsKeepRunning(t *testing.T) {
	topo := soloTopo(t, 2)
	inj := NewPanicInjector(&Passthrough{})
	cl, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.45, 0.45},
		TimeScale: 100, Warmup: 0.001, Seed: 7,
		Processors: map[sdo.PEID]Processor{0: inj, 1: &Passthrough{}},
		Supervisor: SupervisorOptions{MaxRestarts: 2, BackoffMin: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	// Enough armed crashes to burn the whole restart budget: incarnations
	// 1..3 each panic on their first Process call, and the third recovery
	// exceeds MaxRestarts = 2.
	for i := 0; i < 3; i++ {
		inj.Arm()
	}
	for i := 0; i < 8; i++ {
		cl.InjectSDO(0, sdo.SDO{Stream: 1, Seq: uint64(i), Origin: time.Now(), Hops: 1})
	}
	waitUntil(t, 5*time.Second, func() bool {
		st := cl.Health()
		return len(st.PEs) == 2 && st.PEs[0].BreakerOpen
	}, "breaker to trip after restart budget exhausted")

	// The healthy co-located PE must still deliver while PE 0 is parked.
	const n = 10
	for i := 0; i < n; i++ {
		cl.InjectSDO(1, sdo.SDO{Stream: 2, Seq: uint64(i), Origin: time.Now(), Hops: 1})
	}
	waitUntil(t, 5*time.Second, func() bool {
		return cl.DeliveredByPE()[1] >= n
	}, "co-located PE delivering past a tripped breaker")

	rep := cl.Report(cl.Now())
	if rep.BreakersOpen != 1 {
		t.Errorf("BreakersOpen = %d, want 1", rep.BreakersOpen)
	}
	if rep.PERestarts != 3 {
		t.Errorf("PERestarts = %d, want 3", rep.PERestarts)
	}
}

// A PanicInjector wrapping a cost-modelling processor forwards NextCost;
// wrapping a plain one charges the nominal constant.
func TestPanicInjectorCostDelegation(t *testing.T) {
	plain := NewPanicInjector(&Passthrough{})
	if got := plain.NextCost(0); got != 50e-6 {
		t.Errorf("plain NextCost = %g, want 50e-6", got)
	}
	if plain.Armed() != 0 {
		t.Errorf("fresh injector armed = %d, want 0", plain.Armed())
	}
	plain.Arm()
	plain.Arm()
	if plain.Armed() != 2 {
		t.Errorf("armed = %d, want 2", plain.Armed())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("armed injector did not panic")
			}
		}()
		_ = plain.Process(sdo.SDO{}, func(sdo.SDO) {})
	}()
	if plain.Armed() != 1 {
		t.Errorf("armed after one panic = %d, want 1", plain.Armed())
	}
}
