package spc

import (
	"sync"
	"time"

	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

// Processor is the user-facing computation of one PE: consume an input
// SDO, optionally emit derived SDOs. Implementations must be safe for use
// from the single PE goroutine that owns them (no cross-PE sharing).
type Processor interface {
	// Process handles one SDO. emit forwards a derived SDO downstream; it
	// may be called zero or more times. Returning an error stops the PE.
	Process(in sdo.SDO, emit func(sdo.SDO)) error
}

// CostModeler is an optional Processor extension that declares the virtual
// CPU cost of the next SDO (seconds of CPU at full allocation). Synthetic
// workloads implement it so the scheduler charges model costs; processors
// without it are charged measured wall time (scaled).
type CostModeler interface {
	// NextCost returns the virtual CPU cost of processing the next SDO at
	// virtual time now.
	NextCost(now float64) float64
}

// FuncProcessor adapts a function to the Processor interface.
type FuncProcessor func(in sdo.SDO, emit func(sdo.SDO)) error

// Process implements Processor.
func (f FuncProcessor) Process(in sdo.SDO, emit func(sdo.SDO)) error { return f(in, emit) }

// Synthetic is the evaluation workload PE (§VI-B): it charges the
// two-state Markov-modulated cost model and forwards M copies of each
// input (multiplicity λ_m), doing no real work. It implements CostModeler.
type Synthetic struct {
	mu  sync.Mutex
	svc *workload.Service
	out sdo.StreamID
	seq uint64
}

// NewSynthetic builds a synthetic PE workload with the given service
// parameters, output stream ID, and random stream.
func NewSynthetic(params workload.ServiceParams, out sdo.StreamID, rng *sim.Rand) *Synthetic {
	return &Synthetic{svc: workload.NewService(params, rng), out: out}
}

// NextCost implements CostModeler.
func (s *Synthetic) NextCost(now float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.svc.CostAt(now)
}

// Process implements Processor: forward M derived SDOs.
func (s *Synthetic) Process(in sdo.SDO, emit func(sdo.SDO)) error {
	s.mu.Lock()
	m := s.svc.Multiplicity()
	seq := s.seq
	s.seq += uint64(m)
	s.mu.Unlock()
	for k := 0; k < m; k++ {
		emit(in.Derive(s.out, seq+uint64(k), in.Bytes))
	}
	return nil
}

// Passthrough forwards every SDO unchanged on a new stream; useful in
// examples and tests.
type Passthrough struct {
	out sdo.StreamID
	seq uint64
}

// NewPassthrough builds a pass-through processor emitting on stream out.
func NewPassthrough(out sdo.StreamID) *Passthrough { return &Passthrough{out: out} }

// Process implements Processor.
func (p *Passthrough) Process(in sdo.SDO, emit func(sdo.SDO)) error {
	emit(in.Derive(p.out, p.seq, in.Bytes))
	p.seq++
	return nil
}

// StepCost is a deterministic passthrough processor whose per-SDO cost
// steps from base to stepped at virtual time at — the canonical workload
// drift for exercising the adaptive loop (E11). The deployed topology
// keeps advertising the pre-step cost, so only online calibration can see
// the change; a run with frozen tier-1 targets stays misallocated.
type StepCost struct {
	out               sdo.StreamID
	base, stepped, at float64
	seq               uint64
}

// NewStepCost builds a step-cost processor emitting on stream out: the
// per-SDO cost is base before virtual time at, stepped from then on.
func NewStepCost(out sdo.StreamID, base, stepped, at float64) *StepCost {
	return &StepCost{out: out, base: base, stepped: stepped, at: at}
}

// NextCost implements CostModeler. All fields it reads are immutable, so
// concurrent calls from the scheduler and the PE goroutine are safe.
func (p *StepCost) NextCost(now float64) float64 {
	if now >= p.at {
		return p.stepped
	}
	return p.base
}

// Process implements Processor: forward one derived SDO.
func (p *StepCost) Process(in sdo.SDO, emit func(sdo.SDO)) error {
	emit(in.Derive(p.out, p.seq, in.Bytes))
	p.seq++
	return nil
}

// measuredCost tracks an EWMA of observed per-SDO processing durations for
// processors without a cost model.
type measuredCost struct {
	ewma   float64
	primed bool
}

// observe folds one measured duration (virtual seconds) into the estimate.
func (m *measuredCost) observe(d float64) {
	if !m.primed {
		m.ewma = d
		m.primed = true
		return
	}
	m.ewma = 0.3*d + 0.7*m.ewma
}

// estimate returns the current cost estimate with a conservative floor.
func (m *measuredCost) estimate() float64 {
	if !m.primed || m.ewma <= 0 {
		return 50e-6 // 50 µs default until first measurement
	}
	return m.ewma
}

// nowDuration converts a wall-clock duration into virtual seconds under
// the given scale.
func nowDuration(d time.Duration, scale float64) float64 {
	return d.Seconds() * scale
}

// Interface compliance checks.
var (
	_ Processor   = FuncProcessor(nil)
	_ Processor   = (*Synthetic)(nil)
	_ CostModeler = (*Synthetic)(nil)
	_ Processor   = (*Passthrough)(nil)
	_ Processor   = (*StepCost)(nil)
	_ CostModeler = (*StepCost)(nil)
)
