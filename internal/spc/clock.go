// Package spc is the live-runtime substitute for IBM's Stream Processing
// Core [2], the real system of the paper's evaluation: PEs run as
// goroutines with bounded input buffers; every node runs a Δt scheduler
// that grants CPU budgets through token buckets and the same planners the
// simulator uses; the ACES family exchanges r_max advertisements through a
// cluster feedback board. The same policy semantics (max-flow, UDP,
// lock-step) apply, so simulator-versus-runtime calibration (§VI-C,
// Fig. 5) is meaningful.
//
// CPU consumption is virtualized: synthetic processors account their
// two-state per-SDO costs against granted budgets instead of spinning, so
// a 60-second experiment can run under a time-scaled clock in well under a
// wall-clock second while preserving scheduling dynamics. User-defined
// processors do real work and are charged their measured (scaled) wall
// time.
package spc

import (
	"time"
)

// Clock abstracts run-time pacing so experiments can run faster than real
// time deterministically enough for calibration.
type Clock interface {
	// Now returns the current virtual time in seconds since the clock
	// epoch.
	Now() float64
	// Tick returns a channel delivering ticks every d virtual seconds.
	// The returned stop function releases the ticker.
	Tick(d float64) (<-chan time.Time, func())
}

// WallClock paces virtual time 1:1 with wall time.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock with epoch = now.
func NewWallClock() *WallClock {
	return &WallClock{epoch: time.Now()}
}

// Now implements Clock.
func (c *WallClock) Now() float64 { return time.Since(c.epoch).Seconds() }

// Tick implements Clock.
func (c *WallClock) Tick(d float64) (<-chan time.Time, func()) {
	t := time.NewTicker(time.Duration(d * float64(time.Second)))
	return t.C, t.Stop
}

// ScaledClock runs virtual time Scale× faster than wall time: a Δt of
// 10 ms virtual becomes 10/Scale ms wall. Scales beyond ~50 run into OS
// timer granularity; the calibration experiments default to 20.
type ScaledClock struct {
	epoch time.Time
	scale float64
}

// NewScaledClock returns a clock running scale× real time (scale ≥ 1).
func NewScaledClock(scale float64) *ScaledClock {
	if scale < 1 {
		scale = 1
	}
	return &ScaledClock{epoch: time.Now(), scale: scale}
}

// Now implements Clock.
func (c *ScaledClock) Now() float64 { return time.Since(c.epoch).Seconds() * c.scale }

// Tick implements Clock.
func (c *ScaledClock) Tick(d float64) (<-chan time.Time, func()) {
	wall := time.Duration(d / c.scale * float64(time.Second))
	if wall < 50*time.Microsecond {
		wall = 50 * time.Microsecond // floor at practical timer resolution
	}
	t := time.NewTicker(wall)
	return t.C, t.Stop
}

// Interface compliance checks.
var (
	_ Clock = (*WallClock)(nil)
	_ Clock = (*ScaledClock)(nil)
)
