// Stale-target safety mode: a process cut off from the control plane
// (dead controller before failover completes, severed tree link) keeps
// running its last applied targets — which were calibrated for a world
// that, after long enough, no longer exists. Rather than trusting them
// indefinitely, the node schedulers degrade the EFFECTIVE targets toward
// the declared-model allocation (Config.CPU, the solve that needs no
// measurements) by a bounded step per tick. The blend is hitless both
// ways: only token-bucket rates and advertised targets move — no drain,
// no restart, no routing change — and the first fresh epoch snaps the
// blend back to zero, restoring the installed targets exactly.
package spc

import (
	"fmt"
	"math"

	"aces/internal/sdo"
)

// SafetyConfig parameterizes the stale-target safety mode.
type SafetyConfig struct {
	// After is the staleness bound in virtual seconds (required > 0): no
	// FRESH target epoch applied for this long starts the degradation.
	// Pick a multiple of the deployment's retarget period (K×Every) large
	// enough to ride out a controller failover.
	After float64
	// Step is the per-scheduler-tick blend increment in (0, 1] (default
	// 0.05): the bounded rate at which effective targets walk from the
	// installed set toward the declared allocation.
	Step float64
}

func (sc *SafetyConfig) fillDefaults() error {
	if sc.After <= 0 {
		return fmt.Errorf("spc: SafetyConfig.After must be positive, got %g", sc.After)
	}
	if sc.Step <= 0 {
		sc.Step = 0.05
	}
	if sc.Step > 1 {
		sc.Step = 1
	}
	return nil
}

// SafeModeActive reports whether any node scheduler is currently running
// a non-zero stale-target safety blend.
func (c *Cluster) SafeModeActive() bool { return c.safeOn.Load() }

// lastFreshEpoch returns the virtual time the last FRESH target epoch
// was applied (the arming time before any).
func (c *Cluster) lastFreshEpoch() float64 {
	return math.Float64frombits(c.lastFresh.Load())
}

// safetyTick advances one node's safety blend and, when it moves,
// re-tunes the node's token buckets to the blended effective targets.
// Runs at the top of schedulerTick, after any epoch application: a fresh
// epoch both resets the blend and re-tunes via applyEpoch, so the two
// never fight. Steady state (blend pinned at 0 or 1) costs one atomic
// load and two compares.
func (c *Cluster) safetyTick(peers []*peRuntime, scr *schedScratch, tgt *targetSet, now float64) {
	b := scr.safeBlend
	if now-c.lastFreshEpoch() > c.cfg.Safety.After {
		b += c.cfg.Safety.Step
		if b > 1 {
			b = 1
		}
	} else {
		b = 0
	}
	if b == scr.safeBlend {
		return
	}
	scr.safeBlend = b
	c.safeOn.Store(b > 0)
	if c.gSafeBlend != nil {
		c.gSafeBlend.Set(b)
	}
	for _, pr := range peers {
		if pr.parked {
			continue
		}
		pr.bucket.SetRate(c.effSlot(tgt, pr.id, pr.rep, b))
	}
}

// effSlot returns the slot's EFFECTIVE CPU target under safety blend b.
// The whole replica group scales toward the declared logical target
// while preserving intra-group proportions — routing rings still follow
// the installed set, so scaling slots independently (e.g. blending
// replicas toward the declared primary-only allocation) would starve
// replicas that keep receiving routed SDOs. A group the installed set
// zeroed ramps the declared share back on the primary: that is exactly
// the slot the installed singleton fallback ring routes to.
func (c *Cluster) effSlot(ts *targetSet, j sdo.PEID, rep int32, b float64) float64 {
	s := ts.slot(j, rep)
	if b <= 0 {
		return s
	}
	cur := ts.cpu[j]
	decl := c.cfg.CPU[j]
	if cur <= 0 {
		if rep == 0 {
			return (1-b)*s + b*decl
		}
		return s
	}
	return s * (((1-b)*cur + b*decl) / cur)
}
