package spc

import (
	"context"
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/policy"
	"aces/internal/sdo"
)

// A small buffer cycled far past its size must preserve FIFO order and
// exact capacity across every wraparound of the ring's position math.
// (The mutex-era version of this test checked deque compaction; the ring
// has a fixed backing array, so the bound it asserts is structural.)
func TestWraparoundPreservesFIFO(t *testing.T) {
	b := NewBuffer(4)
	const n = 100000
	for i := 0; i < n; i++ {
		if !b.TryPush(sdo.SDO{Seq: uint64(i)}) {
			t.Fatalf("push %d refused on a non-full buffer", i)
		}
		s, ok := b.TryPop()
		if !ok || s.Seq != uint64(i) {
			t.Fatalf("pop %d = (%v, %v)", i, s.Seq, ok)
		}
	}
	if got := b.Len(); got != 0 {
		t.Errorf("Len after %d cycles = %d, want 0", n, got)
	}
}

// Interleaving the two pop paths must preserve FIFO order; a non-power-
// of-two capacity keeps the logical capacity misaligned with the ring's
// backing array, exercising the exact-capacity check on every lap.
func TestPopAndTryPopInterleaved(t *testing.T) {
	b := NewBuffer(7)
	if b.Cap() != 7 {
		t.Fatalf("Cap() = %d, want the exact requested capacity 7", b.Cap())
	}
	want := uint64(0)
	for i := 0; i < 20000; i++ {
		b.TryPush(sdo.SDO{Seq: uint64(i)})
		var s sdo.SDO
		var ok bool
		if i%2 == 0 {
			s, ok = b.TryPop()
		} else {
			s, ok = b.Pop(neverDone{})
		}
		if !ok || s.Seq != want {
			t.Fatalf("at %d: got seq %d ok=%v, want %d", i, s.Seq, ok, want)
		}
		want++
	}
}

// A blocked Push must return promptly when the buffer closes, even though
// the caller's context stays live — the runtime's shutdown path closes
// buffers before (or instead of) cancelling producer contexts.
func TestBlockedPushReturnsOnClose(t *testing.T) {
	b := NewBuffer(1)
	if !b.TryPush(sdo.SDO{Seq: 1}) {
		t.Fatal("seed push refused")
	}
	done := make(chan bool, 1)
	go func() {
		// Live, cancellable context: Close alone must unblock.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done <- b.Push(ctx, sdo.SDO{Seq: 2})
	}()
	select {
	case ok := <-done:
		t.Fatalf("Push returned %v before Close on a full buffer", ok)
	case <-time.After(20 * time.Millisecond):
	}
	b.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Push into a closed buffer reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Push hung after Close with a live context")
	}
}

// A blocked Push must also return promptly on context cancellation when
// nothing ever closes the buffer or pops from it — the failure mode the
// old implementation's "every cancel path closes the buffer" comment
// papered over.
func TestBlockedPushReturnsOnCancelWithoutClose(t *testing.T) {
	b := NewBuffer(1)
	if !b.TryPush(sdo.SDO{Seq: 1}) {
		t.Fatal("seed push refused")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- b.Push(ctx, sdo.SDO{Seq: 2}) }()
	select {
	case ok := <-done:
		t.Fatalf("Push returned %v before cancel on a full buffer", ok)
	case <-time.After(20 * time.Millisecond):
	}
	cancel() // no Close, no Pop: only the waker can unblock the Push
	select {
	case ok := <-done:
		if ok {
			t.Error("cancelled Push reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Push hung after cancel; AfterFunc waker missing")
	}
	// The buffer must remain usable: space opened by a Pop admits again.
	if _, ok := b.TryPop(); !ok {
		t.Fatal("TryPop failed on a non-empty buffer")
	}
	if !b.Push(context.Background(), sdo.SDO{Seq: 3}) {
		t.Error("Push refused after an unrelated cancellation")
	}
}

// A blocked Pop must return promptly on context cancellation when
// nothing ever closes the buffer or pushes into it. This mirrors the
// blocked-Push cancel test above and is the ISSUE 10 regression test:
// PR 3 armed the AfterFunc waker only on Push's slow path, so a consumer
// whose context was cancelled while waiting on an idle buffer hung
// forever (the supervisor only escaped it because Stop also closes every
// buffer — a cancel-only shutdown wedged).
func TestBlockedPopReturnsOnCancelWithoutClose(t *testing.T) {
	b := NewBuffer(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := b.Pop(ctx)
		done <- ok
	}()
	select {
	case ok := <-done:
		t.Fatalf("Pop returned %v before cancel on an empty buffer", ok)
	case <-time.After(20 * time.Millisecond):
	}
	cancel() // no Close, no Push: only the waker can unblock the Pop
	select {
	case ok := <-done:
		if ok {
			t.Error("cancelled Pop reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Pop hung after cancel; AfterFunc waker missing")
	}
	// The buffer must remain usable after an unrelated cancellation.
	if !b.TryPush(sdo.SDO{Seq: 7}) {
		t.Fatal("TryPush failed after a cancelled Pop")
	}
	if s, ok := b.Pop(context.Background()); !ok || s.Seq != 7 {
		t.Fatalf("Pop after recovery = (%d, %v), want (7, true)", s.Seq, ok)
	}
}

// neverDone is a minimal non-cancellable context for Pop.
type neverDone struct{}

func (neverDone) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (neverDone) Done() <-chan struct{}             { return nil }
func (neverDone) Err() error                        { return nil }
func (neverDone) Value(key interface{}) interface{} { return nil }

func TestShedThresholdFloor(t *testing.T) {
	cases := []struct{ cap, want int }{
		{1, 1}, // integer math gives 0; the floor keeps an empty buffer admitting
		{2, 1},
		{3, 2},
		{10, 8},
		{50, 40},
	}
	for _, c := range cases {
		if got := shedThreshold(c.cap); got != c.want {
			t.Errorf("shedThreshold(%d) = %d, want %d", c.cap, got, c.want)
		}
	}
}

// With Cap = 1 the old inline `Cap*8/10` threshold was 0, so LoadShed
// refused every SDO including into an empty buffer. The floor admits the
// first one and sheds only once the buffer is actually occupied.
func TestLoadShedAdmitsIntoTinyBuffer(t *testing.T) {
	topo := graph.New(1, 1) // buffer capacity 1
	a := topo.AddPE(graph.PE{Service: detService(0.001), Node: 0, Weight: 1})
	b := topo.AddPE(graph.PE{Service: detService(0.001), Node: 0, Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 10, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Topo: topo, Policy: policy.LoadShed, CPU: []float64{0.4, 0.4},
		TimeScale: 20, Warmup: 0.001, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: injections exercise admission only. Let virtual time
	// pass the warmup horizon so the shed is counted.
	for c.Now() < 0.01 {
		time.Sleep(time.Millisecond)
	}
	c.InjectSDO(b, sdo.SDO{Origin: time.Now(), Hops: 1})
	c.InjectSDO(b, sdo.SDO{Origin: time.Now(), Hops: 1})
	rep := c.Report(1)
	if got := c.BufferLen(b); got != 1 {
		t.Errorf("tiny buffer admitted %d SDOs, want exactly 1", got)
	}
	if rep.InFlightDrops != 1 {
		t.Errorf("in-flight drops = %d, want 1 (second SDO shed, first admitted)", rep.InFlightDrops)
	}
}

// Close is idempotent and its post-Close contract holds: pushes are
// refused outright, pops drain what was accepted before Close and only
// then report failure.
func TestBufferCloseIdempotentAndPostCloseSemantics(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 3; i++ {
		if !b.TryPush(sdo.SDO{Seq: uint64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	b.Close()
	b.Close() // second Close must be a no-op, not a deadlock or panic
	if b.TryPush(sdo.SDO{Seq: 99}) {
		t.Errorf("TryPush succeeded after Close despite free space")
	}
	if b.Push(context.Background(), sdo.SDO{Seq: 99}) {
		t.Errorf("Push succeeded after Close despite free space")
	}
	// TryPop drains the accepted items in FIFO order...
	for i := 0; i < 3; i++ {
		s, ok := b.TryPop()
		if !ok || s.Seq != uint64(i) {
			t.Fatalf("TryPop %d after Close = (%d, %v), want (%d, true)", i, s.Seq, ok, i)
		}
	}
	// ...and fails without blocking once the buffer is empty; so does Pop.
	if _, ok := b.TryPop(); ok {
		t.Errorf("TryPop on drained closed buffer succeeded")
	}
	if _, ok := b.Pop(context.Background()); ok {
		t.Errorf("Pop on drained closed buffer succeeded")
	}
	b.Close() // closing a drained buffer is still a no-op
	if b.Len() != 0 {
		t.Errorf("Len after drain = %d, want 0", b.Len())
	}
}

// Concurrent Close calls (supervisor and Stop racing) must both return.
func TestBufferConcurrentClose(t *testing.T) {
	b := NewBuffer(2)
	b.TryPush(sdo.SDO{Seq: 1})
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			b.Close()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("Close did not return")
		}
	}
	if s, ok := b.TryPop(); !ok || s.Seq != 1 {
		t.Errorf("item accepted before Close was lost")
	}
}
