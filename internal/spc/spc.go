package spc

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aces/internal/control"
	"aces/internal/controller"
	"aces/internal/graph"
	"aces/internal/health"
	"aces/internal/metrics"
	"aces/internal/obs"
	"aces/internal/policy"
	"aces/internal/ring"
	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/stats"
	"aces/internal/workload"
)

// Config parameterizes a cluster deployment.
type Config struct {
	// Topo is the deployment (required, must validate).
	Topo *graph.Topology
	// Policy selects the flow/CPU discipline (required).
	Policy policy.Policy
	// CPU are the tier-1 targets c̄_j (required).
	CPU []float64
	// Dt is the control period in virtual seconds (default 0.010).
	Dt float64
	// TimeScale runs virtual time this many times faster than wall time
	// (default 20; 1 = real time).
	TimeScale float64
	// Warmup discards metrics before this virtual time (default 2s).
	Warmup float64
	// Seed drives synthetic workloads and sources.
	Seed int64
	// B0Frac, QWeight, RWeight and BurstTicks mirror the simulator's
	// controller parameters.
	B0Frac, QWeight, RWeight, BurstTicks float64
	// Processors overrides the default synthetic workload per PE (its
	// primary replica slot; see ReplicaProcs for the others).
	Processors map[sdo.PEID]Processor
	// ReplicaProcs builds the processor for replica slot rep (> 0) of PE j.
	// Processors are stateful, so replicas can never share the primary's
	// instance; elastic PEs with custom Processors must supply a factory.
	// When nil (or when the factory returns nil) each replica gets an
	// independently seeded synthetic workload from the PE's declared
	// service model.
	ReplicaProcs func(j sdo.PEID, rep int32) Processor
	// LocalNodes restricts this process to hosting the PEs placed on the
	// listed nodes (empty = host everything). Edges whose target lives in
	// a peer process are forwarded through Uplink; SDOs and feedback from
	// peers enter through InjectSDO / InjectFeedback. Blocking policies
	// (Lock-Step) cannot cross a partition boundary: credits would need a
	// distributed handshake, and the paper's System 3 is evaluated
	// unpartitioned.
	LocalNodes []sdo.NodeID
	// Uplink carries cross-partition SDOs and r_max advertisements.
	// Required when LocalNodes is set and edges cross the boundary.
	Uplink RemoteLink
	// Tracer enables per-SDO tracing: ingress SDOs are sampled, one span
	// is recorded per hop, and terminal events (egress, shed, drop,
	// uplink drop) end the trace. nil disables tracing entirely; the data
	// path then pays no more than a nil check per emit.
	Tracer *obs.Tracer
	// Telemetry, when set, receives live gauges and counters (buffer
	// occupancy, token level, r_max, CPU grants, sheds, uplink drops)
	// sampled on the Δt scheduler tick, with periodic snapshots flushed
	// to the registry's sink.
	Telemetry *obs.Registry
	// Supervisor tunes PE panic recovery; zero value = defaults (5
	// restarts, 10ms–1s jittered backoff).
	Supervisor SupervisorOptions
	// Health enables heartbeat membership for partitioned deployments:
	// the snapshot node's scheduler beacons local liveness over the
	// Uplink, incoming beacons feed a timeout detector, and PEs on
	// suspect or dead peer nodes are treated as r_max = 0 in the Eq. 8
	// bounds. nil disables membership (unpartitioned runs need none).
	Health *HealthConfig
	// Safety enables the stale-target safety mode: a process that has not
	// applied a FRESH target epoch within Safety.After virtual seconds
	// degrades its effective targets toward the declared-model allocation
	// (Config.CPU) by a bounded step per scheduler tick, instead of
	// running indefinitely on targets calibrated for a world that no
	// longer exists. nil disables (runs without an adaptive loop need
	// none). See SafetyConfig.
	Safety *SafetyConfig
	// SchedShards splits each node's Δt scheduler into this many shards,
	// each a goroutine owning a disjoint slice of the node's PE slots with
	// its own tick scratch and planner — the Δt loop stops serializing
	// every co-located PE on one goroutine. Each shard plans against its
	// share of the node's 1.0 CPU (proportional to its slots' installed
	// targets, recomputed at every epoch fold-in), so the shards jointly
	// enforce the same node capacity a single scheduler did. 0 (the
	// default) sizes automatically: one shard per available core, but
	// never more than one per 16 PE slots — small nodes keep the exact
	// single-scheduler behaviour. Values above the node's slot count are
	// clamped.
	SchedShards int
}

// RemoteLink transports SDOs and feedback to peer processes hosting the
// rest of a partitioned topology. Implementations must be safe for
// concurrent use; transport.Conn-backed links (see Link) qualify.
type RemoteLink interface {
	// SendSDO forwards an SDO to the process hosting PE `to`.
	SendSDO(to sdo.PEID, s sdo.SDO) error
	// SendFeedback broadcasts a local PE's r_max advertisement to peers.
	SendFeedback(pe int32, rmax float64) error
}

func (c *Config) fillDefaults() error {
	if c.Topo == nil {
		return fmt.Errorf("spc: Topo is required")
	}
	if err := c.Topo.Validate(); err != nil {
		return fmt.Errorf("spc: %w", err)
	}
	if c.Policy == 0 {
		return fmt.Errorf("spc: Policy is required")
	}
	if len(c.CPU) != c.Topo.NumPEs() {
		return fmt.Errorf("spc: CPU targets have %d entries, topology has %d PEs", len(c.CPU), c.Topo.NumPEs())
	}
	if c.Dt <= 0 {
		c.Dt = 0.010
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 20
	}
	if c.Warmup <= 0 {
		c.Warmup = 2
	}
	if c.B0Frac <= 0 || c.B0Frac >= 1 {
		c.B0Frac = 0.5
	}
	if c.QWeight <= 0 {
		c.QWeight = 1
	}
	if c.RWeight <= 0 {
		c.RWeight = 8
	}
	if c.BurstTicks < 1 {
		c.BurstTicks = 40
	}
	c.Supervisor.fillDefaults()
	if c.Health != nil {
		c.Health.fillDefaults(c.Dt)
	}
	if c.Safety != nil {
		if err := c.Safety.fillDefaults(); err != nil {
			return err
		}
	}
	return nil
}

// peRuntime is the live counterpart of the simulator's peState — one
// replica slot of a logical PE (slot 0 is the primary; non-elastic PEs
// have only that).
type peRuntime struct {
	id sdo.PEID
	// rep is the replica slot index; key the slot's feedback-board key
	// (key == int32(id) for the primary, so pre-elastic wire frames and
	// bounds keep their meaning).
	rep int32
	key int32
	// egress marks a PE with no downstream in the topology.
	egress bool
	node   sdo.NodeID
	weight float64
	buf    *Buffer
	proc   Processor
	model  CostModeler // nil → measured costs
	// downID lists the LOGICAL downstream PE ids; the applied target set's
	// routing rings and key groups resolve them to replica slots per tick
	// and per SDO.
	downID []int32

	// Telemetry handles (nil when Config.Telemetry is unset). Gauges are
	// sampled by the scheduler; the shed counter is bumped on drop paths.
	gOcc, gTokens, gRmax, gGrant *obs.Gauge
	gTarget                      *obs.Gauge
	cSheds                       *obs.Counter
	cRestarts                    *obs.Counter
	gBreaker                     *obs.Gauge

	// Supervision state: restarts counts panic recoveries, breaker is set
	// by the supervisor when the restart budget is exhausted.
	restarts atomic.Int64
	breaker  atomic.Bool

	mu     sync.Mutex
	cond   *sync.Cond
	budget float64 // virtual CPU-seconds granted and unspent
	mcost  measuredCost
	// Calibration window (guarded by mu): CPU actually spent and SDOs
	// processed since the last calSample, plus the smoothed window
	// trackers the retarget loop reads. calLast is the window-open time.
	calCPU, calN float64
	calLast      float64
	trkCPU       *stats.RateTracker
	trkRate      *stats.RateTracker

	held    atomic.Int32 // 1 while the PE goroutine holds a popped SDO
	blocked atomic.Bool  // lock-step: waiting on a full downstream buffer

	// Scheduler-owned state (only the node scheduler touches these).
	bucket *controller.TokenBucket
	fc     *control.FlowController
	// parked records that the scheduler has acted on a tripped breaker:
	// bucket rate zeroed, share released, r_max = 0 advertised.
	parked bool
	// wasActive tracks whether this replica slot had a positive target
	// under the last applied epoch (scheduler-owned; drives the drain on
	// an active → inactive transition).
	wasActive bool
}

// occupancy counts buffered plus held SDOs.
func (p *peRuntime) occupancy() int { return p.buf.Len() + int(p.held.Load()) }

// cost returns the per-SDO cost estimate at virtual time now.
func (p *peRuntime) cost(now float64) float64 {
	if p.model != nil {
		return p.model.NextCost(now)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mcost.estimate()
}

// grant deposits CPU budget and wakes the PE goroutine. Budget is capped
// so a starved PE cannot bank unbounded entitlement (the token bucket is
// the sanctioned accumulator).
func (p *peRuntime) grant(b float64) {
	const budgetCap = 0.25
	p.mu.Lock()
	p.budget += b
	if p.budget > budgetCap {
		p.budget = budgetCap
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// safeFeedback is a mutex-guarded wrapper of controller.Feedback shared by
// all node schedulers.
type safeFeedback struct {
	mu sync.RWMutex
	fb *controller.Feedback
}

func (s *safeFeedback) publish(j int32, r float64) {
	s.mu.Lock()
	s.fb.Publish(j, r)
	s.mu.Unlock()
}

func (s *safeFeedback) outputBound(down []int32) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fb.OutputBound(down)
}

func (s *safeFeedback) minBound(down []int32) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fb.MinBound(down)
}

func (s *safeFeedback) forget(j int32) {
	s.mu.Lock()
	s.fb.Forget(j)
	s.mu.Unlock()
}

func (s *safeFeedback) markDown(j int32, down bool) {
	s.mu.Lock()
	s.fb.MarkDown(j, down)
	s.mu.Unlock()
}

func (s *safeFeedback) recover(j int32) {
	s.mu.Lock()
	s.fb.Recover(j)
	s.mu.Unlock()
}

func (s *safeFeedback) groupedOutputBound(groups [][]int32, down []int32) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fb.GroupedOutputBound(groups, down)
}

func (s *safeFeedback) groupedMinBound(groups [][]int32, down []int32) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fb.GroupedMinBound(groups, down)
}

func (s *safeFeedback) groupedAllDown(groups [][]int32, down []int32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fb.GroupedAllDown(groups, down)
}

// safeCollector guards a metrics.Collector for concurrent recording.
type safeCollector struct {
	mu  sync.Mutex
	col *metrics.Collector
}

func (s *safeCollector) egress(now, w, lat float64) {
	s.mu.Lock()
	s.col.Egress(now, w, lat)
	s.mu.Unlock()
}

func (s *safeCollector) inputDrop(now float64) {
	s.mu.Lock()
	s.col.InputDrop(now)
	s.mu.Unlock()
}

func (s *safeCollector) inFlightDrop(now float64, hops int) {
	s.mu.Lock()
	s.col.InFlightDrop(now, hops)
	s.mu.Unlock()
}

func (s *safeCollector) bufferSample(now, occ float64) {
	s.mu.Lock()
	s.col.BufferSample(now, occ)
	s.mu.Unlock()
}

func (s *safeCollector) finalize(now float64) metrics.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Finalize(now)
}

// Cluster is a running deployment: node schedulers, PE goroutines and
// source generators wired per the topology.
type Cluster struct {
	cfg   Config
	clock Clock
	scale float64
	// pes[j] is PE j's primary replica slot (nil when hosted elsewhere);
	// replicas[j][r] all of its local slots; prs the flat list of every
	// local slot runtime.
	pes      []*peRuntime
	replicas [][]*peRuntime
	prs      []*peRuntime
	nodes    [][]*peRuntime
	fb       *safeFeedback
	col      *safeCollector

	// local[j] reports whether PE j is hosted by this process.
	local []bool
	// links are uplinks whose transport counters join the run report.
	links []LinkStatsSource
	// linkGauges[i] holds the telemetry handles for links[i] (empty when
	// Config.Telemetry is unset); sampled with the registry flush.
	linkGauges []linkGauges
	// delivered counts post-warmup egress SDOs per local PE.
	delivered  []atomic.Int64
	warmupVirt float64

	// Observability (all nil/zero when disabled).
	tracer *obs.Tracer
	reg    *obs.Registry

	// Failure domain (all nil/zero when Config.Health is unset or the
	// deployment is unpartitioned).
	det *health.Detector
	// hbs is the uplink's heartbeat extension (nil if unsupported).
	hbs HeartbeatSender
	// hbSeq is owned by the snapshot node's scheduler.
	hbSeq uint64
	// localNodeIDs lists the nodes this process beacons for.
	localNodeIDs []int32
	// remotePEs maps a peer node to the PE IDs it hosts, so a membership
	// verdict on the node marks all of its PEs up or down at once.
	remotePEs map[int32][]int32
	// gMember holds one member_state gauge per tracked peer node
	// (0 alive, 1 suspect, 2 dead).
	gMember map[int32]*obs.Gauge
	// snapNode is the node whose scheduler flushes registry snapshots
	// (the lowest-numbered local node with PEs), so one tick owner
	// produces the time series instead of every scheduler racing to.
	snapNode int

	// Retargeting state: targets is the applied epoch-stamped CPU target
	// set (schedulers load it once per tick), tgs the uplink's target
	// dissemination extension (nil if unsupported), retargets the count of
	// accepted epochs, gEpoch its telemetry gauge.
	targets   atomic.Pointer[targetSet]
	tgs       TargetSender
	retargets atomic.Int64
	// coldSolves counts adaptive-loop re-solves that fell back to a cold
	// start (missing or wrong-shaped warm start after a topology change) —
	// each one pays a full ascent against the epoch deadline, so silence
	// here would hide a real latency regression.
	coldSolves atomic.Int64
	gEpoch     *obs.Gauge
	// els and rts are the uplink's elastic extensions (nil if unsupported):
	// replica-addressed SDO forwarding and replica target dissemination.
	els ElasticLink
	rts ReplicaTargetSender
	// hier is the dissemination-tree state (inert for flat deployments);
	// see EnableHierRelay. framesSent counts target frames pushed to tree
	// children; lastSolveMs/lastSolveIters snapshot the most recent
	// tier-1 re-solve for the report and the solve_ms/solve_iters gauges.
	hier           hierRelay
	framesSent     atomic.Int64
	lastSolveMs    atomic.Uint64 // float64 bits
	lastSolveIters atomic.Int64
	gSolveMs       *obs.Gauge
	gSolveIters    *obs.Gauge
	gEpochLag      *obs.Gauge

	// Failover and fencing state: ctrlTerm is the controller term this
	// process stamps on epochs it originates (0 = the deployment-time
	// controller; ClaimControl raises it), fenced counts frames rejected
	// for carrying a deposed term. lastCtrlFrame and lastFresh are
	// float64-bit virtual timestamps: the last controller frame received
	// from a live (non-deposed) term — the silence clock failover watchers
	// and tree repair read — and the last FRESH epoch applied — the
	// staleness clock the safety mode reads.
	ctrlTerm      atomic.Uint64
	fenced        atomic.Int64
	lastCtrlFrame atomic.Uint64 // float64 bits
	lastFresh     atomic.Uint64 // float64 bits
	// safeOn mirrors whether any node scheduler currently runs a non-zero
	// safety blend (SafeModeActive).
	safeOn     atomic.Bool
	gTerm      *obs.Gauge
	gSafeBlend *obs.Gauge

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// rtWG joins the retarget loop separately: Stop quiesces it BEFORE
	// closing buffers, so a re-solve can never race cluster teardown.
	rtWG    sync.WaitGroup
	started bool
	mu      sync.Mutex
}

// NewCluster validates the configuration and builds a cluster; call Run
// (or Start/Stop) to execute it.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	t := cfg.Topo
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:      cfg,
		clock:    NewScaledClock(cfg.TimeScale),
		scale:    cfg.TimeScale,
		fb:       &safeFeedback{fb: controller.NewFeedback()},
		col:      &safeCollector{col: metrics.NewCollector(cfg.Warmup)},
		tracer:   cfg.Tracer,
		reg:      cfg.Telemetry,
		snapNode: -1,
		ctx:      ctx,
		cancel:   cancel,
	}
	c.nodes = make([][]*peRuntime, t.NumNodes)
	c.pes = make([]*peRuntime, t.NumPEs())
	c.local = make([]bool, t.NumPEs())
	c.delivered = make([]atomic.Int64, t.NumPEs())
	c.warmupVirt = cfg.Warmup
	localNode := make([]bool, t.NumNodes)
	if len(cfg.LocalNodes) == 0 {
		for n := range localNode {
			localNode[n] = true
		}
	} else {
		for _, n := range cfg.LocalNodes {
			if n < 0 || int(n) >= t.NumNodes {
				cancel()
				return nil, fmt.Errorf("spc: LocalNodes references unknown node %d", n)
			}
			localNode[n] = true
		}
	}
	for j := 0; j < t.NumPEs(); j++ {
		c.local[j] = localNode[t.PEs[j].Node]
	}
	// A deployment is partitioned when ANY replica slot — not just a
	// primary — is placed on a node this process does not host.
	partitioned := false
	for j := 0; j < t.NumPEs(); j++ {
		for _, n := range t.ReplicaPlacement(sdo.PEID(j)) {
			if !localNode[n] {
				partitioned = true
			}
		}
	}
	if partitioned {
		crossing := false
		for j := 0; j < t.NumPEs(); j++ {
			for _, d := range t.Down(sdo.PEID(j)) {
				if c.local[j] != c.local[d] {
					crossing = true
				}
			}
			// A replica group split across the boundary crosses by
			// construction: upstreams route to every active slot.
			for _, n := range t.ReplicaPlacement(sdo.PEID(j)) {
				if localNode[n] != c.local[j] {
					crossing = true
				}
			}
		}
		if crossing && cfg.Uplink == nil {
			cancel()
			return nil, fmt.Errorf("spc: partitioned deployment with boundary-crossing edges requires an Uplink")
		}
		if crossing && cfg.Policy.Blocking() {
			cancel()
			return nil, fmt.Errorf("spc: %v cannot cross a partition boundary (blocking needs local buffers)", cfg.Policy)
		}
	}
	c.replicas = make([][]*peRuntime, t.NumPEs())
	for j := 0; j < t.NumPEs(); j++ {
		pe := &t.PEs[j]
		place := t.ReplicaPlacement(sdo.PEID(j))
		c.replicas[j] = make([]*peRuntime, len(place))
		for r, node := range place {
			if !localNode[node] {
				continue
			}
			bufCap := t.BufferSize(sdo.PEID(j))
			// Epoch 0 is the deployment-time allocation: the whole logical
			// target runs on the primary; replica slots are built dormant
			// and wake when an elastic epoch assigns them CPU.
			target0 := 0.0
			if r == 0 {
				target0 = cfg.CPU[j]
			}
			// Primary slots have exactly one consumer — the PE goroutine's
			// Pop loop — so they run the ring's single-consumer fast path.
			// Replica slots are also drained by the scheduler on scale-in
			// (drainReplica), so they stay multi-consumer. The push side is
			// always multi-producer; see Buffer's doc comment.
			bufMode := ring.MPMC
			if r == 0 {
				bufMode = ring.SingleConsumer
			}
			pr := &peRuntime{
				id:     sdo.PEID(j),
				rep:    int32(r),
				key:    repKey(int32(j), int32(r)),
				egress: len(t.Down(sdo.PEID(j))) == 0,
				node:   node,
				weight: pe.Weight,
				buf:    newBufferMode(bufCap, bufMode),
				bucket: controller.NewTokenBucket(target0, cfg.BurstTicks),
				// Calibration windows close every 10th tick; the nominal
				// interval only matters for Tick(), which the live scheduler
				// never uses (it rates windows over measured elapsed time).
				trkCPU:  stats.NewRateTracker(10*cfg.Dt, 0.3),
				trkRate: stats.NewRateTracker(10*cfg.Dt, 0.3),
			}
			pr.cond = sync.NewCond(&pr.mu)
			if c.reg != nil {
				labels := obs.Labels{"pe": fmt.Sprint(j), "node": fmt.Sprint(node)}
				if r > 0 {
					labels["rep"] = fmt.Sprint(r)
				}
				pr.gOcc = c.reg.Gauge("buffer_occupancy", labels)
				pr.gTokens = c.reg.Gauge("tokens", labels)
				pr.gRmax = c.reg.Gauge("rmax", labels)
				pr.gGrant = c.reg.Gauge("cpu_grant", labels)
				pr.gTarget = c.reg.Gauge("target_cpu", labels)
				pr.gTarget.Set(target0)
				pr.cSheds = c.reg.Counter("sheds_total", labels)
				pr.cRestarts = c.reg.Counter("pe_restarts_total", labels)
				pr.gBreaker = c.reg.Gauge("breaker_open", labels)
			}
			switch {
			case r == 0:
				if p, ok := cfg.Processors[sdo.PEID(j)]; ok && p != nil {
					pr.proc = p
					if m, ok := p.(CostModeler); ok {
						pr.model = m
					}
				}
			case cfg.ReplicaProcs != nil:
				if p := cfg.ReplicaProcs(sdo.PEID(j), int32(r)); p != nil {
					pr.proc = p
					if m, ok := p.(CostModeler); ok {
						pr.model = m
					}
				}
			}
			if pr.proc == nil {
				// Independently seeded per slot: replicas must never share
				// a stateful workload instance.
				syn := NewSynthetic(pe.Service, sdo.StreamID(1000+j), sim.Substream(cfg.Seed, uint64(j)+1000+uint64(r)*8191))
				pr.proc = syn
				pr.model = syn
			}
			if cfg.Policy.UsesFeedback() {
				gains, err := control.Design(control.DesignConfig{
					Delay: 2, QWeight: cfg.QWeight, RWeight: cfg.RWeight, Smoothing: 1,
					B0: cfg.B0Frac * float64(bufCap),
				})
				if err != nil {
					cancel()
					return nil, fmt.Errorf("spc: PE %d gain design: %w", j, err)
				}
				fc, err := control.NewFlowController(gains, 0)
				if err != nil {
					cancel()
					return nil, fmt.Errorf("spc: PE %d controller: %w", j, err)
				}
				pr.fc = fc
			}
			c.replicas[j][r] = pr
			c.prs = append(c.prs, pr)
			c.nodes[node] = append(c.nodes[node], pr)
		}
		c.pes[j] = c.replicas[j][0]
	}
	for j := 0; j < t.NumPEs(); j++ {
		downs := t.Down(sdo.PEID(j))
		if len(downs) == 0 {
			continue
		}
		// Feedback bounds consider every downstream group; remote r_max
		// arrives via InjectFeedback under the advertising slot's key.
		ids := make([]int32, len(downs))
		for i, d := range downs {
			ids[i] = int32(d)
		}
		for _, pr := range c.replicas[j] {
			if pr != nil {
				pr.downID = ids
			}
		}
	}
	for n := range c.nodes {
		if len(c.nodes[n]) > 0 {
			c.snapNode = n
			break
		}
	}
	if cfg.Health != nil && partitioned {
		for n := 0; n < t.NumNodes; n++ {
			if localNode[n] {
				if len(c.nodes[n]) > 0 {
					c.localNodeIDs = append(c.localNodeIDs, int32(n))
				}
				continue
			}
		}
		c.remotePEs = make(map[int32][]int32)
		for j := 0; j < t.NumPEs(); j++ {
			for r, n := range t.ReplicaPlacement(sdo.PEID(j)) {
				if !localNode[n] {
					c.remotePEs[int32(n)] = append(c.remotePEs[int32(n)], repKey(int32(j), int32(r)))
				}
			}
		}
		c.gMember = make(map[int32]*obs.Gauge)
		// A membership verdict on a peer node marks every replica slot it
		// hosts up or down on the local feedback board: Eq. 8 then treats
		// those slots as r_max = 0 (suspect/dead) instead of
		// silent-unconstrained. Recovery goes the other way COMPLETELY:
		// the down-mark is cleared AND the stale pre-outage advertisement
		// erased, so the recovered slot re-enters cold-start-unconstrained
		// and upstream bounds reopen the moment the verdict flips, not
		// whenever a fresh feedback frame happens to overwrite a ghost
		// r_max pinned near 0 by the dying host's congestion.
		c.det = health.New(health.Options{
			SuspectAfter: cfg.Health.SuspectAfter,
			DeadAfter:    cfg.Health.DeadAfter,
		}, func(peer int32, _, to health.State) {
			down := to != health.Alive
			for _, key := range c.remotePEs[peer] {
				if down {
					c.fb.markDown(key, true)
				} else {
					c.fb.recover(key)
				}
			}
			if g := c.gMember[peer]; g != nil {
				g.Set(float64(to))
			}
		})
		for n := range c.remotePEs {
			c.det.Track(n, c.clock.Now())
			if c.reg != nil {
				c.gMember[n] = c.reg.Gauge("member_state", obs.Labels{"node": fmt.Sprint(n)})
			}
		}
		if hbs, ok := cfg.Uplink.(HeartbeatSender); ok {
			c.hbs = hbs
		}
	}
	// Term 0 / epoch 0 is the deployment-time allocation; schedulers apply
	// later epochs hitlessly as SetTargets/InjectTargets install them.
	c.targets.Store(c.makeTargetSet(0, 0, append([]float64(nil), cfg.CPU...), nil))
	if tgs, ok := cfg.Uplink.(TargetSender); ok {
		c.tgs = tgs
	}
	if els, ok := cfg.Uplink.(ElasticLink); ok {
		c.els = els
	}
	if rts, ok := cfg.Uplink.(ReplicaTargetSender); ok {
		c.rts = rts
	}
	if c.reg != nil {
		c.gEpoch = c.reg.Gauge("retarget_epoch", nil)
		c.gSolveMs = c.reg.Gauge("solve_ms", nil)
		c.gSolveIters = c.reg.Gauge("solve_iters", nil)
		c.gEpochLag = c.reg.Gauge("retarget_epoch_lag", nil)
		c.gTerm = c.reg.Gauge("retarget_term", nil)
		if cfg.Safety != nil {
			c.gSafeBlend = c.reg.Gauge("safe_mode_blend", nil)
		}
	}
	return c, nil
}

// Start launches all goroutines. It is an error to start twice.
func (c *Cluster) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("spc: cluster already started")
	}
	c.started = true
	// Arm the staleness and silence clocks at launch; CompareAndSwap
	// keeps a StartFailover/EnableHierRepair arming done before Start.
	now := math.Float64bits(c.clock.Now())
	c.lastFresh.CompareAndSwap(0, now)
	c.lastCtrlFrame.CompareAndSwap(0, now)
	for _, pr := range c.prs {
		pr := pr
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.runPE(pr)
		}()
	}
	for n := range c.nodes {
		if len(c.nodes[n]) == 0 {
			continue
		}
		n := n
		// Shard the node's Δt loop across cores: each shard owns a
		// disjoint contiguous slice of the node's slots with its own
		// ticker, scratch and token-bucket updates. Defaults keep small
		// nodes (and every existing test) on a single whole-node
		// scheduler.
		shards := c.schedShardsFor(len(c.nodes[n]))
		for s := 0; s < shards; s++ {
			s := s
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.runScheduler(n, s, shards)
			}()
		}
	}
	for si := range c.cfg.Topo.Sources {
		src := c.cfg.Topo.Sources[si]
		if !c.local[src.Target] {
			continue
		}
		proc, err := src.Burst.Build(src.Rate, sim.Substream(c.cfg.Seed, uint64(si)+5000))
		if err != nil {
			return fmt.Errorf("spc: source %d: %w", si, err)
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.runSource(src, proc)
		}()
	}
	return nil
}

// Stop cancels all goroutines and waits for them to exit. The retarget
// loop is quiesced FIRST (context-joined on its own wait group): a
// re-solve caught mid-flight would otherwise race buffer teardown and the
// final target swap against the dying schedulers.
func (c *Cluster) Stop() {
	c.cancel()
	c.rtWG.Wait()
	for _, pr := range c.prs {
		pr.buf.Close()
		pr.mu.Lock()
		pr.cond.Broadcast()
		pr.mu.Unlock()
	}
	c.wg.Wait()
}

// Run starts the cluster, lets it run for the given virtual duration, and
// returns the metrics report.
func (c *Cluster) Run(duration float64) (metrics.Report, error) {
	if err := c.Start(); err != nil {
		return metrics.Report{}, err
	}
	wall := time.Duration(duration / c.scale * float64(time.Second))
	timer := time.NewTimer(wall)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-c.ctx.Done():
	}
	end := c.clock.Now()
	c.Stop()
	return c.Report(end), nil
}

// traceDrop ends a sampled SDO's trace with a terminal loss span at the
// PE where it died. No-op when tracing is off or the SDO is unsampled.
func (c *Cluster) traceDrop(s sdo.SDO, pe int32, node int32, ev obs.Event) {
	if c.tracer == nil || s.Trace == 0 {
		return
	}
	c.tracer.Record(obs.Span{
		Trace: s.Trace, PE: pe, Node: node, Hops: int32(s.Hops),
		Enqueue: s.TraceEnq, Done: c.clock.Now(), Event: ev,
	})
}

// emitter builds the policy-appropriate emit callback for a PE. Each
// emitted SDO is routed per downstream LOGICAL PE through the applied
// target set's replica ring: keyed SDOs stick to one replica, unkeyed
// ones spread by (Stream, Seq), and a non-elastic downstream's singleton
// ring reproduces the pre-elastic path exactly.
func (c *Cluster) emitter(pr *peRuntime) func(sdo.SDO) {
	if pr.egress {
		return func(out sdo.SDO) {
			now := c.clock.Now()
			lat := time.Since(out.Origin).Seconds() * c.scale
			c.col.egress(now, pr.weight, lat)
			if now >= c.warmupVirt {
				c.delivered[pr.id].Add(1)
			}
		}
	}
	blocking := c.cfg.Policy.Blocking()
	shed := c.cfg.Policy == policy.LoadShed
	return func(out sdo.SDO) {
		out.Hops++
		if out.Trace != 0 {
			// Next hop's buffer-entry time; receivers across a bridge
			// re-stamp with their own clock.
			out.TraceEnq = c.clock.Now()
		}
		tgt := c.targets.Load()
		for _, d := range pr.downID {
			ref := tgt.pick(sdo.PEID(d), out)
			dst := ref.pr
			if dst == nil {
				// Cross-partition forwarding is non-blocking by
				// construction; a failed link counts as in-flight loss at
				// the sender.
				if err := c.sendReplicaSDO(ref.pe, ref.rep, out); err != nil {
					c.col.inFlightDrop(c.clock.Now(), out.Hops)
					c.traceDrop(out, d, -1, obs.EventUplinkDrop)
				}
				continue
			}
			switch {
			case blocking:
				pr.blocked.Store(true)
				ok := dst.buf.Push(c.ctx, out)
				pr.blocked.Store(false)
				if !ok {
					return
				}
			case shed && dst.buf.Len() >= shedThreshold(dst.buf.Cap()):
				// Threshold shedding: refuse before the buffer is brimful.
				c.col.inFlightDrop(c.clock.Now(), out.Hops)
				c.traceDrop(out, int32(dst.id), int32(dst.node), obs.EventShed)
				if dst.cSheds != nil {
					dst.cSheds.Inc()
				}
			default:
				if !dst.buf.TryPush(out) {
					c.col.inFlightDrop(c.clock.Now(), out.Hops)
					c.traceDrop(out, int32(dst.id), int32(dst.node), obs.EventDrop)
				}
			}
		}
	}
}

// shedThreshold is the occupancy at which the LoadShed comparator starts
// refusing SDOs: 80% of capacity with a floor of one, so tiny buffers
// (Cap ≤ 1, where integer math would make the threshold 0) still admit
// into an empty buffer instead of shedding everything.
func shedThreshold(capacity int) int {
	t := capacity * 8 / 10
	if t < 1 {
		t = 1
	}
	return t
}

// schedScratch holds one node scheduler's per-tick working set. The Δt
// loop fires tens of times a second on every node for the life of the
// cluster, so these buffers (and the planner's own scratch) are hoisted
// out of the loop: steady-state ticks must not allocate.
type schedScratch struct {
	ticks   []controller.PETick
	costs   []float64
	planner controller.Planner
	// appliedTerm/appliedEpoch identify the target set this node's token
	// buckets are currently tuned to. schedulerTick compares them against
	// the cluster's atomic target set at the top of every tick — one
	// pointer load and two integer compares on the steady-state path — and
	// folds a newer set's rates into the buckets in place, which is the
	// whole hitless-retarget mechanism: no drain, no restart, no pause.
	appliedTerm  uint64
	appliedEpoch uint64
	// safeBlend is the node's stale-target safety blend in [0, 1]: 0 runs
	// the installed targets untouched, 1 the declared-model allocation.
	// It ramps by Safety.Step per tick while the applied set is stale and
	// snaps to 0 the tick after a fresh epoch lands (hitless both ways —
	// only bucket rates move).
	safeBlend float64
	// capShare is the fraction of the node's 1.0 CPU this scheduler plans
	// against: 1 for a whole-node scheduler (the historical behaviour),
	// and the shard's proportional share of the node's installed targets
	// when the Δt loop is sharded. Recomputed at every epoch fold-in —
	// a pointer-compare miss already pays for applyEpoch, so the share
	// refresh adds nothing to the steady-state tick.
	capShare float64
	// sharded marks a scratch owned by one shard of a multi-shard node;
	// node/nodeLen feed the share computation (nodeLen is the node's total
	// slot count, the fallback ratio when the installed targets sum to 0).
	sharded bool
	node    int
	nodeLen int
}

func newSchedScratch(n int) *schedScratch {
	return &schedScratch{
		ticks:    make([]controller.PETick, n),
		costs:    make([]float64, n),
		capShare: 1,
	}
}

// newShardScratch builds the scratch for shard peers of node n, which
// plans against its proportional share of the node's CPU instead of the
// whole 1.0.
func newShardScratch(nPeers, node, nodeLen int) *schedScratch {
	scr := newSchedScratch(nPeers)
	scr.sharded = true
	scr.node = node
	scr.nodeLen = nodeLen
	return scr
}

// shardShare is the fraction of its node's CPU a shard plans against:
// the shard's installed slot-target sum over the node's. When the node's
// targets sum to zero the split falls back to slot counts, so an
// all-idle node still divides its capacity instead of planning against
// zero everywhere.
func shardShare(tgt *targetSet, peers []*peRuntime, node, nodeLen int) float64 {
	var sum float64
	for _, pr := range peers {
		sum += tgt.slot(pr.id, pr.rep)
	}
	total := tgt.nodeSum[node]
	if total <= 0 {
		return float64(len(peers)) / float64(nodeLen)
	}
	share := sum / total
	if share > 1 {
		share = 1
	}
	return share
}

// schedShardsFor picks the shard count for a node hosting nPeers slots:
// the configured SchedShards, or — when auto — one per available core
// with at least 16 slots per shard, so small nodes keep the exact
// single-goroutine scheduler they always had.
func (c *Cluster) schedShardsFor(nPeers int) int {
	s := c.cfg.SchedShards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
		if perCore := (nPeers + 15) / 16; s > perCore {
			s = perCore
		}
	}
	if s > nPeers {
		s = nPeers
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardRange returns the [lo, hi) slice of n items owned by shard s of
// `shards`: contiguous, disjoint, and within one item of even.
func shardRange(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// runScheduler is one shard of one node's Δt control loop: it owns a
// disjoint slice of the node's PE slots, its own ticker and its own
// planning scratch. Shard 0 additionally owns the node's (and, on the
// snapshot node, the process's) periodic duties — health beacons,
// detector sweeps, tree self-healing, link sampling, registry flushes —
// so sharding multiplies planning throughput without duplicating any
// once-per-node work. Single-shard nodes reproduce the historical
// whole-node scheduler exactly (capShare pinned to 1).
func (c *Cluster) runScheduler(n, shard, shards int) {
	nodePeers := c.nodes[n]
	lo, hi := shardRange(len(nodePeers), shards, shard)
	peers := nodePeers[lo:hi]
	if len(peers) == 0 {
		return
	}
	tick, stopTick := c.clock.Tick(c.cfg.Dt)
	defer stopTick()
	var scr *schedScratch
	if shards > 1 {
		scr = newShardScratch(len(peers), n, len(nodePeers))
	} else {
		scr = newSchedScratch(len(peers))
	}
	sample := 0
	last := c.clock.Now()
	for _, pr := range peers {
		pr.mu.Lock()
		pr.calLast = last
		pr.mu.Unlock()
	}
	// The snapshot node's first shard owns the failure domain's periodic
	// work: sending liveness beacons and sweeping the detector.
	healthOwner := n == c.snapNode && shard == 0 && c.det != nil
	lastBeat := math.Inf(-1)
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-tick:
		}
		now := c.clock.Now()
		if healthOwner {
			if now-lastBeat >= c.cfg.Health.Every {
				lastBeat = now
				c.sendHeartbeats()
			}
			c.det.Check(now)
		}
		// Use measured elapsed virtual time as the effective period: OS
		// timers are late and coalesce under load, and a fixed Δt would
		// silently discard the entitlement of every missed tick. Clamp so
		// a single wild measurement cannot destabilize the controller.
		dt := now - last
		last = now
		if dt < 0.25*c.cfg.Dt {
			dt = 0.25 * c.cfg.Dt
		}
		if dt > 10*c.cfg.Dt {
			dt = 10 * c.cfg.Dt
		}
		c.schedulerTick(peers, scr, now, dt)
		sample++
		if sample%10 == 0 {
			for _, pr := range peers {
				c.col.bufferSample(now, float64(pr.occupancy()))
				// Close the PE's calibration window over measured elapsed
				// virtual time — rate-model samples for the adaptive loop.
				pr.calSample(now)
			}
			if n == c.snapNode && shard == 0 {
				// Tree self-healing sweeps ride the sampling cadence (every
				// 10th tick): silence timeouts and retransmission windows
				// are orders of magnitude longer than 10 Δt.
				c.hierMaintain(now)
				c.sampleLinks()
				// One shard owns the registry flush so the time series is a
				// clean sequence of frames, not interleaved per-node
				// partials.
				if c.reg != nil {
					c.reg.Flush(now)
				}
			}
		}
	}
}

// schedulerTick runs one planning period for a node's PEs: sample state,
// plan the allocation, grant CPU, and publish flow-control feedback. It
// is factored out of runScheduler so tests can drive it directly and
// assert it allocates nothing in steady state.
func (c *Cluster) schedulerTick(peers []*peRuntime, scr *schedScratch, now, dt float64) {
	pol := c.cfg.Policy
	elapsedTicks := dt / c.cfg.Dt
	// One atomic load per tick decides which tier-1 targets govern it; an
	// epoch change re-tunes the token buckets before any planning happens,
	// so a tick never mixes old rates with new targets.
	tgt := c.targets.Load()
	if tgt.epoch != scr.appliedEpoch || tgt.term != scr.appliedTerm {
		c.applyEpoch(peers, tgt)
		scr.appliedTerm = tgt.term
		scr.appliedEpoch = tgt.epoch
		// A shard plans against its proportional share of the node's CPU,
		// fixed per epoch so concurrent shards never chase each other's
		// allocations. A single-shard node keeps capShare = 1 — the exact
		// historical whole-node planning capacity.
		if scr.sharded {
			scr.capShare = shardShare(tgt, peers, scr.node, scr.nodeLen)
		}
	}
	if c.cfg.Safety != nil {
		c.safetyTick(peers, scr, tgt, now)
	}
	ticks := scr.ticks[:len(peers)]
	costs := scr.costs[:len(peers)]
	for i, pr := range peers {
		if pr.breaker.Load() {
			if !pr.parked {
				c.parkPE(pr, pol)
			}
			// A parked PE contributes no work and asks for no share; the
			// planner redistributes its target to co-located PEs exactly
			// as it does for a lock-step-blocked one.
			ticks[i] = controller.PETick{Target: tgt.slot(pr.id, pr.rep), Blocked: true}
			costs[i] = 0
			continue
		}
		if pr.rep != 0 && tgt.slot(pr.id, pr.rep) == 0 {
			// Dormant replica slot: no target, no work routed to it, no
			// share to ask for. It earns and publishes nothing until an
			// epoch activates it.
			ticks[i] = controller.PETick{Blocked: true}
			costs[i] = 0
			continue
		}
		cost := pr.cost(now)
		costs[i] = cost
		occ := float64(pr.occupancy())
		if pr.gOcc != nil {
			pr.gOcc.Set(occ)
			pr.gTokens.Set(pr.bucket.Level())
		}
		work := occ * cost / dt
		capFrac := math.Inf(1)
		mult := 1.0
		if syn, ok := pr.proc.(*Synthetic); ok {
			mult = syn.svc.Params().MeanMult
		}
		// Advertised r_max is in SDOs per nominal Δt; scale it to this
		// planning period before converting to a CPU fraction. Bounds are
		// grouped: a replicated downstream's capacity is the SUM of its
		// active slots' advertisements (singleton groups reproduce the
		// ungrouped bounds exactly).
		switch pol {
		case policy.ACES, policy.ACESStrictCPU:
			capFrac = controller.RateToCPU(c.fb.groupedOutputBound(tgt.groupKeys, pr.downID)*elapsedTicks, cost, mult, dt)
		case policy.ACESMinFlow:
			capFrac = controller.RateToCPU(c.fb.groupedMinBound(tgt.groupKeys, pr.downID)*elapsedTicks, cost, mult, dt)
		}
		ticks[i] = controller.PETick{
			Target: c.effSlot(tgt, pr.id, pr.rep, scr.safeBlend),
			// Bucket levels are in Δt-fractions; express them as a
			// fraction of this planning period.
			Tokens:    pr.bucket.Level() / elapsedTicks,
			Occupancy: occ,
			Work:      work,
			Cap:       capFrac,
			Blocked:   pr.blocked.Load(),
		}
	}
	var alloc []float64
	switch pol {
	case policy.ACES, policy.ACESMinFlow:
		alloc = scr.planner.PlanACES(ticks, scr.capShare)
	case policy.ACESStrictCPU:
		for i := range ticks {
			if ticks[i].Cap < ticks[i].Work {
				ticks[i].Work = ticks[i].Cap
			}
		}
		alloc = scr.planner.PlanStrict(ticks, scr.capShare)
	case policy.UDP, policy.LoadShed:
		// System 2 (and the load-shedding comparator): traditional
		// strict/velocity enforcement — unused slices are lost, no
		// banking (mirrors the simulator).
		alloc = scr.planner.PlanStrict(ticks, scr.capShare)
	default:
		// System 3: targets enforced per tick; only sleeping (blocked)
		// PEs' slices are redistributed.
		alloc = scr.planner.PlanLockStep(ticks, scr.capShare)
	}
	for i, pr := range peers {
		if pr.parked {
			// The breaker already advertised r_max = 0; nothing to earn,
			// grant or publish for a parked PE.
			continue
		}
		if pr.rep != 0 && tgt.slot(pr.id, pr.rep) == 0 {
			// Dormant replica: its key is in no group (installTargets
			// forgot it on deactivation), so there is nothing to publish.
			continue
		}
		pr.bucket.RefillFor(elapsedTicks)
		pr.bucket.Spend(alloc[i] * elapsedTicks)
		if pr.gGrant != nil {
			pr.gGrant.Set(alloc[i])
		}
		if alloc[i] > 0 {
			pr.grant(alloc[i] * dt)
		}
		if pol.UsesFeedback() {
			var rmax float64
			if len(pr.downID) > 0 && c.fb.groupedAllDown(tgt.groupKeys, pr.downID) {
				// Every downstream is a failure artifact (suspect or dead
				// peers, tripped breakers). Updating the LQR against the
				// r_max = 0 picture would integrate a phantom buffer error
				// each tick and the controller would wake from the fault
				// far from its operating point — so freeze it and replay
				// the last healthy advertisement until someone recovers.
				rmax = pr.fc.Hold()
			} else {
				// Flow-controller rates stay in SDOs per nominal Δt — the
				// LQR gains were designed for that sampling period. Banked
				// token surplus folds into ρ over a short horizon, exactly
				// as in the simulator, so throttled PEs advertise the burst
				// capacity they actually hold.
				cpuRate := c.effSlot(tgt, pr.id, pr.rep, scr.safeBlend)
				if surplus := pr.bucket.Level() - cpuRate; surplus > 0 {
					cpuRate += surplus / 5
				}
				rho := cpuRate * c.cfg.Dt / costs[i]
				vac := float64(pr.buf.Cap() - pr.occupancy())
				if vac < 0 {
					vac = 0
				}
				pr.fc.SetMaxRate(vac + rho)
				rmax = pr.fc.Update(rho, float64(pr.occupancy()))
			}
			if pr.gRmax != nil {
				pr.gRmax.Set(rmax)
			}
			// Advertisements go out under the slot's key: the primary's
			// key is the PE id (pre-elastic wire compatibility), replicas
			// publish under their composite keys and the grouped bounds
			// sum them.
			c.fb.publish(pr.key, rmax)
			if c.cfg.Uplink != nil {
				// Best effort: a lost advertisement is repaired next
				// tick; peers treat silence as unconstrained only
				// before the first one arrives.
				_ = c.cfg.Uplink.SendFeedback(pr.key, rmax)
			}
		}
	}
}

// runSource injects SDOs at the arrival process's virtual schedule,
// routing each one through the target PE's replica ring (singleton for
// non-elastic targets — the pre-elastic path exactly).
func (c *Cluster) runSource(src graph.Source, proc workload.ArrivalProcess) {
	var seq uint64
	nextV := c.clock.Now()
	for {
		nextV += proc.NextInterval()
		wall := time.Duration((nextV - c.clock.Now()) / c.scale * float64(time.Second))
		if wall > 0 {
			timer := time.NewTimer(wall)
			select {
			case <-c.ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
		} else if c.ctx.Err() != nil {
			return
		}
		s := sdo.SDO{
			Stream: src.Stream,
			Seq:    seq,
			Origin: time.Now(),
			Bytes:  1,
		}
		seq++
		if tr := c.tracer; tr != nil {
			if id := tr.SampleIngress(); id != 0 {
				s.Trace = id
				s.TraceEnq = c.clock.Now()
			}
		}
		ref := c.targets.Load().pick(src.Target, s)
		target := ref.pr
		if target == nil {
			// The ring elected a replica hosted by a peer process.
			if err := c.sendReplicaSDO(ref.pe, ref.rep, s); err != nil {
				c.col.inputDrop(c.clock.Now())
				c.traceDrop(s, int32(src.Target), -1, obs.EventUplinkDrop)
			}
			continue
		}
		if c.cfg.Policy == policy.LoadShed && target.buf.Len() >= shedThreshold(target.buf.Cap()) {
			c.col.inputDrop(c.clock.Now())
			c.traceDrop(s, int32(target.id), int32(target.node), obs.EventShed)
			if target.cSheds != nil {
				target.cSheds.Inc()
			}
		} else if !target.buf.TryPush(s) {
			c.col.inputDrop(c.clock.Now())
			c.traceDrop(s, int32(target.id), int32(target.node), obs.EventDrop)
		}
	}
}

// BufferLen reports PE j's current buffer occupancy (tests and demos);
// zero for PEs hosted elsewhere.
func (c *Cluster) BufferLen(j sdo.PEID) int {
	if pr := c.pes[j]; pr != nil {
		return pr.buf.Len()
	}
	return 0
}

// Local reports whether PE j is hosted by this process.
func (c *Cluster) Local(j sdo.PEID) bool {
	return int(j) >= 0 && int(j) < len(c.local) && c.local[j]
}

// InjectSDO delivers an SDO arriving from a peer process to local PE `to`,
// applying the same admission semantics a local sender would (drop on
// overflow, threshold shedding under LoadShed). Unknown or non-local
// targets are counted as in-flight loss: the peer routed it here, so the
// data existed and died.
func (c *Cluster) InjectSDO(to sdo.PEID, s sdo.SDO) {
	if s.Trace != 0 {
		// Buffer-entry times are per-process: the sender's virtual clock
		// is not ours, so the hop's enqueue stamp restarts here.
		s.TraceEnq = c.clock.Now()
	}
	if int(to) < 0 || int(to) >= len(c.pes) {
		c.col.inFlightDrop(c.clock.Now(), s.Hops)
		c.traceDrop(s, int32(to), -1, obs.EventDrop)
		return
	}
	// Logical delivery picks among the LOCAL replica slots of the target
	// (the sender either predates replica addressing or deferred the
	// choice); nil means no slot of this PE lives here.
	dst := c.targets.Load().pickLocal(to, s)
	if dst == nil {
		c.col.inFlightDrop(c.clock.Now(), s.Hops)
		c.traceDrop(s, int32(to), -1, obs.EventDrop)
		return
	}
	c.admit(dst, s)
}

// admit applies local admission semantics (threshold shedding under
// LoadShed, drop on overflow) for an SDO arriving from a peer process or
// a replica drain.
func (c *Cluster) admit(dst *peRuntime, s sdo.SDO) {
	if c.cfg.Policy == policy.LoadShed && dst.buf.Len() >= shedThreshold(dst.buf.Cap()) {
		c.col.inFlightDrop(c.clock.Now(), s.Hops)
		c.traceDrop(s, int32(dst.id), int32(dst.node), obs.EventShed)
		if dst.cSheds != nil {
			dst.cSheds.Inc()
		}
		return
	}
	if !dst.buf.TryPush(s) {
		c.col.inFlightDrop(c.clock.Now(), s.Hops)
		c.traceDrop(s, int32(dst.id), int32(dst.node), obs.EventDrop)
	}
}

// InjectFeedback records a peer PE's r_max advertisement on the local
// board, where Eq. 8 bounds for local senders will see it.
func (c *Cluster) InjectFeedback(pe int32, rmax float64) {
	c.fb.publish(pe, rmax)
}

// NoteUplinkLoss accounts an SDO dropped asynchronously by an uplink
// (outbox writer failure after the emitter already handed it off) as
// in-flight loss, mirroring what the emitter records for synchronous
// send errors. A sampled SDO's trace ends here with an uplink-drop span
// (PE/Node -1: the loss happened between processes, not inside a PE).
func (c *Cluster) NoteUplinkLoss(hops int, trace uint64) {
	c.col.inFlightDrop(c.clock.Now(), hops)
	if c.tracer != nil && trace != 0 {
		c.tracer.Record(obs.Span{
			Trace: trace, PE: -1, Node: -1, Hops: int32(hops),
			Done: c.clock.Now(), Event: obs.EventUplinkDrop,
		})
	}
}

// LinkStatsSource exposes uplink transport counters for inclusion in the
// cluster's run report.
type LinkStatsSource interface {
	LinkStats() metrics.LinkStats
}

// linkGauges are one uplink's telemetry handles: wire-level counters plus
// the batching health pair — batch_frames (KindBatch frames sent) and
// sdos_per_batch (mean member fill), the two signals that tell an operator
// whether the batched data plane is actually coalescing.
type linkGauges struct {
	sent, dropped, reconnects *obs.Gauge
	queueLen                  *obs.Gauge
	batchFrames, perBatch     *obs.Gauge
	ctlDropped                *obs.Gauge
	ctlFeatDropped            *obs.Gauge
}

// AttachLink registers an uplink whose counters should appear in this
// cluster's reports (ResilientLink.Serve attaches itself). With Telemetry
// configured, each link also gets live gauges keyed by attach order.
func (c *Cluster) AttachLink(s LinkStatsSource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.links {
		if have == s {
			return
		}
	}
	c.links = append(c.links, s)
	if c.reg != nil {
		labels := obs.Labels{"link": fmt.Sprintf("%d", len(c.links)-1)}
		c.linkGauges = append(c.linkGauges, linkGauges{
			sent:           c.reg.Gauge("link_frames_sent", labels),
			dropped:        c.reg.Gauge("link_frames_dropped", labels),
			reconnects:     c.reg.Gauge("link_reconnects", labels),
			queueLen:       c.reg.Gauge("link_queue_len", labels),
			batchFrames:    c.reg.Gauge("batch_frames", labels),
			perBatch:       c.reg.Gauge("sdos_per_batch", labels),
			ctlDropped:     c.reg.Gauge("control_frames_dropped_total", labels),
			ctlFeatDropped: c.reg.Gauge("ctl_feature_dropped_total", labels),
		})
	}
}

// sampleLinks refreshes the per-link gauges from live transport counters;
// the snapshot-owning scheduler calls it just before the registry flush.
func (c *Cluster) sampleLinks() {
	c.mu.Lock()
	links := c.links
	gauges := c.linkGauges
	c.mu.Unlock()
	for i := range gauges {
		s := links[i].LinkStats()
		g := gauges[i]
		g.sent.Set(float64(s.FramesSent))
		g.dropped.Set(float64(s.FramesDropped))
		g.reconnects.Set(float64(s.Reconnects))
		g.queueLen.Set(float64(s.QueueLen))
		g.batchFrames.Set(float64(s.BatchesSent))
		g.ctlDropped.Set(float64(s.ControlDropped))
		g.ctlFeatDropped.Set(float64(s.CtlFeatureDropped))
		fill := 0.0
		if s.BatchesSent > 0 {
			fill = float64(s.BatchedFrames) / float64(s.BatchesSent)
		}
		g.perBatch.Set(fill)
	}
}

// Now returns the cluster's current virtual time.
func (c *Cluster) Now() float64 { return c.clock.Now() }

// Report freezes the metrics collected so far (end-of-run time `now` in
// virtual seconds). Run calls it implicitly; partitioned deployments using
// Start/Stop call it per process.
func (c *Cluster) Report(now float64) metrics.Report {
	rep := c.col.finalize(now)
	c.mu.Lock()
	links := append([]LinkStatsSource(nil), c.links...)
	c.mu.Unlock()
	for _, l := range links {
		rep.Links = append(rep.Links, l.LinkStats())
	}
	if c.det != nil {
		for _, m := range c.det.Snapshot() {
			silence := now - m.LastBeat
			if silence < 0 {
				silence = 0
			}
			rep.Members = append(rep.Members, metrics.MemberStatus{
				Node: m.Peer, State: m.StateName, SilenceS: silence,
			})
		}
	}
	for _, pr := range c.prs {
		rep.PERestarts += pr.restarts.Load()
		if pr.breaker.Load() {
			rep.BreakersOpen++
		}
	}
	ts := c.targets.Load()
	rep.TargetEpoch = ts.epoch
	rep.TargetTerm = ts.term
	rep.FencedFrames = c.fenced.Load()
	rep.Retargets = c.retargets.Load()
	rep.SolveMillis = c.LastSolveMillis()
	rep.ColdSolves = c.coldSolves.Load()
	rep.TargetFramesSent = c.framesSent.Load()
	rep.TargetEpochLag = c.EpochLag()
	for j := range c.replicas {
		if n := c.ActiveReplicas(sdo.PEID(j)); n > rep.ActiveReplicas {
			rep.ActiveReplicas = n
		}
	}
	return rep
}

// DeliveredByPE returns post-warmup egress SDO counts per PE (zero for
// non-egress and non-local PEs) — parity with the simulator's method.
func (c *Cluster) DeliveredByPE() []int64 {
	out := make([]int64, len(c.delivered))
	for i := range c.delivered {
		out[i] = c.delivered[i].Load()
	}
	return out
}
