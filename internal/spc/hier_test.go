package spc

import (
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/transport"
)

// chain3 builds a 6-stage chain spanning three nodes (two stages each):
// the smallest topology whose dissemination tree has a root, a relay and
// a leaf.
func chain3(t *testing.T) *graph.Topology {
	t.Helper()
	topo := graph.New(3, 50)
	svc := detService(0.002)
	prev := sdo.NilPE
	for i := 0; i < 6; i++ {
		w := 0.0
		if i == 5 {
			w = 1
		}
		id := topo.AddPE(graph.PE{Service: svc, Node: sdo.NodeID(i / 2), Weight: w})
		if prev != sdo.NilPE {
			if err := topo.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: 0, Rate: 100, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

// tcpPair returns a connected (client, server) conn pair with hellos
// exchanged in both directions once Recv loops run.
func tcpPair(t *testing.T) (*transport.Conn, *transport.Conn) {
	t.Helper()
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srvCh := make(chan *transport.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			srvCh <- nil
			return
		}
		srvCh <- c
	}()
	cli, err := transport.Dial(lis.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh
	if srv == nil {
		t.Fatal("no server conn")
	}
	return cli, srv
}

const hierTestFeatures = transport.FeatureHeartbeat | transport.FeatureRetarget |
	transport.FeatureElastic | transport.FeatureHier

// Three processes in a chain root→mid→leaf over real TCP: an epoch set
// at the root must reach the leaf through the mid relay (the root sends
// ONE frame), and acks must climb back so the root learns both
// descendants' applied epochs.
func TestHierRelayThreeProcessChain(t *testing.T) {
	topo := chain3(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}

	rootMidCli, rootMidSrv := tcpPair(t) // root holds cli, mid holds srv
	midLeafCli, midLeafSrv := tcpPair(t) // mid holds cli, leaf holds srv
	conns := []*transport.Conn{rootMidCli, rootMidSrv, midLeafCli, midLeafSrv}
	defer func() {
		for _, cn := range conns {
			cn.Close()
		}
	}()

	rootLink := NewLink(rootMidCli) // root → mid
	midUp := NewLink(rootMidSrv)    // mid → root
	midDown := NewLink(midLeafCli)  // mid → leaf
	leafLink := NewLink(midLeafSrv) // leaf → mid

	rootRouter := NewRouter()
	rootRouter.AddPeer(rootLink, 2, 3, 4, 5)
	midRouter := NewRouter()
	midRouter.AddPeer(midUp, 0, 1)
	midRouter.AddPeer(midDown, 4, 5)
	leafRouter := NewRouter()
	leafRouter.AddPeer(leafLink, 0, 1, 2, 3)

	mk := func(node sdo.NodeID, up RemoteLink) *Cluster {
		c, err := NewCluster(Config{
			Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 1, Seed: 4,
			LocalNodes: []sdo.NodeID{node}, Uplink: up,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	root := mk(0, rootRouter)
	mid := mk(1, midRouter)
	leaf := mk(2, leafRouter)

	// Tree wiring: root fans to mid only; mid relays to leaf and acks to
	// root; leaf acks to mid.
	root.EnableHierRelay(0, nil, rootLink)
	mid.EnableHierRelay(1, midUp, midDown)
	leaf.EnableHierRelay(2, leafLink)

	// Serve loops pump frames into each cluster; hellos announce
	// FeatureHier so ack frames are not silently withheld.
	serve := func(l *Link, c *Cluster) { go func() { _ = l.Serve(c) }() }
	serve(rootLink, root)
	serve(midUp, mid)
	serve(midDown, mid)
	serve(leafLink, leaf)
	for _, cn := range conns {
		if err := cn.SendHello(hierTestFeatures); err != nil {
			t.Fatal(err)
		}
	}
	// Hellos are consumed by the peer's Serve loop; wait until both hops
	// have negotiated before disseminating.
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("hello negotiation", func() bool {
		return rootMidCli.PeerSupportsHier() && rootMidSrv.PeerSupportsHier() &&
			midLeafCli.PeerSupportsHier() && midLeafSrv.PeerSupportsHier()
	})

	next := []float64{0.5, 0.3, 0.5, 0.3, 0.5, 0.3}
	if err := root.SetTargets(1, next); err != nil {
		t.Fatal(err)
	}
	waitFor("epoch 1 at leaf", func() bool { return leaf.TargetsEpoch() == 1 })
	if mid.TargetsEpoch() != 1 {
		t.Errorf("mid applied epoch %d, want 1", mid.TargetsEpoch())
	}
	waitFor("acks at root", func() bool {
		acked := root.AckedEpochs()
		return acked[1] == 1 && acked[2] == 1
	})
	if lag := root.EpochLag(); lag != 0 {
		t.Errorf("root epoch lag %d after full acks, want 0", lag)
	}
	// The root addressed ONE child; the relay addressed one more. That is
	// the point of the tree: dissemination cost per process is its
	// fan-out, not the deployment size.
	if n := root.TargetFramesSent(); n != 1 {
		t.Errorf("root sent %d target frames, want 1", n)
	}
	if n := mid.TargetFramesSent(); n != 1 {
		t.Errorf("mid relayed %d target frames, want 1", n)
	}
	if n := leaf.TargetFramesSent(); n != 0 {
		t.Errorf("leaf sent %d target frames, want 0", n)
	}

	// A duplicate dissemination must not re-relay (stale at mid) but must
	// still re-ack.
	root.BroadcastTargets()
	waitFor("re-ack after duplicate", func() bool { return root.TargetFramesSent() == 2 })
	time.Sleep(50 * time.Millisecond)
	if n := mid.TargetFramesSent(); n != 1 {
		t.Errorf("mid re-relayed a stale epoch (%d frames)", n)
	}

	// Targets and lag surface in the run report.
	rep := root.Report(1)
	if rep.TargetFramesSent != 2 {
		t.Errorf("report frames sent = %d, want 2", rep.TargetFramesSent)
	}
	if rep.TargetEpochLag != 0 {
		t.Errorf("report epoch lag = %d, want 0", rep.TargetEpochLag)
	}
}

// Epoch lag must surface while a descendant is behind: feed the root an
// ack for an old epoch and check the gauge math.
func TestHierEpochLagTracksSlowDescendant(t *testing.T) {
	topo := chain3(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	root, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 1, Seed: 5,
		LocalNodes: []sdo.NodeID{0}, Uplink: &memLink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	root.EnableHierRelay(0, nil)
	if err := root.applyTargets(0, 3, cpu); err != nil {
		t.Fatal(err)
	}
	root.InjectTargetAck(1, 3)
	root.InjectTargetAck(2, 1)
	if lag := root.EpochLag(); lag != 2 {
		t.Errorf("epoch lag = %d, want 2 (origin 2 stuck at epoch 1)", lag)
	}
	root.InjectTargetAck(2, 3)
	if lag := root.EpochLag(); lag != 0 {
		t.Errorf("epoch lag = %d after catch-up, want 0", lag)
	}
	// Regressions (an out-of-order old ack) must not roll the view back.
	root.InjectTargetAck(2, 1)
	if lag := root.EpochLag(); lag != 0 {
		t.Errorf("stale ack rolled lag back to %d", lag)
	}
}

// The hierarchical retarget loop: a single-process cluster re-solving
// through hier.Solve must accept epochs and report solve telemetry.
func TestStartRetargetHier(t *testing.T) {
	topo := chain3(t)
	cpu := []float64{0.3, 0.3, 0.3, 0.3, 0.3, 0.3}
	c, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 50, Warmup: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	epochs := make(chan uint64, 64)
	if err := c.StartRetarget(RetargetConfig{
		Every: 1,
		Hier: &HierRetarget{
			Regions:  3,
			Sweeps:   2,
			Deadline: 2 * time.Second,
		},
		OnRetarget: func(epoch uint64, _ []float64) {
			select {
			case epochs <- epoch:
			default:
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	var got uint64
	for got < 2 {
		select {
		case e := <-epochs:
			got = e
		case <-deadline:
			t.Fatalf("hier retarget loop produced %d epochs in 5s", got)
		}
	}
	end := c.Now()
	c.Stop()
	rep := c.Report(end)
	if rep.TargetEpoch < 2 {
		t.Errorf("applied epoch %d, want ≥2", rep.TargetEpoch)
	}
	if rep.SolveMillis <= 0 {
		t.Errorf("report solve_ms = %g, want > 0", rep.SolveMillis)
	}
}
