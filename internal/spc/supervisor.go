package spc

import (
	"math/rand"
	"sync/atomic"
	"time"

	"aces/internal/health"
	"aces/internal/obs"
	"aces/internal/policy"
	"aces/internal/sdo"
)

// SupervisorOptions tunes PE panic recovery. The zero value picks usable
// defaults via Config.fillDefaults.
type SupervisorOptions struct {
	// MaxRestarts is how many panic recoveries a PE gets before its
	// circuit breaker trips (default 5). On trip the PE is parked: its
	// token bucket stops earning and the node's planner redistributes the
	// share to co-located PEs, while r_max = 0 is advertised so upstreams
	// route flow to live replicas.
	MaxRestarts int
	// BackoffMin and BackoffMax bound the jittered exponential restart
	// backoff, in wall time (defaults 10ms, 1s). Virtual time keeps
	// running while a PE waits out its backoff — a restarting PE is a
	// fault, not a clock stop.
	BackoffMin, BackoffMax time.Duration
}

func (o *SupervisorOptions) fillDefaults() {
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 5
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 10 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = time.Second
		if o.BackoffMax < o.BackoffMin {
			o.BackoffMax = o.BackoffMin
		}
	}
}

// HealthConfig enables heartbeat membership for a partitioned deployment.
// All durations are virtual seconds; zero fields are defaulted from Dt.
type HealthConfig struct {
	// Every is the heartbeat period (default 10·Dt).
	Every float64
	// SuspectAfter is the silence after which a peer node turns suspect
	// (default 3·Every). A suspect node's PEs are treated as r_max = 0.
	SuspectAfter float64
	// DeadAfter is the silence after which a suspect node is declared
	// dead (default 2·SuspectAfter).
	DeadAfter float64
}

func (h *HealthConfig) fillDefaults(dt float64) {
	if h.Every <= 0 {
		h.Every = 10 * dt
	}
	if h.SuspectAfter <= 0 {
		h.SuspectAfter = 3 * h.Every
	}
	if h.DeadAfter <= h.SuspectAfter {
		h.DeadAfter = 2 * h.SuspectAfter
	}
}

// HeartbeatSender is the optional RemoteLink extension carrying liveness
// beacons. Links that do not implement it simply never assert liveness;
// the cluster still judges peers by the beats it receives.
type HeartbeatSender interface {
	SendHeartbeat(node int32, seq uint64) error
}

// runPE supervises one PE goroutine for the cluster's lifetime: each
// panic is recovered, the PE restarts — against the SAME input buffer, so
// queued SDOs survive the crash — after a jittered exponential backoff,
// and after MaxRestarts recoveries the circuit breaker trips and the PE
// is parked. Orderly exits (shutdown, processor error) end supervision.
func (c *Cluster) runPE(pr *peRuntime) {
	so := c.cfg.Supervisor
	// Per-PE seeded jitter: deterministic schedules stay deterministic,
	// and co-located PEs crashed by the same fault do not restart in
	// lockstep.
	rng := rand.New(rand.NewSource(c.cfg.Seed ^ (int64(pr.key)+1)*0x5851F42D4C957F2D))
	backoff := so.BackoffMin
	for {
		panicked := c.runPEOnce(pr)
		if !panicked {
			return
		}
		n := pr.restarts.Add(1)
		if pr.cRestarts != nil {
			pr.cRestarts.Inc()
		}
		if n > int64(so.MaxRestarts) {
			// Trip the breaker. The node scheduler observes the flag on
			// its next tick: it zeroes the token-bucket rate, marks the
			// PE blocked so the planner redistributes its share, and
			// advertises r_max = 0 upstream.
			pr.breaker.Store(true)
			return
		}
		d := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
		backoff *= 2
		if backoff > so.BackoffMax {
			backoff = so.BackoffMax
		}
		select {
		case <-c.ctx.Done():
			return
		case <-time.After(d):
		}
	}
}

// runPEOnce is one PE incarnation: pop, wait for budget, process, emit,
// until shutdown (panicked=false) or a processor panic (panicked=true).
// The SDO being processed when a panic fires is accounted as in-flight
// loss — it died mid-service — but the buffer and its queued SDOs are
// untouched, so the restarted incarnation resumes exactly where this one
// crashed.
func (c *Cluster) runPEOnce(pr *peRuntime) (panicked bool) {
	var cur sdo.SDO
	holding := false
	defer func() {
		if r := recover(); r == nil {
			return
		}
		panicked = true
		pr.held.Store(0)
		if holding {
			c.col.inFlightDrop(c.clock.Now(), cur.Hops)
			c.traceDrop(cur, int32(pr.id), int32(pr.node), obs.EventPanic)
		}
	}()
	emit := c.emitter(pr)
	for {
		s, ok := pr.buf.Pop(c.ctx)
		if !ok {
			return false
		}
		cur, holding = s, true
		pr.held.Store(1)
		var deq float64
		if s.Trace != 0 {
			deq = c.clock.Now()
		}
		cost := pr.cost(c.clock.Now())

		// Wait until the scheduler has granted enough budget. The cost is
		// re-sampled at every grant: the two-state model modulates the
		// PE's processing *rate*, so an SDO whose wait spans a state flip
		// is charged the price of the regime that actually processes it —
		// the same fluid semantics the simulator and the tier-1 model use.
		// Freezing the pop-time price would silently push a PE's capacity
		// from the harmonic mean toward the arithmetic mean of the state
		// costs (≈ 3× lower with the paper's T0/T1).
		pr.mu.Lock()
		for pr.budget < cost {
			if c.ctx.Err() != nil {
				pr.mu.Unlock()
				pr.held.Store(0)
				return false
			}
			pr.cond.Wait()
			pr.mu.Unlock()
			cost = pr.cost(c.clock.Now())
			pr.mu.Lock()
		}
		pr.budget -= cost
		// The spent budget doubles as the calibration signal: CPU actually
		// burned (not granted) and SDOs actually processed are exactly the
		// (c, r) pair the rate-model estimator regresses over.
		pr.calAccumulate(cost)
		pr.mu.Unlock()

		var start time.Time
		if pr.model == nil {
			start = time.Now()
		}
		if err := pr.proc.Process(s, emit); err != nil {
			// A failing processor stops its PE; the rest of the graph keeps
			// running (§IV: the system degrades, it does not collapse).
			pr.held.Store(0)
			return false
		}
		if pr.model == nil {
			d := nowDuration(time.Since(start), c.scale)
			pr.mu.Lock()
			pr.mcost.observe(d)
			pr.mu.Unlock()
		}
		if s.Trace != 0 && c.tracer != nil {
			// One span per hop: buffer entry, service start, completion.
			// Egress PEs mark the trace terminal (their emit callback has
			// already recorded the delivery metrics).
			ev := obs.EventProcessed
			if pr.egress {
				ev = obs.EventEgress
			}
			c.tracer.Record(obs.Span{
				Trace: s.Trace, PE: int32(pr.id), Node: int32(pr.node), Hops: int32(s.Hops),
				Enqueue: s.TraceEnq, Dequeue: deq, Done: c.clock.Now(), Event: ev,
			})
		}
		pr.held.Store(0)
		holding = false
	}
}

// PanicInjector wraps a Processor with an armable crash: each Arm call
// schedules one panic, fired at the start of the next Process call. The
// chaos harness uses it to kill a PE at a scheduled virtual time and watch
// the supervisor bring it back.
type PanicInjector struct {
	inner Processor
	armed atomic.Int32
}

// NewPanicInjector wraps inner (which may itself be a CostModeler; cost
// modelling is forwarded when it is).
func NewPanicInjector(inner Processor) *PanicInjector {
	return &PanicInjector{inner: inner}
}

// Arm schedules one panic on the next Process call. Multiple Arm calls
// stack: each one crashes one future incarnation.
func (p *PanicInjector) Arm() { p.armed.Add(1) }

// Armed reports the number of pending crashes.
func (p *PanicInjector) Armed() int { return int(p.armed.Load()) }

// Process implements Processor, panicking if armed.
func (p *PanicInjector) Process(in sdo.SDO, emit func(sdo.SDO)) error {
	for {
		n := p.armed.Load()
		if n <= 0 {
			break
		}
		if p.armed.CompareAndSwap(n, n-1) {
			panic("spc: injected PE fault")
		}
	}
	return p.inner.Process(in, emit)
}

// NextCost implements CostModeler, delegating to the wrapped processor
// when it models costs and charging a nominal 50µs otherwise (keeps the
// chaos harness off the measured-cost path, which needs wall-time
// calibration).
func (p *PanicInjector) NextCost(now float64) float64 {
	if m, ok := p.inner.(CostModeler); ok {
		return m.NextCost(now)
	}
	return 50e-6
}

// parkPE applies a tripped circuit breaker (scheduler goroutine only):
// the token bucket stops earning and is drained — the planner sees the PE
// blocked, so the share flows to co-located PEs — and r_max = 0 goes on
// the local board and over the uplink so upstreams route around the
// corpse instead of treating its silence as unconstrained.
func (c *Cluster) parkPE(pr *peRuntime, pol policy.Policy) {
	pr.parked = true
	pr.bucket.SetRate(0)
	pr.bucket.Spend(pr.bucket.Level())
	c.fb.markDown(pr.key, true)
	if pol.UsesFeedback() {
		c.fb.publish(pr.key, 0)
		if pr.gRmax != nil {
			pr.gRmax.Set(0)
		}
		if c.cfg.Uplink != nil {
			_ = c.cfg.Uplink.SendFeedback(pr.key, 0)
		}
	}
	if pr.gBreaker != nil {
		pr.gBreaker.Set(1)
	}
}

// InjectHeartbeat records a liveness beacon from a peer process's node
// (transport Serve loops call it for KindHeartbeat frames). No-op when
// health is not configured.
func (c *Cluster) InjectHeartbeat(node int32) {
	if c.det != nil {
		c.det.Beat(node, c.clock.Now())
	}
}

// PEHealth is one local PE replica slot's supervision status.
type PEHealth struct {
	PE          int32 `json:"pe"`
	Rep         int32 `json:"rep,omitempty"`
	Node        int32 `json:"node"`
	Restarts    int64 `json:"restarts"`
	BreakerOpen bool  `json:"breaker_open"`
}

// HealthStatus is the cluster's failure-domain snapshot, served by the
// /debug/health endpoint and asserted by the chaos harness.
type HealthStatus struct {
	// Now is the virtual time of the snapshot.
	Now float64 `json:"now"`
	// AllAlive reports whether every tracked peer node is alive (true
	// when health is not configured: no evidence of trouble).
	AllAlive bool `json:"all_alive"`
	// Members lists tracked peer nodes and their membership verdicts.
	Members []health.PeerStatus `json:"members,omitempty"`
	// PEs lists local PEs with their restart and breaker state.
	PEs []PEHealth `json:"pes"`
}

// Health snapshots the failure domain: membership verdicts, per-PE
// restart counts and breaker flags.
func (c *Cluster) Health() HealthStatus {
	st := HealthStatus{Now: c.clock.Now(), AllAlive: true}
	if c.det != nil {
		st.Members = c.det.Snapshot()
		st.AllAlive = c.det.AllAlive()
	}
	for _, pr := range c.prs {
		st.PEs = append(st.PEs, PEHealth{
			PE: int32(pr.id), Rep: pr.rep, Node: int32(pr.node),
			Restarts:    pr.restarts.Load(),
			BreakerOpen: pr.breaker.Load(),
		})
	}
	return st
}

// sendHeartbeats emits one beacon per local node over the uplink. Owned
// by the snapshot node's scheduler; best effort, like feedback — a lost
// beacon is repaired by the next one.
func (c *Cluster) sendHeartbeats() {
	if c.hbs == nil {
		return
	}
	for _, n := range c.localNodeIDs {
		c.hbSeq++
		_ = c.hbs.SendHeartbeat(n, c.hbSeq)
	}
}
