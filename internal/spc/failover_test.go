package spc

import (
	"math"
	"sync"
	"testing"
	"time"

	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/transport"
)

// recSender is a recording TargetSender double: a tree child (or a
// delivering link) that remembers every collapsed epoch pushed to it.
type recSender struct {
	mu     sync.Mutex
	epochs []uint64
}

func (r *recSender) SendTargets(epoch uint64, cpu []float64) error {
	r.mu.Lock()
	r.epochs = append(r.epochs, epoch)
	r.mu.Unlock()
	return nil
}

func (r *recSender) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.epochs)
}

// recAck is a recording EpochAckSender double: a tree parent that
// remembers every (origin, collapsed epoch) acked through it.
type recAck struct {
	mu      sync.Mutex
	origins []int32
	epochs  []uint64
}

func (r *recAck) SendTargetAck(origin int32, epoch uint64) error {
	r.mu.Lock()
	r.origins = append(r.origins, origin)
	r.epochs = append(r.epochs, epoch)
	r.mu.Unlock()
	return nil
}

func (r *recAck) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.origins)
}

func (r *recAck) snapshot() map[int32]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int32]uint64, len(r.origins))
	for i, o := range r.origins {
		out[o] = r.epochs[i]
	}
	return out
}

func failoverCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	topo := chain3(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	c, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 50, Warmup: 0.5, Seed: seed,
		LocalNodes: []sdo.NodeID{0}, Uplink: &memLink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The fencing regression the whole failover design hangs on: after a
// standby claims term 1, the deposed term-0 controller keeps
// disseminating — with HIGHER epochs than the takeover epoch. Epoch-only
// ordering would accept them and hand control back to a zombie;
// lexicographic (term, epoch) ordering must fence them at every
// injection point, flat collapsed wire included.
func TestTermFencingRejectsDeposedController(t *testing.T) {
	c := failoverCluster(t, 11)
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	if err := c.SetTargets(5, cpu); err != nil {
		t.Fatal(err)
	}
	term, err := c.ClaimControl()
	if err != nil {
		t.Fatal(err)
	}
	if term != 1 {
		t.Fatalf("claimed term %d, want 1", term)
	}
	if c.TargetsTerm() != 1 || c.TargetsEpoch() != 6 {
		t.Fatalf("takeover installed (term %d, epoch %d), want (1, 6)", c.TargetsTerm(), c.TargetsEpoch())
	}

	// The zombie's frames: term 0, epochs far beyond the takeover epoch,
	// and a skewed vector that would be visible if it ever applied.
	skew := []float64{0.9, 0.1, 0.9, 0.1, 0.9, 0.1}
	c.InjectTermTargets(0, 100, skew)
	c.InjectTargets(transport.CollapseTermEpoch(0, 101), skew) // legacy collapsed wire
	rep := make([][]float64, len(skew))
	for j, v := range skew {
		rep[j] = []float64{v}
	}
	c.InjectTermReplicaTargets(0, 102, rep)

	if got := c.FencedFrames(); got != 3 {
		t.Errorf("FencedFrames = %d, want 3", got)
	}
	if c.TargetsTerm() != 1 || c.TargetsEpoch() != 6 {
		t.Errorf("zombie frame moved targets to (term %d, epoch %d)", c.TargetsTerm(), c.TargetsEpoch())
	}
	if got := c.targets.Load().cpu[0]; got != 0.4 {
		t.Errorf("zombie vector applied: cpu[0] = %g, want 0.4", got)
	}
	// SetTargets on the deposed identity (term 0) must also lose.
	if err := c.applyTargets(0, 103, skew); err == nil {
		t.Errorf("deposed local applyTargets succeeded")
	}
	// The live term still advances normally.
	c.InjectTermTargets(1, 7, cpu)
	if c.TargetsEpoch() != 7 {
		t.Errorf("live-term epoch 7 rejected (applied %d)", c.TargetsEpoch())
	}
	// Fencing surfaces in the run report (4: three zombie frames plus the
	// deposed local apply above).
	if rep := c.Report(1); rep.FencedFrames != 4 || rep.TargetTerm != 1 {
		t.Errorf("report fenced=%d term=%d, want 4/1", rep.FencedFrames, rep.TargetTerm)
	}
}

// ClaimControl races an in-flight control plane: concurrent claims,
// SetTargets, peer injections, broadcasts and Stop must leave the
// cluster on a coherent (term, epoch) without tripping the race
// detector. Run with -race; 100 iterations shake out interleavings.
func TestClaimControlRacesWithTargetTraffic(t *testing.T) {
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	for i := 0; i < 100; i++ {
		c := failoverCluster(t, int64(1000+i))
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(5)
		go func() {
			defer wg.Done()
			_, _ = c.ClaimControl()
		}()
		go func() {
			defer wg.Done()
			_, _ = c.ClaimControl()
		}()
		go func() {
			defer wg.Done()
			for e := uint64(1); e <= 5; e++ {
				_ = c.SetTargets(e, cpu)
			}
		}()
		go func() {
			defer wg.Done()
			for e := uint64(1); e <= 5; e++ {
				c.InjectTermTargets(0, e, cpu)
				c.BroadcastTargets()
			}
		}()
		go func() {
			defer wg.Done()
			c.Stop()
		}()
		wg.Wait()
		// Two claims raced: the term must be ≥ 2 exactly when both landed,
		// and the applied set's term can never exceed the local claim term.
		if ts, ct := c.TargetsTerm(), c.ControllerTerm(); ts > ct || ct < 1 || ct > 2 {
			t.Fatalf("iter %d: applied term %d, controller term %d", i, ts, ct)
		}
	}
}

// A standby process claims the next term after the incumbent's silence
// deadline and starts its adaptive loop; frames from a live term keep
// resetting the clock so a healthy controller is never usurped.
func TestStartFailoverClaimsAfterSilence(t *testing.T) {
	c := failoverCluster(t, 21)
	claimed := make(chan uint64, 1)
	err := c.StartFailover(FailoverConfig{
		Rank:         0,
		SilenceAfter: 0.4,
		Retarget:     RetargetConfig{Every: 0.5},
		OnClaim:      func(term uint64) { claimed <- term },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	select {
	case term := <-claimed:
		if term != 1 {
			t.Errorf("claimed term %d, want 1", term)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("standby never claimed control")
	}
	if c.ControllerTerm() < 1 {
		t.Errorf("ControllerTerm = %d after claim", c.ControllerTerm())
	}
	if c.TargetsTerm() < 1 {
		t.Errorf("TargetsTerm = %d after claim", c.TargetsTerm())
	}
}

// Satellite: a child re-acking the same (origin, epoch) must not storm
// the grandparent — the relay forwards a duplicate ack zero times.
func TestRepeatedAckForwardsOnce(t *testing.T) {
	c := failoverCluster(t, 31)
	parent := &recAck{}
	c.EnableHierRelay(1, parent)
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	if err := c.applyTargets(0, 3, cpu); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.InjectTargetAck(7, 2)
	}
	if got := parent.count(); got != 1 {
		t.Errorf("duplicate acks forwarded %d times, want 1", got)
	}
	c.InjectTargetAck(7, 3) // fresh progress forwards again
	if got := parent.count(); got != 2 {
		t.Errorf("fresh ack not forwarded (count %d, want 2)", got)
	}
	c.InjectTargetAck(7, 1) // regression: stale, swallowed
	if got := parent.count(); got != 2 {
		t.Errorf("stale ack forwarded (count %d, want 2)", got)
	}
}

// Tree self-healing, mechanism 2: a silent parent is replaced by the
// head backup, and the whole subtree ack map replays through the new
// parent so it learns where this subtree stands. One dead window must
// not burn through the entire backup list.
func TestHierRepairPromotesBackupParent(t *testing.T) {
	c := failoverCluster(t, 41)
	dead := &recAck{}
	backup := &recAck{}
	c.EnableHierRelay(4, dead)
	if err := c.EnableHierRepair(HierRepair{
		Backups:            []EpochAckSender{backup},
		ParentSilenceAfter: 1,
	}); err != nil {
		t.Fatal(err)
	}
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	if err := c.applyTargets(0, 2, cpu); err != nil {
		t.Fatal(err)
	}
	c.InjectTargetAck(5, 2) // a descendant the new parent must learn about
	base := c.clock.Now()

	c.hierMaintain(base + 5)
	if got := c.Reparents(); got != 1 {
		t.Fatalf("Reparents = %d after silence, want 1", got)
	}
	acks := backup.snapshot()
	if acks[4] != 2 {
		t.Errorf("new parent missing own-origin ack (got %v)", acks)
	}
	if acks[5] != 2 {
		t.Errorf("new parent missing replayed descendant ack (got %v)", acks)
	}
	// The silence clock restarted at the re-parent: an immediate second
	// sweep must not consume anything further.
	n := backup.count()
	c.hierMaintain(base + 5.5)
	if got := c.Reparents(); got != 1 {
		t.Errorf("Reparents = %d after fresh re-parent, want 1", got)
	}
	if backup.count() != n {
		t.Errorf("probe fired inside the fresh silence window")
	}
	// Backups exhausted: the next silence window degrades to a re-ack
	// probe toward the current parent, not a crash or a rotation.
	c.hierMaintain(base + 7)
	if got := c.Reparents(); got != 1 {
		t.Errorf("Reparents = %d with empty backup list, want 1", got)
	}
	if backup.count() <= n {
		t.Errorf("no re-ack probe after backups ran out")
	}
	if dead.count() != 1 {
		t.Errorf("dead parent got %d acks, want the 1 pre-silence forward", dead.count())
	}
}

// Tree self-healing, mechanism 1: a descendant whose ack lags the
// applied epoch by more than RetransmitLag gets the current frames
// again, rate-limited, and a caught-up subtree gets nothing. The
// ack-driven variant pushes down the delivering link immediately.
func TestHierRepairRetransmitsToLaggingDescendant(t *testing.T) {
	c := failoverCluster(t, 51)
	child := &recSender{}
	c.EnableHierRelay(0, nil, child)
	if err := c.EnableHierRepair(HierRepair{RetransmitLag: 1, RetransmitEvery: 0.5}); err != nil {
		t.Fatal(err)
	}
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	if err := c.SetTargets(5, cpu); err != nil {
		t.Fatal(err)
	}
	if child.count() != 1 {
		t.Fatalf("dissemination sent %d frames, want 1", child.count())
	}
	c.InjectTargetAck(3, 2) // lag 3 > 1
	base := c.clock.Now()
	c.hierMaintain(base + 1)
	if child.count() != 2 {
		t.Errorf("no retransmit to lagging descendant (frames %d)", child.count())
	}
	c.hierMaintain(base + 1.1) // inside the rate-limit window
	if child.count() != 2 {
		t.Errorf("retransmit not rate-limited (frames %d)", child.count())
	}
	c.hierMaintain(base + 2)
	if child.count() != 3 {
		t.Errorf("retransmit stopped while still lagging (frames %d)", child.count())
	}
	c.InjectTargetAck(3, 5) // caught up
	c.hierMaintain(base + 3)
	if child.count() != 3 {
		t.Errorf("retransmitted to a caught-up subtree (frames %d)", child.count())
	}

	// Ack-driven push: a lagging ack arriving over a known link gets the
	// current set pushed straight back down that link — the repair path
	// for an orphan that just re-parented under us.
	orphan := &recSender{}
	c.InjectTargetAckFrom(9, 0, 1, orphan)
	if orphan.count() != 1 {
		t.Errorf("lagging ack did not trigger a push down its link (frames %d)", orphan.count())
	}
	c.InjectTargetAckFrom(9, 0, 5, orphan) // caught up: no push
	if orphan.count() != 1 {
		t.Errorf("caught-up ack triggered a push (frames %d)", orphan.count())
	}
}

// Stale-target safety: with no fresh epoch for After, the scheduler
// ramps a bounded blend toward the declared model; the first fresh
// epoch snaps it back off.
func TestSafetyModeEngagesAndClearsOnFreshEpoch(t *testing.T) {
	topo := chain3(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	c, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 50, Warmup: 0.2, Seed: 61,
		Safety: &SafetyConfig{After: 0.5, Step: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("safety mode to engage", c.SafeModeActive)
	// A fresh epoch clears the blend on the next tick, restoring the
	// installed targets exactly.
	if err := c.SetTargets(1, cpu); err != nil {
		t.Fatal(err)
	}
	waitFor("safety mode to clear", func() bool { return !c.SafeModeActive() })
}

// effSlot's blend algebra: group-proportional scaling toward the
// declared model, preserving intra-group ratios, with the zeroed-group
// share ramping back on the primary slot.
func TestEffSlotBlendAlgebra(t *testing.T) {
	c := failoverCluster(t, 71)
	ts := c.makeTargetSet(0, 1, []float64{0.8, 0, 0.4, 0.4, 0.4, 0.4}, nil)
	// Blend 0: the installed slot, untouched.
	if got := c.effSlot(ts, 0, 0, 0); got != 0.8 {
		t.Errorf("b=0 slot = %g, want 0.8", got)
	}
	// Full blend: exactly the declared share (0.4).
	if got := c.effSlot(ts, 0, 0, 1); got != 0.4 {
		t.Errorf("b=1 slot = %g, want the declared 0.4", got)
	}
	// Halfway: the group midpoint.
	if got := c.effSlot(ts, 0, 0, 0.5); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("b=0.5 slot = %g, want 0.6", got)
	}
	// A group the installed set zeroed ramps the declared share back on
	// the primary — the slot the singleton fallback ring routes to.
	if got := c.effSlot(ts, 1, 0, 0.5); got != 0.2 {
		t.Errorf("zeroed-group primary at b=0.5 = %g, want 0.2", got)
	}
}
