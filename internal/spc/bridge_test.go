package spc

import (
	"math"
	"sync"
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/metrics"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/transport"
)

// memLink is an in-memory RemoteLink delivering directly into a peer
// cluster — the minimal bridge for partition-semantics tests.
type memLink struct {
	mu   sync.Mutex
	peer *Cluster
}

func (m *memLink) target() *Cluster {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peer
}

func (m *memLink) setPeer(c *Cluster) {
	m.mu.Lock()
	m.peer = c
	m.mu.Unlock()
}

func (m *memLink) SendSDO(to sdo.PEID, s sdo.SDO) error {
	if p := m.target(); p != nil {
		p.InjectSDO(to, s)
	}
	return nil
}

func (m *memLink) SendFeedback(pe int32, rmax float64) error {
	if p := m.target(); p != nil {
		p.InjectFeedback(pe, rmax)
	}
	return nil
}

// splitChain builds a 4-stage chain with stages 0-1 on node 0 and stages
// 2-3 on node 1, partitioned between two clusters.
func splitChain(t *testing.T) *graph.Topology {
	t.Helper()
	topo := graph.New(2, 50)
	svc := detService(0.002)
	prev := sdo.NilPE
	for i := 0; i < 4; i++ {
		w := 0.0
		if i == 3 {
			w = 1
		}
		id := topo.AddPE(graph.PE{Service: svc, Node: sdo.NodeID(i / 2), Weight: w})
		if prev != sdo.NilPE {
			if err := topo.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: 0, Rate: 100, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPartitionedClusterDeliversAcrossMemLink(t *testing.T) {
	topo := splitChain(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4}

	linkAB := &memLink{}
	linkBA := &memLink{}
	a, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 2, Seed: 1,
		LocalNodes: []sdo.NodeID{0}, Uplink: linkAB,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 2, Seed: 1,
		LocalNodes: []sdo.NodeID{1}, Uplink: linkBA,
	})
	if err != nil {
		t.Fatal(err)
	}
	linkAB.setPeer(b)
	linkBA.setPeer(a)

	if !a.Local(0) || a.Local(2) || !b.Local(3) || b.Local(1) {
		t.Fatalf("partition assignment wrong")
	}

	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	// 8 virtual seconds at 20× → 0.4s wall.
	time.Sleep(450 * time.Millisecond)
	endA, endB := a.Now(), b.Now()
	a.Stop()
	b.Stop()
	repA := a.Report(endA)
	repB := b.Report(endB)

	// Egress lives in cluster B: the full source rate should arrive there.
	if math.Abs(repB.WeightedThroughput-100)/100 > 0.3 {
		t.Errorf("partitioned wt = %.1f, want ≈100", repB.WeightedThroughput)
	}
	if repB.Deliveries == 0 {
		t.Fatalf("no deliveries crossed the partition")
	}
	// Cluster A hosts the source; it must not report egress.
	if repA.Deliveries != 0 {
		t.Errorf("cluster A reported %d deliveries but hosts no egress", repA.Deliveries)
	}
}

func TestPartitionedClusterOverTCP(t *testing.T) {
	topo := splitChain(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4}

	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	// Accept side (cluster B).
	connBCh := make(chan *transport.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			connBCh <- nil
			return
		}
		connBCh <- c
	}()
	connA, err := transport.Dial(lis.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	connB := <-connBCh
	if connB == nil {
		t.Fatal("no server conn")
	}
	defer connB.Close()

	linkA, linkB := NewLink(connA), NewLink(connB)
	a, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 2, Seed: 2,
		LocalNodes: []sdo.NodeID{0}, Uplink: linkA,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 2, Seed: 2,
		LocalNodes: []sdo.NodeID{1}, Uplink: linkB,
	})
	if err != nil {
		t.Fatal(err)
	}
	var serveWG sync.WaitGroup
	serveWG.Add(2)
	go func() {
		defer serveWG.Done()
		_ = linkA.Serve(a) // feedback from B flows into A
	}()
	go func() {
		defer serveWG.Done()
		_ = linkB.Serve(b) // SDOs from A flow into B
	}()

	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(450 * time.Millisecond)
	endB := b.Now()
	a.Stop()
	b.Stop()
	connA.Close()
	connB.Close()
	serveWG.Wait()

	repB := b.Report(endB)
	if repB.Deliveries == 0 {
		t.Fatalf("no deliveries crossed the TCP bridge")
	}
	if math.Abs(repB.WeightedThroughput-100)/100 > 0.35 {
		t.Errorf("TCP-partitioned wt = %.1f, want ≈100", repB.WeightedThroughput)
	}
}

func TestPartitionValidation(t *testing.T) {
	topo := splitChain(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4}
	// Crossing edges without an uplink.
	if _, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, LocalNodes: []sdo.NodeID{0},
	}); err == nil {
		t.Errorf("partition without uplink accepted")
	}
	// Blocking policy across the boundary.
	if _, err := NewCluster(Config{
		Topo: topo, Policy: policy.LockStep, CPU: cpu,
		LocalNodes: []sdo.NodeID{0}, Uplink: &memLink{},
	}); err == nil {
		t.Errorf("lockstep across partition accepted")
	}
	// Unknown node id.
	if _, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		LocalNodes: []sdo.NodeID{9}, Uplink: &memLink{},
	}); err == nil {
		t.Errorf("unknown LocalNodes accepted")
	}
}

func TestInjectSDOUnknownTarget(t *testing.T) {
	topo := splitChain(t)
	cpu := []float64{0.4, 0.4, 0.4, 0.4}
	a, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu, TimeScale: 20, Warmup: 0.001, Seed: 3,
		LocalNodes: []sdo.NodeID{0}, Uplink: &memLink{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Non-local and out-of-range targets must be counted, not crash.
	a.InjectSDO(3, sdo.SDO{Origin: time.Now(), Hops: 1})
	a.InjectSDO(-1, sdo.SDO{Origin: time.Now(), Hops: 1})
	a.InjectSDO(99, sdo.SDO{Origin: time.Now(), Hops: 1})
	rep := a.Report(1)
	if rep.InFlightDrops != 3 {
		t.Errorf("misrouted SDOs = %d drops, want 3", rep.InFlightDrops)
	}
}

func TestRouterRoutes(t *testing.T) {
	r := NewRouter()
	if err := r.SendSDO(5, sdo.SDO{}); err == nil {
		t.Errorf("routing to unregistered PE should error")
	}
	var got []sdo.PEID
	var mu sync.Mutex
	stub := remoteFunc(func(to sdo.PEID, s sdo.SDO) error {
		mu.Lock()
		got = append(got, to)
		mu.Unlock()
		return nil
	})
	r.AddPeer(stub, 5, 6)
	if err := r.SendSDO(5, sdo.SDO{}); err != nil {
		t.Fatal(err)
	}
	if err := r.SendSDO(6, sdo.SDO{}); err != nil {
		t.Fatal(err)
	}
	if err := r.SendFeedback(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("routed = %v", got)
	}
}

// remoteFunc adapts a function to RemoteLink for router tests.
type remoteFunc func(to sdo.PEID, s sdo.SDO) error

func (f remoteFunc) SendSDO(to sdo.PEID, s sdo.SDO) error   { return f(to, s) }
func (f remoteFunc) SendFeedback(pe int32, r float64) error { return nil }

var _ RemoteLink = remoteFunc(nil)

// Report is exercised here; keep the helper honest.
var _ = metrics.Report{}
