package spc

import (
	"testing"

	"aces/internal/policy"
)

// TestSchedulerTickZeroAllocs guards the scheduler-scratch bugfix:
// runScheduler used to allocate the ticks/costs slices (and the planner
// its own working set) on every Δt tick on every node for the life of
// the cluster. With the scratch hoisted into schedScratch and
// controller.Planner, a steady-state tick must not allocate at all.
func TestSchedulerTickZeroAllocs(t *testing.T) {
	topo := buildChain(t, 4, 1, 0.001, 100)
	cpu := []float64{0.3, 0.3, 0.3, 0.3}
	for _, pol := range []policy.Policy{policy.ACES, policy.ACESStrictCPU, policy.UDP, policy.LockStep} {
		c, err := NewCluster(Config{Topo: topo, Policy: pol, CPU: cpu, TimeScale: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		peers := c.nodes[0]
		scr := newSchedScratch(len(peers))
		dt := c.cfg.Dt
		now := c.clock.Now()
		// Retarget mid-test so the tick path under measurement is the
		// retargeting-enabled one: the epoch check must stay one pointer
		// load + compare, and applying the new epoch happens before the
		// measured window (a one-time SetRate sweep, not a per-tick cost).
		if err := c.SetTargets(1, []float64{0.25, 0.25, 0.25, 0.25}); err != nil {
			t.Fatal(err)
		}
		// One warm-up tick: the first r_max publish per PE inserts its
		// feedback-map key, a one-time cost by design (it also folds the
		// new target epoch into the buckets).
		c.schedulerTick(peers, scr, now, dt)
		allocs := testing.AllocsPerRun(100, func() {
			now += dt
			c.schedulerTick(peers, scr, now, dt)
		})
		if allocs != 0 {
			t.Errorf("%v: schedulerTick allocates %.1f times per tick, want 0", pol, allocs)
		}
		c.cancel()
	}
}

// TestSchedulerTickZeroAllocsSharded re-proves the zero-alloc gate per
// scheduler shard: a sharded node runs one schedulerTick per shard over
// a disjoint slice of its slots, and each of those ticks must stay
// allocation-free in steady state (the capShare refresh rides the epoch
// fold-in, never the hot path). It also pins the capacity-conservation
// invariant: the shards' planning shares sum to the node's whole 1.0.
func TestSchedulerTickZeroAllocsSharded(t *testing.T) {
	const stages = 8
	topo := buildChain(t, stages, 1, 0.001, 100)
	cpu := make([]float64, stages)
	for i := range cpu {
		cpu[i] = 0.1
	}
	for _, pol := range []policy.Policy{policy.ACES, policy.LockStep} {
		c, err := NewCluster(Config{Topo: topo, Policy: pol, CPU: cpu, TimeScale: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		peers := c.nodes[0]
		const shards = 2
		scrs := make([]*schedScratch, shards)
		slices := make([][]*peRuntime, shards)
		for s := 0; s < shards; s++ {
			lo, hi := shardRange(len(peers), shards, s)
			slices[s] = peers[lo:hi]
			scrs[s] = newShardScratch(len(slices[s]), 0, len(peers))
		}
		next := make([]float64, stages)
		for i := range next {
			next[i] = 0.08
		}
		if err := c.SetTargets(1, next); err != nil {
			t.Fatal(err)
		}
		dt := c.cfg.Dt
		now := c.clock.Now()
		var shareSum float64
		for s := 0; s < shards; s++ {
			// Warm-up tick folds in the epoch (computing the shard's
			// capacity share) and inserts the one-time feedback-map keys.
			c.schedulerTick(slices[s], scrs[s], now, dt)
			shareSum += scrs[s].capShare
			s := s
			allocs := testing.AllocsPerRun(100, func() {
				now += dt
				c.schedulerTick(slices[s], scrs[s], now, dt)
			})
			if allocs != 0 {
				t.Errorf("%v shard %d: schedulerTick allocates %.1f times per tick, want 0", pol, s, allocs)
			}
		}
		if diff := shareSum - 1; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v: shard capacity shares sum to %v, want exactly the node's 1.0", pol, shareSum)
		}
		c.cancel()
	}
}

// TestShardRangeCoversDisjoint pins the shard-slicing arithmetic: every
// slot belongs to exactly one shard, shards are contiguous, and sizes
// differ by at most one.
func TestShardRangeCoversDisjoint(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for shards := 1; shards <= n; shards++ {
			prev := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardRange(n, shards, s)
				if lo != prev {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, prev)
				}
				if size := hi - lo; size < n/shards || size > n/shards+1 {
					t.Fatalf("n=%d shards=%d: shard %d size %d not within one of even", n, shards, s, size)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: shards end at %d, want %d", n, shards, prev, n)
			}
		}
	}
}

// TestClusterRunsSharded runs a whole cluster with an explicit multi-
// shard Δt loop and checks it still delivers: sharding must change
// planning concurrency, not semantics.
func TestClusterRunsSharded(t *testing.T) {
	const stages = 8
	topo := buildChain(t, stages, 1, 0.001, 100)
	cpu := make([]float64, stages)
	for i := range cpu {
		cpu[i] = 0.1
	}
	c, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: 20, Warmup: 0.25, Seed: 1, SchedShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.schedShardsFor(stages); got != 2 {
		t.Fatalf("schedShardsFor(%d) = %d with SchedShards=2", stages, got)
	}
	rep, err := c.Run(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deliveries == 0 {
		t.Error("sharded cluster delivered nothing")
	}
}
