package spc

import (
	"testing"

	"aces/internal/policy"
)

// TestSchedulerTickZeroAllocs guards the scheduler-scratch bugfix:
// runScheduler used to allocate the ticks/costs slices (and the planner
// its own working set) on every Δt tick on every node for the life of
// the cluster. With the scratch hoisted into schedScratch and
// controller.Planner, a steady-state tick must not allocate at all.
func TestSchedulerTickZeroAllocs(t *testing.T) {
	topo := buildChain(t, 4, 1, 0.001, 100)
	cpu := []float64{0.3, 0.3, 0.3, 0.3}
	for _, pol := range []policy.Policy{policy.ACES, policy.ACESStrictCPU, policy.UDP, policy.LockStep} {
		c, err := NewCluster(Config{Topo: topo, Policy: pol, CPU: cpu, TimeScale: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		peers := c.nodes[0]
		scr := newSchedScratch(len(peers))
		dt := c.cfg.Dt
		now := c.clock.Now()
		// One warm-up tick: the first r_max publish per PE inserts its
		// feedback-map key, a one-time cost by design.
		c.schedulerTick(peers, scr, now, dt)
		allocs := testing.AllocsPerRun(100, func() {
			now += dt
			c.schedulerTick(peers, scr, now, dt)
		})
		if allocs != 0 {
			t.Errorf("%v: schedulerTick allocates %.1f times per tick, want 0", pol, allocs)
		}
		c.cancel()
	}
}
