package spc

import (
	"testing"

	"aces/internal/policy"
)

// TestSchedulerTickZeroAllocs guards the scheduler-scratch bugfix:
// runScheduler used to allocate the ticks/costs slices (and the planner
// its own working set) on every Δt tick on every node for the life of
// the cluster. With the scratch hoisted into schedScratch and
// controller.Planner, a steady-state tick must not allocate at all.
func TestSchedulerTickZeroAllocs(t *testing.T) {
	topo := buildChain(t, 4, 1, 0.001, 100)
	cpu := []float64{0.3, 0.3, 0.3, 0.3}
	for _, pol := range []policy.Policy{policy.ACES, policy.ACESStrictCPU, policy.UDP, policy.LockStep} {
		c, err := NewCluster(Config{Topo: topo, Policy: pol, CPU: cpu, TimeScale: 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		peers := c.nodes[0]
		scr := newSchedScratch(len(peers))
		dt := c.cfg.Dt
		now := c.clock.Now()
		// Retarget mid-test so the tick path under measurement is the
		// retargeting-enabled one: the epoch check must stay one pointer
		// load + compare, and applying the new epoch happens before the
		// measured window (a one-time SetRate sweep, not a per-tick cost).
		if err := c.SetTargets(1, []float64{0.25, 0.25, 0.25, 0.25}); err != nil {
			t.Fatal(err)
		}
		// One warm-up tick: the first r_max publish per PE inserts its
		// feedback-map key, a one-time cost by design (it also folds the
		// new target epoch into the buckets).
		c.schedulerTick(peers, scr, now, dt)
		allocs := testing.AllocsPerRun(100, func() {
			now += dt
			c.schedulerTick(peers, scr, now, dt)
		})
		if allocs != 0 {
			t.Errorf("%v: schedulerTick allocates %.1f times per tick, want 0", pol, allocs)
		}
		c.cancel()
	}
}
