// Elastic PE parallelism: one logical PE backed by N replica slots, each
// a full peRuntime (own buffer, supervisor slot, token bucket, flow
// controller), with SDOs routed to replicas by partition-key hash and the
// Eq. 8 output bound aggregated over the replica GROUP (sum of member
// advertisements — any replica can absorb any key's share).
//
// Replica slots are declared in the topology (PE.MaxReplicas and
// ReplicaPlacement) and pre-built at NewCluster; which slots are ACTIVE is
// pure retargeting state. A slot is active when its per-slot CPU target is
// positive, so scaling out, scaling in and migrating a replica between
// nodes are all the same hitless operation: install a new epoch whose
// per-slot targets differ, let each node scheduler fold the rates into its
// token buckets at the top of a tick, and drain a deactivated slot's
// buffer through the new epoch's routes. No goroutine starts or stops, no
// buffer is lost, and a topology that never scales out behaves bit for bit
// like the pre-elastic runtime (singleton rings, singleton groups).
package spc

import (
	"errors"
	"fmt"
	"math"

	"aces/internal/obs"
	"aces/internal/sdo"
	"aces/internal/transport"
)

// repKey composes the feedback-board key of replica slot (j, rep). Slot 0's
// key IS the PE id, so every pre-elastic advertisement, bound and wire
// frame keeps its exact meaning; replica slots occupy the high bits that a
// topology can never reach (PE ids are bounded far below 2^20).
func repKey(j, rep int32) int32 { return j | rep<<20 }

// replicaRef is one routing-ring entry: a replica slot of a logical PE.
// pr is nil when the slot lives in a peer process (route over the uplink).
type replicaRef struct {
	pr  *peRuntime
	pe  sdo.PEID
	rep int32
}

// routeRingSize is the ring length used when a PE has more than one active
// replica: targets are apportioned to ring entries by largest remainder,
// so a replica's share of the key space tracks its share of the group's
// CPU target within 1/32.
const routeRingSize = 32

// routeIndex hashes an SDO onto a ring of n entries. Keyed SDOs
// (partition-aware routing) stick to one replica for the life of the key;
// unkeyed SDOs spread per-SDO by (Stream, Seq). The splitmix64 finalizer
// decorrelates adjacent keys/sequences from ring geometry.
func routeIndex(s sdo.SDO, n int) int {
	k := s.Key
	if k == 0 {
		k = uint64(s.Stream)<<32 ^ s.Seq ^ 0x9E3779B97F4A7C15
	}
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return int(k % uint64(n))
}

// slot returns the CPU target of replica slot (j, rep) under this set. A
// set installed through the logical path (SetTargets, v1 peers) has no
// per-slot matrix; it collapses every group onto the primary.
func (ts *targetSet) slot(j sdo.PEID, rep int32) float64 {
	if ts.rep == nil {
		if rep == 0 {
			return ts.cpu[j]
		}
		return 0
	}
	return ts.rep[j][rep]
}

// pick routes one SDO to a replica slot of logical PE j.
func (ts *targetSet) pick(j sdo.PEID, s sdo.SDO) replicaRef {
	ring := ts.route[j]
	if len(ring) == 1 {
		return ring[0]
	}
	return ring[routeIndex(s, len(ring))]
}

// pickLocal routes an injected SDO to a LOCAL replica slot of PE j,
// probing forward from the hash position so a remote slot's share falls
// to the next local one. Returns nil when no slot of j is hosted here.
func (ts *targetSet) pickLocal(j sdo.PEID, s sdo.SDO) *peRuntime {
	ring := ts.route[j]
	if len(ring) == 1 {
		return ring[0].pr
	}
	i := routeIndex(s, len(ring))
	for off := 0; off < len(ring); off++ {
		if pr := ring[(i+off)%len(ring)].pr; pr != nil {
			return pr
		}
	}
	return nil
}

// ref builds the ring entry for slot (j, r); pr stays nil for slots hosted
// by peer processes.
func (c *Cluster) ref(j sdo.PEID, r int32) replicaRef {
	var pr *peRuntime
	if int(r) < len(c.replicas[j]) {
		pr = c.replicas[j][r]
	}
	return replicaRef{pr: pr, pe: j, rep: r}
}

// makeTargetSet builds the full immutable target set for an epoch: per-PE
// routing rings weighted by the slot targets and per-PE feedback-key
// groups listing the ACTIVE slots. A PE with no active slot (target 0
// everywhere, or a logical set's dormant replicas) falls back to a
// singleton primary ring and group, which reproduces the pre-elastic
// runtime exactly — routing still has somewhere to put an SDO, and the
// bounds still watch the (forgotten or silent) primary key.
func (c *Cluster) makeTargetSet(term, epoch uint64, cpu []float64, rep [][]float64) *targetSet {
	t := c.cfg.Topo
	p := t.NumPEs()
	ts := &targetSet{term: term, epoch: epoch, cpu: cpu, rep: rep}
	ts.route = make([][]replicaRef, p)
	ts.groupKeys = make([][]int32, p)
	for j := 0; j < p; j++ {
		slots := t.Replicas(sdo.PEID(j))
		var act []int32
		var w []float64
		for r := 0; r < slots; r++ {
			if v := ts.slot(sdo.PEID(j), int32(r)); v > 0 {
				act = append(act, int32(r))
				w = append(w, v)
			}
		}
		if len(act) == 0 {
			act, w = []int32{0}, []float64{1}
		}
		keys := make([]int32, len(act))
		for i, r := range act {
			keys[i] = repKey(int32(j), r)
		}
		ts.groupKeys[j] = keys
		if len(act) == 1 {
			ts.route[j] = []replicaRef{c.ref(sdo.PEID(j), act[0])}
			continue
		}
		ts.route[j] = c.buildRing(sdo.PEID(j), act, w)
	}
	ts.nodeSum = make([]float64, len(c.nodes))
	for n, peers := range c.nodes {
		for _, pr := range peers {
			ts.nodeSum[n] += ts.slot(pr.id, pr.rep)
		}
	}
	return ts
}

// buildRing apportions routeRingSize entries over the active slots by
// largest remainder — every active slot gets at least one entry, and the
// rest follow the CPU-target shares — then interleaves them so adjacent
// hash positions land on different replicas (unkeyed round-robin spreading
// instead of runs).
func (c *Cluster) buildRing(j sdo.PEID, act []int32, w []float64) []replicaRef {
	n := len(act)
	total := 0.0
	for _, v := range w {
		total += v
	}
	counts := make([]int, n)
	rem := make([]float64, n)
	used := 0
	for i, v := range w {
		exact := v / total * float64(routeRingSize-n)
		counts[i] = 1 + int(exact)
		rem[i] = exact - math.Floor(exact)
		used += counts[i]
	}
	for used < routeRingSize {
		best := 0
		for i := 1; i < n; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		used++
	}
	ring := make([]replicaRef, 0, used)
	idx := make([]int, n)
	for len(ring) < used {
		for i := range act {
			if idx[i] < counts[i] {
				ring = append(ring, c.ref(j, act[i]))
				idx[i]++
			}
		}
	}
	return ring
}

// ElasticLink is the optional RemoteLink extension carrying
// replica-addressed SDOs. Links that do not implement it (or whose peer
// predates the elastic feature) deliver by logical PE instead; the
// receiver re-routes among its local replicas, so the frame is never lost
// to a vocabulary gap.
type ElasticLink interface {
	SendReplicaSDO(to sdo.PEID, rep int32, s sdo.SDO) error
}

// ReplicaTargetSender is the optional uplink extension disseminating
// per-replica-slot target sets. Senders must collapse to the logical
// vector for peers that only speak TargetSender — a dual-capable peer must
// receive exactly one frame per epoch, never both forms.
type ReplicaTargetSender interface {
	SendReplicaTargets(epoch uint64, cpu [][]float64) error
}

// collapseTargets folds a per-slot target matrix into the logical CPU
// vector a pre-elastic peer understands (it will run the group's whole
// target on the primary slot).
func collapseTargets(rep [][]float64) []float64 {
	cpu := make([]float64, len(rep))
	for j := range rep {
		for _, v := range rep[j] {
			cpu[j] += v
		}
	}
	return cpu
}

// sendReplicaSDO forwards an SDO to a replica slot hosted by a peer
// process, degrading to logical delivery when the uplink cannot address
// slots.
func (c *Cluster) sendReplicaSDO(d sdo.PEID, rep int32, s sdo.SDO) error {
	if c.els != nil {
		return c.els.SendReplicaSDO(d, rep, s)
	}
	if c.cfg.Uplink == nil {
		return fmt.Errorf("spc: no uplink for remote replica %d/%d", d, rep)
	}
	return c.cfg.Uplink.SendSDO(d, s)
}

// SetReplicaTargets applies a per-replica-slot target matrix under the
// given epoch and disseminates it (replica form to elastic peers, the
// collapsed logical vector to the rest). rep[j] must have exactly
// Topology.Replicas(j) entries; a slot's target of 0 deactivates it, which
// drains its buffer through the new epoch's routes on the owning node's
// next tick. Epoch semantics match SetTargets: strictly newer or
// ErrStaleEpoch.
func (c *Cluster) SetReplicaTargets(epoch uint64, rep [][]float64) error {
	if err := c.applyReplicaTargets(c.ctrlTerm.Load(), epoch, rep); err != nil {
		return err
	}
	c.broadcastTargets()
	return nil
}

// InjectReplicaTargets applies a replica target set received from a peer
// process under collapsed term<<32|epoch semantics (v1/v2-flat peers).
func (c *Cluster) InjectReplicaTargets(epoch uint64, rep [][]float64) {
	term, e := transport.SplitTermEpoch(epoch)
	c.InjectTermReplicaTargets(term, e, rep)
}

// InjectTermReplicaTargets applies a replica target set received from a
// peer process. Stale epochs and deposed terms are dropped silently;
// nothing is re-broadcast toward flat peers. Tree relays forward fresh
// epochs to their children and ack every received frame upward, exactly
// as InjectTermTargets does.
func (c *Cluster) InjectTermReplicaTargets(term, epoch uint64, rep [][]float64) {
	c.noteCtrlFrame(term)
	err := c.applyReplicaTargets(term, epoch, rep)
	if err != nil && !errors.Is(err, ErrStaleEpoch) {
		if c.reg != nil {
			c.reg.Counter("retarget_rejects_total", nil).Inc()
		}
		return
	}
	if err == nil {
		c.relayTargetsDown()
		c.updateEpochLag()
	}
	c.ackTargetsUp()
}

func (c *Cluster) applyReplicaTargets(term, epoch uint64, rep [][]float64) error {
	t := c.cfg.Topo
	if len(rep) != t.NumPEs() {
		return fmt.Errorf("spc: replica targets have %d rows, topology has %d PEs", len(rep), t.NumPEs())
	}
	clean := make([][]float64, len(rep))
	cpu := make([]float64, len(rep))
	for j := range rep {
		want := t.Replicas(sdo.PEID(j))
		if len(rep[j]) != want {
			return fmt.Errorf("spc: PE %d has %d replica targets, topology declares %d slots", j, len(rep[j]), want)
		}
		clean[j] = make([]float64, want)
		for r, v := range rep[j] {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("spc: target for PE %d replica %d is %v", j, r, v)
			}
			clean[j][r] = v
			cpu[j] += v
		}
	}
	return c.installTargets(c.makeTargetSet(term, epoch, cpu, clean))
}

// installTargets CASes a built target set in (strictly newer (term,
// epoch) pairs only — lexicographic, so a new term admits ANY epoch and
// a deposed term is fenced at ANY epoch) and forgets the feedback keys of
// every slot the new epoch deactivates — without that, a decommissioned
// replica's ghost r_max would feed its group's bound forever, since it
// will never advertise a retraction.
func (c *Cluster) installTargets(ts *targetSet) error {
	t := c.cfg.Topo
	for {
		cur := c.targets.Load()
		if ts.term < cur.term {
			c.noteFenced()
			return ErrDeposedTerm
		}
		if ts.term == cur.term && ts.epoch <= cur.epoch {
			return ErrStaleEpoch
		}
		if !c.targets.CompareAndSwap(cur, ts) {
			continue
		}
		for j := 0; j < t.NumPEs(); j++ {
			for r := 0; r < t.Replicas(sdo.PEID(j)); r++ {
				if cur.slot(sdo.PEID(j), int32(r)) > 0 && ts.slot(sdo.PEID(j), int32(r)) == 0 {
					c.fb.forget(repKey(int32(j), int32(r)))
				}
			}
		}
		c.retargets.Add(1)
		// Stamp the freshness clock the stale-target safety mode watches:
		// a fresh (term, epoch) just landed, so any degradation blend in
		// progress unwinds on the next scheduler tick.
		c.lastFresh.Store(math.Float64bits(c.clock.Now()))
		if c.gEpoch != nil {
			c.gEpoch.Set(float64(ts.epoch))
		}
		if c.gTerm != nil {
			c.gTerm.Set(float64(ts.term))
		}
		return nil
	}
}

// noteFenced counts one frame rejected for carrying a deposed controller
// term — the observable proof that fencing is working.
func (c *Cluster) noteFenced() {
	c.fenced.Add(1)
	if c.reg != nil {
		c.reg.Counter("retarget_fenced_total", nil).Inc()
	}
}

// FencedFrames returns how many deposed-term target frames this process
// has fenced.
func (c *Cluster) FencedFrames() int64 { return c.fenced.Load() }

// drainReplica empties a deactivated slot's buffer through the NEW epoch's
// routes (scheduler goroutine of the slot's node only, right after the
// epoch's rates are applied): queued SDOs migrate to the replicas that now
// own their keys instead of rotting behind a zero-rate bucket. The slot's
// goroutine keeps running — a later epoch can reactivate it hitlessly —
// and a final budget grant lets an SDO popped before the drain finish
// service even though the bucket will never earn again.
func (c *Cluster) drainReplica(pr *peRuntime, tgt *targetSet) {
	for {
		s, ok := pr.buf.TryPop()
		if !ok {
			break
		}
		ref := tgt.pick(pr.id, s)
		if ref.pr == pr {
			// Fallback ring still points here (no slot of the group is
			// active anywhere); nothing better to do than keep it queued.
			pr.buf.TryPush(s)
			break
		}
		if ref.pr != nil {
			c.admit(ref.pr, s)
			continue
		}
		if err := c.sendReplicaSDO(ref.pe, ref.rep, s); err != nil {
			c.col.inFlightDrop(c.clock.Now(), s.Hops)
			c.traceDrop(s, int32(ref.pe), -1, obs.EventUplinkDrop)
		}
	}
	pr.grant(2 * pr.cost(c.clock.Now()))
}

// ActiveReplicas reports how many replica slots of PE j are active under
// the applied target set (1 for a PE that never scaled out — the primary
// fallback routes even when its target is 0).
func (c *Cluster) ActiveReplicas(j sdo.PEID) int {
	ts := c.targets.Load()
	if ts.rep == nil {
		return 1
	}
	n := 0
	for _, v := range ts.rep[j] {
		if v > 0 {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// ReplicaTargetsSnapshot returns the applied epoch and a copy of the
// per-slot target matrix; the matrix is nil when the applied set came
// through the logical path (primary-only collapse).
func (c *Cluster) ReplicaTargetsSnapshot() (uint64, [][]float64) {
	ts := c.targets.Load()
	if ts.rep == nil {
		return ts.epoch, nil
	}
	out := make([][]float64, len(ts.rep))
	for j := range ts.rep {
		out[j] = append([]float64(nil), ts.rep[j]...)
	}
	return ts.epoch, out
}

// InjectReplicaSDO delivers a replica-addressed SDO from a peer process to
// the named local slot, with the same admission semantics as InjectSDO.
// A slot this process does not host (stale placement view at the sender)
// degrades to logical delivery so the SDO survives.
func (c *Cluster) InjectReplicaSDO(to sdo.PEID, rep int32, s sdo.SDO) {
	if int(to) < 0 || int(to) >= len(c.replicas) ||
		rep < 0 || int(rep) >= len(c.replicas[to]) || c.replicas[to][rep] == nil {
		c.InjectSDO(to, s)
		return
	}
	if s.Trace != 0 {
		s.TraceEnq = c.clock.Now()
	}
	c.admit(c.replicas[to][rep], s)
}
