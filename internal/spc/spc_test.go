package spc

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/metrics"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

func detService(cost float64) workload.ServiceParams {
	return workload.ServiceParams{T0: cost, T1: cost, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
}

func buildChain(t *testing.T, stages int, nodes int, cost, srcRate float64) *graph.Topology {
	t.Helper()
	topo := graph.New(nodes, 50)
	prev := sdo.NilPE
	for i := 0; i < stages; i++ {
		w := 0.0
		if i == stages-1 {
			w = 1
		}
		id := topo.AddPE(graph.PE{Service: detService(cost), Weight: w, Node: sdo.NodeID(i % nodes)})
		if prev != sdo.NilPE {
			if err := topo.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: 0, Rate: srcRate, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func runCluster(t *testing.T, topo *graph.Topology, pol policy.Policy, cpu []float64, dur float64) metrics.Report {
	t.Helper()
	cl, err := NewCluster(Config{Topo: topo, Policy: pol, CPU: cpu, TimeScale: 20, Warmup: dur / 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cl.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBufferFIFOAndBounds(t *testing.T) {
	b := NewBuffer(3)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if !b.TryPush(sdo.SDO{Seq: uint64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if b.TryPush(sdo.SDO{Seq: 99}) {
		t.Errorf("push into full buffer succeeded")
	}
	if b.Len() != 3 || b.Cap() != 3 {
		t.Errorf("len/cap = %d/%d", b.Len(), b.Cap())
	}
	for i := 0; i < 3; i++ {
		s, ok := b.Pop(ctx)
		if !ok || s.Seq != uint64(i) {
			t.Fatalf("pop %d = %v %v", i, s.Seq, ok)
		}
	}
	if _, ok := b.TryPop(); ok {
		t.Errorf("TryPop on empty succeeded")
	}
}

func TestBufferBlockingPushUnblocksOnPop(t *testing.T) {
	b := NewBuffer(1)
	ctx := context.Background()
	b.TryPush(sdo.SDO{Seq: 1})
	done := make(chan bool, 1)
	go func() {
		done <- b.Push(ctx, sdo.SDO{Seq: 2})
	}()
	select {
	case <-done:
		t.Fatal("push should have blocked on a full buffer")
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := b.Pop(ctx); !ok {
		t.Fatal("pop failed")
	}
	select {
	case ok := <-done:
		if !ok {
			t.Errorf("unblocked push returned false")
		}
	case <-time.After(time.Second):
		t.Fatal("push never unblocked")
	}
}

func TestBufferCloseUnblocksWaiters(t *testing.T) {
	b := NewBuffer(1)
	ctx := context.Background()
	b.TryPush(sdo.SDO{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if b.Push(ctx, sdo.SDO{}) {
			t.Errorf("push succeeded after close")
		}
	}()
	empty := NewBuffer(1)
	go func() {
		defer wg.Done()
		if _, ok := empty.Pop(ctx); ok {
			t.Errorf("pop succeeded after close")
		}
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	empty.Close()
	wg.Wait()
}

func TestBufferPopDrainsAfterClose(t *testing.T) {
	b := NewBuffer(2)
	b.TryPush(sdo.SDO{Seq: 7})
	b.Close()
	if s, ok := b.Pop(context.Background()); !ok || s.Seq != 7 {
		t.Errorf("closed buffer should drain remaining items")
	}
	if _, ok := b.Pop(context.Background()); ok {
		t.Errorf("drained closed buffer should return false")
	}
	if b.TryPush(sdo.SDO{}) {
		t.Errorf("push after close succeeded")
	}
}

func TestBufferValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for zero capacity")
		}
	}()
	NewBuffer(0)
}

func TestSyntheticProcessorEmitsMultiplicity(t *testing.T) {
	params := detService(0.001)
	params.MeanMult = 1
	syn := NewSynthetic(params, 42, sim.NewRand(3))
	var got []sdo.SDO
	in := sdo.SDO{Stream: 1, Seq: 5, Origin: time.Now(), Hops: 2, Bytes: 1}
	if err := syn.Process(in, func(s sdo.SDO) { got = append(got, s) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("emitted %d SDOs, want 1", len(got))
	}
	if got[0].Stream != 42 || got[0].Hops != 3 || got[0].Origin != in.Origin {
		t.Errorf("derived SDO wrong: %+v", got[0])
	}
	if c := syn.NextCost(0); c != 0.001 {
		t.Errorf("NextCost = %g", c)
	}
}

func TestPassthrough(t *testing.T) {
	p := NewPassthrough(9)
	var out []sdo.SDO
	for i := 0; i < 3; i++ {
		if err := p.Process(sdo.SDO{Seq: uint64(i)}, func(s sdo.SDO) { out = append(out, s) }); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 3 || out[2].Seq != 2 || out[0].Stream != 9 {
		t.Errorf("passthrough wrong: %+v", out)
	}
}

func TestMeasuredCost(t *testing.T) {
	var m measuredCost
	if m.estimate() <= 0 {
		t.Errorf("default estimate must be positive")
	}
	m.observe(0.01)
	if math.Abs(m.estimate()-0.01) > 1e-12 {
		t.Errorf("first observation should prime: %g", m.estimate())
	}
	m.observe(0.02)
	if m.estimate() <= 0.01 || m.estimate() >= 0.02 {
		t.Errorf("EWMA should move between samples: %g", m.estimate())
	}
}

func TestClocks(t *testing.T) {
	w := NewWallClock()
	time.Sleep(10 * time.Millisecond)
	if w.Now() < 0.005 {
		t.Errorf("wall clock too slow: %g", w.Now())
	}
	s := NewScaledClock(100)
	time.Sleep(10 * time.Millisecond)
	if s.Now() < 0.5 {
		t.Errorf("scaled clock should be ≈1.0s after 10ms wall: %g", s.Now())
	}
	ch, stop := s.Tick(0.05)
	select {
	case <-ch:
	case <-time.After(200 * time.Millisecond):
		t.Errorf("scaled ticker never ticked")
	}
	stop()
	if NewScaledClock(0.1).scale != 1 {
		t.Errorf("scale < 1 should clamp to 1")
	}
}

func TestConfigValidation(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 50)
	if _, err := NewCluster(Config{Policy: policy.ACES, CPU: []float64{1, 1}}); err == nil {
		t.Errorf("missing topo accepted")
	}
	if _, err := NewCluster(Config{Topo: topo, CPU: []float64{1, 1}}); err == nil {
		t.Errorf("missing policy accepted")
	}
	if _, err := NewCluster(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{1}}); err == nil {
		t.Errorf("wrong CPU length accepted")
	}
}

func TestClusterUnderloadDeliversSourceRate(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 50)
	cpu := []float64{0.4, 0.4}
	for _, pol := range policy.All() {
		r := runCluster(t, topo, pol, cpu, 8)
		if math.Abs(r.WeightedThroughput-50)/50 > 0.25 {
			t.Errorf("%v: wt = %.1f, want ≈50", pol, r.WeightedThroughput)
		}
		// The live runtime runs on real OS timers; a handful of drops from
		// startup jitter is tolerable, systematic loss is not.
		if float64(r.InFlightDrops) > float64(r.Deliveries)/100 {
			t.Errorf("%v: %d in-flight drops vs %d deliveries in underload", pol, r.InFlightDrops, r.Deliveries)
		}
	}
}

func TestClusterOverloadBottleneck(t *testing.T) {
	// Stage capacity 0.5/0.002 = 250/s; source 400/s.
	topo := buildChain(t, 2, 2, 0.002, 400)
	cpu := []float64{0.5, 0.5}
	for _, pol := range policy.All() {
		r := runCluster(t, topo, pol, cpu, 8)
		if r.WeightedThroughput > 290 {
			t.Errorf("%v: wt %.1f exceeds bottleneck ≈250", pol, r.WeightedThroughput)
		}
		if r.WeightedThroughput < 150 {
			t.Errorf("%v: wt %.1f far below bottleneck", pol, r.WeightedThroughput)
		}
		if r.InputDrops == 0 {
			t.Errorf("%v: no input drops despite overload", pol)
		}
	}
}

func TestClusterStopIsClean(t *testing.T) {
	topo := buildChain(t, 3, 2, 0.002, 200)
	cl, err := NewCluster(Config{Topo: topo, Policy: policy.LockStep, CPU: []float64{0.3, 0.3, 0.3}, TimeScale: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err == nil {
		t.Errorf("double start accepted")
	}
	time.Sleep(100 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		cl.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung (leaked goroutines)")
	}
}

func TestClusterCustomProcessor(t *testing.T) {
	// A user-defined processor that counts SDOs and emits transformed
	// payloads exercises the real-work path (measured costs).
	topo := buildChain(t, 2, 1, 0.0001, 100)
	var mu sync.Mutex
	count := 0
	procs := map[sdo.PEID]Processor{
		0: FuncProcessor(func(in sdo.SDO, emit func(sdo.SDO)) error {
			mu.Lock()
			count++
			mu.Unlock()
			emit(in.Derive(7, in.Seq, in.Bytes))
			return nil
		}),
	}
	cl, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.4, 0.4},
		TimeScale: 20, Warmup: 1, Seed: 3, Processors: procs,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cl.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := count
	mu.Unlock()
	if n == 0 {
		t.Errorf("custom processor never ran")
	}
	if r.Deliveries == 0 {
		t.Errorf("no egress deliveries through custom processor")
	}
}

func TestClusterLatencyReasonable(t *testing.T) {
	topo := buildChain(t, 3, 3, 0.002, 100)
	cpu := []float64{0.5, 0.5, 0.5}
	r := runCluster(t, topo, policy.ACES, cpu, 8)
	if r.MeanLatency <= 0 || r.MeanLatency > 2 {
		t.Errorf("latency %.4fs implausible", r.MeanLatency)
	}
}

// Failure injection: a processor that errors stops its own PE; the rest of
// the graph keeps running and shutdown stays clean (§IV: degrade, don't
// collapse).
func TestClusterSurvivesProcessorFailure(t *testing.T) {
	topo := graph.New(1, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.0005), Node: 0})
	bad := topo.AddPE(graph.PE{Service: detService(0.0005), Node: 0, Weight: 1})
	good := topo.AddPE(graph.PE{Service: detService(0.0005), Node: 0, Weight: 1})
	if err := topo.Connect(a, bad); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(a, good); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 200, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	var processed atomic.Int64
	procs := map[sdo.PEID]Processor{
		bad: FuncProcessor(func(in sdo.SDO, emit func(sdo.SDO)) error {
			return errors.New("boom")
		}),
		good: FuncProcessor(func(in sdo.SDO, emit func(sdo.SDO)) error {
			processed.Add(1)
			emit(in.Derive(9, in.Seq, 1))
			return nil
		}),
	}
	cl, err := NewCluster(Config{
		Topo: topo, Policy: policy.UDP, CPU: []float64{0.3, 0.3, 0.3},
		TimeScale: 20, Warmup: 1, Seed: 5, Processors: procs,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if processed.Load() == 0 {
		t.Errorf("healthy branch stopped after sibling failure")
	}
	if rep.Deliveries == 0 {
		t.Errorf("no deliveries despite healthy branch")
	}
}

// Lock-Step in the live runtime must never drop in flight: blocking pushes
// wait for space.
func TestClusterLockStepNeverDropsInFlight(t *testing.T) {
	topo := buildChain(t, 3, 2, 0.002, 500) // heavy overload
	cl, err := NewCluster(Config{
		Topo: topo, Policy: policy.LockStep, CPU: []float64{0.5, 0.5, 0.5},
		TimeScale: 20, Warmup: 1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InFlightDrops != 0 {
		t.Errorf("lockstep dropped %d in flight", rep.InFlightDrops)
	}
	if rep.InputDrops == 0 {
		t.Errorf("overloaded lockstep should drop at the input")
	}
}

// ACES must regulate buffers below capacity in the live runtime too.
func TestClusterACESBufferRegulation(t *testing.T) {
	topo := buildChain(t, 2, 2, 0.005, 400)
	cl, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.8, 0.8},
		TimeScale: 20, Warmup: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanBufferOccupancy <= 0 || rep.MeanBufferOccupancy >= 45 {
		t.Errorf("mean occupancy %.1f, want regulated below capacity 50", rep.MeanBufferOccupancy)
	}
}
