package spc

import (
	"errors"
	"math"
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/streamsim"
)

// waitVirtual parks the test goroutine until the cluster's virtual clock
// passes `until`.
func waitVirtual(t *testing.T, c *Cluster, until float64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for c.Now() < until {
		if time.Now().After(deadline) {
			t.Fatalf("virtual clock stuck before %g (now %g)", until, c.Now())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSetTargetsValidatesAndOrdersEpochs(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 100)
	c, err := NewCluster(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{0.5, 0.5}, TimeScale: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.cancel()

	if e := c.TargetsEpoch(); e != 0 {
		t.Fatalf("fresh cluster at epoch %d, want 0", e)
	}
	if err := c.SetTargets(1, []float64{0.4, 0.6}); err != nil {
		t.Fatalf("SetTargets(1): %v", err)
	}
	epoch, cpu := c.Targets()
	if epoch != 1 || cpu[0] != 0.4 || cpu[1] != 0.6 {
		t.Errorf("Targets() = %d %v", epoch, cpu)
	}
	if c.Retargets() != 1 {
		t.Errorf("Retargets = %d, want 1", c.Retargets())
	}

	// Stale and duplicate epochs must be rejected without side effects.
	for _, stale := range []uint64{0, 1} {
		if err := c.SetTargets(stale, []float64{0.9, 0.1}); !errors.Is(err, ErrStaleEpoch) {
			t.Errorf("SetTargets(epoch=%d) = %v, want ErrStaleEpoch", stale, err)
		}
	}
	if _, cpu := c.Targets(); cpu[0] != 0.4 {
		t.Errorf("stale epoch mutated targets: %v", cpu)
	}

	// Malformed vectors: wrong length, negative, NaN.
	if err := c.SetTargets(2, []float64{0.5}); err == nil {
		t.Errorf("short vector accepted")
	}
	if err := c.SetTargets(2, []float64{-0.1, 0.5}); err == nil {
		t.Errorf("negative target accepted")
	}
	if err := c.SetTargets(2, []float64{math.NaN(), 0.5}); err == nil {
		t.Errorf("NaN target accepted")
	}
	if e := c.TargetsEpoch(); e != 1 {
		t.Errorf("failed SetTargets advanced the epoch to %d", e)
	}

	// InjectTargets is the receive path: silent on stale, applied on new.
	c.InjectTargets(1, []float64{0.9, 0.1}) // stale — dropped
	if _, cpu := c.Targets(); cpu[0] != 0.4 {
		t.Errorf("stale inject applied: %v", cpu)
	}
	c.InjectTargets(5, []float64{0.7, 0.3})
	if e, cpu := c.Targets(); e != 5 || cpu[0] != 0.7 {
		t.Errorf("inject not applied: epoch %d cpu %v", e, cpu)
	}

	// The caller's vector must be copied, not aliased.
	v := []float64{0.1, 0.9}
	if err := c.SetTargets(6, v); err != nil {
		t.Fatal(err)
	}
	v[0] = 42
	if _, cpu := c.Targets(); cpu[0] != 0.1 {
		t.Errorf("target vector aliased caller memory: %v", cpu)
	}
}

// TestSetTargetsZeroTargetForgetsPE covers the Feedback.Forget wiring: a
// PE retargeted to zero CPU must vanish from the Eq. 8 board instead of
// leaving a ghost r_max that throttles (or, once it goes silent, a
// cold-start +Inf that unthrottles) its upstreams forever.
func TestSetTargetsZeroTargetForgetsPE(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 100)
	c, err := NewCluster(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{0.5, 0.5}, TimeScale: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.cancel()

	// PE 1 (the egress) advertised r_max = 40, as a remote peer would.
	c.InjectFeedback(1, 40)
	if got := c.fb.outputBound([]int32{1}); got != 40 {
		t.Fatalf("outputBound = %g, want 40", got)
	}

	// Retarget PE 1 to zero: decommissioned, its advertisement forgotten.
	if err := c.SetTargets(1, []float64{1.0, 0}); err != nil {
		t.Fatal(err)
	}
	if got := c.fb.outputBound([]int32{1}); got != 0 {
		t.Errorf("outputBound after forget = %g, want 0 (nothing to send to)", got)
	}

	// A revived PE re-registers through the normal publish path.
	if err := c.SetTargets(2, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	c.InjectFeedback(1, 7)
	if got := c.fb.outputBound([]int32{1}); got != 7 {
		t.Errorf("outputBound after revival = %g, want 7", got)
	}
}

// TestSetTargetsCrossSubstrateEquivalence retargets the same topology
// mid-run on both substrates — streamsim.Engine.SetTargets in virtual
// event time, spc.Cluster.SetTargets on the live runtime — and checks the
// two recovered throughputs agree. This extends the simulator's
// TestSetTargetsMidRunRecovers to the live half of the stack: same skewed
// start, same corrective targets, same measurement window.
func TestSetTargetsCrossSubstrateEquivalence(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 150)
	skewed := []float64{0.8, 0.1} // stage 1 starved: 50/s capacity
	good := []float64{0.45, 0.45} // 225/s per stage — carries the 150/s

	eng, err := streamsim.New(streamsim.Config{
		Topo: topo, Policy: policy.ACES, CPU: append([]float64(nil), skewed...),
		Duration: 30, Seed: 5, Warmup: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Sim().At(15, func() {
		if err := eng.SetTargets(good); err != nil {
			t.Errorf("engine SetTargets: %v", err)
		}
	})
	simRep := eng.Run()

	cl, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: skewed,
		TimeScale: 20, Warmup: 20, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	waitVirtual(t, cl, 15)
	if err := cl.SetTargets(1, good); err != nil {
		t.Errorf("cluster SetTargets: %v", err)
	}
	waitVirtual(t, cl, 30)
	end := cl.Now()
	cl.Stop()
	liveRep := cl.Report(end)

	if liveRep.TargetEpoch != 1 || liveRep.Retargets != 1 {
		t.Errorf("report epoch/retargets = %d/%d, want 1/1", liveRep.TargetEpoch, liveRep.Retargets)
	}
	// Hitless: the retarget must not have restarted or parked anything.
	if liveRep.PERestarts != 0 || liveRep.BreakersOpen != 0 {
		t.Errorf("retarget disturbed PEs: restarts=%d breakers=%d", liveRep.PERestarts, liveRep.BreakersOpen)
	}
	// Both substrates measure post-recovery (t ≥ 20) throughput; the live
	// runtime rides OS timers, so allow a wider band than the simulator's
	// own regression but demand genuine agreement.
	lo, hi := 0.8*simRep.WeightedThroughput, 1.2*simRep.WeightedThroughput
	if liveRep.WeightedThroughput < lo || liveRep.WeightedThroughput > hi {
		t.Errorf("substrates disagree: live wt %.1f vs sim wt %.1f (want within ±20%%)",
			liveRep.WeightedThroughput, simRep.WeightedThroughput)
	}
}

// TestStartRetargetAdaptsToCostStep runs the whole adaptive loop in one
// process: two PEs contend for one node, the high-weight PE's cost
// quadruples mid-run, and the calibrate→re-solve→retarget loop must move
// its CPU target to where the post-step optimum actually is. The deployed
// topology never learns the new cost — only calibration can.
func TestStartRetargetAdaptsToCostStep(t *testing.T) {
	topo := graph.New(1, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.002), Weight: 8, Node: 0})
	b := topo.AddPE(graph.PE{Service: detService(0.002), Weight: 1, Node: 0})
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 100, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 2, Target: b, Rate: 1000, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	// Pre-step optimum: a serves its full 100/s on 0.2 CPU, b soaks the
	// rest. After a's cost steps 2 ms → 8 ms it needs 0.8 CPU for the same
	// 100/s, and with weight 8 the re-solve must give it that.
	cpu := []float64{0.2, 0.8}

	c, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: 20, Seed: 3,
		Processors: map[sdo.PEID]Processor{
			a: NewStepCost(100, 0.002, 0.008, 6),
			b: NewStepCost(101, 0.002, 0.002, 0),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StartRetarget(RetargetConfig{Every: 0.5, Lambda: 0.7, MinSamples: 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.StartRetarget(RetargetConfig{}); err == nil {
		t.Errorf("RetargetConfig without Every accepted")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	waitVirtual(t, c, 20)
	c.Stop()

	epoch, got := c.Targets()
	if epoch == 0 {
		t.Fatalf("adaptive loop never retargeted")
	}
	if got[a] < 0.55 {
		t.Errorf("post-step target for stepped PE = %.3f, want ≈0.8 (loop did not track the cost step; targets %v, epoch %d)",
			got[a], got, epoch)
	}
	if got[a] <= got[b] {
		t.Errorf("weight-8 PE got %.3f ≤ weight-1 PE's %.3f", got[a], got[b])
	}
	if sum := got[a] + got[b]; sum > 1+1e-9 {
		t.Errorf("node oversubscribed: Σc = %g", sum)
	}
	// The loop's solve must be seeded from the incumbent (warm start) and
	// calibrated measurements — cross-check against an offline solve on
	// the true post-step topology.
	oracle := *topo
	oracle.PEs = append([]graph.PE(nil), topo.PEs...)
	oracle.PEs[a].Service = detService(0.008)
	want, err := optimize.Solve(&oracle, optimize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[a]-want.CPU[a]) > 0.15 {
		t.Errorf("adaptive target %.3f vs oracle %.3f for stepped PE", got[a], want.CPU[a])
	}
}

// TestRetargetColdSolveCounter pins the cold-start surfacing: the
// deployment-time target set is logical (no replica matrix), so the FIRST
// elastic re-solve has no WarmStartReplica and must cold-start — silently,
// before Allocation.ColdStart existed. The loop must count it once, then
// warm-start from the replica-form epoch it just installed; the monolithic
// path always has the incumbent logical vector and never cold-starts.
func TestRetargetColdSolveCounter(t *testing.T) {
	topo := elasticChain(t, 200, 0.002)
	c, err := NewCluster(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{0.3, 0.4, 0.3}, TimeScale: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.cancel()
	cal := optimize.NewCalibrator(topo, 0, 0)
	oc := optimize.Config{Utility: optimize.LinearUtility{}, MaxIters: 200}

	// Monolithic re-solve: warm-started from the incumbent logical vector.
	c.retargetOnce(cal, RetargetConfig{Every: 1, Optimize: oc})
	if got := c.ColdSolves(); got != 0 {
		t.Fatalf("monolithic re-solve cold-started: ColdSolves = %d, want 0", got)
	}

	// First elastic re-solve: the applied set is logical, cur.rep == nil.
	c.retargetOnce(cal, RetargetConfig{Every: 1, Elastic: true, Optimize: oc})
	if got := c.ColdSolves(); got != 1 {
		t.Fatalf("first elastic re-solve: ColdSolves = %d, want 1", got)
	}

	// Second elastic re-solve warm-starts from the installed replica set.
	c.retargetOnce(cal, RetargetConfig{Every: 1, Elastic: true, Optimize: oc})
	if got := c.ColdSolves(); got != 1 {
		t.Fatalf("second elastic re-solve: ColdSolves = %d, want 1 (still)", got)
	}

	if rep := c.Report(c.Now()); rep.ColdSolves != 1 {
		t.Errorf("Report.ColdSolves = %d, want 1", rep.ColdSolves)
	}
}
