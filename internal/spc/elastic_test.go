package spc

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/policy"
	"aces/internal/sdo"
)

// elasticChain builds a 1-node chain whose middle PE declares two replica
// slots (both on node 0): ingress → hot(×2 slots) → egress.
func elasticChain(t *testing.T, srcRate, hotCost float64) *graph.Topology {
	t.Helper()
	topo := graph.New(1, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.0001)})
	b := topo.AddPE(graph.PE{Service: detService(hotCost), MaxReplicas: 2, ReplicaNodes: []sdo.NodeID{0}})
	c := topo.AddPE(graph.PE{Service: detService(0.0001), Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(b, c); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: srcRate, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestRepKeySlotZeroIsPEID(t *testing.T) {
	for _, j := range []int32{0, 1, 17, 1<<20 - 1} {
		if repKey(j, 0) != j {
			t.Errorf("repKey(%d, 0) = %d", j, repKey(j, 0))
		}
	}
	seen := map[int32]bool{}
	for j := int32(0); j < 8; j++ {
		for r := int32(0); r < 8; r++ {
			k := repKey(j, r)
			if seen[k] {
				t.Fatalf("repKey collision at (%d, %d)", j, r)
			}
			seen[k] = true
		}
	}
}

func TestSetReplicaTargetsValidatesAndRoutes(t *testing.T) {
	topo := elasticChain(t, 100, 0.004)
	c, err := NewCluster(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{0.1, 0.5, 0.1}, TimeScale: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.cancel()

	// Shape and value validation.
	if err := c.SetReplicaTargets(1, [][]float64{{0.1}, {0.2}}); err == nil {
		t.Errorf("short matrix accepted")
	}
	if err := c.SetReplicaTargets(1, [][]float64{{0.1}, {0.2}, {0.1, 0.1}}); err == nil {
		t.Errorf("wrong slot count accepted")
	}
	if err := c.SetReplicaTargets(1, [][]float64{{0.1}, {math.NaN(), 0.2}, {0.1}}); err == nil {
		t.Errorf("NaN target accepted")
	}
	if got := c.ActiveReplicas(1); got != 1 {
		t.Errorf("ActiveReplicas before scale-out = %d, want 1", got)
	}

	// Scale out: both slots of the hot PE active.
	rep := [][]float64{{0.1}, {0.3, 0.3}, {0.1}}
	if err := c.SetReplicaTargets(1, rep); err != nil {
		t.Fatal(err)
	}
	if got := c.ActiveReplicas(1); got != 2 {
		t.Errorf("ActiveReplicas = %d, want 2", got)
	}
	epoch, snap := c.ReplicaTargetsSnapshot()
	if epoch != 1 || snap[1][0] != 0.3 || snap[1][1] != 0.3 {
		t.Errorf("snapshot = %d %v", epoch, snap)
	}
	snap[1][0] = 42 // the snapshot must be a copy
	if _, again := c.ReplicaTargetsSnapshot(); again[1][0] != 0.3 {
		t.Errorf("snapshot aliased internal state")
	}
	// The logical view collapses the group.
	if _, cpu := c.Targets(); math.Abs(cpu[1]-0.6) > 1e-12 {
		t.Errorf("logical target = %g, want 0.6", cpu[1])
	}

	// Ring routing: both slots must appear, and a keyed SDO must stick to
	// one slot no matter how often it is routed.
	ts := c.targets.Load()
	slots := map[int32]int{}
	for _, ref := range ts.route[1] {
		slots[ref.rep]++
	}
	if len(slots) != 2 || slots[0] == 0 || slots[1] == 0 {
		t.Fatalf("ring does not cover both active slots: %v", slots)
	}
	first := ts.pick(1, sdo.SDO{Key: 99}).rep
	for i := 0; i < 32; i++ {
		if got := ts.pick(1, sdo.SDO{Key: 99}).rep; got != first {
			t.Fatalf("keyed SDO bounced between replicas: %d then %d", first, got)
		}
	}
	// Distinct keys must spread across slots (not all land on one).
	hit := map[int32]bool{}
	for k := uint64(1); k <= 64; k++ {
		hit[ts.pick(1, sdo.SDO{Key: k}).rep] = true
	}
	if len(hit) != 2 {
		t.Errorf("64 distinct keys all routed to one replica")
	}

	// Stale epochs are rejected; InjectReplicaTargets drops them silently.
	if err := c.SetReplicaTargets(1, rep); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("stale epoch = %v, want ErrStaleEpoch", err)
	}
	c.InjectReplicaTargets(1, [][]float64{{9}, {9, 9}, {9}})
	if _, snap := c.ReplicaTargetsSnapshot(); snap[1][0] != 0.3 {
		t.Errorf("stale inject applied: %v", snap)
	}

	// Scale in: deactivating slot 1 forgets its feedback key so no ghost
	// r_max survives the decommission.
	c.InjectFeedback(repKey(1, 1), 123)
	if err := c.SetReplicaTargets(2, [][]float64{{0.1}, {0.6, 0}, {0.1}}); err != nil {
		t.Fatal(err)
	}
	if got := c.ActiveReplicas(1); got != 1 {
		t.Errorf("ActiveReplicas after scale-in = %d, want 1", got)
	}
	if got := c.fb.outputBound([]int32{repKey(1, 1)}); got != 0 {
		t.Errorf("deactivated slot still advertises r_max = %g, want 0 (forgotten)", got)
	}
	// And the group bound now watches only the surviving slot.
	c.InjectFeedback(repKey(1, 0), 55)
	ts = c.targets.Load()
	if got := c.fb.groupedOutputBound(ts.groupKeys, []int32{1}); got != 55 {
		t.Errorf("grouped bound = %g, want 55 (primary only)", got)
	}
}

// TestElasticScaleOutCarriesLoadPrimaryCannot is the single-process data
// plane check: a hot PE whose demand exceeds one node's capacity must
// carry (nearly) the full offered load once its second replica slot
// activates on the OTHER node — replication inside one node cannot beat
// that node's simplex, so the extra slot lives on node 1.
func TestElasticScaleOutCarriesLoadPrimaryCannot(t *testing.T) {
	topo := graph.New(2, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.0001), Node: 0})
	b := topo.AddPE(graph.PE{Service: detService(0.004), Node: 0, MaxReplicas: 2, ReplicaNodes: []sdo.NodeID{1}})
	cc := topo.AddPE(graph.PE{Service: detService(0.0001), Node: 1, Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(b, cc); err != nil {
		t.Fatal(err)
	}
	// 250/s × 4 ms = 1.0 CPU of demand on the hot PE: more than any single
	// slot can get, comfortably within two slots' 0.6 + 0.6.
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 250, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	run := func(scaleOut bool) float64 {
		c, err := NewCluster(Config{
			Topo: topo, Policy: policy.ACES, CPU: []float64{0.2, 0.55, 0.2},
			TimeScale: 20, Warmup: 2, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if scaleOut {
			if err := c.SetReplicaTargets(1, [][]float64{{0.1}, {0.6, 0.6}, {0.1}}); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := c.Run(8)
		if err != nil {
			t.Fatal(err)
		}
		if scaleOut && rep.ActiveReplicas != 2 {
			t.Errorf("report ActiveReplicas = %d, want 2", rep.ActiveReplicas)
		}
		return rep.WeightedThroughput
	}
	frozen := run(false)
	elastic := run(true)
	if frozen > 0.65*250 {
		t.Errorf("frozen run carried %g/s; the hot PE should cap it well below 250/s", frozen)
	}
	if elastic < 0.85*250 {
		t.Errorf("elastic run carried %g/s, want ≥ 212/s (scale-out did not absorb the load; frozen %g)", elastic, frozen)
	}
}

// TestPeerRecoveryReopensBounds is the regression for the recovered-peer
// staleness bug: a peer that advertised a congested r_max just before
// dying must come back unconstrained — clearing only the down-mark left
// the stale advertisement pinning upstream output bounds near zero until
// a fresh feedback frame happened to arrive.
func TestPeerRecoveryReopensBounds(t *testing.T) {
	topo := graph.New(2, 50)
	a := topo.AddPE(graph.PE{Service: detService(0.002), Node: 0})
	b := topo.AddPE(graph.PE{Service: detService(0.002), Node: 1, Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 100, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.5, 0.5},
		LocalNodes: []sdo.NodeID{0}, Uplink: &memLink{},
		Health:    &HealthConfig{Every: 0.1, SuspectAfter: 0.3, DeadAfter: 0.6},
		TimeScale: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.cancel()

	// The dying peer's last advertisement: nearly zero capacity.
	c.det.Beat(1, 0)
	c.InjectFeedback(int32(b), 0.01)
	if got := c.fb.outputBound([]int32{int32(b)}); got != 0.01 {
		t.Fatalf("advertised bound = %g, want 0.01", got)
	}

	// Silence past DeadAfter: the verdict flips and the bound closes.
	c.det.Check(1.0)
	if got := c.fb.outputBound([]int32{int32(b)}); got != 0 {
		t.Errorf("bound while peer down = %g, want 0", got)
	}

	// The peer heals. The bound must reopen IMMEDIATELY to cold-start
	// unconstrained — not stay pinned at the stale 0.01.
	c.det.Beat(1, 1.2)
	c.det.Check(1.2)
	got := c.fb.outputBound([]int32{int32(b)})
	if !math.IsInf(got, 1) {
		t.Errorf("bound after recovery = %g, want +Inf (stale advertisement must be erased)", got)
	}
	// Fresh feedback re-constrains normally.
	c.InjectFeedback(int32(b), 40)
	if got := c.fb.outputBound([]int32{int32(b)}); got != 40 {
		t.Errorf("bound after fresh feedback = %g, want 40", got)
	}
}

// TestStopDuringRetargetRace is the regression for the retarget-vs-
// shutdown race: Stop used to close PE buffers while the retarget loop
// could still be mid-solve and install targets into a dying cluster. Run
// with -race; 100 iterations of stop-at-random-phase cover the window.
func TestStopDuringRetargetRace(t *testing.T) {
	topo := buildChain(t, 2, 1, 0.002, 100)
	for i := 0; i < 100; i++ {
		c, err := NewCluster(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{0.4, 0.4}, TimeScale: 50, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.StartRetarget(RetargetConfig{Every: 0.02, Lambda: 0.7, MinSamples: 1}); err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(i%7) * time.Millisecond)
		c.Stop()
	}
}

// TestConcurrentTargetInvariants races every control-plane entry point —
// logical retargets, replica retargets, feedback injection, replica SDO
// injection, reports — against the running data plane. Run with -race; the
// assertions check the epoch stays monotone and the final state coherent.
func TestConcurrentTargetInvariants(t *testing.T) {
	topo := elasticChain(t, 200, 0.002)
	c, err := NewCluster(Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.2, 0.4, 0.2},
		TimeScale: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for e := uint64(1); ; e += 2 {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.SetTargets(e, []float64{0.2, 0.4, 0.2})
		}
	}()
	go func() {
		defer wg.Done()
		for e := uint64(2); ; e += 2 {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.SetReplicaTargets(e, [][]float64{{0.2}, {0.2, 0.2}, {0.2}})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.InjectFeedback(repKey(1, int32(i%2)), float64(i%100))
			c.InjectReplicaSDO(1, int32(i%2), sdo.SDO{Stream: 1, Seq: uint64(i), Key: uint64(i % 13), Origin: time.Now()})
			c.InjectReplicaSDO(1, 7, sdo.SDO{Stream: 1, Seq: uint64(i), Origin: time.Now()}) // out-of-range slot degrades
		}
	}()
	var lastEpoch uint64
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rep := c.Report(c.Now())
			if rep.TargetEpoch < lastEpoch {
				t.Errorf("epoch went backwards: %d after %d", rep.TargetEpoch, lastEpoch)
				return
			}
			lastEpoch = rep.TargetEpoch
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	c.Stop()

	epoch, _ := c.Targets()
	if epoch == 0 {
		t.Errorf("no retarget landed under contention")
	}
}

// TestSchedulerTickZeroAllocsElastic re-proves the zero-alloc tick gate
// with replication enabled: grouped bounds, per-slot targets and dormant-
// slot skips must all ride the immutable target set without allocating.
func TestSchedulerTickZeroAllocsElastic(t *testing.T) {
	topo := elasticChain(t, 100, 0.002)
	c, err := NewCluster(Config{Topo: topo, Policy: policy.ACES, CPU: []float64{0.2, 0.3, 0.2}, TimeScale: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.cancel()
	// Both slots of the hot PE active, so the tick exercises the grouped
	// bound over a real (non-singleton) group.
	if err := c.SetReplicaTargets(1, [][]float64{{0.2}, {0.15, 0.15}, {0.2}}); err != nil {
		t.Fatal(err)
	}
	peers := c.nodes[0]
	scr := newSchedScratch(len(peers))
	dt := c.cfg.Dt
	now := c.clock.Now()
	// Warm-up tick: folds the epoch into the buckets and inserts the
	// per-slot feedback keys (both one-time costs by design).
	c.schedulerTick(peers, scr, now, dt)
	allocs := testing.AllocsPerRun(100, func() {
		now += dt
		c.schedulerTick(peers, scr, now, dt)
	})
	if allocs != 0 {
		t.Errorf("schedulerTick with replication allocates %.1f times per tick, want 0", allocs)
	}

	// And with a dormant slot (scale-in applied): the dormant branch must
	// also be allocation-free.
	if err := c.SetReplicaTargets(2, [][]float64{{0.2}, {0.3, 0}, {0.2}}); err != nil {
		t.Fatal(err)
	}
	c.schedulerTick(peers, scr, now, dt)
	allocs = testing.AllocsPerRun(100, func() {
		now += dt
		c.schedulerTick(peers, scr, now, dt)
	})
	if allocs != 0 {
		t.Errorf("schedulerTick with a dormant replica allocates %.1f times per tick, want 0", allocs)
	}
}
