// Online retargeting: the runtime half of the paper's adaptive loop.
// Tier 1 solves for CPU targets c̄_j once at deployment; this file lets it
// re-solve against *measured* rate models and push the new targets into a
// live cluster without draining a buffer or restarting a PE. Targets are
// epoch-numbered: every dissemination carries the epoch of the solve that
// produced it, receivers reject anything not strictly newer, and the Δt
// schedulers apply a new epoch at the top of their next tick by adjusting
// token-bucket rates in place — the data plane never notices.
package spc

import (
	"errors"
	"fmt"
	"math"
	"time"

	"aces/internal/optimize"
)

// targetSet is an immutable epoch-stamped CPU target vector. The cluster
// holds the current one in an atomic pointer: schedulers load it once per
// tick (no lock, no allocation) and the control plane swaps in whole new
// sets, so a tick sees either the old targets or the new ones, never a
// half-written mix.
type targetSet struct {
	epoch uint64
	cpu   []float64
}

// TargetSender is the uplink extension for target dissemination, the
// retargeting analogue of HeartbeatSender: the coordinator broadcasts each
// accepted epoch to peer processes. Senders must be best-effort and
// non-blocking; dissemination is periodic and epoch-idempotent, so a lost
// frame is repaired by the next broadcast.
type TargetSender interface {
	SendTargets(epoch uint64, cpu []float64) error
}

// ErrStaleEpoch reports a SetTargets whose epoch is not strictly newer
// than the applied one — a late or duplicate dissemination, dropped so an
// out-of-order frame can never roll the cluster back to old targets.
var ErrStaleEpoch = errors.New("spc: stale target epoch")

// TargetsEpoch returns the epoch of the currently applied target set
// (0 = the deployment-time targets from Config.CPU).
func (c *Cluster) TargetsEpoch() uint64 { return c.targets.Load().epoch }

// Targets returns the applied epoch and a copy of its CPU target vector.
func (c *Cluster) Targets() (uint64, []float64) {
	ts := c.targets.Load()
	return ts.epoch, append([]float64(nil), ts.cpu...)
}

// Retargets returns how many target epochs this process has accepted.
func (c *Cluster) Retargets() int64 { return c.retargets.Load() }

// SetTargets applies a new CPU target vector under the given epoch and
// broadcasts it to peer processes (when the uplink supports targets). The
// epoch must be strictly greater than the applied one; stale epochs return
// ErrStaleEpoch and change nothing. Application is hitless: node
// schedulers fold the new rates into their token buckets on the next tick,
// buffers and in-flight SDOs are untouched, and no PE restarts.
func (c *Cluster) SetTargets(epoch uint64, cpu []float64) error {
	if err := c.applyTargets(epoch, cpu); err != nil {
		return err
	}
	c.broadcastTargets()
	return nil
}

// InjectTargets applies a target set received from a peer process. Stale
// epochs are dropped silently — re-dissemination makes duplicates routine,
// not errors — and nothing is re-broadcast (the coordinator owns
// dissemination; echoing would make target storms).
func (c *Cluster) InjectTargets(epoch uint64, cpu []float64) {
	err := c.applyTargets(epoch, cpu)
	if err != nil && !errors.Is(err, ErrStaleEpoch) && c.reg != nil {
		// Malformed vectors from a peer are a deployment bug worth a trace
		// in telemetry, but never worth crashing the data plane over.
		c.reg.Counter("retarget_rejects_total", nil).Inc()
	}
}

// applyTargets validates and swaps in a new target set.
func (c *Cluster) applyTargets(epoch uint64, cpu []float64) error {
	if len(cpu) != len(c.pes) {
		return fmt.Errorf("spc: target vector has %d entries, topology has %d PEs", len(cpu), len(c.pes))
	}
	clean := make([]float64, len(cpu))
	for j, v := range cpu {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("spc: target for PE %d is %v", j, v)
		}
		clean[j] = v
	}
	ts := &targetSet{epoch: epoch, cpu: clean}
	for {
		cur := c.targets.Load()
		if epoch <= cur.epoch {
			return ErrStaleEpoch
		}
		if !c.targets.CompareAndSwap(cur, ts) {
			continue
		}
		// A PE retargeted to zero is decommissioned as far as flow control
		// goes: forget its advertisement so upstream Eq. 8 bounds stop
		// honouring a ghost r_max it will never refresh (it re-registers
		// automatically if a later epoch revives it and it publishes again).
		for j := range clean {
			if cur.cpu[j] > 0 && clean[j] == 0 {
				c.fb.forget(int32(j))
			}
		}
		c.retargets.Add(1)
		if c.gEpoch != nil {
			c.gEpoch.Set(float64(epoch))
		}
		return nil
	}
}

// applyEpoch re-tunes one node's token buckets to a new target epoch. The
// node scheduler calls it at the top of a tick, so the scheduler-owned
// bucket state is safe to touch. Parked PEs are skipped — the breaker owns
// their (zero) rate; if a later recovery unparks one it rejoins at
// whatever epoch is then current. SetRate preserves each bucket's level
// and burst horizon, so banked entitlement survives the retune: the
// application is a rate change, not a reset.
func (c *Cluster) applyEpoch(peers []*peRuntime, tgt *targetSet) {
	for _, pr := range peers {
		if !pr.parked {
			pr.bucket.SetRate(tgt.cpu[pr.id])
		}
		if pr.gTarget != nil {
			pr.gTarget.Set(tgt.cpu[pr.id])
		}
	}
}

// BroadcastTargets re-disseminates the applied target set to peers. Safe
// to call any time: receivers drop stale epochs, so repetition only
// repairs losses and late-joining peers — call it after a peer reconnects
// if no periodic retarget loop is running to do it for you.
func (c *Cluster) BroadcastTargets() { c.broadcastTargets() }

func (c *Cluster) broadcastTargets() {
	if c.tgs == nil {
		return
	}
	ts := c.targets.Load()
	// Best effort by contract: the next periodic broadcast repairs a loss.
	_ = c.tgs.SendTargets(ts.epoch, ts.cpu)
}

// calAccumulate charges one processed SDO to the PE's calibration window.
// Called at the budget-spend site with pr.mu held.
func (pr *peRuntime) calAccumulate(cost float64) {
	pr.calCPU += cost
	pr.calN++
}

// calSample closes the PE's calibration window at virtual time now,
// folding the spent CPU and processed count into the window trackers over
// the *measured* elapsed time (TickFor) — the scheduler that drives it
// runs on OS timers that slip, and rating a late window over the nominal
// interval would bias the model by exactly the slip factor.
func (pr *peRuntime) calSample(now float64) {
	pr.mu.Lock()
	elapsed := now - pr.calLast
	pr.calLast = now
	pr.trkCPU.Observe(pr.calCPU)
	pr.trkRate.Observe(pr.calN)
	pr.calCPU, pr.calN = 0, 0
	pr.trkCPU.TickFor(elapsed)
	pr.trkRate.TickFor(elapsed)
	pr.mu.Unlock()
}

// calRates returns the PE's smoothed (CPU fraction spent, SDOs/s
// processed) pair — one rate-model sample for the calibrator.
func (pr *peRuntime) calRates() (cpuFrac, rate float64) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.trkCPU.Rate(), pr.trkRate.Rate()
}

// RetargetConfig configures the automatic adaptive loop.
type RetargetConfig struct {
	// Every is the virtual seconds between re-solves (required, > 0).
	Every float64
	// Optimize configures the tier-1 solver. WarmStart is managed by the
	// loop (each re-solve starts from the incumbent targets).
	Optimize optimize.Config
	// Lambda is the RLS forgetting factor (0 → 0.98).
	Lambda float64
	// MinSamples gates calibration: a PE observed in fewer windows keeps
	// its declared model (0 → the calibrator default).
	MinSamples int
	// OnRetarget, when set, is invoked after each accepted epoch with the
	// new targets (testing and logging hook; called from the loop
	// goroutine).
	OnRetarget func(epoch uint64, cpu []float64)
}

// StartRetarget launches the adaptive loop on this process: every Every
// virtual seconds it samples each local PE's measured rate model, re-runs
// the tier-1 solver on the calibrated topology warm-started from the
// incumbent, and applies + broadcasts the result as the next epoch. Remote
// PEs keep their declared models (their windows are not visible here), so
// run the loop on the process hosting the PEs whose drift matters — or on
// every process; epoch ordering makes concurrent loops safe, just wasteful.
// The loop stops with the cluster.
func (c *Cluster) StartRetarget(rc RetargetConfig) error {
	if rc.Every <= 0 {
		return fmt.Errorf("spc: RetargetConfig.Every must be positive, got %g", rc.Every)
	}
	cal := optimize.NewCalibrator(c.cfg.Topo, rc.Lambda, rc.MinSamples)
	wall := time.Duration(rc.Every / c.scale * float64(time.Second))
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(wall)
		defer ticker.Stop()
		for {
			select {
			case <-c.ctx.Done():
				return
			case <-ticker.C:
			}
			c.retargetOnce(cal, rc)
		}
	}()
	return nil
}

// retargetOnce runs one iteration of the adaptive loop: observe, re-solve,
// apply, disseminate.
func (c *Cluster) retargetOnce(cal *optimize.Calibrator, rc RetargetConfig) {
	for _, pr := range c.pes {
		if pr == nil || pr.breaker.Load() {
			continue
		}
		cpuFrac, rate := pr.calRates()
		cal.Observe(int(pr.id), cpuFrac, rate)
	}
	cur := c.targets.Load()
	oc := rc.Optimize
	oc.WarmStart = cur.cpu
	alloc, err := optimize.Solve(cal.Calibrated(), oc)
	if err != nil {
		// An unsolvable calibrated topology (pathological estimates slipped
		// the guards) must not kill the loop; keep the incumbent targets.
		c.broadcastTargets()
		return
	}
	if err := c.SetTargets(cur.epoch+1, alloc.CPU); err != nil {
		// Lost a race with a concurrent retarget; its targets stand.
		// Re-disseminate whatever is current so peers converge regardless.
		c.broadcastTargets()
		return
	}
	if rc.OnRetarget != nil {
		rc.OnRetarget(cur.epoch+1, alloc.CPU)
	}
}
