// Online retargeting: the runtime half of the paper's adaptive loop.
// Tier 1 solves for CPU targets c̄_j once at deployment; this file lets it
// re-solve against *measured* rate models and push the new targets into a
// live cluster without draining a buffer or restarting a PE. Targets are
// epoch-numbered: every dissemination carries the epoch of the solve that
// produced it, receivers reject anything not strictly newer, and the Δt
// schedulers apply a new epoch at the top of their next tick by adjusting
// token-bucket rates in place — the data plane never notices.
package spc

import (
	"errors"
	"fmt"
	"math"
	"time"

	"aces/internal/optimize"
	"aces/internal/transport"
)

// targetSet is an immutable epoch-stamped CPU target vector. The cluster
// holds the current one in an atomic pointer: schedulers load it once per
// tick (no lock, no allocation) and the control plane swaps in whole new
// sets, so a tick sees either the old targets or the new ones, never a
// half-written mix.
type targetSet struct {
	// term is the controller term that originated this set; epochs are
	// ordered lexicographically by (term, epoch), so a failover claim
	// (term+1) outranks ANY epoch of the deposed controller — the fencing
	// rule that makes a zombie ex-controller harmless.
	term  uint64
	epoch uint64
	// cpu holds the LOGICAL per-PE targets (sum over replica slots).
	cpu []float64
	// rep holds the per-replica-slot targets; nil for a set installed
	// through the logical path (everything runs on the primaries).
	rep [][]float64
	// route[j] is PE j's replica routing ring (singleton for one active
	// slot); groupKeys[j] the feedback keys of its ACTIVE slots, which the
	// grouped Eq. 8 bounds sum. Both are built locally by makeTargetSet —
	// ring entries hold this process's runtime pointers.
	route     [][]replicaRef
	groupKeys [][]int32
	// nodeSum[n] is the sum of this set's slot targets over the local PE
	// slots hosted on node n. Sharded schedulers divide it into their
	// planning-capacity shares at epoch fold-in; a single-shard node never
	// reads it.
	nodeSum []float64
}

// TargetSender is the uplink extension for target dissemination, the
// retargeting analogue of HeartbeatSender: the coordinator broadcasts each
// accepted epoch to peer processes. Senders must be best-effort and
// non-blocking; dissemination is periodic and epoch-idempotent, so a lost
// frame is repaired by the next broadcast.
type TargetSender interface {
	SendTargets(epoch uint64, cpu []float64) error
}

// TermTargetSender is the term-aware extension of TargetSender: links
// whose peer advertised transport.FeatureTerm carry the controller term
// as a distinct wire field. Senders without it receive the collapsed
// term<<32|epoch scalar in the legacy epoch argument — numerically the
// same lexicographic order, so flat v1/v2 peers fence correctly without
// knowing terms exist.
type TermTargetSender interface {
	SendTermTargets(term, epoch uint64, cpu []float64) error
}

// TermReplicaTargetSender is the term-aware ReplicaTargetSender.
type TermReplicaTargetSender interface {
	SendTermReplicaTargets(term, epoch uint64, cpu [][]float64) error
}

// TermAckSender is the term-aware EpochAckSender: dissemination acks
// carry the acker's applied (term, epoch) pair.
type TermAckSender interface {
	SendTermTargetAck(origin int32, term, epoch uint64) error
}

// ErrStaleEpoch reports a SetTargets whose epoch is not strictly newer
// than the applied one — a late or duplicate dissemination, dropped so an
// out-of-order frame can never roll the cluster back to old targets.
var ErrStaleEpoch = errors.New("spc: stale target epoch")

// ErrDeposedTerm reports a target set carrying an OLDER controller term
// than the applied one: a deposed (zombie, partitioned) ex-controller is
// still disseminating. It wraps ErrStaleEpoch — a deposed frame is a
// stale frame with a name — so every errors.Is(err, ErrStaleEpoch) site
// treats it as routine; fencing is additionally counted in FencedFrames.
var ErrDeposedTerm = fmt.Errorf("spc: deposed controller term: %w", ErrStaleEpoch)

// TargetsEpoch returns the epoch of the currently applied target set
// (0 = the deployment-time targets from Config.CPU).
func (c *Cluster) TargetsEpoch() uint64 { return c.targets.Load().epoch }

// TargetsTerm returns the controller term of the currently applied
// target set (0 = the deployment-time controller).
func (c *Cluster) TargetsTerm() uint64 { return c.targets.Load().term }

// Targets returns the applied epoch and a copy of its CPU target vector.
func (c *Cluster) Targets() (uint64, []float64) {
	ts := c.targets.Load()
	return ts.epoch, append([]float64(nil), ts.cpu...)
}

// Retargets returns how many target epochs this process has accepted.
func (c *Cluster) Retargets() int64 { return c.retargets.Load() }

// SetTargets applies a new CPU target vector under the given epoch and
// broadcasts it to peer processes (when the uplink supports targets). The
// epoch must be strictly greater than the applied one; stale epochs return
// ErrStaleEpoch and change nothing. The set is stamped with this process's
// controller term (0 until ClaimControl raises it). Application is
// hitless: node schedulers fold the new rates into their token buckets on
// the next tick, buffers and in-flight SDOs are untouched, and no PE
// restarts.
func (c *Cluster) SetTargets(epoch uint64, cpu []float64) error {
	if err := c.applyTargets(c.ctrlTerm.Load(), epoch, cpu); err != nil {
		return err
	}
	c.broadcastTargets()
	return nil
}

// InjectTargets applies a target set received from a peer process under
// collapsed term<<32|epoch semantics (v1/v2-flat peers; a plain epoch is
// term 0, so the pre-term wire behaves identically).
func (c *Cluster) InjectTargets(epoch uint64, cpu []float64) {
	term, e := transport.SplitTermEpoch(epoch)
	c.InjectTermTargets(term, e, cpu)
}

// InjectTermTargets applies a target set received from a peer process.
// Stale epochs and deposed terms are dropped silently — re-dissemination
// makes duplicates routine, not errors — and nothing is re-broadcast
// toward flat peers (the coordinator owns dissemination; echoing would
// make target storms). A tree relay is the exception: a FRESH epoch is
// pushed on to this process's children, and every received frame (fresh
// or stale) is acked upward so the parent tracks the subtree's applied
// epoch.
func (c *Cluster) InjectTermTargets(term, epoch uint64, cpu []float64) {
	c.noteCtrlFrame(term)
	err := c.applyTargets(term, epoch, cpu)
	if err != nil && !errors.Is(err, ErrStaleEpoch) {
		// Malformed vectors from a peer are a deployment bug worth a trace
		// in telemetry, but never worth crashing the data plane over.
		if c.reg != nil {
			c.reg.Counter("retarget_rejects_total", nil).Inc()
		}
		return
	}
	if err == nil {
		c.relayTargetsDown()
		c.updateEpochLag()
	}
	c.ackTargetsUp()
}

// noteCtrlFrame refreshes the controller-liveness clock that failover
// watchers and the tree-repair silence check read. Frames from a DEPOSED
// term are excluded: a zombie ex-controller's chatter must not convince a
// standby that the control plane is alive.
func (c *Cluster) noteCtrlFrame(term uint64) {
	if term >= c.targets.Load().term {
		c.lastCtrlFrame.Store(math.Float64bits(c.clock.Now()))
	}
}

// applyTargets validates and swaps in a new LOGICAL target set. A logical
// epoch collapses every replica group onto its primary (a flat coordinator
// wins outright — the (term, epoch) order is the only authority); slots
// the collapse deactivates are forgotten on the feedback board and drained
// by their node schedulers exactly as an elastic scale-in would.
func (c *Cluster) applyTargets(term, epoch uint64, cpu []float64) error {
	if len(cpu) != len(c.pes) {
		return fmt.Errorf("spc: target vector has %d entries, topology has %d PEs", len(cpu), len(c.pes))
	}
	clean := make([]float64, len(cpu))
	for j, v := range cpu {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("spc: target for PE %d is %v", j, v)
		}
		clean[j] = v
	}
	return c.installTargets(c.makeTargetSet(term, epoch, clean, nil))
}

// applyEpoch re-tunes one node's token buckets to a new target epoch. The
// node scheduler calls it at the top of a tick, so the scheduler-owned
// bucket state is safe to touch. Parked PEs are skipped — the breaker owns
// their (zero) rate; if a later recovery unparks one it rejoins at
// whatever epoch is then current. SetRate preserves each bucket's level
// and burst horizon, so banked entitlement survives the retune: the
// application is a rate change, not a reset.
func (c *Cluster) applyEpoch(peers []*peRuntime, tgt *targetSet) {
	for _, pr := range peers {
		slot := tgt.slot(pr.id, pr.rep)
		if !pr.parked {
			pr.bucket.SetRate(slot)
		}
		if pr.gTarget != nil {
			pr.gTarget.Set(slot)
		}
		if pr.rep != 0 {
			// Scale-in / migration half of an epoch: a replica slot whose
			// target just dropped to zero hands its queued SDOs to the
			// replicas the new epoch's ring elects.
			active := slot > 0
			if pr.wasActive && !active {
				c.drainReplica(pr, tgt)
			}
			pr.wasActive = active
		}
	}
}

// BroadcastTargets re-disseminates the applied target set to peers. Safe
// to call any time: receivers drop stale epochs, so repetition only
// repairs losses and late-joining peers — call it after a peer reconnects
// if no periodic retarget loop is running to do it for you.
func (c *Cluster) BroadcastTargets() { c.broadcastTargets() }

func (c *Cluster) broadcastTargets() {
	// A tree position overrides the flat fan-out: the root (or a relay
	// that originated an epoch, e.g. a concurrent retarget loop) pushes to
	// its children and lets each relay push onward, instead of addressing
	// every peer itself.
	if c.hierEnabled() {
		c.relayTargetsDown()
		return
	}
	ts := c.targets.Load()
	// Best effort by contract: the next periodic broadcast repairs a loss.
	// A replica-form set goes out through the elastic extension when the
	// uplink has one — the link layer collapses per peer as needed, so a
	// dual-capable peer sees exactly one frame per epoch. Without the
	// extension, every peer gets the collapsed logical vector. Term-aware
	// uplinks carry (term, epoch) distinctly; the rest get the collapsed
	// scalar, which orders identically.
	if ts.rep != nil && c.rts != nil {
		if trs, ok := c.rts.(TermReplicaTargetSender); ok {
			_ = trs.SendTermReplicaTargets(ts.term, ts.epoch, ts.rep)
		} else {
			_ = c.rts.SendReplicaTargets(transport.CollapseTermEpoch(ts.term, ts.epoch), ts.rep)
		}
		return
	}
	if c.tgs == nil {
		return
	}
	if tts, ok := c.tgs.(TermTargetSender); ok {
		_ = tts.SendTermTargets(ts.term, ts.epoch, ts.cpu)
	} else {
		_ = c.tgs.SendTargets(transport.CollapseTermEpoch(ts.term, ts.epoch), ts.cpu)
	}
}

// calAccumulate charges one processed SDO to the PE's calibration window.
// Called at the budget-spend site with pr.mu held.
func (pr *peRuntime) calAccumulate(cost float64) {
	pr.calCPU += cost
	pr.calN++
}

// calSample closes the PE's calibration window at virtual time now,
// folding the spent CPU and processed count into the window trackers over
// the *measured* elapsed time (TickFor) — the scheduler that drives it
// runs on OS timers that slip, and rating a late window over the nominal
// interval would bias the model by exactly the slip factor.
func (pr *peRuntime) calSample(now float64) {
	pr.mu.Lock()
	elapsed := now - pr.calLast
	pr.calLast = now
	pr.trkCPU.Observe(pr.calCPU)
	pr.trkRate.Observe(pr.calN)
	pr.calCPU, pr.calN = 0, 0
	pr.trkCPU.TickFor(elapsed)
	pr.trkRate.TickFor(elapsed)
	pr.mu.Unlock()
}

// calRates returns the PE's smoothed (CPU fraction spent, SDOs/s
// processed) pair — one rate-model sample for the calibrator.
func (pr *peRuntime) calRates() (cpuFrac, rate float64) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.trkCPU.Rate(), pr.trkRate.Rate()
}

// RetargetConfig configures the automatic adaptive loop.
type RetargetConfig struct {
	// Every is the virtual seconds between re-solves (required, > 0).
	Every float64
	// Optimize configures the tier-1 solver. WarmStart is managed by the
	// loop (each re-solve starts from the incumbent targets).
	Optimize optimize.Config
	// Lambda is the RLS forgetting factor (0 → 0.98).
	Lambda float64
	// MinSamples gates calibration: a PE observed in fewer windows keeps
	// its declared model (0 → the calibrator default).
	MinSamples int
	// Elastic switches the re-solve to SolveElastic: the loop chooses
	// per-replica-slot targets from the calibrated models (a replica adds
	// a_j·c̄ − b_j capacity but pays the overhead b_j again) and
	// disseminates them as replica target sets; peers that predate the
	// elastic feature receive the collapsed logical vector.
	Elastic bool
	// OnRetarget, when set, is invoked after each accepted epoch with the
	// new targets (testing and logging hook; called from the loop
	// goroutine).
	OnRetarget func(epoch uint64, cpu []float64)
	// Hier, when set, replaces the monolithic re-solve with the
	// hierarchical control plane: region-decomposed solves coordinated
	// through cut-edge prices (internal/hier). The decomposition is
	// computed once at StartRetarget and reused every epoch.
	Hier *HierRetarget
}

// StartRetarget launches the adaptive loop on this process: every Every
// virtual seconds it samples each local PE's measured rate model, re-runs
// the tier-1 solver on the calibrated topology warm-started from the
// incumbent, and applies + broadcasts the result as the next epoch. Remote
// PEs keep their declared models (their windows are not visible here), so
// run the loop on the process hosting the PEs whose drift matters — or on
// every process; epoch ordering makes concurrent loops safe, just wasteful.
// The loop stops with the cluster.
func (c *Cluster) StartRetarget(rc RetargetConfig) error {
	if rc.Every <= 0 {
		return fmt.Errorf("spc: RetargetConfig.Every must be positive, got %g", rc.Every)
	}
	cal := optimize.NewCalibrator(c.cfg.Topo, rc.Lambda, rc.MinSamples)
	var dec *hierDecomposition
	if rc.Hier != nil {
		d, err := buildHierDecomposition(c, rc.Hier)
		if err != nil {
			return err
		}
		dec = d
	}
	wall := time.Duration(rc.Every / c.scale * float64(time.Second))
	// The loop joins rtWG, not the data plane's wg: Stop waits this
	// goroutine out FIRST, so a re-solve can never overlap buffer
	// teardown (retarget-vs-shutdown race).
	c.rtWG.Add(1)
	go func() {
		defer c.rtWG.Done()
		ticker := time.NewTicker(wall)
		defer ticker.Stop()
		for {
			select {
			case <-c.ctx.Done():
				return
			case <-ticker.C:
			}
			if dec != nil {
				c.hierRetargetOnce(cal, rc, dec)
			} else {
				c.retargetOnce(cal, rc)
			}
		}
	}()
	return nil
}

// retargetOnce runs one iteration of the adaptive loop: observe, re-solve,
// apply, disseminate.
func (c *Cluster) retargetOnce(cal *optimize.Calibrator, rc RetargetConfig) {
	if c.abdicated() {
		return
	}
	// Every local replica slot's window is one sample for its LOGICAL PE's
	// rate model: replicas run the same code on the same stream, so each
	// (CPU spent, SDOs processed) pair regresses the same per-instance
	// h_j. Dormant slots contribute idle windows, which the calibrator
	// discards on its own.
	for _, pr := range c.prs {
		if pr.breaker.Load() {
			continue
		}
		cpuFrac, rate := pr.calRates()
		cal.Observe(int(pr.id), cpuFrac, rate)
	}
	cur := c.targets.Load()
	oc := rc.Optimize
	if rc.Elastic {
		oc.WarmStartReplica = cur.rep
		ea, err := optimize.SolveElastic(cal.Calibrated(), oc)
		if err != nil {
			c.broadcastTargets()
			return
		}
		c.noteSolve(ea.SolveMillis, ea.Iterations)
		if ea.ColdStart {
			c.noteColdSolve()
		}
		if err := c.SetReplicaTargets(cur.epoch+1, ea.Replica); err != nil {
			c.broadcastTargets()
			return
		}
		if rc.OnRetarget != nil {
			rc.OnRetarget(cur.epoch+1, ea.CPU)
		}
		return
	}
	oc.WarmStart = cur.cpu
	alloc, err := optimize.Solve(cal.Calibrated(), oc)
	if err != nil {
		// An unsolvable calibrated topology (pathological estimates slipped
		// the guards) must not kill the loop; keep the incumbent targets.
		c.broadcastTargets()
		return
	}
	c.noteSolve(alloc.SolveMillis, alloc.Iterations)
	if alloc.ColdStart {
		c.noteColdSolve()
	}
	if err := c.SetTargets(cur.epoch+1, alloc.CPU); err != nil {
		// Lost a race with a concurrent retarget; its targets stand.
		// Re-disseminate whatever is current so peers converge regardless.
		c.broadcastTargets()
		return
	}
	if rc.OnRetarget != nil {
		rc.OnRetarget(cur.epoch+1, alloc.CPU)
	}
}

// abdicated reports whether a NEWER controller term has been applied than
// this process ever claimed: a standby took over (or this process is the
// deposed ex-controller). An abdicated retarget loop stops originating
// epochs — its solves would be fenced everywhere anyway — and instead
// helps disseminate the incumbent's targets.
func (c *Cluster) abdicated() bool {
	if c.targets.Load().term <= c.ctrlTerm.Load() {
		return false
	}
	c.broadcastTargets()
	return true
}
