// Controller failover: standby processes watch the incumbent
// controller's target-frame stream and, when it goes silent, the
// lowest-ranked live standby claims the next controller term,
// warm-starts from the last applied target set, and resumes the adaptive
// loop. Terms order lexicographically ahead of epochs ((term, epoch)
// pairs; see installTargets), so the claim instantly outranks anything
// the dead — or merely partitioned — ex-controller ever disseminated,
// and every receiver fences the deposed term's frames. Claim epochs
// continue the incumbent's sequence (epoch+1), so epoch-only consumers
// (ack lag, legacy peers via the collapsed term<<32|epoch scalar) stay
// monotone across a takeover.
package spc

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// FailoverConfig parameterizes a standby controller.
type FailoverConfig struct {
	// Rank staggers contention: standby k waits SilenceAfter + k·Stagger
	// of controller silence before claiming, so the lowest-ranked LIVE
	// standby wins without an election protocol — by the time rank 1's
	// deadline passes, rank 0's claim frames have either arrived (silence
	// clock reset, no claim) or rank 0 is dead too.
	Rank int
	// SilenceAfter is the virtual seconds of controller silence before
	// this standby's base deadline (required > 0). Must comfortably
	// exceed the incumbent's retarget period: fresh frames arrive every
	// Every, so anything shorter false-positives on a healthy controller.
	SilenceAfter float64
	// Stagger is the per-rank deadline spacing (default SilenceAfter/2).
	Stagger float64
	// CheckEvery is the watcher's poll period (default SilenceAfter/4).
	CheckEvery float64
	// Retarget configures the adaptive loop the standby starts after a
	// successful claim (Every required > 0, as in StartRetarget).
	Retarget RetargetConfig
	// OnClaim, when set, is invoked with the claimed term right after the
	// takeover epoch installs and before the adaptive loop starts
	// (testing and logging hook; called from the watcher goroutine).
	OnClaim func(term uint64)
}

// StartFailover launches a standby-controller watcher on this process: it
// monitors the incumbent's target-frame liveness (LastControllerFrame,
// refreshed by every injected frame from a non-deposed term) and, once
// the rank-staggered silence deadline passes, claims the next controller
// term and starts the adaptive loop with the given retarget config. The
// watcher joins the retarget wait group and stops with the cluster.
func (c *Cluster) StartFailover(fc FailoverConfig) error {
	if fc.SilenceAfter <= 0 {
		return fmt.Errorf("spc: FailoverConfig.SilenceAfter must be positive, got %g", fc.SilenceAfter)
	}
	if fc.Rank < 0 {
		return fmt.Errorf("spc: FailoverConfig.Rank must be non-negative, got %d", fc.Rank)
	}
	if fc.Retarget.Every <= 0 {
		return fmt.Errorf("spc: FailoverConfig.Retarget.Every must be positive, got %g", fc.Retarget.Every)
	}
	if fc.Stagger <= 0 {
		fc.Stagger = fc.SilenceAfter / 2
	}
	if fc.CheckEvery <= 0 {
		fc.CheckEvery = fc.SilenceAfter / 4
	}
	// Arm the silence clock: a standby that never hears the incumbent at
	// all must still take over SilenceAfter from NOW, not from time 0.
	c.lastCtrlFrame.Store(math.Float64bits(c.clock.Now()))
	deadline := fc.SilenceAfter + float64(fc.Rank)*fc.Stagger
	wall := time.Duration(fc.CheckEvery / c.scale * float64(time.Second))
	c.rtWG.Add(1)
	go func() {
		defer c.rtWG.Done()
		ticker := time.NewTicker(wall)
		defer ticker.Stop()
		for {
			select {
			case <-c.ctx.Done():
				return
			case <-ticker.C:
			}
			if c.clock.Now()-c.LastControllerFrame() < deadline {
				continue
			}
			term, err := c.ClaimControl()
			if err != nil {
				// Only a malformed warm start can land here, and the claim
				// re-installs the ALREADY-INSTALLED set — so this is
				// unreachable short of memory corruption. Keep watching.
				continue
			}
			if fc.OnClaim != nil {
				fc.OnClaim(term)
			}
			// Legal Add-while-waiting: this goroutine still holds an rtWG
			// count, so the counter cannot have reached zero.
			_ = c.StartRetarget(fc.Retarget)
			return
		}
	}()
	return nil
}

// ClaimControl claims the next controller term for this process: it
// raises the local controller term above both the applied set's term and
// any term this process claimed before, then re-installs the last
// applied targets under (newTerm, epoch+1) and broadcasts them — the
// takeover epoch every receiver's fencing rule will prefer over anything
// the deposed controller sends afterward. Warm-starting from the applied
// set makes the takeover itself a no-op for the data plane; the adaptive
// loop then evolves targets from there. Safe to call concurrently with
// in-flight SetTargets/Inject*/Broadcast traffic: a lost install race is
// retried against the new incumbent. Returns the claimed term.
func (c *Cluster) ClaimControl() (uint64, error) {
	for {
		cur := c.targets.Load()
		term := cur.term
		if ct := c.ctrlTerm.Load(); ct > term {
			term = ct
		}
		term++
		// Raise ctrlTerm monotonically (CAS-max): concurrent claims or a
		// racing SetTargets must never observe the term moving backward.
		for {
			old := c.ctrlTerm.Load()
			if old >= term {
				term = old
				break
			}
			if c.ctrlTerm.CompareAndSwap(old, term) {
				break
			}
		}
		var err error
		if cur.rep != nil {
			err = c.SetReplicaTargets(cur.epoch+1, cur.rep)
		} else {
			err = c.SetTargets(cur.epoch+1, cur.cpu)
		}
		if err == nil {
			// The install may have been stamped with an even newer term by
			// a concurrent claim; report what is actually applied.
			if t := c.targets.Load().term; t > term {
				term = t
			}
			return term, nil
		}
		if errors.Is(err, ErrStaleEpoch) {
			// Lost the install race (a concurrent claim or a late frame
			// from a higher term landed first); retry against it.
			continue
		}
		return 0, err
	}
}

// ControllerTerm returns the controller term this process stamps on
// epochs it originates (0 until ClaimControl).
func (c *Cluster) ControllerTerm() uint64 { return c.ctrlTerm.Load() }

// LastControllerFrame returns the virtual time of the last target frame
// received from a live (non-deposed) controller term — the silence clock
// failover watchers and tree repair read. Before any frame arrives it
// holds the arming time (Start, StartFailover or EnableHierRepair).
func (c *Cluster) LastControllerFrame() float64 {
	return math.Float64frombits(c.lastCtrlFrame.Load())
}
