package experiments

import (
	"fmt"
	"io"
	"strings"

	"aces/internal/policy"
	"aces/internal/sim"
)

// simRandFor derives a deterministic random stream for a robustness
// perturbation from the (seed, eps) pair.
func simRandFor(seed int64, eps float64) *sim.Rand {
	return sim.Substream(seed, uint64(eps*1000)+31337)
}

// Table renders an aligned plain-text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	fmt.Fprintln(w)
}

func ms(sec float64) string { return fmt.Sprintf("%.1f", sec*1e3) }

// FormatFig3 renders E1: latency mean ± σ versus buffer size.
func FormatFig3(w io.Writer, rows []BufferRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		a, l := r.Stat[policy.ACES], r.Stat[policy.LockStep]
		out = append(out, []string{
			fmt.Sprintf("%d", r.B),
			ms(a.Lat), ms(a.LatStd),
			ms(l.Lat), ms(l.LatStd),
			fmt.Sprintf("%.2f", safeDiv(l.Lat, a.Lat)),
		})
	}
	Table(w, "Fig. 3 — end-to-end latency, mean ± σ (ms), ACES vs Lock-Step",
		[]string{"B", "aces_mean", "aces_std", "lock_mean", "lock_std", "lock/aces"}, out)
}

// FormatFig4 renders E2: the latency-vs-weighted-throughput frontier.
func FormatFig4(w io.Writer, rows []BufferRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		a, l := r.Stat[policy.ACES], r.Stat[policy.LockStep]
		out = append(out, []string{
			fmt.Sprintf("%d", r.B),
			fmt.Sprintf("%.2f", a.WT), ms(a.Lat),
			fmt.Sprintf("%.2f", l.WT), ms(l.Lat),
		})
	}
	Table(w, "Fig. 4 — mean latency (ms) vs weighted throughput, parametric in buffer size B",
		[]string{"B", "aces_wt", "aces_lat", "lock_wt", "lock_lat"}, out)
}

// FormatFig5 renders E3: weighted throughput versus burstiness.
func FormatFig5(w io.Writer, rows []BurstinessRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		a, u, l := r.Stat[policy.ACES], r.Stat[policy.UDP], r.Stat[policy.LockStep]
		best := u.WT
		if l.WT > best {
			best = l.WT
		}
		out = append(out, []string{
			fmt.Sprintf("%.0f", r.LambdaS),
			fmt.Sprintf("%.2f", a.WT),
			fmt.Sprintf("%.2f", u.WT),
			fmt.Sprintf("%.2f", l.WT),
			fmt.Sprintf("%+.1f%%", 100*safeDiv(a.WT-best, best)),
		})
	}
	Table(w, "Fig. 5 — weighted throughput vs burstiness λ_S (ACES / UDP / Lock-Step)",
		[]string{"lambda_S", "aces", "udp", "lockstep", "aces_adv"}, out)
}

// FormatSmallBuffer renders E4.
func FormatSmallBuffer(w io.Writer, rows []SmallBufferRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.B),
			fmt.Sprintf("%.2f", r.Stat[policy.ACES].WT),
			fmt.Sprintf("%.2f", r.Stat[policy.UDP].WT),
			fmt.Sprintf("%.2f", r.Stat[policy.LockStep].WT),
			fmt.Sprintf("%+.1f%%", r.AdvantagePct),
		})
	}
	Table(w, "E4 — small-buffer advantage (weighted throughput; paper claims >20% for small B)",
		[]string{"B", "aces", "udp", "lockstep", "aces_vs_best"}, out)
}

// FormatRobustness renders E5.
func FormatRobustness(w io.Writer, rows []RobustnessRow) {
	var base float64
	out := make([][]string, 0, len(rows))
	for i, r := range rows {
		a := r.Stat[policy.ACES].WT
		if i == 0 {
			base = a
		}
		out = append(out, []string{
			fmt.Sprintf("%.0f%%", r.Eps*100),
			fmt.Sprintf("%.2f", a),
			fmt.Sprintf("%.2f", r.Stat[policy.UDP].WT),
			fmt.Sprintf("%.2f", r.Stat[policy.LockStep].WT),
			fmt.Sprintf("%.1f%%", 100*safeDiv(a, base)),
		})
	}
	Table(w, "E5 — robustness to tier-1 allocation errors (weighted throughput vs ±eps perturbation)",
		[]string{"eps", "aces", "udp", "lockstep", "aces_retained"}, out)
}

// FormatFanout renders E7.
func FormatFanout(w io.Writer, rows []FanoutResult) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells := []string{r.Policy.String()}
		for _, br := range r.BranchRates {
			cells = append(cells, fmt.Sprintf("%.1f", br))
		}
		cells = append(cells, fmt.Sprintf("%.1f", r.TotalWT))
		out = append(out, cells)
	}
	Table(w, "Fig. 2 / E7 — fan-out branch rates (SDO/s; consumers capable of 10/20/20/30)",
		[]string{"policy", "pe2(10)", "pe3(20)", "pe4(20)", "pe5(30)", "total_wt"}, out)
}

// FormatCalibration renders E8.
func FormatCalibration(w io.Writer, rows []CalibrationRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Policy.String(),
			fmt.Sprintf("%.2f", r.SimWT),
			fmt.Sprintf("%.2f", r.LiveWT),
			fmt.Sprintf("%.0f%%", r.RatioPct),
		})
	}
	Table(w, "E8 — simulator vs live-runtime calibration (60 PEs / 10 nodes, weighted throughput)",
		[]string{"policy", "sim_wt", "live_wt", "live/sim"}, out)
}

// FormatStability renders E6.
func FormatStability(w io.Writer, r StabilityResult) {
	Table(w, "E6 — closed-loop stability (regulated buffer, b0 = 25, from empty start)",
		[]string{"settle_s", "steady_mean", "steady_std", "wt_cv"},
		[][]string{{
			fmt.Sprintf("%.2f", r.SettleTime),
			fmt.Sprintf("%.1f", r.SteadyMean),
			fmt.Sprintf("%.1f", r.SteadyStd),
			fmt.Sprintf("%.3f", r.ThroughputCV),
		}})
}

// FormatAblations renders the design-choice ablations.
func FormatAblations(w io.Writer, rows []AblationRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Policy.String(),
			fmt.Sprintf("%.2f", r.Stat.WT),
			ms(r.Stat.Lat),
			fmt.Sprintf("%.0f", r.Stat.InFlight),
		})
	}
	Table(w, "Ablations — full ACES vs min-flow bound vs strict CPU enforcement",
		[]string{"variant", "wt", "lat_ms", "inflight_drops"}, out)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
