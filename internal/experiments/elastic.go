package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"aces/internal/graph"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/spc"
	"aces/internal/transport"
)

// ElasticOptions scales E12, the elastic-parallelism experiment: a seeded
// 10× hotspot lands on one PE of a partitioned 3-node deployment. The
// hotspot exceeds what ANY allocation on the PE's own node can absorb, so
// a frozen topology is structurally stuck; the elastic adaptive loop must
// discover the new cost online, choose replica counts from the calibrated
// model, and spread the PE across its declared slots — judged against an
// oracle that applies the true-cost elastic re-solve the instant the
// hotspot lands. The zero value picks defaults.
type ElasticOptions struct {
	// Seed drives workloads and sources.
	Seed int64
	// TimeScale is the virtual-over-wall speedup (default 10).
	TimeScale float64
	// StepAt is when the hotspot lands, virtual seconds (default 3; must
	// exceed the warmup of 1).
	StepAt float64
	// Post is the observation horizon after the hotspot (default 9).
	Post float64
	// Window is the throughput-measurement window (default 2).
	Window float64
	// Every is the adaptive loop's re-solve period (default 0.5).
	Every float64
	// StepFactor multiplies the hot PE's cost (default 10).
	StepFactor float64
}

func (o *ElasticOptions) fillDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 10
		if raceEnabled {
			// Same trade as E11: the race detector slows the process, so
			// buy scheduler fidelity back with wall time.
			o.TimeScale = 3
		}
	}
	if o.StepAt <= 1 {
		o.StepAt = 3
	}
	if o.Post <= 0 {
		o.Post = 9
	}
	if o.Window <= 0 {
		o.Window = 2
	}
	if o.Every <= 0 {
		o.Every = 0.5
	}
	if o.StepFactor <= 1 {
		o.StepFactor = 10
	}
}

// ElasticRow is one E12 outcome. Rates are weighted egress deliveries per
// virtual second over the final measurement window.
type ElasticRow struct {
	Seed   int64   `json:"seed"`
	StepAt float64 `json:"step_at"`
	// PreRate is the healthy weighted rate over the window ending at the
	// hotspot (from the frozen run).
	PreRate float64 `json:"pre_rate"`
	// FrozenRate, ElasticRate and OracleRate are the final-window weighted
	// rates of the three runs.
	FrozenRate  float64 `json:"frozen_rate"`
	ElasticRate float64 `json:"elastic_rate"`
	OracleRate  float64 `json:"oracle_rate"`
	// ElasticFrac and FrozenFrac normalize by the oracle.
	ElasticFrac float64 `json:"elastic_frac"`
	FrozenFrac  float64 `json:"frozen_frac"`
	// ActiveReplicas is the largest replica count the elastic loop applied
	// to the hot PE (must exceed 1 for the verdict — the loop has to
	// actually fan out, not just retune the primary).
	ActiveReplicas int `json:"active_replicas"`
	// Epochs is the coordinator's final target epoch; PeerEpoch the peer
	// process's (≥ 1 proves replica targets crossed the wire).
	Epochs    uint64 `json:"epochs"`
	PeerEpoch uint64 `json:"peer_epoch"`
	// Recovered is the verdict: the elastic loop reaches ≥ 90% of the
	// oracle with more than one replica active while the frozen topology
	// stays degraded.
	Recovered bool `json:"recovered"`
}

// elasticTopo is the E12 deployment. Process A hosts nodes {0, 1}, process
// B node {2}; one resilient uplink pair crosses the boundary.
//
//	node 0: PE0 ingest (0.1 ms)                    source S: 800/s
//	        PE1 hot (0.3 ms → 3 ms), MaxReplicas 3, extra slots on
//	        nodes 1 and 2
//	node 1: PE2 egress, weight 4 (0.05 ms)
//	node 2: (hosts PE1's slot 2 when activated)
//
// Post-hotspot PE1 needs 800/s × 3 ms = 2.4 CPU — more than twice any
// node's budget, so no single-node allocation absorbs it: only fanning the
// PE out across its replica slots can.
func elasticTopo() (*graph.Topology, error) {
	topo := graph.New(3, 50)
	p0 := topo.AddPE(graph.PE{Service: retargetService(0.0001), Node: 0})
	p1 := topo.AddPE(graph.PE{
		Service: retargetService(0.0003), Node: 0,
		MaxReplicas: 3, ReplicaNodes: []sdo.NodeID{1, 2},
	})
	p2 := topo.AddPE(graph.PE{Service: retargetService(0.00005), Node: 1, Weight: 4})
	if err := topo.Connect(p0, p1); err != nil {
		return nil, err
	}
	if err := topo.Connect(p1, p2); err != nil {
		return nil, err
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: p0, Rate: 800, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		return nil, err
	}
	return topo, nil
}

// elasticRun executes one partitioned run and returns the weighted egress
// rate sampler plus the end-of-run epochs and the peak replica count the
// coordinator applied to the hot PE.
func elasticRun(o ElasticOptions, topo *graph.Topology, cpu []float64, mode retargetMode, oracleRep [][]float64) (rate func(t0, t1 float64) float64, epochA, epochB uint64, peakReplicas int, err error) {
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, 0, 0, 0, err
	}
	defer lis.Close()
	linkOpts := transport.ResilientOptions{
		QueueSize:    256,
		WriteTimeout: 50 * time.Millisecond,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		BatchMax:     32,
	}
	linkA := spc.NewResilientLink(func() (*transport.Conn, error) {
		return transport.Dial(lis.Addr(), time.Second)
	}, linkOpts)
	defer linkA.Close()
	linkB := spc.NewResilientLink(func() (*transport.Conn, error) {
		return lis.Accept()
	}, linkOpts)
	defer linkB.Close()

	// Every incarnation of the hot PE — primary and replicas, both
	// processes — steps its cost at the same virtual instant: the hotspot
	// is a property of the stream content, so a replica cannot dodge it.
	base := topo.PEs[1].Service.EffectiveCost()
	hotProc := func(stream sdo.StreamID) spc.Processor {
		return spc.NewStepCost(stream, base, o.StepFactor*base, o.StepAt)
	}
	replicaProcs := func(j sdo.PEID, rep int32) spc.Processor {
		if j != 1 {
			return nil
		}
		return hotProc(sdo.StreamID(300 + int32(rep)))
	}
	a, err := spc.NewCluster(spc.Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: o.TimeScale, Warmup: 1, Seed: o.Seed,
		LocalNodes: []sdo.NodeID{0, 1}, Uplink: linkA,
		Processors:   map[sdo.PEID]spc.Processor{1: hotProc(300)},
		ReplicaProcs: replicaProcs,
	})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	b, err := spc.NewCluster(spc.Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: o.TimeScale, Warmup: 1, Seed: o.Seed,
		LocalNodes: []sdo.NodeID{2}, Uplink: linkB,
		ReplicaProcs: replicaProcs,
	})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var serveWG sync.WaitGroup
	serveWG.Add(2)
	go func() {
		defer serveWG.Done()
		_ = linkA.Serve(a)
	}()
	go func() {
		defer serveWG.Done()
		_ = linkB.Serve(b)
	}()
	if mode == modeAdaptive {
		if err := a.StartRetarget(spc.RetargetConfig{Every: o.Every, Lambda: 0.7, MinSamples: 4, Elastic: true}); err != nil {
			return nil, 0, 0, 0, err
		}
	}
	if err := a.Start(); err != nil {
		return nil, 0, 0, 0, err
	}
	if err := b.Start(); err != nil {
		return nil, 0, 0, 0, err
	}

	type sample struct {
		t float64
		n float64
	}
	var series []sample
	horizon := o.StepAt + o.Post
	oracleApplied := false
	for {
		now := a.Now()
		if mode == modeOracle && !oracleApplied && now >= o.StepAt {
			if err := a.SetReplicaTargets(1, oracleRep); err != nil {
				return nil, 0, 0, 0, err
			}
			oracleApplied = true
		}
		if oracleApplied && len(series)%20 == 0 {
			a.BroadcastTargets()
		}
		if n := a.ActiveReplicas(1); n > peakReplicas {
			peakReplicas = n
		}
		dA, dB := a.DeliveredByPE(), b.DeliveredByPE()
		var w float64
		for j := range topo.PEs {
			w += topo.PEs[j].Weight * float64(dA[j]+dB[j])
		}
		series = append(series, sample{t: now, n: w})
		if now >= horizon {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	epochA, epochB = a.TargetsEpoch(), b.TargetsEpoch()
	a.Stop()
	b.Stop()
	lis.Close()
	linkA.Close()
	linkB.Close()
	serveWG.Wait()

	rate = func(t0, t1 float64) float64 {
		i := sort.Search(len(series), func(i int) bool { return series[i].t >= t0 })
		j := sort.Search(len(series), func(i int) bool { return series[i].t >= t1 })
		if j >= len(series) {
			j = len(series) - 1
		}
		if i >= j || series[j].t <= series[i].t {
			return 0
		}
		return (series[j].n - series[i].n) / (series[j].t - series[i].t)
	}
	return rate, epochA, epochB, peakReplicas, nil
}

// RunElastic executes E12 once: deploy with the frozen (primary-only)
// tier-1 solve on declared models, land the 10× hotspot, and measure the
// final-window weighted throughput under frozen targets, under the elastic
// adaptive loop, and under an oracle that installs the true-cost elastic
// allocation at the hotspot. The verdict demands the elastic loop reach
// ≥ 90% of the oracle with more than one replica active while the frozen
// deployment stays degraded.
func RunElastic(o ElasticOptions) (ElasticRow, error) {
	o.fillDefaults()
	topo, err := elasticTopo()
	if err != nil {
		return ElasticRow{}, err
	}
	deployed, err := optimize.Solve(topo, optimize.Config{})
	if err != nil {
		return ElasticRow{}, err
	}
	// The oracle knows the true post-hotspot cost and may use the replica
	// slots — the bound the online loop is judged against.
	truth := *topo
	truth.PEs = append([]graph.PE(nil), topo.PEs...)
	sp := truth.PEs[1].Service
	sp.T0 *= o.StepFactor
	sp.T1 *= o.StepFactor
	truth.PEs[1].Service = sp
	oracle, err := optimize.SolveElastic(&truth, optimize.Config{})
	if err != nil {
		return ElasticRow{}, err
	}

	row := ElasticRow{Seed: o.Seed, StepAt: o.StepAt}
	frozenRate, _, _, _, err := elasticRun(o, topo, deployed.CPU, modeFrozen, nil)
	if err != nil {
		return row, err
	}
	elasticRate, epochs, peerEpoch, peak, err := elasticRun(o, topo, deployed.CPU, modeAdaptive, nil)
	if err != nil {
		return row, err
	}
	oracleRate, _, _, _, err := elasticRun(o, topo, deployed.CPU, modeOracle, oracle.Replica)
	if err != nil {
		return row, err
	}

	horizon := o.StepAt + o.Post
	row.PreRate = frozenRate(o.StepAt-o.Window, o.StepAt)
	row.FrozenRate = frozenRate(horizon-o.Window, horizon)
	row.ElasticRate = elasticRate(horizon-o.Window, horizon)
	row.OracleRate = oracleRate(horizon-o.Window, horizon)
	row.ActiveReplicas = peak
	row.Epochs = epochs
	row.PeerEpoch = peerEpoch
	if row.OracleRate > 0 {
		row.ElasticFrac = row.ElasticRate / row.OracleRate
		row.FrozenFrac = row.FrozenRate / row.OracleRate
	}
	row.Recovered = row.ElasticFrac >= 0.90 && row.FrozenFrac < 0.90 &&
		row.ActiveReplicas > 1 && row.PeerEpoch >= 1
	return row, nil
}

// FormatElastic renders E12.
func FormatElastic(w io.Writer, r ElasticRow) {
	verdict := "RECOVERED"
	if !r.Recovered {
		verdict = "NOT RECOVERED"
	}
	rows := [][]string{{
		fmt.Sprintf("%d", r.Seed),
		fmt.Sprintf("%.0f", r.PreRate),
		fmt.Sprintf("%.0f", r.FrozenRate),
		fmt.Sprintf("%.0f", r.ElasticRate),
		fmt.Sprintf("%.0f", r.OracleRate),
		fmt.Sprintf("%.0f%%", 100*r.FrozenFrac),
		fmt.Sprintf("%.0f%%", 100*r.ElasticFrac),
		fmt.Sprintf("%d", r.ActiveReplicas),
		fmt.Sprintf("%d", r.Epochs),
		fmt.Sprintf("%d", r.PeerEpoch),
		verdict,
	}}
	Table(w, "E12 — elastic parallelism: model-driven replication vs frozen topology under a 10× hotspot",
		[]string{"seed", "pre w/s", "frozen w/s", "elastic w/s", "oracle w/s", "frozen/oracle", "elastic/oracle", "replicas", "epochs", "peer epoch", "verdict"}, rows)
}
