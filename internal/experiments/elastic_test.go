package experiments

import (
	"testing"
)

// The acceptance test for elastic parallelism (E12): a 10× hotspot on one
// PE of a 3-node deployment exceeds anything a single node can absorb, so
// the frozen topology is structurally stuck; the elastic adaptive loop
// must discover the new cost online, fan the PE out across its replica
// slots (> 1 active), and reach ≥ 90% of the true-cost elastic oracle.
// Replica targets must reach the peer process (epoch ≥ 1 on process B).
func TestElasticRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic runs take a few wall seconds")
	}
	row, err := RunElastic(ElasticOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pre=%.0f frozen=%.0f elastic=%.0f oracle=%.0f frozen/oracle=%.2f elastic/oracle=%.2f replicas=%d epochs=%d peer=%d",
		row.PreRate, row.FrozenRate, row.ElasticRate, row.OracleRate,
		row.FrozenFrac, row.ElasticFrac, row.ActiveReplicas, row.Epochs, row.PeerEpoch)

	if row.PreRate <= 0 {
		t.Fatalf("PreRate = %g, want > 0 (deployment never reached steady state)", row.PreRate)
	}
	if row.OracleRate <= 0 {
		t.Fatalf("OracleRate = %g, want > 0", row.OracleRate)
	}
	// The hotspot must bind: no single-node allocation absorbs it.
	if row.FrozenFrac >= 0.90 {
		t.Errorf("frozen run at %.0f%% of oracle — the hotspot did not bind, the experiment proves nothing", 100*row.FrozenFrac)
	}
	if row.ElasticFrac < 0.90 {
		t.Errorf("elastic run at %.0f%% of oracle, want ≥ 90%%", 100*row.ElasticFrac)
	}
	// Recovery must come from replication, not from retuning the primary.
	if row.ActiveReplicas <= 1 {
		t.Errorf("elastic loop never activated a second replica (peak = %d)", row.ActiveReplicas)
	}
	if row.PeerEpoch < 1 {
		t.Errorf("peer process never received a replica-target epoch — dissemination broken")
	}
	if !row.Recovered {
		t.Errorf("run verdict = not recovered")
	}
}
