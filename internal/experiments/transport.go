package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"aces/internal/ring"
	"aces/internal/sdo"
	"aces/internal/transport"
)

// TransportOptions scales E9, the data-plane throughput experiment: how
// many SDOs one uplink can push across a process boundary per second,
// per-frame flush versus batched framing. The zero value picks defaults.
type TransportOptions struct {
	// SDOs is the number of SDOs pushed per mode (default 150000).
	SDOs int
	// Senders is the number of concurrent sender goroutines, modelling PE
	// emitters sharing one uplink (default 4).
	Senders int
	// BatchMax is the batch size of the batched mode (default 32).
	BatchMax int
	// LargeBatchMax is the batch size of the gathered-write mode
	// (default 256). At this size a full batch of wire-test SDOs
	// crosses the transport's writev threshold, so the row measures
	// the zero-copy net.Buffers emission path rather than the bufio
	// copy path the smaller batch mode exercises.
	LargeBatchMax int
	// Linger is the writer linger of the batched modes (default 0:
	// flush-on-idle only).
	Linger time.Duration
}

func (o *TransportOptions) fillDefaults() {
	if o.SDOs <= 0 {
		o.SDOs = 150000
	}
	if o.Senders <= 0 {
		o.Senders = 4
	}
	if o.BatchMax <= 1 {
		o.BatchMax = 32
	}
	if o.LargeBatchMax <= 1 {
		o.LargeBatchMax = 256
	}
}

// TransportRow is one mode's measured wire throughput over loopback TCP.
// AllocsPerSDO counts process-wide heap allocations per SDO during the
// timed window — sender encode path plus receiver decode loop — so it is
// the steady-state figure the pooled data path is meant to drive to ~0.
type TransportRow struct {
	Mode         string  `json:"mode"`
	BatchMax     int     `json:"batch_max"`
	SDOs         int     `json:"sdos"`
	Seconds      float64 `json:"seconds"`
	SDOsPerSec   float64 `json:"sdos_per_sec"`
	NsPerSDO     float64 `json:"ns_per_sdo"`
	AllocsPerSDO float64 `json:"allocs_per_sdo"`
	// MeanFill is SDOs per batch frame (0 for unbatched modes).
	MeanFill float64 `json:"mean_batch_fill"`
}

// wireTestSDO is the representative cross-partition SDO: control
// experiments ship empty payloads (the bridge strips non-[]byte payloads
// anyway), so the wire cost is the 36-byte header-only frame.
func wireTestSDO() sdo.SDO {
	return sdo.SDO{Stream: 1, Seq: 42, Origin: time.Unix(0, 1), Hops: 2, Trace: 7}
}

// wirePayloadSDO is the representative bulk-data SDO: 512 opaque payload
// bytes ride the frame, which is what pushes a full large batch past the
// transport's gathered-write thresholds (both total size and mean member
// size), so the mode measures the writev path end to end. The receiver's
// decode copies the payload out of the read buffer, so this row's
// allocs/SDO is expected to sit near 2, not 0.
func wirePayloadSDO() sdo.SDO {
	s := wireTestSDO()
	s.Payload = make([]byte, 512)
	s.Bytes = 512
	return s
}

// TransportThroughput measures the uplink data plane in five modes.
// The first four run against one loopback receiver that decodes and
// discards every frame; the last has no wire at all:
//
//	direct     — a shared Conn, one frame and one flush per SDO (the
//	             historic hot path this PR fixes)
//	unbatched  — a ResilientConn outbox with flush-on-idle coalescing
//	batch-N    — the same outbox with KindBatch framing negotiated
//	batch-M    — the same, with 512-byte payload SDOs and batches
//	             large enough that every full batch leaves via the
//	             gathered writev path
//	ring/spsc  — the raw lock-free ring under the outbox and the PE
//	             input buffers, one producer against one consumer
func TransportThroughput(o TransportOptions) ([]TransportRow, error) {
	o.fillDefaults()

	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer lis.Close()
	// The receiver advertises batch support and decodes everything it is
	// sent, so the measurement covers decode as well as encode.
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c *transport.Conn) {
				defer c.Close()
				_ = c.SendHello(transport.FeatureBatch)
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	rows := make([]TransportRow, 0, 5)

	direct, err := bestOf(3, func() (TransportRow, error) {
		return transportDirect(lis.Addr(), o)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, direct)

	unbatched, err := bestOf(3, func() (TransportRow, error) {
		return transportResilient(lis.Addr(), o, "resilient/unbatched", wireTestSDO(),
			transport.ResilientOptions{QueueSize: 4096})
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, unbatched)

	batched, err := bestOf(3, func() (TransportRow, error) {
		return transportResilient(lis.Addr(), o, fmt.Sprintf("resilient/batch-%d", o.BatchMax), wireTestSDO(),
			transport.ResilientOptions{QueueSize: 4096, BatchMax: o.BatchMax, BatchLinger: o.Linger})
	})
	if err != nil {
		return nil, err
	}
	batched.BatchMax = o.BatchMax
	rows = append(rows, batched)

	large, err := bestOf(3, func() (TransportRow, error) {
		return transportResilient(lis.Addr(), o, fmt.Sprintf("resilient/batch-%d+512B", o.LargeBatchMax), wirePayloadSDO(),
			transport.ResilientOptions{QueueSize: 4096, BatchMax: o.LargeBatchMax, BatchLinger: o.Linger})
	})
	if err != nil {
		return nil, err
	}
	large.BatchMax = o.LargeBatchMax
	rows = append(rows, large)

	rr, err := bestOf(3, func() (TransportRow, error) {
		return transportRing(o)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, rr)

	return rows, nil
}

// transportRing measures the raw SPSC ring the resilient outbox and the
// PE input buffers are built on: one producer hands o.SDOs SDOs to one
// consumer through a 4096-slot ring, both spinning on the Try* fast
// path. No wire, no encode — the row isolates the queue itself, and the
// CI gate (normalized by the same run's direct/ row, so machine speed
// cancels) catches a ring slowdown independently of the transport
// around it.
func transportRing(o TransportOptions) (TransportRow, error) {
	r := ring.New[sdo.SDO](4096, ring.SPSC)
	s := wireTestSDO()
	n := o.SDOs
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; {
			if _, ok := r.TryPop(); ok {
				i++
				continue
			}
			runtime.Gosched()
		}
	}()
	for i := 0; i < n; i++ {
		for !r.TryPush(s) {
			runtime.Gosched()
		}
	}
	<-done
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&m2)
	allocs := float64(m2.Mallocs-m1.Mallocs) / float64(n)
	return transportRow("ring/spsc", n, secs, allocs, 0), nil
}

// bestOf repeats a measurement and keeps the fastest run — the standard
// low-noise estimator for wall-clock microbenchmarks (slowdowns come from
// interference, never from the code being measured).
func bestOf(n int, f func() (TransportRow, error)) (TransportRow, error) {
	var best TransportRow
	for i := 0; i < n; i++ {
		r, err := f()
		if err != nil {
			return TransportRow{}, err
		}
		if i == 0 || r.NsPerSDO < best.NsPerSDO {
			best = r
		}
	}
	return best, nil
}

// transportDirect measures the per-frame-flush baseline on a shared Conn.
func transportDirect(addr string, o TransportOptions) (TransportRow, error) {
	c, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		return TransportRow{}, err
	}
	defer c.Close()
	s := wireTestSDO()
	// Warm the buffer pool and bufio writer outside the timing.
	for i := 0; i < 256; i++ {
		if err := c.SendSDO(s); err != nil {
			return TransportRow{}, err
		}
	}
	secs, allocs, err := timedSend(o.Senders, o.SDOs, func() error { return c.SendSDO(s) }, nil)
	if err != nil {
		return TransportRow{}, err
	}
	return transportRow("direct/flush-per-sdo", o.SDOs, secs, allocs, 0), nil
}

// transportResilient measures one ResilientConn configuration end to end:
// the timed window closes only once the writer has drained every enqueued
// SDO to the wire, so the rate is wire throughput, not the enqueue rate.
func transportResilient(addr string, o TransportOptions, mode string, s sdo.SDO, opts transport.ResilientOptions) (TransportRow, error) {
	rc := transport.NewResilientConn(func() (*transport.Conn, error) {
		return transport.Dial(addr, 5*time.Second)
	}, opts)
	defer rc.Close()
	// The client-side Recv loop consumes the receiver's hello, which is
	// what lets the writer start emitting batch frames.
	go func() {
		for {
			if _, err := rc.Recv(); err != nil {
				return
			}
		}
	}()
	send := func() error {
		for {
			err := rc.SendSDO(s)
			if err == nil {
				return nil
			}
			if err == transport.ErrOutboxFull {
				runtime.Gosched() // the writer is the bottleneck by design
				continue
			}
			return err
		}
	}
	// Warmup: enough traffic that the hello round-trip completes and the
	// pool is primed before the clock starts.
	const warmup = 512
	for i := 0; i < warmup; i++ {
		if err := send(); err != nil {
			return TransportRow{}, err
		}
	}
	if err := waitSent(rc, warmup, 30*time.Second); err != nil {
		return TransportRow{}, err
	}
	before := rc.Stats()
	secs, allocs, err := timedSend(o.Senders, o.SDOs, send, func() error {
		return waitSent(rc, before.FramesSent+int64(o.SDOs), 120*time.Second)
	})
	if err != nil {
		return TransportRow{}, err
	}
	after := rc.Stats()
	fill := 0.0
	if db := after.BatchesSent - before.BatchesSent; db > 0 {
		fill = float64(after.BatchedFrames-before.BatchedFrames) / float64(db)
	}
	return transportRow(mode, o.SDOs, secs, allocs, fill), nil
}

// timedSend distributes n sends across p goroutines and measures wall
// time and process-wide allocations for the whole window, including the
// optional drain wait (nil for synchronous senders).
func timedSend(p, n int, send func() error, drain func() error) (secs, allocsPerSDO float64, err error) {
	var m1, m2 runtime.MemStats
	runtime.ReadMemStats(&m1)
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, p)
	for i := 0; i < p; i++ {
		count := n / p
		if i < n%p {
			count++
		}
		wg.Add(1)
		go func(count int) {
			defer wg.Done()
			for j := 0; j < count; j++ {
				if err := send(); err != nil {
					errCh <- err
					return
				}
			}
		}(count)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	if drain != nil {
		if err := drain(); err != nil {
			return 0, 0, err
		}
	}
	el := time.Since(start).Seconds()
	runtime.ReadMemStats(&m2)
	return el, float64(m2.Mallocs-m1.Mallocs) / float64(n), nil
}

// waitSent polls until the link has written `target` logical frames.
func waitSent(rc *transport.ResilientConn, target int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st := rc.Stats()
		if st.FramesSent >= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport experiment: writer stalled at %d/%d frames (%d dropped)",
				st.FramesSent, target, st.FramesDropped)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func transportRow(mode string, n int, secs, allocs, fill float64) TransportRow {
	return TransportRow{
		Mode:         mode,
		SDOs:         n,
		Seconds:      secs,
		SDOsPerSec:   float64(n) / secs,
		NsPerSDO:     secs * 1e9 / float64(n),
		AllocsPerSDO: allocs,
		MeanFill:     fill,
	}
}

// FormatTransport renders E9: uplink throughput, per-frame flush vs
// batched framing. Speedup is relative to the first (baseline) row.
func FormatTransport(w io.Writer, rows []TransportRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		speed := "1.00"
		if len(rows) > 0 && rows[0].NsPerSDO > 0 {
			speed = fmt.Sprintf("%.2f", rows[0].NsPerSDO/r.NsPerSDO)
		}
		fill := "-"
		if r.MeanFill > 0 {
			fill = fmt.Sprintf("%.1f", r.MeanFill)
		}
		out = append(out, []string{
			r.Mode,
			fmt.Sprintf("%d", r.SDOs),
			fmt.Sprintf("%.0f", r.SDOsPerSec),
			fmt.Sprintf("%.0f", r.NsPerSDO),
			fmt.Sprintf("%.2f", r.AllocsPerSDO),
			fill,
			speed,
		})
	}
	Table(w, "E9 — uplink data-plane throughput (loopback TCP), per-frame flush vs batched framing",
		[]string{"mode", "sdos", "sdo/s", "ns/sdo", "allocs/sdo", "fill", "speedup"}, out)
}

// CompareTransport gates CI on the committed baseline. Wall-clock on a
// CI runner is not comparable to the committing machine's (nor to its own
// across runs), so ns/SDO is gated in machine-normalized form: each
// mode's ns/SDO relative to the same run's per-frame-flush baseline. A
// mode regresses when its normalized cost grows more than 20% AND by at
// least 0.05× the anchor — batching or flush coalescing stopped paying.
// The absolute floor keeps the fastest modes (the raw ring runs ~10× the
// syscall-bound anchor's speed, so its ratio is tiny) from failing on
// anchor jitter alone; a real slowdown of a fast mode still clears it.
// Allocations gate the same way: a mode regresses when its allocs/SDO
// grow more than 20% AND by at least half an allocation (allocations are
// deterministic; the absolute floor keeps noise around zero from tripping
// the ratio). A uniform host slowdown moves every mode equally and
// passes; that is intended.
func CompareTransport(baseline, current []TransportRow) error {
	bDir, err := directRow(baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cDir, err := directRow(current)
	if err != nil {
		return fmt.Errorf("current run: %w", err)
	}
	cur := make(map[string]TransportRow, len(current))
	for _, r := range current {
		cur[r.Mode] = r
	}
	var faults []string
	for _, b := range baseline {
		c, ok := cur[b.Mode]
		if !ok {
			faults = append(faults, fmt.Sprintf("mode %q missing from current run", b.Mode))
			continue
		}
		relB := b.NsPerSDO / bDir.NsPerSDO
		relC := c.NsPerSDO / cDir.NsPerSDO
		if relC > relB*1.20 && relC > relB+0.05 {
			faults = append(faults, fmt.Sprintf("%s: %.2f× the per-frame baseline vs %.2f× committed (>+20%%)",
				b.Mode, relC, relB))
		}
		if c.AllocsPerSDO > b.AllocsPerSDO+0.5 && c.AllocsPerSDO > b.AllocsPerSDO*1.20 {
			faults = append(faults, fmt.Sprintf("%s: allocs/SDO %.2f vs baseline %.2f",
				b.Mode, c.AllocsPerSDO, b.AllocsPerSDO))
		}
	}
	if len(faults) > 0 {
		return fmt.Errorf("transport regression: %v", faults)
	}
	return nil
}

// directRow finds the per-frame-flush anchor mode the ns/SDO gate
// normalizes against.
func directRow(rows []TransportRow) (TransportRow, error) {
	for _, r := range rows {
		if strings.HasPrefix(r.Mode, "direct/") && r.NsPerSDO > 0 {
			return r, nil
		}
	}
	return TransportRow{}, fmt.Errorf("no direct/* mode to normalize against")
}
