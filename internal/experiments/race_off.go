//go:build !race

package experiments

// raceEnabled is true in race-instrumented builds; see race_on.go.
const raceEnabled = false
