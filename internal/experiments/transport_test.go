package experiments

import (
	"strings"
	"testing"
	"time"
)

// The transport experiment at reduced scale must produce the five modes
// with sane rates, and the batched modes must actually batch. The linger
// makes batch formation independent of goroutine scheduling: with the
// default flush-on-idle discipline, a loaded host (e.g. CI under -race)
// can drain the outbox one frame at a time and never form a batch.
func TestTransportThroughputRuns(t *testing.T) {
	rows, err := TransportThroughput(TransportOptions{SDOs: 5000, BatchMax: 8, LargeBatchMax: 64, Linger: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.SDOsPerSec <= 0 || r.NsPerSDO <= 0 || r.Seconds <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Mode, r)
		}
	}
	if rows[0].Mode != "direct/flush-per-sdo" || rows[2].Mode != "resilient/batch-8" ||
		rows[3].Mode != "resilient/batch-64+512B" || rows[4].Mode != "ring/spsc" {
		t.Errorf("unexpected mode order: %q, %q, %q, %q, %q",
			rows[0].Mode, rows[1].Mode, rows[2].Mode, rows[3].Mode, rows[4].Mode)
	}
	if rows[2].MeanFill < 2 {
		t.Errorf("batched mode mean fill %.1f, want ≥ 2 (batching never engaged)", rows[2].MeanFill)
	}
	if rows[3].MeanFill < 2 {
		t.Errorf("large-batch mode mean fill %.1f, want ≥ 2 (batching never engaged)", rows[3].MeanFill)
	}
	var sb strings.Builder
	FormatTransport(&sb, rows)
	if !strings.Contains(sb.String(), "ns/sdo") || !strings.Contains(sb.String(), "batch-8") {
		t.Errorf("formatter broken:\n%s", sb.String())
	}
}

func TestCompareTransportGate(t *testing.T) {
	base := []TransportRow{
		{Mode: "direct/flush-per-sdo", NsPerSDO: 1000, AllocsPerSDO: 0.1},
		{Mode: "resilient/batch-32", NsPerSDO: 200, AllocsPerSDO: 0.1},
	}
	// Identical runs pass, as does a uniform host slowdown (the gate is
	// normalized by the same-run per-frame baseline, so machine speed
	// cancels out).
	if err := CompareTransport(base, base); err != nil {
		t.Errorf("self-comparison failed: %v", err)
	}
	slowHost := []TransportRow{
		{Mode: "direct/flush-per-sdo", NsPerSDO: 2000, AllocsPerSDO: 0.1},
		{Mode: "resilient/batch-32", NsPerSDO: 400, AllocsPerSDO: 0.1},
	}
	if err := CompareTransport(base, slowHost); err != nil {
		t.Errorf("uniform host slowdown failed the gate: %v", err)
	}
	// The batched mode losing its edge — its cost growing >20% relative
	// to the same run's per-frame baseline — fails.
	slow := []TransportRow{
		{Mode: "direct/flush-per-sdo", NsPerSDO: 1000, AllocsPerSDO: 0.1},
		{Mode: "resilient/batch-32", NsPerSDO: 260, AllocsPerSDO: 0.1},
	}
	if err := CompareTransport(base, slow); err == nil {
		t.Error("normalized ns/SDO regression passed the gate")
	}
	// An allocs/SDO regression beyond both the ratio and the absolute
	// floor fails.
	leaky := []TransportRow{
		{Mode: "direct/flush-per-sdo", NsPerSDO: 1000, AllocsPerSDO: 2.0},
		{Mode: "resilient/batch-32", NsPerSDO: 200, AllocsPerSDO: 0.1},
	}
	if err := CompareTransport(base, leaky); err == nil {
		t.Error("allocs/SDO regression passed the gate")
	}
	// A mode vanishing from the current run fails.
	if err := CompareTransport(base, base[:1]); err == nil {
		t.Error("missing mode passed the gate")
	}
}
