package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"aces/internal/graph"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/spc"
	"aces/internal/transport"
	"aces/internal/workload"
)

// RetargetOptions scales E11, the adaptive-loop experiment: a partitioned
// 3-node deployment suffers a seeded step change in one PE's per-SDO cost
// that the deployed topology never learns about, and three otherwise
// identical runs are compared — tier-1 targets frozen at deployment, the
// online calibrate→re-solve→retarget loop, and an oracle that applies the
// true-cost re-solve the instant the step lands. The zero value picks
// defaults.
type RetargetOptions struct {
	// Seed drives workloads and sources.
	Seed int64
	// TimeScale is the virtual-over-wall speedup (default 10).
	TimeScale float64
	// StepAt is when the cost step lands, virtual seconds (default 6;
	// must exceed the warmup of 1).
	StepAt float64
	// Post is the observation horizon after the step (default 14 — the
	// adaptive loop needs several calibration windows to converge).
	Post float64
	// Window is the throughput-measurement window (default 2).
	Window float64
	// Every is the adaptive loop's re-solve period (default 0.5).
	Every float64
	// StepFactor multiplies the stepped PE's cost (default 4).
	StepFactor float64
}

func (o *RetargetOptions) fillDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 10
		if raceEnabled {
			// The race detector slows the process severalfold; at 10×
			// the schedulers slip enough to starve the adaptive run's
			// calibration. Trade wall time back for fidelity.
			o.TimeScale = 3
		}
	}
	if o.StepAt <= 1 {
		o.StepAt = 6
	}
	if o.Post <= 0 {
		o.Post = 14
	}
	if o.Window <= 0 {
		o.Window = 2
	}
	if o.Every <= 0 {
		o.Every = 0.5
	}
	if o.StepFactor <= 1 {
		o.StepFactor = 4
	}
}

// RetargetRow is one E11 outcome. Rates are weighted egress deliveries
// per virtual second (Σ w_j · rate_j) over the final measurement window.
type RetargetRow struct {
	Seed   int64   `json:"seed"`
	StepAt float64 `json:"step_at"`
	// PreRate is the healthy weighted rate over the window ending at the
	// step (from the frozen run — all three are statistically identical
	// before the step).
	PreRate float64 `json:"pre_rate"`
	// FrozenRate, AdaptiveRate and OracleRate are the final-window
	// weighted rates of the three runs.
	FrozenRate   float64 `json:"frozen_rate"`
	AdaptiveRate float64 `json:"adaptive_rate"`
	OracleRate   float64 `json:"oracle_rate"`
	// AdaptiveFrac and FrozenFrac normalize by the oracle.
	AdaptiveFrac float64 `json:"adaptive_frac"`
	FrozenFrac   float64 `json:"frozen_frac"`
	// Epochs is how many target epochs the adaptive coordinator emitted;
	// PeerEpoch is the epoch its peer process reached via dissemination
	// (≥ 1 proves targets crossed the wire).
	Epochs    uint64 `json:"epochs"`
	PeerEpoch uint64 `json:"peer_epoch"`
	// Recovered is the verdict: the adaptive loop reaches ≥ 90% of the
	// oracle's weighted throughput, the frozen run stays below it, and
	// dissemination reached the peer.
	Recovered bool `json:"recovered"`
}

// retargetService is a deterministic service profile: E11's drift is the
// seeded cost step, not workload state-switching.
func retargetService(cost float64) workload.ServiceParams {
	return workload.ServiceParams{T0: cost, T1: cost, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
}

// retargetTopo is the E11 deployment. Process A hosts nodes {0, 1},
// process B node {2}; one resilient uplink pair crosses the boundary.
//
//	node 0: PE0 ingest (1 ms) → PE3          source S0: 100/s
//	node 1: PE1 egress, weight 8 (2 ms)      source S1: 100/s  ← cost steps
//	        PE2 egress, weight 1 (2 ms)      source S2: 1000/s
//	node 2: PE3 egress, weight 1 (2 ms, fed by PE0 over the uplink)
//
// Node 1 is where tier 1's allocation binds: pre-step the optimum serves
// PE1's full demand on 0.2 CPU and gives PE2 the rest; after PE1's cost
// quadruples it needs 0.8 CPU for the same demand, and with weight 8 the
// re-solve must hand it over. Frozen targets strand PE1 at a quarter of
// its demand while PE2 wastes cheap cycles on weight-1 traffic.
func retargetTopo() (*graph.Topology, error) {
	topo := graph.New(3, 50)
	p0 := topo.AddPE(graph.PE{Service: retargetService(0.001), Node: 0})
	p1 := topo.AddPE(graph.PE{Service: retargetService(0.002), Node: 1, Weight: 8})
	p2 := topo.AddPE(graph.PE{Service: retargetService(0.002), Node: 1, Weight: 1})
	p3 := topo.AddPE(graph.PE{Service: retargetService(0.002), Node: 2, Weight: 1})
	if err := topo.Connect(p0, p3); err != nil {
		return nil, err
	}
	for _, s := range []graph.Source{
		{Stream: 1, Target: p0, Rate: 100, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}},
		{Stream: 2, Target: p1, Rate: 100, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}},
		{Stream: 3, Target: p2, Rate: 1000, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}},
	} {
		if err := topo.AddSource(s); err != nil {
			return nil, err
		}
	}
	return topo, nil
}

// retargetMode selects what closes (or doesn't close) the adaptive loop
// in one E11 run.
type retargetMode int

const (
	modeFrozen retargetMode = iota
	modeAdaptive
	modeOracle
)

// retargetRun executes one partitioned run and returns the weighted
// egress rate series sampler plus the end-of-run epochs of both
// processes.
func retargetRun(o RetargetOptions, topo *graph.Topology, cpu []float64, mode retargetMode, oracleCPU []float64) (rate func(t0, t1 float64) float64, epochA, epochB uint64, err error) {
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, 0, 0, err
	}
	defer lis.Close()
	linkOpts := transport.ResilientOptions{
		QueueSize:    256,
		WriteTimeout: 50 * time.Millisecond,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		BatchMax:     32,
	}
	linkA := spc.NewResilientLink(func() (*transport.Conn, error) {
		return transport.Dial(lis.Addr(), time.Second)
	}, linkOpts)
	defer linkA.Close()
	linkB := spc.NewResilientLink(func() (*transport.Conn, error) {
		return lis.Accept()
	}, linkOpts)
	defer linkB.Close()

	stepped := topo.PEs[1].Service.EffectiveCost()
	a, err := spc.NewCluster(spc.Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: o.TimeScale, Warmup: 1, Seed: o.Seed,
		LocalNodes: []sdo.NodeID{0, 1}, Uplink: linkA,
		Processors: map[sdo.PEID]spc.Processor{
			1: spc.NewStepCost(201, stepped, o.StepFactor*stepped, o.StepAt),
		},
	})
	if err != nil {
		return nil, 0, 0, err
	}
	b, err := spc.NewCluster(spc.Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: o.TimeScale, Warmup: 1, Seed: o.Seed,
		LocalNodes: []sdo.NodeID{2}, Uplink: linkB,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	var serveWG sync.WaitGroup
	serveWG.Add(2)
	go func() {
		defer serveWG.Done()
		_ = linkA.Serve(a)
	}()
	go func() {
		defer serveWG.Done()
		_ = linkB.Serve(b)
	}()
	if mode == modeAdaptive {
		if err := a.StartRetarget(spc.RetargetConfig{Every: o.Every, Lambda: 0.7, MinSamples: 4}); err != nil {
			return nil, 0, 0, err
		}
	}
	if err := a.Start(); err != nil {
		return nil, 0, 0, err
	}
	if err := b.Start(); err != nil {
		return nil, 0, 0, err
	}

	// Sample the weighted cumulative egress count on A's virtual clock.
	type sample struct {
		t float64
		n float64
	}
	var series []sample
	horizon := o.StepAt + o.Post
	oracleApplied := false
	for {
		now := a.Now()
		if mode == modeOracle && !oracleApplied && now >= o.StepAt {
			if err := a.SetTargets(1, oracleCPU); err != nil {
				return nil, 0, 0, err
			}
			oracleApplied = true
		}
		if oracleApplied && len(series)%20 == 0 {
			// Epoch-idempotent repair in case the dissemination raced the
			// link; the adaptive mode's loop re-broadcasts on its own.
			a.BroadcastTargets()
		}
		dA, dB := a.DeliveredByPE(), b.DeliveredByPE()
		var w float64
		for j := range topo.PEs {
			w += topo.PEs[j].Weight * float64(dA[j]+dB[j])
		}
		series = append(series, sample{t: now, n: w})
		if now >= horizon {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	epochA, epochB = a.TargetsEpoch(), b.TargetsEpoch()
	a.Stop()
	b.Stop()
	lis.Close()
	linkA.Close()
	linkB.Close()
	serveWG.Wait()

	rate = func(t0, t1 float64) float64 {
		i := sort.Search(len(series), func(i int) bool { return series[i].t >= t0 })
		j := sort.Search(len(series), func(i int) bool { return series[i].t >= t1 })
		if j >= len(series) {
			j = len(series) - 1
		}
		if i >= j || series[j].t <= series[i].t {
			return 0
		}
		return (series[j].n - series[i].n) / (series[j].t - series[i].t)
	}
	return rate, epochA, epochB, nil
}

// RunRetarget executes E11 once: deploy the partitioned topology with
// tier-1 targets solved from the *declared* models, land the cost step,
// and measure the final-window weighted throughput under frozen targets,
// under the online adaptive loop, and under an oracle retarget. The
// verdict demands the adaptive loop recover ≥ 90% of the oracle while the
// frozen run stays degraded — i.e. the gap is real and the loop closes it.
func RunRetarget(o RetargetOptions) (RetargetRow, error) {
	o.fillDefaults()
	topo, err := retargetTopo()
	if err != nil {
		return RetargetRow{}, err
	}
	deployed, err := optimize.Solve(topo, optimize.Config{})
	if err != nil {
		return RetargetRow{}, err
	}
	// The oracle re-solve knows the true post-step cost — the upper bound
	// the online loop is judged against.
	truth := *topo
	truth.PEs = append([]graph.PE(nil), topo.PEs...)
	sp := truth.PEs[1].Service
	sp.T0 *= o.StepFactor
	sp.T1 *= o.StepFactor
	truth.PEs[1].Service = sp
	oracle, err := optimize.Solve(&truth, optimize.Config{WarmStart: deployed.CPU})
	if err != nil {
		return RetargetRow{}, err
	}

	row := RetargetRow{Seed: o.Seed, StepAt: o.StepAt}
	frozenRate, _, _, err := retargetRun(o, topo, deployed.CPU, modeFrozen, nil)
	if err != nil {
		return row, err
	}
	adaptiveRate, epochs, peerEpoch, err := retargetRun(o, topo, deployed.CPU, modeAdaptive, nil)
	if err != nil {
		return row, err
	}
	oracleRate, _, _, err := retargetRun(o, topo, deployed.CPU, modeOracle, oracle.CPU)
	if err != nil {
		return row, err
	}

	horizon := o.StepAt + o.Post
	row.PreRate = frozenRate(o.StepAt-o.Window, o.StepAt)
	row.FrozenRate = frozenRate(horizon-o.Window, horizon)
	row.AdaptiveRate = adaptiveRate(horizon-o.Window, horizon)
	row.OracleRate = oracleRate(horizon-o.Window, horizon)
	row.Epochs = epochs
	row.PeerEpoch = peerEpoch
	if row.OracleRate > 0 {
		row.AdaptiveFrac = row.AdaptiveRate / row.OracleRate
		row.FrozenFrac = row.FrozenRate / row.OracleRate
	}
	row.Recovered = row.AdaptiveFrac >= 0.90 && row.FrozenFrac < 0.90 && row.PeerEpoch >= 1
	return row, nil
}

// FormatRetarget renders E11.
func FormatRetarget(w io.Writer, r RetargetRow) {
	verdict := "RECOVERED"
	if !r.Recovered {
		verdict = "NOT RECOVERED"
	}
	rows := [][]string{{
		fmt.Sprintf("%d", r.Seed),
		fmt.Sprintf("%.0f", r.PreRate),
		fmt.Sprintf("%.0f", r.FrozenRate),
		fmt.Sprintf("%.0f", r.AdaptiveRate),
		fmt.Sprintf("%.0f", r.OracleRate),
		fmt.Sprintf("%.0f%%", 100*r.FrozenFrac),
		fmt.Sprintf("%.0f%%", 100*r.AdaptiveFrac),
		fmt.Sprintf("%d", r.Epochs),
		fmt.Sprintf("%d", r.PeerEpoch),
		verdict,
	}}
	Table(w, "E11 — adaptive loop: online calibration + retargeting vs frozen tier-1 targets after a 4× cost step",
		[]string{"seed", "pre w/s", "frozen w/s", "adaptive w/s", "oracle w/s", "frozen/oracle", "adaptive/oracle", "epochs", "peer epoch", "verdict"}, rows)
}
