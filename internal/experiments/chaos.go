package experiments

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aces/internal/chaos"
	"aces/internal/graph"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/spc"
	"aces/internal/transport"
	"aces/internal/workload"
)

// ChaosOptions scales E10, the failure-domain experiment: a partitioned
// 3-node deployment is driven through a seeded fault schedule (one PE
// panic, one severed uplink) and the run is judged on how deep the
// throughput dips and how fast it recovers. The zero value picks defaults.
type ChaosOptions struct {
	// Seed drives the fault schedule (times and targets) and workloads.
	Seed int64
	// TimeScale is the virtual-over-wall speedup (default 10).
	TimeScale float64
	// PreFault is the healthy settling horizon before the fault window
	// opens, in virtual seconds (default 6; must exceed the warmup of 1).
	PreFault float64
	// FaultWindow is the width of the window faults are drawn in
	// (default 2).
	FaultWindow float64
	// Outage is the sever's network outage, virtual seconds (default 4).
	Outage float64
	// Post is the observation horizon after the last fault has healed
	// (default 10).
	Post float64
	// Window is the throughput-sampling window (default 1).
	Window float64
	// HeartbeatEvery is the membership beacon period (default 0.2; the
	// detector marks peers suspect at 3× and dead at 6× this).
	HeartbeatEvery float64
}

func (o *ChaosOptions) fillDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 10
	}
	if o.PreFault <= 1 {
		o.PreFault = 6
	}
	if o.FaultWindow <= 0 {
		o.FaultWindow = 2
	}
	if o.Outage <= 0 {
		o.Outage = 4
	}
	if o.Post <= 0 {
		o.Post = 10
	}
	if o.Window <= 0 {
		o.Window = 1
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 0.2
	}
}

// ChaosRow is one chaos run's outcome. Times are virtual seconds from run
// start; rates are combined egress deliveries per virtual second.
type ChaosRow struct {
	Seed     int64          `json:"seed"`
	Schedule chaos.Schedule `json:"schedule"`
	// PreRate is the healthy throughput over the window ending at the
	// first fault; DipRate is the worst window during the fault era;
	// PostRate is the last full window of the run.
	PreRate  float64 `json:"pre_rate"`
	DipRate  float64 `json:"dip_rate"`
	PostRate float64 `json:"post_rate"`
	// DipPct is 100·(1 − DipRate/PreRate) — how deep the degradation cut.
	DipPct float64 `json:"dip_pct"`
	// FaultStart and HealEnd bracket the fault era; RecoverAt is the
	// start of the first post-heal window back at ≥ 90% of PreRate (−1 if
	// never), and TimeToRecover is RecoverAt − HealEnd.
	FaultStart    float64 `json:"fault_start"`
	HealEnd       float64 `json:"heal_end"`
	RecoverAt     float64 `json:"recover_at"`
	TimeToRecover float64 `json:"time_to_recover_s"`
	// Restarts counts supervisor recoveries; Reconnects counts uplink
	// re-establishments; BreakersOpen counts parked PEs at run end.
	Restarts     int64 `json:"restarts"`
	Reconnects   int64 `json:"reconnects"`
	BreakersOpen int   `json:"breakers_open"`
	// MembersAlive reports that both processes judged every peer node
	// alive at run end; PEsRunning that no breaker was open.
	MembersAlive bool `json:"members_alive"`
	PEsRunning   bool `json:"pes_running"`
	// Recovered is the run verdict: members alive, PEs running, and the
	// post-heal throughput within 10% of pre-fault.
	Recovered bool `json:"recovered"`
}

// chaosTopo is the E10 deployment: source → PE0 (node 0) fanning out to a
// local egress PE1 (node 1) and a remote egress PE2 (node 2). Process A
// hosts nodes {0, 1}; process B hosts node {2}; one resilient uplink pair
// crosses the boundary.
func chaosTopo() (*graph.Topology, error) {
	topo := graph.New(3, 50)
	det := chaosService(0.001)
	p0 := topo.AddPE(graph.PE{Service: det, Node: 0})
	p1 := topo.AddPE(graph.PE{Service: det, Node: 1, Weight: 1})
	p2 := topo.AddPE(graph.PE{Service: det, Node: 2, Weight: 1})
	if err := topo.Connect(p0, p1); err != nil {
		return nil, err
	}
	if err := topo.Connect(p0, p2); err != nil {
		return nil, err
	}
	if err := topo.AddSource(graph.Source{
		Stream: 1, Target: p0, Rate: 150,
		Burst: graph.BurstSpec{Kind: graph.BurstDeterministic},
	}); err != nil {
		return nil, err
	}
	return topo, nil
}

// chaosService is a deterministic service profile (no state switching) so
// E10's dips are fault-caused, not workload-caused.
func chaosService(cost float64) workload.ServiceParams {
	return workload.ServiceParams{T0: cost, T1: cost, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
}

// RunChaos executes E10 once: build the partitioned deployment over real
// loopback TCP, settle, replay the seeded fault schedule (one PE panic in
// process A, one severed uplink with the network held down), and measure
// dip and time-to-recover from the combined egress delivery series.
func RunChaos(o ChaosOptions) (ChaosRow, error) {
	o.fillDefaults()
	topo, err := chaosTopo()
	if err != nil {
		return ChaosRow{}, err
	}
	cpu := []float64{0.5, 0.5, 0.5}

	sched, err := chaos.Generate(chaos.GenConfig{
		Seed:  o.Seed,
		Start: o.PreFault, End: o.PreFault + o.FaultWindow,
		Panics: 1, Severs: 1,
		PEs: []int32{1}, Links: []int32{0},
		OutageMin: o.Outage, OutageMax: o.Outage,
	})
	if err != nil {
		return ChaosRow{}, err
	}
	row := ChaosRow{Seed: o.Seed, Schedule: sched, RecoverAt: -1, TimeToRecover: -1}
	row.FaultStart = sched.Events[0].At
	row.HealEnd = sched.End()

	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return ChaosRow{}, err
	}
	defer lis.Close()

	// Process A's dial path is fault-injected: SeverLink kills the live
	// pipe and holds the "network" down so redials fail until heal.
	var flaky atomic.Pointer[transport.FlakyConn]
	var netDown atomic.Bool
	dialA := func() (*transport.Conn, error) {
		if netDown.Load() {
			return nil, errors.New("chaos: injected outage")
		}
		raw, err := net.DialTimeout("tcp", lis.Addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := transport.WrapFlaky(raw)
		flaky.Store(f)
		return transport.NewConn(f), nil
	}
	linkOpts := transport.ResilientOptions{
		QueueSize:    128,
		WriteTimeout: 50 * time.Millisecond,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		BatchMax:     32,
	}
	linkA := spc.NewResilientLink(dialA, linkOpts)
	defer linkA.Close()
	linkB := spc.NewResilientLink(func() (*transport.Conn, error) {
		return lis.Accept()
	}, linkOpts)
	defer linkB.Close()

	inj := spc.NewPanicInjector(spc.NewPassthrough(2))
	hc := &spc.HealthConfig{Every: o.HeartbeatEvery}
	mk := func(nodes []sdo.NodeID, uplink spc.RemoteLink, procs map[sdo.PEID]spc.Processor) (*spc.Cluster, error) {
		return spc.NewCluster(spc.Config{
			Topo: topo, Policy: policy.ACES, CPU: cpu,
			TimeScale: o.TimeScale, Warmup: 1, Seed: o.Seed,
			LocalNodes: nodes, Uplink: uplink,
			Health:     hc,
			Processors: procs,
		})
	}
	a, err := mk([]sdo.NodeID{0, 1}, linkA, map[sdo.PEID]spc.Processor{1: inj})
	if err != nil {
		return ChaosRow{}, err
	}
	b, err := mk([]sdo.NodeID{2}, linkB, nil)
	if err != nil {
		return ChaosRow{}, err
	}
	var serveWG sync.WaitGroup
	serveWG.Add(2)
	go func() {
		defer serveWG.Done()
		_ = linkA.Serve(a)
	}()
	go func() {
		defer serveWG.Done()
		_ = linkB.Serve(b)
	}()
	if err := a.Start(); err != nil {
		return ChaosRow{}, err
	}
	if err := b.Start(); err != nil {
		return ChaosRow{}, err
	}

	injector := chaos.FuncInjector{
		OnPanicPE: func(pe int32) {
			if pe == 1 {
				inj.Arm()
			}
		},
		OnSeverLink: func(_ int32, d float64) {
			netDown.Store(true)
			if f := flaky.Load(); f != nil {
				f.Sever()
			}
			time.AfterFunc(time.Duration(d/o.TimeScale*float64(time.Second)), func() {
				netDown.Store(false)
			})
		},
		// This deployment has one boundary: killing node 2 is the same
		// outage as severing the only uplink.
		OnKillNode: nil,
	}

	// Sample the combined egress delivery count on process A's virtual
	// clock and replay the schedule against it.
	type sample struct {
		t float64
		n int64
	}
	var series []sample
	runner := chaos.NewRunner(sched)
	horizon := row.HealEnd + o.Post
	for {
		now := a.Now()
		runner.Step(now, injector)
		series = append(series, sample{t: now, n: a.DeliveredByPE()[1] + b.DeliveredByPE()[2]})
		if now >= horizon {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	healthA, healthB := a.Health(), b.Health()
	endA := a.Now()
	a.Stop()
	b.Stop()
	repA := a.Report(endA)

	// Windowed rates from the cumulative series.
	rate := func(t0, t1 float64) float64 {
		i := sort.Search(len(series), func(i int) bool { return series[i].t >= t0 })
		j := sort.Search(len(series), func(i int) bool { return series[i].t >= t1 })
		if j >= len(series) {
			j = len(series) - 1
		}
		if i >= j || series[j].t <= series[i].t {
			return 0
		}
		return float64(series[j].n-series[i].n) / (series[j].t - series[i].t)
	}
	row.PreRate = rate(row.FaultStart-o.Window, row.FaultStart)
	row.DipRate = row.PreRate
	for _, s := range series {
		if s.t < row.FaultStart || s.t > row.HealEnd+o.Window {
			continue
		}
		if r := rate(s.t, s.t+o.Window); r < row.DipRate {
			row.DipRate = r
		}
	}
	if row.PreRate > 0 {
		row.DipPct = 100 * (1 - row.DipRate/row.PreRate)
	}
	row.PostRate = rate(horizon-o.Window, horizon)
	for _, s := range series {
		if s.t < row.HealEnd {
			continue
		}
		if rate(s.t, s.t+o.Window) >= 0.9*row.PreRate {
			row.RecoverAt = s.t
			row.TimeToRecover = s.t - row.HealEnd
			break
		}
	}

	row.Restarts = repA.PERestarts
	row.BreakersOpen = repA.BreakersOpen
	if len(repA.Links) > 0 {
		row.Reconnects = repA.Links[0].Reconnects
	}
	row.MembersAlive = healthA.AllAlive && healthB.AllAlive
	row.PEsRunning = true
	for _, st := range append(append([]spc.PEHealth(nil), healthA.PEs...), healthB.PEs...) {
		if st.BreakerOpen {
			row.PEsRunning = false
		}
	}
	row.Recovered = row.MembersAlive && row.PEsRunning &&
		row.RecoverAt >= 0 && row.PostRate >= 0.9*row.PreRate

	lis.Close()
	linkA.Close()
	linkB.Close()
	serveWG.Wait()
	return row, nil
}

// FormatChaos renders E10.
func FormatChaos(w io.Writer, r ChaosRow) {
	verdict := "RECOVERED"
	if !r.Recovered {
		verdict = "NOT RECOVERED"
	}
	rows := [][]string{{
		fmt.Sprintf("%d", r.Seed),
		fmt.Sprintf("%.1f", r.PreRate),
		fmt.Sprintf("%.1f", r.DipRate),
		fmt.Sprintf("%.0f%%", r.DipPct),
		fmt.Sprintf("%.1f", r.PostRate),
		fmt.Sprintf("%.2f", r.TimeToRecover),
		fmt.Sprintf("%d", r.Restarts),
		fmt.Sprintf("%d", r.Reconnects),
		fmt.Sprintf("%v", r.MembersAlive),
		verdict,
	}}
	Table(w, "E10 — failure domain: seeded PE panic + severed uplink on a 3-node partitioned deployment",
		[]string{"seed", "pre sdo/s", "dip sdo/s", "dip", "post sdo/s", "t-recover(s)", "restarts", "reconnects", "alive", "verdict"}, rows)
}
