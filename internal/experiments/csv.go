package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"aces/internal/policy"
)

// CSV writers: plotting-ready exports of every experiment's rows, one
// record per (x, policy) sample. cmd/aces-bench -csv writes them next to
// the text tables.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// BufferSweepCSV exports the Fig. 3 / Fig. 4 sweep.
func BufferSweepCSV(w io.Writer, rows []BufferRow) error {
	out := make([][]string, 0, len(rows)*2)
	for _, r := range rows {
		for _, pol := range []policy.Policy{policy.ACES, policy.LockStep} {
			s := r.Stat[pol]
			out = append(out, []string{
				strconv.Itoa(r.B), pol.String(),
				f(s.WT), f(s.WTErr), f(s.Lat), f(s.LatStd), f(s.P95), f(s.InFlight), f(s.BufOcc),
			})
		}
	}
	return writeCSV(w, []string{"buffer", "policy", "wt", "wt_ci95", "lat_s", "lat_std_s", "p95_s", "inflight_drops", "buf_occ"}, out)
}

// BurstinessCSV exports the Fig. 5 sweep.
func BurstinessCSV(w io.Writer, rows []BurstinessRow) error {
	out := make([][]string, 0, len(rows)*3)
	for _, r := range rows {
		for _, pol := range policy.All() {
			s := r.Stat[pol]
			out = append(out, []string{
				f(r.LambdaS), pol.String(), f(s.WT), f(s.WTErr), f(s.Lat), f(s.P95),
			})
		}
	}
	return writeCSV(w, []string{"lambda_s", "policy", "wt", "wt_ci95", "lat_s", "p95_s"}, out)
}

// SmallBufferCSV exports E4.
func SmallBufferCSV(w io.Writer, rows []SmallBufferRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.B),
			f(r.Stat[policy.ACES].WT), f(r.Stat[policy.UDP].WT), f(r.Stat[policy.LockStep].WT),
			f(r.AdvantagePct),
		})
	}
	return writeCSV(w, []string{"buffer", "aces_wt", "udp_wt", "lockstep_wt", "advantage_pct"}, out)
}

// RobustnessCSV exports E5.
func RobustnessCSV(w io.Writer, rows []RobustnessRow) error {
	out := make([][]string, 0, len(rows)*3)
	for _, r := range rows {
		for _, pol := range policy.All() {
			out = append(out, []string{f(r.Eps), pol.String(), f(r.Stat[pol].WT)})
		}
	}
	return writeCSV(w, []string{"eps", "policy", "wt"}, out)
}

// FanoutCSV exports E7 (Fig. 2).
func FanoutCSV(w io.Writer, rows []FanoutResult) error {
	out := make([][]string, 0, len(rows)*4)
	for _, r := range rows {
		for i, br := range r.BranchRates {
			out = append(out, []string{r.Policy.String(), strconv.Itoa(i + 2), f(br)})
		}
	}
	return writeCSV(w, []string{"policy", "consumer", "rate"}, out)
}

// CalibrationCSV exports E8.
func CalibrationCSV(w io.Writer, rows []CalibrationRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Policy.String(), f(r.SimWT), f(r.LiveWT), f(r.RatioPct)})
	}
	return writeCSV(w, []string{"policy", "sim_wt", "live_wt", "ratio_pct"}, out)
}
