package experiments

import (
	"strings"
	"testing"
	"time"
)

// A miniature E13 must run end to end: both solvers at every ladder
// point, the partition, and the three simulator runs wired through
// streamsim.StartRetarget. The acceptance verdict itself is only gated
// at real scale (aces-bench / CI) — at toy scale the decomposition's
// relay overhead dominates, so here we assert mechanics, not quality.
func TestRunHierMiniature(t *testing.T) {
	res, err := RunHier(HierOptions{
		Scales:      []int{60, 120},
		PEsPerNode:  6,
		RegionPEs:   30,
		MonoIters:   120,
		RegionIters: 40,
		Sweeps:      2,
		Deadline:    20 * time.Second,
		SimPEs:      60,
		SimDuration: 2,
		SimEvery:    0.8,
		// Keep the grad row miniature too: the test checks plumbing, not
		// the p=1000 acceptance measurement.
		GradPEs:        60,
		GradIters:      200,
		GradFDDeadline: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scales) != 2 {
		t.Fatalf("scale rows = %d, want 2", len(res.Scales))
	}
	for _, r := range res.Scales {
		if r.Regions < 2 {
			t.Errorf("scale %d: %d regions, want ≥ 2", r.PEs, r.Regions)
		}
		if r.MonoWT <= 0 || r.HierWT <= 0 {
			t.Errorf("scale %d: zero throughput (mono %.2f, hier %.2f)", r.PEs, r.MonoWT, r.HierWT)
		}
		if r.HierFrac <= 0.5 {
			t.Errorf("scale %d: hier/mono %.2f implausibly low", r.PEs, r.HierFrac)
		}
	}
	if res.Sim.Epochs < 1 {
		t.Errorf("sim installed %d retarget epochs, want ≥ 1", res.Sim.Epochs)
	}
	if res.Sim.UniformWT <= 0 || res.Sim.MonoWT <= 0 || res.Sim.HierWT <= 0 {
		t.Errorf("sim throughputs: %+v", res.Sim)
	}
	if res.Grad.PEs != 60 || res.Grad.AnWT <= 0 || res.Grad.FDWT <= 0 ||
		res.Grad.AnEvals <= 0 || res.Grad.FDEvals <= 0 {
		t.Errorf("grad row not populated: %+v", res.Grad)
	}
	if res.Grad.FDEvals <= res.Grad.AnEvals {
		t.Errorf("finite-diff used %d evals ≤ analytic's %d — FD engine not exercised",
			res.Grad.FDEvals, res.Grad.AnEvals)
	}

	var sb strings.Builder
	FormatHier(&sb, res)
	if !strings.Contains(sb.String(), "E13") || !strings.Contains(sb.String(), "verdict") {
		t.Errorf("FormatHier output broken:\n%s", sb.String())
	}
}

func TestCompareHierGates(t *testing.T) {
	mk := func(scales []int, ms []float64, frac float64) HierResult {
		r := HierResult{}
		for i, p := range scales {
			r.Scales = append(r.Scales, HierScaleRow{PEs: p, HierMillis: ms[i], HierFrac: frac, MonoConverged: true})
		}
		return r
	}
	base := mk([]int{500, 1000, 2000, 5000}, []float64{100, 210, 450, 1200}, 0.97)

	// Same shape, different machine speed: must pass (normalization).
	if err := CompareHier(base, mk([]int{500, 1000, 2000, 5000}, []float64{200, 420, 900, 2400}, 0.97)); err != nil {
		t.Errorf("uniform 2× slower machine flagged: %v", err)
	}
	// Quick prefix ladder: only common scales compared, must pass.
	if err := CompareHier(base, mk([]int{500, 1000}, []float64{100, 215}, 0.97)); err != nil {
		t.Errorf("prefix ladder flagged: %v", err)
	}
	// One point's normalized cost grew 2×: the curve bent, must fail.
	if err := CompareHier(base, mk([]int{500, 1000, 2000, 5000}, []float64{100, 210, 450, 2600}, 0.97)); err == nil {
		t.Error("superlinear blow-up at 5000 not flagged")
	}
	// Quality regression below the 95% bar must fail.
	if err := CompareHier(base, mk([]int{500, 1000, 2000, 5000}, []float64{100, 210, 450, 1200}, 0.90)); err == nil {
		t.Error("hier_frac 0.90 not flagged")
	}
	// Disjoint ladders cannot be compared.
	if err := CompareHier(base, mk([]int{300, 600}, []float64{50, 110}, 0.97)); err == nil {
		t.Error("disjoint ladder accepted")
	}

	// Gradient-engine row: gated absolutely on the current run.
	ok := mk([]int{500, 1000}, []float64{100, 215}, 0.97)
	ok.Grad = GradScaleRow{PEs: 1000, Frac: 0.997, Speedup: 60}
	if err := CompareHier(base, ok); err != nil {
		t.Errorf("healthy grad row flagged: %v", err)
	}
	badFrac := ok
	badFrac.Grad = GradScaleRow{PEs: 1000, Frac: 0.95, Speedup: 60}
	if err := CompareHier(base, badFrac); err == nil {
		t.Error("grad frac 0.95 not flagged")
	}
	badSpeed := ok
	badSpeed.Grad = GradScaleRow{PEs: 1000, Frac: 0.997, Speedup: 4}
	if err := CompareHier(base, badSpeed); err == nil {
		t.Error("grad speedup 4× not flagged")
	}
}
