//go:build race

package experiments

// raceEnabled is true in race-instrumented builds. The detector slows
// execution several-fold, so wall-clock-driven experiments dilate their
// virtual clocks to keep scheduler slip (and the calibration noise it
// causes) comparable to an uninstrumented run.
const raceEnabled = true
