package experiments

import (
	"testing"
)

// The acceptance test for control-plane fault tolerance (E14): the
// controller process is killed mid-run by a seeded chaos script, and
// the rank-0 standby must claim the next term within 3 missed epochs,
// disseminate the takeover through the relay to the tree leaf, fence
// the deposed controller's higher-epoch zombie frames, and still absorb
// the cost step that lands after the takeover — finishing within 90% of
// an identical run whose control plane was never interrupted.
func TestFailoverRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("failover runs take a few wall seconds")
	}
	row, err := RunFailover(FailoverOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kill=%.1f claim=%.2f term=%d missed=%.1f leaf=%d fenced=%d baseline=%.0f failover=%.0f frac=%.2f",
		row.KillAt, row.ClaimAt, row.ClaimTerm, row.MissedEpochs,
		row.LeafTerm, row.Fenced, row.BaselineRate, row.FailoverRate, row.FailoverFrac)

	if row.BaselineRate <= 0 {
		t.Fatalf("BaselineRate = %g, want > 0 (deployment never reached steady state)", row.BaselineRate)
	}
	if !row.TookOver {
		t.Fatal("standby never claimed control")
	}
	// The takeover must be a reaction to the kill, not a false positive
	// against a healthy controller.
	if row.ClaimAt <= row.KillAt {
		t.Errorf("claim at %.2f precedes the kill at %.1f — silence deadline false-positived", row.ClaimAt, row.KillAt)
	}
	if row.MissedEpochs > 3 {
		t.Errorf("standby rode out %.1f missed epochs before claiming, want ≤ 3", row.MissedEpochs)
	}
	// The claimed term must have reached the far end of the tree.
	if row.LeafTerm != row.ClaimTerm {
		t.Errorf("leaf ended on term %d, claim was term %d — takeover did not disseminate", row.LeafTerm, row.ClaimTerm)
	}
	// Zombie frames with epochs far above the takeover epoch were
	// injected; the fencing rule must have rejected every one.
	if row.Fenced == 0 {
		t.Errorf("no deposed-term frames fenced — the zombie injection proved nothing")
	}
	if row.FailoverFrac < 0.90 {
		t.Errorf("failover run at %.0f%% of the uninterrupted baseline, want ≥ 90%%", 100*row.FailoverFrac)
	}
	if !row.Recovered {
		t.Errorf("run verdict = not recovered")
	}
}
