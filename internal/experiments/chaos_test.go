package experiments

import (
	"reflect"
	"testing"

	"aces/internal/chaos"
)

// The acceptance test for the failure domain: a 3-node partitioned
// deployment takes a seeded PE panic plus a severed uplink and must end
// the run recovered — every PE running (no breaker open), membership back
// to all-alive on both sides, and steady-state throughput within 10% of
// the pre-fault rate. The fault schedule itself must be deterministic for
// the fixed seed.
func TestChaosRunRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few wall seconds")
	}
	o := ChaosOptions{Seed: 11}
	row, err := RunChaos(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pre=%.1f dip=%.1f (%.0f%%) post=%.1f recoverAt=%.2f ttr=%.2fs restarts=%d reconnects=%d",
		row.PreRate, row.DipRate, row.DipPct, row.PostRate,
		row.RecoverAt, row.TimeToRecover, row.Restarts, row.Reconnects)

	if row.PreRate <= 0 {
		t.Fatalf("PreRate = %g, want > 0 (deployment never reached steady state)", row.PreRate)
	}
	if !row.MembersAlive {
		t.Errorf("membership did not return to all-alive after the outage healed")
	}
	if !row.PEsRunning {
		t.Errorf("a breaker is open at run end — the panicked PE was not recovered")
	}
	if row.RecoverAt < 0 {
		t.Errorf("throughput never returned to ≥ 90%% of pre-fault (pre=%.1f post=%.1f)",
			row.PreRate, row.PostRate)
	}
	if row.PostRate < 0.9*row.PreRate {
		t.Errorf("steady-state throughput %.1f below 90%% of pre-fault %.1f", row.PostRate, row.PreRate)
	}
	if !row.Recovered {
		t.Errorf("run verdict = not recovered")
	}
	if row.Restarts < 1 {
		t.Errorf("Restarts = %d, want ≥ 1 (the injected panic must have fired)", row.Restarts)
	}
	if row.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want ≥ 1 (the severed uplink must have re-established)", row.Reconnects)
	}

	// The schedule is a pure function of the seed: the row must carry
	// exactly what Generate yields for the same config, and both faults
	// must be present.
	want, err := chaos.Generate(chaos.GenConfig{
		Seed:  o.Seed,
		Start: 6, End: 8,
		Panics: 1, Severs: 1,
		PEs: []int32{1}, Links: []int32{0},
		OutageMin: 4, OutageMax: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row.Schedule, want) {
		t.Errorf("schedule not deterministic for seed %d:\n got %+v\nwant %+v", o.Seed, row.Schedule, want)
	}
	kinds := map[chaos.Kind]int{}
	for _, e := range row.Schedule.Events {
		kinds[e.Kind]++
	}
	if kinds[chaos.PanicPE] != 1 || kinds[chaos.SeverLink] != 1 {
		t.Errorf("schedule kinds = %v, want one panic and one sever", kinds)
	}
}
