package experiments

import (
	"testing"
)

// The acceptance test for the adaptive loop (E11): after a 4× cost step
// that only online calibration can see, the calibrate→re-solve→retarget
// loop must recover ≥ 90% of the oracle's weighted throughput on a 3-node
// partitioned deployment, while the frozen-targets run stays degraded —
// proving both that the gap is real and that the loop closes it. Target
// dissemination must reach the peer process (epoch ≥ 1 on process B).
func TestRetargetRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("retarget runs take a few wall seconds")
	}
	row, err := RunRetarget(RetargetOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pre=%.0f frozen=%.0f adaptive=%.0f oracle=%.0f frozen/oracle=%.2f adaptive/oracle=%.2f epochs=%d peer=%d",
		row.PreRate, row.FrozenRate, row.AdaptiveRate, row.OracleRate,
		row.FrozenFrac, row.AdaptiveFrac, row.Epochs, row.PeerEpoch)

	if row.PreRate <= 0 {
		t.Fatalf("PreRate = %g, want > 0 (deployment never reached steady state)", row.PreRate)
	}
	if row.OracleRate <= 0 {
		t.Fatalf("OracleRate = %g, want > 0", row.OracleRate)
	}
	// The experiment must be binding: frozen targets genuinely degraded.
	if row.FrozenFrac >= 0.90 {
		t.Errorf("frozen run at %.0f%% of oracle — the cost step did not bind, the experiment proves nothing", 100*row.FrozenFrac)
	}
	// The loop must close the gap the frozen run exposes.
	if row.AdaptiveFrac < 0.90 {
		t.Errorf("adaptive run at %.0f%% of oracle, want ≥ 90%%", 100*row.AdaptiveFrac)
	}
	if row.Epochs < 1 {
		t.Errorf("adaptive coordinator emitted no target epochs")
	}
	if row.PeerEpoch < 1 {
		t.Errorf("peer process never received a target epoch — dissemination broken")
	}
	if !row.Recovered {
		t.Errorf("run verdict = not recovered")
	}
}
