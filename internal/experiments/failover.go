package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aces/internal/chaos"
	"aces/internal/graph"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/spc"
	"aces/internal/transport"
)

// FailoverOptions scales E14, the control-plane fault-tolerance
// experiment: the E11 topology is deployed across THREE processes wired
// as a dissemination chain (A root → B relay → C leaf), the controller
// process A is killed mid-run by a seeded chaos script, and the standby
// on B must notice the silence, claim the next controller term,
// warm-start the adaptive loop, and still absorb the cost step that
// lands after the takeover. A baseline run with no kill (B adaptive
// throughout) bounds what an uninterrupted control plane achieves. The
// zero value picks defaults.
type FailoverOptions struct {
	// Seed drives workloads and sources.
	Seed int64
	// TimeScale is the virtual-over-wall speedup (default 10; 3 under the
	// race detector, as in E11).
	TimeScale float64
	// KillAt is when the controller process dies, virtual seconds
	// (default 4; must exceed the warmup of 1 and precede StepAt).
	KillAt float64
	// StepAt is when the cost step lands (default 6 — after the standby
	// has taken over, so adaptation is the NEW controller's problem).
	StepAt float64
	// Post is the observation horizon after the step (default 14).
	Post float64
	// Window is the throughput-measurement window (default 2).
	Window float64
	// Every is the adaptive loop's re-solve period (default 0.5) — also
	// the controller's frame cadence, i.e. the standby's liveness signal.
	Every float64
	// StepFactor multiplies the stepped PE's cost (default 4).
	StepFactor float64
	// SilenceAfter is the standby's takeover deadline in virtual seconds
	// of controller silence (default 1.0 = 2×Every: one lost frame is
	// routine, two is a dead controller).
	SilenceAfter float64
}

func (o *FailoverOptions) fillDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 10
		if raceEnabled {
			o.TimeScale = 3
		}
	}
	if o.KillAt <= 1 {
		o.KillAt = 4
	}
	if o.StepAt <= o.KillAt {
		o.StepAt = o.KillAt + 2
	}
	if o.Post <= 0 {
		o.Post = 14
	}
	if o.Window <= 0 {
		o.Window = 2
	}
	if o.Every <= 0 {
		o.Every = 0.5
	}
	if o.StepFactor <= 1 {
		o.StepFactor = 4
	}
	if o.SilenceAfter <= 0 {
		o.SilenceAfter = 2 * o.Every
	}
}

// FailoverRow is one E14 outcome. Rates are weighted egress deliveries
// per virtual second over the final window, counted over the PEs the
// surviving processes host (node 1: the stepped weight-8 PE and its
// weight-1 neighbour) so the dead process's own egress does not blur
// the control-plane comparison.
type FailoverRow struct {
	Seed   int64   `json:"seed"`
	KillAt float64 `json:"kill_at"`
	StepAt float64 `json:"step_at"`
	// TookOver is whether the standby claimed a controller term at all,
	// and ClaimTerm/ClaimAt say which term and when (standby clock).
	TookOver  bool    `json:"took_over"`
	ClaimTerm uint64  `json:"claim_term"`
	ClaimAt   float64 `json:"claim_at"`
	// MissedEpochs is the controller silence the standby rode out before
	// claiming, in units of the frame cadence (Every).
	MissedEpochs float64 `json:"missed_epochs"`
	// BaselineRate is the final-window weighted rate of the no-kill run;
	// FailoverRate the same measurement with the controller killed;
	// FailoverFrac their ratio.
	BaselineRate float64 `json:"baseline_rate"`
	FailoverRate float64 `json:"failover_rate"`
	FailoverFrac float64 `json:"failover_frac"`
	// LeafTerm is the term the tree leaf ended on (= ClaimTerm proves the
	// takeover disseminated through the relay to the whole tree).
	LeafTerm uint64 `json:"leaf_term"`
	// Fenced counts deposed-term frames the survivors rejected after the
	// takeover — nonzero proves the fencing rule, not luck, protects the
	// new term against the ex-controller's ghost (the harness injects
	// zombie frames with epochs far ABOVE the takeover epoch, so plain
	// epoch ordering would have accepted them).
	Fenced int64 `json:"fenced"`
	// Recovered is the verdict: the standby took over after the kill
	// within 3 missed epochs, the takeover reached the leaf, zombie
	// frames were fenced, and the final-window throughput reached ≥ 90%
	// of the uninterrupted baseline.
	Recovered bool `json:"recovered"`
}

// floatBits/floatFromBits round-trip a float64 through an atomic.Uint64.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }

// failoverOutcome carries one run's control-plane telemetry out of the
// harness.
type failoverOutcome struct {
	tookOver     bool
	claimTerm    uint64
	claimAt      float64
	missedEpochs float64
	leafTerm     uint64
	fenced       int64
}

// failoverRun deploys the three-process chain and runs it to the
// horizon. With kill=false process B closes the adaptive loop from the
// start (the baseline); with kill=true process A is the controller, B a
// rank-0 standby, and a seeded chaos script kills A at KillAt.
func failoverRun(o FailoverOptions, topo *graph.Topology, cpu []float64, kill bool) (rate func(t0, t1 float64) float64, out failoverOutcome, err error) {
	fail := func(e error) (func(t0, t1 float64) float64, failoverOutcome, error) {
		return nil, failoverOutcome{}, e
	}
	// One listener per process pair; the dial side never owns a listener
	// so killing A can close every A-side endpoint in one place.
	lisAB, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer lisAB.Close()
	lisAC, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer lisAC.Close()
	lisBC, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer lisBC.Close()
	linkOpts := transport.ResilientOptions{
		QueueSize:    256,
		WriteTimeout: 50 * time.Millisecond,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		BatchMax:     32,
	}
	accept := func(l *transport.Listener) *spc.ResilientLink {
		return spc.NewResilientLink(func() (*transport.Conn, error) { return l.Accept() }, linkOpts)
	}
	dialTo := func(l *transport.Listener) *spc.ResilientLink {
		addr := l.Addr()
		return spc.NewResilientLink(func() (*transport.Conn, error) {
			return transport.Dial(addr, time.Second)
		}, linkOpts)
	}
	linkAB := accept(lisAB) // A ↔ B, A side
	linkAC := accept(lisAC) // A ↔ C, A side
	linkBA := dialTo(lisAB) // A ↔ B, B side
	linkBC := accept(lisBC) // B ↔ C, B side
	linkCA := dialTo(lisAC) // A ↔ C, C side
	linkCB := dialTo(lisBC) // B ↔ C, C side
	links := []*spc.ResilientLink{linkAB, linkAC, linkBA, linkBC, linkCA, linkCB}
	defer func() {
		for _, l := range links {
			l.Close()
		}
	}()

	routerA := spc.NewRouter()
	routerA.AddPeer(linkAB)
	routerA.AddPeer(linkAC, 3) // PE0 → PE3 crosses A → C
	routerB := spc.NewRouter()
	routerB.AddPeer(linkBA, 0)
	routerB.AddPeer(linkBC, 3)
	routerC := spc.NewRouter()
	routerC.AddPeer(linkCA, 0) // PE3's flow-control feedback → PE0's host
	routerC.AddPeer(linkCB)

	stepped := topo.PEs[1].Service.EffectiveCost()
	a, err := spc.NewCluster(spc.Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: o.TimeScale, Warmup: 1, Seed: o.Seed,
		LocalNodes: []sdo.NodeID{0}, Uplink: routerA,
	})
	if err != nil {
		return fail(err)
	}
	b, err := spc.NewCluster(spc.Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: o.TimeScale, Warmup: 1, Seed: o.Seed,
		LocalNodes: []sdo.NodeID{1}, Uplink: routerB,
		Processors: map[sdo.PEID]spc.Processor{
			1: spc.NewStepCost(201, stepped, o.StepFactor*stepped, o.StepAt),
		},
	})
	if err != nil {
		return fail(err)
	}
	c, err := spc.NewCluster(spc.Config{
		Topo: topo, Policy: policy.ACES, CPU: cpu,
		TimeScale: o.TimeScale, Warmup: 1, Seed: o.Seed,
		LocalNodes: []sdo.NodeID{2}, Uplink: routerC,
	})
	if err != nil {
		return fail(err)
	}
	// Dissemination chain: A fans to B only; B relays to C and acks to A;
	// C acks to B. After the kill, the B → C edge is the whole tree.
	a.EnableHierRelay(0, nil, linkAB)
	b.EnableHierRelay(1, linkBA, linkBC)
	c.EnableHierRelay(2, linkCB)

	var serveWG sync.WaitGroup
	serve := func(l *spc.ResilientLink, cl *spc.Cluster) {
		serveWG.Add(1)
		go func() {
			defer serveWG.Done()
			_ = l.Serve(cl)
		}()
	}
	serve(linkAB, a)
	serve(linkAC, a)
	serve(linkBA, b)
	serve(linkBC, b)
	serve(linkCA, c)
	serve(linkCB, c)

	rc := spc.RetargetConfig{Every: o.Every, Lambda: 0.7, MinSamples: 4}
	var claimAt atomic.Uint64 // float64 bits of the standby clock at claim
	var claimTerm atomic.Uint64
	var missed atomic.Uint64 // float64 bits
	if kill {
		if err := a.StartRetarget(rc); err != nil {
			return fail(err)
		}
		if err := b.StartFailover(spc.FailoverConfig{
			Rank:         0,
			SilenceAfter: o.SilenceAfter,
			CheckEvery:   o.SilenceAfter / 8,
			Retarget:     rc,
			OnClaim: func(term uint64) {
				now := b.Now()
				claimTerm.Store(term)
				claimAt.Store(floatBits(now))
				missed.Store(floatBits((now - b.LastControllerFrame()) / o.Every))
			},
		}); err != nil {
			return fail(err)
		}
	} else {
		if err := b.StartRetarget(rc); err != nil {
			return fail(err)
		}
	}
	if err := a.Start(); err != nil {
		return fail(err)
	}
	if err := b.Start(); err != nil {
		return fail(err)
	}
	if err := c.Start(); err != nil {
		return fail(err)
	}

	// The kill is a scripted chaos fault, not an ad-hoc teardown: the
	// schedule replays at the same virtual time for the same options.
	var aStopped atomic.Bool
	killA := func(proc int32) {
		if proc != 0 || !aStopped.CompareAndSwap(false, true) {
			return
		}
		a.Stop()
		lisAB.Close()
		lisAC.Close()
		linkAB.Close()
		linkAC.Close()
	}
	runner := chaos.NewRunner(chaos.Schedule{Events: []chaos.Event{
		{At: o.KillAt, Kind: chaos.KillProcess, Target: 0},
	}})
	injector := chaos.FuncInjector{OnKillProcess: killA}

	// Sample the weighted cumulative egress of the SURVIVING processes'
	// PEs (node 1) on B's virtual clock.
	type sample struct {
		t float64
		n float64
	}
	var series []sample
	horizon := o.StepAt + o.Post
	zombieSent := false
	for {
		now := b.Now()
		if kill {
			runner.Step(now, injector)
		}
		// Once the standby holds the term, let the deposed controller's
		// ghost speak: inject term-0 frames with an epoch far above the
		// takeover epoch into both survivors. Lexicographic fencing must
		// reject them; epoch ordering alone would not.
		if kill && !zombieSent && claimTerm.Load() > 0 {
			b.InjectTermTargets(0, 1<<20, cpu)
			c.InjectTermTargets(0, 1<<20, cpu)
			zombieSent = true
		}
		d := b.DeliveredByPE()
		var w float64
		for j := range topo.PEs {
			if topo.PEs[j].Node == 1 {
				w += topo.PEs[j].Weight * float64(d[j])
			}
		}
		series = append(series, sample{t: now, n: w})
		if now >= horizon {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	out = failoverOutcome{
		tookOver:     claimTerm.Load() > 0,
		claimTerm:    claimTerm.Load(),
		claimAt:      floatFromBits(claimAt.Load()),
		missedEpochs: floatFromBits(missed.Load()),
		leafTerm:     c.TargetsTerm(),
		fenced:       b.FencedFrames() + c.FencedFrames(),
	}
	if !aStopped.Load() {
		a.Stop()
	}
	b.Stop()
	c.Stop()
	lisAB.Close()
	lisAC.Close()
	lisBC.Close()
	for _, l := range links {
		l.Close()
	}
	serveWG.Wait()

	rate = func(t0, t1 float64) float64 {
		i := sort.Search(len(series), func(i int) bool { return series[i].t >= t0 })
		j := sort.Search(len(series), func(i int) bool { return series[i].t >= t1 })
		if j >= len(series) {
			j = len(series) - 1
		}
		if i >= j || series[j].t <= series[i].t {
			return 0
		}
		return (series[j].n - series[i].n) / (series[j].t - series[i].t)
	}
	return rate, out, nil
}

// RunFailover executes E14 once: deploy the three-process chain with
// tier-1 targets from the declared models, kill the controller process
// at KillAt, land the cost step at StepAt, and compare the final-window
// weighted throughput against an identical run whose control plane was
// never interrupted. The verdict demands a timely takeover (≤ 3 missed
// epochs after the kill), tree-wide term dissemination, proof that
// deposed-term frames are fenced, and ≥ 90% of the baseline rate.
func RunFailover(o FailoverOptions) (FailoverRow, error) {
	o.fillDefaults()
	topo, err := retargetTopo()
	if err != nil {
		return FailoverRow{}, err
	}
	deployed, err := optimize.Solve(topo, optimize.Config{})
	if err != nil {
		return FailoverRow{}, err
	}

	row := FailoverRow{Seed: o.Seed, KillAt: o.KillAt, StepAt: o.StepAt}
	baseRate, _, err := failoverRun(o, topo, deployed.CPU, false)
	if err != nil {
		return row, err
	}
	failRate, out, err := failoverRun(o, topo, deployed.CPU, true)
	if err != nil {
		return row, err
	}

	horizon := o.StepAt + o.Post
	row.BaselineRate = baseRate(horizon-o.Window, horizon)
	row.FailoverRate = failRate(horizon-o.Window, horizon)
	if row.BaselineRate > 0 {
		row.FailoverFrac = row.FailoverRate / row.BaselineRate
	}
	row.TookOver = out.tookOver
	row.ClaimTerm = out.claimTerm
	row.ClaimAt = out.claimAt
	row.MissedEpochs = out.missedEpochs
	row.LeafTerm = out.leafTerm
	row.Fenced = out.fenced
	row.Recovered = row.TookOver &&
		row.ClaimAt > row.KillAt &&
		row.MissedEpochs <= 3 &&
		row.LeafTerm == row.ClaimTerm &&
		row.Fenced > 0 &&
		row.FailoverFrac >= 0.90
	return row, nil
}

// FormatFailover renders E14.
func FormatFailover(w io.Writer, r FailoverRow) {
	verdict := "RECOVERED"
	if !r.Recovered {
		verdict = "NOT RECOVERED"
	}
	rows := [][]string{{
		fmt.Sprintf("%d", r.Seed),
		fmt.Sprintf("%.1f", r.KillAt),
		fmt.Sprintf("%.2f", r.ClaimAt),
		fmt.Sprintf("%d", r.ClaimTerm),
		fmt.Sprintf("%.1f", r.MissedEpochs),
		fmt.Sprintf("%d", r.LeafTerm),
		fmt.Sprintf("%d", r.Fenced),
		fmt.Sprintf("%.0f", r.BaselineRate),
		fmt.Sprintf("%.0f", r.FailoverRate),
		fmt.Sprintf("%.0f%%", 100*r.FailoverFrac),
		verdict,
	}}
	Table(w, "E14 — controller failover: term-fenced standby takeover under a mid-run controller kill",
		[]string{"seed", "kill at", "claim at", "term", "missed epochs", "leaf term", "fenced", "baseline w/s", "failover w/s", "failover/baseline", "verdict"}, rows)
}
