package experiments

import (
	"strings"
	"testing"

	"aces/internal/policy"
)

// The experiment suite at Quick scale must run end to end, produce sane
// numbers, and reproduce the paper's qualitative orderings. These are the
// integration tests of the whole reproduction.

func TestBufferSweepShapes(t *testing.T) {
	o := Quick()
	rows, err := BufferSweep(o, []int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		a, l := r.Stat[policy.ACES], r.Stat[policy.LockStep]
		if a.WT <= 0 || l.WT <= 0 {
			t.Errorf("B=%d: zero throughput: %+v", r.B, r.Stat)
		}
		if a.Lat <= 0 || l.Lat <= 0 {
			t.Errorf("B=%d: zero latency", r.B)
		}
		// Fig. 4's headline: ACES trades better — at equal-or-better
		// throughput its latency must not exceed Lock-Step's.
		if a.WT >= l.WT*0.95 && a.Lat > l.Lat*1.1 {
			t.Errorf("B=%d: ACES lat %.1fms > LockStep %.1fms at comparable wt (%.2f vs %.2f)",
				r.B, a.Lat*1e3, l.Lat*1e3, a.WT, l.WT)
		}
	}
	// Larger buffers → larger Lock-Step latency (Fig. 4's parametric
	// direction).
	if rows[1].Stat[policy.LockStep].Lat <= rows[0].Stat[policy.LockStep].Lat {
		t.Errorf("LockStep latency should grow with B: %.1f → %.1f ms",
			rows[0].Stat[policy.LockStep].Lat*1e3, rows[1].Stat[policy.LockStep].Lat*1e3)
	}

	var sb strings.Builder
	FormatFig3(&sb, rows)
	FormatFig4(&sb, rows)
	if !strings.Contains(sb.String(), "Fig. 3") || !strings.Contains(sb.String(), "Fig. 4") {
		t.Errorf("formatters broken")
	}
}

func TestBurstinessSweepShapes(t *testing.T) {
	o := Quick()
	rows, err := BurstinessSweep(o, []float64{1, 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, pol := range policy.All() {
			if r.Stat[pol].WT <= 0 {
				t.Errorf("λ=%g %v: zero throughput", r.LambdaS, pol)
			}
		}
	}
	// Fig. 5's headline: at high burstiness ACES must be at least
	// competitive with the best baseline (paper: strictly better).
	last := rows[len(rows)-1]
	best := last.Stat[policy.UDP].WT
	if last.Stat[policy.LockStep].WT > best {
		best = last.Stat[policy.LockStep].WT
	}
	if last.Stat[policy.ACES].WT < best*0.9 {
		t.Errorf("λ=%g: ACES %.2f well below best baseline %.2f",
			last.LambdaS, last.Stat[policy.ACES].WT, best)
	}
	var sb strings.Builder
	FormatFig5(&sb, rows)
	if !strings.Contains(sb.String(), "lambda_S") {
		t.Errorf("formatter broken")
	}
}

func TestFanoutReproducesFig2(t *testing.T) {
	o := Quick()
	o.Duration = 20
	rows, err := Fanout(o)
	if err != nil {
		t.Fatal(err)
	}
	byPol := make(map[policy.Policy]FanoutResult)
	for _, r := range rows {
		byPol[r.Policy] = r
	}
	aces, lock := byPol[policy.ACES], byPol[policy.LockStep]
	// Max-flow: the fast branch (30/s) stays near full rate.
	if aces.BranchRates[3] < 24 {
		t.Errorf("ACES fast branch = %.1f/s, want ≈30", aces.BranchRates[3])
	}
	// Min-flow: the fast branch is dragged toward the slowest (10/s).
	if lock.BranchRates[3] > 16 {
		t.Errorf("LockStep fast branch = %.1f/s, want ≈10", lock.BranchRates[3])
	}
	if aces.TotalWT <= lock.TotalWT*1.3 {
		t.Errorf("ACES total %.1f should clearly beat LockStep %.1f", aces.TotalWT, lock.TotalWT)
	}
	var sb strings.Builder
	FormatFanout(&sb, rows)
	if !strings.Contains(sb.String(), "pe5(30)") {
		t.Errorf("formatter broken")
	}
}

func TestStabilityConverges(t *testing.T) {
	o := Quick()
	o.Duration = 20
	res, err := Stability(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SettleTime < 0 {
		t.Fatalf("controller never settled: %+v", res)
	}
	if res.SettleTime > 10 {
		t.Errorf("settling took %.1fs, too slow", res.SettleTime)
	}
	if res.SteadyMean < res.B0*0.7 || res.SteadyMean > res.B0*1.3 {
		t.Errorf("steady buffer %.1f not near b0 = %g", res.SteadyMean, res.B0)
	}
	var sb strings.Builder
	FormatStability(&sb, res)
	if !strings.Contains(sb.String(), "settle_s") {
		t.Errorf("formatter broken")
	}
}

func TestRobustnessDegradesGracefully(t *testing.T) {
	o := Quick()
	rows, err := Robustness(o, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	base := rows[0].Stat[policy.ACES].WT
	pert := rows[1].Stat[policy.ACES].WT
	if base <= 0 {
		t.Fatal("zero baseline throughput")
	}
	// ACES self-stabilizes: a 30% allocation error must not halve
	// throughput.
	if pert < base*0.5 {
		t.Errorf("30%% allocation error dropped wt from %.2f to %.2f", base, pert)
	}
	var sb strings.Builder
	FormatRobustness(&sb, rows)
	if !strings.Contains(sb.String(), "aces_retained") {
		t.Errorf("formatter broken")
	}
}

func TestSmallBufferAdvantageRuns(t *testing.T) {
	o := Quick()
	rows, err := SmallBufferAdvantage(o, []int{5, 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Stat[policy.ACES].WT <= 0 {
			t.Errorf("B=%d: zero ACES throughput", r.B)
		}
	}
	// The ACES advantage should be larger (or at least not smaller by
	// much) at the smaller buffer — the paper's limit-of-small-buffers
	// claim.
	if rows[0].AdvantagePct < rows[1].AdvantagePct-15 {
		t.Errorf("advantage at B=5 (%.1f%%) ≪ at B=25 (%.1f%%)", rows[0].AdvantagePct, rows[1].AdvantagePct)
	}
	var sb strings.Builder
	FormatSmallBuffer(&sb, rows)
	if !strings.Contains(sb.String(), "aces_vs_best") {
		t.Errorf("formatter broken")
	}
}

func TestCalibrationAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("live runtime calibration is wall-clock bound")
	}
	o := Quick()
	rows, err := Calibration(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SimWT <= 0 || r.LiveWT <= 0 {
			t.Errorf("%v: zero throughput (sim %.2f live %.2f)", r.Policy, r.SimWT, r.LiveWT)
			continue
		}
		// The substrates share models but differ in scheduling reality;
		// at full scale they agree within a few percent (EXPERIMENTS.md).
		// At Quick scale on real OS timers — possibly under the race
		// detector — a generous band guards against CI noise.
		if r.RatioPct < 50 || r.RatioPct > 200 {
			t.Errorf("%v: live/sim = %.0f%%, outside calibration band", r.Policy, r.RatioPct)
		}
	}
	var sb strings.Builder
	FormatCalibration(&sb, rows)
	if !strings.Contains(sb.String(), "live/sim") {
		t.Errorf("formatter broken")
	}
}

func TestAblationsRun(t *testing.T) {
	o := Quick()
	rows, err := Ablations(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Stat.WT <= 0 {
			t.Errorf("%v: zero throughput", r.Policy)
		}
	}
	var sb strings.Builder
	FormatAblations(&sb, rows)
	if !strings.Contains(sb.String(), "variant") {
		t.Errorf("formatter broken")
	}
}

func TestTableRendering(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "demo", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	s := sb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") {
		t.Errorf("table output wrong:\n%s", s)
	}
}

func TestCSVExports(t *testing.T) {
	o := Quick()
	o.Duration = 6

	var sb strings.Builder
	buf, err := BufferSweep(o, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := BufferSweepCSV(&sb, buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "buffer,policy,wt") || !strings.Contains(sb.String(), "aces") {
		t.Errorf("buffer CSV malformed:\n%s", sb.String())
	}

	sb.Reset()
	burst, err := BurstinessSweep(o, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := BurstinessCSV(&sb, burst); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lambda_s,policy,wt") {
		t.Errorf("burstiness CSV malformed")
	}

	sb.Reset()
	fan, err := Fanout(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := FanoutCSV(&sb, fan); err != nil {
		t.Fatal(err)
	}
	// 3 policies × 4 consumers + header = 13 lines.
	if lines := strings.Count(strings.TrimSpace(sb.String()), "\n") + 1; lines != 13 {
		t.Errorf("fanout CSV has %d lines, want 13", lines)
	}

	sb.Reset()
	if err := SmallBufferCSV(&sb, []SmallBufferRow{{B: 5, Stat: buf[0].Stat, AdvantagePct: 10}}); err != nil {
		t.Fatal(err)
	}
	if err := RobustnessCSV(&sb, []RobustnessRow{{Eps: 0.1, Stat: burst[0].Stat}}); err != nil {
		t.Fatal(err)
	}
	if err := CalibrationCSV(&sb, []CalibrationRow{{Policy: policy.ACES, SimWT: 1, LiveWT: 1, RatioPct: 100}}); err != nil {
		t.Fatal(err)
	}
}
