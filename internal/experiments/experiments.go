// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) — the per-experiment index lives in DESIGN.md:
//
//	E1 Fig. 3  latency mean ± σ, ACES vs Lock-Step, over buffer sizes
//	E2 Fig. 4  latency-versus-weighted-throughput frontier (parametric in B)
//	E3 Fig. 5  weighted throughput vs burstiness λ_S, three systems,
//	           plus the SPC↔simulator calibration points
//	E4 §I/§VI  small-buffer advantage (> 20% claim)
//	E5 §VII    robustness to tier-1 allocation errors
//	E6 §V-C    closed-loop stability (settling, steady error, oscillation)
//	E7 Fig. 2  max-flow vs min-flow on the fan-out example
//	E8 §VI-C   simulator-versus-live-runtime calibration
//	E9 §IV     uplink data-plane throughput: per-frame flush vs batching
//
// Each experiment returns typed rows; Format* helpers render the tables
// cmd/aces-bench prints and EXPERIMENTS.md records.
package experiments

import (
	"encoding/json"
	"fmt"

	"aces/internal/graph"
	"aces/internal/metrics"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/sdo"
	"aces/internal/spc"
	"aces/internal/stats"
	"aces/internal/streamsim"
	"aces/internal/workload"
)

// Options scales the experiment suite. Default() reproduces the paper's
// setup; Quick() shrinks everything for tests and benchmarks.
type Options struct {
	// PEs and Nodes set the main topology scale (paper: 200 PEs, 80
	// nodes).
	PEs, Nodes int
	// CalPEs and CalNodes set the calibration scale (paper: 60 PEs, 10
	// nodes).
	CalPEs, CalNodes int
	// Duration is the per-run simulated horizon in seconds.
	Duration float64
	// Seeds lists the topology/workload seeds averaged over ("multiple
	// randomly generated topologies were used … results averaged").
	Seeds []int64
	// TimeScale accelerates the live runtime in E3/E8.
	TimeScale float64
	// OptimizerIters bounds tier-1 solver iterations.
	OptimizerIters int
	// LiveDuration is the live-runtime horizon (virtual seconds).
	LiveDuration float64
}

// Default returns the paper-scale configuration.
func Default() Options {
	return Options{
		PEs: 200, Nodes: 80,
		CalPEs: 60, CalNodes: 10,
		Duration:       40,
		Seeds:          []int64{1, 2, 3},
		TimeScale:      10,
		OptimizerIters: 2500,
		LiveDuration:   16,
	}
}

// Quick returns a fast configuration for tests and Go benchmarks.
func Quick() Options {
	return Options{
		PEs: 60, Nodes: 10,
		CalPEs: 30, CalNodes: 5,
		Duration: 10,
		Seeds:    []int64{1},
		// Gentle enough that the live runtime keeps pace even under the
		// race detector's ~10× slowdown in CI.
		TimeScale:      5,
		OptimizerIters: 400,
		LiveDuration:   8,
	}
}

// cloneTopo deep-copies a topology (JSON round trip).
func cloneTopo(t *graph.Topology) (*graph.Topology, error) {
	data, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	var out graph.Topology
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	if err := out.Rebuild(); err != nil {
		return nil, err
	}
	return &out, nil
}

// buildCase generates a topology for a seed and solves tier 1 on it.
func buildCase(o Options, pes, nodes int, seed int64) (*graph.Topology, []float64, error) {
	topo, err := graph.Generate(graph.DefaultGenConfig(pes, nodes, seed))
	if err != nil {
		return nil, nil, err
	}
	alloc, err := optimize.Solve(topo, optimize.Config{
		MaxIters: o.OptimizerIters,
		// The paper's objective is the weighted throughput itself; linear
		// utility deliberately creates the unequal branch rates §III-D
		// predicts. The floor keeps every deployed PE runnable.
		Utility:  optimize.LinearUtility{},
		MinShare: 0.02,
	})
	if err != nil {
		return nil, nil, err
	}
	return topo, alloc.CPU, nil
}

// runOne executes one simulator run.
func runOne(o Options, topo *graph.Topology, pol policy.Policy, cpu []float64, seed int64) (metrics.Report, error) {
	eng, err := streamsim.New(streamsim.Config{
		Topo: topo, Policy: pol, CPU: cpu,
		Duration: o.Duration, Seed: seed,
	})
	if err != nil {
		return metrics.Report{}, err
	}
	return eng.Run(), nil
}

// PolicyStat aggregates one policy's results across seeds.
type PolicyStat struct {
	WT, WTErr   float64 // mean weighted throughput ± 95% CI
	Lat, LatStd float64 // mean latency and mean per-run latency σ (seconds)
	P95         float64
	InFlight    float64 // mean in-flight drops per run
	BufOcc      float64 // mean buffer occupancy
}

// aggregate folds per-seed reports into a PolicyStat.
func aggregate(reports []metrics.Report) PolicyStat {
	var wt, lat, latStd, p95, fly, occ stats.Welford
	for _, r := range reports {
		wt.Add(r.WeightedThroughput)
		lat.Add(r.MeanLatency)
		latStd.Add(r.StdLatency)
		p95.Add(r.P95)
		fly.Add(float64(r.InFlightDrops))
		occ.Add(r.MeanBufferOccupancy)
	}
	return PolicyStat{
		WT: wt.Mean(), WTErr: wt.CI95(),
		Lat: lat.Mean(), LatStd: latStd.Mean(),
		P95:      p95.Mean(),
		InFlight: fly.Mean(),
		BufOcc:   occ.Mean(),
	}
}

// sweepPolicies runs the given policies over all seeds for one topology
// transformation.
func sweepPolicies(o Options, pols []policy.Policy, transform func(*graph.Topology) error) (map[policy.Policy]PolicyStat, error) {
	reports := make(map[policy.Policy][]metrics.Report)
	for _, seed := range o.Seeds {
		topo, cpu, err := buildCase(o, o.PEs, o.Nodes, seed)
		if err != nil {
			return nil, err
		}
		if transform != nil {
			if err := transform(topo); err != nil {
				return nil, err
			}
			// Re-solve tier 1 after structural changes so allocations match
			// the transformed deployment.
			alloc, err := optimize.Solve(topo, optimize.Config{MaxIters: o.OptimizerIters, Utility: optimize.LinearUtility{}, MinShare: 0.02})
			if err != nil {
				return nil, err
			}
			cpu = alloc.CPU
		}
		for _, pol := range pols {
			r, err := runOne(o, topo, pol, cpu, seed+100)
			if err != nil {
				return nil, err
			}
			reports[pol] = append(reports[pol], r)
		}
	}
	out := make(map[policy.Policy]PolicyStat, len(reports))
	for pol, rs := range reports {
		out[pol] = aggregate(rs)
	}
	return out, nil
}

// BufferRow is one buffer-size point of the Fig. 3 / Fig. 4 sweep.
type BufferRow struct {
	B    int
	Stat map[policy.Policy]PolicyStat
}

// BufferSweep runs ACES and Lock-Step across buffer sizes: the underlying
// data of both Fig. 3 (latency mean ± σ) and Fig. 4 (latency vs weighted
// throughput, parametric in B).
func BufferSweep(o Options, sizes []int) ([]BufferRow, error) {
	if len(sizes) == 0 {
		sizes = []int{10, 25, 50, 100, 200}
	}
	rows := make([]BufferRow, 0, len(sizes))
	for _, b := range sizes {
		b := b
		stat, err := sweepPolicies(o, []policy.Policy{policy.ACES, policy.LockStep}, func(t *graph.Topology) error {
			t.DefaultBufferSize = b
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BufferRow{B: b, Stat: stat})
	}
	return rows, nil
}

// BurstinessRow is one λ_S point of Fig. 5.
type BurstinessRow struct {
	LambdaS float64
	Stat    map[policy.Policy]PolicyStat
}

// BurstinessSweep varies the state-dwell scale λ_S ("the burstiness was
// varied by varying the mean time the PEs spend in each of the two
// states") and measures the three systems.
func BurstinessSweep(o Options, lambdas []float64) ([]BurstinessRow, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{1, 2, 5, 10, 20, 50}
	}
	rows := make([]BurstinessRow, 0, len(lambdas))
	for _, ls := range lambdas {
		ls := ls
		stat, err := sweepPolicies(o, policy.All(), func(t *graph.Topology) error {
			for i := range t.PEs {
				t.PEs[i].Service.LambdaS = ls
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BurstinessRow{LambdaS: ls, Stat: stat})
	}
	return rows, nil
}

// SmallBufferRow is one point of the small-buffer advantage table (E4).
type SmallBufferRow struct {
	B            int
	Stat         map[policy.Policy]PolicyStat
	AdvantagePct float64 // ACES weighted throughput vs best baseline, in %
}

// SmallBufferAdvantage quantifies the paper's "> 20% in the limit of small
// buffers" claim.
func SmallBufferAdvantage(o Options, sizes []int) ([]SmallBufferRow, error) {
	if len(sizes) == 0 {
		sizes = []int{3, 5, 8, 12, 25}
	}
	out := make([]SmallBufferRow, 0, len(sizes))
	for _, b := range sizes {
		b := b
		stat, err := sweepPolicies(o, policy.All(), func(t *graph.Topology) error {
			t.DefaultBufferSize = b
			return nil
		})
		if err != nil {
			return nil, err
		}
		best := stat[policy.UDP].WT
		if stat[policy.LockStep].WT > best {
			best = stat[policy.LockStep].WT
		}
		adv := 0.0
		if best > 0 {
			adv = 100 * (stat[policy.ACES].WT - best) / best
		}
		out = append(out, SmallBufferRow{B: b, Stat: stat, AdvantagePct: adv})
	}
	return out, nil
}

// RobustnessRow is one allocation-error level (E5).
type RobustnessRow struct {
	Eps  float64
	Stat map[policy.Policy]PolicyStat
}

// Robustness perturbs the tier-1 CPU targets by ±eps and measures the
// resulting weighted throughput (§VII: "the robustness of ACES to errors
// in allocation was also demonstrated").
func Robustness(o Options, epss []float64) ([]RobustnessRow, error) {
	if len(epss) == 0 {
		epss = []float64{0, 0.1, 0.2, 0.3, 0.5}
	}
	out := make([]RobustnessRow, 0, len(epss))
	for _, eps := range epss {
		reports := make(map[policy.Policy][]metrics.Report)
		for _, seed := range o.Seeds {
			topo, cpu, err := buildCase(o, o.PEs, o.Nodes, seed)
			if err != nil {
				return nil, err
			}
			pcpu := cpu
			if eps > 0 {
				pcpu = optimize.Perturb(topo, cpu, eps, simRandFor(seed, eps))
			}
			for _, pol := range policy.All() {
				r, err := runOne(o, topo, pol, pcpu, seed+200)
				if err != nil {
					return nil, err
				}
				reports[pol] = append(reports[pol], r)
			}
		}
		stat := make(map[policy.Policy]PolicyStat)
		for pol, rs := range reports {
			stat[pol] = aggregate(rs)
		}
		out = append(out, RobustnessRow{Eps: eps, Stat: stat})
	}
	return out, nil
}

// FanoutResult is the Fig. 2 experiment outcome for one policy (E7).
type FanoutResult struct {
	Policy      policy.Policy
	BranchRates []float64 // deliveries/sec per consumer, in PE order
	TotalWT     float64
}

// Fanout reproduces the paper's Fig. 2: one producer feeding four
// consumers capable of 10, 20, 20 and 30 SDOs/sec. Max-flow keeps the fast
// consumer at full rate; min-flow drags every branch to the slowest.
func Fanout(o Options) ([]FanoutResult, error) {
	build := func() (*graph.Topology, []float64, []sdo.PEID, error) {
		topo := graph.New(5, 50)
		det := func(cost float64) workload.ServiceParams {
			return workload.ServiceParams{T0: cost, T1: cost, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
		}
		producer := topo.AddPE(graph.PE{Name: "pe1", Service: det(0.002), Node: 0})
		rates := []float64{10, 20, 20, 30}
		branches := make([]sdo.PEID, len(rates))
		cpu := []float64{0.2}
		for i, r := range rates {
			// Each consumer on its own node with c̄ = 0.5 and a per-SDO
			// cost yielding exactly the Fig. 2 rate: cost = 0.5/r.
			id := topo.AddPE(graph.PE{
				Name:    fmt.Sprintf("pe%d", i+2),
				Service: det(0.5 / r),
				Node:    sdo.NodeID(i + 1),
				Weight:  1,
			})
			branches[i] = id
			cpu = append(cpu, 0.5)
			if err := topo.Connect(producer, id); err != nil {
				return nil, nil, nil, err
			}
		}
		if err := topo.AddSource(graph.Source{
			Stream: 1, Target: producer, Rate: 30,
			Burst: graph.BurstSpec{Kind: graph.BurstDeterministic},
		}); err != nil {
			return nil, nil, nil, err
		}
		return topo, cpu, branches, nil
	}
	var out []FanoutResult
	for _, pol := range policy.All() {
		topo, cpu, branches, err := build()
		if err != nil {
			return nil, err
		}
		eng, err := streamsim.New(streamsim.Config{
			Topo: topo, Policy: pol, CPU: cpu,
			Duration: o.Duration, Seed: 7,
		})
		if err != nil {
			return nil, err
		}
		rep := eng.Run()
		counts := eng.DeliveredByPE()
		horizon := o.Duration - o.Duration/5
		res := FanoutResult{Policy: pol, TotalWT: rep.WeightedThroughput}
		for _, b := range branches {
			res.BranchRates = append(res.BranchRates, float64(counts[b])/horizon)
		}
		out = append(out, res)
	}
	return out, nil
}

// CalibrationRow pairs simulator and live-runtime measurements (E8, and
// the calibration points shown in Fig. 5).
type CalibrationRow struct {
	Policy policy.Policy
	SimWT  float64
	LiveWT float64
	// RatioPct is 100·Live/Sim — the calibration quality indicator.
	RatioPct float64
}

// Calibration runs the same 60-PE/10-node deployment on both substrates.
func Calibration(o Options) ([]CalibrationRow, error) {
	topo, cpu, err := buildCase(o, o.CalPEs, o.CalNodes, o.Seeds[0])
	if err != nil {
		return nil, err
	}
	var out []CalibrationRow
	for _, pol := range policy.All() {
		simRep, err := runOne(o, topo, pol, cpu, 77)
		if err != nil {
			return nil, err
		}
		liveTopo, err := cloneTopo(topo)
		if err != nil {
			return nil, err
		}
		cl, err := spc.NewCluster(spc.Config{
			Topo: liveTopo, Policy: pol, CPU: cpu,
			TimeScale: o.TimeScale, Warmup: o.LiveDuration / 4, Seed: 77,
		})
		if err != nil {
			return nil, err
		}
		liveRep, err := cl.Run(o.LiveDuration)
		if err != nil {
			return nil, err
		}
		row := CalibrationRow{Policy: pol, SimWT: simRep.WeightedThroughput, LiveWT: liveRep.WeightedThroughput}
		if row.SimWT > 0 {
			row.RatioPct = 100 * row.LiveWT / row.SimWT
		}
		out = append(out, row)
	}
	return out, nil
}

// StabilityResult summarizes the closed-loop convergence experiment (E6).
type StabilityResult struct {
	// SettleTime is when the monitored buffer first stays within ±20% of
	// b₀ for 50 consecutive ticks, in seconds (−1 if never).
	SettleTime float64
	// SteadyMean and SteadyStd describe the buffer after settling.
	SteadyMean, SteadyStd float64
	// B0 is the target.
	B0 float64
	// ThroughputCV is the oscillation indicator of the whole run.
	ThroughputCV float64
}

// Stability drives a two-stage chain with the downstream stage slower,
// so its buffer is controller-regulated, and traces convergence to b₀
// from an empty start (§V-C's asymptotic-convergence property).
func Stability(o Options) (StabilityResult, error) {
	topo := graph.New(2, 50)
	det := func(cost float64) workload.ServiceParams {
		return workload.ServiceParams{T0: cost, T1: cost, Rho: 0, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
	}
	a := topo.AddPE(graph.PE{Service: det(0.002), Node: 0})
	b := topo.AddPE(graph.PE{Service: det(0.005), Node: 1, Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		return StabilityResult{}, err
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 300, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
		return StabilityResult{}, err
	}
	eng, err := streamsim.New(streamsim.Config{
		Topo: topo, Policy: policy.ACES, CPU: []float64{0.8, 0.8},
		Duration: o.Duration, Seed: 5,
	})
	if err != nil {
		return StabilityResult{}, err
	}
	const b0 = 25.0
	res := StabilityResult{B0: b0, SettleTime: -1}
	within := 0
	var steady stats.Welford
	settled := false
	eng.Sim().Every(0.01, func(now float64) {
		occ := float64(eng.BufferLen(1))
		if !settled {
			if occ >= b0*0.8 && occ <= b0*1.2 {
				within++
				if within >= 50 {
					settled = true
					res.SettleTime = now
				}
			} else {
				within = 0
			}
			return
		}
		steady.Add(occ)
	})
	rep := eng.Run()
	res.SteadyMean = steady.Mean()
	res.SteadyStd = steady.Std()
	res.ThroughputCV = rep.ThroughputCV
	return res, nil
}

// AblationRow compares the full ACES design against its ablated variants.
type AblationRow struct {
	Policy policy.Policy
	Stat   PolicyStat
}

// Ablations measures max-flow vs min-flow and token-bucket vs strict CPU
// enforcement on the paper-scale topology — the design choices DESIGN.md
// calls out.
func Ablations(o Options) ([]AblationRow, error) {
	pols := []policy.Policy{policy.ACES, policy.ACESMinFlow, policy.ACESStrictCPU}
	stat, err := sweepPolicies(o, pols, nil)
	if err != nil {
		return nil, err
	}
	out := make([]AblationRow, 0, len(pols))
	for _, p := range pols {
		out = append(out, AblationRow{Policy: p, Stat: stat[p]})
	}
	return out, nil
}
