package experiments

import (
	"fmt"
	"io"
	"time"

	"aces/internal/graph"
	"aces/internal/hier"
	"aces/internal/optimize"
	"aces/internal/policy"
	"aces/internal/streamsim"
)

// HierOptions scales E13, the hierarchical-control-plane experiment: at
// each topology scale, the monolithic tier-1 solve and the
// region-decomposed hierarchical solve (internal/hier) run on the same
// generated deployment, and their wall time and weighted throughput are
// compared under a fixed per-epoch deadline. A closing simulator run
// validates the targets end-to-end: the same deployment is driven from a
// naive uniform allocation with a periodic re-solve installed through
// streamsim.StartRetarget, once with the deadline-bounded monolithic
// solver and once with the hierarchical one. The zero value picks the
// full scale ladder; Quick shrinks everything for tests.
type HierOptions struct {
	// Scales lists the PE counts of the ladder (default 500, 1000, 2000,
	// 5000, 10000), nodes = PEs/PEsPerNode.
	Scales     []int
	PEsPerNode int
	// Seed drives topology generation and the simulator.
	Seed int64
	// RegionPEs is the target region size; each scale uses
	// max(2, PEs/RegionPEs) regions so regions stay near-constant in size
	// and region count grows with the deployment (default 500).
	RegionPEs int
	// MonoIters is the monolithic gradient budget (default 2500, the
	// paper-scale suite's solver budget). The monolithic solve gets a
	// GENEROUS wall cap of 4× Deadline — without one the ladder's large
	// scales would run for hours — and its wall time is compared against
	// the 1× deadline afterward, so the quality bar it sets is honest
	// where it converges and its failure to fit the epoch is the measured
	// result where it does not.
	MonoIters int
	// RegionIters is the per-region, per-sweep budget before the root's
	// reallocation (default 90); Sweeps bounds the dual-ascent rounds
	// (default 2; the coarse-to-fine polish inside hier.Solve does the
	// final quality lifting).
	RegionIters int
	Sweeps      int
	// Deadline is the per-epoch solve budget — one minute, the paper's
	// tier-1 cadence (it re-solves on the order of minutes). The
	// hierarchical solve gets it enforced; the monolithic solve is
	// measured against it.
	Deadline time.Duration
	// SimPEs scales the validation simulation (default: the largest
	// ladder scale); SimDuration and SimEvery set its horizon and
	// retarget period in simulated seconds (defaults 8 and 1.5).
	SimPEs      int
	SimDuration float64
	SimEvery    float64
	// GradPEs scales the gradient-engine acceptance row (default 1000,
	// the scale the adjoint-gradient criterion is stated at); GradIters
	// is both engines' iteration budget (default 2500) and
	// GradFDDeadline caps the finite-difference reference solve — left
	// uncapped it runs for minutes (default 30s full, 8s quick; the
	// analytic solve needs no cap).
	GradPEs        int
	GradIters      int
	GradFDDeadline time.Duration
	// Quick shrinks the ladder and the simulation for tests.
	Quick bool
}

func (o *HierOptions) fillDefaults() {
	if o.Quick {
		// The quick ladder is a PREFIX of the full one so CI's run shares
		// scales with the committed full-ladder baseline (CompareHier
		// gates the common points).
		if len(o.Scales) == 0 {
			o.Scales = []int{500, 1000, 2000}
		}
		if o.MonoIters <= 0 {
			o.MonoIters = 600
		}
		if o.SimDuration <= 0 {
			o.SimDuration = 5
		}
		if o.GradFDDeadline <= 0 {
			// Bounds CI cost while leaving the ≥10× wall-time gate an ample
			// machine-speed margin (the analytic solve runs ~100-200ms at
			// this scale on a developer box).
			o.GradFDDeadline = 8 * time.Second
		}
	}
	if len(o.Scales) == 0 {
		o.Scales = []int{500, 1000, 2000, 5000, 10000}
	}
	if o.PEsPerNode <= 0 {
		o.PEsPerNode = 10
	}
	if o.Seed == 0 {
		o.Seed = 13
	}
	if o.RegionPEs <= 0 {
		o.RegionPEs = 250
	}
	if o.MonoIters <= 0 {
		o.MonoIters = 2500
	}
	if o.RegionIters <= 0 {
		// Sized for the analytic gradient: a region iteration costs a
		// handful of propagations instead of region-size, so the budget
		// buys convergence inside the same sweep deadline.
		o.RegionIters = 400
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 2
	}
	if o.Deadline <= 0 {
		o.Deadline = time.Minute
	}
	if o.SimPEs <= 0 {
		o.SimPEs = o.Scales[len(o.Scales)-1]
	}
	if o.SimDuration <= 0 {
		o.SimDuration = 8
	}
	if o.SimEvery <= 0 {
		o.SimEvery = 2.5
	}
	if o.GradPEs <= 0 {
		o.GradPEs = 1000
	}
	if o.GradIters <= 0 {
		o.GradIters = 2500
	}
	if o.GradFDDeadline <= 0 {
		o.GradFDDeadline = 30 * time.Second
	}
}

// HierScaleRow is one ladder point: monolithic vs hierarchical solve on
// the same generated topology.
type HierScaleRow struct {
	PEs     int `json:"pes"`
	Nodes   int `json:"nodes"`
	Regions int `json:"regions"`
	// CutFrac is the fraction of stream volume crossing region boundaries
	// under the partition.
	CutFrac float64 `json:"cut_frac"`
	// MonoMillis/MonoIters time the monolithic solve (wall-capped at 4×
	// the deadline); MonoBlown marks it exceeding the per-epoch deadline
	// — the scale wall the hierarchy exists to move. MonoConverged is
	// false when even the 4× budget truncated it: past that point the
	// monolithic number is a 4×-budget competitor, not an oracle, and
	// the quality gate drops from 95% to 90%.
	MonoMillis    float64 `json:"mono_ms"`
	MonoIters     int     `json:"mono_iters"`
	MonoWT        float64 `json:"mono_wt"`
	MonoBlown     bool    `json:"mono_deadline_blown"`
	MonoConverged bool    `json:"mono_converged"`
	// HierMillis/HierSweeps time the deadline-bounded hierarchical solve;
	// HierBlown is set when even the hierarchy was truncated.
	HierMillis    float64 `json:"hier_ms"`
	HierSweeps    int     `json:"hier_sweeps"`
	HierConverged bool    `json:"hier_converged"`
	HierBlown     bool    `json:"hier_deadline_blown,omitempty"`
	HierWT        float64 `json:"hier_wt"`
	// HierFrac is hierarchical / monolithic weighted throughput — the
	// decomposition's price, gated at ≥ 0.95.
	HierFrac float64 `json:"hier_frac"`
}

// GradScaleRow is the gradient-engine acceptance row: one generated
// topology at GradPEs solved twice with identical budgets — the analytic
// adjoint engine to convergence, and the finite-difference reference under
// GradFDDeadline (uncapped it runs for minutes; the cap is exactly the
// O(p²) wall the adjoint removes). Evals counts full fluid propagations,
// the machine-independent cost unit behind the wall-time ratio.
type GradScaleRow struct {
	PEs      int     `json:"pes"`
	AnMillis float64 `json:"analytic_ms"`
	AnEvals  int     `json:"analytic_evals"`
	AnWT     float64 `json:"analytic_wt"`
	FDMillis float64 `json:"fd_ms"`
	FDEvals  int     `json:"fd_evals"`
	FDWT     float64 `json:"fd_wt"`
	// Speedup is fd_ms / analytic_ms; Frac is analytic_wt / fd_wt. The
	// acceptance gate requires Frac ≥ 0.99 (within 1% of the reference
	// objective) and Speedup ≥ 10.
	Speedup float64 `json:"speedup"`
	Frac    float64 `json:"frac"`
}

// HierSimRow is the end-to-end validation run: simulated weighted
// throughput under uniform (never retargeted), monolithic-retargeted and
// hierarchically-retargeted targets, all re-solving on the same period
// under the same per-epoch deadline.
type HierSimRow struct {
	PEs   int `json:"pes"`
	Nodes int `json:"nodes"`
	// Epochs counts installed re-solves per retargeted run.
	Epochs    int     `json:"epochs"`
	UniformWT float64 `json:"uniform_wt"`
	MonoWT    float64 `json:"mono_wt"`
	HierWT    float64 `json:"hier_wt"`
	// SimFrac is hier / mono simulated weighted throughput.
	SimFrac float64 `json:"sim_frac"`
}

// HierResult is the complete E13 outcome.
type HierResult struct {
	DeadlineMS float64        `json:"deadline_ms"`
	Scales     []HierScaleRow `json:"scales"`
	Grad       GradScaleRow   `json:"grad"`
	Sim        HierSimRow     `json:"sim"`
	// OK is the acceptance verdict: every ladder point has the
	// hierarchical solve within its deadline at ≥ 95% of the monolithic
	// weighted throughput where the monolithic solve converged (≥ 90%
	// where even its 4× budget truncated it), the analytic gradient
	// engine lands within 1% of the finite-difference reference in ≥ 10×
	// less wall time, and the simulated deployment under hierarchical
	// targets reaches ≥ 95% of the monolithic-retargeted run.
	OK bool `json:"ok"`
}

// hierFracBar is the per-scale quality gate: 95% of the monolithic
// solve where that solve converged (a real oracle), 90% where even 4×
// the epoch budget truncated it (a competitor the hierarchy must stay
// close to while actually fitting the epoch).
func hierFracBar(r HierScaleRow) float64 {
	if r.MonoConverged {
		return 0.95
	}
	return 0.90
}

// hierRegionCount keeps regions near RegionPEs PEs each, never fewer
// than two (one region would just be the monolithic solve with relay
// overhead).
func hierRegionCount(pes, regionPEs int) int {
	r := pes / regionPEs
	if r < 2 {
		r = 2
	}
	return r
}

// uniformCPU is the naive deployment allocation the validation runs
// start from: every node's capacity split evenly across its PEs.
func uniformCPU(t *graph.Topology) []float64 {
	perNode := make([]int, t.NumNodes)
	for _, pe := range t.PEs {
		perNode[pe.Node]++
	}
	cpu := make([]float64, t.NumPEs())
	for j, pe := range t.PEs {
		cpu[j] = 1.0 / float64(perNode[pe.Node])
	}
	return cpu
}

// hierSolverConfig is the shared per-region base configuration.
func hierSolverConfig(o HierOptions) optimize.Config {
	return optimize.Config{
		MaxIters: o.RegionIters,
		Utility:  optimize.LinearUtility{},
		MinShare: 0.02,
	}
}

// RunHier executes E13: the solve-time/quality ladder plus the simulator
// validation.
func RunHier(o HierOptions) (HierResult, error) {
	o.fillDefaults()
	res := HierResult{DeadlineMS: float64(o.Deadline) / float64(time.Millisecond)}
	for _, pes := range o.Scales {
		nodes := pes / o.PEsPerNode
		topo, err := graph.Generate(graph.DefaultGenConfig(pes, nodes, o.Seed))
		if err != nil {
			return res, fmt.Errorf("hier scale %d: %w", pes, err)
		}
		mono, err := optimize.Solve(topo, optimize.Config{
			MaxIters: o.MonoIters,
			Utility:  optimize.LinearUtility{},
			MinShare: 0.02,
			// 4× the epoch budget: generous enough to be an honest quality
			// bar at the scales where the monolithic solver converges,
			// bounded enough that the ladder completes at the scales where
			// it never would.
			Deadline: 4 * o.Deadline,
		})
		if err != nil {
			return res, fmt.Errorf("hier scale %d: monolithic solve: %w", pes, err)
		}
		regions := hierRegionCount(pes, o.RegionPEs)
		dec, err := hier.Partition(topo, hier.PartitionConfig{Regions: regions})
		if err != nil {
			return res, fmt.Errorf("hier scale %d: partition: %w", pes, err)
		}
		ha, err := hier.Solve(topo, dec, hier.Config{
			Optimize: hierSolverConfig(o),
			Sweeps:   o.Sweeps,
			Deadline: o.Deadline,
		})
		if err != nil {
			return res, fmt.Errorf("hier scale %d: hierarchical solve: %w", pes, err)
		}
		row := HierScaleRow{
			PEs: pes, Nodes: nodes, Regions: len(dec.Regions),
			CutFrac:    dec.CutFraction(),
			MonoMillis: mono.SolveMillis, MonoIters: mono.Iterations,
			MonoWT:        mono.WeightedThroughput,
			MonoBlown:     mono.SolveMillis > res.DeadlineMS,
			MonoConverged: !mono.DeadlineExceeded,
			HierMillis:    ha.SolveMillis, HierSweeps: ha.Sweeps,
			HierConverged: ha.Converged, HierBlown: ha.DeadlineExceeded,
			HierWT: ha.WeightedThroughput,
		}
		if row.MonoWT > 0 {
			row.HierFrac = row.HierWT / row.MonoWT
		}
		res.Scales = append(res.Scales, row)
	}

	grad, err := runGradRow(o)
	if err != nil {
		return res, err
	}
	res.Grad = grad

	sim, err := runHierSim(o)
	if err != nil {
		return res, err
	}
	res.Sim = sim

	res.OK = true
	for _, r := range res.Scales {
		if r.HierFrac < hierFracBar(r) || r.HierBlown {
			res.OK = false
		}
	}
	if res.Grad.Frac < 0.99 || res.Grad.Speedup < 10 {
		res.OK = false
	}
	if res.Sim.SimFrac < 0.95 {
		res.OK = false
	}
	return res, nil
}

// runGradRow solves the GradPEs-scale topology with both gradient engines
// under the same iteration budget and MinShare/utility configuration —
// the acceptance measurement behind Config.Gradient's analytic default.
func runGradRow(o HierOptions) (GradScaleRow, error) {
	pes := o.GradPEs
	nodes := pes / o.PEsPerNode
	if nodes < 1 {
		nodes = 1
	}
	row := GradScaleRow{PEs: pes}
	topo, err := graph.Generate(graph.DefaultGenConfig(pes, nodes, o.Seed))
	if err != nil {
		return row, fmt.Errorf("grad row: %w", err)
	}
	base := optimize.Config{
		MaxIters: o.GradIters,
		Utility:  optimize.LinearUtility{},
		MinShare: 0.02,
	}
	an, err := optimize.Solve(topo, base)
	if err != nil {
		return row, fmt.Errorf("grad row: analytic solve: %w", err)
	}
	fdCfg := base
	fdCfg.Gradient = optimize.GradientFiniteDiff
	fdCfg.Deadline = o.GradFDDeadline
	fd, err := optimize.Solve(topo, fdCfg)
	if err != nil {
		return row, fmt.Errorf("grad row: finite-difference solve: %w", err)
	}
	row.AnMillis, row.AnEvals, row.AnWT = an.SolveMillis, an.Evals, an.WeightedThroughput
	row.FDMillis, row.FDEvals, row.FDWT = fd.SolveMillis, fd.Evals, fd.WeightedThroughput
	if row.AnMillis > 0 {
		row.Speedup = row.FDMillis / row.AnMillis
	}
	if row.FDWT > 0 {
		row.Frac = row.AnWT / row.FDWT
	}
	return row, nil
}

// runHierSim drives the largest deployment in the calibrated simulator
// three times from the same naive uniform allocation: frozen, with a
// deadline-bounded monolithic re-solve every SimEvery simulated seconds,
// and with the hierarchical re-solve on the same schedule. Both solvers
// warm-start from the incumbent epoch, exactly like the live adaptive
// loop.
func runHierSim(o HierOptions) (HierSimRow, error) {
	pes := o.SimPEs
	nodes := pes / o.PEsPerNode
	row := HierSimRow{PEs: pes, Nodes: nodes}
	topo, err := graph.Generate(graph.DefaultGenConfig(pes, nodes, o.Seed))
	if err != nil {
		return row, fmt.Errorf("hier sim: %w", err)
	}
	regions := hierRegionCount(pes, o.RegionPEs)
	dec, err := hier.Partition(topo, hier.PartitionConfig{Regions: regions})
	if err != nil {
		return row, fmt.Errorf("hier sim: partition: %w", err)
	}

	run := func(solve func(cpu []float64) []float64) (float64, int, error) {
		eng, err := streamsim.New(streamsim.Config{
			Topo: topo, Policy: policy.ACES, CPU: uniformCPU(topo),
			Duration: o.SimDuration, Seed: o.Seed + 100,
		})
		if err != nil {
			return 0, 0, err
		}
		if solve != nil {
			if _, err := eng.StartRetarget(o.SimEvery, func(_ int, cpu []float64) []float64 {
				return solve(cpu)
			}); err != nil {
				return 0, 0, err
			}
		}
		rep := eng.Run()
		return rep.WeightedThroughput, eng.Retargets(), nil
	}

	uniform, _, err := run(nil)
	if err != nil {
		return row, fmt.Errorf("hier sim: uniform run: %w", err)
	}
	mono, monoEpochs, err := run(func(cpu []float64) []float64 {
		alloc, err := optimize.Solve(topo, optimize.Config{
			MaxIters: o.MonoIters,
			Utility:  optimize.LinearUtility{},
			MinShare: 0.02,
			// The live loop's epoch budget binds here: at scale the
			// truncation is exactly the quality the monolithic path pays.
			Deadline:  o.Deadline,
			WarmStart: cpu,
		})
		if err != nil {
			return nil
		}
		return alloc.CPU
	})
	if err != nil {
		return row, fmt.Errorf("hier sim: monolithic run: %w", err)
	}
	hierWT, hierEpochs, err := run(func(cpu []float64) []float64 {
		oc := hierSolverConfig(o)
		oc.WarmStart = cpu
		ha, err := hier.Solve(topo, dec, hier.Config{
			Optimize: oc,
			Sweeps:   o.Sweeps,
			Deadline: o.Deadline,
		})
		if err != nil {
			return nil
		}
		return ha.CPU
	})
	if err != nil {
		return row, fmt.Errorf("hier sim: hierarchical run: %w", err)
	}

	row.UniformWT = uniform
	row.MonoWT = mono
	row.HierWT = hierWT
	row.Epochs = monoEpochs
	if hierEpochs < monoEpochs {
		row.Epochs = hierEpochs
	}
	if row.MonoWT > 0 {
		row.SimFrac = row.HierWT / row.MonoWT
	}
	return row, nil
}

// FormatHier renders E13.
func FormatHier(w io.Writer, res HierResult) {
	rows := make([][]string, 0, len(res.Scales))
	for _, r := range res.Scales {
		monoMS := fmt.Sprintf("%.0f", r.MonoMillis)
		if r.MonoBlown {
			monoMS += " BLOWN"
		}
		if !r.MonoConverged {
			monoMS += " TRUNC"
		}
		hierMS := fmt.Sprintf("%.0f", r.HierMillis)
		if r.HierBlown {
			hierMS += " BLOWN"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.PEs),
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Regions),
			fmt.Sprintf("%.0f%%", 100*r.CutFrac),
			monoMS,
			hierMS,
			fmt.Sprintf("%d", r.HierSweeps),
			fmt.Sprintf("%.0f", r.MonoWT),
			fmt.Sprintf("%.0f", r.HierWT),
			fmt.Sprintf("%.1f%%", 100*r.HierFrac),
			fmt.Sprintf("%.0f%%", 100*hierFracBar(r)),
		})
	}
	Table(w, fmt.Sprintf("E13 — hierarchical control plane: regional solves + priced cuts vs monolithic (deadline %.0f ms)", res.DeadlineMS),
		[]string{"pes", "nodes", "regions", "cut", "mono ms", "hier ms", "sweeps", "mono wt", "hier wt", "hier/mono", "bar"}, rows)
	g := res.Grad
	if g.PEs > 0 {
		fmt.Fprintf(w, "  grad engine @ %d PEs: analytic %.0f ms / %d evals (wt %.0f) vs finite-diff %.0f ms / %d evals (wt %.0f) — %.0f× faster at %.2f%% of the reference\n",
			g.PEs, g.AnMillis, g.AnEvals, g.AnWT, g.FDMillis, g.FDEvals, g.FDWT, g.Speedup, 100*g.Frac)
	}
	s := res.Sim
	fmt.Fprintf(w, "  sim %d PEs / %d nodes, %d retarget epochs: uniform %.0f → mono %.0f, hier %.0f w/s (hier/mono %.1f%%)\n",
		s.PEs, s.Nodes, s.Epochs, s.UniformWT, s.MonoWT, s.HierWT, 100*s.SimFrac)
	verdict := "OK"
	if !res.OK {
		verdict = "FAILED"
	}
	fmt.Fprintf(w, "  verdict: %s (gate: hier within deadline and ≥ bar at every scale — 95%% vs a converged mono, 90%% vs a 4×-budget truncated one — grad ≥ 99%% at ≥ 10×, and sim ≥ 95%%)\n\n", verdict)
}

// CompareHier gates CI on the committed solver-scale baseline. Absolute
// wall time is machine-dependent, so each scale's hierarchical solve
// time is normalized by the same run's smallest COMMON scale before
// comparing: the curve's SHAPE is the invariant (near-linear growth in
// region count), and a point whose normalized cost grew more than 20%
// over the committed curve means the decomposition stopped scaling.
// Only scales present in both runs are compared — CI's quick ladder is
// a prefix of the committed full ladder. Quality is re-gated
// absolutely at each scale's bar (95% with a converged monolithic
// oracle, 90% against a truncated one).
func CompareHier(baseline, current HierResult) error {
	cur := make(map[int]HierScaleRow, len(current.Scales))
	for _, r := range current.Scales {
		cur[r.PEs] = r
	}
	var common []HierScaleRow // baseline rows with a current counterpart
	for _, b := range baseline.Scales {
		if _, ok := cur[b.PEs]; ok {
			common = append(common, b)
		}
	}
	if len(common) == 0 {
		return fmt.Errorf("baseline and current run share no scales")
	}
	ba, ca := common[0], cur[common[0].PEs]
	if ba.HierMillis <= 0 || ca.HierMillis <= 0 {
		return fmt.Errorf("anchor scale %d has no hier solve time", ba.PEs)
	}
	var faults []string
	for _, b := range common {
		c := cur[b.PEs]
		relB := b.HierMillis / ba.HierMillis
		relC := c.HierMillis / ca.HierMillis
		// The absolute floor keeps sub-anchor noise (tiny scales jitter by
		// single milliseconds) from tripping the ratio.
		if relC > relB*1.20 && c.HierMillis > ca.HierMillis+5 {
			faults = append(faults, fmt.Sprintf("scale %d: hier solve %.2f× the anchor vs %.2f× committed (>+20%%)",
				b.PEs, relC, relB))
		}
		if bar := hierFracBar(c); c.HierFrac < bar {
			faults = append(faults, fmt.Sprintf("scale %d: hier/mono %.1f%% < %.0f%%", b.PEs, 100*c.HierFrac, 100*bar))
		}
	}
	// The gradient-engine row is gated absolutely: both objective fraction
	// and speedup are ratios between two solves on the SAME machine, so no
	// baseline normalization is needed. The FD reference is deadline-capped
	// either way, which only helps the analytic side on slower runners.
	if g := current.Grad; g.PEs > 0 {
		if g.Frac < 0.99 {
			faults = append(faults, fmt.Sprintf("grad: analytic objective %.2f%% of finite-diff reference < 99%%", 100*g.Frac))
		}
		if g.Speedup < 10 {
			faults = append(faults, fmt.Sprintf("grad: analytic speedup %.1f× < 10×", g.Speedup))
		}
	}
	if len(faults) > 0 {
		return fmt.Errorf("hier regression: %v", faults)
	}
	return nil
}
