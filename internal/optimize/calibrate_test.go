package optimize

import (
	"math"
	"testing"

	"aces/internal/graph"
	"aces/internal/sim"
)

func TestRLSRecoversExactLinearModel(t *testing.T) {
	// Noise-free samples of r = 400·c − 3 with varied excitation must pin
	// both parameters regardless of the prior.
	r := NewRLS(500, 0, 0.99)
	for i := 0; i < 200; i++ {
		c := 0.1 + 0.8*float64(i%10)/10
		r.Observe(c, 400*c-3)
	}
	a, b, n := r.Estimate()
	if n != 200 {
		t.Fatalf("samples = %d", n)
	}
	if math.Abs(a-400) > 1 {
		t.Errorf("â = %g, want ≈400", a)
	}
	if math.Abs(b-3) > 0.5 {
		t.Errorf("b̂ = %g, want ≈3", b)
	}
}

func TestRLSTracksCostStepUnderCollinearData(t *testing.T) {
	// The live-runtime regime: c barely moves window to window (near
	// collinear data), prior b = 0. After a 4× cost step (a: 500 → 125)
	// the slope estimate must follow the new line within a few dozen
	// windows — this is exactly the E11 scenario.
	r := NewRLS(500, 0, 0.95)
	rng := sim.NewRand(1)
	for i := 0; i < 100; i++ {
		c := 0.30 + 0.02*rng.Float64()
		r.Observe(c, 500*c)
	}
	if a, _, _ := r.Estimate(); math.Abs(a-500) > 5 {
		t.Fatalf("pre-step â = %g, want ≈500", a)
	}
	for i := 0; i < 100; i++ {
		c := 0.30 + 0.02*rng.Float64()
		r.Observe(c, 125*c)
	}
	a, b, _ := r.Estimate()
	// â must land near 125; with collinear excitation b̂ can absorb a
	// little of the step, so accept anything that prices c = 0.3 traffic
	// within 10% of truth.
	if pred, want := a*0.3-b, 125*0.3; math.Abs(pred-want)/want > 0.10 {
		t.Errorf("post-step model predicts %g at c=0.3, want ≈%g (â=%g b̂=%g)", pred, want, a, b)
	}
	if a > 250 {
		t.Errorf("â = %g still near the old regime after 100 post-step windows", a)
	}
}

// TestRLSClampsDegenerateEstimates covers the sanity floor: adversarial
// sample runs — idle-window bursts with leftover rate, "more CPU, fewer
// SDOs" sequences, non-finite inputs — used to drive the slope negative or
// the covariance to NaN, and Calibrated() would hand the solver a model
// with negative capacity. The estimator must clamp back to the declared
// prior instead, and re-learn from clean data afterwards.
func TestRLSClampsDegenerateEstimates(t *testing.T) {
	// A "more CPU, fewer SDOs" run: physically impossible, only produced
	// by pathological sampling. It drives â toward negative territory.
	// The estimator keeps chasing the impossible line and the clamp keeps
	// resetting it, so the invariant is per-update: the exposed slope must
	// never be non-positive, no matter where the run stops.
	r := NewRLS(500, 0, 0.9)
	for i := 0; i < 200; i++ {
		c := 0.1 + 0.8*float64(i%10)/10
		r.Observe(c, 80-80*c) // slope −80
		if a, _, _ := r.Estimate(); a <= rlsSlopeEps {
			t.Fatalf("negative-slope data left â = %g (≤ eps) after sample %d", a, i)
		}
	}
	a, b, _ := r.Estimate()

	// Non-finite samples poison every parameter in one update; the clamp
	// must catch the NaN/Inf before Estimate exposes it.
	for _, bad := range [][2]float64{{math.NaN(), 100}, {0.3, math.NaN()}, {math.Inf(1), 100}, {0.3, math.Inf(1)}} {
		r := NewRLS(500, 2, 0.98)
		r.Observe(0.3, 150) // one sane sample first
		r.Observe(bad[0], bad[1])
		a, b, _ := r.Estimate()
		if !isFinite(a) || !isFinite(b) || a <= rlsSlopeEps {
			t.Errorf("Observe(%g, %g) left estimate â=%g b̂=%g", bad[0], bad[1], a, b)
		}
	}

	// Idle-sample burst: near-zero CPU windows with residual rate claim an
	// enormous negative intercept. Whatever the burst does, the estimator
	// must stay finite and recover the true line from fresh clean data.
	r = NewRLS(500, 0, 0.9)
	for i := 0; i < 50; i++ {
		r.Observe(1e-8, 30)
	}
	a, b, _ = r.Estimate()
	if !isFinite(a) || !isFinite(b) || a <= rlsSlopeEps {
		t.Fatalf("idle burst left â=%g b̂=%g", a, b)
	}
	for i := 0; i < 200; i++ {
		c := 0.1 + 0.8*float64(i%10)/10
		r.Observe(c, 400*c)
	}
	if a, b, _ := r.Estimate(); math.Abs((a*0.3-b)-400*0.3) > 0.1*400*0.3 {
		t.Errorf("post-burst model predicts %g at c=0.3, want ≈120 (â=%g b̂=%g)", a*0.3-b, a, b)
	}
}

func TestCalibratorCalibratedSwapsMeasuredModels(t *testing.T) {
	topo := chainTopo(t, []float64{0.002, 0.004}, 1000)
	cal := NewCalibrator(topo, 0.98, 8)

	// PE 0's true cost drifted to 8 ms (a = 125); PE 1 stays unobserved
	// (a remote PE, say) and must keep its declared model.
	for i := 0; i < 50; i++ {
		c := 0.2 + 0.01*float64(i%5)
		cal.Observe(0, c, 125*c)
	}
	ct := cal.Calibrated()
	if got := ct.PEs[0].Service.EffectiveCost(); math.Abs(got-0.008) > 0.0005 {
		t.Errorf("calibrated cost PE0 = %g, want ≈0.008", got)
	}
	if got := ct.PEs[1].Service.EffectiveCost(); got != topo.PEs[1].Service.EffectiveCost() {
		t.Errorf("unsampled PE1 cost changed: %g", got)
	}
	// The original topology is untouched (Calibrated returns a copy).
	if got := topo.PEs[0].Service.EffectiveCost(); got != 0.002 {
		t.Errorf("source topology mutated: %g", got)
	}
	// The copy solves: adjacency survived the clone.
	if _, err := Solve(ct, Config{}); err != nil {
		t.Fatalf("Solve(calibrated): %v", err)
	}
}

func TestCalibratorIgnoresIdleAndInsaneWindows(t *testing.T) {
	topo := chainTopo(t, []float64{0.002}, 1000)
	cal := NewCalibrator(topo, 0.98, 4)
	for i := 0; i < 100; i++ {
		cal.Observe(0, 0, 0)     // idle window: no information
		cal.Observe(0, -1, 10)   // nonsense
		cal.Observe(0, 0.1, -5)  // nonsense
		cal.Observe(99, 0.1, 10) // out of range
		cal.Observe(-1, 0.1, 10) // out of range
	}
	if m := cal.Model(0); m.Samples != 0 {
		t.Errorf("junk windows were folded in: %+v", m)
	}
	// An estimate wildly off the prior (>100×) is rejected at Calibrated.
	for i := 0; i < 20; i++ {
		cal.Observe(0, 0.2, 0.2*1e9) // implies a = 1e9, prior is 500
	}
	ct := cal.Calibrated()
	if got := ct.PEs[0].Service.EffectiveCost(); got != 0.002 {
		t.Errorf("pathological estimate applied: cost = %g", got)
	}
}

func TestSolveWarmStartMatchesColdStart(t *testing.T) {
	topo := chainTopo(t, []float64{0.002, 0.004, 0.003}, 200)
	cold, err := Solve(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-starting from the incumbent must converge to the same optimum,
	// in no more iterations than the cold solve.
	warm, err := Solve(topo, Config{WarmStart: cold.CPU})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.WeightedThroughput-cold.WeightedThroughput) > 0.01*cold.WeightedThroughput {
		t.Errorf("warm throughput %g vs cold %g", warm.WeightedThroughput, cold.WeightedThroughput)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start used %d iterations, cold used %d", warm.Iterations, cold.Iterations)
	}
}

func TestSolveWarmStartProjectsInfeasibleIncumbent(t *testing.T) {
	topo := chainTopo(t, []float64{0.002, 0.004}, 200)
	// A stale incumbent can be infeasible (node oversubscribed) or
	// garbage (negative, NaN); Solve must project it and still optimize.
	ws := []float64{2.5, math.NaN()}
	a, err := Solve(topo, Config{WarmStart: ws})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range a.CPU {
		if c < 0 || math.IsNaN(c) {
			t.Fatalf("infeasible allocation %v", a.CPU)
		}
		sum += c
	}
	if sum > 1+1e-9 {
		t.Errorf("node oversubscribed: Σc = %g", sum)
	}
	if a.WeightedThroughput <= 0 {
		t.Errorf("degenerate solution from bad warm start: %+v", a)
	}
	// Wrong-length warm starts fall back to the cold start.
	if _, err := Solve(topo, Config{WarmStart: []float64{0.5}}); err != nil {
		t.Fatalf("short warm start: %v", err)
	}
}

func TestCalibratedFeedsSolve(t *testing.T) {
	// End-to-end tier-1 half of the adaptive loop: observe a drifted cost,
	// re-solve on the calibrated topology, and check the allocation moved
	// toward the PE that got more expensive.
	topo := graph.New(1, 50)
	a := topo.AddPE(graph.PE{Service: uniformService(0.002), Weight: 1})
	b := topo.AddPE(graph.PE{Service: uniformService(0.002), Weight: 1})
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 1e6, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 2, Target: b, Rate: 1e6, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	base, err := Solve(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cal := NewCalibrator(topo, 0.95, 8)
	for i := 0; i < 60; i++ {
		c := 0.4 + 0.02*float64(i%5)
		cal.Observe(0, c, c/0.008) // PE a now costs 8 ms/SDO
		cal.Observe(1, c, c/0.002) // PE b unchanged
	}
	re, err := Solve(cal.Calibrated(), Config{WarmStart: base.CPU})
	if err != nil {
		t.Fatal(err)
	}
	// The re-solve must price PE a at its measured 8 ms — its fluid rate
	// is c/0.008, not the declared c/0.002 the base solve used.
	if want := re.CPU[0] / 0.008; math.Abs(re.RIn[0]-want) > 0.02*want {
		t.Errorf("re-solve rate for slowed PE = %g at c = %g, want ≈%g (calibrated model not applied)",
			re.RIn[0], re.CPU[0], want)
	}
	if base.RIn[0] < 2*re.RIn[0] {
		t.Errorf("base %g vs recalibrated %g SDOs/s: cost step invisible to tier 1", base.RIn[0], re.RIn[0])
	}
}
