package optimize

import (
	"math"
	"testing"

	"aces/internal/graph"
	"aces/internal/sdo"
)

// hotTopo builds the canonical elastic scenario: a 2-node deployment whose
// middle PE is too expensive for one node. PE 0 (cheap ingress, node 0) →
// PE 1 (hot, cost `hotCost`, node 0, MaxReplicas 2 with the extra slot on
// node 1) → PE 2 (cheap egress, node 1, weight 1).
func hotTopo(t *testing.T, srcRate, hotCost float64) *graph.Topology {
	t.Helper()
	topo := graph.New(2, 50)
	a := topo.AddPE(graph.PE{Service: uniformService(0.0001), Node: 0})
	b := topo.AddPE(graph.PE{
		Service: uniformService(hotCost), Node: 0,
		MaxReplicas: 2, ReplicaNodes: []sdo.NodeID{1},
	})
	c := topo.AddPE(graph.PE{Service: uniformService(0.00005), Node: 1, Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(b, c); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: srcRate, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestSolveElasticMatchesSolveWithoutReplicas(t *testing.T) {
	// A topology with no elastic PEs has exactly Solve's feasible set; the
	// two solvers must land on the same optimum.
	topo := chainTopo(t, []float64{0.002, 0.004, 0.003}, 200)
	plain, err := Solve(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ea, err := SolveElastic(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ea.WeightedThroughput-plain.WeightedThroughput) > 0.03*plain.WeightedThroughput {
		t.Errorf("elastic wt %g vs plain wt %g on a replica-free topology",
			ea.WeightedThroughput, plain.WeightedThroughput)
	}
	for j := range ea.Replica {
		if len(ea.Replica[j]) != 1 {
			t.Fatalf("PE %d got %d slots, want 1", j, len(ea.Replica[j]))
		}
		if ea.Replica[j][0] != ea.CPU[j] {
			t.Errorf("PE %d slot/logical mismatch: %g vs %g", j, ea.Replica[j][0], ea.CPU[j])
		}
		if ea.Replicas[j] > 1 {
			t.Errorf("PE %d reports %d active replicas", j, ea.Replicas[j])
		}
	}
}

func TestSolveElasticScalesOutHotPE(t *testing.T) {
	// 400/s through a 4 ms PE needs 1.6 CPU — impossible on one node, so
	// the frozen solve tops out near 250/s while the elastic solve must
	// activate the second slot and carry (nearly) the whole offered load.
	topo := hotTopo(t, 400, 0.004)
	frozen, err := Solve(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ea, err := SolveElastic(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if frozen.WeightedThroughput > 260 {
		t.Fatalf("frozen solve claims %g/s, the hot PE should cap it ≈250/s", frozen.WeightedThroughput)
	}
	if ea.Replicas[1] != 2 {
		t.Errorf("elastic solve activated %d replicas of the hot PE, want 2 (slots %v)",
			ea.Replicas[1], ea.Replica[1])
	}
	if ea.WeightedThroughput < 0.9*400 {
		t.Errorf("elastic wt = %g, want ≥ 360 (≥90%% of offered load)", ea.WeightedThroughput)
	}
	// Per-node feasibility: each node's slots must fit its simplex.
	use := make([]float64, topo.NumNodes)
	for j := range ea.Replica {
		for r, v := range ea.Replica[j] {
			use[topo.ReplicaPlacement(sdo.PEID(j))[r]] += v
		}
	}
	for n, u := range use {
		if u > 1+1e-9 {
			t.Errorf("node %d oversubscribed: Σc = %g", n, u)
		}
	}
}

func TestSolveElasticParsimonyPrunesIdleReplicas(t *testing.T) {
	// At 100/s the hot PE needs only 0.4 CPU: one slot suffices, and the
	// parsimony pass must prune the second instead of leaving solver dust
	// that would spin up a warm replica for nothing.
	topo := hotTopo(t, 100, 0.004)
	ea, err := SolveElastic(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ea.Replicas[1] != 1 {
		t.Errorf("low demand kept %d replicas active (slots %v), want 1",
			ea.Replicas[1], ea.Replica[1])
	}
	if ea.WeightedThroughput < 95 {
		t.Errorf("wt = %g, want ≈100", ea.WeightedThroughput)
	}
}

func TestSolveElasticWarmStart(t *testing.T) {
	topo := hotTopo(t, 400, 0.004)
	cold, err := SolveElastic(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SolveElastic(topo, Config{WarmStartReplica: cold.Replica})
	if err != nil {
		t.Fatal(err)
	}
	if warm.WeightedThroughput < 0.97*cold.WeightedThroughput {
		t.Errorf("warm wt %g vs cold wt %g", warm.WeightedThroughput, cold.WeightedThroughput)
	}
	// A malformed warm start (wrong shape, garbage values) must fall back
	// to the cold start, not crash or produce an infeasible point.
	bad, err := SolveElastic(topo, Config{WarmStartReplica: [][]float64{{math.NaN()}, {-3, 2, 2}, {1}}})
	if err != nil {
		t.Fatal(err)
	}
	if bad.WeightedThroughput < 0.9*cold.WeightedThroughput {
		t.Errorf("bad warm start degraded the solve: %g vs %g", bad.WeightedThroughput, cold.WeightedThroughput)
	}
}
