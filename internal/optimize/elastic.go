// Elastic tier-1 solve: choose per-replica-slot CPU targets, letting a
// logical PE fan out into N parallel replicas when one node cannot hold
// its demand. Each active replica of PE j adds a_j·c̄ − b_j capacity but
// pays the fixed overhead b_j again (paper Eq. 6 per instance), so the
// solver trades fan-out against overhead under the same per-node capacity
// simplices as Solve. The scaling policy follows Daedalus-style model-
// driven autoscaling: replica counts fall out of the calibrated h_j
// models rather than reactive thresholds.
package optimize

import (
	"fmt"
	"math"
	"time"

	"aces/internal/graph"
	"aces/internal/sdo"
)

// ElasticAllocation is SolveElastic's output: per-replica-slot CPU
// targets plus the logical view the rest of the control plane consumes.
type ElasticAllocation struct {
	// Replica[j][r] is the CPU target of replica slot r of PE j, on the
	// node given by the topology's ReplicaPlacement. Slot 0 is the
	// primary; a slot with target 0 is dormant.
	Replica [][]float64
	// CPU[j] is the logical total Σ_r Replica[j][r].
	CPU []float64
	// Replicas[j] counts PE j's active slots (target > 0).
	Replicas []int
	// RIn and ROut are the fluid rates of the logical PEs.
	RIn, ROut []float64
	// Objective is Σ w_j U(r̄_out,j) at the solution.
	Objective float64
	// WeightedThroughput is Σ w_j r̄_out,j.
	WeightedThroughput float64
	// Iterations actually used by the solver.
	Iterations int
	// Evals counts full fluid propagations the solver performed.
	Evals int
	// ColdStart reports that the solver started from the demand-
	// proportional cold point: no WarmStartReplica was supplied, or its
	// shape did not match the topology's replica placement (the silent
	// fallback the retarget loop surfaces through the
	// retarget_cold_solves_total counter).
	ColdStart bool
	// SolveMillis is the wall-clock solve time in milliseconds.
	SolveMillis float64
	// DeadlineExceeded is set when Config.Deadline cut the ascent short.
	DeadlineExceeded bool
}

// activeSlotEps is the smallest CPU target that keeps a non-primary slot
// active; anything smaller is solver dust, snapped to 0 so the data plane
// does not spin up a replica for nanocores.
const activeSlotEps = 1e-4

// SolveElastic computes per-replica-slot CPU targets for a validated
// topology. PEs with MaxReplicas ≤ 1 degenerate to their primary slot and
// the solve matches Solve's feasible set exactly; elastic PEs may spread
// across their declared slots when the objective gains more from parallel
// capacity than it loses to the per-replica overhead tax. A parsimony
// pass then prunes replicas whose removal costs nothing, so low demand
// collapses back to one replica instead of idling N warm ones.
func SolveElastic(t *graph.Topology, cfg Config) (*ElasticAllocation, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("optimize: %w", err)
	}
	cfg.fillDefaults()
	order, err := t.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := t.NumPEs()

	start := time.Now()
	deadlineHit := false
	expired := func() bool {
		if cfg.Deadline <= 0 || time.Since(start) < cfg.Deadline {
			return false
		}
		deadlineHit = true
		return true
	}

	// Flatten replica slots into one decision vector. slotOf[j] lists PE
	// j's flat indices; nodeSlots[n] the flat indices placed on node n.
	var slotPE []sdo.PEID
	var slotNode []sdo.NodeID
	slotOf := make([][]int, p)
	nodeSlots := make([][]int, t.NumNodes)
	for j := 0; j < p; j++ {
		for _, n := range t.ReplicaPlacement(sdo.PEID(j)) {
			i := len(slotPE)
			slotPE = append(slotPE, sdo.PEID(j))
			slotNode = append(slotNode, n)
			slotOf[j] = append(slotOf[j], i)
			nodeSlots[n] = append(nodeSlots[n], i)
		}
	}
	ns := len(slotPE)

	pj := newSlotProjector(nodeSlots)
	cold := !warmShapeOK(cfg.WarmStartReplica, slotOf)
	x := make([]float64, ns)
	if !cold {
		warm := cfg.WarmStartReplica
		for j := 0; j < p; j++ {
			for r, i := range slotOf[j] {
				v := warm[j][r]
				if v < 0 || math.IsNaN(v) {
					v = 0
				}
				x[i] = v
			}
		}
		pj.project(x, cfg.Headroom)
	} else {
		// Cold start: spread each node's budget across its slots, blending
		// demand-proportional shares with a uniform floor. The floor keeps
		// every slot in the interior — a slot starting at 0 sits in the
		// dead zone of its rate model (a·c < b, zero capacity, zero
		// gradient) and could never be discovered by ascent.
		demand, err := t.UnitDemand()
		if err != nil {
			return nil, err
		}
		for i := 0; i < ns; i++ {
			j := slotPE[i]
			x[i] = demand[j]*t.PEs[j].Service.EffectiveCost()/float64(len(slotOf[j])) + 0.05
		}
		for _, ids := range nodeSlots {
			sum := 0.0
			for _, i := range ids {
				sum += x[i]
			}
			if sum <= 0 {
				continue
			}
			for _, i := range ids {
				x[i] *= 0.95 * cfg.Headroom / sum
			}
		}
	}

	ws := newAdjoint(t, order, slotOf)
	eval := func(x []float64) float64 { return ws.eval(x, cfg.Utility) }

	best := make([]float64, ns)
	copy(best, x)
	bestObj := eval(x)
	// As in Solve, the accepted trial's objective is carried forward so
	// each iteration skips the redundant base re-evaluation.
	curObj := bestObj
	objWindow := bestObj

	grad := make([]float64, ns)
	trial := make([]float64, ns)
	step := 0.05
	iters := 0
	for it := 1; it <= cfg.MaxIters; it++ {
		if expired() {
			break
		}
		iters = it
		var base float64
		if cfg.Gradient == GradientFiniteDiff {
			base = curObj
			// The deadline is polled inside the gradient too (one gradient is
			// ns evals); a truncated gradient abandons the iteration.
			const h = 1e-7
			truncated := false
			for i := 0; i < ns; i++ {
				if i%64 == 63 && expired() {
					truncated = true
					break
				}
				old := x[i]
				x[i] = old + h
				grad[i] = (eval(x) - base) / h
				x[i] = old
			}
			if truncated {
				break
			}
		} else {
			base = ws.evalGrad(x, cfg.Utility, grad)
		}
		gnorm := 0.0
		for _, g := range grad {
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-14 {
			break
		}
		improved := false
		for attempt := 0; attempt < 12; attempt++ {
			for i := 0; i < ns; i++ {
				trial[i] = x[i] + step*grad[i]/gnorm
			}
			pj.project(trial, cfg.Headroom)
			if obj := eval(trial); obj > base {
				copy(x, trial)
				curObj = obj
				if obj > bestObj {
					bestObj = obj
					copy(best, x)
				}
				step *= 1.25
				if step > 0.25 {
					step = 0.25
				}
				improved = true
				break
			}
			step *= 0.5
			if step < 1e-10 {
				break
			}
		}
		if !improved {
			break
		}
		if it%25 == 0 {
			if bestObj-objWindow <= cfg.Tol*(math.Abs(bestObj)+1e-12) {
				break
			}
			objWindow = bestObj
		}
	}

	// Subgradient polish along the min-composition ridges, as in Solve.
	copy(x, best)
	subIters := cfg.MaxIters - iters
	if subIters > 3000 {
		subIters = 3000
	}
	stepped := false
	for it := 1; it <= subIters; it++ {
		if expired() {
			break
		}
		iters++
		if cfg.Gradient == GradientFiniteDiff {
			const h = 1e-7
			truncated := false
			for i := 0; i < ns; i++ {
				if i%64 == 63 && expired() {
					truncated = true
					break
				}
				old := x[i]
				x[i] = old + h
				up := eval(x)
				x[i] = old - h
				down := eval(x)
				x[i] = old
				grad[i] = (up - down) / (2 * h)
			}
			if truncated {
				break
			}
		} else {
			if obj := ws.evalGrad(x, cfg.Utility, grad); obj > bestObj {
				bestObj = obj
				copy(best, x)
			}
		}
		gnorm := 0.0
		for _, g := range grad {
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-14 {
			break
		}
		alpha := 0.15 / math.Sqrt(float64(it))
		for i := 0; i < ns; i++ {
			x[i] += alpha * grad[i] / gnorm
		}
		pj.project(x, cfg.Headroom)
		stepped = true
		if cfg.Gradient == GradientFiniteDiff {
			if obj := eval(x); obj > bestObj {
				bestObj = obj
				copy(best, x)
			}
		}
	}
	if cfg.Gradient != GradientFiniteDiff && stepped {
		if obj := eval(x); obj > bestObj {
			bestObj = obj
			copy(best, x)
		}
	}

	// Parsimony: drop every non-primary replica whose removal does not
	// cost objective (within tolerance). The ascent happily leaves dust on
	// extra slots when capacity exceeds demand; each warm replica is a
	// buffer, a goroutine, and a b_j tax at runtime, so spend them only
	// where they buy throughput.
	tol := cfg.Tol * (math.Abs(bestObj) + 1e-12)
	for pass := 0; pass < 2; pass++ {
		pruned := false
		for i := 0; i < ns; i++ {
			j := slotPE[i]
			if i == slotOf[j][0] || best[i] == 0 {
				continue
			}
			old := best[i]
			best[i] = 0
			if obj := eval(best); bestObj-obj <= tol {
				if obj > bestObj {
					bestObj = obj
				}
				pruned = true
				continue
			}
			best[i] = old
		}
		if !pruned {
			break
		}
	}
	for i := 0; i < ns; i++ {
		if j := slotPE[i]; i != slotOf[j][0] && best[i] < activeSlotEps {
			best[i] = 0
		}
	}

	// The returned Objective is recomputed from the PRUNED slot vector:
	// parsimony removes replicas whose absence costs up to tol objective
	// (and dust-snapping a little more) without ever decrementing bestObj,
	// so echoing bestObj would overstate what the returned Replica matrix
	// achieves.
	ws.forward(best)
	rin := append([]float64(nil), ws.rin...)
	rout := append([]float64(nil), ws.rout...)
	ea := &ElasticAllocation{
		Replica:          make([][]float64, p),
		CPU:              make([]float64, p),
		Replicas:         make([]int, p),
		RIn:              rin,
		ROut:             rout,
		Objective:        ws.objective(cfg.Utility),
		Iterations:       iters,
		Evals:            ws.evals,
		ColdStart:        cold,
		SolveMillis:      float64(time.Since(start)) / float64(time.Millisecond),
		DeadlineExceeded: deadlineHit,
	}
	for j := 0; j < p; j++ {
		ea.Replica[j] = make([]float64, len(slotOf[j]))
		for r, i := range slotOf[j] {
			ea.Replica[j][r] = best[i]
			ea.CPU[j] += best[i]
			if best[i] > 0 {
				ea.Replicas[j]++
			}
		}
		ea.WeightedThroughput += t.PEs[j].Weight * rout[j]
	}
	return ea, nil
}

func warmShapeOK(warm [][]float64, slotOf [][]int) bool {
	if len(warm) != len(slotOf) {
		return false
	}
	for j := range warm {
		if len(warm[j]) != len(slotOf[j]) {
			return false
		}
	}
	return true
}

// propagateElastic is the fluid model over replica groups: PE j's
// processing capacity is the sum over its slots of max(0, x/cost − b) —
// every active replica pays the overhead tax again — and the flow
// propagation over the logical DAG is identical to propagate.
func propagateElastic(t *graph.Topology, order []sdo.PEID, slotOf [][]int, x []float64) (rin, rout []float64) {
	p := t.NumPEs()
	rin = make([]float64, p)
	rout = make([]float64, p)
	avail := make([]float64, p)
	var joinFeeds map[sdo.PEID][]float64
	for _, s := range t.Sources {
		avail[s.Target] += s.Rate
	}
	for _, j := range order {
		pe := &t.PEs[j]
		cap := 0.0
		for _, i := range slotOf[j] {
			if v := x[i]/pe.Service.EffectiveCost() - pe.Overhead; v > 0 {
				cap += v
			}
		}
		r := avail[j]
		if pe.Join {
			r = math.Inf(1)
			for _, v := range joinFeeds[j] {
				if v < r {
					r = v
				}
			}
			if len(joinFeeds[j]) < len(t.Up(j)) || math.IsInf(r, 1) {
				r = 0
			}
		}
		if cap < r {
			r = cap
		}
		rin[j] = r
		m := pe.Service.MeanMult
		if m <= 0 {
			m = 1
		}
		rout[j] = r * m
		for _, d := range t.Down(j) {
			if t.PEs[d].Join {
				if joinFeeds == nil {
					joinFeeds = make(map[sdo.PEID][]float64)
				}
				joinFeeds[d] = append(joinFeeds[d], rout[j])
			} else {
				avail[d] += rout[j]
			}
		}
	}
	return rin, rout
}

// PropagateElastic exposes the replica-group fluid model for external
// consumers: replica[j] must have one entry per replica slot of PE j
// (shape t.Replicas(j)). The hierarchical control plane uses it to
// evaluate an assembled per-region elastic solution on the full graph.
func PropagateElastic(t *graph.Topology, replica [][]float64) (rin, rout []float64, err error) {
	order, err := t.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	p := t.NumPEs()
	if len(replica) != p {
		return nil, nil, fmt.Errorf("optimize: replica matrix has %d rows, topology has %d PEs", len(replica), p)
	}
	var x []float64
	slotOf := make([][]int, p)
	for j := 0; j < p; j++ {
		if len(replica[j]) != t.Replicas(sdo.PEID(j)) {
			return nil, nil, fmt.Errorf("optimize: replica row %d has %d slots, topology declares %d", j, len(replica[j]), t.Replicas(sdo.PEID(j)))
		}
		for _, v := range replica[j] {
			slotOf[j] = append(slotOf[j], len(x))
			x = append(x, v)
		}
	}
	rin, rout = propagateElastic(t, order, slotOf, x)
	return rin, rout, nil
}
