// Package optimize implements ACES tier 1: the global optimization that
// assigns time-averaged CPU targets c̄_j to every PE so as to maximize the
// weighted throughput of the system (paper §V-B):
//
//	maximize   Σ_j w_j · U(r̄_out,j)
//	subject to Σ_{j ∈ node i} c̄_j ≤ 1            (per-node CPU, Eq. 4)
//	           r̄_in,j bounded by upstream output   (flow, Eq. 5)
//	           r̄_in,j = h_j(c̄_j) = a_j·c̄_j − b_j  (rate model, Eq. 6)
//
// U is strictly increasing, concave and differentiable; the paper suggests
// U(x) = x, log(x+1), or 1 − e^{−x}. The objective is evaluated through a
// fluid-flow propagation over the DAG and maximized by projected gradient
// ascent with adaptive step control; each node's allocations are projected
// back onto the capacity simplex {c ≥ 0, Σ c ≤ 1}. Concavity of the
// composition (min of concave functions, scaled and fed through concave
// increasing U) makes the maximum unique up to flat directions, so gradient
// ascent with projection converges; tests verify optima against closed
// forms and brute-force grids.
package optimize

import (
	"fmt"
	"math"
	"time"

	"aces/internal/graph"
	"aces/internal/sdo"
	"aces/internal/sim"
)

// Utility is a concave increasing utility U(x) applied to each weighted
// output rate.
type Utility interface {
	// Value returns U(x) for x ≥ 0.
	Value(x float64) float64
	// Name identifies the utility in reports.
	Name() string
}

// LinearUtility is U(x) = x: the objective becomes the plain weighted
// throughput.
type LinearUtility struct{}

// Value implements Utility.
func (LinearUtility) Value(x float64) float64 { return x }

// Name implements Utility.
func (LinearUtility) Name() string { return "linear" }

// LogUtility is U(x) = log(1 + x/Scale): concave with diminishing returns,
// favouring balanced rate assignments. Scale sets the knee (default 1).
type LogUtility struct {
	Scale float64
}

// Value implements Utility.
func (u LogUtility) Value(x float64) float64 {
	s := u.Scale
	if s <= 0 {
		s = 1
	}
	return math.Log1p(x / s)
}

// Name implements Utility.
func (LogUtility) Name() string { return "log" }

// ExpUtility is U(x) = 1 − e^{−x/Scale}, the paper's saturating example.
type ExpUtility struct {
	Scale float64
}

// Value implements Utility.
func (u ExpUtility) Value(x float64) float64 {
	s := u.Scale
	if s <= 0 {
		s = 1
	}
	return 1 - math.Exp(-x/s)
}

// Name implements Utility.
func (ExpUtility) Name() string { return "exp" }

// Interface compliance checks.
var (
	_ Utility = LinearUtility{}
	_ Utility = LogUtility{}
	_ Utility = ExpUtility{}
)

// Allocation is the tier-1 output: per-PE CPU targets and the fluid rates
// they induce.
type Allocation struct {
	// CPU[j] is c̄_j, the fraction of PE j's node allocated to it.
	CPU []float64
	// RIn[j] and ROut[j] are the fluid input/output rates in SDOs/sec.
	RIn, ROut []float64
	// Objective is Σ w_j U(r̄_out,j) at the solution.
	Objective float64
	// WeightedThroughput is Σ w_j r̄_out,j (the report metric, independent
	// of the utility shape used during optimization).
	WeightedThroughput float64
	// Iterations actually used by the solver.
	Iterations int
	// Evals counts full fluid propagations the solver performed — its
	// dominant cost unit. One analytic-gradient iteration costs a handful
	// (gradient + line search); one finite-difference iteration costs p.
	Evals int
	// ColdStart reports that the solver started from the demand-
	// proportional cold point: no WarmStart was supplied, or its shape did
	// not match the topology (a silent fallback the retarget loop surfaces
	// through the retarget_cold_solves_total counter).
	ColdStart bool
	// SolveMillis is the wall-clock solve time in milliseconds.
	SolveMillis float64
	// DeadlineExceeded is set when Config.Deadline cut the ascent short:
	// the allocation is the best iterate found, not a converged optimum.
	DeadlineExceeded bool
}

// Config tunes the solver.
type Config struct {
	// Utility defaults to LogUtility{Scale: 1} — strictly concave, which
	// both matches the paper's examples and makes the optimum unique.
	Utility Utility
	// MaxIters bounds gradient iterations (default 4000).
	MaxIters int
	// Tol stops when the relative objective improvement over a 25-iteration
	// window falls below it (default 1e-9).
	Tol float64
	// Headroom caps each node's total allocation at this value instead of
	// 1.0, reserving CPU for system overhead (default 1.0 — no reserve).
	Headroom float64
	// MinShare floors every PE's allocation at this fraction of its node,
	// applied after optimization (rescaling the node if needed). Linear
	// utility legitimately starves weight-inefficient PEs toward zero; a
	// deployed PE still needs a minimum slice to make progress, and a
	// zero allocation would wedge blocking policies forever. 0 disables.
	MinShare float64
	// WarmStart, when it has one entry per PE, replaces the cold
	// demand-proportional initial point: the solver starts from this
	// allocation (projected onto the node simplices, so an infeasible or
	// stale incumbent is safe). Periodic retargeting passes the incumbent
	// allocation here — near the old optimum the re-solve converges in a
	// handful of iterations instead of re-walking the whole ascent.
	WarmStart []float64
	// WarmStartReplica is SolveElastic's warm start: per-PE per-replica-
	// slot incumbents, shaped like the topology's replica placement. Solve
	// ignores it.
	WarmStartReplica [][]float64
	// Gradient selects the gradient engine: GradientAnalytic (the zero
	// value) computes each gradient with one adjoint backward sweep;
	// GradientFiniteDiff retains the O(p²) difference-quotient reference
	// the gradient-check harness pins the adjoint against.
	Gradient GradientMode
	// Deadline bounds the solver's wall-clock time (0 = unbounded). When
	// it expires the solver stops at the end of the current iteration and
	// returns the best iterate found so far with DeadlineExceeded set —
	// every iterate is feasible (projection keeps it on the node
	// simplices), so a truncated solve still yields deployable targets.
	// The retarget loop uses this so a pathological topology degrades the
	// solution quality of one epoch instead of stalling the loop.
	Deadline time.Duration
}

func (c *Config) fillDefaults() {
	if c.Utility == nil {
		c.Utility = LogUtility{Scale: 1}
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 4000
	}
	if c.Tol <= 0 {
		c.Tol = 1e-9
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 1
	}
}

// Solve computes the tier-1 allocation for a validated topology.
func Solve(t *graph.Topology, cfg Config) (*Allocation, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("optimize: %w", err)
	}
	cfg.fillDefaults()
	order, err := t.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := t.NumPEs()

	start := time.Now()
	deadlineHit := false
	expired := func() bool {
		if cfg.Deadline <= 0 || time.Since(start) < cfg.Deadline {
			return false
		}
		deadlineHit = true
		return true
	}

	// Initial point: the warm-start incumbent when one is supplied (made
	// feasible by projection), otherwise each node's budget is allocated
	// proportionally to the unit-load CPU demand of its PEs — feasible and
	// in the interior.
	pj := newNodeProjector(t)
	cold := len(cfg.WarmStart) != p
	c := make([]float64, p)
	if !cold {
		copy(c, cfg.WarmStart)
		for j := range c {
			if c[j] < 0 || math.IsNaN(c[j]) {
				c[j] = 0
			}
		}
		pj.project(c, cfg.Headroom)
	} else {
		demand, err := t.UnitDemand()
		if err != nil {
			return nil, err
		}
		nodeSum := make([]float64, t.NumNodes)
		for j := 0; j < p; j++ {
			c[j] = demand[j]*t.PEs[j].Service.EffectiveCost() + 1e-6
			nodeSum[t.PEs[j].Node] += c[j]
		}
		for j := 0; j < p; j++ {
			c[j] *= 0.95 * cfg.Headroom / nodeSum[t.PEs[j].Node]
		}
	}

	ws := newAdjoint(t, order, nil)
	eval := func(c []float64) float64 { return ws.eval(c, cfg.Utility) }

	best := make([]float64, p)
	copy(best, c)
	bestObj := eval(c)
	// curObj tracks eval(c) across iterations: the accepted line-search
	// trial already produced it, so re-deriving the base objective at the
	// top of each iteration would waste one full propagation per
	// iteration. eval is deterministic, so the carried value is exactly
	// what the re-evaluation would return — identical iterates, one fewer
	// eval.
	curObj := bestObj
	objWindow := bestObj

	grad := make([]float64, p)
	trial := make([]float64, p)
	step := 0.05
	iters := 0
	for it := 1; it <= cfg.MaxIters; it++ {
		if expired() {
			break
		}
		iters = it
		var base float64
		if cfg.Gradient == GradientFiniteDiff {
			base = curObj
			// Forward-difference gradient. The objective is piecewise smooth
			// (min compositions); forward differences give a valid ascent
			// direction almost everywhere. One gradient is p evals — at large
			// p that alone can dwarf the deadline, so the deadline is also
			// polled inside the loop and a truncated gradient abandons the
			// iteration (best holds the last complete iterate).
			const h = 1e-7
			truncated := false
			for j := 0; j < p; j++ {
				if j%64 == 63 && expired() {
					truncated = true
					break
				}
				old := c[j]
				c[j] = old + h
				grad[j] = (eval(c) - base) / h
				c[j] = old
			}
			if truncated {
				break
			}
		} else {
			// Adjoint gradient: one forward pass (which doubles as the base
			// evaluation) plus one backward sweep, independent of p.
			base = ws.evalGrad(c, cfg.Utility, grad)
		}
		// Normalize the step by the gradient's scale so progress is
		// uniform across problem sizes.
		gnorm := 0.0
		for _, g := range grad {
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-14 {
			break
		}
		improved := false
		for attempt := 0; attempt < 12; attempt++ {
			for j := 0; j < p; j++ {
				trial[j] = c[j] + step*grad[j]/gnorm
			}
			pj.project(trial, cfg.Headroom)
			if obj := eval(trial); obj > base {
				copy(c, trial)
				curObj = obj
				if obj > bestObj {
					bestObj = obj
					copy(best, c)
				}
				step *= 1.25
				if step > 0.25 {
					step = 0.25
				}
				improved = true
				break
			}
			step *= 0.5
			if step < 1e-10 {
				break
			}
		}
		if !improved {
			break
		}
		if it%25 == 0 {
			if bestObj-objWindow <= cfg.Tol*(math.Abs(bestObj)+1e-12) {
				break
			}
			objWindow = bestObj
		}
	}

	// Phase 2: the adaptive phase stalls on the non-differentiable ridges
	// the min() composition creates (sharp with linear utility). A
	// diminishing-step subgradient pass walks along those ridges; per
	// subgradient-method theory the best iterate converges even though
	// individual steps may not improve. The analytic engine takes its
	// adjoint subgradient (one propagation per step, with the evaluation
	// of the previous step's iterate folded into the same forward pass);
	// the reference engine keeps central differences.
	copy(c, best)
	subIters := cfg.MaxIters - iters
	if subIters > 3000 {
		subIters = 3000
	}
	stepped := false
	for it := 1; it <= subIters; it++ {
		if expired() {
			break
		}
		iters++
		if cfg.Gradient == GradientFiniteDiff {
			const h = 1e-7
			truncated := false
			for j := 0; j < p; j++ {
				if j%64 == 63 && expired() {
					truncated = true
					break
				}
				old := c[j]
				c[j] = old + h
				up := eval(c)
				c[j] = old - h
				down := eval(c)
				c[j] = old
				grad[j] = (up - down) / (2 * h)
			}
			if truncated {
				break
			}
		} else {
			// The forward half of the gradient also scores the previous
			// step's iterate, so each analytic subgradient step costs ONE
			// propagation total.
			if obj := ws.evalGrad(c, cfg.Utility, grad); obj > bestObj {
				bestObj = obj
				copy(best, c)
			}
		}
		gnorm := 0.0
		for _, g := range grad {
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-14 {
			break
		}
		alpha := 0.15 / math.Sqrt(float64(it))
		for j := 0; j < p; j++ {
			c[j] += alpha * grad[j] / gnorm
		}
		pj.project(c, cfg.Headroom)
		stepped = true
		if cfg.Gradient == GradientFiniteDiff {
			if obj := eval(c); obj > bestObj {
				bestObj = obj
				copy(best, c)
			}
		}
	}
	if cfg.Gradient != GradientFiniteDiff && stepped {
		// The analytic loop scores each iterate at the TOP of the next
		// step; the last stepped point still needs its evaluation.
		if obj := eval(c); obj > bestObj {
			bestObj = obj
			copy(best, c)
		}
	}

	if cfg.MinShare > 0 {
		applyMinShare(t, best, cfg.MinShare, cfg.Headroom)
	}
	// The returned Objective is recomputed from the FINAL allocation:
	// applyMinShare mutates best after bestObj was captured, so echoing
	// bestObj could overstate what the returned CPU vector achieves.
	ws.forward(best)
	rin := append([]float64(nil), ws.rin...)
	rout := append([]float64(nil), ws.rout...)
	obj, wt := 0.0, 0.0
	for j := 0; j < p; j++ {
		if w := t.PEs[j].Weight; w > 0 {
			obj += w * cfg.Utility.Value(rout[j])
		}
		wt += t.PEs[j].Weight * rout[j]
	}
	return &Allocation{
		CPU:                best,
		RIn:                rin,
		ROut:               rout,
		Objective:          obj,
		WeightedThroughput: wt,
		Iterations:         iters,
		Evals:              ws.evals,
		ColdStart:          cold,
		SolveMillis:        float64(time.Since(start)) / float64(time.Millisecond),
		DeadlineExceeded:   deadlineHit,
	}, nil
}

// applyMinShare raises every allocation to at least minShare of its node.
// When the floors push a node over budget, only the above-floor
// allocations are scaled down (iterating in case scaling drops some of
// them to the floor), so the floor is a hard guarantee as long as it is
// feasible (#PEs × minShare ≤ headroom); an infeasible floor falls back to
// an equal split.
func applyMinShare(t *graph.Topology, c []float64, minShare, headroom float64) {
	for n := 0; n < t.NumNodes; n++ {
		ids := t.OnNode(sdo.NodeID(n))
		if len(ids) == 0 {
			continue
		}
		if minShare*float64(len(ids)) >= headroom {
			for _, id := range ids {
				c[id] = headroom / float64(len(ids))
			}
			continue
		}
		for iter := 0; iter < len(ids)+1; iter++ {
			var floored, above float64
			nAbove := 0
			for _, id := range ids {
				if c[id] <= minShare {
					c[id] = minShare
					floored += minShare
				} else {
					above += c[id]
					nAbove++
				}
			}
			if floored+above <= headroom+1e-12 || nAbove == 0 {
				break
			}
			scale := (headroom - floored) / above
			done := true
			for _, id := range ids {
				if c[id] > minShare {
					c[id] *= scale
					if c[id] < minShare {
						done = false
					}
				}
			}
			if done {
				break
			}
		}
	}
}

// propagate evaluates the fluid model: each PE's input rate is the minimum
// of its processing capacity h_j(c_j) and the data available from its
// sources and upstream PEs (each downstream receives a full copy of the
// upstream output — §III-D); outputs scale by the mean multiplicity. Join
// PEs fire at the rate of their slowest input (the per-upstream form of
// Eq. 5).
func propagate(t *graph.Topology, order []sdo.PEID, c []float64) (rin, rout []float64) {
	p := t.NumPEs()
	rin = make([]float64, p)
	rout = make([]float64, p)
	avail := make([]float64, p)
	var joinFeeds map[sdo.PEID][]float64
	for _, s := range t.Sources {
		avail[s.Target] += s.Rate
	}
	for _, j := range order {
		pe := &t.PEs[j]
		cap := c[j]/pe.Service.EffectiveCost() - pe.Overhead
		if cap < 0 {
			cap = 0
		}
		r := avail[j]
		if pe.Join {
			r = math.Inf(1)
			for _, v := range joinFeeds[j] {
				if v < r {
					r = v
				}
			}
			if len(joinFeeds[j]) < len(t.Up(j)) || math.IsInf(r, 1) {
				r = 0
			}
		}
		if cap < r {
			r = cap
		}
		rin[j] = r
		m := pe.Service.MeanMult
		if m <= 0 {
			m = 1
		}
		rout[j] = r * m
		for _, d := range t.Down(j) {
			if t.PEs[d].Join {
				if joinFeeds == nil {
					joinFeeds = make(map[sdo.PEID][]float64)
				}
				joinFeeds[d] = append(joinFeeds[d], rout[j])
			} else {
				avail[d] += rout[j]
			}
		}
	}
	return rin, rout
}

// projectNodes projects the allocation of every node onto the capacity
// simplex {c ≥ 0, Σ c ≤ headroom} using the standard Euclidean simplex
// projection. One-shot convenience; the solvers hold a projector so the
// node index and scratch persist across the ascent loop.
func projectNodes(t *graph.Topology, c []float64, headroom float64) {
	newNodeProjector(t).project(c, headroom)
}

// projectSimplex returns the Euclidean projection of v onto
// {x ≥ 0, Σ x = z} (Duchi et al. 2008).
func projectSimplex(v []float64, z float64) []float64 {
	out := make([]float64, len(v))
	theta, feasible := simplexThreshold(v, z, nil)
	if !feasible {
		return out
	}
	for i, x := range v {
		if x-theta > 0 {
			out[i] = x - theta
		}
	}
	return out
}

// Propagate exposes the fluid propagation for external consumers (the
// simulator uses it to derive nominal rates, and tests use it as an
// oracle).
func Propagate(t *graph.Topology, c []float64) (rin, rout []float64, err error) {
	order, err := t.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	rin, rout = propagate(t, order, c)
	return rin, rout, nil
}

// Perturb returns a copy of the CPU targets with each entry scaled by a
// uniform factor in [1−eps, 1+eps] and re-projected onto the node
// simplices: the "errors in allocation" robustness experiment (§VII).
func Perturb(t *graph.Topology, cpu []float64, eps float64, rng *sim.Rand) []float64 {
	out := make([]float64, len(cpu))
	for j := range cpu {
		out[j] = cpu[j] * (1 + rng.Uniform(-eps, eps))
	}
	projectNodes(t, out, 1)
	return out
}
