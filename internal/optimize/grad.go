// Adjoint (reverse-mode) gradients for the tier-1 fluid model.
//
// The objective Σ_j w_j·U(r̄_out,j) is a composition of min() and affine
// maps over the DAG (Eqs. 4–6): each PE's input rate is the minimum of a
// capacity term (affine in its CPU share, clamped at the overhead dead
// zone) and a flow term (a sum of upstream copies, or their minimum at a
// join). A finite-difference gradient therefore costs one full fluid
// propagation per decision variable — O(p²) per ascent iteration, the
// quadratic wall that caps monolithic solve sizes. But the same structure
// is exactly reverse-mode differentiable: ONE forward pass records which
// branch of every min() is active, and ONE backward sweep in reverse
// topological order pushes ∂obj/∂r̄_out through multiplicity, join-min and
// copy-fanout edges down to ∂obj/∂c̄_j — the whole gradient for the price
// of a single propagation.
//
// Subgradient choices on ties (the objective is piecewise smooth, so a
// consistent selection is required, not a unique derivative):
//
//   - capacity vs flow: the forward model takes the capacity branch only
//     when cap < flow STRICTLY; a tie routes the adjoint through the flow
//     branch. ∂obj/∂c̄_j = 0 there matches forward differences (raising
//     c̄_j at a tie does not raise the rate), and the upstream leak is the
//     LEFT derivative (lowering the feed lowers the rate) — a valid
//     supergradient that keeps ascent moving at the exactly-balanced
//     points symmetric cold starts produce. The exception is a DEAD tie,
//     cap == flow == 0 (a dead-zone clamp meeting a dead upstream chain —
//     common, not measure-zero): the rate is pinned at 0 in every
//     direction, so the adjoint is dropped rather than leaked through a
//     binding zero-capacity constraint.
//   - join feeds: the minimum feed is the FIRST minimizer in Up() order;
//     tied feeds after it get zero (the left derivative again: lowering
//     the chosen feed lowers the min). Deterministic, so repeated
//     gradients at the same point agree. A min of 0 tied across TWO OR
//     MORE feeds drops the adjoint instead: raising any single feed
//     cannot raise the min (another feed still pins it at 0) and rates
//     cannot go below 0, so the objective is flat in every feed
//     direction — zero-rate branches meeting at a join must not leak
//     phantom gradient into each other's upstream chains.
//   - overhead dead zone: a (slot) capacity term contributes gradient
//     only when c̄/cost − overhead ≥ 0; strictly inside the dead zone the
//     clamp is active and the derivative is 0, while AT the boundary the
//     right (escape) derivative 1/cost is taken — again the
//     forward-difference choice, and the one that lets ascent lift a
//     capacity-starved PE off zero instead of declaring a flat optimum.
package optimize

import (
	"math"
	"sort"

	"aces/internal/graph"
	"aces/internal/sdo"
)

// GradientMode selects the solver's gradient engine.
type GradientMode int

const (
	// GradientAnalytic (the default) computes each gradient with one
	// adjoint backward sweep — O(p) per iteration.
	GradientAnalytic GradientMode = iota
	// GradientFiniteDiff retains the forward/central-difference reference
	// implementation — O(p²) per iteration. The gradient-check harness
	// pins the analytic engine against it.
	GradientFiniteDiff
)

// UtilityDeriv is the optional derivative extension of Utility. The
// adjoint engine uses it when present and falls back to a central
// difference on the SCALAR utility (cheap — no fluid propagation) for
// custom utilities that only implement Value.
type UtilityDeriv interface {
	// Deriv returns U′(x) for x ≥ 0.
	Deriv(x float64) float64
}

// Deriv implements UtilityDeriv: U(x) = x ⇒ U′(x) = 1.
func (LinearUtility) Deriv(float64) float64 { return 1 }

// Deriv implements UtilityDeriv: U(x) = log(1 + x/s) ⇒ U′(x) = 1/(s + x).
func (u LogUtility) Deriv(x float64) float64 {
	s := u.Scale
	if s <= 0 {
		s = 1
	}
	return 1 / (s + x)
}

// Deriv implements UtilityDeriv: U(x) = 1 − e^{−x/s} ⇒ U′(x) = e^{−x/s}/s.
func (u ExpUtility) Deriv(x float64) float64 {
	s := u.Scale
	if s <= 0 {
		s = 1
	}
	return math.Exp(-x/s) / s
}

// Interface compliance checks.
var (
	_ UtilityDeriv = LinearUtility{}
	_ UtilityDeriv = LogUtility{}
	_ UtilityDeriv = ExpUtility{}
)

// utilityDeriv returns U′(x), via UtilityDeriv when implemented.
func utilityDeriv(u Utility, x float64) float64 {
	if d, ok := u.(UtilityDeriv); ok {
		return d.Deriv(x)
	}
	const h = 1e-6
	lo := x - h
	if lo < 0 {
		lo = 0
	}
	return (u.Value(x+h) - u.Value(lo)) / (x + h - lo)
}

// adjoint is the solver's fluid-model workspace: a forward pass that
// matches propagate/propagateElastic exactly while recording active
// branches, plus the reverse sweep. All scratch is allocated once per
// Solve, so the hot ascent loop performs zero allocations per evaluation
// (propagate itself re-allocates rate vectors and a join map every call).
type adjoint struct {
	t     *graph.Topology
	order []sdo.PEID
	// slotOf maps PE → flat slot indices for elastic solves; nil in plain
	// mode, where the decision vector is indexed by PE.
	slotOf [][]int

	// Static per-PE model terms, snapshotted at construction.
	src  []float64 // direct source rate feeding each PE
	cost []float64 // Service.EffectiveCost()
	mult []float64 // MeanMult floored at 1

	// Forward-pass state (valid after forward()).
	rin, rout []float64
	capped    []bool  // capacity branch active (cap < flow strictly)
	dead      []bool  // cap == flow == 0: rate pinned, adjoint drops
	argmin    []int32 // producer of a join's minimum feed (-1 none)

	adj []float64 // ∂obj/∂r̄_out scratch for the backward sweep
	// evals counts forward propagations — the solver's dominant cost unit,
	// reported as Allocation.Evals.
	evals int
}

// newAdjoint builds a workspace for the topology. slotOf selects elastic
// mode (decision vector = flat replica slots); nil selects plain per-PE
// mode.
func newAdjoint(t *graph.Topology, order []sdo.PEID, slotOf [][]int) *adjoint {
	p := t.NumPEs()
	a := &adjoint{
		t: t, order: order, slotOf: slotOf,
		src: make([]float64, p), cost: make([]float64, p), mult: make([]float64, p),
		rin: make([]float64, p), rout: make([]float64, p),
		capped: make([]bool, p), dead: make([]bool, p), argmin: make([]int32, p),
		adj: make([]float64, p),
	}
	for _, s := range t.Sources {
		a.src[s.Target] += s.Rate
	}
	for j := range t.PEs {
		a.cost[j] = t.PEs[j].Service.EffectiveCost()
		m := t.PEs[j].Service.MeanMult
		if m <= 0 {
			m = 1
		}
		a.mult[j] = m
	}
	return a
}

// forward runs the fluid propagation at x, recording the active branch of
// every min(). Semantically identical to propagate/propagateElastic: in
// topological order every upstream is settled before its consumers, so a
// join's feeds are exactly the outputs of its upstream PEs and a non-join's
// availability is its source rate plus the sum of upstream copies.
func (a *adjoint) forward(x []float64) {
	t := a.t
	for _, j := range a.order {
		pe := &t.PEs[j]
		var cap float64
		if a.slotOf == nil {
			if v := x[j]/a.cost[j] - pe.Overhead; v > 0 {
				cap = v
			}
		} else {
			for _, i := range a.slotOf[j] {
				if v := x[i]/a.cost[j] - pe.Overhead; v > 0 {
					cap += v
				}
			}
		}
		var flow float64
		am := int32(-1)
		if pe.Join {
			ups := t.Up(j)
			if len(ups) > 0 {
				flow = math.Inf(1)
				ties := 0
				for _, u := range ups {
					if a.rout[u] < flow {
						flow = a.rout[u]
						am = int32(u)
						ties = 1
					} else if a.rout[u] == flow {
						ties++
					}
				}
				if flow == 0 && ties > 1 {
					// Multiply-tied zero min: flat in every feed direction.
					am = -1
				}
			}
		} else {
			flow = a.src[j]
			for _, u := range t.Up(j) {
				flow += a.rout[u]
			}
		}
		a.argmin[j] = am
		r := flow
		capped := cap < flow
		if capped {
			r = cap
		}
		a.capped[j] = capped
		a.dead[j] = cap == 0 && flow == 0
		a.rin[j] = r
		a.rout[j] = r * a.mult[j]
	}
	a.evals++
}

// objective evaluates Σ w_j·U(r̄_out,j) over the last forward pass.
func (a *adjoint) objective(util Utility) float64 {
	obj := 0.0
	for j := range a.t.PEs {
		if w := a.t.PEs[j].Weight; w > 0 {
			obj += w * util.Value(a.rout[j])
		}
	}
	return obj
}

// eval is one forward propagation plus the objective — the line-search
// evaluation, allocation-free.
func (a *adjoint) eval(x []float64, util Utility) float64 {
	a.forward(x)
	return a.objective(util)
}

// evalGrad computes the objective AND its full gradient with one forward
// and one backward sweep. grad must be sized for the decision vector
// (p entries in plain mode, one per flat slot in elastic mode).
func (a *adjoint) evalGrad(x []float64, util Utility, grad []float64) float64 {
	a.forward(x)
	obj := a.objective(util)
	a.backward(x, util, grad)
	return obj
}

// backward is the reverse-topological adjoint sweep over the branches the
// last forward pass recorded. For each PE j (downstream consumers already
// settled): the seed w_j·U′(r̄_out,j) joins the accumulated downstream
// adjoint; multiplicity scales it onto the input (r̄_out = m·r̄_in); then
// the active branch routes it — a capacity-limited PE converts it into
// ∂obj/∂c̄ = adjoint/EffectiveCost on its live (non-dead-zone) capacity
// terms, a flow-limited join passes it to its minimum feed's producer, and
// a flow-limited non-join fans it to every upstream (each downstream
// receives a full copy of the upstream output, so copy-fanout adjoints
// sum on the producer).
func (a *adjoint) backward(x []float64, util Utility, grad []float64) {
	t := a.t
	for i := range a.adj {
		a.adj[i] = 0
	}
	for i := range grad {
		grad[i] = 0
	}
	for k := len(a.order) - 1; k >= 0; k-- {
		j := a.order[k]
		pe := &t.PEs[j]
		ad := a.adj[j]
		if w := pe.Weight; w > 0 {
			ad += w * utilityDeriv(util, a.rout[j])
		}
		if ad == 0 || a.dead[j] {
			continue
		}
		adIn := ad * a.mult[j]
		if a.capped[j] {
			if a.slotOf == nil {
				if x[j]/a.cost[j]-pe.Overhead >= 0 {
					grad[j] += adIn / a.cost[j]
				}
				continue
			}
			for _, i := range a.slotOf[j] {
				if x[i]/a.cost[j]-pe.Overhead >= 0 {
					grad[i] += adIn / a.cost[j]
				}
			}
			continue
		}
		if pe.Join {
			if u := a.argmin[j]; u >= 0 {
				a.adj[u] += adIn
			}
			continue
		}
		for _, u := range t.Up(j) {
			a.adj[u] += adIn
		}
	}
}

// projector reuses the scratch behind the per-node simplex projections.
// The ascent loop projects every trial point, and the package-level
// projectNodes/projectSimplex pair allocated gather buffers, a sort copy
// and an output vector per node per call — per-iteration garbage that
// dominated solver allocations. A projector also precomputes the node→PE
// index once: Topology.OnNode scans all p PEs per node, which made one
// projection O(p·nodes).
type projector struct {
	// groups[g] lists the decision-vector indices sharing node g's
	// capacity simplex.
	groups [][]int
	vals   []float64 // gather scratch
	sorted []float64 // descending sort scratch for the threshold search
}

// newNodeProjector indexes the plain solver's per-node PE groups.
func newNodeProjector(t *graph.Topology) *projector {
	groups := make([][]int, t.NumNodes)
	for j := range t.PEs {
		n := t.PEs[j].Node
		groups[n] = append(groups[n], j)
	}
	return &projector{groups: groups}
}

// newSlotProjector wraps the elastic solver's node→slot index.
func newSlotProjector(nodeSlots [][]int) *projector {
	return &projector{groups: nodeSlots}
}

// project projects x's entries, group by group, onto {v ≥ 0, Σ v ≤
// headroom}. Allocation-free after the scratch warms up.
func (pj *projector) project(x []float64, headroom float64) {
	for _, ids := range pj.groups {
		if len(ids) == 0 {
			continue
		}
		if cap(pj.vals) < len(ids) {
			pj.vals = make([]float64, 0, 2*len(ids))
			pj.sorted = make([]float64, 0, 2*len(ids))
		}
		vals := pj.vals[:0]
		sum := 0.0
		for _, id := range ids {
			v := x[id]
			if v < 0 {
				v = 0
			}
			vals = append(vals, v)
			sum += v
		}
		if sum <= headroom {
			for i, id := range ids {
				x[id] = vals[i]
			}
			continue
		}
		theta, feasible := simplexThreshold(vals, headroom, pj.sorted[:0])
		for i, id := range ids {
			if !feasible {
				x[id] = 0
				continue
			}
			if v := vals[i] - theta; v > 0 {
				x[id] = v
			} else {
				x[id] = 0
			}
		}
	}
}

// simplexThreshold computes the Euclidean simplex-projection threshold θ
// (Duchi et al. 2008) for v onto {x ≥ 0, Σ x = z} using the provided sort
// scratch. feasible is false when every component clips to zero.
func simplexThreshold(v []float64, z float64, scratch []float64) (theta float64, feasible bool) {
	u := append(scratch, v...)
	sort.Float64s(u) // ascending; walk it backwards for the descending scan
	n := len(u)
	var css, cssAtRho float64
	rho := -1
	for i := 0; i < n; i++ {
		ui := u[n-1-i]
		css += ui
		if ui-(css-z)/float64(i+1) > 0 {
			rho = i
			cssAtRho = css
		}
	}
	if rho < 0 {
		return 0, false
	}
	return (cssAtRho - z) / float64(rho+1), true
}
