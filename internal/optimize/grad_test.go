package optimize

import (
	"math"
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

// richDAG builds a random layered DAG exercising every branch of the
// adjoint: join PEs (min over feeds), MeanMult ≠ 1, nonzero Overhead
// (dead zones at small allocations), copy-fanout (shared downstream
// consumers), weighted intermediates, and — when elastic — multi-slot
// replica placements. graph.Generate produces none of joins, overheads or
// multiplicities, so the gradient check needs its own builder.
func richDAG(t testing.TB, seed int64, p, nodes int, elastic bool) *graph.Topology {
	t.Helper()
	rng := sim.NewRand(seed)
	topo := graph.New(nodes, 50)
	nIngress := 2 + rng.Intn(3)
	if nIngress > p/2 {
		nIngress = p / 2
	}
	for j := 0; j < p; j++ {
		sp := workload.ServiceParams{
			T0: 0.001 + 0.009*rng.Float64(), Rho: 0.5, LambdaS: 10, DwellUnit: 0.01,
			MeanMult: 0.5 + 1.5*rng.Float64(), // exercise multiplicity scaling
		}
		sp.T1 = sp.T0
		pe := graph.PE{Service: sp, Node: sdo.NodeID(rng.Intn(nodes))}
		if j >= nIngress {
			// Fan in from 1–3 strictly-earlier PEs (never an ingress-only
			// constraint issue: source targets stay upstream-free).
			fanin := 1 + rng.Intn(3)
			ups := map[sdo.PEID]bool{}
			for f := 0; f < fanin; f++ {
				ups[sdo.PEID(rng.Intn(j))] = true
			}
			if len(ups) >= 2 && rng.Float64() < 0.35 {
				pe.Join = true
			}
			if rng.Float64() < 0.4 {
				pe.Overhead = 2 + 10*rng.Float64() // dead zone at small c
			}
			if rng.Float64() < 0.3 {
				pe.Weight = 0.5 + rng.Float64()
			}
			if elastic && !pe.Join && rng.Float64() < 0.4 {
				pe.MaxReplicas = 2 + rng.Intn(2)
			}
			id := topo.AddPE(pe)
			for u := range ups {
				if err := topo.Connect(u, id); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			id := topo.AddPE(pe)
			if err := topo.AddSource(graph.Source{
				Stream: sdo.StreamID(j + 1), Target: id,
				Rate:  50 + 150*rng.Float64(),
				Burst: graph.BurstSpec{Kind: graph.BurstPoisson},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Every sink carries weight so gradients reach the whole DAG.
	for j := range topo.PEs {
		if len(topo.Down(sdo.PEID(j))) == 0 && topo.PEs[j].Weight == 0 {
			topo.PEs[j].Weight = 1
		}
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("richDAG(seed=%d): %v", seed, err)
	}
	return topo
}

// elasticWorkspace flattens the replica placement the way SolveElastic
// does and returns the adjoint plus the slot projector's node groups.
func elasticWorkspace(t testing.TB, topo *graph.Topology) (*adjoint, [][]int, int) {
	t.Helper()
	order, err := topo.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	p := topo.NumPEs()
	slotOf := make([][]int, p)
	nodeSlots := make([][]int, topo.NumNodes)
	ns := 0
	for j := 0; j < p; j++ {
		for _, n := range topo.ReplicaPlacement(sdo.PEID(j)) {
			slotOf[j] = append(slotOf[j], ns)
			nodeSlots[n] = append(nodeSlots[n], ns)
			ns++
		}
	}
	ws := newAdjoint(topo, order, slotOf)
	return ws, nodeSlots, ns
}

// TestGradientCheck pins the adjoint gradient against central differences
// of the SAME forward model over a seeded random-DAG ladder: joins,
// MeanMult ≠ 1, overhead dead zones, copy fanout, and (in elastic rows)
// multi-slot replica placements. The objective is piecewise smooth, so
// coordinates sitting on a kink — detected when the one-sided differences
// disagree — are skipped: there the analytic engine deliberately takes the
// forward-difference subgradient while a central difference averages the
// two branches. Away from kinks the two must agree to 1e-5 relative.
func TestGradientCheck(t *testing.T) {
	cases := []struct {
		name    string
		seed    int64
		p       int
		nodes   int
		elastic bool
		util    Utility
	}{
		{"small-linear", 1, 12, 3, false, LinearUtility{}},
		{"small-log", 2, 12, 3, false, LogUtility{Scale: 20}},
		{"medium-linear", 3, 40, 6, false, LinearUtility{}},
		{"medium-exp", 4, 40, 6, false, ExpUtility{Scale: 50}},
		{"large-log", 5, 80, 10, false, LogUtility{Scale: 10}},
		{"elastic-small-linear", 6, 12, 3, true, LinearUtility{}},
		{"elastic-medium-log", 7, 40, 6, true, LogUtility{Scale: 20}},
		{"elastic-large-linear", 8, 80, 10, true, LinearUtility{}},
	}
	const (
		h       = 1e-6
		relTol  = 1e-5
		kinkTol = 1e-3
	)
	totalChecked, totalSkipped := 0, 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := richDAG(t, tc.seed, tc.p, tc.nodes, tc.elastic)
			var ws *adjoint
			var groups [][]int
			var n int
			if tc.elastic {
				ws, groups, n = elasticWorkspace(t, topo)
			} else {
				order, err := topo.TopoOrder()
				if err != nil {
					t.Fatal(err)
				}
				ws = newAdjoint(topo, order, nil)
				n = topo.NumPEs()
				groups = newNodeProjector(topo).groups
			}
			pj := &projector{groups: groups}
			rng := sim.NewRand(tc.seed * 7919)
			grad := make([]float64, n)
			x := make([]float64, n)
			for point := 0; point < 3; point++ {
				for i := range x {
					x[i] = rng.Float64()
				}
				pj.project(x, 1)
				ws.evalGrad(x, tc.util, grad)
				checked, skipped := 0, 0
				for i := 0; i < n; i++ {
					old := x[i]
					x[i] = old + h
					fp := ws.eval(x, tc.util)
					x[i] = old - h
					fm := ws.eval(x, tc.util)
					x[i] = old
					f0 := ws.eval(x, tc.util)
					gFwd := (fp - f0) / h
					gBwd := (f0 - fm) / h
					scale := math.Abs(gFwd) + math.Abs(gBwd) + 1
					if math.Abs(gFwd-gBwd) > kinkTol*scale {
						// Kink: min() branch switches within ±h. The analytic
						// subgradient picks the forward branch by design;
						// central differences average the two — not comparable.
						skipped++
						continue
					}
					gc := (fp - fm) / (2 * h)
					if diff := math.Abs(grad[i] - gc); diff > relTol*(math.Abs(gc)+1) {
						t.Errorf("point %d coord %d: analytic %.8g vs central %.8g (diff %.3g)",
							point, i, grad[i], gc, diff)
					}
					checked++
				}
				if checked == 0 {
					t.Errorf("point %d: every coordinate sat on a kink — check is vacuous", point)
				}
				totalChecked += checked
				totalSkipped += skipped
			}
		})
	}
	if totalChecked < 3*totalSkipped {
		t.Errorf("too many kink skips: %d checked vs %d skipped", totalChecked, totalSkipped)
	}
}

// referenceSolveFD replays the PRE-carry-forward finite-difference solver:
// the historical loop re-derived the base objective with a full propagation
// at the top of every iteration (base := eval(c)) before the forward-
// difference gradient. Everything else — line search, step adaptation,
// phase-2 polish, projection — matches Solve's GradientFiniteDiff path.
func referenceSolveFD(t *graph.Topology, cfg Config) (cpu []float64, evals int) {
	cfg.fillDefaults()
	order, _ := t.TopoOrder()
	p := t.NumPEs()
	pj := newNodeProjector(t)
	c := make([]float64, p)
	demand, _ := t.UnitDemand()
	nodeSum := make([]float64, t.NumNodes)
	for j := 0; j < p; j++ {
		c[j] = demand[j]*t.PEs[j].Service.EffectiveCost() + 1e-6
		nodeSum[t.PEs[j].Node] += c[j]
	}
	for j := 0; j < p; j++ {
		c[j] *= 0.95 * cfg.Headroom / nodeSum[t.PEs[j].Node]
	}
	ws := newAdjoint(t, order, nil)
	eval := func(c []float64) float64 { return ws.eval(c, cfg.Utility) }
	best := make([]float64, p)
	copy(best, c)
	bestObj := eval(c)
	objWindow := bestObj
	grad := make([]float64, p)
	trial := make([]float64, p)
	step := 0.05
	iters := 0
	for it := 1; it <= cfg.MaxIters; it++ {
		iters = it
		base := eval(c) // the redundant re-evaluation under test
		const h = 1e-7
		for j := 0; j < p; j++ {
			old := c[j]
			c[j] = old + h
			grad[j] = (eval(c) - base) / h
			c[j] = old
		}
		gnorm := 0.0
		for _, g := range grad {
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-14 {
			break
		}
		improved := false
		for attempt := 0; attempt < 12; attempt++ {
			for j := 0; j < p; j++ {
				trial[j] = c[j] + step*grad[j]/gnorm
			}
			pj.project(trial, cfg.Headroom)
			if obj := eval(trial); obj > base {
				copy(c, trial)
				if obj > bestObj {
					bestObj = obj
					copy(best, c)
				}
				step *= 1.25
				if step > 0.25 {
					step = 0.25
				}
				improved = true
				break
			}
			step *= 0.5
			if step < 1e-10 {
				break
			}
		}
		if !improved {
			break
		}
		if it%25 == 0 {
			if bestObj-objWindow <= cfg.Tol*(math.Abs(bestObj)+1e-12) {
				break
			}
			objWindow = bestObj
		}
	}
	copy(c, best)
	subIters := cfg.MaxIters - iters
	if subIters > 3000 {
		subIters = 3000
	}
	for it := 1; it <= subIters; it++ {
		const h = 1e-7
		for j := 0; j < p; j++ {
			old := c[j]
			c[j] = old + h
			up := eval(c)
			c[j] = old - h
			down := eval(c)
			c[j] = old
			grad[j] = (up - down) / (2 * h)
		}
		gnorm := 0.0
		for _, g := range grad {
			gnorm += g * g
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-14 {
			break
		}
		alpha := 0.15 / math.Sqrt(float64(it))
		for j := 0; j < p; j++ {
			c[j] += alpha * grad[j] / gnorm
		}
		pj.project(c, cfg.Headroom)
		if obj := eval(c); obj > bestObj {
			bestObj = obj
			copy(best, c)
		}
	}
	return best, ws.evals
}

// TestCarryForwardMatchesReference proves the eval(c)-per-iteration
// elimination changes NOTHING but the eval count: Solve's finite-difference
// path (which carries the accepted line-search objective forward) produces
// bit-identical iterates to the historical always-re-evaluate loop on a
// seeded topology, while spending strictly fewer propagations.
func TestCarryForwardMatchesReference(t *testing.T) {
	topo := richDAG(t, 42, 24, 4, false)
	cfg := Config{Utility: LinearUtility{}, MaxIters: 120, Gradient: GradientFiniteDiff}
	refCPU, refEvals := referenceSolveFD(topo, cfg)
	alloc, err := Solve(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range refCPU {
		if alloc.CPU[j] != refCPU[j] {
			t.Fatalf("iterate diverged at PE %d: carry-forward %.17g vs reference %.17g",
				j, alloc.CPU[j], refCPU[j])
		}
	}
	// Solve's final Objective recompute adds one forward pass; the carry-
	// forward still nets one saved propagation per phase-1 iteration.
	if alloc.Evals >= refEvals {
		t.Errorf("carry-forward used %d evals, reference %d — no propagation saved", alloc.Evals, refEvals)
	}
	t.Logf("evals: carry-forward %d vs reference %d", alloc.Evals, refEvals)
}

// TestAnalyticMatchesFiniteDiffQuality runs both gradient engines to
// convergence on a generated p=200 topology: the analytic solve must land
// within 1% of the finite-difference objective while spending at least 10×
// fewer propagations (the deterministic stand-in for the wall-clock
// criterion; the E13 bench gate measures the p=1000 wall times).
func TestAnalyticMatchesFiniteDiffQuality(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(200, 20, 99))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Utility: LinearUtility{}, MinShare: 0.02, MaxIters: 2000}
	an, err := Solve(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gradient = GradientFiniteDiff
	fd, err := Solve(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if an.Objective < 0.99*fd.Objective {
		t.Errorf("analytic objective %.4f below 99%% of finite-difference %.4f", an.Objective, fd.Objective)
	}
	if 10*an.Evals > fd.Evals {
		t.Errorf("analytic used %d evals, finite-difference %d — want ≥ 10× fewer", an.Evals, fd.Evals)
	}
	t.Logf("objective: analytic %.2f (%d evals) vs fd %.2f (%d evals)",
		an.Objective, an.Evals, fd.Objective, fd.Evals)
}

// TestSolveObjectiveMatchesRepropagation is the MinShare staleness
// regression: a weight-0 sink PE that linear utility starves to ~0 CPU
// gets floored by MinShare, shrinking the productive PEs' shares — so the
// pre-MinShare bestObj overstates the returned vector. The returned
// Objective must match an independent re-propagation of the returned CPU
// exactly, and must differ from the unfloored solve's objective (proving
// the two values demonstrably diverge on this config).
func TestSolveObjectiveMatchesRepropagation(t *testing.T) {
	// Asymmetric costs keep the cold start off the exactly-balanced ridge
	// where every per-coordinate difference quotient vanishes.
	topo := graph.New(1, 50)
	a := topo.AddPE(graph.PE{Service: uniformService(0.002)})
	b := topo.AddPE(graph.PE{Service: uniformService(0.004), Weight: 1})
	sink := topo.AddPE(graph.PE{Service: uniformService(0.004)})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(a, sink); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 1000, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	for _, gm := range []GradientMode{GradientAnalytic, GradientFiniteDiff} {
		base, err := Solve(topo, Config{Utility: LinearUtility{}, Gradient: gm})
		if err != nil {
			t.Fatal(err)
		}
		floored, err := Solve(topo, Config{Utility: LinearUtility{}, MinShare: 0.25, Gradient: gm})
		if err != nil {
			t.Fatal(err)
		}
		if floored.Objective >= base.Objective-1e-6 {
			t.Fatalf("gm=%d: MinShare did not reduce the objective (%.6f vs %.6f) — regression scenario lost its bite",
				gm, floored.Objective, base.Objective)
		}
		_, rout, err := Propagate(topo, floored.CPU)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for j := range topo.PEs {
			if w := topo.PEs[j].Weight; w > 0 {
				want += w * (LinearUtility{}).Value(rout[j])
			}
		}
		if diff := math.Abs(floored.Objective - want); diff > 1e-9*(math.Abs(want)+1) {
			t.Errorf("gm=%d: Objective %.12f but re-propagating the returned CPU gives %.12f", gm, floored.Objective, want)
		}
	}
}

// TestSolveElasticObjectiveMatchesRepropagation is the parsimony
// staleness regression: SolveElastic's returned Objective must match an
// independent PropagateElastic of the returned Replica matrix — i.e. it
// reflects the post-pruning, post-dust-snap slot vector, not the peak
// bestObj the ascent saw before parsimony removed tol-worth of replicas.
func TestSolveElasticObjectiveMatchesRepropagation(t *testing.T) {
	for _, seed := range []int64{6, 7, 8} {
		topo := richDAG(t, seed, 30, 5, true)
		ea, err := SolveElastic(topo, Config{Utility: LinearUtility{}, MaxIters: 400, Tol: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		_, rout, err := PropagateElastic(topo, ea.Replica)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for j := range topo.PEs {
			if w := topo.PEs[j].Weight; w > 0 {
				want += w * (LinearUtility{}).Value(rout[j])
			}
		}
		if diff := math.Abs(ea.Objective - want); diff > 1e-9*(math.Abs(want)+1) {
			t.Errorf("seed %d: Objective %.12f but re-propagating the returned Replica gives %.12f",
				seed, ea.Objective, want)
		}
	}
}

// TestColdStartFlag covers the silent-fallback satellite: a missing or
// wrong-shaped warm start must be SURFACED via the ColdStart flag (the
// retarget loop turns it into retarget_cold_solves_total), and a correctly
// shaped one must clear it.
func TestColdStartFlag(t *testing.T) {
	topo := chainTopo(t, []float64{0.004, 0.004}, 100)
	cold, err := Solve(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.ColdStart {
		t.Errorf("no WarmStart: ColdStart = false, want true")
	}
	warm, err := Solve(topo, Config{WarmStart: cold.CPU})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ColdStart {
		t.Errorf("matching WarmStart: ColdStart = true, want false")
	}
	// Shape mismatch (stale incumbent after a topology change).
	wrong, err := Solve(topo, Config{WarmStart: cold.CPU[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if !wrong.ColdStart {
		t.Errorf("wrong-shaped WarmStart: ColdStart = false, want true")
	}
}

func TestColdStartFlagElastic(t *testing.T) {
	topo := hotTopo(t, 400, 0.004)
	cold, err := SolveElastic(topo, Config{Utility: LinearUtility{}, MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.ColdStart {
		t.Errorf("no WarmStartReplica: ColdStart = false, want true")
	}
	warm, err := SolveElastic(topo, Config{Utility: LinearUtility{}, MaxIters: 300, WarmStartReplica: cold.Replica})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ColdStart {
		t.Errorf("matching WarmStartReplica: ColdStart = true, want false")
	}
	// Row-count mismatch and slot-count mismatch both cold-start.
	badRows := cold.Replica[:1]
	if ea, err := SolveElastic(topo, Config{Utility: LinearUtility{}, MaxIters: 300, WarmStartReplica: badRows}); err != nil {
		t.Fatal(err)
	} else if !ea.ColdStart {
		t.Errorf("wrong row count: ColdStart = false, want true")
	}
	badSlots := make([][]float64, len(cold.Replica))
	for j := range badSlots {
		badSlots[j] = append([]float64{}, cold.Replica[j]...)
	}
	badSlots[0] = append(badSlots[0], 0.1)
	if ea, err := SolveElastic(topo, Config{Utility: LinearUtility{}, MaxIters: 300, WarmStartReplica: badSlots}); err != nil {
		t.Fatal(err)
	} else if !ea.ColdStart {
		t.Errorf("wrong slot count: ColdStart = false, want true")
	}
}

// TestProjectorZeroAlloc gates the projection scratch reuse: after one
// warm-up call the per-node simplex projection must not allocate.
func TestProjectorZeroAlloc(t *testing.T) {
	topo := richDAG(t, 11, 40, 6, false)
	pj := newNodeProjector(topo)
	rng := sim.NewRand(3)
	x := make([]float64, topo.NumPEs())
	for i := range x {
		x[i] = 2 * rng.Float64() // infeasible on purpose: force the threshold path
	}
	pj.project(x, 1) // warm up the scratch
	allocs := testing.AllocsPerRun(100, func() {
		for i := range x {
			x[i] = 2 * x[i]
		}
		pj.project(x, 1)
	})
	if allocs != 0 {
		t.Errorf("projector.project allocates %.1f times per call, want 0", allocs)
	}
}

// TestAdjointEvalZeroAlloc gates the workspace reuse: one forward+backward
// sweep (the per-iteration cost of the analytic engine) must not allocate.
func TestAdjointEvalZeroAlloc(t *testing.T) {
	topo := richDAG(t, 12, 40, 6, false)
	order, err := topo.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	ws := newAdjoint(topo, order, nil)
	x := make([]float64, topo.NumPEs())
	grad := make([]float64, topo.NumPEs())
	rng := sim.NewRand(4)
	for i := range x {
		x[i] = rng.Float64() / 8
	}
	// Pre-boxed: converting the concrete utility to the interface inside
	// the closure would itself allocate and mask the workspace behavior.
	var util Utility = LogUtility{Scale: 10}
	allocs := testing.AllocsPerRun(100, func() {
		ws.evalGrad(x, util, grad)
	})
	if allocs != 0 {
		t.Errorf("evalGrad allocates %.1f times per call, want 0", allocs)
	}
}

// TestSolveDeadlineStillHonoredFD keeps the deadline polling inside the
// finite-difference gradient loop covered now that it is mode-gated.
func TestSolveDeadlineStillHonoredFD(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(400, 40, 5))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Solve(topo, Config{
		Utility: LinearUtility{}, MaxIters: 100000,
		Gradient: GradientFiniteDiff, Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.DeadlineExceeded {
		t.Errorf("50ms deadline on a p=400 finite-difference solve not reported exceeded")
	}
}

// BenchmarkSolveAllocs is the solver allocation gate: with the adjoint
// workspace and projection scratch in place, a full analytic Solve should
// allocate only its setup (workspace + result vectors), independent of the
// iteration count. Evals/op is reported so the propagation budget of a
// solve is tracked alongside its allocations.
func BenchmarkSolveAllocs(b *testing.B) {
	topo, err := graph.Generate(graph.DefaultGenConfig(200, 20, 17))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Utility: LinearUtility{}, MinShare: 0.02, MaxIters: 500}
	b.ReportAllocs()
	b.ResetTimer()
	var evals, iters int
	for i := 0; i < b.N; i++ {
		alloc, err := Solve(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		evals += alloc.Evals
		iters += alloc.Iterations
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
}

// BenchmarkSolveElasticAllocs tracks the elastic solver the same way.
func BenchmarkSolveElasticAllocs(b *testing.B) {
	topo := richDAG(b, 21, 60, 8, true)
	cfg := Config{Utility: LinearUtility{}, MaxIters: 500}
	b.ReportAllocs()
	b.ResetTimer()
	var evals int
	for i := 0; i < b.N; i++ {
		ea, err := SolveElastic(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		evals += ea.Evals
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
}
