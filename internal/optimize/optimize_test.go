package optimize

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"aces/internal/graph"
	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

// uniformService returns a deterministic (burst-free) service model with a
// single cost T for both states.
func uniformService(t float64) workload.ServiceParams {
	return workload.ServiceParams{T0: t, T1: t, Rho: 0.5, LambdaS: 10, DwellUnit: 0.01, MeanMult: 1}
}

// chainTopo builds src → pe0 → pe1 → … → pe(k−1) on one node with the given
// per-stage costs; the last PE has weight 1.
func chainTopo(t *testing.T, costs []float64, srcRate float64) *graph.Topology {
	t.Helper()
	topo := graph.New(1, 50)
	prev := sdo.NilPE
	for i, tc := range costs {
		w := 0.0
		if i == len(costs)-1 {
			w = 1
		}
		id := topo.AddPE(graph.PE{Service: uniformService(tc), Weight: w})
		if prev != sdo.NilPE {
			if err := topo.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: 0, Rate: srcRate, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestUtilities(t *testing.T) {
	if (LinearUtility{}).Name() != "linear" || (LogUtility{}).Name() != "log" || (ExpUtility{}).Name() != "exp" {
		t.Errorf("utility names wrong")
	}
	if (LinearUtility{}).Value(3) != 3 {
		t.Errorf("linear utility wrong")
	}
	if v := (LogUtility{Scale: 1}).Value(math.E - 1); math.Abs(v-1) > 1e-12 {
		t.Errorf("log utility = %g, want 1", v)
	}
	if v := (ExpUtility{Scale: 1}).Value(1e9); math.Abs(v-1) > 1e-6 {
		t.Errorf("exp utility should saturate at 1, got %g", v)
	}
	// Zero/negative Scale defaults to 1.
	if (LogUtility{Scale: 0}).Value(1) != (LogUtility{Scale: 1}).Value(1) {
		t.Errorf("LogUtility zero-scale default broken")
	}
	if (ExpUtility{Scale: 0}).Value(1) != (ExpUtility{Scale: 1}).Value(1) {
		t.Errorf("ExpUtility zero-scale default broken")
	}
	// All utilities strictly increasing on a grid.
	for _, u := range []Utility{LinearUtility{}, LogUtility{Scale: 2}, ExpUtility{Scale: 2}} {
		prev := u.Value(0)
		for x := 0.5; x < 20; x += 0.5 {
			v := u.Value(x)
			if v <= prev {
				t.Errorf("%s not strictly increasing at %g", u.Name(), x)
			}
			prev = v
		}
	}
}

func TestProjectSimplex(t *testing.T) {
	cases := []struct {
		in   []float64
		z    float64
		want []float64
	}{
		{[]float64{0.5, 0.5}, 1, []float64{0.5, 0.5}},           // already on simplex
		{[]float64{2, 0}, 1, []float64{1.5, 0}},                 // clip: 2→1.5? projection of (2,0) onto sum=1: (1.5,-0.5)→ rho picks only first → (1,0)
		{[]float64{1, 1}, 1, []float64{0.5, 0.5}},               // symmetric overflow
		{[]float64{3, 1, 0}, 2, []float64{2, 0, 0}},             // large gap
		{[]float64{-1, -2, -3}, 1, []float64{1, 0, 0}},          // all negative: mass to largest
		{[]float64{0.2, 0.3, 0.1}, 3, []float64{0.2, 0.3, 0.1}}, // under budget unchanged? (projectSimplex only called when over)
	}
	_ = cases
	// Verify the fundamental properties instead of hand-computed vectors:
	// output sums to z (when input sum ≥ z), is non-negative, and is the
	// closest such point (checked by random probing).
	rng := sim.NewRand(1)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Uniform(-1, 3)
		}
		z := rng.Uniform(0.1, 2)
		p := projectSimplex(v, z)
		sum := 0.0
		for _, x := range p {
			if x < -1e-12 {
				t.Fatalf("negative component %g", x)
			}
			sum += x
		}
		if math.Abs(sum-z) > 1e-9 {
			t.Fatalf("projection sums to %g, want %g (v=%v)", sum, z, v)
		}
		dist := distSq(v, p)
		// Random feasible probes must not be closer.
		for probe := 0; probe < 30; probe++ {
			q := randSimplex(rng, n, z)
			if distSq(v, q) < dist-1e-9 {
				t.Fatalf("found closer feasible point: v=%v p=%v q=%v", v, p, q)
			}
		}
	}
}

func distSq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func randSimplex(rng *sim.Rand, n int, z float64) []float64 {
	v := make([]float64, n)
	var sum float64
	for i := range v {
		v[i] = -math.Log(1 - rng.Float64())
		sum += v[i]
	}
	for i := range v {
		v[i] *= z / sum
	}
	return v
}

// Closed-form oracle: a k-stage chain on one node with costs T_j, ample
// source rate, linear utility and weight only on the last stage. The
// optimum equalizes stage rates r = c_j/T_j with Σ c_j = 1, giving
// r* = 1/Σ T_j and c*_j = T_j/Σ T_j.
func TestSolveChainMatchesClosedForm(t *testing.T) {
	costs := []float64{0.002, 0.010, 0.004}
	topo := chainTopo(t, costs, 1e6)
	alloc, err := Solve(topo, Config{Utility: LinearUtility{}})
	if err != nil {
		t.Fatal(err)
	}
	var sumT float64
	for _, tc := range costs {
		sumT += tc
	}
	wantRate := 1 / sumT
	if math.Abs(alloc.WeightedThroughput-wantRate)/wantRate > 0.01 {
		t.Errorf("throughput = %.2f, want %.2f (±1%%)", alloc.WeightedThroughput, wantRate)
	}
	for j, tc := range costs {
		want := tc / sumT
		if math.Abs(alloc.CPU[j]-want) > 0.02 {
			t.Errorf("c[%d] = %.4f, want %.4f", j, alloc.CPU[j], want)
		}
	}
}

// With a finite source rate below capacity, stages should not be allocated
// more CPU than needed to carry the source rate.
func TestSolveChainSourceLimited(t *testing.T) {
	costs := []float64{0.004, 0.004}
	topo := chainTopo(t, costs, 50) // capacity would be 125/s; source only 50/s
	alloc, err := Solve(topo, Config{Utility: LinearUtility{}})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.WeightedThroughput > 50.01 {
		t.Errorf("throughput %.2f exceeds source rate", alloc.WeightedThroughput)
	}
	if alloc.WeightedThroughput < 49 {
		t.Errorf("throughput %.2f should reach the source rate 50", alloc.WeightedThroughput)
	}
}

// Two egress branches with unequal weights competing for one node's CPU
// under linear utility: all marginal CPU should flow to the branch with
// the higher weight-per-cost ratio. Brute-force grid search is the oracle.
func TestSolveFanoutMatchesBruteForce(t *testing.T) {
	build := func() *graph.Topology {
		topo := graph.New(1, 50)
		a := topo.AddPE(graph.PE{Service: uniformService(0.002)})
		b1 := topo.AddPE(graph.PE{Service: uniformService(0.004), Weight: 2})
		b2 := topo.AddPE(graph.PE{Service: uniformService(0.004), Weight: 1})
		if err := topo.Connect(a, b1); err != nil {
			t.Fatal(err)
		}
		if err := topo.Connect(a, b2); err != nil {
			t.Fatal(err)
		}
		if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 1e6, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
			t.Fatal(err)
		}
		return topo
	}
	topo := build()
	alloc, err := Solve(topo, Config{Utility: LinearUtility{}})
	if err != nil {
		t.Fatal(err)
	}

	// Brute force over the 2-simplex (c_a, c_b1, c_b2).
	bestObj := -1.0
	const step = 0.005
	for ca := 0.0; ca <= 1.0; ca += step {
		for cb1 := 0.0; ca+cb1 <= 1.0; cb1 += step {
			cb2 := 1.0 - ca - cb1
			c := []float64{ca, cb1, cb2}
			_, rout, err := Propagate(topo, c)
			if err != nil {
				t.Fatal(err)
			}
			obj := 2*rout[1] + rout[2]
			if obj > bestObj {
				bestObj = obj
			}
		}
	}
	if alloc.WeightedThroughput < bestObj*0.99 {
		t.Errorf("solver objective %.2f below brute force %.2f", alloc.WeightedThroughput, bestObj)
	}
}

// Feasibility invariants on generated topologies: node budgets respected,
// rates non-negative, input never exceeds availability.
func TestSolveFeasibilityOnGeneratedTopologies(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		topo, err := graph.Generate(graph.DefaultGenConfig(60, 10, seed))
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := Solve(topo, Config{})
		if err != nil {
			t.Fatal(err)
		}
		nodeSum := make([]float64, topo.NumNodes)
		for j := range alloc.CPU {
			if alloc.CPU[j] < -1e-12 {
				t.Errorf("seed %d: negative allocation c[%d] = %g", seed, j, alloc.CPU[j])
			}
			nodeSum[topo.PEs[j].Node] += alloc.CPU[j]
		}
		for n, s := range nodeSum {
			if s > 1+1e-9 {
				t.Errorf("seed %d: node %d allocated %g > 1", seed, n, s)
			}
		}
		for j := range alloc.RIn {
			if alloc.RIn[j] < 0 || alloc.ROut[j] < 0 {
				t.Errorf("seed %d: negative rate at PE %d", seed, j)
			}
		}
		if alloc.WeightedThroughput <= 0 {
			t.Errorf("seed %d: zero weighted throughput", seed)
		}
	}
}

// The optimizer must beat naive equal-split allocation on generated
// topologies — otherwise tier 1 adds nothing.
func TestSolveBeatsEqualSplit(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(60, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Solve(topo, Config{Utility: LinearUtility{}})
	if err != nil {
		t.Fatal(err)
	}
	equal := make([]float64, topo.NumPEs())
	for n := 0; n < topo.NumNodes; n++ {
		ids := topo.OnNode(sdo.NodeID(n))
		for _, id := range ids {
			equal[id] = 1 / float64(len(ids))
		}
	}
	_, rout, err := Propagate(topo, equal)
	if err != nil {
		t.Fatal(err)
	}
	var equalWT float64
	for j := range topo.PEs {
		equalWT += topo.PEs[j].Weight * rout[j]
	}
	if alloc.WeightedThroughput < equalWT {
		t.Errorf("optimizer %.3f worse than equal split %.3f", alloc.WeightedThroughput, equalWT)
	}
}

func TestSolveRejectsInvalidTopology(t *testing.T) {
	topo := graph.New(1, 50)
	topo.AddPE(graph.PE{Service: uniformService(0.002)}) // starving PE
	if _, err := Solve(topo, Config{}); err == nil {
		t.Errorf("invalid topology accepted")
	}
}

func TestPerturbStaysFeasible(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(60, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Solve(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(99)
	for _, eps := range []float64{0.1, 0.3, 0.5} {
		pert := Perturb(topo, alloc.CPU, eps, rng)
		nodeSum := make([]float64, topo.NumNodes)
		changed := false
		for j := range pert {
			if pert[j] < -1e-12 {
				t.Errorf("eps=%g: negative perturbed allocation", eps)
			}
			if math.Abs(pert[j]-alloc.CPU[j]) > 1e-15 {
				changed = true
			}
			nodeSum[topo.PEs[j].Node] += pert[j]
		}
		for n, s := range nodeSum {
			if s > 1+1e-9 {
				t.Errorf("eps=%g: node %d over budget: %g", eps, n, s)
			}
		}
		if !changed {
			t.Errorf("eps=%g: perturbation changed nothing", eps)
		}
	}
}

// Property: propagation is monotone — more CPU never decreases any output
// rate (a direct consequence of the concave fluid model that gradient
// ascent relies on).
func TestPropagateMonotoneProperty(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(30, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := sim.NewRand(seed)
		c1 := make([]float64, topo.NumPEs())
		c2 := make([]float64, topo.NumPEs())
		for j := range c1 {
			c1[j] = rng.Uniform(0, 0.2)
			c2[j] = c1[j] + rng.Uniform(0, 0.1)
		}
		_, r1, err := Propagate(topo, c1)
		if err != nil {
			return false
		}
		_, r2, err := Propagate(topo, c2)
		if err != nil {
			return false
		}
		for j := range r1 {
			if r2[j] < r1[j]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHeadroomReservesCapacity(t *testing.T) {
	topo := chainTopo(t, []float64{0.002, 0.002}, 1e6)
	alloc, err := Solve(topo, Config{Utility: LinearUtility{}, Headroom: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	total := alloc.CPU[0] + alloc.CPU[1]
	if total > 0.8+1e-9 {
		t.Errorf("allocations total %.3f exceed headroom 0.8", total)
	}
	// Throughput scales with the reserved budget: 0.8/(2 × 2ms) = 200/s.
	if math.Abs(alloc.WeightedThroughput-200)/200 > 0.02 {
		t.Errorf("throughput %.1f, want ≈200 with 0.8 headroom", alloc.WeightedThroughput)
	}
}

func TestMinShareFloorsAllocations(t *testing.T) {
	// Linear utility starves the low-value branch; MinShare must floor it.
	topo := graph.New(1, 50)
	a := topo.AddPE(graph.PE{Service: uniformService(0.002)})
	hi := topo.AddPE(graph.PE{Service: uniformService(0.004), Weight: 10})
	lo := topo.AddPE(graph.PE{Service: uniformService(0.004), Weight: 0.01})
	if err := topo.Connect(a, hi); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(a, lo); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: a, Rate: 1e6, Burst: graph.BurstSpec{Kind: graph.BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	bare, err := Solve(topo, Config{Utility: LinearUtility{}})
	if err != nil {
		t.Fatal(err)
	}
	if bare.CPU[lo] > 0.02 {
		t.Skipf("optimizer did not starve the low branch (c=%.3f); floor untestable here", bare.CPU[lo])
	}
	floored, err := Solve(topo, Config{Utility: LinearUtility{}, MinShare: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range floored.CPU {
		if c < 0.05-1e-9 {
			t.Errorf("PE %d allocation %.4f below the 0.05 floor", j, c)
		}
	}
	var total float64
	for _, c := range floored.CPU {
		total += c
	}
	if total > 1+1e-9 {
		t.Errorf("floored allocations exceed the node budget: %.3f", total)
	}
}

func TestSolveWithExpUtility(t *testing.T) {
	topo := chainTopo(t, []float64{0.002, 0.002}, 1e6)
	alloc, err := Solve(topo, Config{Utility: ExpUtility{Scale: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.WeightedThroughput < 200 {
		t.Errorf("exp-utility solve landed at %.1f, want near capacity 250", alloc.WeightedThroughput)
	}
}

func TestSolveDeadlineTruncates(t *testing.T) {
	topo, err := graph.Generate(graph.DefaultGenConfig(120, 12, 5))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Solve(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if full.DeadlineExceeded {
		t.Fatal("unbounded solve reported a deadline hit")
	}
	if full.SolveMillis <= 0 {
		t.Errorf("unbounded solve reported SolveMillis = %g", full.SolveMillis)
	}
	cut, err := Solve(topo, Config{Deadline: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if !cut.DeadlineExceeded {
		t.Fatal("1µs deadline was not reported as exceeded")
	}
	if cut.Iterations >= full.Iterations {
		t.Errorf("deadline-cut solve used %d iterations, unbounded used %d", cut.Iterations, full.Iterations)
	}
	// A truncated solve must still be feasible and non-degenerate: the
	// initial point is feasible and every projection keeps it so.
	nodeSum := make([]float64, topo.NumNodes)
	for j := range cut.CPU {
		if cut.CPU[j] < -1e-12 {
			t.Errorf("negative allocation c[%d] = %g", j, cut.CPU[j])
		}
		nodeSum[topo.PEs[j].Node] += cut.CPU[j]
	}
	for n, s := range nodeSum {
		if s > 1+1e-9 {
			t.Errorf("node %d allocated %g > 1 under deadline", n, s)
		}
	}
	if cut.WeightedThroughput <= 0 {
		t.Error("deadline-cut solve produced zero weighted throughput")
	}
}
