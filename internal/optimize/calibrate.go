// Online rate-model calibration (paper §V-B): tier 1 assumes every PE
// obeys r̄_in,j = h_j(c̄_j) = a_j·c̄_j − b_j, but the coefficients drift as
// workloads change. The calibrator estimates (â_j, b̂_j) by recursive
// least squares over the (CPU spent, SDOs processed) window samples the
// live scheduler already takes, and produces a calibrated topology for
// the periodic re-solve — the measurement half of the adaptive loop.
package optimize

import (
	"math"
	"sync"

	"aces/internal/graph"
)

// RLS is a two-parameter recursive least-squares estimator with
// exponential forgetting for the PE rate model r = a·c − b, where c is
// the CPU fraction actually spent over a sample window and r the
// processing rate over the same window. The regressor is φ = (c, −1), so
// one Observe costs a handful of multiplies — cheap enough to run per
// sample window per PE.
type RLS struct {
	a, b float64
	// a0/b0 is the declared-model prior the estimator was seeded with,
	// kept as the sanity floor: adversarial sample runs (idle-window
	// bursts, measurement glitches) that drive the slope non-positive or
	// the covariance non-finite reset the estimate here instead of handing
	// the solver a degenerate "negative capacity" model.
	a0, b0 float64
	// p11/p12/p22 is the symmetric parameter covariance P. It starts as
	// the prior confidence and shrinks along excited directions; the
	// forgetting factor re-inflates it so the estimate tracks drift.
	p11, p12, p22 float64
	lambda        float64
	n             int
}

// rlsCovCap bounds the covariance diagonal relative to its prior,
// preventing estimator windup: steady-state traffic excites only one
// direction of (a, b) space, and without a cap the forgetting factor
// would inflate the unexcited direction's variance without bound, making
// the estimate hypersensitive to the first sample after a regime change.
const rlsCovCap = 1e4

// NewRLS creates an estimator with prior (a0, b0) and forgetting factor
// lambda in (0, 1]; lambda = 1 never forgets, smaller values track faster
// (0.98 halves a sample's influence in ~34 samples).
func NewRLS(a0, b0, lambda float64) *RLS {
	if lambda <= 0 || lambda > 1 {
		lambda = 0.98
	}
	// Prior variances: generous on a (the data pins it almost immediately
	// — the regressor direction is dominated by c), tight-ish on b. The
	// live runtime's windows are nearly collinear (c barely moves in
	// steady state), so b is weakly identified and stays near its prior
	// unless the data genuinely bends; that is the right failure mode,
	// since the prior b comes from the deployed topology.
	pa := a0*a0 + 1
	return &RLS{a: a0, b: b0, a0: a0, b0: b0, p11: pa, p22: 1, lambda: lambda}
}

// rlsSlopeEps is the smallest admissible rate-model slope. An estimate at
// or below it means the data claims "more CPU, fewer SDOs" — a physical
// impossibility that only adversarial sample runs produce.
const rlsSlopeEps = 1e-9

// resetToPrior restores the declared-model prior, both parameters and
// covariance. Called when an update leaves the estimate degenerate.
func (r *RLS) resetToPrior() {
	r.a, r.b = r.a0, r.b0
	r.p11, r.p12, r.p22 = r.a0*r.a0+1, 0, 1
}

// Observe folds one window sample (cpu fraction spent, processing rate)
// into the estimate.
func (r *RLS) Observe(c, rate float64) {
	// φ = (c, −1); innovation e = y − φᵀθ.
	e := rate - (r.a*c - r.b)
	// Pφ and the gain denominator λ + φᵀPφ.
	g1 := r.p11*c - r.p12
	g2 := r.p12*c - r.p22
	den := r.lambda + g1*c - g2
	if den <= 0 {
		return
	}
	k1, k2 := g1/den, g2/den
	r.a += k1 * e
	r.b += k2 * e
	// P = (P − k·(Pφ)ᵀ)/λ, kept symmetric, diagonal capped (anti-windup).
	p11 := (r.p11 - k1*g1) / r.lambda
	p12 := (r.p12 - k1*g2) / r.lambda
	p22 := (r.p22 - k2*g2) / r.lambda
	cap11, cap22 := rlsCovCap*(r.a*r.a+1), rlsCovCap
	if p11 > cap11 {
		p11 = cap11
	}
	if p22 > cap22 {
		p22 = cap22
	}
	r.p11, r.p12, r.p22 = p11, p12, p22
	r.n++
	// Sanity floor: a burst of degenerate windows (idle stretches sampled
	// as near-zero CPU with leftover rate, or the reverse) can drive the
	// slope non-positive or blow the covariance up to NaN/Inf. Calibrated()
	// would hand that to the solver as a model with negative capacity, so
	// clamp back to the declared prior and let fresh data re-learn.
	if r.a <= rlsSlopeEps ||
		!isFinite(r.a) || !isFinite(r.b) ||
		!isFinite(r.p11) || !isFinite(r.p12) || !isFinite(r.p22) {
		r.resetToPrior()
	}
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Estimate returns the current (â, b̂) and the number of samples folded in.
func (r *RLS) Estimate() (a, b float64, samples int) { return r.a, r.b, r.n }

// RateModel is one PE's calibrated rate model r = A·c − B.
type RateModel struct {
	// A is â_j in SDOs per CPU-second (1/A is the effective per-SDO cost).
	A float64
	// B is b̂_j in SDOs per second (the paper's fixed-overhead tax).
	B float64
	// Samples is how many windows informed the estimate.
	Samples int
}

// Calibrator maintains one RLS estimator per PE of a topology, seeded
// from the topology's declared service models, and builds calibrated
// topologies for the tier-1 re-solve. Safe for concurrent use: schedulers
// feed windows while the retarget loop reads models.
type Calibrator struct {
	mu         sync.Mutex
	topo       *graph.Topology
	pes        []*RLS
	minSamples int
}

// minCPUWindow is the smallest CPU fraction a window must have spent to
// carry rate-model information; below it the sample is 0/0 noise (an idle
// PE reveals nothing about its cost).
const minCPUWindow = 1e-6

// NewCalibrator seeds estimators from t's declared models: prior
// a = 1/EffectiveCost, b = Overhead. lambda ≤ 0 defaults to 0.98;
// minSamples ≤ 0 defaults to 8 — a PE with fewer informative windows
// keeps its declared model in Calibrated().
func NewCalibrator(t *graph.Topology, lambda float64, minSamples int) *Calibrator {
	if minSamples <= 0 {
		minSamples = 8
	}
	cal := &Calibrator{topo: t, pes: make([]*RLS, t.NumPEs()), minSamples: minSamples}
	for j := range cal.pes {
		pe := &t.PEs[j]
		cal.pes[j] = NewRLS(1/pe.Service.EffectiveCost(), pe.Overhead, lambda)
	}
	return cal
}

// Observe folds one window sample for PE j: cpuFrac is the CPU fraction
// the PE actually spent (not its grant — an idle PE's unused grant says
// nothing about its cost) and rate the SDOs it processed per second over
// the same window. Idle windows are discarded.
func (cal *Calibrator) Observe(j int, cpuFrac, rate float64) {
	if j < 0 || j >= len(cal.pes) || cpuFrac < minCPUWindow || rate < 0 {
		return
	}
	cal.mu.Lock()
	cal.pes[j].Observe(cpuFrac, rate)
	cal.mu.Unlock()
}

// Model returns PE j's current calibrated rate model.
func (cal *Calibrator) Model(j int) RateModel {
	cal.mu.Lock()
	defer cal.mu.Unlock()
	a, b, n := cal.pes[j].Estimate()
	return RateModel{A: a, B: b, Samples: n}
}

// Calibrated returns a copy of the topology with each sufficiently
// sampled PE's service model replaced by its measured one: deterministic
// per-SDO cost 1/â (T0 = T1, burstiness and multiplicity retained from
// the declared model) and Overhead = max(0, b̂). PEs with too few samples
// — remote PEs in a partitioned deployment, parked PEs, cold starts —
// keep their declared models, so a partial view degrades to the deployed
// priors instead of poisoning the re-solve. Estimates more than 100× away
// from the prior are rejected as measurement pathologies.
func (cal *Calibrator) Calibrated() *graph.Topology {
	cal.mu.Lock()
	defer cal.mu.Unlock()
	ct := *cal.topo
	ct.PEs = append([]graph.PE(nil), cal.topo.PEs...)
	for j := range ct.PEs {
		a, b, n := cal.pes[j].Estimate()
		if n < cal.minSamples || a <= 0 {
			continue
		}
		prior := 1 / ct.PEs[j].Service.EffectiveCost()
		if a < prior/100 || a > prior*100 {
			continue
		}
		ps := ct.PEs[j].Service
		ps.T0, ps.T1 = 1/a, 1/a
		ct.PEs[j].Service = ps
		if b > 0 {
			ct.PEs[j].Overhead = b
		} else {
			ct.PEs[j].Overhead = 0
		}
	}
	return &ct
}
