package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCollectorWarmupDiscards(t *testing.T) {
	c := NewCollector(10)
	c.Egress(5, 1, 0.01)     // before warmup: discarded
	c.InputDrop(5)           // discarded
	c.InFlightDrop(5, 3)     // discarded
	c.BufferSample(5, 40)    // discarded
	c.ThroughputSample(5, 9) // discarded
	r := c.Finalize(20)
	if r.Deliveries != 0 || r.InputDrops != 0 || r.InFlightDrops != 0 {
		t.Errorf("warmup events leaked into report: %+v", r)
	}
	if r.MeanBufferOccupancy != 0 {
		t.Errorf("warmup buffer samples leaked")
	}
}

func TestCollectorThroughputAndLatency(t *testing.T) {
	c := NewCollector(0)
	// 100 deliveries of weight 2 over 10 seconds → wt = 20/s.
	for i := 0; i < 100; i++ {
		c.Egress(float64(i)*0.1, 2, 0.05)
	}
	r := c.Finalize(10)
	if math.Abs(r.WeightedThroughput-20) > 1e-9 {
		t.Errorf("wt = %g, want 20", r.WeightedThroughput)
	}
	if math.Abs(r.MeanLatency-0.05) > 1e-12 || r.StdLatency != 0 {
		t.Errorf("latency stats wrong: %+v", r)
	}
	if math.Abs(r.P50-0.05) > 1e-12 || math.Abs(r.P99-0.05) > 1e-12 {
		t.Errorf("latency quantiles wrong")
	}
	if r.Deliveries != 100 {
		t.Errorf("deliveries = %d", r.Deliveries)
	}
}

func TestCollectorLossAccounting(t *testing.T) {
	c := NewCollector(0)
	c.Egress(1, 1, 0.01)
	c.Egress(2, 1, 0.01)
	c.InputDrop(1)
	c.InFlightDrop(1, 4)
	c.InFlightDrop(2, 2)
	r := c.Finalize(10)
	if r.InputDrops != 1 || r.InFlightDrops != 2 || r.WastedHops != 6 {
		t.Errorf("loss accounting wrong: %+v", r)
	}
	if math.Abs(r.LossRate()-1.0) > 1e-12 {
		t.Errorf("LossRate = %g, want 1.0", r.LossRate())
	}
}

func TestLossRateEdgeCases(t *testing.T) {
	r := Report{Deliveries: 0, InFlightDrops: 0}
	if r.LossRate() != 0 {
		t.Errorf("no traffic LossRate = %g", r.LossRate())
	}
	r = Report{Deliveries: 0, InFlightDrops: 5}
	if !math.IsInf(r.LossRate(), 1) {
		t.Errorf("all-loss LossRate should be +Inf")
	}
}

func TestBufferAndThroughputStability(t *testing.T) {
	c := NewCollector(0)
	for i := 0; i < 100; i++ {
		c.BufferSample(float64(i), 25)
		c.ThroughputSample(float64(i), 10)
	}
	r := c.Finalize(100)
	if math.Abs(r.MeanBufferOccupancy-25) > 1e-12 || r.StdBufferOccupancy != 0 {
		t.Errorf("buffer stats wrong: %+v", r)
	}
	if r.ThroughputCV != 0 {
		t.Errorf("constant throughput CV = %g, want 0", r.ThroughputCV)
	}
	// Oscillating series yields positive CV.
	c2 := NewCollector(0)
	for i := 0; i < 100; i++ {
		v := 5.0
		if i%2 == 0 {
			v = 15
		}
		c2.ThroughputSample(float64(i), v)
	}
	r2 := c2.Finalize(100)
	if r2.ThroughputCV <= 0.3 {
		t.Errorf("oscillating CV = %g, want > 0.3", r2.ThroughputCV)
	}
}

func TestFinalizeBeforeWarmup(t *testing.T) {
	c := NewCollector(100)
	r := c.Finalize(50)
	if r.Duration != 0 || r.WeightedThroughput != 0 {
		t.Errorf("pre-warmup finalize should have zero rates: %+v", r)
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector(0)
	c.Egress(1, 1, 0.02)
	r := c.Finalize(2)
	if s := r.String(); !strings.Contains(s, "wt=") {
		t.Errorf("String = %q", s)
	}
}
