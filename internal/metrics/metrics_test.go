package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestCollectorWarmupDiscards(t *testing.T) {
	c := NewCollector(10)
	c.Egress(5, 1, 0.01)     // before warmup: discarded
	c.InputDrop(5)           // discarded
	c.InFlightDrop(5, 3)     // discarded
	c.BufferSample(5, 40)    // discarded
	c.ThroughputSample(5, 9) // discarded
	r := c.Finalize(20)
	if r.Deliveries != 0 || r.InputDrops != 0 || r.InFlightDrops != 0 {
		t.Errorf("warmup events leaked into report: %+v", r)
	}
	if r.MeanBufferOccupancy != 0 {
		t.Errorf("warmup buffer samples leaked")
	}
}

func TestCollectorThroughputAndLatency(t *testing.T) {
	c := NewCollector(0)
	// 100 deliveries of weight 2 over 10 seconds → wt = 20/s.
	for i := 0; i < 100; i++ {
		c.Egress(float64(i)*0.1, 2, 0.05)
	}
	r := c.Finalize(10)
	if math.Abs(r.WeightedThroughput-20) > 1e-9 {
		t.Errorf("wt = %g, want 20", r.WeightedThroughput)
	}
	if math.Abs(r.MeanLatency-0.05) > 1e-12 || r.StdLatency != 0 {
		t.Errorf("latency stats wrong: %+v", r)
	}
	if math.Abs(r.P50-0.05) > 1e-12 || math.Abs(r.P99-0.05) > 1e-12 {
		t.Errorf("latency quantiles wrong")
	}
	if r.Deliveries != 100 {
		t.Errorf("deliveries = %d", r.Deliveries)
	}
}

func TestCollectorLossAccounting(t *testing.T) {
	c := NewCollector(0)
	c.Egress(1, 1, 0.01)
	c.Egress(2, 1, 0.01)
	c.InputDrop(1)
	c.InFlightDrop(1, 4)
	c.InFlightDrop(2, 2)
	r := c.Finalize(10)
	if r.InputDrops != 1 || r.InFlightDrops != 2 || r.WastedHops != 6 {
		t.Errorf("loss accounting wrong: %+v", r)
	}
	if math.Abs(r.LossRate()-1.0) > 1e-12 {
		t.Errorf("LossRate = %g, want 1.0", r.LossRate())
	}
}

func TestLossRateEdgeCases(t *testing.T) {
	r := Report{Deliveries: 0, InFlightDrops: 0}
	if r.LossRate() != 0 {
		t.Errorf("no traffic LossRate = %g", r.LossRate())
	}
	r = Report{Deliveries: 0, InFlightDrops: 5}
	if !math.IsInf(r.LossRate(), 1) {
		t.Errorf("all-loss LossRate should be +Inf")
	}
}

func TestBufferAndThroughputStability(t *testing.T) {
	c := NewCollector(0)
	for i := 0; i < 100; i++ {
		c.BufferSample(float64(i), 25)
		c.ThroughputSample(float64(i), 10)
	}
	r := c.Finalize(100)
	if math.Abs(r.MeanBufferOccupancy-25) > 1e-12 || r.StdBufferOccupancy != 0 {
		t.Errorf("buffer stats wrong: %+v", r)
	}
	if r.ThroughputCV != 0 {
		t.Errorf("constant throughput CV = %g, want 0", r.ThroughputCV)
	}
	// Oscillating series yields positive CV.
	c2 := NewCollector(0)
	for i := 0; i < 100; i++ {
		v := 5.0
		if i%2 == 0 {
			v = 15
		}
		c2.ThroughputSample(float64(i), v)
	}
	r2 := c2.Finalize(100)
	if r2.ThroughputCV <= 0.3 {
		t.Errorf("oscillating CV = %g, want > 0.3", r2.ThroughputCV)
	}
}

func TestFinalizeBeforeWarmup(t *testing.T) {
	c := NewCollector(100)
	r := c.Finalize(50)
	if r.Duration != 0 || r.WeightedThroughput != 0 {
		t.Errorf("pre-warmup finalize should have zero rates: %+v", r)
	}
	if !r.Degenerate {
		t.Errorf("finalize before warmup must be marked Degenerate")
	}
}

// The warm-up gate is strict (now < warmup discards): events landing
// exactly ON the horizon belong to the measured window.
func TestWarmupBoundaryCounted(t *testing.T) {
	c := NewCollector(10)
	c.Egress(10, 2, 0.01)
	c.InputDrop(10)
	c.InFlightDrop(10, 3)
	c.BufferSample(10, 7)
	c.ThroughputSample(10, 5)
	r := c.Finalize(20)
	if r.Deliveries != 1 || r.InputDrops != 1 || r.InFlightDrops != 1 || r.WastedHops != 3 {
		t.Errorf("boundary events discarded: %+v", r)
	}
	if r.MeanBufferOccupancy != 7 {
		t.Errorf("boundary buffer sample discarded: %+v", r)
	}
	if r.Degenerate {
		t.Errorf("run past warmup marked Degenerate")
	}
	// Finalizing exactly AT the horizon leaves no measured window.
	c2 := NewCollector(10)
	c2.Egress(10, 2, 0.01)
	r2 := c2.Finalize(10)
	if !r2.Degenerate || r2.Duration != 0 {
		t.Errorf("finalize at warmup not degenerate: %+v", r2)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	c := NewCollector(1)
	c.Egress(2, 1.5, 0.020)
	c.Egress(3, 1.5, 0.040)
	c.InputDrop(2)
	c.InFlightDrop(2, 4)
	c.BufferSample(2, 12)
	c.ThroughputSample(2, 3)
	c.ThroughputSample(3, 5)
	in := c.Finalize(10)
	in.Links = []LinkStats{{FramesSent: 9, FramesDropped: 2, Reconnects: 1, QueueLen: 3, QueueCap: 64, BatchesSent: 2, BatchedFrames: 7}}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated the report:\n in: %+v\nout: %+v", in, out)
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector(0)
	c.Egress(1, 1, 0.02)
	r := c.Finalize(2)
	s := r.String()
	for _, want := range []string{"wt=", "cv=", "p95=", "p99="} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %q", want, s)
		}
	}
}
