// Package metrics implements the paper's measures of effectiveness
// (§III-A, §IV): weighted throughput of system outputs, end-to-end latency
// distribution, loss accounting split into input loss (cheap — nothing was
// invested yet) versus in-flight loss of partially processed data
// (expensive — wasted processing), and buffer/rate stability indicators.
package metrics

import (
	"fmt"
	"math"

	"aces/internal/stats"
)

// Collector accumulates run metrics for one simulation or live run.
// Samples before the warm-up horizon are discarded so transients do not
// bias steady-state estimates. Not safe for concurrent use; the live
// runtime aggregates per-node collectors.
type Collector struct {
	warmup float64

	weighted   float64 // Σ w over delivered egress SDOs after warmup
	deliveries int64

	lat    stats.Welford
	latRes *stats.Reservoir

	inputDrops    int64
	inflightDrops int64
	wastedHops    int64

	wtSeries stats.TimeSeries // windowed weighted-throughput samples

	bufOcc stats.Welford // pooled buffer-occupancy samples
}

// NewCollector creates a collector discarding all events before warmup
// (seconds of run time).
func NewCollector(warmup float64) *Collector {
	return &Collector{warmup: warmup, latRes: stats.NewReservoir(8192, 0x5EED)}
}

// Warmup returns the warm-up horizon.
func (c *Collector) Warmup() float64 { return c.warmup }

// Egress records the delivery of one SDO on a weighted output stream at
// time now with the given end-to-end latency (seconds).
func (c *Collector) Egress(now, weight, latency float64) {
	if now < c.warmup {
		return
	}
	c.deliveries++
	c.weighted += weight
	c.lat.Add(latency)
	c.latRes.Add(latency)
}

// InputDrop records the loss of an SDO at a system entry point (ingress
// buffer overflow).
func (c *Collector) InputDrop(now float64) {
	if now < c.warmup {
		return
	}
	c.inputDrops++
}

// InFlightDrop records the loss of a partially processed SDO (an internal
// buffer overflow); hops is the processing depth already invested.
func (c *Collector) InFlightDrop(now float64, hops int) {
	if now < c.warmup {
		return
	}
	c.inflightDrops++
	c.wastedHops += int64(hops)
}

// BufferSample records an input-buffer occupancy observation.
func (c *Collector) BufferSample(now, occupancy float64) {
	if now < c.warmup {
		return
	}
	c.bufOcc.Add(occupancy)
}

// ThroughputSample records a windowed weighted-throughput observation for
// the stability time series.
func (c *Collector) ThroughputSample(now, wt float64) {
	if now < c.warmup {
		return
	}
	c.wtSeries.Append(now, wt)
}

// Report is the frozen summary of a run.
type Report struct {
	// Duration is the measured (post-warmup) horizon in seconds.
	Duration float64 `json:"duration_s"`
	// WeightedThroughput is Σ w_j × delivery rate over weighted egress
	// streams, in weight·SDOs per second (§III-A).
	WeightedThroughput float64 `json:"weighted_throughput"`
	// Deliveries counts egress SDOs after warmup.
	Deliveries int64 `json:"deliveries"`
	// MeanLatency and StdLatency describe the end-to-end latency
	// distribution in seconds.
	MeanLatency float64 `json:"mean_latency_s"`
	// StdLatency is the latency standard deviation in seconds.
	StdLatency float64 `json:"std_latency_s"`
	// P50, P95 and P99 are latency quantiles in seconds.
	P50 float64 `json:"p50_latency_s"`
	P95 float64 `json:"p95_latency_s"`
	P99 float64 `json:"p99_latency_s"`
	// InputDrops counts SDOs lost at system entry; InFlightDrops counts
	// partially processed SDOs lost inside the graph; WastedHops is the
	// total processing depth thrown away with in-flight losses (§IV's
	// "wasted processing").
	InputDrops    int64 `json:"input_drops"`
	InFlightDrops int64 `json:"in_flight_drops"`
	WastedHops    int64 `json:"wasted_hops"`
	// MeanBufferOccupancy and StdBufferOccupancy pool all sampled PE
	// buffers (§IV's stability goal: buffers near target, low variance).
	MeanBufferOccupancy float64 `json:"mean_buffer_occupancy"`
	StdBufferOccupancy  float64 `json:"std_buffer_occupancy"`
	// ThroughputCV is the coefficient of variation of the windowed
	// weighted-throughput series — the oscillation indicator (§IV).
	ThroughputCV float64 `json:"throughput_cv"`
	// Links reports per-uplink transport counters for partitioned
	// deployments (empty when the run had no attached links).
	Links []LinkStats `json:"links,omitempty"`
	// Members reports the heartbeat-membership verdicts on peer nodes at
	// report time (partitioned deployments with health enabled).
	Members []MemberStatus `json:"members,omitempty"`
	// TargetEpoch is the tier-1 target epoch applied at report time
	// (0 = the deployment-time allocation, never retargeted).
	TargetEpoch uint64 `json:"target_epoch,omitempty"`
	// TargetTerm is the controller term of the applied target set (0 = the
	// deployment-time controller; a positive term means a standby claimed
	// control during the run).
	TargetTerm uint64 `json:"target_term,omitempty"`
	// FencedFrames counts target frames rejected for carrying a deposed
	// controller term — nonzero proves the fencing rule fired against a
	// zombie or partitioned ex-controller.
	FencedFrames int64 `json:"fenced_frames,omitempty"`
	// Retargets counts the target epochs this process accepted during the
	// run (its own re-solves plus disseminations from peers).
	Retargets int64 `json:"retargets,omitempty"`
	// ActiveReplicas is the largest per-PE count of active replica slots
	// under the applied target set (1 for a run that never scaled out).
	ActiveReplicas int `json:"active_replicas,omitempty"`
	// SolveMillis is the wall time of the most recent tier-1 re-solve on
	// this process (0 when no retarget loop ran).
	SolveMillis float64 `json:"solve_ms,omitempty"`
	// ColdSolves counts adaptive-loop re-solves that fell back to a cold
	// start because their warm start was missing or wrong-shaped (e.g.
	// stale after a topology change) — each one pays a full ascent
	// against the epoch deadline.
	ColdSolves int64 `json:"cold_solves,omitempty"`
	// TargetFramesSent counts target frames this process relayed to its
	// dissemination-tree children (0 for flat deployments).
	TargetFramesSent int64 `json:"target_frames_sent,omitempty"`
	// TargetEpochLag is the applied-vs-acked epoch gap of the slowest
	// tracked tree descendant at report time.
	TargetEpochLag uint64 `json:"target_epoch_lag,omitempty"`
	// PERestarts counts supervisor panic-recoveries across local PEs.
	PERestarts int64 `json:"pe_restarts,omitempty"`
	// BreakersOpen counts local PEs whose restart circuit breaker has
	// tripped (the PE is parked and its CPU share released).
	BreakersOpen int `json:"breakers_open,omitempty"`
	// Degenerate marks a report finalized at or before the warm-up
	// horizon: no measured window exists, so Duration and every rate
	// derived from it are zero and must not be compared against real runs.
	Degenerate bool `json:"degenerate,omitempty"`
}

// MemberStatus is one peer node's membership verdict at report time.
type MemberStatus struct {
	// Node is the peer's topology node ID.
	Node int32 `json:"node"`
	// State is "alive", "suspect" or "dead".
	State string `json:"state"`
	// SilenceS is the virtual seconds since the peer's last heartbeat.
	SilenceS float64 `json:"silence_s"`
}

// LinkStats summarizes one cross-partition uplink's transport behaviour
// over a run: the degrade-don't-collapse contract makes uplink loss a
// first-class metric alongside buffer loss.
type LinkStats struct {
	// FramesSent counts frames that reached the wire.
	FramesSent int64 `json:"frames_sent"`
	// FramesDropped counts frames lost at this endpoint (outbox overflow
	// or write failure); data-frame drops also appear as in-flight loss.
	FramesDropped int64 `json:"frames_dropped"`
	// ControlDropped counts control frames (feedback, heartbeats, targets,
	// replica targets, acks) among FramesDropped. Control frames ride a
	// reserved lane, so this should stay 0 under pure data floods; nonzero
	// means the control plane itself is saturating or the link is down.
	ControlDropped int64 `json:"control_frames_dropped,omitempty"`
	// CtlFeatureDropped counts control frames dropped by the writer's
	// write-time feature re-gate: enqueued against one connection, written
	// after a reconnect whose new peer no longer advertises the frame's
	// feature and no lossless downgrade encoding exists. A subset of
	// ControlDropped; nonzero means a peer reconnected with fewer
	// features (e.g. rolled back to an older binary).
	CtlFeatureDropped int64 `json:"ctl_feature_dropped,omitempty"`
	// Reconnects counts link re-establishments after the first connect.
	Reconnects int64 `json:"reconnects"`
	// QueueLen/QueueCap snapshot the outbox at report time.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// BatchesSent counts KindBatch wire frames; BatchedFrames counts the
	// member frames they carried, so BatchedFrames/BatchesSent is the
	// mean batch fill. Both stay zero when batching is off or the peer
	// never negotiated it.
	BatchesSent   int64 `json:"batches_sent,omitempty"`
	BatchedFrames int64 `json:"batched_frames,omitempty"`
}

// Finalize freezes the collector into a report. now is the end-of-run
// time; it must be ≥ the warm-up horizon for any rates to be defined.
func (c *Collector) Finalize(now float64) Report {
	r := Report{
		InputDrops:          c.inputDrops,
		InFlightDrops:       c.inflightDrops,
		WastedHops:          c.wastedHops,
		Deliveries:          c.deliveries,
		MeanLatency:         c.lat.Mean(),
		StdLatency:          c.lat.Std(),
		MeanBufferOccupancy: c.bufOcc.Mean(),
		StdBufferOccupancy:  c.bufOcc.Std(),
	}
	if now > c.warmup {
		r.Duration = now - c.warmup
		r.WeightedThroughput = c.weighted / r.Duration
	} else {
		r.Degenerate = true
	}
	qs := c.latRes.Quantiles(0.5, 0.95, 0.99)
	r.P50, r.P95, r.P99 = qs[0], qs[1], qs[2]
	if c.wtSeries.Len() > 1 {
		mean := c.wtSeries.MeanAfter(0)
		if mean > 0 {
			r.ThroughputCV = c.wtSeries.StdAfter(0) / mean
		}
	}
	return r
}

// LossRate returns in-flight drops per delivered SDO — the wasted-work
// indicator used in the reports.
func (r Report) LossRate() float64 {
	if r.Deliveries == 0 {
		if r.InFlightDrops > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return float64(r.InFlightDrops) / float64(r.Deliveries)
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("wt=%.2f cv=%.3f lat=%.1fms±%.1f p95=%.1fms p99=%.1fms drops(in=%d fly=%d) bufocc=%.1f",
		r.WeightedThroughput, r.ThroughputCV, r.MeanLatency*1e3, r.StdLatency*1e3,
		r.P95*1e3, r.P99*1e3, r.InputDrops, r.InFlightDrops, r.MeanBufferOccupancy)
}
