// Package ring implements the bounded lock-free queue behind the data
// plane's hot paths: PE input buffers (internal/spc) and the transport
// outbox (internal/transport). The core is a Vyukov-style array queue —
// one sequence atomic per cell, power-of-two sizing, cache-line-padded
// enqueue/dequeue cursors — specialized at construction for single- or
// multi-producer/consumer use: a structurally exclusive side replaces
// its CAS with a plain store, which is what makes the SPSC configuration
// a pure load/store handoff with no atomic read-modify-write at all.
//
// Capacity is exact, independent of the power-of-two backing array: a
// TryPush fails once Len() == Cap(), never before, so drop-rate
// semantics match the mutex implementation this replaces. (Proof sketch
// for the multi-producer case: a winning claim of position H verified
// H − tail < cap against a tail value read before the claim; tail only
// grows, so H+1 − tail ≤ cap holds at and after the claim.)
//
// Blocking Push/Pop use a spin-then-park waiter: a few yielding retries
// and then a cond-var park, guarded by a per-side waiter count so the
// opposite side pays one atomic load per operation while nobody waits.
// Cancellation parks arm a context.AfterFunc waker — on BOTH sides;
// Pop's park is what regressed when only Push armed it (ISSUE 10).
//
// Close is idempotent and the post-Close contract matches spc.Buffer's:
// pushes fail immediately, pops drain what was accepted before Close
// and only then report failure. Close is not a memory barrier against
// in-flight concurrent pushes — an admit racing Close may land; it is
// never lost, because the drain picks it up.
package ring

import (
	"context"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Mode selects the construction-time exclusivity fast paths. Claiming a
// single-producer (resp. single-consumer) ring while pushing (popping)
// from two goroutines is a data race; when in doubt use MPMC, which is
// always safe.
type Mode uint8

const (
	// MPMC is the fully general (and always safe) configuration.
	MPMC Mode = 0
	// SingleProducer promises at most one concurrent pusher.
	SingleProducer Mode = 1 << 0
	// SingleConsumer promises at most one concurrent popper.
	SingleConsumer Mode = 1 << 1
	// SPSC is the classic two-goroutine handoff configuration.
	SPSC Mode = SingleProducer | SingleConsumer
)

// cell is one ring slot. seq encodes the slot's lap state: seq == pos
// means free for the producer claiming position pos; seq == pos+1 means
// filled for the consumer at pos; seq == pos+size means released for
// the producer's next lap.
type cell[T any] struct {
	seq atomic.Uint64
	val T
}

// pad keeps the hot cursors on separate cache lines from each other and
// from the read-mostly header fields; without it every push invalidates
// the popper's cached line and vice versa.
type pad [56]byte

// Ring is the bounded queue. The zero value is not usable; call New.
type Ring[T any] struct {
	cells []cell[T]
	mask  uint64
	cap   uint64
	sp    bool // single producer: plain-store head
	sc    bool // single consumer: plain-store tail

	_    pad
	head atomic.Uint64 // next position to claim for enqueue
	_    pad
	tail atomic.Uint64 // next position to claim for dequeue
	_    pad

	closed atomic.Bool

	// Park state. pushWait/popWait are read by the opposite side after
	// every successful operation; incrementing them under mu before the
	// final lock-free retry is the Dekker handshake that makes parking
	// lose no wakeups.
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	pushWait atomic.Int32
	popWait  atomic.Int32
}

// New creates a ring holding at most capacity elements. The backing
// array is the next power of two ≥ capacity; Cap() still reports (and
// enforces) the exact requested capacity.
func New[T any](capacity int, mode Mode) *Ring[T] {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	size := 1 << bits.Len(uint(capacity-1))
	r := &Ring[T]{
		cells: make([]cell[T], size),
		mask:  uint64(size - 1),
		cap:   uint64(capacity),
		sp:    mode&SingleProducer != 0,
		sc:    mode&SingleConsumer != 0,
	}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// Cap returns the exact logical capacity.
func (r *Ring[T]) Cap() int { return int(r.cap) }

// Len returns the current occupancy. It is a racy snapshot under
// concurrency, but never negative and never exceeds Cap. (Reading tail
// before head keeps head ≥ the tail we read, since both only grow.)
func (r *Ring[T]) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	n := int(h - t)
	if n < 0 {
		n = 0
	}
	if n > int(r.cap) {
		n = int(r.cap)
	}
	return n
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// Close marks the ring closed and wakes every parked waiter. Idempotent.
func (r *Ring[T]) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.mu.Lock()
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
	r.mu.Unlock()
}

// tryPush is the lock-free core: it performs no waiter wakeup, so the
// park paths can call it while holding r.mu.
func (r *Ring[T]) tryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	if r.sp {
		pos := r.head.Load()
		if pos-r.tail.Load() >= r.cap {
			return false
		}
		c := &r.cells[pos&r.mask]
		// A consumer that claimed the slot's previous occupant may not
		// have released it yet (tail moved, seq not); the window is a
		// few instructions, but on one core the consumer needs the
		// scheduler to finish it.
		for int64(c.seq.Load())-int64(pos) < 0 {
			runtime.Gosched()
		}
		c.val = v
		c.seq.Store(pos + 1) // publish after the value write
		r.head.Store(pos + 1)
		return true
	}
	for spins := 0; ; {
		pos := r.head.Load()
		if pos-r.tail.Load() >= r.cap {
			return false
		}
		c := &r.cells[pos&r.mask]
		d := int64(c.seq.Load()) - int64(pos)
		if d == 0 {
			if r.head.CompareAndSwap(pos, pos+1) {
				c.val = v
				c.seq.Store(pos + 1)
				return true
			}
			continue // lost the claim; reload head
		}
		if d < 0 {
			// Capacity says there is room but the slot's previous
			// occupant is still being released; yield to that consumer.
			if spins++; spins > 64 {
				runtime.Gosched()
				spins = 0
			}
			continue
		}
		// d > 0: stale head read (another producer won); reload.
	}
}

// tryPop is the lock-free core of Pop/TryPop; no waiter wakeup.
func (r *Ring[T]) tryPop() (T, bool) {
	var zero T
	for spins := 0; ; {
		pos := r.tail.Load()
		c := &r.cells[pos&r.mask]
		d := int64(c.seq.Load()) - int64(pos+1)
		if d == 0 {
			if r.sc {
				r.tail.Store(pos + 1)
				v := c.val
				c.val = zero
				c.seq.Store(pos + uint64(len(r.cells)))
				return v, true
			}
			if r.tail.CompareAndSwap(pos, pos+1) {
				v := c.val
				c.val = zero
				c.seq.Store(pos + uint64(len(r.cells)))
				return v, true
			}
			continue
		}
		if d < 0 {
			if r.head.Load() == pos {
				return zero, false // truly empty
			}
			// A producer claimed the slot but has not published yet.
			if spins++; spins > 64 {
				runtime.Gosched()
				spins = 0
			}
			continue
		}
		// d > 0: stale tail read (another consumer won); reload.
	}
}

// wakePoppers unparks consumers after a successful push. The waiter
// count is zero in steady state, so this is one atomic load.
func (r *Ring[T]) wakePoppers() {
	if r.popWait.Load() != 0 {
		r.mu.Lock()
		r.notEmpty.Broadcast()
		r.mu.Unlock()
	}
}

// wakePushers unparks producers after a successful pop.
func (r *Ring[T]) wakePushers() {
	if r.pushWait.Load() != 0 {
		r.mu.Lock()
		r.notFull.Broadcast()
		r.mu.Unlock()
	}
}

// wakeAll unparks everyone: Close and context-cancellation wakers.
func (r *Ring[T]) wakeAll() {
	r.mu.Lock()
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
	r.mu.Unlock()
}

// TryPush appends v if space is available and reports success. It never
// blocks (beyond yielding to an in-flight operation on the same slot)
// and always fails on a closed ring.
func (r *Ring[T]) TryPush(v T) bool {
	if !r.tryPush(v) {
		return false
	}
	r.wakePoppers()
	return true
}

// TryPop removes the head element without blocking. It keeps draining
// after Close and fails only when the ring is empty.
func (r *Ring[T]) TryPop() (T, bool) {
	v, ok := r.tryPop()
	if !ok {
		return v, false
	}
	r.wakePushers()
	return v, true
}

// pushSpins/popSpins bound the yielding retry phase before a blocking
// operation parks on its cond var. Small on purpose: under sustained
// load the fast path succeeds immediately, and when it cannot, parking
// beats burning the (possibly only) core.
const blockSpins = 4

// Push blocks until space is available or ctx is done; it returns false
// when the ring closed or the context was cancelled.
func (r *Ring[T]) Push(ctx context.Context, v T) bool {
	if r.TryPush(v) {
		return true
	}
	for i := 0; i < blockSpins; i++ {
		if r.closed.Load() || ctx.Err() != nil {
			return false
		}
		runtime.Gosched()
		if r.TryPush(v) {
			return true
		}
	}
	// Park. Cond has no context support: wake-ups come from pops, from
	// Close, and — so a caller that cancels without ever closing the
	// ring cannot hang — from an AfterFunc waker armed once per park.
	var stop func() bool
	defer func() {
		if stop != nil {
			// Does not wait for an in-flight waker: the callback only
			// broadcasts, which is harmless after we return.
			stop()
		}
	}()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.tryPush(v) {
			if r.popWait.Load() != 0 {
				r.notEmpty.Broadcast()
			}
			return true
		}
		if r.closed.Load() || ctx.Err() != nil {
			return false
		}
		if stop == nil && ctx.Done() != nil {
			stop = context.AfterFunc(ctx, r.wakeAll)
		}
		r.pushWait.Add(1)
		// Final retry after announcing the wait: a pop that completed
		// between our last attempt and the Add has already loaded a
		// zero pushWait and will not broadcast.
		if r.tryPush(v) {
			r.pushWait.Add(-1)
			if r.popWait.Load() != 0 {
				r.notEmpty.Broadcast()
			}
			return true
		}
		if r.closed.Load() || ctx.Err() != nil {
			r.pushWait.Add(-1)
			return false
		}
		r.notFull.Wait()
		r.pushWait.Add(-1)
	}
}

// Pop blocks until an element is available; ok is false when the ring
// is closed and drained, or the context is done. Like Push, a park arms
// a context.AfterFunc waker so cancellation alone unblocks it.
func (r *Ring[T]) Pop(ctx context.Context) (T, bool) {
	if v, ok := r.TryPop(); ok {
		return v, true
	}
	var zero T
	for i := 0; i < blockSpins; i++ {
		if r.closed.Load() || ctx.Err() != nil {
			// Drain-before-fail: Close may have raced a final push.
			return r.TryPop()
		}
		runtime.Gosched()
		if v, ok := r.TryPop(); ok {
			return v, true
		}
	}
	var stop func() bool
	defer func() {
		if stop != nil {
			stop()
		}
	}()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if v, ok := r.tryPop(); ok {
			if r.pushWait.Load() != 0 {
				r.notFull.Broadcast()
			}
			return v, true
		}
		if r.closed.Load() || ctx.Err() != nil {
			return zero, false
		}
		if stop == nil && ctx.Done() != nil {
			stop = context.AfterFunc(ctx, r.wakeAll)
		}
		r.popWait.Add(1)
		if v, ok := r.tryPop(); ok {
			r.popWait.Add(-1)
			if r.pushWait.Load() != 0 {
				r.notFull.Broadcast()
			}
			return v, true
		}
		if r.closed.Load() || ctx.Err() != nil {
			r.popWait.Add(-1)
			return zero, false
		}
		r.notEmpty.Wait()
		r.popWait.Add(-1)
	}
}
