package ring

import (
	"testing"
)

// FuzzIndexMath drives a ring of fuzzer-chosen capacity through a
// fuzzer-chosen push/pop/close sequence and checks every observable
// against a model deque: FIFO order, exact capacity, Len accounting,
// and the post-Close drain contract. This is the single-threaded
// correctness net under the concurrency stress tests — it targets the
// power-of-two masking and lap arithmetic, which are exactly the parts
// a capacity that is not a power of two can get wrong.
func FuzzIndexMath(f *testing.F) {
	f.Add(uint16(1), []byte{0, 1, 0, 1})
	f.Add(uint16(3), []byte{0, 0, 0, 0, 1, 1, 1, 1})
	f.Add(uint16(5), []byte{0, 0, 2, 0, 1, 1, 1})
	f.Add(uint16(8), []byte{0, 0, 0, 1, 0, 0, 1, 1, 1, 1})
	f.Add(uint16(1000), []byte{0, 1, 2, 1, 0})
	f.Fuzz(func(t *testing.T, rawCap uint16, ops []byte) {
		capacity := int(rawCap%1024) + 1
		for _, mode := range []Mode{MPMC, SPSC, SingleProducer, SingleConsumer} {
			r := New[int](capacity, mode)
			var model []int
			next := 0
			closed := false
			for _, op := range ops {
				switch op % 3 {
				case 0: // push
					ok := r.TryPush(next)
					wantOK := !closed && len(model) < capacity
					if ok != wantOK {
						t.Fatalf("cap=%d mode=%d: TryPush(%d) = %v with %d queued, closed=%v",
							capacity, mode, next, ok, len(model), closed)
					}
					if ok {
						model = append(model, next)
					}
					next++
				case 1: // pop
					v, ok := r.TryPop()
					if len(model) == 0 {
						if ok {
							t.Fatalf("cap=%d mode=%d: TryPop succeeded on empty ring (got %d)", capacity, mode, v)
						}
					} else {
						if !ok || v != model[0] {
							t.Fatalf("cap=%d mode=%d: TryPop = (%d, %v), want (%d, true)",
								capacity, mode, v, ok, model[0])
						}
						model = model[1:]
					}
				case 2: // close (idempotent; later pushes must fail, pops drain)
					r.Close()
					closed = true
				}
				if got := r.Len(); got != len(model) {
					t.Fatalf("cap=%d mode=%d: Len = %d, model %d", capacity, mode, got, len(model))
				}
				if r.Closed() != closed {
					t.Fatalf("cap=%d mode=%d: Closed = %v, want %v", capacity, mode, r.Closed(), closed)
				}
			}
			// Whatever the sequence, a full drain must return the model's
			// remainder in order — including after Close.
			for i, want := range model {
				v, ok := r.TryPop()
				if !ok || v != want {
					t.Fatalf("cap=%d mode=%d: drain pop %d = (%d, %v), want (%d, true)", capacity, mode, i, v, ok, want)
				}
			}
			if _, ok := r.TryPop(); ok {
				t.Fatalf("cap=%d mode=%d: ring non-empty after drain", capacity, mode)
			}
		}
	})
}
