package ring

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// stressIters is the repeat count for the concurrency stress tests: the
// interleavings that corrupt a lock-free queue are rare, so each test
// re-runs its scenario many times (the CI runs this package under -race).
const stressIters = 100

func TestExactCapacityNonPowerOfTwo(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 5, 7, 8, 100} {
		r := New[int](capacity, MPMC)
		if r.Cap() != capacity {
			t.Fatalf("Cap() = %d, want %d", r.Cap(), capacity)
		}
		for i := 0; i < capacity; i++ {
			if !r.TryPush(i) {
				t.Fatalf("cap %d: push %d refused below capacity", capacity, i)
			}
		}
		if r.TryPush(capacity) {
			t.Fatalf("cap %d: push succeeded at capacity (backing array is %d)", capacity, len(r.cells))
		}
		if got := r.Len(); got != capacity {
			t.Fatalf("cap %d: Len = %d, want %d", capacity, got, capacity)
		}
		for i := 0; i < capacity; i++ {
			v, ok := r.TryPop()
			if !ok || v != i {
				t.Fatalf("cap %d: pop %d = (%d, %v)", capacity, i, v, ok)
			}
		}
		if _, ok := r.TryPop(); ok {
			t.Fatalf("cap %d: pop succeeded on empty ring", capacity)
		}
	}
}

// A small ring cycled far past its size must preserve FIFO order across
// every wraparound of the position counters' low bits.
func TestWraparoundFIFO(t *testing.T) {
	for _, mode := range []Mode{MPMC, SPSC, SingleConsumer} {
		r := New[uint64](4, mode)
		for i := uint64(0); i < 100000; i++ {
			if !r.TryPush(i) {
				t.Fatalf("mode %d: push %d refused on non-full ring", mode, i)
			}
			v, ok := r.TryPop()
			if !ok || v != i {
				t.Fatalf("mode %d: pop %d = (%d, %v)", mode, i, v, ok)
			}
		}
	}
}

// Pipelined wraparound: keep the ring near-full while cycling it, so the
// head/tail laps overlap instead of alternating.
func TestWraparoundPipelined(t *testing.T) {
	r := New[int](5, MPMC) // backing 8: laps are misaligned with capacity
	next := 0
	for i := 0; i < 50000; i++ {
		for r.TryPush(i) {
			i++
		}
		i--
		v, ok := r.TryPop()
		if !ok || v != next {
			t.Fatalf("pop = (%d, %v), want %d", v, ok, next)
		}
		next++
	}
}

func TestStressSPSC(t *testing.T) {
	const n = 2000
	for iter := 0; iter < stressIters; iter++ {
		r := New[int](8, SPSC)
		done := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				for !r.TryPush(i) {
					runtime.Gosched()
				}
			}
			done <- nil
		}()
		for i := 0; i < n; i++ {
			for {
				v, ok := r.TryPop()
				if !ok {
					runtime.Gosched()
					continue
				}
				if v != i {
					t.Fatalf("iter %d: pop = %d, want %d (FIFO broken)", iter, v, i)
				}
				break
			}
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Multi-producer, single consumer (the PE-input-buffer shape): global
// ordering is not defined, but per-producer FIFO must hold and nothing
// may be lost or duplicated.
func TestStressMPSC(t *testing.T) {
	const producers, perProducer = 4, 500
	for iter := 0; iter < stressIters; iter++ {
		r := New[[2]int](16, SingleConsumer)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					for !r.TryPush([2]int{p, i}) {
						runtime.Gosched()
					}
				}
			}(p)
		}
		var lastSeen [producers]int
		for p := range lastSeen {
			lastSeen[p] = -1
		}
		got := 0
		for got < producers*perProducer {
			v, ok := r.TryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			p, i := v[0], v[1]
			if i != lastSeen[p]+1 {
				t.Fatalf("iter %d: producer %d emitted %d after %d", iter, p, i, lastSeen[p])
			}
			lastSeen[p] = i
			got++
		}
		wg.Wait()
		if _, ok := r.TryPop(); ok {
			t.Fatalf("iter %d: ring non-empty after full drain", iter)
		}
	}
}

func TestStressMPMC(t *testing.T) {
	const producers, consumers, perProducer = 3, 3, 400
	for iter := 0; iter < stressIters; iter++ {
		r := New[int](8, MPMC)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					for !r.TryPush(p*perProducer + i) {
						runtime.Gosched()
					}
				}
			}(p)
		}
		var mu sync.Mutex
		seen := make(map[int]bool, producers*perProducer)
		var cwg sync.WaitGroup
		var remaining = make(chan struct{}, producers*perProducer)
		for i := 0; i < producers*perProducer; i++ {
			remaining <- struct{}{}
		}
		for c := 0; c < consumers; c++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				for {
					select {
					case <-remaining:
					default:
						return
					}
					var v int
					var ok bool
					for !ok {
						if v, ok = r.TryPop(); !ok {
							runtime.Gosched()
						}
					}
					mu.Lock()
					if seen[v] {
						mu.Unlock()
						t.Errorf("iter %d: value %d delivered twice", iter, v)
						return
					}
					seen[v] = true
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		cwg.Wait()
		if len(seen) != producers*perProducer {
			t.Fatalf("iter %d: delivered %d of %d values", iter, len(seen), producers*perProducer)
		}
	}
}

// Concurrent Close against pushers and a popper: every push that
// reported success must be delivered (post-Close drain), and nothing
// may be delivered twice.
func TestStressCloseVsPushPop(t *testing.T) {
	for iter := 0; iter < stressIters; iter++ {
		r := New[int](8, SingleConsumer)
		var accepted sync.Map
		var wg sync.WaitGroup
		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; ; i++ {
					if r.Closed() {
						return
					}
					if r.TryPush(p<<20 | i) {
						accepted.Store(p<<20|i, true)
					}
				}
			}(p)
		}
		popped := make(map[int]bool)
		var pwg sync.WaitGroup
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			empties := 0
			for {
				v, ok := r.TryPop()
				if ok {
					if popped[v] {
						t.Errorf("iter %d: value %d popped twice", iter, v)
						return
					}
					popped[v] = true
					empties = 0
					continue
				}
				// Producers stop pushing once they observe Close, so a
				// post-Close empty pop means the drain is complete.
				if r.Closed() {
					if empties++; empties > 3 {
						return
					}
				}
			}
		}()
		time.Sleep(100 * time.Microsecond)
		r.Close()
		r.Close() // idempotent under race
		wg.Wait()
		pwg.Wait()
		// Drain anything pushed between a producer's last Closed() check
		// and its exit — those pushes reported success too.
		for {
			v, ok := r.TryPop()
			if !ok {
				break
			}
			popped[v] = true
		}
		accepted.Range(func(k, _ any) bool {
			if !popped[k.(int)] {
				t.Fatalf("iter %d: accepted value %d lost at Close", iter, k)
			}
			return true
		})
	}
}

func TestPostCloseContract(t *testing.T) {
	r := New[int](4, MPMC)
	for i := 0; i < 3; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	r.Close()
	r.Close() // idempotent
	if r.TryPush(99) {
		t.Error("TryPush succeeded after Close despite free space")
	}
	if r.Push(context.Background(), 99) {
		t.Error("Push succeeded after Close despite free space")
	}
	for i := 0; i < 3; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("post-Close drain pop %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Error("TryPop on drained closed ring succeeded")
	}
	if _, ok := r.Pop(context.Background()); ok {
		t.Error("Pop on drained closed ring succeeded")
	}
}

// A blocked Pop must return promptly when the context is cancelled even
// if nothing ever closes the ring or pushes into it — the exact hang
// ISSUE 10 fixes (only Push armed the AfterFunc waker before).
func TestBlockedPopReturnsOnCancelWithoutClose(t *testing.T) {
	r := New[int](1, MPMC)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := r.Pop(ctx)
		done <- ok
	}()
	select {
	case ok := <-done:
		t.Fatalf("Pop returned %v before cancel on an empty ring", ok)
	case <-time.After(20 * time.Millisecond):
	}
	cancel() // no Close, no Push: only the waker can unblock the Pop
	select {
	case ok := <-done:
		if ok {
			t.Error("cancelled Pop reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Pop hung after cancel; AfterFunc waker missing")
	}
	// The ring must remain usable after an unrelated cancellation.
	if !r.TryPush(7) {
		t.Fatal("TryPush failed after cancelled Pop")
	}
	if v, ok := r.Pop(context.Background()); !ok || v != 7 {
		t.Fatalf("Pop after recovery = (%d, %v), want (7, true)", v, ok)
	}
}

func TestBlockedPushReturnsOnCancelWithoutClose(t *testing.T) {
	r := New[int](1, MPMC)
	if !r.TryPush(1) {
		t.Fatal("seed push refused")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- r.Push(ctx, 2) }()
	select {
	case ok := <-done:
		t.Fatalf("Push returned %v before cancel on a full ring", ok)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Error("cancelled Push reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Push hung after cancel; AfterFunc waker missing")
	}
}

func TestBlockedOpsReturnOnClose(t *testing.T) {
	r := New[int](1, MPMC)
	r.TryPush(1)
	pushDone := make(chan bool, 1)
	popR := New[int](1, MPMC)
	popDone := make(chan bool, 1)
	go func() { pushDone <- r.Push(context.Background(), 2) }()
	go func() {
		_, ok := popR.Pop(context.Background())
		popDone <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	r.Close()
	popR.Close()
	for name, ch := range map[string]chan bool{"Push": pushDone, "Pop": popDone} {
		select {
		case ok := <-ch:
			if ok {
				t.Errorf("%s on closed ring reported success", name)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("blocked %s hung after Close", name)
		}
	}
}

// A parked Pop must be woken by a TryPush (the waiter-count handshake),
// not only by a blocking Push.
func TestParkedPopWokenByTryPush(t *testing.T) {
	for iter := 0; iter < stressIters; iter++ {
		r := New[int](4, MPMC)
		got := make(chan int, 1)
		go func() {
			v, _ := r.Pop(context.Background())
			got <- v
		}()
		// No sleep: exercise every phase of Pop's spin-then-park window.
		if iter%2 == 1 {
			time.Sleep(time.Millisecond)
		}
		if !r.TryPush(42) {
			t.Fatal("push refused")
		}
		select {
		case v := <-got:
			if v != 42 {
				t.Fatalf("iter %d: got %d", iter, v)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("iter %d: parked Pop never woke after TryPush", iter)
		}
	}
}

func TestParkedPushWokenByTryPop(t *testing.T) {
	for iter := 0; iter < stressIters; iter++ {
		r := New[int](1, MPMC)
		r.TryPush(1)
		done := make(chan bool, 1)
		go func() { done <- r.Push(context.Background(), 2) }()
		if iter%2 == 1 {
			time.Sleep(time.Millisecond)
		}
		for {
			if _, ok := r.TryPop(); ok {
				break
			}
			runtime.Gosched()
		}
		select {
		case ok := <-done:
			if !ok {
				t.Fatalf("iter %d: woken Push failed", iter)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("iter %d: parked Push never woke after TryPop", iter)
		}
		r.TryPop()
	}
}
