package sdo

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDeriveInheritsOriginAndIncrementsHops(t *testing.T) {
	origin := time.Unix(100, 0)
	in := SDO{Stream: 1, Seq: 7, Origin: origin, Bytes: 4, Hops: 2, Payload: "x"}
	out := in.Derive(9, 42, 8)
	if out.Stream != 9 || out.Seq != 42 || out.Bytes != 8 {
		t.Errorf("derived fields wrong: %+v", out)
	}
	if !out.Origin.Equal(origin) {
		t.Errorf("origin not inherited")
	}
	if out.Hops != 3 {
		t.Errorf("hops = %d, want 3", out.Hops)
	}
	if out.Payload != "x" {
		t.Errorf("payload not carried")
	}
	// The input must be unchanged (value semantics).
	if in.Hops != 2 || in.Stream != 1 {
		t.Errorf("Derive mutated its receiver")
	}
}

func TestDeriveChainAccumulatesHops(t *testing.T) {
	f := func(n uint8) bool {
		s := SDO{Origin: time.Unix(1, 0)}
		for i := 0; i < int(n%20); i++ {
			s = s.Derive(StreamID(i), uint64(i), 1)
		}
		return s.Hops == int(n%20)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := SDO{Stream: 3, Seq: 9, Hops: 1, Bytes: 5}
	if got := s.String(); !strings.Contains(got, "stream=3") || !strings.Contains(got, "seq=9") {
		t.Errorf("String = %q", got)
	}
}

func TestSentinels(t *testing.T) {
	if NilPE != -1 || NilNode != -1 {
		t.Errorf("sentinels changed: %d %d", NilPE, NilNode)
	}
}
