// Package sdo defines the Stream Data Object (SDO), the fundamental
// information unit flowing through a distributed stream processing system,
// along with stream identifiers and lightweight timestamp plumbing used for
// end-to-end latency accounting.
//
// The paper (§I) defines a data stream as "a sequence of Stream Data Objects
// (SDOs), the fundamental information unit of the data stream". SDOs here
// carry an origin timestamp (set when the SDO enters the system), a byte
// size, and an opaque payload. The control plane never inspects payloads.
package sdo

import (
	"fmt"
	"time"
)

// StreamID identifies a stream. External input streams of the system are
// numbered s_0 .. s_{S-1} (paper §V-A); internal streams are derived from
// the producing PE.
type StreamID int32

// PEID identifies a processing element p_0 .. p_{P-1}.
type PEID int32

// NodeID identifies a processing node n_0 .. n_{N-1}.
type NodeID int32

// NilPE is the sentinel for "no PE" (e.g. the producer of an external
// stream, or the consumer beyond an egress PE).
const NilPE PEID = -1

// NilNode is the sentinel for "no node".
const NilNode NodeID = -1

// SDO is a stream data object. SDOs are treated as values by the data
// plane: forwarding an SDO to multiple downstream PEs copies the struct
// (cheap — the payload is shared, never mutated).
type SDO struct {
	// Stream is the stream this SDO currently belongs to. An SDO that is
	// transformed by a PE is re-stamped with the PE's output stream.
	Stream StreamID
	// Seq is a per-stream sequence number assigned by the producer.
	Seq uint64
	// Origin is the time the ancestral input SDO entered the system.
	// Derived SDOs inherit the origin of the input SDO that produced them,
	// so egress timestamps measure true end-to-end latency.
	Origin time.Time
	// Bytes is the size of the SDO used for rate accounting. The paper
	// measures rates in bytes (§V-A); the simulator uses 1-byte SDOs so
	// that SDO counts and byte counts coincide, matching the paper's
	// SDO-denominated buffer sizes.
	Bytes int
	// Hops counts the number of PEs that have processed ancestors of this
	// SDO. Used for wasted-work accounting: dropping an SDO with Hops > 0
	// discards partially processed data.
	Hops int
	// Trace is the observability trace ID: nonzero when this SDO's
	// lineage was sampled at ingress (internal/obs). Derived SDOs inherit
	// it; the transport carries it across partition boundaries so a trace
	// can be stitched over the whole DAG. Zero = unsampled, and every
	// instrumentation hook short-circuits on that.
	Trace uint64
	// TraceEnq is the virtual time this SDO entered its current hop's
	// input buffer (observability only; meaningful only when Trace != 0).
	// It is per-hop state: the receiving process re-stamps it on arrival,
	// and it does not travel on the wire.
	TraceEnq float64
	// Key is the partition key for replica routing: SDOs with equal keys
	// are routed to the same replica of an elastic PE, so stateful PEs keep
	// per-key affinity across fan-out. Zero means unkeyed; unkeyed SDOs are
	// spread per-SDO by (Stream, Seq). Key is in-process routing state —
	// the sender decides the replica, so it does not travel on the wire.
	Key uint64
	// Payload is opaque application data. The control plane and both
	// substrates never inspect it.
	Payload any
}

// Derive returns an output SDO produced from s by a PE writing to stream
// out: the origin is inherited, the hop count incremented, and the sequence
// number replaced by seq. The partition key is inherited too, so a keyed
// lineage keeps replica affinity across every hop of the DAG.
func (s SDO) Derive(out StreamID, seq uint64, bytes int) SDO {
	return SDO{
		Stream:  out,
		Seq:     seq,
		Origin:  s.Origin,
		Bytes:   bytes,
		Hops:    s.Hops + 1,
		Trace:   s.Trace,
		Key:     s.Key,
		Payload: s.Payload,
	}
}

// String implements fmt.Stringer for debugging.
func (s SDO) String() string {
	return fmt.Sprintf("sdo{stream=%d seq=%d hops=%d bytes=%d}", s.Stream, s.Seq, s.Hops, s.Bytes)
}
