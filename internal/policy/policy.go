// Package policy enumerates the three flow-control disciplines compared in
// the paper's evaluation (§VI) and documents their forwarding semantics.
// The mechanics are implemented in the two substrates (internal/streamsim
// and internal/spc); this package is the shared vocabulary.
package policy

import "fmt"

// Policy selects the forwarding and CPU-control discipline.
type Policy int

// The three systems of §VI, plus ablation variants.
const (
	// ACES is System 1: LQR flow control advertising r_max upstream every
	// Δt, token-bucket CPU control with occupancy-proportional sharing,
	// and the max-flow forwarding rule (send when the fastest downstream
	// has room; slower branches drop on overflow).
	ACES Policy = iota + 1
	// UDP is System 2: fire-and-forget. Each PE forwards SDOs regardless
	// of downstream buffer state; a full buffer drops the arriving SDO.
	// CPU follows the static targets with work-conserving redistribution.
	UDP
	// LockStep is System 3: min-flow, TCP-like reliable delivery. A PE
	// forwards only when every downstream buffer has room, otherwise it
	// sleeps and its CPU is redistributed on the node.
	LockStep
	// ACESMinFlow is an ablation: ACES CPU control and LQR feedback, but
	// Eq. 8 computed with min instead of max — isolates the contribution
	// of the max-flow rule.
	ACESMinFlow
	// ACESStrictCPU is an ablation: ACES flow control but strict
	// (non-redistributing, bucket-less) CPU enforcement — isolates the
	// contribution of token-bucket CPU control.
	ACESStrictCPU
	// LoadShed is the §II related-work comparator [19] (Aurora-style load
	// shedding): UDP forwarding and strict CPU enforcement, but receivers
	// shed arriving SDOs once their buffer crosses a threshold (80% of B),
	// keeping headroom instead of drop-tail at the brim.
	LoadShed
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case ACES:
		return "aces"
	case UDP:
		return "udp"
	case LockStep:
		return "lockstep"
	case ACESMinFlow:
		return "aces-minflow"
	case ACESStrictCPU:
		return "aces-strictcpu"
	case LoadShed:
		return "loadshed"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Parse converts a name produced by String back into a Policy.
func Parse(s string) (Policy, error) {
	switch s {
	case "aces":
		return ACES, nil
	case "udp":
		return UDP, nil
	case "lockstep":
		return LockStep, nil
	case "aces-minflow":
		return ACESMinFlow, nil
	case "aces-strictcpu":
		return ACESStrictCPU, nil
	case "loadshed":
		return LoadShed, nil
	default:
		return 0, fmt.Errorf("policy: unknown policy %q", s)
	}
}

// UsesFeedback reports whether the policy runs the tier-2 LQR feedback
// loop (the ACES family does; UDP and Lock-Step do not).
func (p Policy) UsesFeedback() bool {
	return p == ACES || p == ACESMinFlow || p == ACESStrictCPU
}

// Blocking reports whether senders block on full downstream buffers
// (Lock-Step) instead of dropping.
func (p Policy) Blocking() bool { return p == LockStep }

// All returns the three headline systems in presentation order.
func All() []Policy { return []Policy{ACES, UDP, LockStep} }
