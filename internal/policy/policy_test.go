package policy

import "testing"

func TestStringParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{ACES, UDP, LockStep, ACESMinFlow, ACESStrictCPU} {
		got, err := Parse(p.String())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got != p {
			t.Errorf("round trip %v → %v", p, got)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Errorf("unknown name accepted")
	}
	if Policy(99).String() == "" {
		t.Errorf("unknown policy String empty")
	}
}

func TestClassifiers(t *testing.T) {
	if !ACES.UsesFeedback() || !ACESMinFlow.UsesFeedback() || !ACESStrictCPU.UsesFeedback() {
		t.Errorf("ACES family must use feedback")
	}
	if UDP.UsesFeedback() || LockStep.UsesFeedback() {
		t.Errorf("baselines must not use feedback")
	}
	if !LockStep.Blocking() {
		t.Errorf("LockStep must block")
	}
	if ACES.Blocking() || UDP.Blocking() {
		t.Errorf("only LockStep blocks")
	}
	if got := All(); len(got) != 3 || got[0] != ACES || got[1] != UDP || got[2] != LockStep {
		t.Errorf("All() = %v", got)
	}
}
