package hier

import (
	"math"
	"testing"
	"time"

	"aces/internal/graph"
	"aces/internal/optimize"
	"aces/internal/sdo"
	"aces/internal/workload"
)

func genTopo(t *testing.T, pes, nodes int, seed int64) *graph.Topology {
	t.Helper()
	topo, err := graph.Generate(graph.DefaultGenConfig(pes, nodes, seed))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// Two identical partition runs — and a partition of an identically
// regenerated topology — must agree bit-for-bit. The retarget loop
// computes the decomposition once and reuses it; determinism is what
// makes that reuse (and cross-process agreement) sound.
func TestPartitionDeterministic(t *testing.T) {
	cfg := PartitionConfig{Regions: 6}
	a, err := Partition(genTopo(t, 400, 40, 11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(genTopo(t, 400, 40, 11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.RegionOf) != len(b.RegionOf) {
		t.Fatalf("length mismatch: %d vs %d", len(a.RegionOf), len(b.RegionOf))
	}
	for j := range a.RegionOf {
		if a.RegionOf[j] != b.RegionOf[j] {
			t.Fatalf("PE %d region differs across runs: %d vs %d", j, a.RegionOf[j], b.RegionOf[j])
		}
	}
	if a.CutWeight != b.CutWeight {
		t.Fatalf("cut weight differs: %g vs %g", a.CutWeight, b.CutWeight)
	}
}

// Every PE lands in exactly one region, regions respect the PE budget,
// and regions are node-granular (no node split across regions).
func TestPartitionCoversBudgetNodeGranular(t *testing.T) {
	topo := genTopo(t, 500, 50, 3)
	cfg := PartitionConfig{Regions: 8}
	d, err := Partition(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxRegionPEs == 0 {
		// fillDefaults ran on a copy; recompute the derived budget.
		even := (500 + 8 - 1) / 8
		cfg.MaxRegionPEs = even + (even*3+9)/10
	}
	seen := make([]int, topo.NumPEs())
	for _, reg := range d.Regions {
		if len(reg.PEs) == 0 {
			t.Errorf("region %d is empty", reg.ID)
		}
		if len(reg.PEs) > cfg.MaxRegionPEs {
			t.Errorf("region %d holds %d PEs, budget %d", reg.ID, len(reg.PEs), cfg.MaxRegionPEs)
		}
		for _, pe := range reg.PEs {
			seen[pe]++
			if d.RegionOf[pe] != reg.ID {
				t.Errorf("PE %d listed in region %d but RegionOf says %d", pe, reg.ID, d.RegionOf[pe])
			}
		}
	}
	for j, n := range seen {
		if n != 1 {
			t.Errorf("PE %d assigned %d times (orphaned or duplicated)", j, n)
		}
	}
	for j := range topo.PEs {
		if d.RegionOf[j] != d.NodeRegion[topo.PEs[j].Node] {
			t.Errorf("PE %d in region %d but its node %d belongs to region %d",
				j, d.RegionOf[j], topo.PEs[j].Node, d.NodeRegion[topo.PEs[j].Node])
		}
	}
}

// The weighted-attachment partitioner must cut no more stream volume
// than the weight-blind BFS baseline on E12/E13-style topologies.
func TestPartitionCutNoWorseThanBFS(t *testing.T) {
	cases := []struct {
		pes, nodes, regions int
		seed                int64
	}{
		{500, 50, 8, 1},   // E12 scale
		{1000, 100, 8, 2}, // E13 low end
		{400, 40, 4, 7},
	}
	for _, tc := range cases {
		topo := genTopo(t, tc.pes, tc.nodes, tc.seed)
		smart, err := Partition(topo, PartitionConfig{Regions: tc.regions})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := PartitionBFS(topo, tc.regions)
		if err != nil {
			t.Fatal(err)
		}
		if smart.CutWeight > naive.CutWeight*1.0001 {
			t.Errorf("pes=%d seed=%d: Partition cut %.3f (%.1f%%) worse than BFS cut %.3f (%.1f%%)",
				tc.pes, tc.seed, smart.CutWeight, 100*smart.CutFraction(),
				naive.CutWeight, 100*naive.CutFraction())
		}
	}
}

// Hand-solvable oracle: a 4-stage chain with uniform costs spanning two
// nodes (two per node), linear utility, ample source. The monolithic
// optimum equalizes stage rates; the cut edge carries everything the
// downstream region can use, so after a couple of price sweeps the
// hierarchical solve must land within a few percent of the monolithic
// objective.
func TestHierTwoRegionChainMatchesMonolithic(t *testing.T) {
	topo := graph.New(2, 50)
	costs := []float64{0.004, 0.004, 0.004, 0.004}
	prev := sdo.NilPE
	for i, tc := range costs {
		w := 0.0
		if i == len(costs)-1 {
			w = 1
		}
		id := topo.AddPE(graph.PE{
			Service: workload.ServiceParams{T0: tc, T1: tc, Rho: 0, MeanMult: 1},
			Node:    sdo.NodeID(i / 2),
			Weight:  w,
		})
		if prev != sdo.NilPE {
			if err := topo.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := topo.AddSource(graph.Source{Stream: 1, Target: 0, Rate: 1e6, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
		t.Fatal(err)
	}

	d, err := Partition(topo, PartitionConfig{Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regions) != 2 {
		t.Fatalf("expected 2 regions, got %d", len(d.Regions))
	}

	mono, err := optimize.Solve(topo, optimize.Config{Utility: optimize.LinearUtility{}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Solve(topo, d, Config{
		Optimize: optimize.Config{Utility: optimize.LinearUtility{}, MaxIters: 1500},
		Sweeps:   6,
		Epsilon:  1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Objective < 0.95*mono.Objective {
		t.Errorf("hier objective %.4f < 95%% of monolithic %.4f", h.Objective, mono.Objective)
	}
	if h.WeightedThroughput < 0.95*mono.WeightedThroughput {
		t.Errorf("hier wt %.2f < 95%% of monolithic wt %.2f", h.WeightedThroughput, mono.WeightedThroughput)
	}
	// The assembled allocation must stay node-feasible.
	nodeSum := make([]float64, topo.NumNodes)
	for j, c := range h.CPU {
		if c < -1e-9 {
			t.Fatalf("negative allocation for PE %d: %g", j, c)
		}
		nodeSum[topo.PEs[j].Node] += c
	}
	for n, s := range nodeSum {
		if s > 1+1e-6 {
			t.Errorf("node %d over-allocated: %.6f", n, s)
		}
	}
}

// On a generated E12-scale topology the hierarchical solve must recover
// ≥90% of the monolithic objective (the ISSUE bar is 95% at E13 scale
// with tuned sweep counts; here we hold a slightly softer floor on an
// arbitrary small topology with few sweeps).
func TestHierGeneratedNearMonolithic(t *testing.T) {
	topo := genTopo(t, 200, 20, 5)
	d, err := Partition(topo, PartitionConfig{Regions: 4})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := optimize.Solve(topo, optimize.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Solve(topo, d, Config{
		Optimize: optimize.Config{MaxIters: 1200},
		Sweeps:   5,
		Epsilon:  1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Objective < 0.90*mono.Objective {
		t.Errorf("hier objective %.4f < 90%% of monolithic %.4f (%.1f%%)",
			h.Objective, mono.Objective, 100*h.Objective/mono.Objective)
	}
	nodeSum := make([]float64, topo.NumNodes)
	for j, c := range h.CPU {
		nodeSum[topo.PEs[j].Node] += c
	}
	for n, s := range nodeSum {
		if s > 1+1e-6 {
			t.Errorf("node %d over-allocated: %.6f", n, s)
		}
	}
	if len(h.Regions) != len(d.Regions) {
		t.Fatalf("stats for %d regions, want %d", len(h.Regions), len(d.Regions))
	}
	for _, rs := range h.Regions {
		if rs.Iterations <= 0 {
			t.Errorf("region %d reports no iterations", rs.Region)
		}
	}
}

// Elastic hierarchical solve: replica matrices come back full-topology
// shaped, slots on nodes outside the PE's region stay zero, and the
// hot PE's second in-region slot activates under overload.
func TestHierElasticShape(t *testing.T) {
	// Two independent chains, one per node pair, so two regions split
	// them cleanly. Chain A's middle PE is elastic with both slots inside
	// region A (nodes 0,1); one phantom slot lands on node 2 (region B)
	// and must remain zero.
	topo := graph.New(4, 50)
	svc := func(c float64) workload.ServiceParams {
		return workload.ServiceParams{T0: c, T1: c, Rho: 0, MeanMult: 1}
	}
	a0 := topo.AddPE(graph.PE{Service: svc(0.0001), Node: 0})
	a1 := topo.AddPE(graph.PE{Service: svc(0.004), Node: 0,
		MaxReplicas: 3, ReplicaNodes: []sdo.NodeID{1, 2}})
	a2 := topo.AddPE(graph.PE{Service: svc(0.00005), Node: 1, Weight: 1})
	b0 := topo.AddPE(graph.PE{Service: svc(0.0001), Node: 2})
	b1 := topo.AddPE(graph.PE{Service: svc(0.0005), Node: 3, Weight: 1})
	for _, e := range [][2]sdo.PEID{{a0, a1}, {a1, a2}, {b0, b1}} {
		if err := topo.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for i, tgt := range []sdo.PEID{a0, b0} {
		if err := topo.AddSource(graph.Source{Stream: sdo.StreamID(i + 1), Target: tgt, Rate: 400, Burst: graph.BurstSpec{Kind: graph.BurstDeterministic}}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := Partition(topo, PartitionConfig{Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regions) != 2 {
		t.Fatalf("expected 2 regions, got %d", len(d.Regions))
	}
	if d.NodeRegion[0] != d.NodeRegion[1] || d.NodeRegion[2] != d.NodeRegion[3] || d.NodeRegion[0] == d.NodeRegion[2] {
		t.Fatalf("unexpected node split: %v", d.NodeRegion)
	}

	h, err := Solve(topo, d, Config{
		Optimize: optimize.Config{MaxIters: 1500},
		Sweeps:   3,
		Elastic:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Replica) != topo.NumPEs() {
		t.Fatalf("replica matrix has %d rows, want %d", len(h.Replica), topo.NumPEs())
	}
	for j := 0; j < topo.NumPEs(); j++ {
		if got, want := len(h.Replica[j]), topo.Replicas(sdo.PEID(j)); got != want {
			t.Fatalf("PE %d: %d slots, want %d", j, got, want)
		}
	}
	// a1's slots sit on nodes 0,1,2 — slot 2 (node 2) is outside region A.
	if h.Replica[a1][2] != 0 {
		t.Errorf("out-of-region replica slot carries %g CPU, want 0", h.Replica[a1][2])
	}
	// 400/s through a 4 ms PE needs 1.6 CPU: one node cannot carry it, so
	// the in-region second slot must activate.
	if h.Replica[a1][1] < 0.05 {
		t.Errorf("in-region second slot idle (%.4f) under overload", h.Replica[a1][1])
	}
	if h.WeightedThroughput < 300 {
		t.Errorf("elastic hier wt %.1f, want ≥300 (scale-out should lift chain A past one node)", h.WeightedThroughput)
	}
}

// A microscopic deadline still yields deployable targets: sweep 1 runs
// with truncated regional solves instead of erroring out.
func TestHierDeadlineTruncates(t *testing.T) {
	topo := genTopo(t, 200, 20, 9)
	d, err := Partition(topo, PartitionConfig{Regions: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Solve(topo, d, Config{
		Optimize: optimize.Config{MaxIters: 2000},
		Sweeps:   10,
		Deadline: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h.DeadlineExceeded {
		t.Errorf("1µs deadline not reported as exceeded")
	}
	if h.Sweeps != 1 {
		t.Errorf("ran %d sweeps under a 1µs deadline, want 1", h.Sweeps)
	}
	if len(h.CPU) != topo.NumPEs() {
		t.Fatalf("no allocation returned")
	}
	nodeSum := make([]float64, topo.NumNodes)
	for j, c := range h.CPU {
		if c < -1e-9 || math.IsNaN(c) {
			t.Fatalf("bad allocation for PE %d: %g", j, c)
		}
		nodeSum[topo.PEs[j].Node] += c
	}
	for n, s := range nodeSum {
		if s > 1+1e-6 {
			t.Errorf("node %d over-allocated: %.6f", n, s)
		}
	}
}
