// Hierarchical tier-1 solve: one warm-started regional solve per
// partition cell, coordinated by a thin root through priced cut edges.
//
// Each region solves the paper's tier-1 problem on its own sub-topology.
// Flow arriving over a cut edge appears as a virtual source feeding a
// zero-cost relay PE (so join semantics and the no-source-on-internal-PE
// invariant survive the cut); flow leaving over a cut edge earns the
// producing PE a pseudo-weight equal to the price the consuming region
// currently puts on that stream. The root runs dual-ascent sweeps: all
// regions re-solve in parallel against the latest boundary rates and
// prices (a Jacobi iteration), then the root re-prices every cut edge at
// the consuming region's measured marginal utility and reallocates the
// per-region iteration budgets toward the regions reporting the highest
// marginal return on CPU, until the assembled global objective moves
// less than ε or the epoch deadline expires. Node capacity itself is
// physical and never migrates between regions — what the root trades is
// solver attention and the prices that steer each region's output. A
// final short monolithic pass warm-started from the assembled solution
// (coarse-to-fine) closes the residual dual gap within the same
// deadline.
package hier

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"aces/internal/graph"
	"aces/internal/optimize"
	"aces/internal/sdo"
	"aces/internal/workload"
)

// relayCost is the per-SDO CPU cost of a boundary relay PE. Relays live
// alone on virtual nodes, so even a microscopic allocation yields
// capacity orders of magnitude above any real stream rate — the relay
// never becomes the binding constraint it is only there to model around.
const relayCost = 1e-12

// minSourceRate floors a relay's virtual source: AddSource rejects
// non-positive rates, and a zero-rate boundary still has to exist so the
// next sweep can raise it.
const minSourceRate = 1e-9

// Config tunes the hierarchical solve.
type Config struct {
	// Optimize is the base per-region solver configuration. MaxIters is
	// the per-region, per-sweep iteration budget BEFORE the root's
	// reallocation (default 1200 — an adjoint-gradient iteration costs a
	// handful of propagations instead of p, so the budget buys real
	// convergence, not wall time); WarmStart/WarmStartReplica, when
	// shaped for the FULL topology, seed every region from the incumbent.
	Optimize optimize.Config
	// Sweeps bounds the dual-ascent iterations (default 3).
	Sweeps int
	// Epsilon stops the sweeps when the relative change of the assembled
	// global objective falls below it (default 0.01).
	Epsilon float64
	// Deadline bounds the whole epoch's solve wall time (0 = unbounded).
	// The solve self-paces inside it: sweeps get 3/4 of the budget (the
	// last quarter is reserved for the polish), regions inherit the
	// remaining sweep budget, and a sweep predicted not to fit is
	// skipped outright — so a hierarchical solve degrades to fewer
	// sweeps rather than overrunning the epoch.
	Deadline time.Duration
	// Elastic switches the regional solves to SolveElastic. Replica
	// slots placed outside their PE's region are held at zero — a region
	// only manages capacity it owns.
	Elastic bool
	// PriceStep is the EMA factor folding freshly measured marginal
	// utilities into cut-edge prices (default 0.5).
	PriceStep float64
	// RefineIters bounds the coarse-to-fine polish: after the sweeps, a
	// short monolithic solve warm-started from the assembled regional
	// solution closes the structural dual gap of the decomposition
	// (regional solves alone plateau a few percent below monolithic).
	// Default 400 (cheap under the analytic gradient); negative
	// disables. The polish is skipped under elastic
	// solves (a global pass would re-open replica slots outside their
	// PE's region) and when the deadline is already spent.
	RefineIters int
	// Workers caps concurrent regional solves per sweep (default
	// GOMAXPROCS).
	Workers int
}

func (c *Config) fillDefaults() {
	if c.Optimize.MaxIters <= 0 {
		// Sized for the analytic gradient engine: the same budget under
		// finite differences would cost ~p propagations per iteration and
		// blow any realistic epoch deadline (the self-pacing would skip
		// most sweeps); callers pinning GradientFiniteDiff should size
		// MaxIters down themselves.
		c.Optimize.MaxIters = 1200
	}
	if c.Sweeps <= 0 {
		c.Sweeps = 3
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.01
	}
	if c.PriceStep <= 0 || c.PriceStep > 1 {
		c.PriceStep = 0.5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RefineIters == 0 {
		c.RefineIters = 400
	}
}

// RegionStat reports one region's share of the last hierarchical solve.
type RegionStat struct {
	Region int `json:"region"`
	// PEs counts the region's real PEs; Relays the boundary relay PEs
	// synthesized for its cut in-edges.
	PEs    int `json:"pes"`
	Relays int `json:"relays"`
	// SolveMillis and Iterations accumulate across sweeps.
	SolveMillis float64 `json:"solve_ms"`
	Iterations  int     `json:"iters"`
	// DeadlineExceeded is set when any sweep's regional solve was cut
	// short by the epoch deadline.
	DeadlineExceeded bool `json:"deadline_exceeded,omitempty"`
	// MarginalCPU is the region's reported marginal utility of uniformly
	// scaled CPU at its final allocation (the root's budget signal).
	MarginalCPU float64 `json:"marginal_cpu"`
}

// Allocation is the assembled output of a hierarchical solve, shaped
// like the monolithic optimize.Allocation over the full topology.
type Allocation struct {
	// CPU[j] is the logical per-PE target; Replica the per-slot matrix
	// (full-topology shape, nil unless Config.Elastic).
	CPU     []float64
	Replica [][]float64
	// RIn/ROut are the fluid rates of the assembled solution evaluated
	// on the FULL topology — an honest global figure, not a sum of
	// regional self-assessments.
	RIn, ROut []float64
	// Objective is Σ w_j·U(r̄_out,j) with the ORIGINAL weights;
	// WeightedThroughput is Σ w_j·r̄_out,j.
	Objective          float64
	WeightedThroughput float64
	// Sweeps actually run; Converged whether the ε-test stopped them.
	Sweeps    int
	Converged bool
	// SolveMillis is the wall time of the whole hierarchical solve;
	// DeadlineExceeded whether Config.Deadline cut it short.
	SolveMillis      float64
	DeadlineExceeded bool
	// Regions holds per-region solve stats, indexed by region ID.
	Regions []RegionStat
}

// region is the root's bookkeeping for one partition cell.
type region struct {
	id  int
	sub *graph.Topology
	// local[g] maps a global PE ID to its local index (-1 elsewhere);
	// global[l] the inverse for real PEs (relays have no global PE).
	local  []int
	global []sdo.PEID
	// baseWeight[l] is the original weight of local PE l; prices are
	// added on top each sweep.
	baseWeight []float64
	// relays[i] describes the relay PE for external upstream ups[i]: its
	// local PE index, its source slot in sub.Sources, and the consuming
	// local PEs it feeds.
	relayLocal []int
	relaySrc   []int
	relayUp    []sdo.PEID
	relayPrice []float64
	// repSlots[l] lists, for elastic solves, the GLOBAL replica slot
	// index behind each local slot of real PE l (nil when not elastic).
	repSlots [][]int

	warm    []float64
	warmRep [][]float64
	// iterBudget is the root-assigned MaxIters for the next sweep.
	iterBudget int

	stat RegionStat
}

// Solve runs the hierarchical tier-1 solve for a validated topology and
// decomposition. The decomposition is read-only and reusable across
// epochs (the graph shape does not change at runtime); per-epoch state
// (prices, warm starts) lives inside the call.
func Solve(t *graph.Topology, d *Decomposition, cfg Config) (*Allocation, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("hier: %w", err)
	}
	if len(d.RegionOf) != t.NumPEs() {
		return nil, fmt.Errorf("hier: decomposition covers %d PEs, topology has %d", len(d.RegionOf), t.NumPEs())
	}
	cfg.fillDefaults()
	start := time.Now()
	// The sweep phase gets 3/4 of the epoch budget; the last quarter is
	// reserved for the coarse-to-fine polish (which is what the reserve
	// exists for — see below). Without the split, sweeps eat the whole
	// budget at scale and the polish never runs.
	polish := !cfg.Elastic && cfg.RefineIters > 0
	sweepBudget := cfg.Deadline
	if cfg.Deadline > 0 && polish {
		sweepBudget = cfg.Deadline * 3 / 4
	}
	budgetLeft := func(budget time.Duration) time.Duration {
		if cfg.Deadline <= 0 {
			return 0 // unbounded sentinel
		}
		left := budget - time.Since(start)
		if left < time.Millisecond {
			left = time.Millisecond
		}
		return left
	}

	// Initial incumbent: the caller's warm start, or the same
	// demand-proportional interior point the monolithic solver cold-starts
	// from. Its propagation seeds the boundary rates of sweep 1.
	p := t.NumPEs()
	c0 := make([]float64, p)
	if len(cfg.Optimize.WarmStart) == p {
		copy(c0, cfg.Optimize.WarmStart)
		for j := range c0 {
			if c0[j] < 0 || math.IsNaN(c0[j]) {
				c0[j] = 0
			}
		}
	} else {
		demand, err := t.UnitDemand()
		if err != nil {
			return nil, err
		}
		headroom := cfg.Optimize.Headroom
		if headroom <= 0 || headroom > 1 {
			headroom = 1
		}
		nodeSum := make([]float64, t.NumNodes)
		for j := 0; j < p; j++ {
			c0[j] = demand[j]*t.PEs[j].Service.EffectiveCost() + 1e-6
			nodeSum[t.PEs[j].Node] += c0[j]
		}
		for j := 0; j < p; j++ {
			c0[j] *= 0.95 * headroom / nodeSum[t.PEs[j].Node]
		}
	}
	_, rout0, err := optimize.Propagate(t, c0)
	if err != nil {
		return nil, err
	}

	// Unsaturated marginal value of one unit of input at each PE
	// (reverse-topological): the optimistic initial price of a cut edge.
	value, err := inputValues(t)
	if err != nil {
		return nil, err
	}

	regions, err := buildRegions(t, d, cfg, c0, rout0, value)
	if err != nil {
		return nil, err
	}

	// boundaryRate[u] is the latest solved output rate of PE u, consumed
	// by the relays of downstream regions on the next sweep.
	boundaryRate := append([]float64(nil), rout0...)

	util := cfg.Optimize.Utility
	if util == nil {
		util = optimize.LogUtility{Scale: 1}
	}

	best := &Allocation{Regions: make([]RegionStat, len(regions))}
	prevObj := math.Inf(-1)
	var warnedErr error
	var lastSweep time.Duration
	for sweep := 1; sweep <= cfg.Sweeps; sweep++ {
		// Sweep 1 always runs — the regional solves inherit the (already
		// expired) remaining budget and truncate internally, so even a
		// blown deadline yields deployable targets instead of an error.
		// Later sweeps are skipped PREDICTIVELY: a Jacobi round that
		// cannot finish leaves half the regions re-solved against stale
		// prices, so the budget is better spent on the polish.
		if sweep > 1 && cfg.Deadline > 0 &&
			time.Since(start)+lastSweep*105/100 >= sweepBudget {
			break
		}
		sweepStart := time.Now()
		// Root phase: refresh every region's boundary inputs and priced
		// weights from the latest global state (sequential — the subs are
		// shared with the solver goroutines only inside the barrier).
		for _, r := range regions {
			for i, lu := range r.relayLocal {
				r.sub.Sources[r.relaySrc[i]].Rate = math.Max(boundaryRate[r.relayUp[i]], minSourceRate)
				_ = lu
			}
			for l, g := range r.global {
				r.sub.PEs[l].Weight = r.baseWeight[l] + cutPrice(regions, g, r.id)
			}
		}

		// Parallel phase: independent warm-started regional solves.
		sem := make(chan struct{}, cfg.Workers)
		var wg sync.WaitGroup
		errs := make([]error, len(regions))
		for idx, r := range regions {
			wg.Add(1)
			sem <- struct{}{}
			go func(idx int, r *region) {
				defer wg.Done()
				defer func() { <-sem }()
				oc := cfg.Optimize
				oc.MaxIters = r.iterBudget
				oc.Deadline = budgetLeft(sweepBudget)
				if cfg.Elastic {
					oc.WarmStart = nil
					oc.WarmStartReplica = r.warmRep
					ea, err := optimize.SolveElastic(r.sub, oc)
					if err != nil {
						errs[idx] = err
						return
					}
					r.warmRep = ea.Replica
					r.warm = ea.CPU
					r.stat.SolveMillis += ea.SolveMillis
					r.stat.Iterations += ea.Iterations
					r.stat.DeadlineExceeded = r.stat.DeadlineExceeded || ea.DeadlineExceeded
					return
				}
				oc.WarmStart = r.warm
				oc.WarmStartReplica = nil
				alloc, err := optimize.Solve(r.sub, oc)
				if err != nil {
					errs[idx] = err
					return
				}
				r.warm = alloc.CPU
				r.stat.SolveMillis += alloc.SolveMillis
				r.stat.Iterations += alloc.Iterations
				r.stat.DeadlineExceeded = r.stat.DeadlineExceeded || alloc.DeadlineExceeded
			}(idx, r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				warnedErr = err
			}
		}
		if warnedErr != nil && best.CPU == nil {
			return nil, fmt.Errorf("hier: regional solve: %w", warnedErr)
		}
		if warnedErr != nil {
			break // keep the last good assembled solution
		}

		// Root phase: publish boundary rates, re-price cut edges, report
		// marginal CPU, reassemble and test convergence.
		for _, r := range regions {
			_, subOut, err := regionRates(r, cfg.Elastic)
			if err != nil {
				return nil, err
			}
			for l, g := range r.global {
				boundaryRate[g] = subOut[l]
			}
			reprice(r, util, cfg.PriceStep, cfg.Elastic)
			r.stat.MarginalCPU = marginalCPU(r, util, cfg.Elastic)
		}
		reallocateBudgets(regions, cfg.Optimize.MaxIters)

		obj, asm, err := assembleGlobal(t, d, regions, util, cfg.Elastic)
		if err != nil {
			return nil, err
		}
		asm.Sweeps = sweep
		lastSweep = time.Since(sweepStart)
		if best.CPU == nil || obj > best.Objective {
			keepStats := best.Regions
			*best = *asm
			best.Regions = keepStats
		}
		best.Sweeps = sweep
		if prevObj > math.Inf(-1) && math.Abs(obj-prevObj) <= cfg.Epsilon*(math.Abs(obj)+1e-12) {
			best.Converged = true
			break
		}
		prevObj = obj
	}
	if best.CPU == nil {
		return nil, fmt.Errorf("hier: no sweep completed within the deadline")
	}
	// DeadlineExceeded reflects the SWEEP phase only: the polish below is
	// opportunistic by design, so spending leftover budget on it is
	// normal operation, not truncation.
	if cfg.Deadline > 0 && time.Since(start) >= cfg.Deadline {
		best.DeadlineExceeded = true
	}

	// Coarse-to-fine polish: the regional decomposition lands a few
	// percent short of the monolithic optimum (a structural dual gap —
	// prices cannot express every cross-region trade). A short monolithic
	// solve warm-started from the assembled solution recovers most of it
	// at a fraction of a cold solve's cost. It gets at most a quarter of
	// the epoch budget: it is a refinement, not the main solve. Skipped
	// for elastic solves: a global pass would re-open replica slots
	// outside their PE's region, which the decomposition deliberately
	// holds at zero.
	if polish && !best.DeadlineExceeded {
		oc := cfg.Optimize
		oc.MaxIters = cfg.RefineIters
		oc.WarmStart = best.CPU
		oc.WarmStartReplica = nil
		oc.Deadline = budgetLeft(cfg.Deadline)
		if cfg.Deadline > 0 && oc.Deadline > cfg.Deadline/4 {
			oc.Deadline = cfg.Deadline / 4
		}
		if polished, err := optimize.Solve(t, oc); err == nil && polished.Objective > best.Objective {
			best.CPU = polished.CPU
			best.RIn = polished.RIn
			best.ROut = polished.ROut
			best.Objective = polished.Objective
			best.WeightedThroughput = polished.WeightedThroughput
		}
	}

	for i, r := range regions {
		best.Regions[i] = r.stat
	}
	best.SolveMillis = float64(time.Since(start)) / float64(time.Millisecond)
	return best, nil
}

// inputValues computes the unsaturated marginal utility of one unit of
// input at each PE: value[j] = m_j · (w_j + Σ_downstream value[d]) in
// reverse topological order (copy semantics deliver the full output to
// every downstream). This is exact when nothing saturates and serves as
// the optimistic initial cut-edge price.
func inputValues(t *graph.Topology) ([]float64, error) {
	order, err := t.TopoOrder()
	if err != nil {
		return nil, err
	}
	value := make([]float64, t.NumPEs())
	for i := len(order) - 1; i >= 0; i-- {
		j := order[i]
		m := t.PEs[j].Service.MeanMult
		if m <= 0 {
			m = 1
		}
		sum := t.PEs[j].Weight
		for _, dn := range t.Down(j) {
			sum += value[dn]
		}
		value[j] = m * sum
	}
	return value, nil
}

// cutPrice sums the prices every OTHER region currently puts on streams
// produced by global PE g — the pseudo-weight its own region optimizes
// under.
func cutPrice(regions []*region, g sdo.PEID, home int) float64 {
	sum := 0.0
	for _, r := range regions {
		if r.id == home {
			continue
		}
		for i, u := range r.relayUp {
			if u == g {
				sum += r.relayPrice[i]
			}
		}
	}
	return sum
}

// regionRates propagates a region's current solution on its sub-topology.
func regionRates(r *region, elastic bool) (rin, rout []float64, err error) {
	if elastic {
		return optimize.PropagateElastic(r.sub, r.warmRep)
	}
	return optimize.Propagate(r.sub, r.warm)
}

// regionObjective evaluates Σ w·U(rout) on the region's sub-topology at
// its current solution and CURRENT priced weights.
func regionObjective(r *region, util optimize.Utility, elastic bool) (float64, error) {
	_, rout, err := regionRates(r, elastic)
	if err != nil {
		return 0, err
	}
	obj := 0.0
	for l := range r.sub.PEs {
		if w := r.sub.PEs[l].Weight; w > 0 {
			obj += w * util.Value(rout[l])
		}
	}
	return obj, nil
}

// reprice measures, for each of the region's cut in-edges, the marginal
// utility of one more unit of boundary input at the FIXED regional
// allocation (two fluid propagations per relay — no re-solve), and folds
// it into the price with an EMA. A saturated consumer (CPU-capped at the
// boundary) reports ~0 and the upstream region stops paying for a stream
// that would be dropped; over sweeps the prices converge toward the
// coupling the monolithic solve resolves internally.
func reprice(r *region, util optimize.Utility, alpha float64, elastic bool) {
	if len(r.relaySrc) == 0 {
		return
	}
	base, err := regionObjective(r, util, elastic)
	if err != nil {
		return
	}
	for i, si := range r.relaySrc {
		old := r.sub.Sources[si].Rate
		delta := math.Max(0.05*old, 1e-3)
		r.sub.Sources[si].Rate = old + delta
		bumped, err := regionObjective(r, util, elastic)
		r.sub.Sources[si].Rate = old
		if err != nil {
			continue
		}
		marginal := (bumped - base) / delta
		if marginal < 0 {
			marginal = 0
		}
		r.relayPrice[i] = (1-alpha)*r.relayPrice[i] + alpha*marginal
	}
}

// marginalCPU reports the region's marginal utility of uniformly scaled
// CPU: Δobjective per 1% more allocation everywhere, at fixed solution
// shape. The root's budget-reallocation signal.
func marginalCPU(r *region, util optimize.Utility, elastic bool) float64 {
	base, err := regionObjective(r, util, elastic)
	if err != nil {
		return 0
	}
	const delta = 0.01
	var obj float64
	if elastic {
		scaled := make([][]float64, len(r.warmRep))
		for j, row := range r.warmRep {
			s := make([]float64, len(row))
			for k, v := range row {
				s[k] = v * (1 + delta)
			}
			scaled[j] = s
		}
		saved := r.warmRep
		r.warmRep = scaled
		obj, err = regionObjective(r, util, elastic)
		r.warmRep = saved
	} else {
		scaled := make([]float64, len(r.warm))
		for k, v := range r.warm {
			scaled[k] = v * (1 + delta)
		}
		saved := r.warm
		r.warm = scaled
		obj, err = regionObjective(r, util, elastic)
		r.warm = saved
	}
	if err != nil {
		return 0
	}
	m := (obj - base) / delta
	if m < 0 {
		m = 0
	}
	return m
}

// reallocateBudgets re-splits the total per-sweep iteration budget
// toward the regions reporting the highest marginal return on CPU — the
// root's "budget" lever. Attention is conserved (Σ budgets stays
// R × base) and every region keeps a floor so no cell starves entirely;
// the blend with a uniform share damps oscillation.
func reallocateBudgets(regions []*region, base int) {
	total := base * len(regions)
	sum := 0.0
	for _, r := range regions {
		sum += r.stat.MarginalCPU
	}
	if sum <= 0 {
		for _, r := range regions {
			r.iterBudget = base
		}
		return
	}
	floor := base / 8
	if floor < 25 {
		floor = 25
	}
	for _, r := range regions {
		share := 0.5/float64(len(regions)) + 0.5*r.stat.MarginalCPU/sum
		b := int(float64(total) * share)
		if b < floor {
			b = floor
		}
		r.iterBudget = b
	}
}

// assembleGlobal maps every region's solution back onto the full
// topology and evaluates it there with the original weights.
func assembleGlobal(t *graph.Topology, d *Decomposition, regions []*region, util optimize.Utility, elastic bool) (float64, *Allocation, error) {
	p := t.NumPEs()
	out := &Allocation{CPU: make([]float64, p)}
	if elastic {
		out.Replica = make([][]float64, p)
		for j := 0; j < p; j++ {
			out.Replica[j] = make([]float64, t.Replicas(sdo.PEID(j)))
		}
	}
	for _, r := range regions {
		for l, g := range r.global {
			out.CPU[g] = r.warm[l]
			if elastic {
				for k, slot := range r.repSlots[l] {
					out.Replica[g][slot] = r.warmRep[l][k]
				}
			}
		}
	}
	var rin, rout []float64
	var err error
	if elastic {
		rin, rout, err = optimize.PropagateElastic(t, out.Replica)
	} else {
		rin, rout, err = optimize.Propagate(t, out.CPU)
	}
	if err != nil {
		return 0, nil, err
	}
	out.RIn, out.ROut = rin, rout
	for j := 0; j < p; j++ {
		if w := t.PEs[j].Weight; w > 0 {
			out.Objective += w * util.Value(rout[j])
			out.WeightedThroughput += w * rout[j]
		}
	}
	return out.Objective, out, nil
}

// buildRegions constructs each region's sub-topology: real PEs first (in
// ascending global order, renumbered), then one relay PE per external
// upstream, each alone on a virtual node with a virtual source carrying
// the upstream's boundary rate.
func buildRegions(t *graph.Topology, d *Decomposition, cfg Config, c0, rout0, value []float64) ([]*region, error) {
	regions := make([]*region, len(d.Regions))
	for ri := range d.Regions {
		cell := &d.Regions[ri]
		r := &region{
			id:         ri,
			local:      make([]int, t.NumPEs()),
			global:     append([]sdo.PEID(nil), cell.PEs...),
			iterBudget: cfg.Optimize.MaxIters,
		}
		for g := range r.local {
			r.local[g] = -1
		}
		for l, g := range r.global {
			r.local[g] = l
		}

		// Node remap: the region's real nodes keep their relative order;
		// relay virtual nodes are appended after them.
		nodeLocal := make(map[sdo.NodeID]sdo.NodeID, len(cell.Nodes))
		for i, n := range cell.Nodes {
			nodeLocal[n] = sdo.NodeID(i)
		}

		// External upstreams feeding this region, ascending for
		// determinism; each becomes one relay whose output is a copy of
		// the upstream's boundary stream.
		extSet := map[sdo.PEID]bool{}
		var ext []sdo.PEID
		for _, g := range r.global {
			for _, u := range t.Up(g) {
				if r.local[u] < 0 && !extSet[u] {
					extSet[u] = true
					ext = append(ext, u)
				}
			}
		}
		sortPEIDs(ext)

		sub := graph.New(len(cell.Nodes)+len(ext), t.DefaultBufferSize)
		if cfg.Elastic {
			r.repSlots = make([][]int, len(r.global))
		}
		for l, g := range r.global {
			pe := t.PEs[g]
			cp := graph.PE{
				Name:       pe.Name,
				Node:       nodeLocal[pe.Node],
				Weight:     pe.Weight,
				Service:    pe.Service,
				Overhead:   pe.Overhead,
				BufferSize: pe.BufferSize,
				Join:       pe.Join,
			}
			if cfg.Elastic && t.Replicas(g) > 1 {
				// Keep only the replica slots whose node the region owns:
				// a region cannot set targets on capacity it doesn't hold.
				placement := t.ReplicaPlacement(g)
				for slot, n := range placement {
					ln, ok := nodeLocal[n]
					if !ok {
						continue
					}
					r.repSlots[l] = append(r.repSlots[l], slot)
					if slot > 0 {
						cp.ReplicaNodes = append(cp.ReplicaNodes, ln)
					}
				}
				if n := len(r.repSlots[l]); n > 1 {
					cp.MaxReplicas = n
					cp.ReplicaNodes = cp.ReplicaNodes[:n-1]
				} else {
					cp.ReplicaNodes = nil
				}
			} else if cfg.Elastic {
				r.repSlots[l] = []int{0}
			}
			sub.AddPE(cp)
			r.baseWeight = append(r.baseWeight, pe.Weight)
		}
		for i, u := range ext {
			lid := sub.AddPE(graph.PE{
				Name:     fmt.Sprintf("relay-%d", u),
				Node:     sdo.NodeID(len(cell.Nodes) + i),
				Service:  workload.ServiceParams{T0: relayCost, T1: relayCost, Rho: 0, MeanMult: 1},
				Overhead: 0,
			})
			r.relayLocal = append(r.relayLocal, int(lid))
			r.relayUp = append(r.relayUp, u)
			r.baseWeight = append(r.baseWeight, 0)
		}

		// Internal edges, then relay→consumer edges.
		for _, e := range t.Edges {
			lf, lt := r.local[e.From], r.local[e.To]
			if lf >= 0 && lt >= 0 {
				if err := sub.Connect(sdo.PEID(lf), sdo.PEID(lt)); err != nil {
					return nil, fmt.Errorf("hier: region %d: %w", ri, err)
				}
			}
		}
		for i, u := range ext {
			lu := sdo.PEID(r.relayLocal[i])
			price := 0.0
			for _, dn := range t.Down(u) {
				ld := r.local[dn]
				if ld < 0 {
					continue
				}
				if err := sub.Connect(lu, sdo.PEID(ld)); err != nil {
					return nil, fmt.Errorf("hier: region %d relay: %w", ri, err)
				}
				price += value[dn]
			}
			r.relayPrice = append(r.relayPrice, price)
		}

		// Original sources feeding region-owned PEs, then the relays'
		// virtual boundary sources.
		for _, s := range t.Sources {
			if l := r.local[s.Target]; l >= 0 {
				if err := sub.AddSource(graph.Source{Stream: s.Stream, Target: sdo.PEID(l), Rate: s.Rate, Burst: s.Burst}); err != nil {
					return nil, fmt.Errorf("hier: region %d: %w", ri, err)
				}
			}
		}
		for i := range ext {
			if err := sub.AddSource(graph.Source{
				Stream: sdo.StreamID(1_000_000 + i),
				Target: sdo.PEID(r.relayLocal[i]),
				Rate:   math.Max(rout0[ext[i]], minSourceRate),
				Burst:  graph.BurstSpec{Kind: graph.BurstDeterministic},
			}); err != nil {
				return nil, fmt.Errorf("hier: region %d relay source: %w", ri, err)
			}
			r.relaySrc = append(r.relaySrc, len(sub.Sources)-1)
		}
		if err := sub.Validate(); err != nil {
			return nil, fmt.Errorf("hier: region %d sub-topology: %w", ri, err)
		}
		r.sub = sub

		// Warm start: incumbent targets for real PEs, a nominal sliver
		// for relays (projection keeps them feasible; their own virtual
		// nodes mean the sliver is never contended).
		r.warm = make([]float64, sub.NumPEs())
		for l, g := range r.global {
			r.warm[l] = c0[g]
		}
		for _, lr := range r.relayLocal {
			r.warm[lr] = 1e-6
		}
		if cfg.Elastic {
			r.warmRep = make([][]float64, sub.NumPEs())
			warmFull := cfg.Optimize.WarmStartReplica
			for l, g := range r.global {
				row := make([]float64, len(r.repSlots[l]))
				if len(warmFull) == t.NumPEs() && len(warmFull[g]) == t.Replicas(g) {
					for k, slot := range r.repSlots[l] {
						row[k] = warmFull[g][slot]
					}
				} else {
					row[0] = c0[g]
				}
				r.warmRep[l] = row
			}
			for _, lr := range r.relayLocal {
				r.warmRep[lr] = []float64{1e-6}
			}
		}
		r.stat = RegionStat{Region: ri, PEs: len(r.global), Relays: len(ext)}
		regions[ri] = r
	}
	return regions, nil
}

func sortPEIDs(ids []sdo.PEID) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
}
