// Package hier is the hierarchical control plane: it decomposes the PE
// graph into regions, runs an independent warm-started tier-1 solve per
// region under a hard per-epoch budget, and coordinates the regions
// through a thin root that iterates prices on the cut edges (dual-ascent
// sweeps in the style of hierarchical multi-objective schedulers). A
// monolithic tier-1 solve costs O(p) fluid propagations of O(p+E) each
// per gradient iteration — superlinear in deployment size and past its
// epoch deadline somewhere around 5k PEs; decomposing into R regions
// divides both factors by ~R, so solve wall time scales near-linearly in
// region count while the price iteration recovers most of the global
// optimum's coupling across region boundaries.
//
// Regions are node-granular: every PE of a processing node lands in the
// node's region, so each per-node CPU simplex (Eq. 4) stays entirely
// inside one regional solve and regional feasibility composes into
// global feasibility with no shared constraints — the only coupling
// between regions is the flow on cut edges, which is exactly what the
// root prices.
package hier

import (
	"fmt"
	"sort"

	"aces/internal/graph"
	"aces/internal/sdo"
)

// PartitionConfig tunes the region decomposition.
type PartitionConfig struct {
	// Regions is the region count (required unless MaxRegionPEs is set,
	// in which case it defaults to ceil(p / MaxRegionPEs)).
	Regions int
	// MaxRegionPEs is the hard per-region PE budget. 0 derives it from
	// Regions with 30% slack over a perfectly even split — enough play
	// for the edge-cut heuristic to cluster heavy streams, tight enough
	// that no regional solve degenerates back toward the monolithic one.
	MaxRegionPEs int
	// RefinePasses bounds the greedy refinement sweeps that move single
	// nodes between regions to reduce cut weight (default 4).
	RefinePasses int
}

func (c *PartitionConfig) fillDefaults(p int) error {
	if c.Regions <= 0 {
		if c.MaxRegionPEs <= 0 {
			return fmt.Errorf("hier: PartitionConfig needs Regions or MaxRegionPEs")
		}
		c.Regions = (p + c.MaxRegionPEs - 1) / c.MaxRegionPEs
	}
	if c.Regions < 1 {
		c.Regions = 1
	}
	if c.MaxRegionPEs <= 0 {
		even := (p + c.Regions - 1) / c.Regions
		c.MaxRegionPEs = even + (even*3+9)/10
	}
	if c.RefinePasses <= 0 {
		c.RefinePasses = 4
	}
	return nil
}

// Region is one partition cell: a set of processing nodes and the PEs
// placed on them.
type Region struct {
	ID int
	// Nodes are the global node IDs owned by the region (ascending).
	Nodes []sdo.NodeID
	// PEs are the global PE IDs owned by the region (ascending).
	PEs []sdo.PEID
}

// Decomposition is a complete region partition of a topology.
type Decomposition struct {
	Regions []Region
	// RegionOf[j] is the region ID of PE j.
	RegionOf []int
	// NodeRegion[n] is the region ID of node n (-1 for a node with no
	// PEs, which no regional solve needs to know about).
	NodeRegion []int
	// Cut lists the PE-graph edges whose endpoints live in different
	// regions.
	Cut []graph.Edge
	// CutWeight is the summed unit-demand stream rate over Cut;
	// TotalWeight the same sum over all edges, so CutWeight/TotalWeight
	// is the fraction of stream volume crossing region boundaries.
	CutWeight, TotalWeight float64
}

// CutFraction returns CutWeight/TotalWeight (0 when the graph carries no
// flow at all).
func (d *Decomposition) CutFraction() float64 {
	if d.TotalWeight <= 0 {
		return 0
	}
	return d.CutWeight / d.TotalWeight
}

// edgeRates returns the unit-demand output rate of every PE: the stream
// weight an edge u→v contributes to a cut is rout(u), since every
// downstream receives a full copy of the upstream output (§III-D).
func edgeRates(t *graph.Topology) ([]float64, error) {
	in, err := t.UnitDemand()
	if err != nil {
		return nil, err
	}
	rout := make([]float64, len(in))
	for j := range in {
		m := t.PEs[j].Service.MeanMult
		if m <= 0 {
			m = 1
		}
		rout[j] = in[j] * m
	}
	return rout, nil
}

// nodeGraph folds the PE graph onto the placement: w[a][b] is the summed
// unit-demand stream rate between nodes a and b (symmetric; same-node
// edges are free and excluded). peCount[n] counts PEs on node n.
func nodeGraph(t *graph.Topology, rout []float64) (w []map[int]float64, peCount []int) {
	w = make([]map[int]float64, t.NumNodes)
	peCount = make([]int, t.NumNodes)
	for j := range t.PEs {
		peCount[t.PEs[j].Node]++
	}
	add := func(a, b int, v float64) {
		if w[a] == nil {
			w[a] = make(map[int]float64)
		}
		w[a][b] += v
	}
	for _, e := range t.Edges {
		a, b := int(t.PEs[e.From].Node), int(t.PEs[e.To].Node)
		if a == b {
			continue
		}
		add(a, b, rout[e.From])
		add(b, a, rout[e.From])
	}
	return w, peCount
}

// Partition decomposes the topology into node-granular regions with a
// greedy weighted-attachment growth from spread-out seeds followed by
// refinement passes. The result is deterministic for a given topology
// and configuration: every scan iterates in ascending node/region order
// and ties break toward the lowest ID.
func Partition(t *graph.Topology, cfg PartitionConfig) (*Decomposition, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("hier: %w", err)
	}
	p := t.NumPEs()
	if err := cfg.fillDefaults(p); err != nil {
		return nil, err
	}
	if cfg.Regions*cfg.MaxRegionPEs < p {
		return nil, fmt.Errorf("hier: %d regions × budget %d cannot hold %d PEs",
			cfg.Regions, cfg.MaxRegionPEs, p)
	}
	rout, err := edgeRates(t)
	if err != nil {
		return nil, err
	}
	w, peCount := nodeGraph(t, rout)

	// Live nodes (those hosting PEs), by descending total incident
	// stream weight — the busiest nodes anchor the partition.
	type nodeInfo struct {
		id       int
		incident float64
	}
	var live []nodeInfo
	for n := 0; n < t.NumNodes; n++ {
		if peCount[n] == 0 {
			continue
		}
		inc := 0.0
		for _, v := range w[n] {
			inc += v
		}
		live = append(live, nodeInfo{n, inc})
	}
	sort.SliceStable(live, func(i, k int) bool {
		if live[i].incident != live[k].incident {
			return live[i].incident > live[k].incident
		}
		return live[i].id < live[k].id
	})
	R := cfg.Regions
	if R > len(live) {
		R = len(live)
	}

	nodeRegion := make([]int, t.NumNodes)
	for n := range nodeRegion {
		nodeRegion[n] = -1
	}
	regionPEs := make([]int, R)

	// Seeds: the heaviest node first, then repeatedly the live node least
	// attached to any already-picked seed — a farthest-point spread so two
	// seeds don't land inside one tightly-coupled cluster.
	seeded := make([]bool, t.NumNodes)
	seed := func(r, n int) {
		nodeRegion[n] = r
		regionPEs[r] = peCount[n]
		seeded[n] = true
	}
	seed(0, live[0].id)
	for r := 1; r < R; r++ {
		bestN, bestAtt := -1, 0.0
		for _, ni := range live {
			if seeded[ni.id] {
				continue
			}
			att := 0.0
			for m, v := range w[ni.id] {
				if nodeRegion[m] >= 0 {
					att += v
				}
			}
			if bestN < 0 || att < bestAtt {
				bestN, bestAtt = ni.id, att
			}
		}
		seed(r, bestN)
	}

	// Growth: repeatedly commit the unassigned node with the strongest
	// attachment to a region that still has PE budget. Unattached nodes
	// (no edges to any region yet) fall to the emptiest region, which
	// doubles as load balancing.
	unassigned := 0
	for _, ni := range live {
		if nodeRegion[ni.id] < 0 {
			unassigned++
		}
	}
	for unassigned > 0 {
		bestN, bestR, bestGain := -1, -1, -1.0
		for _, ni := range live {
			n := ni.id
			if nodeRegion[n] >= 0 {
				continue
			}
			gain := make([]float64, R)
			for m, v := range w[n] {
				if r := nodeRegion[m]; r >= 0 {
					gain[r] += v
				}
			}
			for r := 0; r < R; r++ {
				if regionPEs[r]+peCount[n] > cfg.MaxRegionPEs {
					continue
				}
				if gain[r] > bestGain {
					bestN, bestR, bestGain = n, r, gain[r]
				}
			}
		}
		if bestN < 0 {
			// No region has budget for any remaining node as a whole; the
			// PE budget is infeasible at node granularity.
			return nil, fmt.Errorf("hier: per-region budget %d PEs cannot fit remaining nodes (node granularity)", cfg.MaxRegionPEs)
		}
		if bestGain <= 0 {
			// Nothing attaches anywhere yet: place the heaviest remaining
			// node into the emptiest region that fits it.
			for r := 1; r < R; r++ {
				if regionPEs[r] < regionPEs[bestR] && regionPEs[r]+peCount[bestN] <= cfg.MaxRegionPEs {
					bestR = r
				}
			}
		}
		nodeRegion[bestN] = bestR
		regionPEs[bestR] += peCount[bestN]
		unassigned--
	}

	// Refinement: move single nodes to the region they attach to most,
	// when the move strictly reduces cut weight and respects the budget.
	for pass := 0; pass < cfg.RefinePasses; pass++ {
		moved := false
		for _, ni := range live {
			n := ni.id
			cur := nodeRegion[n]
			gain := make([]float64, R)
			for m, v := range w[n] {
				if r := nodeRegion[m]; r >= 0 {
					gain[r] += v
				}
			}
			bestR := cur
			for r := 0; r < R; r++ {
				if r == cur || regionPEs[r]+peCount[n] > cfg.MaxRegionPEs {
					continue
				}
				if gain[r] > gain[bestR]+1e-12 {
					bestR = r
				}
			}
			if bestR != cur {
				nodeRegion[n] = bestR
				regionPEs[cur] -= peCount[n]
				regionPEs[bestR] += peCount[n]
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	return assemble(t, rout, nodeRegion, R), nil
}

// PartitionBFS is the naive baseline: a breadth-first walk over the node
// graph filling regions to an even PE budget in visit order, blind to
// edge weights. Tests hold Partition's cut weight to no worse than this.
func PartitionBFS(t *graph.Topology, regions int) (*Decomposition, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("hier: %w", err)
	}
	p := t.NumPEs()
	cfg := PartitionConfig{Regions: regions}
	if err := cfg.fillDefaults(p); err != nil {
		return nil, err
	}
	rout, err := edgeRates(t)
	if err != nil {
		return nil, err
	}
	w, peCount := nodeGraph(t, rout)

	nodeRegion := make([]int, t.NumNodes)
	for n := range nodeRegion {
		nodeRegion[n] = -1
	}
	budget := (p + cfg.Regions - 1) / cfg.Regions
	r, filled := 0, 0
	var queue []int
	visited := make([]bool, t.NumNodes)
	place := func(n int) {
		if filled+peCount[n] > budget && filled > 0 && r < cfg.Regions-1 {
			r++
			filled = 0
		}
		nodeRegion[n] = r
		filled += peCount[n]
	}
	for start := 0; start < t.NumNodes; start++ {
		if visited[start] || peCount[start] == 0 {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			place(n)
			// Neighbours in ascending node order for determinism.
			var nbrs []int
			for m := range w[n] {
				nbrs = append(nbrs, m)
			}
			sort.Ints(nbrs)
			for _, m := range nbrs {
				if !visited[m] && peCount[m] > 0 {
					visited[m] = true
					queue = append(queue, m)
				}
			}
		}
	}
	return assemble(t, rout, nodeRegion, cfg.Regions), nil
}

// assemble builds the Decomposition bookkeeping from a node→region map.
// Regions that ended up empty are dropped and the rest renumbered, so
// callers always see contiguous non-empty region IDs.
func assemble(t *graph.Topology, rout []float64, nodeRegion []int, r int) *Decomposition {
	used := make([]bool, r)
	for _, reg := range nodeRegion {
		if reg >= 0 {
			used[reg] = true
		}
	}
	remap := make([]int, r)
	n := 0
	for i := 0; i < r; i++ {
		if used[i] {
			remap[i] = n
			n++
		} else {
			remap[i] = -1
		}
	}
	d := &Decomposition{
		Regions:    make([]Region, n),
		RegionOf:   make([]int, t.NumPEs()),
		NodeRegion: append([]int(nil), nodeRegion...),
	}
	for i := range d.Regions {
		d.Regions[i].ID = i
	}
	for node, reg := range nodeRegion {
		if reg < 0 {
			continue
		}
		reg = remap[reg]
		d.NodeRegion[node] = reg
		d.Regions[reg].Nodes = append(d.Regions[reg].Nodes, sdo.NodeID(node))
	}
	for j := range t.PEs {
		reg := d.NodeRegion[t.PEs[j].Node]
		d.RegionOf[j] = reg
		d.Regions[reg].PEs = append(d.Regions[reg].PEs, sdo.PEID(j))
	}
	for _, e := range t.Edges {
		wt := rout[e.From]
		d.TotalWeight += wt
		if d.RegionOf[e.From] != d.RegionOf[e.To] {
			d.Cut = append(d.Cut, e)
			d.CutWeight += wt
		}
	}
	return d
}
