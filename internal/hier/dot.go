package hier

import (
	"fmt"
	"io"
	"strings"

	"aces/internal/graph"
)

// regionPalette colors region clusters in the DOT rendering; regions
// beyond the palette cycle through it.
var regionPalette = []string{
	"#cfe2f3", "#d9ead3", "#fff2cc", "#f4cccc",
	"#d9d2e9", "#fce5cd", "#d0e0e3", "#ead1dc",
}

// WriteDOT renders a region decomposition as a Graphviz digraph: one
// colored cluster per region with the physical nodes sub-clustered
// inside it, and the cut edges — the streams the root prices — drawn
// bold and dashed across cluster boundaries. `dot -Tsvg` turns it into
// the picture of what each regional solver owns and what the root
// coordinates.
func WriteDOT(w io.Writer, t *graph.Topology, d *Decomposition, title string) error {
	if len(d.RegionOf) != t.NumPEs() {
		return fmt.Errorf("hier: decomposition covers %d PEs, topology has %d", len(d.RegionOf), t.NumPEs())
	}
	cut := make(map[graph.Edge]bool, len(d.Cut))
	for _, e := range d.Cut {
		cut[e] = true
	}
	var b strings.Builder
	b.WriteString("digraph aces_hier {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, style=rounded, fontname=\"Helvetica\"];\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", title)
	}
	for _, reg := range d.Regions {
		color := regionPalette[reg.ID%len(regionPalette)]
		fmt.Fprintf(&b, "  subgraph cluster_r%d {\n    label=\"region %d (%d PEs)\";\n    style=filled;\n    color=%q;\n",
			reg.ID, reg.ID, len(reg.PEs), color)
		for _, n := range reg.Nodes {
			ids := t.OnNode(n)
			if len(ids) == 0 {
				continue
			}
			fmt.Fprintf(&b, "    subgraph cluster_r%dn%d {\n      label=\"node %d\";\n      style=dashed;\n      color=black;\n", reg.ID, n, n)
			for _, id := range ids {
				pe := &t.PEs[id]
				attrs := ""
				if t.IsEgress(id) {
					attrs = fmt.Sprintf(", style=\"rounded,filled\", fillcolor=lightgrey, xlabel=\"w=%.2g\"", pe.Weight)
				}
				fmt.Fprintf(&b, "      pe%d [label=%q%s];\n", id, pe.Name, attrs)
			}
			b.WriteString("    }\n")
		}
		b.WriteString("  }\n")
	}
	for i, s := range t.Sources {
		fmt.Fprintf(&b, "  src%d [shape=diamond, label=\"s%d @%.3g/s\"];\n", i, s.Stream, s.Rate)
		fmt.Fprintf(&b, "  src%d -> pe%d;\n", i, s.Target)
	}
	for _, e := range t.Edges {
		if cut[e] {
			fmt.Fprintf(&b, "  pe%d -> pe%d [style=dashed, penwidth=2, color=red];\n", e.From, e.To)
		} else {
			fmt.Fprintf(&b, "  pe%d -> pe%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
