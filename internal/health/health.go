// Package health implements heartbeat-based membership for partitioned
// deployments: a timeout failure detector with alive → suspect → dead
// states, driven entirely by the caller's virtual clock.
//
// The detector is deliberately local and pessimistic, matching the
// paper's tier-2 philosophy (§V-D: local controllers keep operating on
// local information when the rest of the cluster misbehaves): a peer is
// judged only by the heartbeats that actually arrive here, there is no
// gossip or quorum, and a wrong verdict costs throughput — flow is routed
// to live replicas while the suspect is down-weighted to r_max = 0 — but
// never correctness, because a late heartbeat immediately restores the
// peer to alive.
//
// All methods are safe for concurrent use: heartbeats arrive on transport
// Serve goroutines while the Δt scheduler runs the timeout sweep.
package health

import (
	"sync"
)

// State is a peer's membership verdict.
type State uint8

// Membership states, ordered by degradation: a peer moves down the order
// as silence accumulates and snaps straight back to Alive on any
// heartbeat.
const (
	Alive State = iota
	// Suspect means the peer missed enough heartbeats to distrust its
	// advertisements (flow control treats it as r_max = 0) but not enough
	// to declare it gone.
	Suspect
	// Dead means the peer exceeded the dead timeout. The distinction from
	// Suspect is advisory — both zero the flow bound — but it separates
	// "maybe a hiccup" from "provision a replacement" for operators.
	Dead
)

// String implements fmt.Stringer (JSON reports and gauges use it).
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Options tunes the detector's timeouts, in the caller's clock units
// (virtual seconds in the live runtime).
type Options struct {
	// SuspectAfter is the silence after which an alive peer turns suspect.
	SuspectAfter float64
	// DeadAfter is the silence after which a peer is declared dead. Must
	// exceed SuspectAfter; the constructor enforces it.
	DeadAfter float64
}

// PeerStatus is a point-in-time snapshot of one tracked peer.
type PeerStatus struct {
	Peer int32 `json:"peer"`
	// State is the current verdict; StateName its string form for JSON
	// consumers.
	State     State  `json:"-"`
	StateName string `json:"state"`
	// LastBeat is the clock time of the most recent heartbeat (the track
	// time until one arrives).
	LastBeat float64 `json:"last_beat"`
	// Beats counts heartbeats received from this peer.
	Beats uint64 `json:"beats"`
	// Transitions counts state changes (suspicions and recoveries both).
	Transitions int64 `json:"transitions"`
}

type peerState struct {
	state       State
	lastBeat    float64
	beats       uint64
	transitions int64
}

// ChangeFunc observes a state transition. Callbacks run outside the
// detector's lock, in the goroutine that triggered the transition
// (Beat's caller for recoveries, Check's caller for degradations), so
// they may call back into the detector.
type ChangeFunc func(peer int32, from, to State)

// Detector is a timeout failure detector over a set of tracked peers.
type Detector struct {
	opts     Options
	onChange ChangeFunc

	mu    sync.Mutex
	peers map[int32]*peerState
}

// transition is a recorded state change, applied under the lock and
// announced after it is released.
type transition struct {
	peer     int32
	from, to State
}

// New builds a detector. Non-positive or inverted timeouts are repaired:
// SuspectAfter defaults to 1, DeadAfter to 2×SuspectAfter. onChange may
// be nil.
func New(opts Options, onChange ChangeFunc) *Detector {
	if opts.SuspectAfter <= 0 {
		opts.SuspectAfter = 1
	}
	if opts.DeadAfter <= opts.SuspectAfter {
		opts.DeadAfter = 2 * opts.SuspectAfter
	}
	return &Detector{opts: opts, onChange: onChange, peers: make(map[int32]*peerState)}
}

// Track registers a peer as alive as of now; a peer that never sends a
// single heartbeat afterwards degrades on the normal timeouts. Tracking
// an already-tracked peer is a no-op.
func (d *Detector) Track(peer int32, now float64) {
	d.mu.Lock()
	if _, ok := d.peers[peer]; !ok {
		d.peers[peer] = &peerState{state: Alive, lastBeat: now}
	}
	d.mu.Unlock()
}

// Beat records a heartbeat from a peer. A suspect or dead peer snaps
// back to Alive: the detector's verdicts are timeout artifacts, and
// evidence of life outranks them. Beats from untracked peers implicitly
// track them (a restarted node may greet us before we re-learn the
// roster).
func (d *Detector) Beat(peer int32, now float64) {
	var tr *transition
	d.mu.Lock()
	ps, ok := d.peers[peer]
	if !ok {
		ps = &peerState{state: Alive, lastBeat: now}
		d.peers[peer] = ps
	}
	ps.beats++
	if now > ps.lastBeat {
		ps.lastBeat = now
	}
	if ps.state != Alive {
		tr = &transition{peer: peer, from: ps.state, to: Alive}
		ps.state = Alive
		ps.transitions++
	}
	d.mu.Unlock()
	if tr != nil && d.onChange != nil {
		d.onChange(tr.peer, tr.from, tr.to)
	}
}

// Check runs the timeout sweep at clock time now, degrading peers whose
// silence crossed a threshold. Call it on the control-loop cadence; it is
// O(peers) and cheap.
func (d *Detector) Check(now float64) {
	var trs []transition
	d.mu.Lock()
	for peer, ps := range d.peers {
		silence := now - ps.lastBeat
		next := ps.state
		switch {
		case silence >= d.opts.DeadAfter:
			next = Dead
		case silence >= d.opts.SuspectAfter:
			// Dead peers do not resurrect by sweep — only a heartbeat
			// brings a peer back.
			if ps.state != Dead {
				next = Suspect
			}
		}
		if next != ps.state {
			trs = append(trs, transition{peer: peer, from: ps.state, to: next})
			ps.state = next
			ps.transitions++
		}
	}
	d.mu.Unlock()
	if d.onChange != nil {
		for _, tr := range trs {
			d.onChange(tr.peer, tr.from, tr.to)
		}
	}
}

// StateOf returns a peer's current verdict; ok is false for untracked
// peers.
func (d *Detector) StateOf(peer int32) (State, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps, ok := d.peers[peer]
	if !ok {
		return Alive, false
	}
	return ps.state, true
}

// AllAlive reports whether every tracked peer is currently alive (true
// for an empty roster).
func (d *Detector) AllAlive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ps := range d.peers {
		if ps.state != Alive {
			return false
		}
	}
	return true
}

// Snapshot returns every tracked peer's status, sorted by peer ID so
// reports are stable.
func (d *Detector) Snapshot() []PeerStatus {
	d.mu.Lock()
	out := make([]PeerStatus, 0, len(d.peers))
	for peer, ps := range d.peers {
		out = append(out, PeerStatus{
			Peer: peer, State: ps.state, StateName: ps.state.String(),
			LastBeat: ps.lastBeat, Beats: ps.beats, Transitions: ps.transitions,
		})
	}
	d.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Peer < out[j-1].Peer; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
