package health

import (
	"sync"
	"testing"
)

func TestDetectorDegradesOnSilence(t *testing.T) {
	d := New(Options{SuspectAfter: 1, DeadAfter: 3}, nil)
	d.Track(7, 0)

	if st, ok := d.StateOf(7); !ok || st != Alive {
		t.Fatalf("fresh peer = %v ok=%v, want alive", st, ok)
	}
	d.Check(0.9)
	if st, _ := d.StateOf(7); st != Alive {
		t.Fatalf("peer suspect before SuspectAfter: %v", st)
	}
	d.Check(1.5)
	if st, _ := d.StateOf(7); st != Suspect {
		t.Fatalf("peer = %v after 1.5s silence, want suspect", st)
	}
	d.Check(3.5)
	if st, _ := d.StateOf(7); st != Dead {
		t.Fatalf("peer = %v after 3.5s silence, want dead", st)
	}
	if d.AllAlive() {
		t.Error("AllAlive true with a dead peer")
	}
	// Sweeps never resurrect; only a heartbeat does.
	d.Check(3.6)
	if st, _ := d.StateOf(7); st != Dead {
		t.Fatalf("sweep resurrected peer to %v", st)
	}
	d.Beat(7, 4)
	if st, _ := d.StateOf(7); st != Alive {
		t.Fatalf("heartbeat did not revive peer: %v", st)
	}
	if !d.AllAlive() {
		t.Error("AllAlive false after recovery")
	}
}

func TestDetectorBeatsKeepPeerAlive(t *testing.T) {
	d := New(Options{SuspectAfter: 1, DeadAfter: 2}, nil)
	d.Track(1, 0)
	for now := 0.5; now < 10; now += 0.5 {
		d.Beat(1, now)
		d.Check(now)
		if st, _ := d.StateOf(1); st != Alive {
			t.Fatalf("heartbeating peer degraded to %v at t=%.1f", st, now)
		}
	}
	snap := d.Snapshot()
	if len(snap) != 1 || snap[0].Beats != 19 || snap[0].Transitions != 0 {
		t.Errorf("snapshot = %+v, want 19 beats, 0 transitions", snap)
	}
}

func TestDetectorChangeCallback(t *testing.T) {
	var mu sync.Mutex
	var got []struct {
		peer     int32
		from, to State
	}
	d := New(Options{SuspectAfter: 1, DeadAfter: 2}, func(peer int32, from, to State) {
		mu.Lock()
		got = append(got, struct {
			peer     int32
			from, to State
		}{peer, from, to})
		mu.Unlock()
	})
	d.Track(3, 0)
	d.Check(1.2) // alive → suspect
	d.Check(2.5) // suspect → dead
	d.Beat(3, 3) // dead → alive
	want := []struct {
		peer     int32
		from, to State
	}{{3, Alive, Suspect}, {3, Suspect, Dead}, {3, Dead, Alive}}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("observed %d transitions (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDetectorUntrackedBeatTracks(t *testing.T) {
	d := New(Options{SuspectAfter: 1, DeadAfter: 2}, nil)
	d.Beat(9, 5)
	if st, ok := d.StateOf(9); !ok || st != Alive {
		t.Fatalf("beat from unknown peer not tracked: %v ok=%v", st, ok)
	}
	// Track of an existing peer must not reset its beat history.
	d.Track(9, 100)
	if snap := d.Snapshot(); snap[0].LastBeat != 5 {
		t.Errorf("re-Track reset lastBeat to %v", snap[0].LastBeat)
	}
}

func TestDetectorSnapshotSorted(t *testing.T) {
	d := New(Options{SuspectAfter: 1, DeadAfter: 2}, nil)
	for _, p := range []int32{5, 1, 3} {
		d.Track(p, 0)
	}
	snap := d.Snapshot()
	if len(snap) != 3 || snap[0].Peer != 1 || snap[1].Peer != 3 || snap[2].Peer != 5 {
		t.Errorf("snapshot not sorted: %+v", snap)
	}
	for _, ps := range snap {
		if ps.StateName != "alive" {
			t.Errorf("peer %d StateName = %q", ps.Peer, ps.StateName)
		}
	}
}

func TestDetectorDefaultsRepaired(t *testing.T) {
	d := New(Options{}, nil)
	if d.opts.SuspectAfter <= 0 || d.opts.DeadAfter <= d.opts.SuspectAfter {
		t.Errorf("defaults not repaired: %+v", d.opts)
	}
}
