// Package workload implements the stochastic workload models from the
// paper's evaluation (§VI-B): two-state Markov-modulated PE service times
// ("the PE operates in two states S ∈ {0,1}; the processing time of a
// packet differs in the two states"), bursty on/off sources, Poisson and
// deterministic arrival processes, and trace playback.
//
// All models are driven by explicit seeded random streams (internal/sim's
// Rand) and advance in continuous time even when sampled by the
// time-stepped simulator, so burstiness is independent of the control
// period Δt.
package workload

import (
	"fmt"
	"math"

	"aces/internal/sim"
)

// ArrivalProcess generates inter-arrival times for a source stream.
// Implementations must be deterministic given their Rand.
type ArrivalProcess interface {
	// NextInterval returns the time until the next SDO arrival, in seconds.
	// It must be strictly positive for all processes with finite rate.
	NextInterval() float64
	// MeanRate returns the long-run average arrival rate in SDOs/sec, used
	// by the tier-1 optimizer as the expected time-averaged input rate.
	MeanRate() float64
}

// Deterministic is a constant-bit-rate source: one SDO every 1/rate
// seconds.
type Deterministic struct {
	rate float64
}

// NewDeterministic returns a CBR source with the given rate in SDOs/sec.
func NewDeterministic(rate float64) *Deterministic {
	if rate <= 0 {
		panic("workload: rate must be positive")
	}
	return &Deterministic{rate: rate}
}

// NextInterval implements ArrivalProcess.
func (d *Deterministic) NextInterval() float64 { return 1 / d.rate }

// MeanRate implements ArrivalProcess.
func (d *Deterministic) MeanRate() float64 { return d.rate }

// Poisson is a memoryless source with exponential inter-arrivals.
type Poisson struct {
	rate float64
	rng  *sim.Rand
}

// NewPoisson returns a Poisson source with the given mean rate.
func NewPoisson(rate float64, rng *sim.Rand) *Poisson {
	if rate <= 0 {
		panic("workload: rate must be positive")
	}
	return &Poisson{rate: rate, rng: rng}
}

// NextInterval implements ArrivalProcess.
func (p *Poisson) NextInterval() float64 {
	for {
		iv := p.rng.Exp(1 / p.rate)
		if iv > 0 {
			return iv
		}
	}
}

// MeanRate implements ArrivalProcess.
func (p *Poisson) MeanRate() float64 { return p.rate }

// OnOff is a two-state Markov-modulated Poisson source: in the ON state
// SDOs arrive at peakRate; in the OFF state nothing arrives. Dwell times in
// each state are exponential. This is the classical bursty-traffic model;
// the burstiness level is controlled by the dwell-time means (longer dwells
// at the same duty cycle = burstier traffic at the same mean rate).
type OnOff struct {
	peakRate  float64
	meanOn    float64
	meanOff   float64
	rng       *sim.Rand
	on        bool
	stateLeft float64 // time remaining in the current state
}

// NewOnOff constructs an on/off source. peakRate is the ON-state arrival
// rate; meanOn and meanOff are the mean dwell times of the two states.
func NewOnOff(peakRate, meanOn, meanOff float64, rng *sim.Rand) *OnOff {
	if peakRate <= 0 || meanOn <= 0 || meanOff < 0 {
		panic("workload: invalid OnOff parameters")
	}
	s := &OnOff{peakRate: peakRate, meanOn: meanOn, meanOff: meanOff, rng: rng, on: true}
	s.stateLeft = rng.Exp(meanOn)
	return s
}

// NextInterval implements ArrivalProcess. It advances the modulating chain
// through as many state switches as needed to reach the next arrival.
func (s *OnOff) NextInterval() float64 {
	var elapsed float64
	for {
		if s.on {
			gap := s.rng.Exp(1 / s.peakRate)
			if gap <= s.stateLeft {
				s.stateLeft -= gap
				iv := elapsed + gap
				if iv > 0 {
					return iv
				}
				// Degenerate zero gap: retry.
				continue
			}
			elapsed += s.stateLeft
			s.on = false
			s.stateLeft = s.rng.Exp(s.meanOff)
			continue
		}
		elapsed += s.stateLeft
		s.on = true
		s.stateLeft = s.rng.Exp(s.meanOn)
	}
}

// MeanRate implements ArrivalProcess: peak × duty cycle.
func (s *OnOff) MeanRate() float64 {
	return s.peakRate * s.meanOn / (s.meanOn + s.meanOff)
}

// Trace replays a recorded sequence of inter-arrival intervals, cycling
// when exhausted. It substitutes for the production traces the authors had
// access to: any recorded workload can be fed to both substrates.
type Trace struct {
	intervals []float64
	pos       int
	mean      float64
}

// NewTrace builds a trace source from explicit inter-arrival intervals. It
// returns an error when the trace is empty or contains non-positive
// intervals, because a malformed trace is an input error, not a bug.
func NewTrace(intervals []float64) (*Trace, error) {
	if len(intervals) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	var sum float64
	for i, iv := range intervals {
		if iv <= 0 {
			return nil, fmt.Errorf("workload: trace interval %d is %g, must be positive", i, iv)
		}
		sum += iv
	}
	cp := make([]float64, len(intervals))
	copy(cp, intervals)
	return &Trace{intervals: cp, mean: float64(len(intervals)) / sum}, nil
}

// NextInterval implements ArrivalProcess.
func (t *Trace) NextInterval() float64 {
	iv := t.intervals[t.pos]
	t.pos = (t.pos + 1) % len(t.intervals)
	return iv
}

// MeanRate implements ArrivalProcess.
func (t *Trace) MeanRate() float64 { return t.mean }

// Interface compliance checks.
var (
	_ ArrivalProcess = (*Deterministic)(nil)
	_ ArrivalProcess = (*Poisson)(nil)
	_ ArrivalProcess = (*OnOff)(nil)
	_ ArrivalProcess = (*Trace)(nil)
	_ ArrivalProcess = (*HeavyTail)(nil)
)

// HeavyTail is a bounded-Pareto renewal source: inter-arrival gaps follow
// a truncated power law, producing the rare-but-huge gaps (and dense
// clumps) that exponential models miss. Used to stress the controller
// beyond the two-state model of the paper's evaluation.
type HeavyTail struct {
	rate  float64
	alpha float64
	lo    float64
	hi    float64
	rng   *sim.Rand
}

// NewHeavyTail builds a heavy-tailed source with the given mean rate,
// tail exponent alpha (must be > 1 so the mean exists and ≠ exactly the
// degenerate 1; default 1.5 if ≤ 1), and upper/lower truncation ratio
// (default 100).
func NewHeavyTail(rate, alpha, ratio float64, rng *sim.Rand) *HeavyTail {
	if rate <= 0 {
		panic("workload: rate must be positive")
	}
	if alpha <= 1 {
		alpha = 1.5
	}
	if ratio <= 1 {
		ratio = 100
	}
	// E[X] for bounded Pareto on [L, H = ratio·L] scales linearly in L:
	// E = L · k with k = a(1 − ratio^{1−a}) / ((a−1)(1 − ratio^{−a})).
	k := alpha * (1 - math.Pow(ratio, 1-alpha)) / ((alpha - 1) * (1 - math.Pow(ratio, -alpha)))
	lo := (1 / rate) / k
	return &HeavyTail{rate: rate, alpha: alpha, lo: lo, hi: lo * ratio, rng: rng}
}

// NextInterval implements ArrivalProcess.
func (h *HeavyTail) NextInterval() float64 {
	return h.rng.BoundedPareto(h.alpha, h.lo, h.hi)
}

// MeanRate implements ArrivalProcess.
func (h *HeavyTail) MeanRate() float64 { return h.rate }
