package workload

import "aces/internal/sim"

// ServiceParams describes the paper's two-state PE processing model
// (§VI-B, §VI-C): a PE alternates between state 0 (fast, per-SDO cost T0)
// and state 1 (slow, per-SDO cost T1); dwell times in each state are
// exponential. With the paper's defaults T0 = 2 ms, T1 = 20 ms, ρ = 0.5
// (fraction of time in state 1), and dwell scale λ_S.
type ServiceParams struct {
	// T0 and T1 are the per-SDO CPU costs (seconds of CPU at 100%
	// allocation) in states 0 and 1.
	T0, T1 float64
	// Rho is the stationary fraction of time spent in state 1 (0 ≤ Rho ≤ 1).
	Rho float64
	// LambdaS scales the mean state dwell time: mean dwell in state 1 is
	// LambdaS·DwellUnit·Rho·2 and in state 0 LambdaS·DwellUnit·(1−Rho)·2,
	// which keeps the stationary split at Rho while LambdaS controls how
	// infrequently the PE switches state — the paper's burstiness knob
	// ("a large value of λ_S signifies that the PE switches between its
	// processing states infrequently").
	LambdaS float64
	// DwellUnit converts the dimensionless λ_S into seconds. The paper does
	// not state the unit; we use 10 ms so λ_S = 10 gives 100 ms mean dwells
	// against a Δt of 10 ms (sub-second burstiness, as §V requires).
	DwellUnit float64
	// MeanMult is λ_m, the mean number of output SDOs per consumed SDO.
	// A value of 1 makes multiplicity deterministic 1; values > 1 draw
	// from a geometric distribution with that mean.
	MeanMult float64
}

// DefaultServiceParams returns the paper's §VI-C settings: λ_S = 10,
// λ_m = 1, ρ = 0.5, T0 = 2 ms, T1 = 20 ms.
func DefaultServiceParams() ServiceParams {
	return ServiceParams{T0: 0.002, T1: 0.020, Rho: 0.5, LambdaS: 10, DwellUnit: 0.010, MeanMult: 1}
}

// MeanCost returns the stationary arithmetic mean per-SDO CPU cost E[T]:
// the CPU needed per SDO when the PE keeps up with its arrivals (each SDO
// is served in whatever state it lands in).
func (p ServiceParams) MeanCost() float64 {
	return (1-p.Rho)*p.T0 + p.Rho*p.T1
}

// EffectiveCost returns the harmonic-mean per-SDO cost 1/E[1/T]: the cost
// that determines a *backlogged* PE's sustainable throughput. A PE with
// CPU share c and standing work drains at c/T_state instantaneously, so
// its time-averaged capacity is c·((1−ρ)/T0 + ρ/T1) SDOs/sec — higher
// than c/E[T] because fast states process disproportionately many SDOs.
// Capacity planning (tier 1, load calibration) must use this; per-SDO
// budgeting in the simulator uses the instantaneous state cost directly.
func (p ServiceParams) EffectiveCost() float64 {
	return 1 / ((1-p.Rho)/p.T0 + p.Rho/p.T1)
}

// meanDwell returns the mean dwell time of the given state, shaped so the
// stationary fraction of time in state 1 equals Rho.
func (p ServiceParams) meanDwell(state int) float64 {
	base := p.LambdaS * p.DwellUnit
	if base <= 0 {
		base = 0.1
	}
	if state == 1 {
		return 2 * base * p.Rho
	}
	return 2 * base * (1 - p.Rho)
}

// Service is the runtime instance of the two-state model for one PE. It
// advances its modulating chain in continuous time: CostAt(t) returns the
// per-SDO cost in effect at simulation time t.
type Service struct {
	params     ServiceParams
	rng        *sim.Rand
	state      int
	nextSwitch float64
}

// NewService creates a service model starting in a state drawn from the
// stationary distribution.
func NewService(params ServiceParams, rng *sim.Rand) *Service {
	if params.T0 <= 0 || params.T1 <= 0 {
		panic("workload: service costs must be positive")
	}
	if params.Rho < 0 || params.Rho > 1 {
		panic("workload: Rho must be in [0,1]")
	}
	s := &Service{params: params, rng: rng}
	if rng.Float64() < params.Rho {
		s.state = 1
	}
	s.nextSwitch = rng.Exp(params.meanDwell(s.state))
	return s
}

// advance moves the modulating chain forward to time t.
func (s *Service) advance(t float64) {
	// Degenerate ρ: never dwell in the impossible state.
	for s.nextSwitch <= t {
		at := s.nextSwitch
		s.state = 1 - s.state
		if (s.state == 1 && s.params.Rho == 0) || (s.state == 0 && s.params.Rho == 1) {
			s.state = 1 - s.state
		}
		s.nextSwitch = at + s.rng.Exp(s.params.meanDwell(s.state))
		if s.nextSwitch <= at {
			// Zero-length dwell guard: nudge forward to guarantee progress.
			s.nextSwitch = at + 1e-9
		}
	}
}

// CostAt returns the per-SDO CPU cost (seconds) in effect at time t. Calls
// must use non-decreasing t.
func (s *Service) CostAt(t float64) float64 {
	s.advance(t)
	if s.state == 1 {
		return s.params.T1
	}
	return s.params.T0
}

// StateAt returns the modulating state (0 or 1) at time t.
func (s *Service) StateAt(t float64) int {
	s.advance(t)
	return s.state
}

// Multiplicity draws the number of output SDOs produced by one consumed
// SDO (the paper's M with mean λ_m).
func (s *Service) Multiplicity() int {
	m := s.params.MeanMult
	if m <= 1 {
		return 1
	}
	return s.rng.Geometric(1 / m)
}

// Params returns the model parameters.
func (s *Service) Params() ServiceParams { return s.params }
