package workload

import (
	"math"
	"testing"

	"aces/internal/sim"
)

// empiricalRate draws n arrivals and returns the measured mean rate.
func empiricalRate(p ArrivalProcess, n int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		iv := p.NextInterval()
		if iv <= 0 {
			return math.NaN()
		}
		total += iv
	}
	return float64(n) / total
}

func TestDeterministicRate(t *testing.T) {
	d := NewDeterministic(50)
	if d.MeanRate() != 50 {
		t.Errorf("MeanRate = %g", d.MeanRate())
	}
	if got := empiricalRate(d, 1000); math.Abs(got-50) > 1e-9 {
		t.Errorf("empirical rate = %g, want 50", got)
	}
}

func TestDeterministicValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewDeterministic(0)
}

func TestPoissonRate(t *testing.T) {
	p := NewPoisson(30, sim.NewRand(1))
	if p.MeanRate() != 30 {
		t.Errorf("MeanRate = %g", p.MeanRate())
	}
	got := empiricalRate(p, 100000)
	if math.Abs(got-30)/30 > 0.02 {
		t.Errorf("empirical rate = %g, want 30 ± 2%%", got)
	}
}

func TestOnOffMeanRateAndBurstiness(t *testing.T) {
	// peak 100/s, 50% duty cycle → mean 50/s.
	s := NewOnOff(100, 0.1, 0.1, sim.NewRand(2))
	if math.Abs(s.MeanRate()-50) > 1e-9 {
		t.Errorf("MeanRate = %g, want 50", s.MeanRate())
	}
	got := empiricalRate(s, 200000)
	if math.Abs(got-50)/50 > 0.05 {
		t.Errorf("empirical rate = %g, want 50 ± 5%%", got)
	}
}

func TestOnOffIsBurstierThanPoisson(t *testing.T) {
	// Squared coefficient of variation of inter-arrivals: Poisson has
	// CV² = 1; an on/off source with long dwells must exceed it.
	cv2 := func(p ArrivalProcess, n int) float64 {
		var sum, sq float64
		for i := 0; i < n; i++ {
			iv := p.NextInterval()
			sum += iv
			sq += iv * iv
		}
		mean := sum / float64(n)
		return (sq/float64(n) - mean*mean) / (mean * mean)
	}
	onoff := cv2(NewOnOff(200, 0.5, 0.5, sim.NewRand(3)), 200000)
	poisson := cv2(NewPoisson(100, sim.NewRand(3)), 200000)
	if onoff <= poisson*1.5 {
		t.Errorf("on/off CV² = %.2f should exceed Poisson CV² = %.2f", onoff, poisson)
	}
}

func TestOnOffZeroOffDwellDegeneratesToPoisson(t *testing.T) {
	s := NewOnOff(40, 1, 0, sim.NewRand(4))
	if math.Abs(s.MeanRate()-40) > 1e-9 {
		t.Errorf("MeanRate = %g, want 40", s.MeanRate())
	}
	got := empiricalRate(s, 50000)
	if math.Abs(got-40)/40 > 0.05 {
		t.Errorf("empirical rate = %g, want 40", got)
	}
}

func TestTraceCyclesAndValidates(t *testing.T) {
	tr, err := NewTrace([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 3 / 0.6
	if math.Abs(tr.MeanRate()-wantMean) > 1e-9 {
		t.Errorf("MeanRate = %g, want %g", tr.MeanRate(), wantMean)
	}
	got := []float64{tr.NextInterval(), tr.NextInterval(), tr.NextInterval(), tr.NextInterval()}
	if got[3] != 0.1 {
		t.Errorf("trace should cycle: %v", got)
	}
	if _, err := NewTrace(nil); err == nil {
		t.Errorf("empty trace should error")
	}
	if _, err := NewTrace([]float64{0.1, -1}); err == nil {
		t.Errorf("negative interval should error")
	}
	// The trace must copy its input.
	src := []float64{0.5, 0.5}
	tr2, _ := NewTrace(src)
	src[0] = 99
	if tr2.NextInterval() != 0.5 {
		t.Errorf("trace aliases caller slice")
	}
}

func TestServiceStationaryFraction(t *testing.T) {
	p := DefaultServiceParams()
	svc := NewService(p, sim.NewRand(5))
	var inSlow int
	n := 200000
	dt := 0.001
	for i := 0; i < n; i++ {
		if svc.StateAt(float64(i)*dt) == 1 {
			inSlow++
		}
	}
	frac := float64(inSlow) / float64(n)
	if math.Abs(frac-p.Rho) > 0.03 {
		t.Errorf("fraction in state 1 = %.3f, want %.2f ± 0.03", frac, p.Rho)
	}
}

func TestServiceCosts(t *testing.T) {
	p := DefaultServiceParams()
	svc := NewService(p, sim.NewRand(6))
	for i := 0; i < 1000; i++ {
		c := svc.CostAt(float64(i) * 0.01)
		if c != p.T0 && c != p.T1 {
			t.Fatalf("cost %g is neither T0 nor T1", c)
		}
	}
}

func TestServiceMeanCost(t *testing.T) {
	p := DefaultServiceParams()
	want := 0.5*0.002 + 0.5*0.020
	if math.Abs(p.MeanCost()-want) > 1e-12 {
		t.Errorf("MeanCost = %g, want %g", p.MeanCost(), want)
	}
}

func TestServiceDegenerateRho(t *testing.T) {
	p := DefaultServiceParams()
	p.Rho = 0
	svc := NewService(p, sim.NewRand(7))
	for i := 0; i < 1000; i++ {
		if svc.StateAt(float64(i)*0.01) != 0 {
			t.Fatalf("with Rho=0 state must stay 0")
		}
	}
	p.Rho = 1
	svc = NewService(p, sim.NewRand(8))
	for i := 0; i < 1000; i++ {
		if svc.StateAt(float64(i)*0.01) != 1 {
			t.Fatalf("with Rho=1 state must stay 1")
		}
	}
}

func TestServiceDwellScalesWithLambdaS(t *testing.T) {
	// Count state switches over a fixed horizon: larger λ_S → fewer
	// switches (the paper's burstiness knob).
	switches := func(lambdaS float64, seed int64) int {
		p := DefaultServiceParams()
		p.LambdaS = lambdaS
		svc := NewService(p, sim.NewRand(seed))
		prev := svc.StateAt(0)
		n := 0
		for i := 1; i < 100000; i++ {
			cur := svc.StateAt(float64(i) * 0.001)
			if cur != prev {
				n++
				prev = cur
			}
		}
		return n
	}
	fast := switches(1, 9)
	slow := switches(50, 9)
	if slow*5 >= fast {
		t.Errorf("λ_S=50 gave %d switches vs λ_S=1 %d; expected far fewer", slow, fast)
	}
}

func TestServiceMultiplicity(t *testing.T) {
	p := DefaultServiceParams()
	svc := NewService(p, sim.NewRand(10))
	for i := 0; i < 100; i++ {
		if svc.Multiplicity() != 1 {
			t.Fatalf("λ_m = 1 must give deterministic multiplicity 1")
		}
	}
	p.MeanMult = 3
	svc = NewService(p, sim.NewRand(11))
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += float64(svc.Multiplicity())
	}
	mean := sum / float64(n)
	if math.Abs(mean-3)/3 > 0.03 {
		t.Errorf("mean multiplicity = %g, want 3", mean)
	}
}

func TestServiceValidation(t *testing.T) {
	p := DefaultServiceParams()
	p.T0 = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic for T0=0")
			}
		}()
		NewService(p, sim.NewRand(1))
	}()
	p = DefaultServiceParams()
	p.Rho = 1.5
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic for Rho>1")
			}
		}()
		NewService(p, sim.NewRand(1))
	}()
}

func TestEffectiveCostVsMeanCost(t *testing.T) {
	p := DefaultServiceParams()
	// Arithmetic mean: 11 ms; harmonic: 1/(0.5/0.002 + 0.5/0.02) ≈ 3.636 ms.
	if math.Abs(p.MeanCost()-0.011) > 1e-12 {
		t.Errorf("MeanCost = %g", p.MeanCost())
	}
	want := 1.0 / 275.0
	if math.Abs(p.EffectiveCost()-want) > 1e-12 {
		t.Errorf("EffectiveCost = %g, want %g", p.EffectiveCost(), want)
	}
	if p.EffectiveCost() >= p.MeanCost() {
		t.Errorf("harmonic mean must not exceed arithmetic mean")
	}
	// Deterministic service: both coincide.
	d := ServiceParams{T0: 0.004, T1: 0.004, Rho: 0.5}
	if math.Abs(d.MeanCost()-d.EffectiveCost()) > 1e-15 {
		t.Errorf("deterministic costs should match: %g vs %g", d.MeanCost(), d.EffectiveCost())
	}
}

func TestHeavyTailMeanRateAndBurstiness(t *testing.T) {
	h := NewHeavyTail(50, 1.5, 100, sim.NewRand(12))
	if h.MeanRate() != 50 {
		t.Errorf("MeanRate = %g", h.MeanRate())
	}
	got := empiricalRate(h, 400000)
	if math.Abs(got-50)/50 > 0.05 {
		t.Errorf("empirical rate = %g, want 50 ± 5%%", got)
	}
	// Heavier-tailed than Poisson: CV² of gaps above 1.
	var sum, sq float64
	n := 200000
	for i := 0; i < n; i++ {
		iv := h.NextInterval()
		sum += iv
		sq += iv * iv
	}
	mean := sum / float64(n)
	cv2 := (sq/float64(n) - mean*mean) / (mean * mean)
	if cv2 < 1.5 {
		t.Errorf("heavy-tail CV² = %.2f, want > 1.5", cv2)
	}
	// Defaults kick in for degenerate parameters.
	d := NewHeavyTail(10, 0.5, 0.5, sim.NewRand(13))
	if got := empiricalRate(d, 100000); math.Abs(got-10)/10 > 0.05 {
		t.Errorf("defaulted heavy tail rate = %g, want 10", got)
	}
}

func TestHeavyTailValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewHeavyTail(0, 1.5, 100, sim.NewRand(1))
}
