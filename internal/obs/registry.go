package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float value (last-write-wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed bounds (upper-inclusive
// buckets plus a +Inf overflow), tracking sum and count for means.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sumμ   atomic.Int64 // sum in micro-units to stay atomic without CAS loops
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumμ.Add(int64(v * 1e6))
}

// Count returns total observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the running mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumμ.Load()) / 1e6 / float64(n)
}

// Buckets returns (bounds, cumulative-free per-bucket counts); the final
// count is the +Inf overflow bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return h.bounds, out
}

// Quantile estimates the q-quantile (0<q<1) from the buckets, using the
// bucket upper bound as the estimate (conservative). Returns 0 when
// empty; overflow-bucket hits return the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Labels is an ordered label set (PE, node, link, …) attached to a
// metric. Order-insensitive: the registry canonicalizes by sorting keys.
type Labels map[string]string

// key renders name+labels canonically: name{k1=v1,k2=v2} with keys sorted.
func metricKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// MetricPoint is one metric's value in a snapshot.
type MetricPoint struct {
	// Key is the canonical name{labels} identifier.
	Key string `json:"key"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value is the counter total, gauge level, or histogram mean.
	Value float64 `json:"value"`
	// Count is set for histograms (observation count).
	Count int64 `json:"count,omitempty"`
	// P99 is set for histograms.
	P99 float64 `json:"p99,omitempty"`
}

// SnapshotFrame is one timestamped registry snapshot.
type SnapshotFrame struct {
	Now    float64       `json:"now"`
	Points []MetricPoint `json:"points"`
}

// Sink receives periodic registry snapshots — the time-series backend the
// Fig.-style stability series are reconstructed from.
type Sink interface {
	Record(frame SnapshotFrame)
}

// MemorySink retains the most recent frames in memory.
type MemorySink struct {
	mu     sync.Mutex
	frames []SnapshotFrame
	next   int
	max    int
}

// NewMemorySink retains up to max frames (≤0 defaults to 600 — a minute
// of 10 Hz sampling).
func NewMemorySink(max int) *MemorySink {
	if max <= 0 {
		max = 600
	}
	return &MemorySink{max: max}
}

// Record implements Sink.
func (m *MemorySink) Record(frame SnapshotFrame) {
	m.mu.Lock()
	if len(m.frames) < m.max {
		m.frames = append(m.frames, frame)
	} else {
		m.frames[m.next] = frame
		m.next = (m.next + 1) % len(m.frames)
	}
	m.mu.Unlock()
}

// Frames returns the retained frames oldest-first.
func (m *MemorySink) Frames() []SnapshotFrame {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SnapshotFrame, 0, len(m.frames))
	out = append(out, m.frames[m.next:]...)
	out = append(out, m.frames[:m.next]...)
	return out
}

// Series extracts one metric's (time, value) pairs from the retained
// frames — convenience for tests and plotting.
func (m *MemorySink) Series(key string) (ts, vs []float64) {
	for _, f := range m.Frames() {
		for _, p := range f.Points {
			if p.Key == key {
				ts = append(ts, f.Now)
				vs = append(vs, p.Value)
				break
			}
		}
	}
	return ts, vs
}

// registryEntry pairs a metric with its rendering.
type registryEntry struct {
	kind string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named live metrics. Registration is rare (setup time) and
// takes a write lock; reads during Snapshot take a read lock; the metric
// objects themselves are lock-free atomics, so instrumented hot paths
// never contend with snapshots.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*registryEntry
	sink    Sink
}

// NewRegistry returns an empty registry. sink may be nil (Flush becomes a
// snapshot-only no-op).
func NewRegistry(sink Sink) *Registry {
	return &Registry{entries: make(map[string]*registryEntry), sink: sink}
}

// Counter registers (or returns the existing) counter name{labels}.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok && e.c != nil {
		return e.c
	}
	c := &Counter{}
	r.entries[key] = &registryEntry{kind: "counter", c: c}
	return c
}

// Gauge registers (or returns the existing) gauge name{labels}.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok && e.g != nil {
		return e.g
	}
	g := &Gauge{}
	r.entries[key] = &registryEntry{kind: "gauge", g: g}
	return g
}

// Histogram registers (or returns the existing) histogram name{labels}
// with the given upper bounds (sorted ascending; a copy is taken).
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok && e.h != nil {
		return e.h
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	r.entries[key] = &registryEntry{kind: "histogram", h: h}
	return h
}

// Snapshot returns every metric's current value sorted by key.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MetricPoint, 0, len(r.entries))
	for key, e := range r.entries {
		p := MetricPoint{Key: key, Kind: e.kind}
		switch {
		case e.c != nil:
			p.Value = float64(e.c.Value())
		case e.g != nil:
			p.Value = e.g.Value()
		case e.h != nil:
			p.Value = e.h.Mean()
			p.Count = e.h.Count()
			p.P99 = e.h.Quantile(0.99)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Flush snapshots the registry at virtual time now and hands the frame to
// the sink, if any. The scheduler tick calls this on its sampling cadence.
func (r *Registry) Flush(now float64) SnapshotFrame {
	frame := SnapshotFrame{Now: now, Points: r.Snapshot()}
	r.mu.RLock()
	sink := r.sink
	r.mu.RUnlock()
	if sink != nil {
		sink.Record(frame)
	}
	return frame
}

// SetSink replaces the snapshot sink (nil disables).
func (r *Registry) SetSink(s Sink) {
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}
