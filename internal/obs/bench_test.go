package obs

import (
	"testing"

	"aces/internal/sdo"
)

// emitHot mirrors the live runtime's emit-path instrumentation guard: the
// tracer pointer is checked, and only SDOs carrying a nonzero trace ID
// reach Record. With tr == nil (observability off) the whole hook must
// compile down to a nil check — BenchmarkObsDisabledOverhead measures
// exactly that increment over the bare baseline.
//
//go:noinline
func emitHot(tr *Tracer, s *sdo.SDO, now float64) int {
	work := s.Hops + 1 // stand-in for the real forwarding work
	if tr != nil && s.Trace != 0 {
		tr.Record(Span{Trace: s.Trace, PE: 1, Hops: int32(s.Hops), Enqueue: s.TraceEnq, Done: now})
	}
	return work
}

//go:noinline
func emitBare(s *sdo.SDO) int {
	return s.Hops + 1
}

var benchSink int

// BenchmarkObsDisabledOverhead is the overhead-contract benchmark: the
// emit path with a nil tracer. Compare against BenchmarkObsBaselineEmit —
// the delta is the cost a deployment that never enables tracing pays
// (≤ 5 ns/op required; in practice well under 1 ns).
func BenchmarkObsDisabledOverhead(b *testing.B) {
	s := sdo.SDO{Hops: 3}
	var tr *Tracer // observability off
	acc := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += emitHot(tr, &s, 1.0)
	}
	benchSink = acc
}

// BenchmarkObsBaselineEmit is the uninstrumented emit path, for computing
// the disabled-overhead delta.
func BenchmarkObsBaselineEmit(b *testing.B) {
	s := sdo.SDO{Hops: 3}
	acc := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += emitBare(&s)
	}
	benchSink = acc
}

// BenchmarkObsUntracedSDO: tracer configured but this SDO not sampled —
// the common case at low sampling rates (nil check + field compare).
func BenchmarkObsUntracedSDO(b *testing.B) {
	s := sdo.SDO{Hops: 3} // Trace == 0
	tr := NewTracer(1000, 1024, 1)
	acc := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += emitHot(tr, &s, 1.0)
	}
	benchSink = acc
}

// BenchmarkObsRecord is the full record path for a sampled SDO: one
// ring-buffer write under a short mutex, no allocations.
func BenchmarkObsRecord(b *testing.B) {
	s := sdo.SDO{Hops: 3, Trace: 99}
	tr := NewTracer(1, 4096, 1)
	acc := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += emitHot(tr, &s, 1.0)
	}
	benchSink = acc
	if tr.SpanCount() != b.N {
		b.Fatalf("recorded %d spans, want %d", tr.SpanCount(), b.N)
	}
}

// BenchmarkObsRegistrySample is the scheduler-tick sampling cost for one
// PE's gauges (three atomic stores).
func BenchmarkObsRegistrySample(b *testing.B) {
	r := NewRegistry(nil)
	occ := r.Gauge("buffer_occupancy", Labels{"pe": "0"})
	tok := r.Gauge("tokens", Labels{"pe": "0"})
	rmax := r.Gauge("rmax", Labels{"pe": "0"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ.Set(float64(i))
		tok.Set(float64(i) * 0.5)
		rmax.Set(float64(i) * 2)
	}
}
