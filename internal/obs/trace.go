// Package obs is the observability subsystem: per-SDO distributed
// tracing, a live telemetry registry, and the HTTP debug handler the
// aces-spc node endpoint serves. The paper's argument is time-resolved —
// buffer occupancies converging to b₀, r_max tracking ρ, throughput not
// oscillating (§IV, §V-C) — and this package makes those series (and the
// journey of any single SDO through the DAG) visible on a *live* cluster
// instead of only in the frozen post-run metrics.Report.
//
// Overhead contract: every hook on the data path is gated on a nil
// receiver or a zero trace ID, so a deployment that does not configure a
// Tracer pays no more than a nil check per emit (see
// BenchmarkObsDisabledOverhead). Span recording itself is a fixed-size
// ring-buffer write under a single short mutex; there are no allocations
// on the record path.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Event classifies what ended a span at one hop.
type Event uint8

// Span terminal states. A trace is "complete" once any of its spans
// carries a terminal event (egress or one of the loss events).
const (
	// EventProcessed: the SDO was consumed and its outputs forwarded.
	EventProcessed Event = iota
	// EventIngress: the SDO entered the system at a source.
	EventIngress
	// EventEgress: delivered at a weighted output stream (terminal).
	EventEgress
	// EventShed: refused by the load-shedding comparator (terminal).
	EventShed
	// EventDrop: lost to buffer overflow (terminal).
	EventDrop
	// EventUplinkDrop: lost at a cross-partition uplink (terminal).
	EventUplinkDrop
	// EventPanic: the SDO died with a panicking processor; the supervisor
	// recovered the PE but the in-flight SDO is gone (terminal).
	EventPanic
)

// String implements fmt.Stringer for JSONL readability.
func (e Event) String() string {
	switch e {
	case EventProcessed:
		return "processed"
	case EventIngress:
		return "ingress"
	case EventEgress:
		return "egress"
	case EventShed:
		return "shed"
	case EventDrop:
		return "drop"
	case EventUplinkDrop:
		return "uplink_drop"
	case EventPanic:
		return "panic"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// Terminal reports whether the event ends its trace branch.
func (e Event) Terminal() bool {
	switch e {
	case EventEgress, EventShed, EventDrop, EventUplinkDrop, EventPanic:
		return true
	}
	return false
}

// MarshalJSON renders events as their names.
func (e Event) MarshalJSON() ([]byte, error) { return json.Marshal(e.String()) }

// Span is one hop of a sampled SDO's journey: which PE on which node
// touched it, when it entered that PE's input buffer, when service began,
// and when it was done (emitted, delivered, or lost). Times are the
// substrate's virtual seconds — wall-clock-scaled in the live runtime,
// simulated time in streamsim — so spans line up with the run report and
// the telemetry series of the same process.
type Span struct {
	Trace uint64 `json:"trace"`
	// PE and Node locate the hop; PE is -1 for losses before any PE
	// (unroutable injects).
	PE   int32 `json:"pe"`
	Node int32 `json:"node"`
	// Hops is the processing depth of the SDO at this hop.
	Hops int32 `json:"hops"`
	// Enqueue, Dequeue and Done are virtual-second timestamps: input
	// buffer entry, service start, and span end. Terminal loss spans
	// carry only Done.
	Enqueue float64 `json:"enq"`
	Dequeue float64 `json:"deq"`
	Done    float64 `json:"done"`
	Event   Event   `json:"event"`
}

// Trace is a reassembled trace: every retained span sharing one ID,
// ordered as recorded. Cross-partition traces are stitched by merging the
// two processes' Traces() output on ID.
type Trace struct {
	ID    uint64 `json:"id"`
	Spans []Span `json:"spans"`
	// Complete reports whether a terminal event was observed locally.
	Complete bool `json:"complete"`
}

// Tracer samples traces at ingress and collects spans in a fixed-size
// ring. All methods are safe for concurrent use; Record is O(1) and
// allocation-free.
type Tracer struct {
	// every selects 1-in-every ingress SDOs (deterministic head-based
	// sampling; 1 = trace everything).
	every uint64
	salt  uint64
	n     atomic.Uint64 // ingress arrivals seen

	mu    sync.Mutex
	ring  []Span
	next  int
	count int // total spans ever recorded
}

// NewTracer builds a tracer sampling one in `every` ingress SDOs into a
// ring of `capacity` spans. every ≤ 1 traces every SDO; capacity ≤ 0
// defaults to 4096. salt decorrelates trace IDs between processes so a
// partitioned deployment never collides IDs.
func NewTracer(every int, capacity int, salt int64) *Tracer {
	if every < 1 {
		every = 1
	}
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{
		every: uint64(every),
		salt:  splitmix64(uint64(salt) ^ 0x9E3779B97F4A7C15),
		ring:  make([]Span, 0, capacity),
	}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed injection
// used to turn (salt, counter) into trace IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// SampleIngress decides whether the next ingress SDO is traced, returning
// a nonzero trace ID if so and 0 otherwise. Callers stamp the returned ID
// onto the SDO; everything downstream keys off that nonzero ID.
func (t *Tracer) SampleIngress() uint64 {
	n := t.n.Add(1)
	if n%t.every != 0 {
		return 0
	}
	id := splitmix64(t.salt ^ n)
	if id == 0 {
		id = 1 // 0 means "unsampled" on the SDO
	}
	return id
}

// Record appends one span to the ring, overwriting the oldest once full.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % len(t.ring)
	}
	t.count++
	t.mu.Unlock()
}

// Snapshot returns the retained spans oldest-first.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// SpanCount returns the total number of spans ever recorded (including
// ones the ring has since overwritten).
func (t *Tracer) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Traces groups the retained spans by trace ID, most recently touched
// first, returning at most max traces (max ≤ 0 = all).
func (t *Tracer) Traces(max int) []Trace {
	spans := t.Snapshot()
	byID := make(map[uint64]*Trace)
	order := make([]uint64, 0, 16)
	for _, s := range spans {
		tr, ok := byID[s.Trace]
		if !ok {
			tr = &Trace{ID: s.Trace}
			byID[s.Trace] = tr
			order = append(order, s.Trace)
		}
		tr.Spans = append(tr.Spans, s)
		if s.Event.Terminal() {
			tr.Complete = true
		}
	}
	// Most recently touched first: traces appear in ring order, so walk
	// the first-seen order backwards after re-sorting by last span time.
	out := make([]Trace, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Spans[len(out[i].Spans)-1].Done > out[j].Spans[len(out[j].Spans)-1].Done
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// ExportJSONL writes the retained spans oldest-first, one JSON object per
// line — the interchange format for stitching partitioned runs offline.
func (t *Tracer) ExportJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MergeTraces stitches trace groups from several processes (e.g. the two
// partitions of a distributed run) into one list keyed by trace ID. Spans
// keep their per-process timestamps; completeness is the OR of the parts.
func MergeTraces(parts ...[]Trace) []Trace {
	byID := make(map[uint64]*Trace)
	order := make([]uint64, 0)
	for _, part := range parts {
		for _, tr := range part {
			m, ok := byID[tr.ID]
			if !ok {
				m = &Trace{ID: tr.ID}
				byID[tr.ID] = m
				order = append(order, tr.ID)
			}
			m.Spans = append(m.Spans, tr.Spans...)
			m.Complete = m.Complete || tr.Complete
		}
	}
	out := make([]Trace, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}
