package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// DebugOptions wires the debug handler to a running node. Every provider
// is optional: missing ones answer 404, so the same handler serves a bare
// transport relay or a fully instrumented cluster.
type DebugOptions struct {
	// Report returns the node's live run report (served as JSON at
	// /debug/report). Typically cluster.Report(cluster.Now()).
	Report func() any
	// Registry serves /debug/telemetry (current snapshot) when set.
	Registry *Registry
	// Sink, when set alongside Registry, serves the retained time series
	// at /debug/telemetry?series=1.
	Sink *MemorySink
	// Tracer serves /debug/traces when set.
	Tracer *Tracer
	// GraphDOT writes the placement-annotated DOT of the deployed DAG
	// (served at /debug/graph).
	GraphDOT func(w io.Writer) error
	// Health returns the node's failure-domain status — heartbeat
	// membership states, per-PE restart counts, circuit-breaker flags —
	// served as JSON at /debug/health. Typically cluster.Health.
	Health func() any
}

// NewDebugHandler builds the /debug/* inspection mux:
//
//	/debug/report            live metrics.Report JSON
//	/debug/telemetry         registry snapshot (?series=1 for history)
//	/debug/traces            recent traces (?n=K limits, ?complete=1 filters)
//	/debug/traces?jsonl=1    raw span export, one JSON object per line
//	/debug/graph             placement-annotated Graphviz DOT
//	/debug/health            membership states, PE restarts, breakers
func NewDebugHandler(opts DebugOptions) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/debug/report", func(w http.ResponseWriter, req *http.Request) {
		if opts.Report == nil {
			http.NotFound(w, req)
			return
		}
		writeJSON(w, opts.Report())
	})
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, req *http.Request) {
		if opts.Registry == nil {
			http.NotFound(w, req)
			return
		}
		if req.URL.Query().Get("series") != "" && opts.Sink != nil {
			writeJSON(w, opts.Sink.Frames())
			return
		}
		writeJSON(w, opts.Registry.Snapshot())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		if opts.Tracer == nil {
			http.NotFound(w, req)
			return
		}
		q := req.URL.Query()
		if q.Get("jsonl") != "" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = opts.Tracer.ExportJSONL(w)
			return
		}
		max := 50
		if s := q.Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				max = n
			}
		}
		// Filter before truncating: ?n=1&complete=1 means "the most
		// recent complete trace", not "the most recent trace, if complete".
		traces := opts.Tracer.Traces(0)
		if q.Get("complete") != "" {
			kept := traces[:0]
			for _, tr := range traces {
				if tr.Complete {
					kept = append(kept, tr)
				}
			}
			traces = kept
		}
		if len(traces) > max {
			traces = traces[:max]
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/debug/graph", func(w http.ResponseWriter, req *http.Request) {
		if opts.GraphDOT == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		if err := opts.GraphDOT(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, req *http.Request) {
		if opts.Health == nil {
			http.NotFound(w, req)
			return
		}
		writeJSON(w, opts.Health())
	})
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "aces debug endpoints: /debug/report /debug/telemetry /debug/traces /debug/graph /debug/health")
	})
	return mux
}

// DebugServer is a running inspection endpoint.
type DebugServer struct {
	l   net.Listener
	srv *http.Server
}

// ServeDebug binds addr (":0" picks a free port) and serves the debug
// handler until Close. It returns immediately.
func ServeDebug(addr string, opts DebugOptions) (*DebugServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugHandler(opts), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(l) }()
	return &DebugServer{l: l, srv: srv}, nil
}

// Addr returns the bound address.
func (s *DebugServer) Addr() string { return s.l.Addr().String() }

// Close stops the server.
func (s *DebugServer) Close() error { return s.srv.Close() }
