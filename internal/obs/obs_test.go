package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestSampleIngressEveryN(t *testing.T) {
	tr := NewTracer(4, 64, 1)
	sampled := 0
	for i := 0; i < 400; i++ {
		if tr.SampleIngress() != 0 {
			sampled++
		}
	}
	if sampled != 100 {
		t.Errorf("1-in-4 sampling over 400 arrivals gave %d traces, want 100", sampled)
	}
	all := NewTracer(1, 64, 1)
	for i := 0; i < 10; i++ {
		if all.SampleIngress() == 0 {
			t.Fatalf("every=1 must sample every arrival")
		}
	}
}

func TestTraceIDsDistinctAcrossSalts(t *testing.T) {
	a, b := NewTracer(1, 8, 1), NewTracer(1, 8, 2)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[a.SampleIngress()] = true
		seen[b.SampleIngress()] = true
	}
	if len(seen) != 200 {
		t.Errorf("expected 200 distinct IDs across two salted tracers, got %d", len(seen))
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(1, 4, 1)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Trace: uint64(i) + 1, Done: float64(i)})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := uint64(6 + i + 1); s.Trace != want {
			t.Errorf("ring[%d].Trace = %d, want %d (oldest-first)", i, s.Trace, want)
		}
	}
	if tr.SpanCount() != 10 {
		t.Errorf("SpanCount = %d, want 10", tr.SpanCount())
	}
}

func TestTracesGroupingAndCompleteness(t *testing.T) {
	tr := NewTracer(1, 64, 1)
	tr.Record(Span{Trace: 7, PE: 0, Done: 1, Event: EventProcessed})
	tr.Record(Span{Trace: 7, PE: 1, Done: 2, Event: EventEgress})
	tr.Record(Span{Trace: 9, PE: 0, Done: 3, Event: EventProcessed})
	traces := tr.Traces(0)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	// Most recently touched first: trace 9 (Done=3) before trace 7.
	if traces[0].ID != 9 || traces[1].ID != 7 {
		t.Errorf("trace order = %d,%d; want 9,7", traces[0].ID, traces[1].ID)
	}
	if traces[0].Complete {
		t.Errorf("trace 9 has no terminal span but is marked complete")
	}
	if !traces[1].Complete || len(traces[1].Spans) != 2 {
		t.Errorf("trace 7 should be complete with 2 spans: %+v", traces[1])
	}
	if got := tr.Traces(1); len(got) != 1 {
		t.Errorf("Traces(1) returned %d", len(got))
	}
}

func TestExportJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(1, 16, 1)
	tr.Record(Span{Trace: 3, PE: 2, Node: 1, Hops: 4, Enqueue: 0.5, Dequeue: 0.6, Done: 0.7, Event: EventEgress})
	var buf bytes.Buffer
	if err := tr.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("JSONL line not valid JSON: %v", err)
	}
	if got["event"] != "egress" || got["trace"] != float64(3) {
		t.Errorf("exported span mangled: %v", got)
	}
}

func TestMergeTracesStitchesPartitions(t *testing.T) {
	a := []Trace{{ID: 5, Spans: []Span{{Trace: 5, Node: 0, Event: EventProcessed}}}}
	b := []Trace{{ID: 5, Spans: []Span{{Trace: 5, Node: 1, Event: EventEgress}}, Complete: true}}
	merged := MergeTraces(a, b)
	if len(merged) != 1 || len(merged[0].Spans) != 2 || !merged[0].Complete {
		t.Errorf("merge failed: %+v", merged)
	}
}

func TestRecordConcurrent(t *testing.T) {
	tr := NewTracer(1, 128, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(Span{Trace: uint64(g*1000 + i + 1)})
			}
		}(g)
	}
	wg.Wait()
	if tr.SpanCount() != 8000 {
		t.Errorf("SpanCount = %d, want 8000", tr.SpanCount())
	}
	if got := len(tr.Snapshot()); got != 128 {
		t.Errorf("ring kept %d spans, want 128", got)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("sheds_total", Labels{"pe": "3"})
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d", c.Value())
	}
	// Re-registering returns the same metric.
	if r.Counter("sheds_total", Labels{"pe": "3"}) != c {
		t.Errorf("re-registration created a new counter")
	}
	g := r.Gauge("buffer_occupancy", Labels{"pe": "3", "node": "1"})
	g.Set(17.5)
	if g.Value() != 17.5 {
		t.Errorf("gauge = %g", g.Value())
	}
	h := r.Histogram("latency_s", nil, []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5) // overflow bucket
	if h.Count() != 3 {
		t.Errorf("histogram count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Errorf("p50 = %g, want 0.1", q)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	// Sorted by key, labels canonicalized (node before pe).
	if snap[0].Key != "buffer_occupancy{node=1,pe=3}" {
		t.Errorf("first key = %q", snap[0].Key)
	}
	if snap[1].Kind != "histogram" || snap[1].Count != 3 {
		t.Errorf("histogram point wrong: %+v", snap[1])
	}
	if snap[2].Key != "sheds_total{pe=3}" || snap[2].Value != 3 {
		t.Errorf("counter point wrong: %+v", snap[2])
	}
}

func TestRegistryFlushToSink(t *testing.T) {
	sink := NewMemorySink(3)
	r := NewRegistry(sink)
	g := r.Gauge("rmax", Labels{"pe": "0"})
	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		r.Flush(float64(i))
	}
	frames := sink.Frames()
	if len(frames) != 3 {
		t.Fatalf("sink kept %d frames, want 3", len(frames))
	}
	if frames[0].Now != 2 || frames[2].Now != 4 {
		t.Errorf("frames not oldest-first after wrap: %v %v", frames[0].Now, frames[2].Now)
	}
	ts, vs := sink.Series("rmax{pe=0}")
	if len(ts) != 3 || vs[2] != 4 {
		t.Errorf("series extraction wrong: %v %v", ts, vs)
	}
}

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Gauge("tokens", Labels{"pe": "1"}).Set(2.5)
	tr := NewTracer(1, 16, 1)
	tr.Record(Span{Trace: 11, Event: EventEgress, Done: 1})
	srv, err := ServeDebug("127.0.0.1:0", DebugOptions{
		Report:   func() any { return map[string]any{"weighted_throughput": 42.0} },
		Registry: reg,
		Tracer:   tr,
		GraphDOT: func(w io.Writer) error { _, err := io.WriteString(w, "digraph aces {}\n"); return err },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/debug/report"); code != 200 || !strings.Contains(body, "weighted_throughput") {
		t.Errorf("/debug/report: %d %q", code, body)
	}
	if code, body := get("/debug/telemetry"); code != 200 || !strings.Contains(body, "tokens{pe=1}") {
		t.Errorf("/debug/telemetry: %d %q", code, body)
	}
	if code, body := get("/debug/traces"); code != 200 || !strings.Contains(body, `"complete": true`) {
		t.Errorf("/debug/traces: %d %q", code, body)
	}
	if code, body := get("/debug/traces?jsonl=1"); code != 200 || !strings.Contains(body, `"egress"`) {
		t.Errorf("/debug/traces?jsonl=1: %d %q", code, body)
	}
	if code, body := get("/debug/graph"); code != 200 || !strings.Contains(body, "digraph") {
		t.Errorf("/debug/graph: %d %q", code, body)
	}
	if code, _ := get("/debug/"); code != 200 {
		t.Errorf("/debug/ index: %d", code)
	}
}

func TestDebugMissingProviders404(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/report", "/debug/telemetry", "/debug/traces", "/debug/graph"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s with no provider: %d, want 404", path, resp.StatusCode)
		}
	}
}
