package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %g", m.At(1, 2))
	}
	c := m.Clone()
	c.Set(1, 2, 9)
	if m.At(1, 2) != 7 {
		t.Errorf("Clone aliases data")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	New(0, 3)
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{2, -1}, {0, 3}})
	p := Mul(a, Identity(2))
	if MaxAbsDiff(a, p) != 0 {
		t.Errorf("A·I ≠ A")
	}
	p = Mul(Identity(2), a)
	if MaxAbsDiff(a, p) != 0 {
		t.Errorf("I·A ≠ A")
	}
}

func TestMulKnownProduct(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Errorf("product:\n%v want\n%v", c, want)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	s := Add(a, b)
	want := FromRows([][]float64{{5, 5}, {5, 5}})
	if MaxAbsDiff(s, want) != 0 {
		t.Errorf("Add wrong: %v", s)
	}
	d := Sub(s, b)
	if MaxAbsDiff(d, a) != 0 {
		t.Errorf("Sub wrong: %v", d)
	}
	sc := Scale(2, a)
	if sc.At(1, 1) != 8 {
		t.Errorf("Scale wrong: %v", sc)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := FromRows([][]float64{{5}, {10}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x.At(0, 0), 1, 1e-12) || !almostEq(x.At(1, 0), 3, 1e-12) {
		t.Errorf("solution = (%g, %g), want (1, 3)", x.At(0, 0), x.At(1, 0))
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero pivot forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	b := FromRows([][]float64{{2}, {3}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x.At(0, 0), 3, 1e-12) || !almostEq(x.At(1, 0), 2, 1e-12) {
		t.Errorf("pivoted solution = (%g, %g), want (3, 2)", x.At(0, 0), x.At(1, 0))
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Identity(2)); err == nil {
		t.Errorf("expected singular-matrix error")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	rect := New(2, 3)
	if _, err := Solve(rect, New(2, 1)); err == nil {
		t.Errorf("expected error for non-square A")
	}
	sq := Identity(2)
	if _, err := Solve(sq, New(3, 1)); err == nil {
		t.Errorf("expected error for mismatched b")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant → nonsingular
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := MaxAbsDiff(Mul(a, inv), Identity(n)); d > 1e-9 {
			t.Errorf("trial %d: ‖A·A⁻¹ − I‖∞ = %g", trial, d)
		}
	}
}

func TestSpectralRadiusDiagonal(t *testing.T) {
	a := FromRows([][]float64{{0.5, 0}, {0, -0.9}})
	if r := SpectralRadius(a); !almostEq(r, 0.9, 1e-6) {
		t.Errorf("ρ = %g, want 0.9", r)
	}
}

func TestSpectralRadiusRotation(t *testing.T) {
	// Scaled rotation: eigenvalues are 0.8·e^{±iθ}, so ρ = 0.8. Plain power
	// iteration oscillates here; Gelfand must not.
	θ := 0.7
	a := FromRows([][]float64{
		{0.8 * math.Cos(θ), -0.8 * math.Sin(θ)},
		{0.8 * math.Sin(θ), 0.8 * math.Cos(θ)},
	})
	if r := SpectralRadius(a); !almostEq(r, 0.8, 1e-5) {
		t.Errorf("ρ = %g, want 0.8", r)
	}
}

func TestSpectralRadiusNilpotent(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {0, 0}})
	if r := SpectralRadius(a); r > 1e-6 {
		t.Errorf("ρ(nilpotent) = %g, want 0", r)
	}
}

func TestSpectralRadiusUnstable(t *testing.T) {
	a := FromRows([][]float64{{1.3, 0.2}, {0, 1.1}})
	if r := SpectralRadius(a); !almostEq(r, 1.3, 1e-5) {
		t.Errorf("ρ = %g, want 1.3", r)
	}
}

// Property: Solve(a, b) actually satisfies a·x = b for random well-
// conditioned systems.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+2*float64(n))
		}
		b := New(n, 1)
		for i := 0; i < n; i++ {
			b.Set(i, 0, rng.NormFloat64()*10)
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(Mul(a, x), b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ρ(A) computed by Gelfand matches the max |eigenvalue| for
// random 2×2 matrices, where the eigenvalues have a closed form.
func TestSpectralRadius2x2Property(t *testing.T) {
	f := func(a11, a12, a21, a22 int8) bool {
		a := FromRows([][]float64{
			{float64(a11) / 16, float64(a12) / 16},
			{float64(a21) / 16, float64(a22) / 16},
		})
		tr := a.At(0, 0) + a.At(1, 1)
		det := a.At(0, 0)*a.At(1, 1) - a.At(0, 1)*a.At(1, 0)
		disc := tr*tr - 4*det
		var want float64
		if disc >= 0 {
			l1 := (tr + math.Sqrt(disc)) / 2
			l2 := (tr - math.Sqrt(disc)) / 2
			want = math.Max(math.Abs(l1), math.Abs(l2))
		} else {
			want = math.Sqrt(det) // complex pair: |λ| = √det (det > 0 here)
		}
		got := SpectralRadius(a)
		return almostEq(got, want, 1e-4*(1+want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	if n := a.FrobeniusNorm(); !almostEq(n, 5, 1e-12) {
		t.Errorf("‖A‖F = %g, want 5", n)
	}
}

func TestStringRendering(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	if a.String() == "" {
		t.Errorf("String should render something")
	}
}
