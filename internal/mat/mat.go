// Package mat implements the small dense-matrix kernel needed by the LQR
// synthesis in internal/control: multiplication, transpose, linear solves
// via partial-pivot LU, inversion, and norm/spectral-radius estimation.
//
// The matrices involved are tiny (the delay-embedded controller state has
// dimension K+L+1 ≤ ~8), so clarity and numerical robustness are preferred
// over cache blocking. The implementation is self-contained (stdlib only).
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero rows×cols matrix. It panics on non-positive dimensions
// (programmer error — all call sites use static shapes).
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("mat: non-positive dimensions")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, copying the data.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: empty rows")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("mat: ragged rows")
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a·b. It panics on shape mismatch.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				c.data[i*c.cols+j] += aik * b.At(k, j)
			}
		}
	}
	return c
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: Add shape mismatch")
	}
	c := a.Clone()
	for i := range c.data {
		c.data[i] += b.data[i]
	}
	return c
}

// Sub returns a − b.
func Sub(a, b *Matrix) *Matrix {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: Sub shape mismatch")
	}
	c := a.Clone()
	for i := range c.data {
		c.data[i] -= b.data[i]
	}
	return c
}

// Scale returns s·a.
func Scale(s float64, a *Matrix) *Matrix {
	c := a.Clone()
	for i := range c.data {
		c.data[i] *= s
	}
	return c
}

// Solve solves a·x = b for x using LU decomposition with partial pivoting,
// where a is square and b has matching row count. It returns an error when
// a is singular to working precision.
func Solve(a, b *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Solve requires square matrix, got %dx%d", a.rows, a.cols)
	}
	if a.rows != b.rows {
		return nil, fmt.Errorf("mat: Solve shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	n := a.rows
	lu := a.Clone()
	x := b.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the row with the largest magnitude in col.
		p, best := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("mat: singular matrix (pivot %g at column %d)", best, col)
		}
		if p != col {
			swapRows(lu, p, col)
			swapRows(x, p, col)
			perm[p], perm[col] = perm[col], perm[p]
		}
		piv := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / piv
			if f == 0 {
				continue
			}
			lu.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-f*lu.At(col, c))
			}
			for c := 0; c < x.cols; c++ {
				x.Set(r, c, x.At(r, c)-f*x.At(col, c))
			}
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		piv := lu.At(col, col)
		for c := 0; c < x.cols; c++ {
			s := x.At(col, c)
			for k := col + 1; k < n; k++ {
				s -= lu.At(col, k) * x.At(k, c)
			}
			x.Set(col, c, s/piv)
		}
	}
	return x, nil
}

func swapRows(m *Matrix, a, b int) {
	ra := m.data[a*m.cols : (a+1)*m.cols]
	rb := m.data[b*m.cols : (b+1)*m.cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// Inverse returns a⁻¹ or an error when a is singular.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// MaxAbsDiff returns max |a_ij − b_ij|, used as a fixed-point convergence
// criterion by the Riccati iteration.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	var d float64
	for i := range a.data {
		if v := math.Abs(a.data[i] - b.data[i]); v > d {
			d = v
		}
	}
	return d
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SpectralRadius estimates the spectral radius of a square matrix via the
// Gelfand formula ρ(A) = lim ‖Aᵏ‖^{1/k}, evaluated by repeated squaring
// with normalization to avoid overflow. This is robust for non-symmetric
// matrices with complex eigenvalue pairs (where plain power iteration
// oscillates). Matrices here are small, so 30 squarings (k = 2³⁰) are cheap.
//
// Invariant maintained in the loop: A^(2^i) = m · exp(logScale), where m is
// the current normalized matrix. Squaring both sides after normalizing by
// n = ‖m‖ gives logScale' = 2·(logScale + log n).
func SpectralRadius(a *Matrix) float64 {
	if a.rows != a.cols {
		panic("mat: SpectralRadius requires square matrix")
	}
	const squarings = 30
	m := a.Clone()
	var logScale float64
	for i := 0; i < squarings; i++ {
		n := m.FrobeniusNorm()
		if n == 0 || math.IsNaN(n) {
			return 0
		}
		m = Scale(1/n, m)
		logScale = 2 * (logScale + math.Log(n))
		m = Mul(m, m)
	}
	n := m.FrobeniusNorm()
	if n == 0 {
		return 0
	}
	k := math.Pow(2, squarings)
	return math.Exp((logScale + math.Log(n)) / k)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
			if j < m.cols-1 {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
