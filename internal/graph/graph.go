// Package graph models the application layer of a distributed stream
// processing system: processing elements (PEs) interconnected in a directed
// acyclic graph, placed onto processing nodes (PNs), fed by external source
// streams (paper §III, Fig. 1). It also implements the random topology
// generator the paper's evaluation uses (§VI-A): "a topology generation
// tool that takes as input the number of CPUs in the system, the number of
// ingress, egress and intermediate PEs and the average degree of
// interconnectivity, and outputs a PE graph, the assignment of PEs to CPUs,
// the time-averaged CPU allocations and the parameters for each PE."
package graph

import (
	"fmt"
	"math"

	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

// PE describes one processing element.
type PE struct {
	ID   sdo.PEID   `json:"id"`
	Name string     `json:"name"`
	Node sdo.NodeID `json:"node"`
	// Weight is w_j, the importance of this PE's output stream in the
	// weighted-throughput objective (§III-A). By convention only egress PEs
	// carry positive weight: internal production is not "productive work"
	// until it reaches a system output.
	Weight float64 `json:"weight"`
	// Service holds the two-state processing-cost model (§VI-B).
	Service workload.ServiceParams `json:"service"`
	// Overhead is the paper's b in h_j(c̄) = a·c̄ − b: a fixed rate tax
	// modeling per-invocation setup costs, in SDOs/sec.
	Overhead float64 `json:"overhead"`
	// BufferSize overrides the topology-wide default input-buffer capacity
	// when positive.
	BufferSize int `json:"buffer_size,omitempty"`
	// Join makes a multi-input PE consume one SDO from EACH upstream per
	// firing (a stream join / correlation, the semantics behind the
	// per-upstream constraint of paper Eq. 5), instead of merging all
	// inputs into one queue. Join PEs must have at least two upstream PEs
	// and no external sources; each input gets its own queue of the PE's
	// buffer capacity, and the output inherits the *oldest* input's origin
	// so latency reflects the slowest-arriving component.
	Join bool `json:"join,omitempty"`
	// MaxReplicas caps how far this logical PE may fan out into parallel
	// replicas (0 or 1 = not elastic). Replica slot 0 is the primary on
	// Node; further slots are placed by ReplicaNodes. The elastic tier-1
	// solve chooses how many slots are active — each active replica adds
	// a·c̄ − b capacity but pays the Overhead tax b again. Join PEs cannot
	// replicate (a join's per-upstream pairing is not partitionable by
	// key-hash).
	MaxReplicas int `json:"max_replicas,omitempty"`
	// ReplicaNodes optionally pins replica slots 1..MaxReplicas-1 to
	// nodes. Missing entries are placed round-robin across the nodes of
	// the topology starting after the primary's node.
	ReplicaNodes []sdo.NodeID `json:"replica_nodes,omitempty"`
}

// Replicas returns the replica slot count of PE j: MaxReplicas, floored at
// one (every PE has at least its primary slot).
func (t *Topology) Replicas(j sdo.PEID) int {
	if m := t.PEs[j].MaxReplicas; m > 1 {
		return m
	}
	return 1
}

// ReplicaPlacement returns the node of every replica slot of PE j. Slot 0
// is always the primary's Node; slots named by ReplicaNodes are pinned,
// and any remaining slots go round-robin across the topology's nodes
// starting after the primary.
func (t *Topology) ReplicaPlacement(j sdo.PEID) []sdo.NodeID {
	n := t.Replicas(j)
	out := make([]sdo.NodeID, n)
	out[0] = t.PEs[j].Node
	for r := 1; r < n; r++ {
		if r-1 < len(t.PEs[j].ReplicaNodes) {
			out[r] = t.PEs[j].ReplicaNodes[r-1]
		} else {
			out[r] = sdo.NodeID((int(t.PEs[j].Node) + r) % t.NumNodes)
		}
	}
	return out
}

// Source describes one external input stream entering the system at an
// ingress PE.
type Source struct {
	Stream sdo.StreamID `json:"stream"`
	Target sdo.PEID     `json:"target"`
	// Rate is the long-run mean arrival rate in SDOs/sec.
	Rate float64 `json:"rate"`
	// Burst configures the arrival process shape.
	Burst BurstSpec `json:"burst"`
}

// BurstKind enumerates source arrival processes.
type BurstKind int

// Supported arrival processes.
const (
	BurstDeterministic BurstKind = iota + 1
	BurstPoisson
	BurstOnOff
	// BurstTrace replays recorded inter-arrival intervals (cycling),
	// substituting for the production traces the paper's authors had; the
	// intervals ship inside the topology JSON.
	BurstTrace
	// BurstHeavyTail draws inter-arrival gaps from a bounded Pareto law
	// (tail exponent 1.5, 100:1 truncation) — burstier than any on/off
	// model at the same mean rate.
	BurstHeavyTail
)

// String implements fmt.Stringer.
func (k BurstKind) String() string {
	switch k {
	case BurstDeterministic:
		return "deterministic"
	case BurstPoisson:
		return "poisson"
	case BurstOnOff:
		return "onoff"
	case BurstTrace:
		return "trace"
	case BurstHeavyTail:
		return "heavytail"
	default:
		return fmt.Sprintf("BurstKind(%d)", int(k))
	}
}

// BurstSpec parameterizes a source arrival process.
type BurstSpec struct {
	Kind BurstKind `json:"kind"`
	// PeakFactor is the ON-state rate divided by the mean rate (only for
	// BurstOnOff; must be > 1). Duty cycle follows as 1/PeakFactor.
	PeakFactor float64 `json:"peak_factor,omitempty"`
	// MeanOn is the mean ON-dwell in seconds (only for BurstOnOff).
	MeanOn float64 `json:"mean_on,omitempty"`
	// TraceIntervals are the recorded inter-arrival gaps in seconds (only
	// for BurstTrace). The trace cycles; its empirical mean rate overrides
	// the Source's Rate for replay fidelity.
	TraceIntervals []float64 `json:"trace_intervals,omitempty"`
}

// Build constructs the arrival process for a source with the given mean
// rate.
func (b BurstSpec) Build(rate float64, rng *sim.Rand) (workload.ArrivalProcess, error) {
	switch b.Kind {
	case BurstDeterministic:
		return workload.NewDeterministic(rate), nil
	case BurstPoisson:
		return workload.NewPoisson(rate, rng), nil
	case BurstOnOff:
		pf := b.PeakFactor
		if pf <= 1 {
			return nil, fmt.Errorf("graph: on/off source needs PeakFactor > 1, got %g", pf)
		}
		meanOn := b.MeanOn
		if meanOn <= 0 {
			meanOn = 0.1
		}
		// Duty cycle = 1/pf keeps the mean at rate.
		duty := 1 / pf
		meanOff := meanOn * (1 - duty) / duty
		return workload.NewOnOff(rate*pf, meanOn, meanOff, rng), nil
	case BurstTrace:
		return workload.NewTrace(b.TraceIntervals)
	case BurstHeavyTail:
		return workload.NewHeavyTail(rate, 1.5, 100, rng), nil
	default:
		return nil, fmt.Errorf("graph: unknown burst kind %v", b.Kind)
	}
}

// Topology is a complete application deployment: PEs, their DAG, their
// placement onto nodes, and the external sources.
type Topology struct {
	// PEs are indexed by their ID: PEs[i].ID == PEID(i).
	PEs []PE `json:"pes"`
	// NumNodes is the number of processing nodes.
	NumNodes int `json:"num_nodes"`
	// DefaultBufferSize is the input-buffer capacity B in SDOs for PEs
	// without an override (paper default: 50).
	DefaultBufferSize int `json:"default_buffer_size"`
	// Sources lists the external streams.
	Sources []Source `json:"sources"`
	// Edges lists the DAG edges in insertion order. Maintained by Connect;
	// after JSON unmarshalling call Rebuild to restore the adjacency
	// indexes.
	Edges []Edge `json:"edges"`

	down [][]sdo.PEID
	up   [][]sdo.PEID
}

// Edge is a directed PE-graph edge.
type Edge struct {
	From sdo.PEID `json:"from"`
	To   sdo.PEID `json:"to"`
}

// Rebuild reconstructs the adjacency indexes from PEs and Edges, e.g.
// after JSON unmarshalling. It returns the first edge error encountered.
func (t *Topology) Rebuild() error {
	t.down = make([][]sdo.PEID, len(t.PEs))
	t.up = make([][]sdo.PEID, len(t.PEs))
	edges := t.Edges
	t.Edges = nil
	for _, e := range edges {
		if err := t.Connect(e.From, e.To); err != nil {
			return err
		}
	}
	return nil
}

// New returns an empty topology with the given node count and default
// buffer size.
func New(numNodes, defaultBufferSize int) *Topology {
	return &Topology{NumNodes: numNodes, DefaultBufferSize: defaultBufferSize}
}

// AddPE appends a PE and returns its assigned ID. The caller fills Name,
// Node, Weight and Service; ID is overwritten.
func (t *Topology) AddPE(pe PE) sdo.PEID {
	id := sdo.PEID(len(t.PEs))
	pe.ID = id
	if pe.Name == "" {
		pe.Name = fmt.Sprintf("pe%d", id)
	}
	t.PEs = append(t.PEs, pe)
	t.down = append(t.down, nil)
	t.up = append(t.up, nil)
	return id
}

// Connect adds the edge from → to. Duplicate edges and self-loops are
// rejected; cycles are caught by Validate.
func (t *Topology) Connect(from, to sdo.PEID) error {
	if !t.valid(from) || !t.valid(to) {
		return fmt.Errorf("graph: edge %d→%d references unknown PE", from, to)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on PE %d", from)
	}
	for _, d := range t.down[from] {
		if d == to {
			return fmt.Errorf("graph: duplicate edge %d→%d", from, to)
		}
	}
	t.down[from] = append(t.down[from], to)
	t.up[to] = append(t.up[to], from)
	t.Edges = append(t.Edges, Edge{From: from, To: to})
	return nil
}

// AddSource attaches an external stream to an ingress PE.
func (t *Topology) AddSource(s Source) error {
	if !t.valid(s.Target) {
		return fmt.Errorf("graph: source targets unknown PE %d", s.Target)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("graph: source rate must be positive, got %g", s.Rate)
	}
	if s.Stream == 0 {
		s.Stream = sdo.StreamID(len(t.Sources))
	}
	t.Sources = append(t.Sources, s)
	return nil
}

func (t *Topology) valid(id sdo.PEID) bool {
	return id >= 0 && int(id) < len(t.PEs)
}

// NumPEs returns the PE count.
func (t *Topology) NumPEs() int { return len(t.PEs) }

// Down returns the downstream PEs D(p_j). The returned slice must not be
// mutated.
func (t *Topology) Down(j sdo.PEID) []sdo.PEID { return t.down[j] }

// Up returns the upstream PEs U(p_j). The returned slice must not be
// mutated.
func (t *Topology) Up(j sdo.PEID) []sdo.PEID { return t.up[j] }

// IsEgress reports whether PE j has no downstream PEs.
func (t *Topology) IsEgress(j sdo.PEID) bool { return len(t.down[j]) == 0 }

// IsIngress reports whether PE j is fed by an external source.
func (t *Topology) IsIngress(j sdo.PEID) bool {
	for _, s := range t.Sources {
		if s.Target == j {
			return true
		}
	}
	return false
}

// OnNode returns the IDs of the PEs placed on node n (the paper's N_j set).
func (t *Topology) OnNode(n sdo.NodeID) []sdo.PEID {
	var out []sdo.PEID
	for i := range t.PEs {
		if t.PEs[i].Node == n {
			out = append(out, sdo.PEID(i))
		}
	}
	return out
}

// BufferSize returns the input-buffer capacity of PE j.
func (t *Topology) BufferSize(j sdo.PEID) int {
	if b := t.PEs[j].BufferSize; b > 0 {
		return b
	}
	return t.DefaultBufferSize
}

// SourcesFor returns the sources feeding PE j.
func (t *Topology) SourcesFor(j sdo.PEID) []Source {
	var out []Source
	for _, s := range t.Sources {
		if s.Target == j {
			out = append(out, s)
		}
	}
	return out
}

// TopoOrder returns the PE IDs in a topological order (Kahn's algorithm),
// or an error when the graph has a cycle.
func (t *Topology) TopoOrder() ([]sdo.PEID, error) {
	indeg := make([]int, len(t.PEs))
	for j := range t.PEs {
		indeg[j] = len(t.up[j])
	}
	var queue []sdo.PEID
	for j := range t.PEs {
		if indeg[j] == 0 {
			queue = append(queue, sdo.PEID(j))
		}
	}
	order := make([]sdo.PEID, 0, len(t.PEs))
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		order = append(order, j)
		for _, d := range t.down[j] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != len(t.PEs) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d PEs ordered)", len(order), len(t.PEs))
	}
	return order, nil
}

// Validate checks structural invariants: the graph is a DAG, placements
// reference existing nodes, buffer sizes are sane, every non-ingress PE has
// an upstream, and every ingress PE has a source.
func (t *Topology) Validate() error {
	if t.NumNodes <= 0 {
		return fmt.Errorf("graph: topology needs at least one node")
	}
	if t.DefaultBufferSize <= 0 {
		return fmt.Errorf("graph: DefaultBufferSize must be positive, got %d", t.DefaultBufferSize)
	}
	if len(t.PEs) == 0 {
		return fmt.Errorf("graph: topology has no PEs")
	}
	if _, err := t.TopoOrder(); err != nil {
		return err
	}
	for i := range t.PEs {
		pe := &t.PEs[i]
		if pe.Node < 0 || int(pe.Node) >= t.NumNodes {
			return fmt.Errorf("graph: PE %d placed on invalid node %d (have %d nodes)", i, pe.Node, t.NumNodes)
		}
		if pe.Weight < 0 {
			return fmt.Errorf("graph: PE %d has negative weight %g", i, pe.Weight)
		}
		if pe.Service.T0 <= 0 || pe.Service.T1 <= 0 {
			return fmt.Errorf("graph: PE %d has non-positive service costs", i)
		}
		if len(t.up[i]) == 0 && !t.IsIngress(sdo.PEID(i)) {
			return fmt.Errorf("graph: PE %d has no upstream PE and no source — it would starve", i)
		}
	}
	for _, s := range t.Sources {
		if !t.valid(s.Target) {
			return fmt.Errorf("graph: source %d targets unknown PE %d", s.Stream, s.Target)
		}
		if len(t.up[s.Target]) > 0 {
			return fmt.Errorf("graph: PE %d has both a source and upstream PEs", s.Target)
		}
	}
	for j := range t.PEs {
		if t.PEs[j].Join && len(t.up[j]) < 2 {
			return fmt.Errorf("graph: join PE %d needs at least 2 upstream PEs, has %d", j, len(t.up[j]))
		}
	}
	for j := range t.PEs {
		pe := &t.PEs[j]
		if pe.MaxReplicas <= 1 {
			continue
		}
		if pe.Join {
			return fmt.Errorf("graph: join PE %d cannot replicate (per-upstream pairing is not key-partitionable)", j)
		}
		if len(pe.ReplicaNodes) > pe.MaxReplicas-1 {
			return fmt.Errorf("graph: PE %d names %d replica nodes but has only %d extra slots", j, len(pe.ReplicaNodes), pe.MaxReplicas-1)
		}
		for r, n := range pe.ReplicaNodes {
			if n < 0 || int(n) >= t.NumNodes {
				return fmt.Errorf("graph: PE %d replica slot %d placed on invalid node %d (have %d nodes)", j, r+1, n, t.NumNodes)
			}
		}
	}
	return nil
}

// EgressPEs returns the IDs of all egress PEs.
func (t *Topology) EgressPEs() []sdo.PEID {
	var out []sdo.PEID
	for j := range t.PEs {
		if t.IsEgress(sdo.PEID(j)) {
			out = append(out, sdo.PEID(j))
		}
	}
	return out
}

// IngressPEs returns the IDs of all ingress PEs.
func (t *Topology) IngressPEs() []sdo.PEID {
	var out []sdo.PEID
	for j := range t.PEs {
		if t.IsIngress(sdo.PEID(j)) {
			out = append(out, sdo.PEID(j))
		}
	}
	return out
}

// MaxFanIn returns the largest in-degree in the graph.
func (t *Topology) MaxFanIn() int {
	m := 0
	for _, u := range t.up {
		if len(u) > m {
			m = len(u)
		}
	}
	return m
}

// MaxFanOut returns the largest out-degree in the graph.
func (t *Topology) MaxFanOut() int {
	m := 0
	for _, d := range t.down {
		if len(d) > m {
			m = len(d)
		}
	}
	return m
}

// UnitDemand propagates one SDO/sec from every source through the DAG and
// returns each PE's input rate under that unit load. The input of a PE is
// the sum of its upstream outputs (every downstream PE receives a copy of
// the full stream — §III-D), and outputs scale by the mean multiplicity.
// Used for capacity estimation and load calibration.
func (t *Topology) UnitDemand() ([]float64, error) {
	order, err := t.TopoOrder()
	if err != nil {
		return nil, err
	}
	in := make([]float64, len(t.PEs))
	joinIn := make(map[sdo.PEID][]float64)
	for _, s := range t.Sources {
		in[s.Target] += 1
	}
	for _, j := range order {
		if t.PEs[j].Join {
			// A join fires at the rate of its slowest input.
			rate := math.Inf(1)
			for _, v := range joinIn[j] {
				if v < rate {
					rate = v
				}
			}
			if len(joinIn[j]) < len(t.up[j]) || math.IsInf(rate, 1) {
				rate = 0
			}
			in[j] = rate
		}
		m := t.PEs[j].Service.MeanMult
		if m <= 0 {
			m = 1
		}
		out := in[j] * m
		for _, d := range t.down[j] {
			if t.PEs[d].Join {
				joinIn[d] = append(joinIn[d], out)
			} else {
				in[d] += out
			}
		}
	}
	return in, nil
}

// BottleneckIngressRate returns the largest uniform per-source rate r such
// that, with every PE processed at its stationary mean cost, no node
// exceeds full CPU utilization. This is the fluid capacity of the deployed
// graph; the evaluation drives the system at LoadFactor × this rate.
func (t *Topology) BottleneckIngressRate() (float64, error) {
	demand, err := t.UnitDemand()
	if err != nil {
		return 0, err
	}
	nodeLoad := make([]float64, t.NumNodes) // CPU-sec per sec at unit rate
	for j := range t.PEs {
		nodeLoad[t.PEs[j].Node] += demand[j] * t.PEs[j].Service.EffectiveCost()
	}
	maxLoad := 0.0
	for _, l := range nodeLoad {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad == 0 {
		return 0, fmt.Errorf("graph: no load reaches any node (no sources?)")
	}
	return 1 / maxLoad, nil
}
