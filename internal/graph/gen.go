package graph

import (
	"fmt"
	"sort"

	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

// GenConfig parameterizes the random topology generator. Defaults mirror
// the paper's experimental setup (§VI-C): maximum fan-out 4, maximum fan-in
// 3, 20% of PEs with multiple inputs or outputs, B = 50 SDOs.
type GenConfig struct {
	// NumPEs is the total PE count (ingress + intermediate + egress).
	NumPEs int
	// NumNodes is the processing-node count.
	NumNodes int
	// NumIngress and NumEgress size the boundary layers. Defaults: ~15% of
	// PEs each, at least 1.
	NumIngress, NumEgress int
	// MaxFanIn and MaxFanOut bound vertex degrees (paper: 3 and 4).
	MaxFanIn, MaxFanOut int
	// MultiIOFrac is the fraction of PEs given multiple inputs or outputs
	// (paper: 0.2).
	MultiIOFrac float64
	// Layers is the number of intermediate layers; 0 picks a depth that
	// keeps layers roughly as wide as the ingress tier.
	Layers int
	// Service is the base two-state cost model; per-PE costs are jittered
	// ±30% around it so PEs are heterogeneous.
	Service workload.ServiceParams
	// CostJitter scales the per-PE cost jitter (0 disables, default 0.3).
	CostJitter float64
	// WeightLo and WeightHi bound the uniform egress weights (default
	// [0.5, 2.0]); intermediate PEs get weight 0 per §III-A.
	WeightLo, WeightHi float64
	// LoadFactor drives each source at LoadFactor × the fluid bottleneck
	// capacity; values > 1 create the sustained overload the paper targets
	// ("where over-provisioning is not an option"). Default 1.3.
	LoadFactor float64
	// Burst is the source arrival shape (default: on/off with peak 2×
	// the mean and 100 ms mean ON dwells).
	Burst BurstSpec
	// BufferSize is the per-PE input buffer B in SDOs (paper: 50).
	BufferSize int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenConfig returns the paper's §VI-C configuration for the given
// scale.
func DefaultGenConfig(numPEs, numNodes int, seed int64) GenConfig {
	return GenConfig{
		NumPEs:      numPEs,
		NumNodes:    numNodes,
		MaxFanIn:    3,
		MaxFanOut:   4,
		MultiIOFrac: 0.2,
		Service:     workload.DefaultServiceParams(),
		CostJitter:  0.3,
		WeightLo:    0.5,
		WeightHi:    2.0,
		LoadFactor:  1.3,
		Burst:       BurstSpec{Kind: BurstOnOff, PeakFactor: 2, MeanOn: 0.1},
		BufferSize:  50,
		Seed:        seed,
	}
}

func (c *GenConfig) fillDefaults() error {
	if c.NumPEs < 2 {
		return fmt.Errorf("graph: need at least 2 PEs, got %d", c.NumPEs)
	}
	if c.NumNodes < 1 {
		return fmt.Errorf("graph: need at least 1 node, got %d", c.NumNodes)
	}
	if c.NumIngress <= 0 {
		c.NumIngress = max(1, c.NumPEs*15/100)
	}
	if c.NumEgress <= 0 {
		c.NumEgress = max(1, c.NumPEs*15/100)
	}
	if c.NumIngress+c.NumEgress > c.NumPEs {
		return fmt.Errorf("graph: ingress %d + egress %d exceeds %d PEs", c.NumIngress, c.NumEgress, c.NumPEs)
	}
	if c.MaxFanIn <= 0 {
		c.MaxFanIn = 3
	}
	if c.MaxFanOut <= 0 {
		c.MaxFanOut = 4
	}
	if c.MultiIOFrac < 0 || c.MultiIOFrac > 1 {
		return fmt.Errorf("graph: MultiIOFrac %g out of [0,1]", c.MultiIOFrac)
	}
	if c.Service.T0 == 0 {
		c.Service = workload.DefaultServiceParams()
	}
	if c.WeightHi <= 0 {
		c.WeightLo, c.WeightHi = 0.5, 2.0
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 1.3
	}
	if c.Burst.Kind == 0 {
		c.Burst = BurstSpec{Kind: BurstOnOff, PeakFactor: 2, MeanOn: 0.1}
	}
	if c.BufferSize <= 0 {
		c.BufferSize = 50
	}
	intermediate := c.NumPEs - c.NumIngress - c.NumEgress
	if c.Layers <= 0 {
		width := max(1, c.NumIngress)
		c.Layers = max(1, intermediate/max(1, width))
		if c.Layers > 8 {
			c.Layers = 8
		}
	}
	return nil
}

// Generate builds a random layered DAG topology per the configuration,
// assigns PEs to nodes with load-aware placement, attaches bursty sources
// calibrated to the fluid capacity, and validates the result.
func Generate(cfg GenConfig) (*Topology, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	rng := sim.Substream(cfg.Seed, 0xB0B0)
	t := New(cfg.NumNodes, cfg.BufferSize)

	intermediate := cfg.NumPEs - cfg.NumIngress - cfg.NumEgress
	// Layer sizes: ingress, L intermediate layers (as equal as possible),
	// egress.
	layers := make([][]sdo.PEID, 0, cfg.Layers+2)
	mkPE := func(name string, weight float64) sdo.PEID {
		svc := cfg.Service
		if cfg.CostJitter > 0 {
			j := 1 + rng.Uniform(-cfg.CostJitter, cfg.CostJitter)
			svc.T0 *= j
			svc.T1 *= j
		}
		return t.AddPE(PE{Name: name, Weight: weight, Service: svc})
	}

	ingress := make([]sdo.PEID, cfg.NumIngress)
	for i := range ingress {
		ingress[i] = mkPE(fmt.Sprintf("ingress%d", i), 0)
	}
	layers = append(layers, ingress)
	remaining := intermediate
	for l := 0; l < cfg.Layers && remaining > 0; l++ {
		sz := remaining / (cfg.Layers - l)
		if sz == 0 {
			sz = 1
		}
		layer := make([]sdo.PEID, sz)
		for i := range layer {
			layer[i] = mkPE(fmt.Sprintf("mid%d_%d", l, i), 0)
		}
		layers = append(layers, layer)
		remaining -= sz
	}
	egress := make([]sdo.PEID, cfg.NumEgress)
	for i := range egress {
		egress[i] = mkPE(fmt.Sprintf("egress%d", i), rng.Uniform(cfg.WeightLo, cfg.WeightHi))
	}
	layers = append(layers, egress)

	outDeg := make([]int, t.NumPEs())
	inDeg := make([]int, t.NumPEs())
	connect := func(from, to sdo.PEID) error {
		if err := t.Connect(from, to); err != nil {
			return err
		}
		outDeg[from]++
		inDeg[to]++
		return nil
	}

	// Wire each non-ingress layer to the previous layer: every PE picks
	// 1 parent normally, 2..MaxFanIn with probability MultiIOFrac, among
	// parents that still have fan-out budget.
	for li := 1; li < len(layers); li++ {
		prev := layers[li-1]
		for _, pe := range layers[li] {
			fanIn := 1
			if rng.Float64() < cfg.MultiIOFrac && cfg.MaxFanIn > 1 {
				fanIn = 2 + rng.Intn(cfg.MaxFanIn-1)
			}
			// Candidate parents sorted by least out-degree so fan-out
			// budget spreads evenly; ties broken randomly via Perm.
			perm := rng.Perm(len(prev))
			cands := make([]sdo.PEID, len(prev))
			for i, p := range perm {
				cands[i] = prev[p]
			}
			sort.SliceStable(cands, func(a, b int) bool { return outDeg[cands[a]] < outDeg[cands[b]] })
			wired := 0
			for _, p := range cands {
				if wired >= fanIn {
					break
				}
				if outDeg[p] >= cfg.MaxFanOut {
					continue
				}
				if err := connect(p, pe); err != nil {
					return nil, err
				}
				wired++
			}
			if wired == 0 {
				// Every parent is at max fan-out: steal from the least
				// loaded parent anyway (violating fan-out is better than a
				// starving PE; with paper parameters this never triggers).
				if err := connect(cands[0], pe); err != nil {
					return nil, err
				}
			}
		}
		// Ensure every PE in the previous layer feeds someone.
		for _, p := range prev {
			if outDeg[p] > 0 {
				continue
			}
			kids := layers[li]
			best := kids[0]
			for _, kid := range kids[1:] {
				if inDeg[kid] < inDeg[best] {
					best = kid
				}
			}
			if err := connect(p, best); err != nil {
				return nil, err
			}
		}
	}

	// Sources: one per ingress PE, rate = LoadFactor × fluid capacity.
	// Sources must exist before placement so UnitDemand sees real load.
	for i, pe := range ingress {
		if err := t.AddSource(Source{
			Stream: sdo.StreamID(i + 1),
			Target: pe,
			Rate:   1, // placeholder; calibrated below
			Burst:  cfg.Burst,
		}); err != nil {
			return nil, err
		}
	}
	placePEs(t, rng)
	capRate, err := t.BottleneckIngressRate()
	if err != nil {
		return nil, err
	}
	for i := range t.Sources {
		t.Sources[i].Rate = cfg.LoadFactor * capRate
	}

	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("graph: generated topology invalid: %w", err)
	}
	return t, nil
}

// placePEs assigns PEs to nodes balancing expected CPU demand: PEs are
// considered in decreasing demand order and each goes to the currently
// least-loaded node (LPT heuristic). Demand uses the unit-load propagation
// so heavily-fed PEs weigh more.
func placePEs(t *Topology, rng *sim.Rand) {
	demand, err := t.UnitDemand()
	if err != nil {
		// No order exists only for cyclic graphs, which Generate never
		// builds; fall back to uniform random placement.
		for i := range t.PEs {
			t.PEs[i].Node = sdo.NodeID(rng.Intn(t.NumNodes))
		}
		return
	}
	type item struct {
		pe   int
		load float64
	}
	items := make([]item, len(t.PEs))
	for i := range t.PEs {
		w := demand[i] * t.PEs[i].Service.EffectiveCost()
		items[i] = item{pe: i, load: w}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].load > items[b].load })
	nodeLoad := make([]float64, t.NumNodes)
	nodeCount := make([]int, t.NumNodes)
	for _, it := range items {
		best := 0
		for n := 1; n < t.NumNodes; n++ {
			// Least loaded wins; PE count breaks ties so zero-demand PEs
			// still spread across nodes.
			if nodeLoad[n] < nodeLoad[best] ||
				(nodeLoad[n] == nodeLoad[best] && nodeCount[n] < nodeCount[best]) {
				best = n
			}
		}
		t.PEs[it.pe].Node = sdo.NodeID(best)
		nodeLoad[best] += it.load
		nodeCount[best]++
	}
}
