package graph

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"aces/internal/sdo"
	"aces/internal/sim"
	"aces/internal/workload"
)

// chain builds src → a → b → c with a source on a.
func chain(t *testing.T) *Topology {
	t.Helper()
	topo := New(1, 50)
	svc := workload.DefaultServiceParams()
	a := topo.AddPE(PE{Name: "a", Service: svc})
	b := topo.AddPE(PE{Name: "b", Service: svc})
	c := topo.AddPE(PE{Name: "c", Service: svc, Weight: 1})
	if err := topo.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(b, c); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(Source{Stream: 1, Target: a, Rate: 100, Burst: BurstSpec{Kind: BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestChainStructure(t *testing.T) {
	topo := chain(t)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NumPEs() != 3 {
		t.Fatalf("NumPEs = %d", topo.NumPEs())
	}
	if !topo.IsIngress(0) || topo.IsIngress(1) {
		t.Errorf("ingress detection wrong")
	}
	if !topo.IsEgress(2) || topo.IsEgress(1) {
		t.Errorf("egress detection wrong")
	}
	if len(topo.Down(0)) != 1 || topo.Down(0)[0] != 1 {
		t.Errorf("Down(0) = %v", topo.Down(0))
	}
	if len(topo.Up(2)) != 1 || topo.Up(2)[0] != 1 {
		t.Errorf("Up(2) = %v", topo.Up(2))
	}
	if got := topo.EgressPEs(); len(got) != 1 || got[0] != 2 {
		t.Errorf("EgressPEs = %v", got)
	}
	if got := topo.IngressPEs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("IngressPEs = %v", got)
	}
}

func TestConnectRejectsBadEdges(t *testing.T) {
	topo := chain(t)
	if err := topo.Connect(0, 0); err == nil {
		t.Errorf("self-loop accepted")
	}
	if err := topo.Connect(0, 1); err == nil {
		t.Errorf("duplicate edge accepted")
	}
	if err := topo.Connect(0, 99); err == nil {
		t.Errorf("unknown PE accepted")
	}
	if err := topo.Connect(-1, 0); err == nil {
		t.Errorf("negative PE accepted")
	}
}

func TestTopoOrderAndCycleDetection(t *testing.T) {
	topo := chain(t)
	order, err := topo.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[sdo.PEID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range topo.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d→%d violates topo order", e.From, e.To)
		}
	}
	// Force a cycle via the unexported adjacency (Connect rejects none of
	// a→b→c→a individually).
	if err := topo.Connect(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.TopoOrder(); err == nil {
		t.Errorf("cycle not detected")
	}
	if err := topo.Validate(); err == nil {
		t.Errorf("Validate should catch the cycle")
	}
}

func TestValidateCatchesBrokenTopologies(t *testing.T) {
	svc := workload.DefaultServiceParams()

	topo := New(0, 50)
	topo.AddPE(PE{Service: svc})
	if err := topo.Validate(); err == nil {
		t.Errorf("zero nodes accepted")
	}

	topo = New(1, 0)
	topo.AddPE(PE{Service: svc})
	if err := topo.Validate(); err == nil {
		t.Errorf("zero buffer accepted")
	}

	if err := New(1, 50).Validate(); err == nil {
		t.Errorf("empty topology accepted")
	}

	// Orphan PE: no upstream, no source.
	topo = New(1, 50)
	topo.AddPE(PE{Service: svc})
	if err := topo.Validate(); err == nil {
		t.Errorf("starving PE accepted")
	}

	// Bad placement.
	topo = chain(t)
	topo.PEs[1].Node = 7
	if err := topo.Validate(); err == nil {
		t.Errorf("invalid node placement accepted")
	}

	// Negative weight.
	topo = chain(t)
	topo.PEs[2].Weight = -1
	if err := topo.Validate(); err == nil {
		t.Errorf("negative weight accepted")
	}

	// Source on a PE with upstreams.
	topo = chain(t)
	if err := topo.AddSource(Source{Stream: 9, Target: 1, Rate: 5, Burst: BurstSpec{Kind: BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err == nil {
		t.Errorf("source on internal PE accepted")
	}
}

func TestAddSourceValidation(t *testing.T) {
	topo := chain(t)
	if err := topo.AddSource(Source{Target: 99, Rate: 1}); err == nil {
		t.Errorf("unknown target accepted")
	}
	if err := topo.AddSource(Source{Target: 0, Rate: 0}); err == nil {
		t.Errorf("zero rate accepted")
	}
}

func TestBufferSizeOverride(t *testing.T) {
	topo := chain(t)
	if topo.BufferSize(0) != 50 {
		t.Errorf("default buffer = %d", topo.BufferSize(0))
	}
	topo.PEs[1].BufferSize = 10
	if topo.BufferSize(1) != 10 {
		t.Errorf("override buffer = %d", topo.BufferSize(1))
	}
}

func TestUnitDemandChain(t *testing.T) {
	topo := chain(t)
	d, err := topo.UnitDemand()
	if err != nil {
		t.Fatal(err)
	}
	// Unit rate propagates 1 → 1 → 1 with multiplicity 1.
	for i, want := range []float64{1, 1, 1} {
		if math.Abs(d[i]-want) > 1e-12 {
			t.Errorf("demand[%d] = %g, want %g", i, d[i], want)
		}
	}
}

func TestUnitDemandFanOutDuplicates(t *testing.T) {
	// a feeds b and c; both feed d. d receives 2× the unit rate.
	topo := New(1, 50)
	svc := workload.DefaultServiceParams()
	a := topo.AddPE(PE{Service: svc})
	b := topo.AddPE(PE{Service: svc})
	c := topo.AddPE(PE{Service: svc})
	d := topo.AddPE(PE{Service: svc, Weight: 1})
	for _, e := range []Edge{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := topo.Connect(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddSource(Source{Stream: 1, Target: a, Rate: 10, Burst: BurstSpec{Kind: BurstPoisson}}); err != nil {
		t.Fatal(err)
	}
	dem, err := topo.UnitDemand()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dem[d]-2) > 1e-12 {
		t.Errorf("demand[d] = %g, want 2 (copies from b and c)", dem[d])
	}
}

func TestBottleneckIngressRate(t *testing.T) {
	topo := chain(t)
	r, err := topo.BottleneckIngressRate()
	if err != nil {
		t.Fatal(err)
	}
	// One node, three PEs each with effective (harmonic) cost
	// 1/(0.5/2ms + 0.5/20ms) ≈ 3.64 ms per SDO: capacity ≈ 91.7 SDOs/sec.
	want := 1 / (3 * workload.DefaultServiceParams().EffectiveCost())
	if math.Abs(r-want)/want > 1e-9 {
		t.Errorf("bottleneck rate = %g, want %g", r, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	topo := chain(t)
	data, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NumPEs() != topo.NumPEs() || len(back.Edges) != len(topo.Edges) {
		t.Errorf("round trip lost structure")
	}
	if len(back.Down(0)) != 1 || back.Down(0)[0] != 1 {
		t.Errorf("adjacency not rebuilt")
	}
}

func TestBurstSpecBuild(t *testing.T) {
	rng := sim.NewRand(1)
	for _, spec := range []BurstSpec{
		{Kind: BurstDeterministic},
		{Kind: BurstPoisson},
		{Kind: BurstOnOff, PeakFactor: 2, MeanOn: 0.1},
	} {
		p, err := spec.Build(100, rng)
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		if math.Abs(p.MeanRate()-100)/100 > 1e-9 {
			t.Errorf("%v: mean rate %g, want 100", spec.Kind, p.MeanRate())
		}
	}
	if _, err := (BurstSpec{Kind: BurstOnOff, PeakFactor: 1}).Build(10, rng); err == nil {
		t.Errorf("PeakFactor ≤ 1 accepted")
	}
	if _, err := (BurstSpec{}).Build(10, rng); err == nil {
		t.Errorf("unknown kind accepted")
	}
	if BurstOnOff.String() != "onoff" || BurstKind(42).String() == "" {
		t.Errorf("String() broken")
	}
}

func TestGenerateDefaultTopology(t *testing.T) {
	topo, err := Generate(DefaultGenConfig(60, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NumPEs() != 60 {
		t.Errorf("NumPEs = %d, want 60", topo.NumPEs())
	}
	if topo.NumNodes != 10 {
		t.Errorf("NumNodes = %d", topo.NumNodes)
	}
	if got := topo.MaxFanIn(); got > 3 {
		t.Errorf("fan-in %d exceeds paper limit 3", got)
	}
	if got := topo.MaxFanOut(); got > 4 {
		t.Errorf("fan-out %d exceeds paper limit 4", got)
	}
	// Every egress PE carries positive weight, intermediates zero.
	for _, j := range topo.EgressPEs() {
		if topo.PEs[j].Weight <= 0 {
			t.Errorf("egress PE %d has weight %g", j, topo.PEs[j].Weight)
		}
	}
	for j := range topo.PEs {
		if !topo.IsEgress(sdo.PEID(j)) && topo.PEs[j].Weight != 0 {
			t.Errorf("internal PE %d has nonzero weight", j)
		}
	}
	// Sources drive the system into overload: rate > fluid capacity.
	capRate, err := topo.BottleneckIngressRate()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range topo.Sources {
		if s.Rate <= capRate {
			t.Errorf("source rate %g not above capacity %g", s.Rate, capRate)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, err := Generate(DefaultGenConfig(60, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig(60, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("same seed produced different topologies")
	}
	c, err := Generate(DefaultGenConfig(60, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Errorf("different seeds produced identical topologies")
	}
}

func TestGeneratePaperScale(t *testing.T) {
	topo, err := Generate(DefaultGenConfig(200, 80, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// Placement balance: with LPT placement no node should be empty at
	// this scale... nodes may exceed PEs/nodes ratio slightly.
	loaded := 0
	for n := 0; n < topo.NumNodes; n++ {
		if len(topo.OnNode(sdo.NodeID(n))) > 0 {
			loaded++
		}
	}
	if loaded < topo.NumNodes*3/4 {
		t.Errorf("only %d/%d nodes have PEs", loaded, topo.NumNodes)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{NumPEs: 1, NumNodes: 1}); err == nil {
		t.Errorf("1 PE accepted")
	}
	if _, err := Generate(GenConfig{NumPEs: 10, NumNodes: 0}); err == nil {
		t.Errorf("0 nodes accepted")
	}
	cfg := DefaultGenConfig(10, 2, 1)
	cfg.NumIngress, cfg.NumEgress = 6, 6
	if _, err := Generate(cfg); err == nil {
		t.Errorf("boundary layers exceeding PE count accepted")
	}
	cfg = DefaultGenConfig(10, 2, 1)
	cfg.MultiIOFrac = 1.5
	if _, err := Generate(cfg); err == nil {
		t.Errorf("MultiIOFrac > 1 accepted")
	}
}

func TestGenerateMultiIOFraction(t *testing.T) {
	// With MultiIOFrac = 0 multi-input PEs appear only where a layer
	// narrows and orphan producers must be rescued; that slack is small.
	cfg := DefaultGenConfig(100, 10, 5)
	cfg.MultiIOFrac = 0
	topoLow, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi := func(topo *Topology) int {
		n := 0
		for j := range topo.PEs {
			if len(topo.Up(sdo.PEID(j))) > 1 {
				n++
			}
		}
		return n
	}
	low := multi(topoLow)
	if low > topoLow.NumPEs()/10 {
		t.Errorf("MultiIOFrac=0 produced %d multi-input PEs", low)
	}
	cfg.MultiIOFrac = 0.8
	topoHigh, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if high := multi(topoHigh); high <= low {
		t.Errorf("MultiIOFrac=0.8 gave %d multi-input PEs, ≤ %d at 0", high, low)
	}
}

func TestOnNodePartition(t *testing.T) {
	topo, err := Generate(DefaultGenConfig(60, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for n := 0; n < topo.NumNodes; n++ {
		total += len(topo.OnNode(sdo.NodeID(n)))
	}
	if total != topo.NumPEs() {
		t.Errorf("OnNode partitions %d PEs, want %d", total, topo.NumPEs())
	}
}

func TestWriteDOT(t *testing.T) {
	topo := chain(t)
	var sb strings.Builder
	if err := topo.WriteDOT(&sb, "demo"); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph aces", "cluster_n0", "pe0 -> pe1", "src0", "fillcolor=lightgrey"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestBurstTraceBuildAndJSON(t *testing.T) {
	spec := BurstSpec{Kind: BurstTrace, TraceIntervals: []float64{0.1, 0.3}}
	p, err := spec.Build(999 /* ignored for traces */, sim.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.MeanRate()-5) > 1e-9 {
		t.Errorf("trace mean rate = %g, want 5 (2 SDOs per 0.4s)", p.MeanRate())
	}
	if _, err := (BurstSpec{Kind: BurstTrace}).Build(10, sim.NewRand(1)); err == nil {
		t.Errorf("empty trace accepted")
	}
	// The intervals must survive a topology JSON round trip.
	topo := chain(t)
	topo.Sources[0].Burst = spec
	data, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Sources[0].Burst.TraceIntervals) != 2 {
		t.Errorf("trace intervals lost in JSON round trip")
	}
	if BurstTrace.String() != "trace" {
		t.Errorf("String wrong")
	}
}
