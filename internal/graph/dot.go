package graph

import (
	"fmt"
	"io"
	"strings"

	"aces/internal/sdo"
)

// WriteDOT renders the topology as a Graphviz digraph: PEs clustered by
// node, sources as diamonds, egress PEs shaded with their weights, edges
// following the DAG. `dot -Tsvg topo.dot` turns it into the Fig. 1-style
// picture of the deployment.
func (t *Topology) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	b.WriteString("digraph aces {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, style=rounded, fontname=\"Helvetica\"];\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", title)
	}
	for n := 0; n < t.NumNodes; n++ {
		ids := t.OnNode(sdo.NodeID(n))
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_n%d {\n    label=\"node %d\";\n    style=dashed;\n", n, n)
		for _, id := range ids {
			pe := &t.PEs[id]
			attrs := ""
			if t.IsEgress(id) {
				attrs = fmt.Sprintf(", style=\"rounded,filled\", fillcolor=lightgrey, xlabel=\"w=%.2g\"", pe.Weight)
			}
			fmt.Fprintf(&b, "    pe%d [label=%q%s];\n", id, pe.Name, attrs)
		}
		b.WriteString("  }\n")
	}
	for i, s := range t.Sources {
		fmt.Fprintf(&b, "  src%d [shape=diamond, label=\"s%d @%.3g/s\"];\n", i, s.Stream, s.Rate)
		fmt.Fprintf(&b, "  src%d -> pe%d;\n", i, s.Target)
	}
	for _, e := range t.Edges {
		fmt.Fprintf(&b, "  pe%d -> pe%d;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
