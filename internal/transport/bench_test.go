package transport

import (
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"aces/internal/sdo"
)

// drainServer accepts raw TCP connections and discards everything read,
// so benchmarks measure the sender's data path, not a peer's decode loop.
func drainServer(tb testing.TB) string {
	tb.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(io.Discard, c)
			}()
		}
	}()
	return l.Addr().String()
}

func benchSDO() sdo.SDO {
	return sdo.SDO{Stream: 1, Seq: 42, Origin: time.Unix(0, 1), Hops: 2, Trace: 7, Payload: make([]byte, 64), Bytes: 64}
}

// wireSDO is the representative cross-partition SDO: the control
// experiments ship empty payloads (the bridge strips non-[]byte payloads
// anyway), so throughput benchmarks use the 36-byte header-only frame.
func wireSDO() sdo.SDO {
	return sdo.SDO{Stream: 1, Seq: 42, Origin: time.Unix(0, 1), Hops: 2, Trace: 7}
}

// TestEncodePathZeroAllocs is the acceptance gate for the pooled encode
// path: sending an SDO through a warmed Conn must not allocate.
func TestEncodePathZeroAllocs(t *testing.T) {
	addr := drainServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := benchSDO()
	// Warm the buffer pool and bufio writer.
	for i := 0; i < 16; i++ {
		if err := c.SendSDO(s); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.SendSDO(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SendSDO allocates %.1f times per SDO, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := c.SendRouted(3, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SendRouted allocates %.1f times per SDO, want 0", allocs)
	}
}

// TestDecodePathZeroAllocs is the receive-side gate: decoding buffered
// payload-free data frames must not allocate either. The frames are
// pre-sent so every Recv is served from the bufio reader, keeping
// syscalls (and their absence of allocations) out of the measurement.
func TestDecodePathZeroAllocs(t *testing.T) {
	client, server := pair(t)
	s := wireSDO()
	const frames = 600
	for i := 0; i < frames; i++ {
		if err := client.SendSDO(s); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pool and let the pre-sent frames land in the read buffer.
	for i := 0; i < 16; i++ {
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Recv allocates %.1f times per frame, want 0", allocs)
	}
}

// TestGatheredWritePathZeroAllocs gates the writev emission path: a
// batch big enough to cross both gathered-write thresholds (total ≥
// vecMinBytes, mean member ≥ vecMinSeg) must leave through
// sendBatchVec without allocating once the header and iovec scratch
// are warm. Real TCP matters here — net.Pipe has no writev fast path,
// and poll.FD's cached iovec array is what makes repeats allocation-
// free.
func TestGatheredWritePathZeroAllocs(t *testing.T) {
	addr := drainServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	body := make([]byte, 512)
	members := make([]outFrame, 32)
	for i := range members {
		members[i] = outFrame{kind: KindData, body: body}
	}
	total := 4 + len(members)*(5+len(body))
	if total < vecMinBytes || total < len(members)*vecMinSeg {
		t.Fatalf("batch of %d bytes does not reach the gathered-write thresholds", total)
	}
	// Warm the header scratch, iovec scratch and poll.FD's iovec cache.
	for i := 0; i < 8; i++ {
		if err := c.sendBatch(members, true); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.sendBatch(members, true); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("gathered batch write allocates %.1f times per batch, want 0", allocs)
	}
}

func BenchmarkEncodeSDO(b *testing.B) {
	s := benchSDO()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := encodeSDO(buf[:0], s)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkPerFrameFlush is the historic uplink hot path: one frame, one
// bufio flush (one syscall) per SDO through a direct Conn. Senders run in
// parallel, like PE emitters sharing an uplink, but serialize on the
// connection's write lock — the per-frame flush gates aggregate
// throughput no matter how many emit.
func BenchmarkPerFrameFlush(b *testing.B) {
	addr := drainServer(b)
	c, err := Dial(addr, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	s := wireSDO()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := c.SendSDO(s); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchResilient pushes b.N SDOs through a ResilientConn from parallel
// senders and waits for the writer to drain them, so the measured rate is
// end-to-end wire throughput, not the enqueue rate.
func benchResilient(b *testing.B, opts ResilientOptions) {
	addr := drainServer(b)
	rc := NewResilientConn(func() (*Conn, error) {
		c, err := Dial(addr, time.Second)
		if err != nil {
			return nil, err
		}
		c.setPeerFeatures(FeatureBatch)
		return c, nil
	}, opts)
	defer rc.Close()
	s := wireSDO()
	// Wait for the first connection so setup noise stays out of the timing.
	if err := rc.SendSDO(s); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rc.Stats().FramesSent < 1 {
		if time.Now().After(deadline) {
			b.Fatal("link never connected")
		}
		time.Sleep(time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for rc.SendSDO(s) != nil {
				runtime.Gosched() // outbox full: the writer is the bottleneck
			}
		}
	})
	for {
		if rc.Stats().FramesSent >= int64(b.N)+1 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
}

func BenchmarkResilientNoBatch(b *testing.B) {
	benchResilient(b, ResilientOptions{QueueSize: 4096})
}

func BenchmarkResilientBatch8(b *testing.B) {
	benchResilient(b, ResilientOptions{QueueSize: 4096, BatchMax: 8})
}

func BenchmarkResilientBatch32(b *testing.B) {
	benchResilient(b, ResilientOptions{QueueSize: 4096, BatchMax: 32})
}
