package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aces/internal/sdo"
)

// countingServer accepts connections in a loop (so a severed client can
// come back) and counts every data frame received across all sessions.
type countingServer struct {
	l      *Listener
	frames atomic.Int64
	conns  atomic.Int64
	wg     sync.WaitGroup
}

func newCountingServer(t *testing.T) *countingServer {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &countingServer{l: l}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.conns.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer c.Close()
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					if msg.Kind == KindData || msg.Kind == KindRouted {
						s.frames.Add(1)
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		l.Close()
		s.wg.Wait()
	})
	return s
}

func (s *countingServer) addr() string { return s.l.Addr() }

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

func TestResilientDeliversFrames(t *testing.T) {
	srv := newCountingServer(t)
	rc := NewResilientConn(func() (*Conn, error) {
		return Dial(srv.addr(), time.Second)
	}, ResilientOptions{})
	defer rc.Close()

	for i := 0; i < 50; i++ {
		if err := rc.SendSDO(sdo.SDO{Stream: 1, Seq: uint64(i), Origin: time.Now()}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 50 }, "frames delivered")
	st := rc.Stats()
	if st.FramesSent != 50 || st.FramesDropped != 0 {
		t.Errorf("stats = %+v, want 50 sent, 0 dropped", st)
	}
}

func TestResilientSurvivesSever(t *testing.T) {
	srv := newCountingServer(t)
	var current atomic.Pointer[FlakyConn]
	rc := NewResilientConn(func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", srv.addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := WrapFlaky(raw)
		current.Store(f)
		return NewConn(f), nil
	}, ResilientOptions{BackoffMin: 10 * time.Millisecond})
	defer rc.Close()

	for i := 0; i < 10; i++ {
		if err := rc.SendSDO(sdo.SDO{Seq: uint64(i), Origin: time.Now()}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 10 }, "pre-sever frames")

	current.Load().Sever()
	// Sends during/after the sever must not block; some may be lost, which
	// is the contract (loss at the boundary, not collapse).
	waitFor(t, 5*time.Second, func() bool {
		rc.SendSDO(sdo.SDO{Seq: 99, Origin: time.Now()})
		return rc.Stats().Reconnects >= 1 && srv.frames.Load() > 10
	}, "reconnect and post-sever delivery")
}

func TestResilientSendNeverBlocksWhenPeerAbsent(t *testing.T) {
	const queue = 16
	rc := NewResilientConn(func() (*Conn, error) {
		return nil, errors.New("nobody home")
	}, ResilientOptions{QueueSize: queue, BackoffMin: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond})
	defer rc.Close()

	start := time.Now()
	var overflows int
	for i := 0; i < queue+25; i++ {
		if err := rc.SendSDO(sdo.SDO{Seq: uint64(i), Origin: time.Now()}); errors.Is(err, ErrOutboxFull) {
			overflows++
		}
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("sends took %v; the emit path must never block on a dead peer", el)
	}
	if overflows == 0 {
		t.Errorf("no ErrOutboxFull past a %d-frame queue with no consumer", queue)
	}
	if st := rc.Stats(); st.FramesDropped == 0 {
		t.Errorf("overflow not counted: %+v", st)
	}
}

func TestResilientStalledPeerTriggersDropAndReconnect(t *testing.T) {
	srv := newCountingServer(t)
	var current atomic.Pointer[FlakyConn]
	var asyncDrops atomic.Int64
	rc := NewResilientConn(func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", srv.addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := WrapFlaky(raw)
		current.Store(f)
		return NewConn(f), nil
	}, ResilientOptions{
		WriteTimeout: 30 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		OnDrop:       func(k Kind, hops int, trace uint64) { asyncDrops.Add(1) },
	})
	defer rc.Close()

	if err := rc.SendSDO(sdo.SDO{Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 1 }, "warmup frame")

	// Stall the pipe longer than the write deadline: the in-flight frame
	// must be dropped (not wedged) and the link must re-establish.
	current.Load().Stall(400 * time.Millisecond)
	if err := rc.SendSDO(sdo.SDO{Origin: time.Now(), Hops: 2}); err != nil {
		t.Fatalf("enqueue onto stalled link must succeed (async outbox): %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return asyncDrops.Load() >= 1 }, "stalled write dropped via OnDrop")
	waitFor(t, 5*time.Second, func() bool {
		rc.SendSDO(sdo.SDO{Origin: time.Now()})
		return srv.frames.Load() > 1
	}, "delivery resumed after stall")
	if st := rc.Stats(); st.Reconnects < 1 {
		t.Errorf("stall did not force a reconnect: %+v", st)
	}
}

func TestResilientCloseUnblocksRecv(t *testing.T) {
	srv := newCountingServer(t)
	rc := NewResilientConn(func() (*Conn, error) {
		return Dial(srv.addr(), time.Second)
	}, ResilientOptions{})

	recvDone := make(chan error, 1)
	go func() {
		_, err := rc.Recv()
		recvDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	rc.Close()
	select {
	case err := <-recvDone:
		if !errors.Is(err, io.EOF) {
			t.Errorf("Recv after Close = %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := rc.SendSDO(sdo.SDO{}); !errors.Is(err, ErrLinkClosed) {
		t.Errorf("send after Close = %v, want ErrLinkClosed", err)
	}
	// Double close is safe.
	rc.Close()
}

func TestFlakyDropWrites(t *testing.T) {
	srv := newCountingServer(t)
	raw, err := net.DialTimeout("tcp", srv.addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	f := WrapFlaky(raw)
	c := NewConn(f)
	defer c.Close()
	if err := c.SendSDO(sdo.SDO{Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 1 }, "clean frame")
	f.DropWrites(true)
	if err := c.SendSDO(sdo.SDO{Origin: time.Now()}); err != nil {
		t.Fatalf("dropped write should report success: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if srv.frames.Load() != 1 {
		t.Errorf("dropped write reached the peer")
	}
	f.DropWrites(false)
	if err := c.SendSDO(sdo.SDO{Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 2 }, "post-drop frame")
}

// halfOpenDialer returns connections that are already dead: every write
// fails immediately, the signature of a half-open peer that completes the
// TCP handshake but never services the session.
func halfOpenDialer(dials *atomic.Int64) DialFunc {
	return func() (*Conn, error) {
		dials.Add(1)
		c1, c2 := net.Pipe()
		c1.Close()
		c2.Close()
		return NewConn(c1), nil
	}
}

// TestResilientBackoffNotResetByDialAlone is the regression test for the
// half-open hot-loop: a dial that succeeds but whose connection dies
// before any successful write must keep growing the reconnect backoff.
// Before the fix, dial success reset the backoff to BackoffMin and the
// manager redialed such a peer in a tight loop.
func TestResilientBackoffNotResetByDialAlone(t *testing.T) {
	var dials atomic.Int64
	rc := NewResilientConn(halfOpenDialer(&dials), ResilientOptions{
		BackoffMin: 20 * time.Millisecond,
		BackoffMax: 160 * time.Millisecond,
	})
	defer rc.Close()

	// Keep frames queued so the writer also exercises the dead conns.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				rc.SendSDO(sdo.SDO{Origin: time.Now()})
			}
		}
	}()
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Exponential growth 20→40→80→160→160… admits ~6 dials in 500 ms
	// (plus the first immediate one). A backoff reset on every dial
	// success would admit hundreds.
	if n := dials.Load(); n < 2 || n > 20 {
		t.Errorf("half-open peer was dialed %d times in 500ms; backoff is not growing", n)
	}
}

// TestResilientBackoffResetsAfterWrite asserts the other half of the
// contract: a generation that lands a write earns a fresh minimum
// backoff, so a healthy link that drops reconnects promptly even after a
// string of earlier failures inflated the backoff.
func TestResilientBackoffResetsAfterWrite(t *testing.T) {
	srv := newCountingServer(t)
	var down atomic.Bool
	var current atomic.Pointer[FlakyConn]
	rc := NewResilientConn(func() (*Conn, error) {
		if down.Load() {
			return nil, errors.New("injected outage")
		}
		raw, err := net.DialTimeout("tcp", srv.addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := WrapFlaky(raw)
		current.Store(f)
		return NewConn(f), nil
	}, ResilientOptions{
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 3 * time.Second,
	})
	defer rc.Close()

	// Inflate the backoff toward BackoffMax with failed dials.
	down.Store(true)
	time.Sleep(400 * time.Millisecond)
	down.Store(false)

	// Heal; a write must land eventually despite the inflated backoff.
	waitFor(t, 10*time.Second, func() bool {
		rc.SendSDO(sdo.SDO{Origin: time.Now()})
		return srv.frames.Load() > 0
	}, "first delivery after outage")

	// The landed write reset the backoff: after a sever, the reconnect
	// and next delivery must happen in well under BackoffMax.
	sent := srv.frames.Load()
	current.Load().Sever()
	start := time.Now()
	waitFor(t, 2*time.Second, func() bool {
		rc.SendSDO(sdo.SDO{Origin: time.Now()})
		return srv.frames.Load() > sent
	}, "post-sever delivery (backoff should have reset)")
	if el := time.Since(start); el > 1500*time.Millisecond {
		t.Errorf("reconnect after healthy generation took %v; backoff did not reset on write", el)
	}
}

// TestResilientHeartbeatNegotiated round-trips heartbeats between two
// ResilientConns: hellos negotiate FeatureHeartbeat in both directions,
// beacons flow on the control path, and SendHeartbeat before negotiation
// silently discards instead of queueing stale liveness claims.
func TestResilientHeartbeatNegotiated(t *testing.T) {
	lis, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	rcA := NewResilientConn(func() (*Conn, error) {
		return Dial(lis.Addr(), time.Second)
	}, ResilientOptions{})
	defer rcA.Close()
	rcB := NewResilientConn(func() (*Conn, error) {
		return lis.Accept()
	}, ResilientOptions{})
	defer rcB.Close()

	var got atomic.Int64
	var lastNode atomic.Int32
	go func() {
		for {
			msg, err := rcB.Recv()
			if err != nil {
				return
			}
			if msg.Kind == KindHeartbeat {
				lastNode.Store(msg.Heartbeat.Node)
				got.Add(1)
			}
		}
	}()
	// A's writer only learns B's features through A's own Recv loop.
	go func() {
		for {
			if _, err := rcA.Recv(); err != nil {
				return
			}
		}
	}()

	waitFor(t, 5*time.Second, func() bool { return rcA.PeerSupportsHeartbeat() }, "hello negotiation")
	waitFor(t, 5*time.Second, func() bool {
		if err := rcA.SendHeartbeat(Heartbeat{Node: 3, Seq: 1}); err != nil {
			t.Errorf("SendHeartbeat: %v", err)
		}
		return got.Load() > 0
	}, "heartbeat delivery")
	if lastNode.Load() != 3 {
		t.Errorf("heartbeat node = %d, want 3", lastNode.Load())
	}
}

// The reserved control lane: a data burst that fills the outbox must not
// crowd a target frame off the link. Flood the data lane to overflow
// against a stalled pipe, then send targets — they must enqueue without
// ErrOutboxFull, drop nothing on the control counter, and arrive once
// the stall clears. Only a control-plane flood itself may spill, and
// when it does the loss is visible as ControlDropped.
func TestControlLaneSurvivesDataFlood(t *testing.T) {
	lis, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	type gotTargets struct {
		term, epoch uint64
	}
	targetCh := make(chan gotTargets, 256)
	var srvWG sync.WaitGroup
	// Cleanups run after the deferred lis.Close/rc.Close unblock the
	// accept and read loops, so the Wait cannot deadlock.
	t.Cleanup(srvWG.Wait)
	srvWG.Add(1)
	go func() {
		defer srvWG.Done()
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			if err := c.SendHello(FeatureHeartbeat | FeatureRetarget | FeatureElastic | FeatureHier | FeatureTerm); err != nil {
				c.Close()
				continue
			}
			srvWG.Add(1)
			go func() {
				defer srvWG.Done()
				defer c.Close()
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					if msg.Kind == KindTargets {
						select {
						case targetCh <- gotTargets{msg.Targets.Term, msg.Targets.Epoch}:
						default:
						}
					}
				}
			}()
		}
	}()

	var current atomic.Pointer[FlakyConn]
	rc := NewResilientConn(func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", lis.Addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := WrapFlaky(raw)
		current.Store(f)
		return NewConn(f), nil
	}, ResilientOptions{
		QueueSize:    8,
		WriteTimeout: 5 * time.Second, // a stall must fill queues, not retire the conn
		BackoffMin:   10 * time.Millisecond,
	})
	defer rc.Close()
	go func() {
		for {
			if _, err := rc.Recv(); err != nil {
				return
			}
		}
	}()
	waitFor(t, 5*time.Second, func() bool {
		return rc.PeerSupportsRetarget() && rc.PeerSupportsTerm()
	}, "hello negotiation")

	// Stall the pipe and flood the data lane until it overflows.
	current.Load().Stall(400 * time.Millisecond)
	overflowed := false
	for i := 0; i < 200 && !overflowed; i++ {
		overflowed = errors.Is(rc.SendSDO(sdo.SDO{Seq: uint64(i), Origin: time.Now()}), ErrOutboxFull)
	}
	if !overflowed {
		t.Fatal("data flood never overflowed an 8-frame outbox against a stalled pipe")
	}
	// The control lane still has room: the target frame enqueues cleanly.
	if err := rc.SendTargets(Targets{Term: 1, Epoch: 7, CPU: []float64{0.5, 0.5}}); err != nil {
		t.Fatalf("SendTargets with a full data outbox: %v", err)
	}
	if st := rc.Stats(); st.ControlDropped != 0 {
		t.Errorf("pure data flood dropped %d control frames", st.ControlDropped)
	}
	// Once the stall clears, head-of-burst priority lands the targets.
	select {
	case got := <-targetCh:
		if got.term != 1 || got.epoch != 7 {
			t.Errorf("delivered targets (term %d, epoch %d), want (1, 7)", got.term, got.epoch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("target frame never delivered after the flood")
	}

	// A control-plane flood is the only thing allowed to spill the lane,
	// and the spill must be visible on the control counter.
	current.Load().Stall(400 * time.Millisecond)
	ctlOverflow := false
	for i := 0; i < 400; i++ {
		if errors.Is(rc.SendTargets(Targets{Term: 1, Epoch: uint64(100 + i), CPU: []float64{0.5, 0.5}}), ErrOutboxFull) {
			ctlOverflow = true
		}
	}
	if !ctlOverflow {
		t.Fatal("400 target frames never overflowed the 64-frame control lane")
	}
	if st := rc.Stats(); st.ControlDropped == 0 {
		t.Errorf("control-lane overflow not counted: %+v", st)
	}
}
