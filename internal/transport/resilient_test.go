package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aces/internal/sdo"
)

// countingServer accepts connections in a loop (so a severed client can
// come back) and counts every data frame received across all sessions.
type countingServer struct {
	l      *Listener
	frames atomic.Int64
	conns  atomic.Int64
	wg     sync.WaitGroup
}

func newCountingServer(t *testing.T) *countingServer {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &countingServer{l: l}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.conns.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer c.Close()
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					if msg.Kind == KindData || msg.Kind == KindRouted {
						s.frames.Add(1)
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		l.Close()
		s.wg.Wait()
	})
	return s
}

func (s *countingServer) addr() string { return s.l.Addr() }

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

func TestResilientDeliversFrames(t *testing.T) {
	srv := newCountingServer(t)
	rc := NewResilientConn(func() (*Conn, error) {
		return Dial(srv.addr(), time.Second)
	}, ResilientOptions{})
	defer rc.Close()

	for i := 0; i < 50; i++ {
		if err := rc.SendSDO(sdo.SDO{Stream: 1, Seq: uint64(i), Origin: time.Now()}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 50 }, "frames delivered")
	st := rc.Stats()
	if st.FramesSent != 50 || st.FramesDropped != 0 {
		t.Errorf("stats = %+v, want 50 sent, 0 dropped", st)
	}
}

func TestResilientSurvivesSever(t *testing.T) {
	srv := newCountingServer(t)
	var current atomic.Pointer[FlakyConn]
	rc := NewResilientConn(func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", srv.addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := WrapFlaky(raw)
		current.Store(f)
		return NewConn(f), nil
	}, ResilientOptions{BackoffMin: 10 * time.Millisecond})
	defer rc.Close()

	for i := 0; i < 10; i++ {
		if err := rc.SendSDO(sdo.SDO{Seq: uint64(i), Origin: time.Now()}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 10 }, "pre-sever frames")

	current.Load().Sever()
	// Sends during/after the sever must not block; some may be lost, which
	// is the contract (loss at the boundary, not collapse).
	waitFor(t, 5*time.Second, func() bool {
		rc.SendSDO(sdo.SDO{Seq: 99, Origin: time.Now()})
		return rc.Stats().Reconnects >= 1 && srv.frames.Load() > 10
	}, "reconnect and post-sever delivery")
}

func TestResilientSendNeverBlocksWhenPeerAbsent(t *testing.T) {
	const queue = 16
	rc := NewResilientConn(func() (*Conn, error) {
		return nil, errors.New("nobody home")
	}, ResilientOptions{QueueSize: queue, BackoffMin: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond})
	defer rc.Close()

	start := time.Now()
	var overflows int
	for i := 0; i < queue+25; i++ {
		if err := rc.SendSDO(sdo.SDO{Seq: uint64(i), Origin: time.Now()}); errors.Is(err, ErrOutboxFull) {
			overflows++
		}
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("sends took %v; the emit path must never block on a dead peer", el)
	}
	if overflows == 0 {
		t.Errorf("no ErrOutboxFull past a %d-frame queue with no consumer", queue)
	}
	if st := rc.Stats(); st.FramesDropped == 0 {
		t.Errorf("overflow not counted: %+v", st)
	}
}

func TestResilientStalledPeerTriggersDropAndReconnect(t *testing.T) {
	srv := newCountingServer(t)
	var current atomic.Pointer[FlakyConn]
	var asyncDrops atomic.Int64
	rc := NewResilientConn(func() (*Conn, error) {
		raw, err := net.DialTimeout("tcp", srv.addr(), time.Second)
		if err != nil {
			return nil, err
		}
		f := WrapFlaky(raw)
		current.Store(f)
		return NewConn(f), nil
	}, ResilientOptions{
		WriteTimeout: 30 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		OnDrop:       func(k Kind, hops int, trace uint64) { asyncDrops.Add(1) },
	})
	defer rc.Close()

	if err := rc.SendSDO(sdo.SDO{Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 1 }, "warmup frame")

	// Stall the pipe longer than the write deadline: the in-flight frame
	// must be dropped (not wedged) and the link must re-establish.
	current.Load().Stall(400 * time.Millisecond)
	if err := rc.SendSDO(sdo.SDO{Origin: time.Now(), Hops: 2}); err != nil {
		t.Fatalf("enqueue onto stalled link must succeed (async outbox): %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return asyncDrops.Load() >= 1 }, "stalled write dropped via OnDrop")
	waitFor(t, 5*time.Second, func() bool {
		rc.SendSDO(sdo.SDO{Origin: time.Now()})
		return srv.frames.Load() > 1
	}, "delivery resumed after stall")
	if st := rc.Stats(); st.Reconnects < 1 {
		t.Errorf("stall did not force a reconnect: %+v", st)
	}
}

func TestResilientCloseUnblocksRecv(t *testing.T) {
	srv := newCountingServer(t)
	rc := NewResilientConn(func() (*Conn, error) {
		return Dial(srv.addr(), time.Second)
	}, ResilientOptions{})

	recvDone := make(chan error, 1)
	go func() {
		_, err := rc.Recv()
		recvDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	rc.Close()
	select {
	case err := <-recvDone:
		if !errors.Is(err, io.EOF) {
			t.Errorf("Recv after Close = %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := rc.SendSDO(sdo.SDO{}); !errors.Is(err, ErrLinkClosed) {
		t.Errorf("send after Close = %v, want ErrLinkClosed", err)
	}
	// Double close is safe.
	rc.Close()
}

func TestFlakyDropWrites(t *testing.T) {
	srv := newCountingServer(t)
	raw, err := net.DialTimeout("tcp", srv.addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	f := WrapFlaky(raw)
	c := NewConn(f)
	defer c.Close()
	if err := c.SendSDO(sdo.SDO{Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 1 }, "clean frame")
	f.DropWrites(true)
	if err := c.SendSDO(sdo.SDO{Origin: time.Now()}); err != nil {
		t.Fatalf("dropped write should report success: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if srv.frames.Load() != 1 {
		t.Errorf("dropped write reached the peer")
	}
	f.DropWrites(false)
	if err := c.SendSDO(sdo.SDO{Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.frames.Load() == 2 }, "post-drop frame")
}
