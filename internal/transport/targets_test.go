package transport

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestTargetsRoundTrip(t *testing.T) {
	client, server := pair(t)
	in := Targets{Epoch: 7, CPU: []float64{0.25, 0, 0.75, math.Pi}}
	if err := client.SendTargets(in); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindTargets || msg.Targets.Epoch != 7 {
		t.Fatalf("targets frame lost: %+v", msg)
	}
	if len(msg.Targets.CPU) != len(in.CPU) {
		t.Fatalf("CPU vector length %d, want %d", len(msg.Targets.CPU), len(in.CPU))
	}
	for j, c := range in.CPU {
		if msg.Targets.CPU[j] != c {
			t.Errorf("CPU[%d] = %g, want %g", j, msg.Targets.CPU[j], c)
		}
	}
}

func TestTargetsEmptyVectorRoundTrip(t *testing.T) {
	client, server := pair(t)
	if err := client.SendTargets(Targets{Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindTargets || msg.Targets.Epoch != 1 || len(msg.Targets.CPU) != 0 {
		t.Errorf("empty targets frame lost: %+v", msg)
	}
}

func TestRecvRejectsBadTargetsFrame(t *testing.T) {
	// Count disagrees with the body size: must be a protocol error, not a
	// short read or a garbage vector.
	client, server := pair(t)
	body := make([]byte, 12)
	body[11] = 3 // count=3 but zero f64 entries follow
	if err := client.send(KindTargets, body); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err == nil {
		t.Errorf("malformed targets frame accepted")
	}
}

// TestResilientTargetsNegotiated mirrors the heartbeat negotiation test:
// targets flow only after the peer's hello advertises FeatureRetarget.
func TestResilientTargetsNegotiated(t *testing.T) {
	lis, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	rcA := NewResilientConn(func() (*Conn, error) {
		return Dial(lis.Addr(), time.Second)
	}, ResilientOptions{})
	defer rcA.Close()
	rcB := NewResilientConn(func() (*Conn, error) {
		return lis.Accept()
	}, ResilientOptions{})
	defer rcB.Close()

	var gotEpoch atomic.Uint64
	go func() {
		for {
			msg, err := rcB.Recv()
			if err != nil {
				return
			}
			if msg.Kind == KindTargets && len(msg.Targets.CPU) == 2 {
				gotEpoch.Store(msg.Targets.Epoch)
			}
		}
	}()
	// A's writer only learns B's features through A's own Recv loop.
	go func() {
		for {
			if _, err := rcA.Recv(); err != nil {
				return
			}
		}
	}()

	waitFor(t, 5*time.Second, func() bool { return rcA.PeerSupportsRetarget() }, "hello negotiation")
	waitFor(t, 5*time.Second, func() bool {
		if err := rcA.SendTargets(Targets{Epoch: 9, CPU: []float64{0.5, 0.5}}); err != nil {
			t.Errorf("SendTargets: %v", err)
		}
		return gotEpoch.Load() == 9
	}, "targets delivery")
}

// TestResilientTargetsSkippedAgainstOldPeer is the v1 interop case: the
// peer never sends a hello (an un-upgraded binary), so target frames must
// be silently withheld — the old vocabulary has no KindTargets — while
// data frames keep flowing untouched.
func TestResilientTargetsSkippedAgainstOldPeer(t *testing.T) {
	srv := newCountingServer(t)
	rc := NewResilientConn(func() (*Conn, error) {
		return Dial(srv.addr(), time.Second)
	}, ResilientOptions{})
	defer rc.Close()

	// Wait for a live connection, then confirm retarget stays unnegotiated.
	waitFor(t, 5*time.Second, func() bool {
		rc.mu.Lock()
		up := rc.cur != nil
		rc.mu.Unlock()
		return up
	}, "connection up")
	if rc.PeerSupportsRetarget() {
		t.Fatalf("silent peer credited with FeatureRetarget")
	}
	if err := rc.SendTargets(Targets{Epoch: 1, CPU: []float64{1}}); err != nil {
		t.Fatalf("SendTargets against v1 peer: %v (want silent skip)", err)
	}
	st := rc.Stats()
	if st.FramesSent != 0 {
		t.Errorf("target frame reached the wire against a v1 peer: %+v", st)
	}
}
