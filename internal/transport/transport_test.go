package transport

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"aces/internal/sdo"
)

// pair sets up a loopback connection.
func pair(t *testing.T) (client, server *Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		server = c
	}()
	client, err = Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	t.Cleanup(func() {
		client.Close()
		if server != nil {
			server.Close()
		}
	})
	return client, server
}

func TestSDORoundTrip(t *testing.T) {
	client, server := pair(t)
	origin := time.Unix(0, 1234567890123456789)
	in := sdo.SDO{Stream: 7, Seq: 42, Origin: origin, Hops: 3, Trace: 0xDEADBEEF, Payload: []byte("hello"), Bytes: 5}
	if err := client.SendSDO(in); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindData {
		t.Fatalf("kind = %v", msg.Kind)
	}
	out := msg.SDO
	if out.Stream != 7 || out.Seq != 42 || out.Hops != 3 {
		t.Errorf("fields lost: %+v", out)
	}
	if out.Trace != 0xDEADBEEF {
		t.Errorf("trace ID lost: %#x", out.Trace)
	}
	if !out.Origin.Equal(origin) {
		t.Errorf("origin %v ≠ %v", out.Origin, origin)
	}
	if string(out.Payload.([]byte)) != "hello" || out.Bytes != 5 {
		t.Errorf("payload lost: %+v", out)
	}
}

func TestEmptyPayload(t *testing.T) {
	client, server := pair(t)
	if err := client.SendSDO(sdo.SDO{Stream: 1, Seq: 9, Origin: time.Now()}); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.SDO.Payload != nil {
		t.Errorf("expected nil payload")
	}
	if msg.SDO.Bytes != 1 {
		t.Errorf("empty payload should default Bytes to 1, got %d", msg.SDO.Bytes)
	}
}

func TestRejectsNonByteSlicePayload(t *testing.T) {
	client, _ := pair(t)
	if err := client.SendSDO(sdo.SDO{Payload: 42}); err == nil {
		t.Errorf("non-[]byte payload accepted")
	}
}

func TestFeedbackRoundTrip(t *testing.T) {
	client, server := pair(t)
	if err := client.SendFeedback(Feedback{PE: 12, RMax: 3.75}); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindFeedback || msg.Feedback.PE != 12 || msg.Feedback.RMax != 3.75 {
		t.Errorf("feedback lost: %+v", msg)
	}
}

func TestInterleavedFrames(t *testing.T) {
	client, server := pair(t)
	for i := 0; i < 100; i++ {
		if i%3 == 0 {
			if err := client.SendFeedback(Feedback{PE: int32(i), RMax: float64(i)}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := client.SendSDO(sdo.SDO{Stream: 1, Seq: uint64(i), Origin: time.Now()}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 100; i++ {
		msg, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if msg.Kind != KindFeedback || msg.Feedback.PE != int32(i) {
				t.Fatalf("frame %d: %+v", i, msg)
			}
		} else if msg.Kind != KindData || msg.SDO.Seq != uint64(i) {
			t.Fatalf("frame %d: %+v", i, msg)
		}
	}
}

func TestConcurrentSenders(t *testing.T) {
	client, server := pair(t)
	const senders, perSender = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := client.SendSDO(sdo.SDO{Stream: 5, Origin: time.Now()}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < senders*perSender {
			if _, err := server.Recv(); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("frames lost under concurrency")
	}
	if got != senders*perSender {
		t.Errorf("got %d frames, want %d", got, senders*perSender)
	}
}

func TestEOFOnClose(t *testing.T) {
	client, server := pair(t)
	client.Close()
	if _, err := server.Recv(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Errorf("dial to closed port succeeded")
	}
}

// rawSend writes raw bytes straight to the peer, bypassing the framing
// API, to exercise the decoder's error paths.
func rawPair(t *testing.T) (raw net.Conn, framed *Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	done := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			done <- nil
			return
		}
		done <- c
	}()
	raw, err = net.DialTimeout("tcp", l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	framed = <-done
	if framed == nil {
		t.Fatal("no server conn")
	}
	t.Cleanup(func() {
		raw.Close()
		framed.Close()
	})
	return raw, framed
}

func TestRecvRejectsUnknownKind(t *testing.T) {
	raw, framed := rawPair(t)
	if _, err := raw.Write([]byte{0xFF, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := framed.Recv(); err == nil {
		t.Errorf("unknown kind accepted")
	}
}

func TestRecvRejectsOversizedFrame(t *testing.T) {
	raw, framed := rawPair(t)
	hdr := []byte{byte(KindData), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := framed.Recv(); err == nil {
		t.Errorf("oversized frame accepted")
	}
}

func TestRecvRejectsShortDataFrame(t *testing.T) {
	raw, framed := rawPair(t)
	body := make([]byte, 10) // < 36-byte minimum
	hdr := []byte{byte(KindData), 0, 0, 0, byte(len(body))}
	if _, err := raw.Write(append(hdr, body...)); err != nil {
		t.Fatal(err)
	}
	if _, err := framed.Recv(); err == nil {
		t.Errorf("short data frame accepted")
	}
}

func TestRecvRejectsDisagreeingPayloadLength(t *testing.T) {
	raw, framed := rawPair(t)
	body := make([]byte, 36)
	// Claim a 5-byte payload but send none.
	body[32], body[33], body[34], body[35] = 0, 0, 0, 5
	hdr := []byte{byte(KindData), 0, 0, 0, byte(len(body))}
	if _, err := raw.Write(append(hdr, body...)); err != nil {
		t.Fatal(err)
	}
	if _, err := framed.Recv(); err == nil {
		t.Errorf("disagreeing payload length accepted")
	}
}

func TestRecvRejectsBadFeedbackFrame(t *testing.T) {
	raw, framed := rawPair(t)
	hdr := []byte{byte(KindFeedback), 0, 0, 0, 3}
	if _, err := raw.Write(append(hdr, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := framed.Recv(); err == nil {
		t.Errorf("truncated feedback frame accepted")
	}
}

func TestRoutedRoundTrip(t *testing.T) {
	client, server := pair(t)
	in := sdo.SDO{Stream: 3, Seq: 11, Origin: time.Unix(0, 42), Hops: 2, Trace: 77, Payload: []byte("xy"), Bytes: 2}
	if err := client.SendRouted(9, in); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindRouted || msg.To != 9 {
		t.Fatalf("routed frame lost destination: %+v", msg)
	}
	if msg.SDO.Seq != 11 || msg.SDO.Hops != 2 || string(msg.SDO.Payload.([]byte)) != "xy" {
		t.Errorf("routed SDO mangled: %+v", msg.SDO)
	}
	if msg.SDO.Trace != 77 {
		t.Errorf("routed frame lost trace ID: %#x", msg.SDO.Trace)
	}
}

func TestRecvRejectsShortRoutedFrame(t *testing.T) {
	raw, framed := rawPair(t)
	// A routed frame needs ≥ 4 bytes for the destination PE alone.
	hdr := []byte{byte(KindRouted), 0, 0, 0, 3}
	if _, err := raw.Write(append(hdr, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := framed.Recv(); err == nil {
		t.Errorf("short routed frame accepted")
	}
}

func TestRecvTruncatedBody(t *testing.T) {
	raw, framed := rawPair(t)
	// Header promises a 40-byte body; deliver 10 and hang up mid-frame.
	hdr := []byte{byte(KindData), 0, 0, 0, 40}
	if _, err := raw.Write(append(hdr, make([]byte, 10)...)); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	_, err := framed.Recv()
	if err == nil {
		t.Fatalf("truncated body accepted")
	}
	if err == io.EOF {
		t.Errorf("mid-frame truncation must surface as a protocol error, not a clean EOF")
	}
}

func TestRecvTruncatedHeader(t *testing.T) {
	raw, framed := rawPair(t)
	if _, err := raw.Write([]byte{byte(KindData), 0}); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	if _, err := framed.Recv(); err == nil {
		t.Errorf("truncated header accepted")
	}
}
