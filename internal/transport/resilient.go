package transport

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"time"

	"aces/internal/sdo"
)

// Sentinel errors returned by ResilientConn send methods. Both are
// immediate: no send ever blocks on transport I/O.
var (
	// ErrOutboxFull reports that the bounded outbox had no room; the frame
	// was dropped and counted. Senders treat this exactly like an overflow
	// of a local PE buffer (in-flight loss).
	ErrOutboxFull = errors.New("transport: outbox full")
	// ErrLinkClosed reports a send on a closed ResilientConn.
	ErrLinkClosed = errors.New("transport: link closed")
)

// DialFunc produces a fresh connection to the peer. On the dialing side
// this wraps Dial; on the accepting side it wraps Listener.Accept, so a
// severed peer re-establishing the TCP session is transparent to both.
type DialFunc func() (*Conn, error)

// ResilientOptions tunes a ResilientConn. The zero value picks usable
// defaults.
type ResilientOptions struct {
	// QueueSize bounds the outbox in frames (default 1024). A full outbox
	// drops the newest frame — loss at the boundary instead of back-pressure
	// that would freeze the emit path or the Δt scheduler.
	QueueSize int
	// WriteTimeout bounds each frame write (default 1s). A stalled peer
	// (unread TCP window) fails the write and triggers a reconnect rather
	// than wedging the writer goroutine.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 50ms, 2s).
	// The actual delay is the current backoff plus up to 50% jitter, so a
	// partition of many links does not reconnect in lockstep.
	BackoffMin, BackoffMax time.Duration
	// OnDrop, when set, is invoked for every frame dropped asynchronously
	// by the writer goroutine (write failure after dequeue). It is NOT
	// invoked for enqueue-time overflow: those return ErrOutboxFull and the
	// caller accounts the loss synchronously. hops is the SDO's processing
	// depth and trace its observability trace ID (both 0 for feedback
	// frames; trace is 0 for unsampled SDOs), letting the owner record the
	// loss as a terminal trace event.
	OnDrop func(kind Kind, hops int, trace uint64)
}

func (o *ResilientOptions) fillDefaults() {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = 2 * time.Second
		if o.BackoffMax < o.BackoffMin {
			o.BackoffMax = o.BackoffMin
		}
	}
}

// LinkStats is a point-in-time snapshot of a ResilientConn's counters.
type LinkStats struct {
	// FramesSent counts frames written to the wire successfully.
	FramesSent int64
	// FramesDropped counts frames lost at this endpoint: outbox overflow,
	// write failures, and frames abandoned at Close.
	FramesDropped int64
	// Reconnects counts successful re-establishments after the first
	// connection.
	Reconnects int64
	// QueueLen and QueueCap describe the outbox at snapshot time.
	QueueLen, QueueCap int
}

// outFrame is one queued wire frame. hops carries the SDO's processing
// depth so asynchronous drops can be accounted as in-flight loss; trace
// carries its observability trace ID so they can end the trace too.
type outFrame struct {
	kind  Kind
	body  []byte
	hops  int
	trace uint64
}

// ResilientConn is a self-healing framed connection: sends enqueue into a
// bounded outbox and never touch the network; a writer goroutine drains
// the outbox under a write deadline; a manager goroutine (re)establishes
// the connection with jittered exponential backoff whenever the current
// one fails. Recv transparently rides across reconnects and returns only
// when the conn is closed.
//
// The design target is the paper's §IV "degrades, does not collapse": a
// stalled, severed or absent peer costs the local partition nothing but
// the frames addressed to that peer, which are dropped and counted.
type ResilientConn struct {
	dial DialFunc
	opts ResilientOptions
	out  chan outFrame
	done chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	cur       *Conn
	gen       int // bumped on every connect; stale failures are ignored
	connected bool
	closed    bool

	wg sync.WaitGroup

	statsMu   sync.Mutex
	sent      int64
	dropped   int64
	reconnect int64
}

// NewResilientConn starts the manager and writer goroutines and returns
// immediately; the first connection is established in the background.
func NewResilientConn(dial DialFunc, opts ResilientOptions) *ResilientConn {
	opts.fillDefaults()
	rc := &ResilientConn{
		dial: dial,
		opts: opts,
		out:  make(chan outFrame, opts.QueueSize),
		done: make(chan struct{}),
	}
	rc.cond = sync.NewCond(&rc.mu)
	rc.wg.Add(2)
	go rc.manage()
	go rc.write()
	return rc
}

// SendSDO enqueues one data frame. It never blocks; a full outbox returns
// ErrOutboxFull and the frame is dropped.
func (rc *ResilientConn) SendSDO(s sdo.SDO) error {
	body, err := encodeSDO(s)
	if err != nil {
		return err
	}
	return rc.enqueue(KindData, body, s.Hops, s.Trace)
}

// SendRouted enqueues a data frame addressed to PE `to` in the peer
// process. It never blocks.
func (rc *ResilientConn) SendRouted(to sdo.PEID, s sdo.SDO) error {
	body, err := encodeRouted(to, s)
	if err != nil {
		return err
	}
	return rc.enqueue(KindRouted, body, s.Hops, s.Trace)
}

// SendFeedback enqueues one control frame. It never blocks.
func (rc *ResilientConn) SendFeedback(f Feedback) error {
	return rc.enqueue(KindFeedback, encodeFeedback(f), 0, 0)
}

func (rc *ResilientConn) enqueue(k Kind, body []byte, hops int, trace uint64) error {
	select {
	case <-rc.done:
		return ErrLinkClosed
	default:
	}
	select {
	case rc.out <- outFrame{kind: k, body: body, hops: hops, trace: trace}:
		return nil
	default:
		rc.countDrop()
		return ErrOutboxFull
	}
}

// Recv returns the next frame from the peer, waiting across reconnects.
// It returns io.EOF only when the ResilientConn itself is closed.
func (rc *ResilientConn) Recv() (Message, error) {
	for {
		conn, gen, ok := rc.current()
		if !ok {
			return Message{}, io.EOF
		}
		msg, err := conn.Recv()
		if err == nil {
			return msg, nil
		}
		rc.invalidate(gen)
	}
}

// Stats snapshots the counters.
func (rc *ResilientConn) Stats() LinkStats {
	rc.statsMu.Lock()
	defer rc.statsMu.Unlock()
	return LinkStats{
		FramesSent:    rc.sent,
		FramesDropped: rc.dropped,
		Reconnects:    rc.reconnect,
		QueueLen:      len(rc.out),
		QueueCap:      cap(rc.out),
	}
}

// Close tears the link down: the current connection is closed, both
// goroutines exit, queued frames are counted as dropped, and pending
// Recv/sends return. Safe to call more than once.
func (rc *ResilientConn) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	if rc.cur != nil {
		rc.cur.Close()
		rc.cur = nil
	}
	rc.cond.Broadcast()
	rc.mu.Unlock()
	close(rc.done)
	rc.wg.Wait()
	// Frames stranded in the outbox never reached the wire.
	for {
		select {
		case <-rc.out:
			rc.countDrop()
		default:
			return nil
		}
	}
}

func (rc *ResilientConn) countDrop() {
	rc.statsMu.Lock()
	rc.dropped++
	rc.statsMu.Unlock()
}

// current blocks until a live connection exists (or the conn is closed)
// and returns it with its generation for failure attribution.
func (rc *ResilientConn) current() (*Conn, int, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for rc.cur == nil && !rc.closed {
		rc.cond.Wait()
	}
	if rc.closed {
		return nil, 0, false
	}
	return rc.cur, rc.gen, true
}

// invalidate retires generation gen's connection; stale calls (a reader
// and writer both reporting the same dead conn) are idempotent.
func (rc *ResilientConn) invalidate(gen int) {
	rc.mu.Lock()
	if rc.gen == gen && rc.cur != nil {
		rc.cur.Close()
		rc.cur = nil
		rc.cond.Broadcast() // wake the manager to redial
	}
	rc.mu.Unlock()
}

// manage owns connection establishment: dial with jittered exponential
// backoff, install, then sleep until the connection is invalidated.
func (rc *ResilientConn) manage() {
	defer rc.wg.Done()
	backoff := rc.opts.BackoffMin
	everConnected := false
	for {
		rc.mu.Lock()
		for rc.cur != nil && !rc.closed {
			rc.cond.Wait()
		}
		if rc.closed {
			rc.mu.Unlock()
			return
		}
		rc.mu.Unlock()

		conn, err := rc.dial()
		if err != nil {
			d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
			backoff *= 2
			if backoff > rc.opts.BackoffMax {
				backoff = rc.opts.BackoffMax
			}
			select {
			case <-rc.done:
				return
			case <-time.After(d):
			}
			continue
		}
		backoff = rc.opts.BackoffMin
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			conn.Close()
			return
		}
		rc.cur = conn
		rc.gen++
		rc.cond.Broadcast()
		rc.mu.Unlock()
		if everConnected {
			rc.statsMu.Lock()
			rc.reconnect++
			rc.statsMu.Unlock()
		}
		everConnected = true
	}
}

// write drains the outbox. Each frame is written under a deadline; a
// failed write drops the frame, retires the connection and moves on — the
// outbox, not the TCP session, is the loss boundary.
func (rc *ResilientConn) write() {
	defer rc.wg.Done()
	for {
		var f outFrame
		select {
		case <-rc.done:
			return
		case f = <-rc.out:
		}
		conn, gen, ok := rc.current()
		if !ok {
			rc.countDrop()
			return
		}
		conn.SetWriteDeadline(time.Now().Add(rc.opts.WriteTimeout))
		if err := conn.send(f.kind, f.body); err != nil {
			rc.invalidate(gen)
			rc.countDrop()
			if rc.opts.OnDrop != nil {
				rc.opts.OnDrop(f.kind, f.hops, f.trace)
			}
			continue
		}
		rc.statsMu.Lock()
		rc.sent++
		rc.statsMu.Unlock()
	}
}
