package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aces/internal/ring"
	"aces/internal/sdo"
)

// Sentinel errors returned by ResilientConn send methods. Both are
// immediate: no send ever blocks on transport I/O.
var (
	// ErrOutboxFull reports that the bounded outbox had no room; the frame
	// was dropped and counted. Senders treat this exactly like an overflow
	// of a local PE buffer (in-flight loss).
	ErrOutboxFull = errors.New("transport: outbox full")
	// ErrLinkClosed reports a send on a closed ResilientConn.
	ErrLinkClosed = errors.New("transport: link closed")
)

// DialFunc produces a fresh connection to the peer. On the dialing side
// this wraps Dial; on the accepting side it wraps Listener.Accept, so a
// severed peer re-establishing the TCP session is transparent to both.
type DialFunc func() (*Conn, error)

// ResilientOptions tunes a ResilientConn. The zero value picks usable
// defaults (batching off).
type ResilientOptions struct {
	// QueueSize bounds the outbox in frames (default 1024). A full outbox
	// drops the newest frame — loss at the boundary instead of back-pressure
	// that would freeze the emit path or the Δt scheduler.
	QueueSize int
	// WriteTimeout bounds each wire write (default 1s). A stalled peer
	// (unread TCP window) fails the write and triggers a reconnect rather
	// than wedging the writer goroutine.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 50ms, 2s).
	// The actual delay is the current backoff plus up to 50% jitter, so a
	// partition of many links does not reconnect in lockstep.
	BackoffMin, BackoffMax time.Duration
	// BatchMax enables batched framing when > 1: the writer coalesces up
	// to BatchMax queued data/routed frames into one KindBatch wire frame
	// (one header, one flush). Batches are only sent to peers that
	// advertised FeatureBatch in a hello frame; other peers receive plain
	// per-SDO frames. Batching is opportunistic — a frame that finds the
	// outbox otherwise empty is written and flushed immediately, so
	// single-SDO latency is unchanged. Default 0 (off).
	BatchMax int
	// BatchLinger, when > 0, lets the writer wait up to this long for
	// additional frames before writing a non-full burst — trading latency
	// for batch fill under light load. Default 0: flush-on-idle only.
	BatchLinger time.Duration
	// OnDrop, when set, is invoked for every frame dropped asynchronously
	// by the writer goroutine (write failure after dequeue). A failed
	// batch write invokes it once per member SDO, not once per wire
	// frame. It is NOT invoked for enqueue-time overflow: those return
	// ErrOutboxFull and the caller accounts the loss synchronously. hops
	// is the SDO's processing depth and trace its observability trace ID
	// (both 0 for feedback frames; trace is 0 for unsampled SDOs), letting
	// the owner record the loss as a terminal trace event.
	OnDrop func(kind Kind, hops int, trace uint64)
}

func (o *ResilientOptions) fillDefaults() {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = 2 * time.Second
		if o.BackoffMax < o.BackoffMin {
			o.BackoffMax = o.BackoffMin
		}
	}
	if o.BatchMax > maxBatchMembers {
		o.BatchMax = maxBatchMembers
	}
}

// maxBatchBytes caps the encoded size of one batch frame well below
// maxFrame, so a burst of jumbo payloads splits into several batches
// instead of tripping the frame limit.
const maxBatchBytes = 1 << 20

// ctlLaneCap bounds the reserved control lane. Control traffic is tiny
// and periodic (feedback, heartbeats, targets, acks), so a small lane
// holds every in-flight control frame; what the bound really buys is
// isolation — a data burst that fills the outbox can no longer crowd a
// retarget or a liveness beacon out of the link.
const ctlLaneCap = 64

// isControlKind reports whether a frame kind rides the control lane.
func isControlKind(k Kind) bool {
	switch k {
	case KindFeedback, KindHeartbeat, KindTargets, KindReplicaTargets,
		KindTargetAck, KindTermTargets, KindTermReplicaTargets, KindTermTargetAck:
		return true
	}
	return false
}

// LinkStats is a point-in-time snapshot of a ResilientConn's counters.
// Frame counts are logical: a batch that carries N SDOs counts N sent
// (or, on a failed write, N dropped) — loss accounting is per member SDO,
// never per wire frame.
type LinkStats struct {
	// FramesSent counts logical frames written to the wire successfully
	// (batch members count individually).
	FramesSent int64
	// FramesDropped counts logical frames lost at this endpoint: outbox
	// overflow, write failures (every member of a failed batch), and
	// frames abandoned at Close.
	FramesDropped int64
	// Reconnects counts successful re-establishments after the first
	// connection.
	Reconnects int64
	// BatchesSent counts KindBatch wire frames written successfully.
	BatchesSent int64
	// BatchedFrames counts logical frames that rode inside batches;
	// BatchedFrames/BatchesSent is the mean batch fill.
	BatchedFrames int64
	// ControlDropped counts control frames (feedback, heartbeats,
	// targets, replica targets, acks) lost at this endpoint — control
	// lane overflow plus write failures and frames abandoned at Close.
	// Control frames have a reserved lane, so a data flood alone can
	// never grow this counter.
	ControlDropped int64
	// CtlFeatureDropped counts control frames dropped by the writer's
	// write-time feature re-gate: the frame passed its gate when
	// enqueued, but the connection was replaced before the write and the
	// new peer's hello no longer advertises the feature (a reconnect
	// downgrade — e.g. an upgraded peer crashing back to an old binary)
	// and no lossless downgrade encoding exists. Also counted under
	// FramesDropped and ControlDropped.
	CtlFeatureDropped int64
	// QueueLen and QueueCap describe the outbox at snapshot time.
	QueueLen, QueueCap int
}

// outFrame is one queued wire frame. hops carries the SDO's processing
// depth so asynchronous drops can be accounted as in-flight loss; trace
// carries its observability trace ID so they can end the trace too. buf
// is the pooled buffer backing body, recycled after the frame leaves the
// outbox (written, dropped, or abandoned).
type outFrame struct {
	kind  Kind
	body  []byte
	buf   *[]byte
	hops  int
	trace uint64
}

// release returns the frame's encode buffer to the pool.
func (f *outFrame) release() {
	if f.buf != nil {
		putBuf(f.buf)
		f.buf = nil
	}
	f.body = nil
}

// ResilientConn is a self-healing framed connection: sends enqueue into a
// bounded outbox and never touch the network; a writer goroutine drains
// the outbox in bursts — coalescing data frames into batch frames when
// the peer supports them, and flushing only when the outbox runs dry — a
// manager goroutine (re)establishes the connection with jittered
// exponential backoff whenever the current one fails. Recv transparently
// rides across reconnects and returns only when the conn is closed.
//
// The design target is the paper's §IV "degrades, does not collapse": a
// stalled, severed or absent peer costs the local partition nothing but
// the frames addressed to that peer, which are dropped and counted.
type ResilientConn struct {
	dial DialFunc
	opts ResilientOptions
	// outq is the data outbox: a bounded lock-free ring, multi-producer
	// (every local PE emitter enqueues) single-consumer (only the writer
	// pops). Replacing the old buffered channel shaved two channel
	// operations off every frame on the emit hot path; producers that
	// find the writer parked ring the doorbell instead.
	outq *ring.Ring[outFrame]
	// doorbell wakes the parked writer. Capacity 1: a ring while awake
	// (or while a previous ring is pending) is a no-op.
	doorbell chan struct{}
	// sleeping is the writer's parked flag. The writer raises it before
	// its final poll of both lanes, so a producer that enqueues after
	// that poll is guaranteed to observe it and ring the doorbell —
	// the classic Dekker handshake. In steady state producers pay one
	// atomic load.
	sleeping atomic.Bool
	// ctl is the reserved control lane: feedback, heartbeats, targets,
	// replica targets and acks enqueue here, and the writer drains it
	// with head-of-burst priority — so an outbox full of SDOs can delay
	// a control frame by at most one write burst, never drop it.
	ctl  chan outFrame
	done chan struct{}

	mu     sync.Mutex
	cond   *sync.Cond
	cur    *Conn
	gen    int // bumped on every connect; stale failures are ignored
	closed bool

	// wroteOK is set by the writer after any successful wire write and
	// consumed by the manager when choosing the redial delay: only a
	// generation that proved useful earns a backoff reset.
	wroteOK atomic.Bool

	wg sync.WaitGroup

	statsMu        sync.Mutex
	sent           int64
	dropped        int64
	reconnect      int64
	batches        int64
	batched        int64
	ctlDropped     int64
	ctlFeatDropped int64
}

// NewResilientConn starts the manager and writer goroutines and returns
// immediately; the first connection is established in the background.
func NewResilientConn(dial DialFunc, opts ResilientOptions) *ResilientConn {
	opts.fillDefaults()
	rc := &ResilientConn{
		dial:     dial,
		opts:     opts,
		outq:     ring.New[outFrame](opts.QueueSize, ring.SingleConsumer),
		doorbell: make(chan struct{}, 1),
		ctl:      make(chan outFrame, ctlLaneCap),
		done:     make(chan struct{}),
	}
	rc.cond = sync.NewCond(&rc.mu)
	rc.wg.Add(2)
	go rc.manage()
	go rc.write()
	return rc
}

// SendSDO enqueues one data frame. It never blocks; a full outbox returns
// ErrOutboxFull and the frame is dropped.
func (rc *ResilientConn) SendSDO(s sdo.SDO) error {
	bp := getBuf()
	body, err := encodeSDO((*bp)[:0], s)
	if err != nil {
		putBuf(bp)
		return err
	}
	*bp = body
	return rc.enqueue(outFrame{kind: KindData, body: body, buf: bp, hops: s.Hops, trace: s.Trace})
}

// SendRouted enqueues a data frame addressed to PE `to` in the peer
// process. It never blocks.
func (rc *ResilientConn) SendRouted(to sdo.PEID, s sdo.SDO) error {
	bp := getBuf()
	body, err := encodeRouted((*bp)[:0], to, s)
	if err != nil {
		putBuf(bp)
		return err
	}
	*bp = body
	return rc.enqueue(outFrame{kind: KindRouted, body: body, buf: bp, hops: s.Hops, trace: s.Trace})
}

// peerState snapshots the link's liveness and the current connection's
// advertised feature set in one guarded read: features is 0 while
// disconnected, connected reports an installed connection, closed a
// closed link. Every feature decision outside the writer goroutine MUST
// go through this helper instead of copying rc.cur out of the lock —
// manage() can replace (and Close) the current connection on redial at
// any moment, so a conn pointer used after rc.mu is released may consult
// a connection that no longer exists, deciding frame encodings against
// the features of a dead generation.
func (rc *ResilientConn) peerState() (features uint64, connected, closed bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.cur != nil {
		features = rc.cur.peerFeatures.Load()
		connected = true
	}
	return features, connected, rc.closed
}

// SendReplica enqueues a data frame addressed to replica slot `rep` of PE
// `to` in the peer process. When the peer has not (yet) advertised
// FeatureElastic the frame falls back to a plain routed frame — the
// receiver re-routes it locally among its own replicas, trading exact
// key affinity for delivery. It never blocks.
func (rc *ResilientConn) SendReplica(to sdo.PEID, rep int32, s sdo.SDO) error {
	if !rc.PeerSupportsElastic() {
		return rc.SendRouted(to, s)
	}
	bp := getBuf()
	body, err := encodeReplica((*bp)[:0], to, rep, s)
	if err != nil {
		putBuf(bp)
		return err
	}
	*bp = body
	return rc.enqueue(outFrame{kind: KindReplica, body: body, buf: bp, hops: s.Hops, trace: s.Trace})
}

// SendFeedback enqueues one control frame on the reserved control lane.
// It never blocks.
func (rc *ResilientConn) SendFeedback(f Feedback) error {
	bp := getBuf()
	body := encodeFeedback((*bp)[:0], f)
	*bp = body
	return rc.enqueueCtl(outFrame{kind: KindFeedback, body: body, buf: bp})
}

// SendHeartbeat enqueues one liveness beacon, or silently discards it
// when there is no live connection or the peer has not (yet) advertised
// FeatureHeartbeat — beacons are periodic, so the first one after the
// peer's hello repairs the roster, and queueing beacons for a dead link
// would only deliver stale liveness claims after reconnect. Never blocks.
func (rc *ResilientConn) SendHeartbeat(hb Heartbeat) error {
	feat, connected, closed := rc.peerState()
	if closed {
		return ErrLinkClosed
	}
	if !connected || feat&FeatureHeartbeat == 0 {
		return nil
	}
	bp := getBuf()
	body := encodeHeartbeat((*bp)[:0], hb)
	*bp = body
	return rc.enqueueCtl(outFrame{kind: KindHeartbeat, body: body, buf: bp})
}

// PeerSupportsHeartbeat reports whether the current connection's peer
// advertised heartbeat membership (false while disconnected).
func (rc *ResilientConn) PeerSupportsHeartbeat() bool {
	feat, connected, _ := rc.peerState()
	return connected && feat&FeatureHeartbeat != 0
}

// SendTargets enqueues one (term, epoch)-numbered target vector on the
// control lane, or silently discards it when there is no live connection
// or the peer has not (yet) advertised FeatureRetarget — target
// dissemination is periodic and epoch-idempotent, so the next broadcast
// after the peer's hello repairs it, while queueing targets for a dead
// link would only deliver a stale epoch after reconnect. The term rides
// a KindTermTargets frame against FeatureTerm peers and collapses into
// the legacy epoch scalar otherwise. Never blocks.
func (rc *ResilientConn) SendTargets(t Targets) error {
	feat, connected, closed := rc.peerState()
	if closed {
		return ErrLinkClosed
	}
	if !connected || feat&FeatureRetarget == 0 {
		return nil
	}
	bp := getBuf()
	var body []byte
	kind := KindTargets
	if feat&FeatureTerm != 0 {
		kind = KindTermTargets
		body = binary.BigEndian.AppendUint64((*bp)[:0], t.Term)
		body = encodeTargets(body, Targets{Epoch: t.Epoch, CPU: t.CPU})
	} else {
		body = encodeTargets((*bp)[:0], Targets{Epoch: CollapseTermEpoch(t.Term, t.Epoch), CPU: t.CPU})
	}
	*bp = body
	return rc.enqueueCtl(outFrame{kind: kind, body: body, buf: bp})
}

// PeerSupportsRetarget reports whether the current connection's peer
// advertised retarget support (false while disconnected).
func (rc *ResilientConn) PeerSupportsRetarget() bool {
	feat, connected, _ := rc.peerState()
	return connected && feat&FeatureRetarget != 0
}

// SendReplicaTargets enqueues one epoch-numbered per-replica target set,
// with the same silent-discard contract as SendTargets: no live
// connection or no FeatureElastic in the peer's hello means the periodic
// re-broadcast repairs it later. Callers that can collapse the set to a
// logical Targets vector should do so for retarget-only peers. Never
// blocks.
func (rc *ResilientConn) SendReplicaTargets(rt ReplicaTargets) error {
	feat, connected, closed := rc.peerState()
	if closed {
		return ErrLinkClosed
	}
	if !connected || feat&FeatureElastic == 0 {
		return nil
	}
	bp := getBuf()
	var body []byte
	kind := KindReplicaTargets
	if feat&FeatureTerm != 0 {
		kind = KindTermReplicaTargets
		body = binary.BigEndian.AppendUint64((*bp)[:0], rt.Term)
		body = encodeReplicaTargets(body, ReplicaTargets{Epoch: rt.Epoch, CPU: rt.CPU})
	} else {
		body = encodeReplicaTargets((*bp)[:0], ReplicaTargets{Epoch: CollapseTermEpoch(rt.Term, rt.Epoch), CPU: rt.CPU})
	}
	*bp = body
	return rc.enqueueCtl(outFrame{kind: kind, body: body, buf: bp})
}

// PeerSupportsElastic reports whether the current connection's peer
// advertised replica-frame support (false while disconnected).
func (rc *ResilientConn) PeerSupportsElastic() bool {
	feat, connected, _ := rc.peerState()
	return connected && feat&FeatureElastic != 0
}

// PeerSupportsTerm reports whether the current connection's peer
// advertised controller-term framing (false while disconnected).
func (rc *ResilientConn) PeerSupportsTerm() bool {
	feat, connected, _ := rc.peerState()
	return connected && feat&FeatureTerm != 0
}

// SendTargetAck enqueues one upward dissemination ack, with the same
// silent-discard contract as SendTargets: an ack lost to a dead link is
// repaired by the ack that follows the next target broadcast, while a
// queued stale ack would only understate the peer's progress. Never
// blocks.
func (rc *ResilientConn) SendTargetAck(a TargetAck) error {
	feat, connected, closed := rc.peerState()
	if closed {
		return ErrLinkClosed
	}
	if !connected || feat&FeatureHier == 0 {
		return nil
	}
	bp := getBuf()
	var body []byte
	kind := KindTargetAck
	if feat&FeatureTerm != 0 {
		kind = KindTermTargetAck
		body = binary.BigEndian.AppendUint64((*bp)[:0], a.Term)
		body = encodeTargetAck(body, TargetAck{Origin: a.Origin, Epoch: a.Epoch})
	} else {
		body = encodeTargetAck((*bp)[:0], TargetAck{Origin: a.Origin, Epoch: CollapseTermEpoch(a.Term, a.Epoch)})
	}
	*bp = body
	return rc.enqueueCtl(outFrame{kind: kind, body: body, buf: bp})
}

// PeerSupportsHier reports whether the current connection's peer
// advertised dissemination-tree support (false while disconnected).
func (rc *ResilientConn) PeerSupportsHier() bool {
	feat, connected, _ := rc.peerState()
	return connected && feat&FeatureHier != 0
}

func (rc *ResilientConn) enqueue(f outFrame) error {
	select {
	case <-rc.done:
		f.release()
		return ErrLinkClosed
	default:
	}
	if !rc.outq.TryPush(f) {
		f.release()
		if rc.outq.Closed() {
			return ErrLinkClosed
		}
		rc.countDrop(1)
		return ErrOutboxFull
	}
	rc.kick()
	return nil
}

// kick wakes the writer if it is parked: the writer raises sleeping
// before its final poll of both lanes, so a producer whose push landed
// after that poll necessarily observes the flag (both sides use
// sequentially consistent atomics) and rings the doorbell. The buffered
// channel makes ringing an already-rung (or awake) writer a no-op, so
// the steady-state producer cost is one atomic load.
func (rc *ResilientConn) kick() {
	if rc.sleeping.Load() {
		select {
		case rc.doorbell <- struct{}{}:
		default:
		}
	}
}

// enqueueCtl enqueues a control frame on the reserved lane; overflow
// (only possible if control traffic itself floods the lane) drops the
// frame and counts it under both FramesDropped and ControlDropped.
func (rc *ResilientConn) enqueueCtl(f outFrame) error {
	select {
	case <-rc.done:
		f.release()
		return ErrLinkClosed
	default:
	}
	select {
	case rc.ctl <- f:
		return nil
	default:
		f.release()
		rc.countDrop(1)
		rc.countCtlDrop(1)
		return ErrOutboxFull
	}
}

// Recv returns the next frame from the peer, waiting across reconnects.
// It returns io.EOF only when the ResilientConn itself is closed.
func (rc *ResilientConn) Recv() (Message, error) {
	for {
		conn, gen, ok := rc.current()
		if !ok {
			return Message{}, io.EOF
		}
		msg, err := conn.Recv()
		if err == nil {
			return msg, nil
		}
		rc.invalidate(gen)
	}
}

// Stats snapshots the counters.
func (rc *ResilientConn) Stats() LinkStats {
	rc.statsMu.Lock()
	defer rc.statsMu.Unlock()
	return LinkStats{
		FramesSent:        rc.sent,
		FramesDropped:     rc.dropped,
		Reconnects:        rc.reconnect,
		BatchesSent:       rc.batches,
		BatchedFrames:     rc.batched,
		ControlDropped:    rc.ctlDropped,
		CtlFeatureDropped: rc.ctlFeatDropped,
		QueueLen:          rc.outq.Len(),
		QueueCap:          rc.outq.Cap(),
	}
}

// Close tears the link down: the current connection is closed, both
// goroutines exit, queued frames are counted as dropped, and pending
// Recv/sends return. Safe to call more than once.
func (rc *ResilientConn) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	if rc.cur != nil {
		rc.cur.Close()
		rc.cur = nil
	}
	rc.cond.Broadcast()
	rc.mu.Unlock()
	close(rc.done)
	rc.wg.Wait()
	// Frames stranded in either lane never reached the wire. The ring is
	// closed first so a producer racing Close is refused rather than
	// admitted after the drain; its post-Close drain contract guarantees
	// any push that won the race is picked up below.
	rc.outq.Close()
	for {
		f, ok := rc.outq.TryPop()
		if !ok {
			break
		}
		f.release()
		rc.countDrop(1)
	}
	for {
		select {
		case f := <-rc.ctl:
			f.release()
			rc.countDrop(1)
			rc.countCtlDrop(1)
		default:
			return nil
		}
	}
}

func (rc *ResilientConn) countDrop(n int64) {
	rc.statsMu.Lock()
	rc.dropped += n
	rc.statsMu.Unlock()
}

func (rc *ResilientConn) countCtlDrop(n int64) {
	rc.statsMu.Lock()
	rc.ctlDropped += n
	rc.statsMu.Unlock()
}

func (rc *ResilientConn) countCtlFeatureDrop(n int64) {
	rc.statsMu.Lock()
	rc.ctlFeatDropped += n
	rc.statsMu.Unlock()
}

// current blocks until a live connection exists (or the conn is closed)
// and returns it with its generation for failure attribution.
func (rc *ResilientConn) current() (*Conn, int, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for rc.cur == nil && !rc.closed {
		rc.cond.Wait()
	}
	if rc.closed {
		return nil, 0, false
	}
	return rc.cur, rc.gen, true
}

// invalidate retires generation gen's connection; stale calls (a reader
// and writer both reporting the same dead conn) are idempotent.
func (rc *ResilientConn) invalidate(gen int) {
	rc.mu.Lock()
	if rc.gen == gen && rc.cur != nil {
		rc.cur.Close()
		rc.cur = nil
		rc.cond.Broadcast() // wake the manager to redial
	}
	rc.mu.Unlock()
}

// localFeatures is the feature set this endpoint announces in its hello:
// heartbeat and retarget decoding are intrinsic to this protocol version,
// batch framing is opt-in.
func (rc *ResilientConn) localFeatures() uint64 {
	f := FeatureHeartbeat | FeatureRetarget | FeatureElastic | FeatureHier | FeatureTerm
	if rc.opts.BatchMax > 1 {
		f |= FeatureBatch
	}
	return f
}

// pause sleeps for d, returning false if the conn closed meanwhile.
func (rc *ResilientConn) pause(d time.Duration) bool {
	select {
	case <-rc.done:
		return false
	case <-time.After(d):
		return true
	}
}

// manage owns connection establishment: dial with jittered exponential
// backoff, install, announce (hello), then sleep until the connection is
// invalidated.
//
// Backoff discipline: the backoff resets to BackoffMin only after a
// generation with at least one successful wire *write* (wroteOK). A dial
// that connects but whose connection dies before writing anything — the
// signature of a half-open or immediately-resetting peer — keeps growing
// the delay; resetting on dial success alone would redial such a peer in
// a tight loop.
func (rc *ResilientConn) manage() {
	defer rc.wg.Done()
	backoff := rc.opts.BackoffMin
	everConnected := false
	barren := false // a dial was attempted and no write has succeeded since
	for {
		rc.mu.Lock()
		for rc.cur != nil && !rc.closed {
			rc.cond.Wait()
		}
		if rc.closed {
			rc.mu.Unlock()
			return
		}
		rc.mu.Unlock()

		if rc.wroteOK.Swap(false) {
			backoff = rc.opts.BackoffMin
		} else if barren {
			d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
			backoff *= 2
			if backoff > rc.opts.BackoffMax {
				backoff = rc.opts.BackoffMax
			}
			if !rc.pause(d) {
				return
			}
		}
		barren = true

		conn, err := rc.dial()
		if err != nil {
			continue
		}
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			conn.Close()
			return
		}
		rc.cur = conn
		rc.gen++
		gen := rc.gen
		rc.cond.Broadcast()
		rc.mu.Unlock()
		// Every connection generation opens with a hello announcing this
		// endpoint's features, so the peer's writer can start batching
		// and heartbeating toward us. Sent under the write deadline; a
		// failure just retires the conn. The hello deliberately does NOT
		// count as the generation's successful write: a half-open peer
		// can absorb it into its socket buffer without ever reading.
		conn.SetWriteDeadline(time.Now().Add(rc.opts.WriteTimeout))
		if err := conn.SendHello(rc.localFeatures()); err != nil {
			rc.invalidate(gen)
		}
		if everConnected {
			rc.statsMu.Lock()
			rc.reconnect++
			rc.statsMu.Unlock()
		}
		everConnected = true
	}
}

// burstCap is the most frames the writer pulls from the outbox before
// writing: at least 64 so flush coalescing pays off even with batching
// disabled, and at least BatchMax so a configured batch can fill.
func (rc *ResilientConn) burstCap() int {
	n := 64
	if rc.opts.BatchMax > n {
		n = rc.opts.BatchMax
	}
	return n
}

// write drains the outbox in bursts. Consecutive data/routed frames are
// coalesced into one KindBatch frame when the peer advertised batch
// support; the bufio writer is flushed only once the outbox runs dry
// (flush-on-idle), so a lone frame still reaches the wire immediately
// while a backlog pays one syscall per burst instead of one per frame. A
// failed write drops the frames being written, retires the connection and
// moves on — the outbox, not the TCP session, is the loss boundary.
func (rc *ResilientConn) write() {
	defer rc.wg.Done()
	burst := make([]outFrame, 0, rc.burstCap())
	for {
		f, ok := rc.nextFrame()
		if !ok {
			return
		}
		burst = append(burst[:0], f)
		rc.fillBurst(&burst)
		conn, gen, ok := rc.current()
		if !ok {
			rc.dropFrames(burst, false)
			return
		}
		conn.SetWriteDeadline(time.Now().Add(rc.opts.WriteTimeout))
		rc.writeBurst(conn, gen, burst)
	}
}

// nextFrame blocks until a frame is available (control lane first) or
// the link closes. The fast path is two lock-free polls; the slow path
// parks on the doorbell after raising sleeping and re-polling, so a
// producer's kick cannot be lost between the poll and the park.
func (rc *ResilientConn) nextFrame() (outFrame, bool) {
	// Control frames take head-of-burst priority: poll the control lane
	// alone before looking at the data outbox.
	select {
	case f := <-rc.ctl:
		return f, true
	default:
	}
	if f, ok := rc.outq.TryPop(); ok {
		return f, true
	}
	for {
		rc.sleeping.Store(true)
		// Final poll with the flag raised: a push that this poll misses
		// happened after the Store, so its producer sees sleeping and
		// rings the doorbell we are about to select on.
		select {
		case f := <-rc.ctl:
			rc.sleeping.Store(false)
			return f, true
		default:
		}
		if f, ok := rc.outq.TryPop(); ok {
			rc.sleeping.Store(false)
			return f, true
		}
		select {
		case <-rc.done:
			rc.sleeping.Store(false)
			return outFrame{}, false
		case f := <-rc.ctl:
			rc.sleeping.Store(false)
			return f, true
		case <-rc.doorbell:
			// Rung by a producer (possibly a stale token from an earlier
			// wake): loop and re-poll both lanes.
		}
	}
}

// fillBurst drains immediately available frames into the burst, then — if
// a linger is configured and the burst is not full — waits up to the
// linger for stragglers. Returning early on done is safe: the caller's
// current() will fail and account the burst as dropped.
func (rc *ResilientConn) fillBurst(burst *[]outFrame) {
	max := rc.burstCap()
	linger := rc.opts.BatchLinger
	for len(*burst) < max {
		// Control lane first: a queued retarget or heartbeat rides the
		// very next burst even when the data outbox is deep.
		select {
		case g := <-rc.ctl:
			*burst = append(*burst, g)
			continue
		default:
		}
		if g, ok := rc.outq.TryPop(); ok {
			*burst = append(*burst, g)
			continue
		}
		if linger <= 0 {
			return
		}
		// Both lanes idle: wait up to the linger for stragglers, parking
		// exactly as nextFrame does so producers ring the doorbell. Only
		// one linger window per burst, so latency stays bounded; a
		// straggler that arrives re-enters the drain loop above.
		timer := time.NewTimer(linger)
		linger = 0
		got := false
		for !got {
			rc.sleeping.Store(true)
			select {
			case g := <-rc.ctl:
				rc.sleeping.Store(false)
				timer.Stop()
				*burst = append(*burst, g)
				got = true
				continue
			default:
			}
			if g, ok := rc.outq.TryPop(); ok {
				rc.sleeping.Store(false)
				timer.Stop()
				*burst = append(*burst, g)
				got = true
				continue
			}
			select {
			case <-timer.C:
				rc.sleeping.Store(false)
				return
			case <-rc.done:
				rc.sleeping.Store(false)
				timer.Stop()
				return
			case g := <-rc.ctl:
				rc.sleeping.Store(false)
				timer.Stop()
				*burst = append(*burst, g)
				got = true
			case <-rc.doorbell:
				// Rung by a producer: re-poll both lanes.
			}
		}
	}
}

// batchable reports whether a frame kind may ride inside a batch frame.
// Feedback stays on its own frames: the control path's advertisements are
// latency-sensitive and must remain decodable by batch-unaware peers.
// Replica frames are batchable — a FeatureElastic peer necessarily speaks
// protocol v2, and the sender only emits them post-hello.
func batchable(k Kind) bool { return k == KindData || k == KindRouted || k == KindReplica }

// gateFrame re-checks a frame's feature gate against the live
// connection's advertised features at write time. Frames are gated when
// enqueued, but the connection can be replaced between enqueue and write
// — and the new generation's peer may have advertised fewer features (a
// reconnect downgrade: e.g. an upgraded peer crashing back to an old
// binary). It reports whether the frame may be written, downgrading it
// in place when a lossless re-encode exists; a false return means the
// frame was dropped, counted and released.
//
// Downgrades rewrite the pooled body in place (every legacy encoding is
// a strict suffix of its term framing, shifted by the dropped fields):
//
//   - KindReplica → KindRouted: the receiver re-routes among its own
//     replica slots — the same fallback SendReplica takes at enqueue
//     time against a non-elastic peer.
//   - KindTerm{Targets,ReplicaTargets,TargetAck} → the legacy frame with
//     the term collapsed into the epoch scalar, exactly the encoding the
//     enqueue path would have chosen for a non-term peer.
//
// Frames whose gating feature has no downgrade (a heartbeat to a peer
// without FeatureHeartbeat, targets without FeatureRetarget, replica
// targets without FeatureElastic, acks without FeatureHier) are dropped:
// writing them would feed the peer frames it cannot decode, killing the
// freshly re-established connection.
func (rc *ResilientConn) gateFrame(feat uint64, f *outFrame) bool {
	switch f.kind {
	case KindReplica:
		if feat&FeatureElastic != 0 {
			return true
		}
		// pe(4) rep(4) sdo → pe(4) sdo
		copy(f.body[4:], f.body[8:])
		f.body = f.body[:len(f.body)-4]
		f.kind = KindRouted
		return true
	case KindHeartbeat:
		if feat&FeatureHeartbeat != 0 {
			return true
		}
	case KindTargets:
		if feat&FeatureRetarget != 0 {
			return true
		}
	case KindReplicaTargets:
		if feat&FeatureElastic != 0 {
			return true
		}
	case KindTargetAck:
		if feat&FeatureHier != 0 {
			return true
		}
	case KindTermTargets:
		if feat&FeatureRetarget == 0 {
			break
		}
		if feat&FeatureTerm != 0 {
			return true
		}
		// term(8) epoch(8) targets → epoch'(8) targets
		term := binary.BigEndian.Uint64(f.body[:8])
		epoch := binary.BigEndian.Uint64(f.body[8:16])
		binary.BigEndian.PutUint64(f.body[8:16], CollapseTermEpoch(term, epoch))
		f.body = f.body[8:]
		f.kind = KindTargets
		return true
	case KindTermReplicaTargets:
		if feat&FeatureElastic == 0 {
			break
		}
		if feat&FeatureTerm != 0 {
			return true
		}
		term := binary.BigEndian.Uint64(f.body[:8])
		epoch := binary.BigEndian.Uint64(f.body[8:16])
		binary.BigEndian.PutUint64(f.body[8:16], CollapseTermEpoch(term, epoch))
		f.body = f.body[8:]
		f.kind = KindReplicaTargets
		return true
	case KindTermTargetAck:
		if feat&FeatureHier == 0 {
			break
		}
		if feat&FeatureTerm != 0 {
			return true
		}
		// term(8) origin(4) epoch(8) → origin(4) epoch'(8)
		term := binary.BigEndian.Uint64(f.body[:8])
		epoch := binary.BigEndian.Uint64(f.body[12:20])
		binary.BigEndian.PutUint64(f.body[12:20], CollapseTermEpoch(term, epoch))
		f.body = f.body[8:]
		f.kind = KindTargetAck
		return true
	default:
		// Data, routed and feedback frames are protocol-intrinsic.
		return true
	}
	rc.countDrop(1)
	rc.countCtlDrop(1)
	rc.countCtlFeatureDrop(1)
	f.release()
	return false
}

// idle reports both lanes empty — the flush-on-idle condition. Checking
// the control lane too piggybacks a pending control frame onto the data
// burst's flush instead of paying it a flush (and often a syscall) of
// its own.
func (rc *ResilientConn) idle() bool {
	return rc.outq.Len() == 0 && len(rc.ctl) == 0
}

// writeBurst writes the burst as a sequence of batch frames (runs of
// batchable frames, when negotiated) and single frames, flushing with the
// last write iff the outbox is empty. On error the unwritten remainder of
// the burst is dropped and counted per member SDO.
func (rc *ResilientConn) writeBurst(conn *Conn, gen int, burst []outFrame) {
	feat := conn.peerFeatures.Load()
	// Write-time feature re-gate: drop or downgrade frames the live
	// connection's peer cannot decode (see gateFrame).
	kept := burst[:0]
	for i := range burst {
		if rc.gateFrame(feat, &burst[i]) {
			kept = append(kept, burst[i])
		}
	}
	burst = kept
	useBatch := rc.opts.BatchMax > 1 && feat&FeatureBatch != 0
	i := 0
	for i < len(burst) {
		// Group a run of batchable frames, bounded by BatchMax and the
		// batch byte cap.
		j := i
		if useBatch && batchable(burst[i].kind) {
			bytes := 0
			for j < len(burst) && j-i < rc.opts.BatchMax && batchable(burst[j].kind) {
				bytes += 5 + len(burst[j].body)
				if bytes > maxBatchBytes && j > i {
					break
				}
				j++
			}
		}
		var err error
		var n int
		if j-i >= 2 {
			n = j - i
			last := j == len(burst)
			err = conn.sendBatch(burst[i:j], last && rc.idle())
			if err == nil {
				rc.statsMu.Lock()
				rc.batches++
				rc.batched += int64(n)
				rc.statsMu.Unlock()
			}
		} else {
			n = 1
			last := i == len(burst)-1
			err = conn.writeFrame(burst[i].kind, burst[i].body, last && rc.idle())
		}
		if err != nil {
			rc.invalidate(gen)
			rc.dropFrames(burst[i:], true)
			return
		}
		// A landed write proves the connection useful; the manager resets
		// the reconnect backoff on this evidence (and only on it).
		rc.wroteOK.Store(true)
		for k := i; k < i+n; k++ {
			burst[k].release()
		}
		rc.statsMu.Lock()
		rc.sent += int64(n)
		rc.statsMu.Unlock()
		i += n
	}
}

// dropFrames accounts a slice of frames as lost — one count (and, when
// notify is set, one OnDrop callback) per member SDO, never per wire
// frame — and recycles their buffers.
func (rc *ResilientConn) dropFrames(frames []outFrame, notify bool) {
	rc.countDrop(int64(len(frames)))
	var ctl int64
	for i := range frames {
		if isControlKind(frames[i].kind) {
			ctl++
		}
		if notify && rc.opts.OnDrop != nil {
			rc.opts.OnDrop(frames[i].kind, frames[i].hops, frames[i].trace)
		}
		frames[i].release()
	}
	if ctl > 0 {
		rc.countCtlDrop(ctl)
	}
}
